module fdip

go 1.24
