// Serverapp: the scenario that motivates front-end prefetching — a
// server-style workload whose instruction working set dwarfs the L1-I.
//
// The example sweeps the benchmark suite, comparing all prefetch schemes on
// the large-footprint ("server-class") workloads, and prints the per-scheme
// speedups and bandwidth costs side by side.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fdip"
)

func main() {
	const instrs = 500_000

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tmiss/KI\tscheme\tIPC\tspeedup\tbus%\tuseful%")

	for _, w := range fdip.Workloads() {
		if !w.LargeFootprint {
			continue
		}
		base := fdip.DefaultConfig()
		base.MaxInstrs = instrs
		baseRes, err := fdip.RunWorkload(base, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.1f\tnone\t%.3f\t—\t%.1f\t—\n",
			w.Name, baseRes.MissPKI, baseRes.IPC, baseRes.BusUtilPct)

		for _, scheme := range []struct {
			name string
			kind fdip.PrefetcherKind
			cpf  fdip.CPFMode
		}{
			{"nextline", fdip.PrefetchNextLine, fdip.CPFOff},
			{"streambuf", fdip.PrefetchStream, fdip.CPFOff},
			{"fdp", fdip.PrefetchFDP, fdip.CPFOff},
			{"fdp+cpf", fdip.PrefetchFDP, fdip.CPFConservative},
		} {
			cfg := base
			cfg.Prefetch.Kind = scheme.kind
			cfg.Prefetch.FDP.CPF = scheme.cpf
			res, err := fdip.RunWorkload(cfg, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t\t%s\t%.3f\t%+.1f%%\t%.1f\t%.1f\n",
				scheme.name, res.IPC, res.SpeedupPctOver(baseRes), res.BusUtilPct, res.UsefulPct)
		}
	}
	tw.Flush()
	fmt.Println("\nfdp+cpf should win every benchmark while spending far less bus")
	fmt.Println("bandwidth than unfiltered fdp — the paper's central result.")
}
