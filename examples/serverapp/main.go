// Serverapp: the scenario that motivates front-end prefetching — server-
// style workloads whose instruction working sets dwarf the L1-I — run as one
// parallel batch: the full cross product of large-footprint workloads x
// prefetch schemes goes to Engine.Sweep in a single call, with typed
// progress events streaming per-point completions to stderr.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fdip"
)

func main() {
	const instrs = 500_000

	schemes := []struct {
		name string
		kind fdip.PrefetcherKind
		cpf  fdip.CPFMode
	}{
		{"none", fdip.PrefetchNone, fdip.CPFOff},
		{"nextline", fdip.PrefetchNextLine, fdip.CPFOff},
		{"streambuf", fdip.PrefetchStream, fdip.CPFOff},
		{"fdp", fdip.PrefetchFDP, fdip.CPFOff},
		{"fdp+cpf", fdip.PrefetchFDP, fdip.CPFConservative},
	}

	// Build the whole cross product as one job list.
	var jobs []fdip.Job
	var server []fdip.Workload
	for _, w := range fdip.Workloads() {
		if !w.LargeFootprint {
			continue
		}
		server = append(server, w)
		for _, s := range schemes {
			cfg := fdip.DefaultConfig()
			cfg.MaxInstrs = instrs
			cfg.Prefetch.Kind = s.kind
			cfg.Prefetch.FDP.CPF = s.cpf
			jobs = append(jobs, fdip.Job{
				Name:     w.Name + "/" + s.name,
				Workload: w.Name,
				Config:   cfg,
			})
		}
	}

	eng := fdip.NewEngine(fdip.WithProgress(func(ev fdip.Event) {
		if ev.Kind == fdip.EventJobDone {
			fmt.Fprintln(os.Stderr, "  "+ev.String())
		}
	}))
	outs, err := eng.Sweep(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tmiss/KI\tscheme\tIPC\tspeedup\tbus%\tuseful%")
	for i, w := range server {
		row := outs[i*len(schemes) : (i+1)*len(schemes)]
		for _, out := range row {
			if out.Err != nil {
				log.Fatalf("%s: %v", out.Job.Name, out.Err)
			}
		}
		baseRes := row[0].Result
		fmt.Fprintf(tw, "%s\t%.1f\tnone\t%.3f\t—\t%.1f\t—\n",
			w.Name, baseRes.MissPKI, baseRes.IPC, baseRes.BusUtilPct)
		for j, s := range schemes[1:] {
			res := row[j+1].Result
			fmt.Fprintf(tw, "\t\t%s\t%.3f\t%+.1f%%\t%.1f\t%.1f\n",
				s.name, res.IPC, res.SpeedupPctOver(baseRes), res.BusUtilPct, res.UsefulPct)
		}
	}
	tw.Flush()
	fmt.Println("\nfdp+cpf should win every benchmark while spending far less bus")
	fmt.Println("bandwidth than unfiltered fdp — the paper's central result.")
}
