// Serverapp: the scenario that motivates front-end prefetching — server-
// style workloads whose instruction working sets dwarf the L1-I — declared
// as one sweep plan: the large-footprint workload axis crossed with a
// prefetch-scheme axis, streamed through the engine with a live per-result
// progress line as each point lands.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fdip"
)

func main() {
	const instrs = 500_000

	mk := func(kind fdip.PrefetcherKind, cpf fdip.CPFMode) fdip.Config {
		cfg := fdip.DefaultConfig()
		cfg.MaxInstrs = instrs
		cfg.Prefetch.Kind = kind
		cfg.Prefetch.FDP.CPF = cpf
		return cfg
	}
	schemes := fdip.Configs(
		fdip.Named("none", mk(fdip.PrefetchNone, fdip.CPFOff)),
		fdip.Named("nextline", mk(fdip.PrefetchNextLine, fdip.CPFOff)),
		fdip.Named("streambuf", mk(fdip.PrefetchStream, fdip.CPFOff)),
		fdip.Named("fdp", mk(fdip.PrefetchFDP, fdip.CPFOff)),
		fdip.Named("fdp+cpf", mk(fdip.PrefetchFDP, fdip.CPFConservative)),
	)

	var server []fdip.Workload
	for _, w := range fdip.Workloads() {
		if w.LargeFootprint {
			server = append(server, w)
		}
	}

	// The whole cross product is one declaration; the engine expands it
	// lazily and keeps at most a worker pool's worth of points in flight.
	plan := fdip.NewPlan(fdip.DefaultConfig()).Over(server...).Axes(schemes)

	eng := fdip.NewEngine()
	grid := make([][]fdip.Result, plan.NumRows())
	for i := range grid {
		grid[i] = make([]fdip.Result, plan.NumCols())
	}
	done := 0
	for out, err := range eng.Stream(context.Background(), plan) {
		if err != nil {
			log.Fatal(err)
		}
		if out.Err != nil {
			log.Fatalf("%s: %v", out.Job.Name, out.Err)
		}
		done++
		fmt.Fprintf(os.Stderr, "  [%2d/%d] %-20s IPC %.3f (%s)\n",
			done, plan.Points(), out.Job.Name, out.Result.IPC, out.Elapsed.Round(1e6))
		r, c := plan.RowCol(out.Index)
		grid[r][c] = out.Result
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tmiss/KI\tscheme\tIPC\tspeedup\tbus%\tuseful%")
	schemeNames := plan.Cols() // the Configs axis point names, in column order
	for i, w := range server {
		baseRes := grid[i][0]
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%.3f\t—\t%.1f\t—\n",
			w.Name, baseRes.MissPKI, schemeNames[0], baseRes.IPC, baseRes.BusUtilPct)
		for j, name := range schemeNames[1:] {
			res := grid[i][j+1]
			fmt.Fprintf(tw, "\t\t%s\t%.3f\t%+.1f%%\t%.1f\t%.1f\n",
				name, res.IPC, res.SpeedupPctOver(baseRes), res.BusUtilPct, res.UsefulPct)
		}
	}
	tw.Flush()
	fmt.Println("\nfdp+cpf should win every benchmark while spending far less bus")
	fmt.Println("bandwidth than unfiltered fdp — the paper's central result.")
}
