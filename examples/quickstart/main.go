// Quickstart: generate a synthetic program, run the no-prefetch baseline and
// fetch-directed prefetching on the same machine, and print the comparison.
package main

import (
	"fmt"
	"log"

	"fdip"
)

func main() {
	// A mid-sized program: ~400 functions, ~150KB of code — several times
	// the 16KB L1-I of the default machine.
	params := fdip.DefaultProgramParams()
	params.NumFuncs = 400
	params.Seed = 42
	im, err := fdip.GenerateProgram(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d functions, %d KB code\n\n", 400, im.Size()/1024)

	// Baseline: decoupled front end, no prefetching.
	base := fdip.DefaultConfig()
	base.MaxInstrs = 1_000_000
	baseRes, err := fdip.Run(base, im, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Fetch-directed prefetching with conservative cache-probe filtering —
	// the paper's headline configuration.
	cfg := base
	cfg.Prefetch.Kind = fdip.PrefetchFDP
	cfg.Prefetch.FDP.CPF = fdip.CPFConservative
	fdpRes, err := fdip.Run(cfg, im, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- no prefetch ---")
	fmt.Println(baseRes)
	fmt.Println("--- fetch-directed prefetching (conservative CPF) ---")
	fmt.Println(fdpRes)
	fmt.Printf("speedup: %+.1f%%\n", fdpRes.SpeedupPctOver(baseRes))
}
