// Quickstart: declare a two-point sweep plan — the no-prefetch baseline and
// fetch-directed prefetching over the same program — stream it through a
// concurrent engine, and print the comparison.
package main

import (
	"context"
	"fmt"
	"log"

	"fdip"
)

func main() {
	// A mid-sized program: ~400 functions, ~150KB of code — several times
	// the 16KB L1-I of the default machine.
	params := fdip.DefaultProgramParams()
	params.NumFuncs = 400
	params.Seed = 42

	// Baseline: decoupled front end, no prefetching.
	base := fdip.DefaultConfig()
	base.MaxInstrs = 1_000_000

	// Fetch-directed prefetching with conservative cache-probe filtering —
	// the paper's headline configuration.
	cfg := base
	cfg.Prefetch.Kind = fdip.PrefetchFDP
	cfg.Prefetch.FDP.CPF = fdip.CPFConservative

	// The sweep as a declaration: one custom workload crossed with a
	// two-point machine axis. Plans expand lazily — this one is tiny, but a
	// million-point plan costs the same to build.
	w := fdip.Workload{Name: "quickstart", Params: params, Seed: 7}
	plan := fdip.NewPlan(base).
		Over(w).
		Axes(fdip.Configs(
			fdip.Named("baseline", base),
			fdip.Named("fdp+cpf", cfg),
		))

	// One engine, one stream: both machines simulate in parallel and each
	// outcome arrives as it completes, tagged with its enumeration Index so
	// collection order never matters.
	eng := fdip.NewEngine()
	results := make([]fdip.Result, plan.Points())
	for out, err := range eng.Stream(context.Background(), plan) {
		if err != nil {
			log.Fatal(err)
		}
		if out.Err != nil {
			log.Fatalf("%s: %v", out.Job.Name, out.Err)
		}
		results[out.Index] = out.Result
	}
	baseRes, fdpRes := results[0], results[1]

	fmt.Println("--- no prefetch ---")
	fmt.Println(baseRes)
	fmt.Println("--- fetch-directed prefetching (conservative CPF) ---")
	fmt.Println(fdpRes)
	fmt.Printf("speedup: %+.1f%%\n", fdpRes.SpeedupPctOver(baseRes))
}
