// Quickstart: build a concurrent engine, run the no-prefetch baseline and
// fetch-directed prefetching over the same program in one two-job sweep, and
// print the comparison.
package main

import (
	"context"
	"fmt"
	"log"

	"fdip"
)

func main() {
	// A mid-sized program: ~400 functions, ~150KB of code — several times
	// the 16KB L1-I of the default machine.
	params := fdip.DefaultProgramParams()
	params.NumFuncs = 400
	params.Seed = 42

	// Baseline: decoupled front end, no prefetching.
	base := fdip.DefaultConfig()
	base.MaxInstrs = 1_000_000

	// Fetch-directed prefetching with conservative cache-probe filtering —
	// the paper's headline configuration.
	cfg := base
	cfg.Prefetch.Kind = fdip.PrefetchFDP
	cfg.Prefetch.FDP.CPF = fdip.CPFConservative

	// One engine, one sweep: both machines over the same program and
	// branch-outcome seed, simulated in parallel. Outcomes come back in
	// job order regardless of which finishes first.
	eng := fdip.NewEngine()
	outs, err := eng.Sweep(context.Background(), []fdip.Job{
		{Name: "baseline", Config: base, Params: &params, Seed: 7},
		{Name: "fdp+cpf", Config: cfg, Params: &params, Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, out := range outs {
		if out.Err != nil {
			log.Fatalf("%s: %v", out.Job.Name, out.Err)
		}
	}
	baseRes, fdpRes := outs[0].Result, outs[1].Result

	fmt.Println("--- no prefetch ---")
	fmt.Println(baseRes)
	fmt.Println("--- fetch-directed prefetching (conservative CPF) ---")
	fmt.Println(fdpRes)
	fmt.Printf("speedup: %+.1f%%\n", fdpRes.SpeedupPctOver(baseRes))
}
