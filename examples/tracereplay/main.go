// Tracereplay: write a compact binary trace of a workload, then re-simulate
// from the trace and confirm the replayed machine behaves identically to the
// live one (run through the engine) — the workflow for sharing reproducible
// inputs.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"fdip"
)

func main() {
	params := fdip.DefaultProgramParams()
	params.NumFuncs = 300
	params.Seed = 11
	const (
		seed   = 99
		instrs = 300_000
	)

	// 1. Record a trace. Only CTI outcomes are stored, so traces are a
	// fraction of a byte per instruction.
	var buf bytes.Buffer
	if err := fdip.WriteTrace(&buf, params, seed, instrs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d instructions in %d bytes (%.3f B/instr)\n\n",
		instrs, buf.Len(), float64(buf.Len())/instrs)

	cfg := fdip.DefaultConfig()
	cfg.MaxInstrs = instrs
	cfg.Prefetch.Kind = fdip.PrefetchFDP
	cfg.Prefetch.FDP.CPF = fdip.CPFConservative

	// 2. Replay the trace through the simulator.
	replayed, err := fdip.ReplayTrace(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the same machine live (through the engine) for comparison.
	live, err := fdip.NewEngine().Run(context.Background(),
		fdip.Job{Name: "live", Config: cfg, Params: &params, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %12s\n", "", "live", "replayed")
	fmt.Printf("%-10s %12.3f %12.3f\n", "IPC", live.IPC, replayed.IPC)
	fmt.Printf("%-10s %12d %12d\n", "cycles", live.Cycles, replayed.Cycles)
	fmt.Printf("%-10s %12d %12d\n", "committed", live.Committed, replayed.Committed)
	fmt.Printf("%-10s %12.2f %12.2f\n", "miss/KI", live.MissPKI, replayed.MissPKI)

	if live.IPC == replayed.IPC && live.Cycles == replayed.Cycles {
		fmt.Println("\nreplay is cycle-exact ✓")
	} else {
		fmt.Println("\nWARNING: replay diverged from live execution")
	}
}
