// Filtering: a close-up of cache-probe filtering, the paper's mechanism for
// keeping useless prefetches off the bus.
//
// The example sweeps one instruction-bound workload under every filtering
// policy in a single parallel batch and shows where candidate prefetches go:
// issued, filtered by an enqueue-time probe, removed by a late probe, or
// dropped as duplicates.
package main

import (
	"context"
	"fmt"
	"log"

	"fdip"
)

func main() {
	w, ok := fdip.WorkloadByName("vortex")
	if !ok {
		log.Fatal("vortex workload missing")
	}

	base := fdip.DefaultConfig()
	base.MaxInstrs = 500_000

	type variant struct {
		name   string
		cpf    fdip.CPFMode
		remove bool
	}
	variants := []variant{
		{"no filtering", fdip.CPFOff, false},
		{"enqueue, conservative", fdip.CPFConservative, false},
		{"enqueue, optimistic", fdip.CPFOptimistic, false},
		{"remove only", fdip.CPFOff, true},
		{"conservative + remove", fdip.CPFConservative, true},
	}

	// Job 0 is the no-prefetch baseline; the rest are FDP variants.
	jobs := []fdip.Job{{Name: "baseline", Workload: w.Name, Config: base}}
	for _, v := range variants {
		cfg := base
		cfg.Prefetch.Kind = fdip.PrefetchFDP
		cfg.Prefetch.FDP.CPF = v.cpf
		cfg.Prefetch.FDP.RemoveCPF = v.remove
		jobs = append(jobs, fdip.Job{Name: v.name, Workload: w.Name, Config: cfg})
	}

	outs, err := fdip.NewEngine().Sweep(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	for _, out := range outs {
		if out.Err != nil {
			log.Fatalf("%s: %v", out.Job.Name, out.Err)
		}
	}

	baseRes := outs[0].Result
	fmt.Printf("workload %s: baseline IPC %.3f, %.1f would-be misses per kinstr\n\n",
		w.Name, baseRes.IPC, baseRes.MissPKI)
	for i, v := range variants {
		res := outs[i+1].Result
		fmt.Printf("%-24s speedup %+6.1f%%  bus %5.1f%%  useful %5.1f%%  issued %d\n",
			v.name, res.SpeedupPctOver(baseRes), res.BusUtilPct, res.UsefulPct, res.PrefetchIssued)
	}

	fmt.Println("\nReading the table: filtering trades a little coverage for a much")
	fmt.Println("cleaner bus — conservative enqueue-probing keeps nearly all of the")
	fmt.Println("speedup while cutting bus occupancy by more than half.")
}
