// Filtering: a close-up of cache-probe filtering, the paper's mechanism for
// keeping useless prefetches off the bus.
//
// The example runs one instruction-bound workload under every filtering
// policy and shows where candidate prefetches go: issued, filtered by an
// enqueue-time probe, removed by a late probe, or dropped as duplicates.
package main

import (
	"fmt"
	"log"

	"fdip"
)

func main() {
	w, ok := fdip.WorkloadByName("vortex")
	if !ok {
		log.Fatal("vortex workload missing")
	}

	base := fdip.DefaultConfig()
	base.MaxInstrs = 500_000
	baseRes, err := fdip.RunWorkload(base, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: baseline IPC %.3f, %.1f would-be misses per kinstr\n\n",
		w.Name, baseRes.IPC, baseRes.MissPKI)

	type variant struct {
		name   string
		cpf    fdip.CPFMode
		remove bool
	}
	for _, v := range []variant{
		{"no filtering", fdip.CPFOff, false},
		{"enqueue, conservative", fdip.CPFConservative, false},
		{"enqueue, optimistic", fdip.CPFOptimistic, false},
		{"remove only", fdip.CPFOff, true},
		{"conservative + remove", fdip.CPFConservative, true},
	} {
		cfg := base
		cfg.Prefetch.Kind = fdip.PrefetchFDP
		cfg.Prefetch.FDP.CPF = v.cpf
		cfg.Prefetch.FDP.RemoveCPF = v.remove
		res, err := fdip.RunWorkload(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s speedup %+6.1f%%  bus %5.1f%%  useful %5.1f%%  issued %d\n",
			v.name, res.SpeedupPctOver(baseRes), res.BusUtilPct, res.UsefulPct, res.PrefetchIssued)
	}

	fmt.Println("\nReading the table: filtering trades a little coverage for a much")
	fmt.Println("cleaner bus — conservative enqueue-probing keeps nearly all of the")
	fmt.Println("speedup while cutting bus occupancy by more than half.")
}
