// Package fdip is the public API of the fetch-directed instruction
// prefetching simulator — a from-scratch Go reproduction of "Fetch Directed
// Instruction Prefetching" (Reinman, Calder, Austin; MICRO-32, 1999).
//
// The library simulates a decoupled front end (branch predictor + fetch
// target queue + fetch engine) over synthetic but behaviourally calibrated
// program images, with fetch-directed prefetching, cache-probe filtering,
// and the paper's baselines (tagged next-line prefetching, stream buffers).
// Two engines from the paper's successors ride alongside: MANA-style
// spatial-region prefetching (PrefetchMANA) and shadow-branch decoding that
// prefills the FTB ahead of the predictor (PrefetchShadow).
//
// The primary surface is the v3 Plan/Stream pair over the concurrent
// Engine: a context-aware, worker-pooled, memoising executor. A Plan
// declares a parameter space from composable axes — workloads (Over), knob
// sweeps (Vary), explicit named machines (Configs) — and expands it lazily,
// so a million-point sweep never materializes a million-entry slice.
// Engine.Stream ranges over a plan's outcomes as each job completes, with
// in-flight work bounded by the worker pool and an early break cancelling
// everything outstanding. Identical jobs simulate once (the engine
// coalesces duplicates), and results are bit-identical whatever the worker
// count or delivery order, so sweeps scale across cores without changing
// the science.
//
// Quick start — one run:
//
//	eng := fdip.NewEngine(fdip.WithWorkers(8), fdip.WithInstrBudget(1_000_000))
//	cfg := fdip.DefaultConfig()
//	cfg.Prefetch.Kind = fdip.PrefetchFDP
//	res, _ := eng.Run(context.Background(), fdip.Job{Workload: "gcc", Config: cfg})
//	fmt.Println(res)
//
// A declarative sweep streams a knob axis across the calibrated suite,
// delivering each point as it finishes:
//
//	plan := fdip.NewPlan(cfg).
//		Over(fdip.Workloads()...).
//		Axes(fdip.Vary("ftq", []int{4, 8, 16, 32}, func(c *fdip.Config, n int) {
//			c.FTQEntries = n
//		}).WithBaseline("base", fdip.DefaultConfig()))
//	for out, err := range eng.Stream(ctx, plan) {
//		if err != nil {
//			break // context cancelled
//		}
//		fmt.Println(out.Job.Name, out.Result.IPC)
//	}
//
// Explicit job slices still work — Sweep is the ordered collector over
// Stream and returns one outcome per job in job order:
//
//	outs, _ := eng.Sweep(ctx, jobs)
//	fdip.WriteOutcomesJSON(os.Stdout, outs) // machine-readable export
//
// Sweeps also run distributed: a DistCoordinator shards a Plan's enumeration
// across worker processes (spawned binaries or remote HTTP workers, see
// cmd/fdipd) over an NDJSON wire protocol, with checkpoint/resume journalling
// and retry-with-reassignment for dead workers, and merges the shard streams
// back into the exact single-process stream contract — outcomes are
// bit-identical whatever the shard count or failure history:
//
//	coord := fdip.NewDistCoordinator(fdip.DistOptions{
//		Dialer:  fdip.DistExec{Path: "/usr/local/bin/fdipd"},
//		Shards:  8,
//		Journal: "sweep.journal", // kill it, rerun it, nothing re-executes
//	})
//	for out, err := range coord.Stream(ctx, plan) { ... }
//
// For spaces too large to collect at all, mergeable reducers (DistSummary:
// online moments, a fixed-bucket histogram sketch, and fixed-memory
// top-k/bottom-k) fold each shard locally and merge to exactly the
// single-pass summary.
//
// Above the coordinator sits the sweep service (SweepServer; fdipd -serve):
// a long-running daemon with a persistent priority job queue, a shared
// fingerprint-keyed result cache (JobKey) that serves overlapping
// submissions without re-execution, NDJSON streaming endpoints with
// cursor-based reconnect, and worker self-registration with heartbeats
// (DistRegistry) — all preserving the same bit-identity contract through
// worker kills, client disconnects, and service restarts.
//
// Progress streams as typed events (WithProgress), runs honour context
// cancellation and deadlines, and failures return as errors. See
// ARCHITECTURE.md for the architecture and the reproduced evaluation.
package fdip

import (
	"context"
	"io"
	"time"

	"fdip/internal/core"
	"fdip/internal/dist"
	"fdip/internal/engine"
	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/stats"
	"fdip/internal/svc"
	"fdip/internal/trace"
	"fdip/internal/workloads"
)

// Re-exported configuration and result types. These aliases are the public
// names; the internal packages are implementation detail.
type (
	// Config describes the simulated machine.
	Config = core.Config
	// Result is the measurement snapshot of a run.
	Result = core.Result
	// PrefetcherKind selects a prefetch scheme.
	PrefetcherKind = core.PrefetcherKind
	// PrefetchConfig tunes the selected scheme.
	PrefetchConfig = core.PrefetchConfig
	// FDPConfig tunes fetch-directed prefetching.
	FDPConfig = prefetch.FDPConfig
	// CPFMode selects the cache-probe-filtering policy.
	CPFMode = prefetch.CPFMode
	// MANAConfig tunes MANA-style spatial-region prefetching.
	MANAConfig = prefetch.MANAConfig
	// ShadowConfig tunes the shadow-branch decoder.
	ShadowConfig = prefetch.ShadowConfig
	// ProgramParams control synthetic program generation.
	ProgramParams = program.Params
	// Image is a generated static program.
	Image = program.Image
	// Workload is a named, calibrated benchmark.
	Workload = workloads.Workload
)

// Engine API types. The Engine is the package's concurrent executor; see the
// package comment for the model.
type (
	// Engine runs jobs on a bounded worker pool with memoisation.
	Engine = engine.Engine
	// Job names one simulation point: a Config over a named Workload or
	// explicit ProgramParams, with an oracle seed.
	Job = engine.Job
	// Plan is a declarative, lazily expanded parameter space: workloads
	// crossed with configuration axes. Stream it, or collect it point by
	// point.
	Plan = engine.Plan
	// Axis is one dimension of a Plan (a Vary knob sweep or a Configs
	// point list).
	Axis = engine.Axis
	// NamedConfig is an explicit, named machine configuration — a point of
	// a Configs axis.
	NamedConfig = engine.NamedConfig
	// RunOutcome pairs a job with its result (or error) inside a sweep or
	// stream; Index is its position in plan enumeration (job-slice) order.
	RunOutcome = engine.RunOutcome
	// EngineStats snapshots engine counters (simulations, cache hits).
	EngineStats = engine.Stats
	// Event is a typed progress notification.
	Event = engine.Event
	// EventKind classifies progress events.
	EventKind = engine.EventKind
	// Option configures NewEngine.
	Option = engine.Option
	// ImageCache memoises program generation; share one across engines
	// with WithImageCache.
	ImageCache = engine.ImageCache
)

// Progress event kinds.
const (
	EventJobStarted = engine.EventJobStarted
	EventJobDone    = engine.EventJobDone
	EventJobCached  = engine.EventJobCached
	EventJobFailed  = engine.EventJobFailed
)

// NewEngine builds a concurrent simulation engine. Defaults: GOMAXPROCS
// workers, per-job instruction budgets, no progress sink, a private image
// cache.
func NewEngine(opts ...Option) *Engine { return engine.New(opts...) }

// WithWorkers bounds concurrent simulations. n <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option { return engine.WithWorkers(n) }

// WithInstrBudget overrides every job's committed-instruction budget
// (Config.MaxInstrs). Zero leaves job configs untouched.
func WithInstrBudget(n uint64) Option { return engine.WithInstrBudget(n) }

// WithProgress streams typed progress events to fn; delivery is serialised.
func WithProgress(fn func(Event)) Option { return engine.WithProgress(fn) }

// WithImageCache shares a program-image cache between engines.
func WithImageCache(c *ImageCache) Option { return engine.WithImageCache(c) }

// NewImageCache builds an empty shareable image cache.
func NewImageCache() *ImageCache { return engine.NewImageCache() }

// NewPlan starts a declarative sweep plan over the given base machine.
// Compose it with Over (workloads), Axes (Vary/Configs), Set (fixed
// overrides), and Append (explicit jobs), then run it with Engine.Stream or
// enumerate it with Plan.Jobs.
func NewPlan(base Config) *Plan { return engine.NewPlan(base) }

// FromJobs wraps an explicit job slice as a Plan — the bridge from the v2
// slice-of-jobs surface to Stream.
func FromJobs(jobs ...Job) *Plan { return engine.FromJobs(jobs...) }

// Vary builds a plan axis that sweeps one configuration knob over vals,
// labelling each point "name=value".
func Vary[T any](name string, vals []T, apply func(*Config, T)) Axis {
	return engine.Vary(name, vals, apply)
}

// Configs builds a plan axis of explicit full machines (each point replaces
// the plan's base configuration wholesale).
func Configs(points ...NamedConfig) Axis { return engine.Configs(points...) }

// Named pairs a label with a full machine configuration for a Configs axis.
func Named(name string, cfg Config) NamedConfig { return engine.Named(name, cfg) }

// WriteResultJSON writes one Result as indented JSON.
func WriteResultJSON(w io.Writer, res Result) error { return engine.WriteResultJSON(w, res) }

// WriteOutcomesJSON writes sweep outcomes as an indented JSON array — the
// machine-readable form of a whole sweep for downstream tooling.
func WriteOutcomesJSON(w io.Writer, outs []RunOutcome) error {
	return engine.WriteOutcomesJSON(w, outs)
}

// Distributed-sweep API (the dist subsystem; cmd/fdipd is its daemon).
type (
	// DistCoordinator shards Plans across worker sessions and merges the
	// shard streams back into the engine.Stream contract.
	DistCoordinator = dist.Coordinator
	// DistOptions configures a coordinator (dialer, shard count, chunking,
	// journal path, retry budget).
	DistOptions = dist.Options
	// DistDialer mints worker sessions; DistSession is one live worker.
	DistDialer  = dist.Dialer
	DistSession = dist.Session
	// DistAssignment is one contiguous index range of a plan, shipped as
	// resolved jobs.
	DistAssignment = dist.Assignment
	// DistWorker is the execution side of a shard (what fdipd wraps).
	DistWorker = dist.Worker
	// DistLoopback dials in-process workers (tests, single-machine use);
	// DistExec spawns stdio worker processes; DistHTTP talks to a running
	// fdipd -listen worker.
	DistLoopback = dist.Loopback
	DistExec     = dist.Exec
	DistHTTP     = dist.HTTP
	// DistMetric projects an outcome to the scalar a DistSummary reduces.
	DistMetric = dist.Metric
	// DistSummary is the mergeable sweep reduction: online moments, a
	// fixed-bucket histogram sketch, and fixed-memory top-k/bottom-k
	// extremes, shard-mergeable with results identical to a single
	// sequential pass.
	DistSummary = dist.Summary
	// DistRegistry is the dynamic session pool: workers self-register (and
	// heartbeat) instead of arriving via static dialer lists; dead workers
	// are evicted so retries land elsewhere.
	DistRegistry = dist.Registry
	// DistWorkerInfo describes one registered worker.
	DistWorkerInfo = dist.WorkerInfo
	// DistCache is the coordinator's cross-sweep result-cache hook, keyed
	// on JobKey.
	DistCache = dist.Cache
	// JobKey is a job's exported simulation identity — equal keys are
	// bit-identical results (the memo/cache/fingerprint key).
	JobKey = engine.JobKey
	// Moments is the mergeable online mean/variance accumulator.
	Moments = stats.Moments
	// HistogramSketch is the mergeable fixed-bucket histogram reducer.
	HistogramSketch = stats.HistogramSketch
	// JobTopK retains the k best (or worst) scored jobs of a stream in
	// O(k) memory, mergeable across shards; ScoredJob is one entry.
	JobTopK   = stats.TopK[engine.Job]
	ScoredJob = stats.ScoredItem[engine.Job]
)

// ErrDistQuiesced wraps the terminal stream error after a graceful
// coordinator drain (DistOptions.Quiesce).
var ErrDistQuiesced = dist.ErrQuiesced

// ResolveJob resolves a job exactly as the engine would (name, seed, config
// defaults, optional instruction-budget override) and returns its JobKey.
func ResolveJob(job Job, instrs uint64) (Job, JobKey, error) {
	return engine.ResolveJob(job, instrs)
}

// NewDistRegistry builds a worker registry whose registrations expire ttl
// after their last heartbeat (0 = 15s).
func NewDistRegistry(ttl time.Duration) *DistRegistry { return dist.NewRegistry(ttl) }

// Sweep-service API (the svc subsystem; fdipd -serve/-register/-submit/-watch
// are its daemon and clients).
type (
	// SweepServer is the service: persistent priority queue, shared result
	// cache, streaming endpoints, self-registering workers.
	SweepServer = svc.Server
	// SweepServerOptions configures New: state directory, shard fan-out,
	// queue bound, worker TTL.
	SweepServerOptions = svc.Options
	// SweepRequest describes one submission (workloads x named configs).
	SweepRequest = svc.SubmitRequest
	// SweepConfigPoint is one named machine configuration of a request.
	SweepConfigPoint = svc.ConfigPoint
	// SweepJobStatus is a submission's externally visible state, including
	// the cache-served point accounting.
	SweepJobStatus = svc.JobStatus
	// SweepStreamFrame is one NDJSON stream record (outcome/done/error),
	// carrying the reconnect cursor.
	SweepStreamFrame = svc.StreamFrame
	// SweepClient talks to a sweep service over HTTP: submit, status,
	// stream (with cursor resume), and worker registration/heartbeat.
	SweepClient = svc.Client
)

// ErrSweepQueueFull reports submission backpressure (HTTP 429).
var ErrSweepQueueFull = svc.ErrQueueFull

// NewSweepServer opens (or restores) service state under opts.StateDir and
// starts the scheduler; mount Handler on an HTTP server and Shutdown to
// drain gracefully.
func NewSweepServer(opts SweepServerOptions) (*SweepServer, error) { return svc.New(opts) }

// NewDistCoordinator builds a sharding coordinator; zero options default
// (1 shard, 32-point chunks, 2 retries, no journal).
func NewDistCoordinator(opts DistOptions) *DistCoordinator { return dist.New(opts) }

// NewDistWorker builds a worker whose engines run at most workers concurrent
// simulations (0 = GOMAXPROCS).
func NewDistWorker(workers int) *DistWorker { return dist.NewWorker(workers) }

// DistRoundRobin fans session dials across several dialers in rotation (one
// HTTP dialer per worker host).
func DistRoundRobin(dialers ...DistDialer) DistDialer { return dist.RoundRobin(dialers...) }

// NewDistSummary builds a mergeable summary over metric, retaining k
// extremes each way; DistIPC is the canonical metric.
func NewDistSummary(name string, k int, metric DistMetric) *DistSummary {
	return dist.NewSummary(name, k, metric)
}

// DistIPC reduces an outcome to its instructions-per-cycle.
func DistIPC(out RunOutcome) float64 { return dist.IPC(out) }

// Prefetch scheme names.
const (
	PrefetchNone     = core.PrefetchNone
	PrefetchNextLine = core.PrefetchNextLine
	PrefetchStream   = core.PrefetchStream
	PrefetchFDP      = core.PrefetchFDP
	PrefetchMANA     = core.PrefetchMANA
	PrefetchShadow   = core.PrefetchShadow
)

// Cache-probe-filtering modes.
const (
	CPFOff          = prefetch.CPFOff
	CPFConservative = prefetch.CPFConservative
	CPFOptimistic   = prefetch.CPFOptimistic
)

// DefaultConfig returns the paper-inspired baseline machine (16KB 2-way
// L1-I, 32-entry FTQ, hybrid predictor, 512x4 FTB, no prefetching).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultProgramParams returns a moderate synthetic program description.
func DefaultProgramParams() ProgramParams { return program.DefaultParams() }

// GenerateProgram builds a synthetic program image.
func GenerateProgram(p ProgramParams) (*Image, error) { return program.Generate(p) }

// Workloads returns the calibrated benchmark suite (stand-ins for the
// paper's SPEC95/C++ programs).
func Workloads() []Workload { return workloads.All() }

// WorkloadByName finds a benchmark by name ("gcc", "vortex", ...).
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Run simulates cfg over the image with branch outcomes drawn from seed,
// returning the final measurements.
//
// Deprecated: use Engine.Run (or Engine.RunImage for a pre-generated image),
// which adds cancellation, memoisation, and parallel batching.
func Run(cfg Config, im *Image, seed int64) (Result, error) {
	return NewEngine(WithWorkers(1)).RunImage(context.Background(), cfg, im, seed)
}

// RunWorkload simulates cfg over a named workload.
//
// Deprecated: use Engine.Run with a Job naming the workload.
func RunWorkload(cfg Config, w Workload) (Result, error) {
	params := w.Params
	return NewEngine(WithWorkers(1)).Run(context.Background(),
		Job{Name: w.Name, Config: cfg, Params: &params, Seed: w.Seed})
}

// Simulator exposes cycle-level control for callers that want to observe the
// machine mid-run (examples, visualisation, tests).
type Simulator struct {
	p *core.Processor
}

// NewSimulator assembles a machine without running it.
func NewSimulator(cfg Config, im *Image, seed int64) (*Simulator, error) {
	p, err := core.New(cfg, im, oracle.NewWalker(im, seed))
	if err != nil {
		return nil, err
	}
	return &Simulator{p: p}, nil
}

// Step advances one cycle.
func (s *Simulator) Step() { s.p.Step() }

// StepN advances n cycles.
func (s *Simulator) StepN(n int) {
	for i := 0; i < n; i++ {
		s.p.Step()
	}
}

// Cycle returns the current cycle number.
func (s *Simulator) Cycle() int64 { return s.p.Now() }

// Committed returns instructions retired so far.
func (s *Simulator) Committed() uint64 { return s.p.Committed() }

// Run finishes the simulation per the config's limits and returns results.
func (s *Simulator) Run() Result { return s.p.Run() }

// RunContext is Run with cooperative cancellation.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) { return s.p.RunContext(ctx) }

// Snapshot returns measurements at the current cycle without stopping.
func (s *Simulator) Snapshot() Result { return s.p.Finalize() }

// WriteTrace executes n instructions of the program generated from params
// (walker seeded with seed) and writes a compact binary trace to w.
func WriteTrace(w io.Writer, params ProgramParams, seed int64, n uint64) error {
	im, err := program.Generate(params)
	if err != nil {
		return err
	}
	walker := oracle.NewWalker(im, seed)
	tw, err := trace.NewWriter(w, params, seed, im)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		rec, ok := walker.Next()
		if !ok {
			break
		}
		tw.Append(rec)
	}
	return tw.Flush()
}

// ReplayTrace simulates cfg over a previously written trace; the program
// image is regenerated from the trace header. The run ends at the trace's
// recorded horizon even if cfg.MaxInstrs is larger. A machine that cannot
// make progress (deadlock) returns an error rather than panicking.
func ReplayTrace(r io.Reader, cfg Config) (Result, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return Result{}, err
	}
	p, err := core.New(cfg, tr.Image(), tr)
	if err != nil {
		return Result{}, err
	}
	return p.RunContext(context.Background())
}

// Version identifies the library release.
const Version = "3.3.0"
