package ftq

import (
	"math/rand"
	"testing"

	"fdip/internal/isa"
)

// ftqTrace drives a deterministic push/pop/squash/scan mix and records the
// queue's full observable surface: block fields, line decompositions, and
// counters.
func ftqTrace(q *Queue, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	for i := 0; i < 1500; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			ok := q.Push(Block{
				Seq:       uint64(i),
				Start:     uint64(rng.Intn(1<<12)) * 4,
				NumInstrs: 1 + rng.Intn(8),
				EndsInCTI: rng.Intn(2) == 0,
				CTIKind:   isa.CondBranch,
				PredTaken: rng.Intn(2) == 0,
			})
			if ok {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case 2:
			if b := q.Head(); b != nil {
				b.FetchedInstrs++
				if b.Done() {
					q.PopHead()
				}
				out = append(out, b.Start, uint64(b.FetchedInstrs))
			}
		case 3:
			if rng.Intn(10) == 0 {
				q.Squash()
			}
		case 4:
			q.Scan(rng.Intn(3), func(idx int, b *Block) bool {
				out = append(out, uint64(idx), b.Seq, b.Start, uint64(len(b.Lines)))
				for _, ln := range b.Lines {
					out = append(out, ln.Addr, uint64(ln.State))
				}
				return idx < 4
			})
		}
		out = append(out, uint64(q.Len()))
	}
	return append(out, q.Pushed, q.Squashes, q.FullStalls)
}

// TestQueueResetEqualsFresh dirties a queue (including its reusable line
// buffers), resets it, and requires the exact observable behaviour of a
// freshly constructed queue.
func TestQueueResetEqualsFresh(t *testing.T) {
	for _, capacity := range []int{1, 4, 32} {
		dirty := New(capacity, 32)
		ftqTrace(dirty, 1)
		dirty.Reset()
		got := ftqTrace(dirty, 2)
		want := ftqTrace(New(capacity, 32), 2)
		if len(got) != len(want) {
			t.Fatalf("cap=%d: trace lengths differ: %d vs %d", capacity, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cap=%d: reset queue diverged from fresh at trace step %d: %d != %d", capacity, i, got[i], want[i])
			}
		}
	}
}
