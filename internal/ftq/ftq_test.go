package ftq

import (
	"testing"
	"testing/quick"

	"fdip/internal/isa"
)

func TestPushPopFIFO(t *testing.T) {
	q := New(4, 32)
	for i := 0; i < 4; i++ {
		if !q.Push(Block{Seq: uint64(i), Start: uint64(0x1000 + i*64), NumInstrs: 4}) {
			t.Fatalf("Push %d failed", i)
		}
	}
	if !q.Full() {
		t.Error("queue not full")
	}
	if q.Push(Block{Seq: 99, Start: 0x9000, NumInstrs: 4}) {
		t.Error("Push into full queue succeeded")
	}
	if q.FullStalls != 1 {
		t.Errorf("FullStalls = %d", q.FullStalls)
	}
	for i := 0; i < 4; i++ {
		h := q.Head()
		if h == nil || h.Seq != uint64(i) {
			t.Fatalf("Head seq = %v, want %d", h, i)
		}
		q.PopHead()
	}
	if !q.Empty() {
		t.Error("queue not empty after draining")
	}
	if q.Head() != nil {
		t.Error("Head on empty queue non-nil")
	}
}

func TestLineDecomposition(t *testing.T) {
	q := New(8, 32)
	// Block of 6 instrs starting 8 bytes before a line boundary spans 2
	// lines: [0x1018, 0x1030).
	q.Push(Block{Start: 0x1018, NumInstrs: 6})
	b := q.Head()
	if len(b.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(b.Lines))
	}
	if b.Lines[0].Addr != 0x1000 || b.Lines[1].Addr != 0x1020 {
		t.Errorf("line addrs = %#x %#x", b.Lines[0].Addr, b.Lines[1].Addr)
	}
	for _, ln := range b.Lines {
		if ln.State != LineCandidate {
			t.Errorf("fresh line state = %v", ln.State)
		}
	}
	// Single-instruction block spans exactly one line.
	q.Push(Block{Start: 0x2000, NumInstrs: 1})
	if got := len(q.At(1).Lines); got != 1 {
		t.Errorf("single-instr lines = %d", got)
	}
}

func TestLineStateSticksAcrossScan(t *testing.T) {
	q := New(8, 32)
	q.Push(Block{Start: 0x1000, NumInstrs: 8})
	q.Push(Block{Start: 0x2000, NumInstrs: 8})
	q.At(1).Lines[0].State = LineEnqueued
	found := false
	q.Scan(1, func(i int, b *Block) bool {
		if b.Start == 0x2000 && b.Lines[0].State == LineEnqueued {
			found = true
		}
		return true
	})
	if !found {
		t.Error("line state lost between Scan calls")
	}
}

func TestScanRange(t *testing.T) {
	q := New(8, 32)
	for i := 0; i < 5; i++ {
		q.Push(Block{Seq: uint64(i), Start: uint64(0x1000 + i*32), NumInstrs: 4})
	}
	var seen []uint64
	q.Scan(1, func(i int, b *Block) bool {
		seen = append(seen, b.Seq)
		return true
	})
	if len(seen) != 4 || seen[0] != 1 || seen[3] != 4 {
		t.Errorf("Scan(1) saw %v", seen)
	}
	// Early stop.
	n := 0
	q.Scan(0, func(i int, b *Block) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early-stop scan visited %d", n)
	}
}

func TestSquash(t *testing.T) {
	q := New(4, 32)
	q.Push(Block{Start: 0x1000, NumInstrs: 4})
	q.Push(Block{Start: 0x2000, NumInstrs: 4})
	q.Squash()
	if !q.Empty() || q.Squashes != 1 {
		t.Errorf("after squash: len=%d squashes=%d", q.Len(), q.Squashes)
	}
	// Queue is reusable after squash.
	if !q.Push(Block{Start: 0x3000, NumInstrs: 4}) {
		t.Error("Push after squash failed")
	}
	if q.Head().Start != 0x3000 {
		t.Error("head wrong after squash+push")
	}
}

func TestWrapAround(t *testing.T) {
	q := New(3, 32)
	seq := uint64(0)
	push := func() {
		if !q.Push(Block{Seq: seq, Start: 0x1000 + seq*128, NumInstrs: 4}) {
			t.Fatalf("push %d failed", seq)
		}
		seq++
	}
	push()
	push()
	q.PopHead()
	push()
	push() // wraps
	want := uint64(1)
	for !q.Empty() {
		if q.Head().Seq != want {
			t.Fatalf("head seq = %d, want %d", q.Head().Seq, want)
		}
		q.PopHead()
		want++
	}
	if want != 4 {
		t.Errorf("drained %d entries, want 3", want-1)
	}
}

func TestBlockHelpers(t *testing.T) {
	b := Block{Start: 0x1000, NumInstrs: 4}
	if b.End() != 0x1010 {
		t.Errorf("End = %#x", b.End())
	}
	if b.NextFetchPC() != 0x1000 {
		t.Errorf("NextFetchPC = %#x", b.NextFetchPC())
	}
	b.FetchedInstrs = 2
	if b.NextFetchPC() != 0x1008 {
		t.Errorf("NextFetchPC = %#x", b.NextFetchPC())
	}
	if b.Done() {
		t.Error("Done early")
	}
	b.FetchedInstrs = 4
	if !b.Done() {
		t.Error("not Done")
	}
}

func TestAtOutOfRange(t *testing.T) {
	q := New(4, 32)
	q.Push(Block{Start: 0x1000, NumInstrs: 1})
	if q.At(-1) != nil || q.At(1) != nil {
		t.Error("At out of range returned entry")
	}
}

func TestLineStateString(t *testing.T) {
	for _, s := range []LineState{LineCandidate, LineEnqueued, LinePrefetched, LineFiltered, LineState(77)} {
		if s.String() == "" {
			t.Errorf("state %d: empty string", s)
		}
	}
}

// Property: FIFO order is preserved under arbitrary push/pop interleavings,
// and every block's lines cover exactly [Start, End).
func TestQuickFIFOAndLineCover(t *testing.T) {
	q := New(8, 32)
	var model []uint64
	seq := uint64(0)
	f := func(push bool, nInstr uint8) bool {
		if push && !q.Full() {
			n := 1 + int(nInstr)%8
			b := Block{Seq: seq, Start: 0x1000 + seq*64, NumInstrs: n}
			q.Push(b)
			model = append(model, seq)
			seq++
			// Check line cover of the entry just pushed.
			e := q.At(q.Len() - 1)
			first := e.Lines[0].Addr
			last := e.Lines[len(e.Lines)-1].Addr
			if first > e.Start || last+32 < e.End() {
				return false
			}
			for i := 1; i < len(e.Lines); i++ {
				if e.Lines[i].Addr != e.Lines[i-1].Addr+32 {
					return false
				}
			}
		} else if !q.Empty() {
			h := q.Head()
			if h.Seq != model[0] {
				return false
			}
			model = model[1:]
			q.PopHead()
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	_ = isa.InstrBytes
}
