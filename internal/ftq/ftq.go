// Package ftq implements the fetch target queue — the structure that
// decouples the branch-prediction unit from the fetch engine and whose
// non-head entries feed fetch-directed prefetching.
//
// Each entry is a predicted fetch block. The queue tracks, per cache line a
// block spans, the prefetch engine's progress on that line (candidate,
// enqueued, prefetched, or filtered), which is how the original design
// avoided re-prefetching lines as the prefetch engine re-scans the queue.
package ftq

import (
	"fmt"

	"fdip/internal/bpred"
	"fdip/internal/isa"
)

// LineState tracks the prefetch engine's progress on one cache line of a
// fetch block.
type LineState uint8

const (
	// LineCandidate lines have not been considered yet.
	LineCandidate LineState = iota
	// LineEnqueued lines sit in the prefetch instruction queue.
	LineEnqueued
	// LinePrefetched lines have had a prefetch issued.
	LinePrefetched
	// LineFiltered lines were dropped by a filter (already cached, or
	// rejected by cache-probe filtering).
	LineFiltered
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case LineCandidate:
		return "candidate"
	case LineEnqueued:
		return "enqueued"
	case LinePrefetched:
		return "prefetched"
	case LineFiltered:
		return "filtered"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Line is one cache line spanned by a fetch block.
type Line struct {
	// Addr is the line-aligned address.
	Addr uint64
	// State is the prefetch progress for this line.
	State LineState
}

// Block is one FTQ entry: a predicted fetch block plus the recovery state
// captured when it was predicted.
type Block struct {
	// Seq is the BPU's monotonically increasing block sequence number.
	Seq uint64
	// Start is the block's first instruction address.
	Start uint64
	// NumInstrs is the predicted block length, including the terminating
	// CTI when EndsInCTI.
	NumInstrs int
	// EndsInCTI reports whether the block ends in a predicted CTI (false
	// for maximal sequential blocks predicted on an FTB miss).
	EndsInCTI bool
	// CTIKind is the terminator's kind when EndsInCTI.
	CTIKind isa.Kind
	// PredTaken is the predicted direction of the terminator.
	PredTaken bool
	// PredTarget is the predicted target when PredTaken.
	PredTarget uint64
	// FTBHit records whether the FTB supplied this block.
	FTBHit bool
	// HistCP is the direction-predictor history checkpoint taken before
	// this block's terminator predicted.
	HistCP uint64
	// RASCP is the return-address-stack checkpoint taken before this
	// block's terminator adjusted the stack.
	RASCP bpred.RASCheckpoint
	// FetchedInstrs is the fetch engine's progress through the block.
	FetchedInstrs int
	// Lines lists the cache lines the block spans, in address order.
	Lines []Line
}

// End returns the first byte address past the block.
func (b *Block) End() uint64 { return b.Start + uint64(b.NumInstrs)*isa.InstrBytes }

// NextFetchPC returns the address of the next unfetched instruction.
func (b *Block) NextFetchPC() uint64 {
	return b.Start + uint64(b.FetchedInstrs)*isa.InstrBytes
}

// Done reports whether the fetch engine has consumed the whole block.
func (b *Block) Done() bool { return b.FetchedInstrs >= b.NumInstrs }

// Queue is a bounded FIFO of fetch blocks.
type Queue struct {
	lineSize int
	entries  []Block
	head     int
	count    int
	// newestSeq is the Seq of the most recently pushed block, captured at
	// CommitPush. It is monotone over the queue's lifetime and only
	// meaningful while the queue is non-empty — the prefetch scan's "is
	// there anything unscanned?" fast path reads it instead of chasing the
	// tail block through the ring every cycle.
	newestSeq uint64

	// Pushed and Squashes count queue traffic; FullStalls counts Push
	// rejections due to a full queue.
	Pushed, Squashes, FullStalls uint64
}

// New creates a queue of the given capacity (fetch blocks) for a cache with
// the given line size.
func New(capacity, lineSize int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if lineSize < isa.InstrBytes {
		lineSize = isa.InstrBytes
	}
	return &Queue{lineSize: lineSize, entries: make([]Block, capacity)}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.entries) }

// wrap folds a position into [0, cap). Positions exceed the capacity by at
// most one lap, so a conditional subtract replaces a modulo on hot paths.
func (q *Queue) wrap(i int) int {
	if i >= len(q.entries) {
		i -= len(q.entries)
	}
	return i
}

// Len returns the number of queued blocks.
func (q *Queue) Len() int { return q.count }

// Empty reports whether the queue is empty.
func (q *Queue) Empty() bool { return q.count == 0 }

// Full reports whether the queue is full.
func (q *Queue) Full() bool { return q.count == len(q.entries) }

// LineSize returns the cache line size used to decompose blocks.
func (q *Queue) LineSize() int { return q.lineSize }

// Push appends a block, computing its line decomposition. It returns false
// (and counts a stall) when the queue is full. The slot's previous line
// buffer is reused, so steady-state pushes do not allocate. Hot callers that
// want to avoid copying the block twice should use PushSlot/CommitPush.
func (q *Queue) Push(b Block) bool {
	s := q.PushSlot()
	if s == nil {
		return false
	}
	lines := s.Lines
	*s = b
	s.Lines = lines
	q.CommitPush()
	return true
}

// PushSlot begins an in-place push: it reserves the next queue slot and
// returns it, or nil — counting a stall — when the queue is full. The
// reusable line buffer is retained (reset to length zero) and only the
// fields an in-place builder may leave unset — EndsInCTI, CTIKind,
// PredTaken, PredTarget, FetchedInstrs — are cleared; the caller must
// assign Seq, Start, NumInstrs, FTBHit, HistCP, and RASCP (zeroing the
// whole ~100-byte block per push was measurable in the prediction hot
// path). The caller must then call CommitPush, which derives the slot's
// cache-line decomposition and makes it visible. Nothing else may touch
// the queue in between.
func (q *Queue) PushSlot() *Block {
	if q.Full() {
		q.FullStalls++
		return nil
	}
	b := &q.entries[q.wrap(q.head+q.count)]
	b.Lines = b.Lines[:0]
	b.EndsInCTI = false
	b.CTIKind = 0
	b.PredTaken = false
	b.PredTarget = 0
	b.FetchedInstrs = 0
	return b
}

// CommitPush completes a push started with PushSlot.
func (q *Queue) CommitPush() {
	b := &q.entries[q.wrap(q.head+q.count)]
	first := b.Start &^ uint64(q.lineSize-1)
	last := (b.End() - 1) &^ uint64(q.lineSize-1)
	for addr := first; addr <= last; addr += uint64(q.lineSize) {
		b.Lines = append(b.Lines, Line{Addr: addr, State: LineCandidate})
	}
	q.newestSeq = b.Seq
	q.count++
	q.Pushed++
}

// NewestSeq returns the sequence number of the youngest queued block. Only
// meaningful when the queue is non-empty.
func (q *Queue) NewestSeq() uint64 { return q.newestSeq }

// Head returns the fetch point, or nil when empty.
func (q *Queue) Head() *Block {
	if q.count == 0 {
		return nil
	}
	return &q.entries[q.head]
}

// At returns the i-th block from the head (At(0) == Head()), or nil when out
// of range. The pointer is valid until the next Push/Pop/Squash.
func (q *Queue) At(i int) *Block {
	if i < 0 || i >= q.count {
		return nil
	}
	return &q.entries[q.wrap(q.head+i)]
}

// PopHead removes the fetch point after the fetch engine consumes it.
func (q *Queue) PopHead() {
	if q.count == 0 {
		return
	}
	q.head = q.wrap(q.head + 1)
	q.count--
}

// Squash empties the queue (branch misprediction redirect).
func (q *Queue) Squash() {
	q.head = 0
	q.count = 0
	q.Squashes++
}

// Reset restores the pristine just-constructed state: an empty queue with
// counters zeroed. Each slot's reusable line buffer is retained (PushSlot
// and its caller contract rebuild every field before a slot becomes
// visible, so stale block contents are unobservable).
func (q *Queue) Reset() {
	q.head = 0
	q.count = 0
	q.Pushed, q.Squashes, q.FullStalls = 0, 0, 0
}

// Scan calls fn for blocks starting at index from (0 == head) until fn
// returns false or the queue is exhausted. It is the prefetch engine's view
// of upcoming fetch addresses.
func (q *Queue) Scan(from int, fn func(idx int, b *Block) bool) {
	for i := from; i < q.count; i++ {
		if !fn(i, q.At(i)) {
			return
		}
	}
}
