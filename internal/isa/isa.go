// Package isa defines the synthetic instruction set used throughout the
// simulator.
//
// The reproduction targets an instruction *fetch* study, so the ISA only
// models what the front end and a scoreboard backend can observe: an
// instruction kind, register operands (for backend dependence modelling), an
// execution latency class, and — for direct control-transfer instructions —
// a static target address.
//
// Instructions are fixed-width (4 bytes) and word aligned, matching the
// RISC-style machines the original paper simulated.
package isa

import "fmt"

// InstrBytes is the size of every instruction in bytes. All instruction
// addresses are InstrBytes-aligned.
const InstrBytes = 4

// Kind enumerates instruction categories. The front end cares about the
// control-transfer kinds; the backend cares about latency and operands.
type Kind uint8

const (
	// Nop performs no work. Used for padding between functions.
	Nop Kind = iota
	// ALU is a single-cycle integer operation.
	ALU
	// Mul is a multi-cycle integer operation (multiply/divide class).
	Mul
	// Load reads memory; the backend charges the data-cache hit latency.
	Load
	// Store writes memory; retires without stalling consumers.
	Store
	// FPU is a multi-cycle floating-point operation.
	FPU
	// CondBranch is a conditional direct branch: taken → Target, else
	// fall through.
	CondBranch
	// Jump is an unconditional direct branch to Target.
	Jump
	// Call is a direct function call to Target; pushes the return address.
	Call
	// Ret returns to the address on top of the call stack.
	Ret
	// IndirectJump jumps through a register; the dynamic target comes from
	// the oracle. Predicted via the BTB's last-seen target.
	IndirectJump
	// IndirectCall calls through a register; pushes the return address.
	IndirectCall

	numKinds
)

// NumKinds reports the number of distinct instruction kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	Nop: "nop", ALU: "alu", Mul: "mul", Load: "load", Store: "store",
	FPU: "fpu", CondBranch: "bcond", Jump: "jump", Call: "call", Ret: "ret",
	IndirectJump: "ijump", IndirectCall: "icall",
}

// String returns the assembler-style mnemonic for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsCTI reports whether k is a control-transfer instruction.
func (k Kind) IsCTI() bool {
	switch k {
	case CondBranch, Jump, Call, Ret, IndirectJump, IndirectCall:
		return true
	}
	return false
}

// IsConditional reports whether k transfers control only when taken.
func (k Kind) IsConditional() bool { return k == CondBranch }

// IsUnconditional reports whether k always transfers control.
func (k Kind) IsUnconditional() bool { return k.IsCTI() && k != CondBranch }

// IsCall reports whether k pushes a return address.
func (k Kind) IsCall() bool { return k == Call || k == IndirectCall }

// IsReturn reports whether k pops a return address.
func (k Kind) IsReturn() bool { return k == Ret }

// IsIndirect reports whether k's target is not encoded in the instruction.
func (k Kind) IsIndirect() bool {
	return k == Ret || k == IndirectJump || k == IndirectCall
}

// Latency returns the execution latency, in cycles, charged by the backend
// once the instruction's operands are ready.
func (k Kind) Latency() int {
	switch k {
	case Mul:
		return 4
	case FPU:
		return 3
	case Load:
		return 2 // L1-D hit; the study assumes a well-behaved data side.
	default:
		return 1
	}
}

// latTable is Latency in table form: one unconditional load where the
// switch would cost data-dependent branches — the difference matters on the
// scheduler pack path, which runs once per fetched instruction.
var latTable = [NumKinds]uint8{
	Nop: 1, ALU: 1, Mul: 4, Load: 2, Store: 1, FPU: 3,
	CondBranch: 1, Jump: 1, Call: 1, Ret: 1, IndirectJump: 1, IndirectCall: 1,
}

// SchedPack packs everything the backend's wakeup scheduler needs from the
// instruction — sources, destination, latency — into one word:
// src1 | src2<<8 | dst<<16 | latency<<24. NoReg and the hardwired r0 both
// map to register 0, which the scoreboard never writes, so a readiness
// check is two regReady loads and a max with no absent-operand branches;
// destination 0 doubles as "no destination" (r0 writes are discarded).
func (i *Instr) SchedPack() uint32 {
	s1, s2, d := i.Src1, i.Src2, i.Dst
	if s1 >= NumRegs {
		s1 = 0
	}
	if s2 >= NumRegs {
		s2 = 0
	}
	if d >= NumRegs {
		d = 0
	}
	return uint32(s1) | uint32(s2)<<8 | uint32(d)<<16 | uint32(latTable[i.Kind])<<24
}

// NoReg marks an absent register operand.
const NoReg uint8 = 0xFF

// NumRegs is the architectural register count. Register 0 is a hardwired
// zero and never written.
const NumRegs = 64

// Instr is one static instruction in a program image.
type Instr struct {
	// Kind categorises the instruction.
	Kind Kind
	// Dst is the destination register, or NoReg.
	Dst uint8
	// Src1, Src2 are source registers, or NoReg.
	Src1, Src2 uint8
	// Target is the static target address for direct CTIs (CondBranch,
	// Jump, Call). Zero and meaningless for other kinds.
	Target uint64
}

// IsCTI reports whether the instruction transfers control.
func (i Instr) IsCTI() bool { return i.Kind.IsCTI() }

// String formats the instruction for debugging.
func (i Instr) String() string {
	if i.Kind.IsCTI() && !i.Kind.IsIndirect() {
		return fmt.Sprintf("%s -> %#x", i.Kind, i.Target)
	}
	return i.Kind.String()
}

// Align returns addr rounded down to instruction alignment.
func Align(addr uint64) uint64 { return addr &^ uint64(InstrBytes-1) }

// NextPC returns the fall-through address of the instruction at pc.
func NextPC(pc uint64) uint64 { return pc + InstrBytes }

// WordIndex converts a byte address relative to base into an instruction
// index.
func WordIndex(addr, base uint64) int { return int((addr - base) / InstrBytes) }
