package isa

import "testing"

func TestKindClassification(t *testing.T) {
	ctis := []Kind{CondBranch, Jump, Call, Ret, IndirectJump, IndirectCall}
	nonCTIs := []Kind{Nop, ALU, Mul, Load, Store, FPU}
	for _, k := range ctis {
		if !k.IsCTI() {
			t.Errorf("%v: IsCTI = false, want true", k)
		}
	}
	for _, k := range nonCTIs {
		if k.IsCTI() {
			t.Errorf("%v: IsCTI = true, want false", k)
		}
		if k.IsConditional() || k.IsUnconditional() {
			t.Errorf("%v: non-CTI classified as branch", k)
		}
	}
}

func TestConditionalVsUnconditional(t *testing.T) {
	if !CondBranch.IsConditional() {
		t.Error("CondBranch not conditional")
	}
	if CondBranch.IsUnconditional() {
		t.Error("CondBranch reported unconditional")
	}
	for _, k := range []Kind{Jump, Call, Ret, IndirectJump, IndirectCall} {
		if !k.IsUnconditional() {
			t.Errorf("%v: want unconditional", k)
		}
	}
}

func TestCallReturnIndirect(t *testing.T) {
	if !Call.IsCall() || !IndirectCall.IsCall() {
		t.Error("call kinds misclassified")
	}
	if Jump.IsCall() || Ret.IsCall() {
		t.Error("non-call classified as call")
	}
	if !Ret.IsReturn() {
		t.Error("Ret not a return")
	}
	for _, k := range []Kind{Ret, IndirectJump, IndirectCall} {
		if !k.IsIndirect() {
			t.Errorf("%v: want indirect", k)
		}
	}
	for _, k := range []Kind{CondBranch, Jump, Call} {
		if k.IsIndirect() {
			t.Errorf("%v: want direct", k)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.Latency() < 1 {
			t.Errorf("%v: latency %d < 1", k, k.Latency())
		}
	}
	if Mul.Latency() <= ALU.Latency() {
		t.Error("Mul should be slower than ALU")
	}
}

func TestAlignAndNextPC(t *testing.T) {
	if Align(0x1003) != 0x1000 {
		t.Errorf("Align(0x1003) = %#x", Align(0x1003))
	}
	if Align(0x1000) != 0x1000 {
		t.Errorf("Align(0x1000) = %#x", Align(0x1000))
	}
	if NextPC(0x1000) != 0x1004 {
		t.Errorf("NextPC(0x1000) = %#x", NextPC(0x1000))
	}
}

func TestWordIndex(t *testing.T) {
	if got := WordIndex(0x1010, 0x1000); got != 4 {
		t.Errorf("WordIndex = %d, want 4", got)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d: empty name", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind should still format")
	}
}

func TestInstrString(t *testing.T) {
	i := Instr{Kind: Jump, Target: 0x2000}
	if s := i.String(); s != "jump -> 0x2000" {
		t.Errorf("Instr.String() = %q", s)
	}
	if s := (Instr{Kind: ALU}).String(); s != "alu" {
		t.Errorf("Instr.String() = %q", s)
	}
}
