package pipe

// Arena is the per-processor uop store: a power-of-two ring of Uop records
// into which each dynamic instruction is written exactly once, by the fetch
// engine, at allocation. Every downstream stage — the decode pipe, ROB
// entries, the pending-mispredict register, the redirect the backend hands
// the core — holds 32-bit slot indices into this ring instead of ~100-byte
// Uop values, which removes the per-instruction duffcopy chain
// (fetch buffer → decode pipe → ROB) from the cycle kernel's hot path.
//
// Lifetime contract (see ARCHITECTURE.md "Uop lifetime and arena
// ownership"): slots are allocated in fetch order and freed from exactly two
// ends — FreeOldest at in-order commit, FreeNewest when a resolving
// misprediction squashes the youngest suffix (the squashed set is always a
// contiguous run of the most recent allocations, because everything fetched
// after a mispredicted branch is younger than it). The live slots therefore
// always form one contiguous ring range [oldest, newest]; an index is valid
// from Alloc until its slot is freed, and the slot's storage is not rewritten
// until the ring laps back to it.
//
// Sizing: the machine can hold at most decode-pipe capacity + ROB size uops
// in flight (fetch allocates at most the pipe's free capacity per cycle, and
// the pipe drains into the ROB), so a capacity of PipeCap + ROBSize plus a
// little slack covers the maximum live set; Alloc panics on overflow, which
// would indicate a sizing or lifetime bug, never a workload property.
type Arena struct {
	buf  []Uop
	mask uint32
	// head/tail are monotone operation counts (not masked): head counts
	// slots freed from the old end, tail slots allocated (minus rollbacks).
	// Live slots are [head, tail); both wrap through mask for storage.
	head uint64
	tail uint64
}

// NewArena builds an arena with at least capacity slots, rounded up to a
// power of two.
func NewArena(capacity int) *Arena {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Arena{buf: make([]Uop, n), mask: uint32(n - 1)}
}

// Cap returns the slot count.
func (a *Arena) Cap() int { return len(a.buf) }

// Len returns the number of live (allocated, unfreed) slots.
func (a *Arena) Len() int { return int(a.tail - a.head) }

// Alloc claims the next slot and returns its index and record. The caller
// (the fetch engine's delivery loop) assigns every field, so the slot needs no
// zeroing. Panics when the ring is full — a lifetime bug, see the sizing
// note on Arena.
func (a *Arena) Alloc() (uint32, *Uop) {
	if a.tail-a.head >= uint64(len(a.buf)) {
		panic("pipe: uop arena overflow — live uops exceed sized max in-flight")
	}
	idx := uint32(a.tail) & a.mask
	a.tail++
	return idx, &a.buf[idx]
}

// At returns the record at a slot index previously returned by Alloc.
func (a *Arena) At(i uint32) *Uop { return &a.buf[i] }

// Next returns the slot index allocated immediately after i — how a
// consumer walks a contiguous allocation range handed off as (first, n).
func (a *Arena) Next(i uint32) uint32 { return (i + 1) & a.mask }

// FreeOldest releases the n oldest live slots (in-order commit).
func (a *Arena) FreeOldest(n int) {
	if uint64(n) > a.tail-a.head {
		panic("pipe: arena FreeOldest past live range")
	}
	a.head += uint64(n)
}

// FreeNewest rolls back the n most recently allocated live slots (squash of
// the youngest suffix, or un-doing a just-allocated slot).
func (a *Arena) FreeNewest(n int) {
	if uint64(n) > a.tail-a.head {
		panic("pipe: arena FreeNewest past live range")
	}
	a.tail -= uint64(n)
}

// Reset restores the pristine just-constructed state, retaining the backing
// array. Stale slot contents are unobservable: Alloc hands out slots whose
// every field the builder assigns.
func (a *Arena) Reset() {
	a.head, a.tail = 0, 0
}
