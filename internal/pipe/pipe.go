// Package pipe defines the dynamic instruction record (uop) that flows from
// the fetch engine through decode into the backend, carrying both the
// prediction state needed for recovery and the oracle outcome needed for
// misprediction detection.
package pipe

import (
	"fdip/internal/bpred"
	"fdip/internal/isa"
)

// MispredictKind classifies why a branch redirected the front end.
type MispredictKind uint8

const (
	// MissNone marks correctly predicted instructions.
	MissNone MispredictKind = iota
	// MissDirection is a conditional predicted the wrong way.
	MissDirection
	// MissTarget is a taken CTI whose predicted target was wrong
	// (indirect target changes, stale FTB targets).
	MissTarget
	// MissUnseenCTI is a control transfer the FTB did not know about, so
	// the front end sailed past it sequentially.
	MissUnseenCTI
	// MissReturn is a return whose RAS prediction was wrong.
	MissReturn
)

// String names the kind.
func (k MispredictKind) String() string {
	switch k {
	case MissNone:
		return "none"
	case MissDirection:
		return "direction"
	case MissTarget:
		return "target"
	case MissUnseenCTI:
		return "unseen-cti"
	case MissReturn:
		return "return"
	}
	return "mispredict(?)"
}

// Uop is one fetched dynamic instruction.
type Uop struct {
	// Seq is the global fetch order, assigned by the fetch engine.
	Seq uint64
	// PC is the instruction address.
	PC uint64
	// Instr is the static instruction.
	Instr isa.Instr

	// PredNextPC is where the front end fetches next after this
	// instruction (sequential mid-block, the block prediction at the end).
	PredNextPC uint64

	// BlockStart/BlockLen identify the fetch block this instruction ends
	// (length in instructions up to and including this one); used to train
	// the FTB when the instruction is a CTI.
	BlockStart uint64
	BlockLen   int
	// FTBHit records whether the enclosing block came from an FTB hit.
	FTBHit bool
	// Sched is Instr's packed scheduler word (isa.Instr.SchedPack), assigned
	// by whoever writes Instr — the backend's wakeup scheduler consumes it at
	// ROB fill without re-deriving operands or latency from the arena. It
	// sits in what was alignment padding, keeping the record at two cache
	// lines.
	Sched uint32
	// HistCP is the direction-history checkpoint taken before this
	// block's terminator predicted.
	HistCP uint64
	// RASCP is the RAS checkpoint taken before this block's terminator
	// adjusted the stack.
	RASCP bpred.RASCheckpoint

	// OnCorrectPath is true for instructions matching the oracle stream;
	// wrong-path instructions are squashed at the next redirect.
	OnCorrectPath bool
	// ActualTaken and ActualNextPC are the oracle outcome (correct path
	// only).
	ActualTaken  bool
	ActualNextPC uint64
	// Mispredicted marks a correct-path instruction whose PredNextPC
	// disagrees with the oracle; resolving it redirects the front end.
	Mispredicted bool
	// MissKind classifies the misprediction.
	MissKind MispredictKind

	// FetchCycle is when the fetch engine produced the uop.
	FetchCycle int64
}
