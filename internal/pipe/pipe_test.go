package pipe

import (
	"testing"

	"fdip/internal/isa"
)

func TestMispredictKindString(t *testing.T) {
	kinds := []MispredictKind{MissNone, MissDirection, MissTarget, MissUnseenCTI, MissReturn}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Errorf("kind %d: empty name", k)
		}
		if seen[s] {
			t.Errorf("kind %d: duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if MispredictKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestMispredictKindsIndexResolvedArray(t *testing.T) {
	// The backend indexes a [5]uint64 by MispredictKind; the enum must
	// stay within that bound.
	for _, k := range []MispredictKind{MissNone, MissDirection, MissTarget, MissUnseenCTI, MissReturn} {
		if int(k) >= 5 {
			t.Fatalf("kind %v = %d overflows the resolved-mispredict array", k, k)
		}
	}
}

func TestUopZeroValueIsSafe(t *testing.T) {
	var u Uop
	if u.Mispredicted || u.OnCorrectPath {
		t.Error("zero uop carries prediction state")
	}
	if u.Instr.Kind != isa.Nop {
		t.Errorf("zero uop kind = %v", u.Instr.Kind)
	}
}
