package pipe

import (
	"math/rand"
	"testing"
)

// arenaShadow mirrors an Arena with an explicit list of live entries, each
// tagged with the unique serial stamped into its Uop at allocation. Because
// Alloc only ever writes at the ring tail, any reuse of a still-live index
// would clobber that slot's serial — so checking every live slot's serial
// after every operation proves no live index is handed out again before
// FreeOldest or FreeNewest releases it.
type arenaShadow struct {
	idx    []uint32
	serial []uint64
}

func (s *arenaShadow) push(i uint32, ser uint64) {
	s.idx = append(s.idx, i)
	s.serial = append(s.serial, ser)
}

func (s *arenaShadow) check(t *testing.T, a *Arena, step int) {
	t.Helper()
	if a.Len() != len(s.idx) {
		t.Fatalf("step %d: Len() = %d, shadow holds %d", step, a.Len(), len(s.idx))
	}
	seen := make(map[uint32]bool, len(s.idx))
	for k, i := range s.idx {
		if seen[i] {
			t.Fatalf("step %d: index %d live twice", step, i)
		}
		seen[i] = true
		if got := a.At(i).Seq; got != s.serial[k] {
			t.Fatalf("step %d: live slot %d holds serial %d, want %d — slot reused while live",
				step, i, got, s.serial[k])
		}
	}
	// The live set must be one contiguous ring range in allocation order.
	for k := 1; k < len(s.idx); k++ {
		if a.Next(s.idx[k-1]) != s.idx[k] {
			t.Fatalf("step %d: live indices not contiguous at position %d (%d -> %d)",
				step, k, s.idx[k-1], s.idx[k])
		}
	}
}

// TestArenaRandomizedRecycle drives random Alloc / FreeOldest / FreeNewest /
// Reset sequences — the commit, squash, and pristine-machine paths — against
// the shadow model. It fills to capacity and drains to empty repeatedly so
// the ring wraps many times.
func TestArenaRandomizedRecycle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := NewArena(40) // rounds up to 64
		if a.Cap() != 64 {
			t.Fatalf("Cap() = %d, want 64", a.Cap())
		}
		var sh arenaShadow
		var nextSerial uint64
		for step := 0; step < 20_000; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // allocate a burst, as fetch does
				n := rng.Intn(4) + 1
				for j := 0; j < n && a.Len() < a.Cap(); j++ {
					nextSerial++
					i, u := a.Alloc()
					*u = Uop{Seq: nextSerial, PC: uint64(i)}
					sh.push(i, nextSerial)
				}
			case op < 8: // commit: free the oldest k
				if len(sh.idx) > 0 {
					k := rng.Intn(len(sh.idx)) + 1
					a.FreeOldest(k)
					sh.idx = sh.idx[k:]
					sh.serial = sh.serial[k:]
				}
			case op < 9: // squash: free the newest k
				if len(sh.idx) > 0 {
					k := rng.Intn(len(sh.idx)) + 1
					a.FreeNewest(k)
					sh.idx = sh.idx[:len(sh.idx)-k]
					sh.serial = sh.serial[:len(sh.serial)-k]
				}
			default:
				if rng.Intn(50) == 0 {
					a.Reset()
					sh.idx = sh.idx[:0]
					sh.serial = sh.serial[:0]
				}
			}
			sh.check(t, a, step)
		}
	}
}

// TestArenaFreePanics pins the guard rails: freeing more than the live count
// must panic rather than silently corrupt the ring accounting.
func TestArenaFreePanics(t *testing.T) {
	for _, newest := range []bool{false, true} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newest=%v: freeing past the live range did not panic", newest)
				}
			}()
			a := NewArena(8)
			a.Alloc()
			if newest {
				a.FreeNewest(2)
			} else {
				a.FreeOldest(2)
			}
		}()
	}
}

// TestArenaAllocFullPanics pins the overflow guard: the arena is sized so the
// pipeline can never exceed it, and a 257th live allocation is a bug, not a
// condition to handle.
func TestArenaAllocFullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alloc on a full arena did not panic")
		}
	}()
	a := NewArena(4)
	for i := 0; i < a.Cap()+1; i++ {
		a.Alloc()
	}
}
