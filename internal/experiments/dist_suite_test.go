package experiments

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"

	"fdip/internal/dist"
	"fdip/internal/engine"
)

// renderSuiteWith renders every experiment table sequentially through the
// given streamer. Sequential (unlike RunExperiments' concurrent goroutines)
// so each plan's distributed stream runs alone — the point here is merge
// correctness, not suite wall time.
func renderSuiteWith(t *testing.T, opts Options) string {
	t.Helper()
	r := NewRunner(opts)
	var sb strings.Builder
	for _, ex := range ExtendedSuite() {
		tab, err := ex.Run(context.Background(), r)
		if err != nil {
			t.Fatalf("%s: %v", ex.ID, err)
		}
		sb.WriteString(tab.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestDistributedSuiteMatchesGolden is the tentpole's suite-level proof: the
// full experiment suite, sharded N ways across wire-round-tripped workers
// with no cross-shard or cross-experiment memoisation, must render tables
// byte-identical to the pinned single-process golden, N in {1, 2, 8}.
func TestDistributedSuiteMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite per shard count")
	}
	want, err := os.ReadFile(goldenTablesPath)
	if err != nil {
		t.Fatalf("missing pinned tables (run TestExperimentTablesGolden -update first): %v", err)
	}
	for _, shards := range []int{1, 2, 8} {
		opts := goldenOpts()
		opts.Streamer = dist.New(dist.Options{
			Dialer:      dist.Loopback{Workers: 2, Wire: true},
			Shards:      shards,
			ChunkPoints: 2,
			Instrs:      opts.Instrs, // plans don't bake the budget; the coordinator must apply it
		})
		got := renderSuiteWith(t, opts)
		if got != string(want) {
			t.Errorf("shards=%d: distributed suite drifted from the pinned single-process tables (first divergence around byte %d)",
				shards, firstDiff(got, string(want)))
		}
	}
}

// TestDistributedSuiteSurvivesWorkerKills re-renders the suite at 2 shards
// while every range's first worker session is killed mid-stream: the
// retry-with-reassignment path must leave the tables byte-identical too.
func TestDistributedSuiteSurvivesWorkerKills(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	want, err := os.ReadFile(goldenTablesPath)
	if err != nil {
		t.Fatalf("missing pinned tables: %v", err)
	}
	opts := goldenOpts()
	kd := &killingDialer{inner: dist.Loopback{Workers: 2, Wire: true}}
	opts.Streamer = dist.New(dist.Options{
		Dialer:      kd,
		Shards:      2,
		ChunkPoints: 2,
		Instrs:      opts.Instrs,
	})
	got := renderSuiteWith(t, opts)
	if got != string(want) {
		t.Errorf("suite under worker kills drifted from the pinned tables (first divergence around byte %d)",
			firstDiff(got, string(want)))
	}
	if kd.kills() == 0 {
		t.Error("kill injection never fired; test covered nothing")
	}
}

// killingDialer kills the first attempt of every range after one outcome —
// the experiments-side twin of the dist package's chaos dialer, written
// against the exported Dialer/Session surface only.
type killingDialer struct {
	inner dist.Dialer

	mu       sync.Mutex
	killedN  int
	attempts map[int]int
}

func (d *killingDialer) kills() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.killedN
}

func (d *killingDialer) Dial(ctx context.Context) (dist.Session, error) {
	s, err := d.inner.Dial(ctx)
	if err != nil {
		return nil, err
	}
	return &killingSession{d: d, s: s}, nil
}

type killingSession struct {
	d *killingDialer
	s dist.Session
}

func (ks *killingSession) Run(ctx context.Context, a dist.Assignment, emit func(engine.RunOutcome) error) error {
	ks.d.mu.Lock()
	if ks.d.attempts == nil {
		ks.d.attempts = make(map[int]int)
	}
	ks.d.attempts[a.Start]++
	kill := ks.d.attempts[a.Start] == 1
	if kill {
		ks.d.killedN++
	}
	ks.d.mu.Unlock()
	if !kill {
		return ks.s.Run(ctx, a, emit)
	}
	n := 0
	ks.s.Run(ctx, a, func(out engine.RunOutcome) error {
		if n == 0 {
			n++
			return emit(out)
		}
		return context.Canceled // any error: the wrapper discards the session either way
	})
	return &workerKilledError{}
}

func (ks *killingSession) Close() error { return ks.s.Close() }

type workerKilledError struct{}

func (*workerKilledError) Error() string { return "worker killed (injected)" }
