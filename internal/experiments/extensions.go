package experiments

import (
	"fmt"

	"fdip/internal/core"
	"fdip/internal/prefetch"
	"fdip/internal/stats"
)

// This file holds the extension experiments (E12..E16): ablations beyond the
// reconstructed 1999 evaluation that probe the design decisions DESIGN.md
// calls out. They reuse the same Runner/memoisation machinery.

// fdpCPF returns the standard FDP+conservative-CPF machine at 16KB.
func fdpCPF() core.Config {
	cfg := core.DefaultConfig()
	cfg.Prefetch.Kind = core.PrefetchFDP
	cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	return cfg
}

// E12WrongPathPIQ ablates the redirect policy: discard queued prefetch
// candidates on a squash (the paper's policy) vs keep them in flight.
func E12WrongPathPIQ(r *Runner) *stats.Table {
	t := stats.NewTable("E12 (ext): PIQ policy on redirect — discard vs keep wrong-path candidates",
		"bench", "policy", "speedup", "bus%", "useful%")
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		for _, keep := range []bool{false, true} {
			cfg := fdpCPF()
			cfg.Prefetch.FDP.KeepPIQOnSquash = keep
			res := r.Run(w, cfg)
			policy := "discard"
			if keep {
				policy = "keep"
			}
			t.AddRow(w.Name, policy,
				fmt.Sprintf("%+.1f%%", res.SpeedupPctOver(base)),
				res.BusUtilPct, res.UsefulPct)
		}
	}
	return t
}

// E13TagPortSweep varies the L1-I tag ports that cache-probe filtering
// steals idle cycles from. With one port the demand stream starves the
// filter; extra ports buy verification bandwidth.
func E13TagPortSweep(r *Runner) *stats.Table {
	ports := []int{1, 2, 3, 4}
	t := stats.NewTable("E13 (ext): FDP+CPF(conservative) vs L1-I tag ports, 16KB L1-I",
		append([]string{"bench"}, intHeaders(ports)...)...)
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		row := []interface{}{w.Name}
		for _, p := range ports {
			cfg := fdpCPF()
			cfg.L1ITagPorts = p
			res := r.Run(w, cfg)
			row = append(row, fmt.Sprintf("%+.1f%%/%.0f%%", res.SpeedupPctOver(base), res.BusUtilPct))
		}
		t.AddRow(row...)
	}
	return t
}

// E14FetchWidthSweep varies the fetch width: wider fetch raises the demand
// rate the prefetcher must stay ahead of.
func E14FetchWidthSweep(r *Runner) *stats.Table {
	widths := []int{1, 2, 4, 8}
	t := stats.NewTable("E14 (ext): FDP+CPF speedup vs fetch width, 16KB L1-I",
		append([]string{"bench"}, intHeaders(widths)...)...)
	for _, w := range r.suiteLarge() {
		row := []interface{}{w.Name}
		for _, fw := range widths {
			base := core.DefaultConfig()
			base.FetchWidth = fw
			fdp := fdpCPF()
			fdp.FetchWidth = fw
			g := r.Run(w, fdp).SpeedupPctOver(r.Run(w, base))
			row = append(row, fmt.Sprintf("%+.1f%%", g))
		}
		t.AddRow(row...)
	}
	return t
}

// E15StreamGeometry sweeps the stream-buffer baseline's geometry so the
// headline comparison cannot be accused of a weak baseline.
func E15StreamGeometry(r *Runner) *stats.Table {
	t := stats.NewTable("E15 (ext): stream-buffer geometry (streams x depth), speedup at 16KB L1-I",
		"bench", "1x4", "2x4", "4x4", "8x4", "4x2", "4x8")
	shapes := [][2]int{{1, 4}, {2, 4}, {4, 4}, {8, 4}, {4, 2}, {4, 8}}
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		row := []interface{}{w.Name}
		for _, sh := range shapes {
			cfg := core.DefaultConfig()
			cfg.Prefetch.Kind = core.PrefetchStream
			cfg.Prefetch.Streams = sh[0]
			cfg.Prefetch.StreamDepth = sh[1]
			row = append(row, fmt.Sprintf("%+.1f%%", r.Run(w, cfg).SpeedupPctOver(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// E16PerfectBound compares FDP+CPF against the perfect-L1-I upper bound: how
// much of the total front-end opportunity fetch-directed prefetching
// captures.
func E16PerfectBound(r *Runner) *stats.Table {
	t := stats.NewTable("E16 (ext): FDP+CPF vs perfect L1-I upper bound, 16KB L1-I",
		"bench", "fdp+cpf", "perfect", "captured")
	for _, w := range r.opts.Workloads {
		base := r.Baseline(w, 16*1024)
		fdp := r.Run(w, fdpCPF()).SpeedupPctOver(base)

		perfectCfg := core.DefaultConfig()
		perfectCfg.PerfectL1I = true
		perfect := r.Run(w, perfectCfg).SpeedupPctOver(base)

		captured := 0.0
		if perfect > 0.05 {
			captured = 100 * fdp / perfect
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%+.1f%%", fdp),
			fmt.Sprintf("%+.1f%%", perfect),
			fmt.Sprintf("%.0f%%", captured))
	}
	return t
}

// E11 gains a "local" predictor column via this variant used by the harness.

// AllWithExtensions runs the reconstructed suite plus the extensions.
func AllWithExtensions(r *Runner) []*stats.Table {
	tables := All(r)
	return append(tables,
		E12WrongPathPIQ(r),
		E13TagPortSweep(r),
		E14FetchWidthSweep(r),
		E15StreamGeometry(r),
		E16PerfectBound(r),
	)
}
