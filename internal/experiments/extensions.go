package experiments

import (
	"context"
	"fmt"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/prefetch"
	"fdip/internal/stats"
)

// This file holds the extension experiments (E12..E16): ablations beyond the
// reconstructed 1999 evaluation that probe the design decisions
// ARCHITECTURE.md calls out. They are Plan + reducer declarations over the
// same Runner/engine machinery as the main suite.

// fdpCPF returns the standard FDP+conservative-CPF machine at 16KB.
func fdpCPF() core.Config {
	cfg := core.DefaultConfig()
	cfg.Prefetch.Kind = core.PrefetchFDP
	cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	return cfg
}

// E12WrongPathPIQ ablates the redirect policy: discard queued prefetch
// candidates on a squash (the paper's policy) vs keep them in flight.
func E12WrongPathPIQ(ctx context.Context, r *Runner) (*stats.Table, error) {
	keep := fdpCPF()
	keep.Prefetch.FDP.KeepPIQOnSquash = true
	c, err := r.Collect(ctx, plan(r.suiteLarge(), core.DefaultConfig()).
		Axes(engine.Configs(
			engine.Named("discard", fdpCPF()),
			engine.Named("keep", keep),
		).WithBaseline("base", baselineConfig(16*1024))))
	if err != nil {
		return nil, err
	}
	return c.TableLong("E12 (ext): PIQ policy on redirect — discard vs keep wrong-path candidates",
		[]string{"bench", "policy", "speedup", "bus%", "useful%"}, 0,
		func(res, base core.Result) []any {
			return []any{speedupCell(res, base), res.BusUtilPct, res.UsefulPct}
		}), nil
}

// E13TagPortSweep varies the L1-I tag ports that cache-probe filtering
// steals idle cycles from. With one port the demand stream starves the
// filter; extra ports buy verification bandwidth.
func E13TagPortSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	ports := []int{1, 2, 3, 4}
	return knobSweep(ctx, r, "E13 (ext): FDP+CPF(conservative) vs L1-I tag ports, 16KB L1-I",
		fdpCPF(), engine.Vary("ports", ports, func(c *core.Config, p int) { c.L1ITagPorts = p }),
		intHeaders(ports), func(res, base core.Result) any {
			return fmt.Sprintf("%+.1f%%/%.0f%%", res.SpeedupPctOver(base), res.BusUtilPct)
		})
}

// E14FetchWidthSweep varies the fetch width: wider fetch raises the demand
// rate the prefetcher must stay ahead of. Each width has its own baseline.
func E14FetchWidthSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	widths := []int{1, 2, 4, 8}
	return pairedKnobSweep(ctx, r, "E14 (ext): FDP+CPF speedup vs fetch width, 16KB L1-I",
		engine.Vary("fw", widths, func(c *core.Config, fw int) { c.FetchWidth = fw }),
		intHeaders(widths))
}

// E15StreamGeometry sweeps the stream-buffer baseline's geometry so the
// headline comparison cannot be accused of a weak baseline.
func E15StreamGeometry(ctx context.Context, r *Runner) (*stats.Table, error) {
	shapes := [][2]int{{1, 4}, {2, 4}, {4, 4}, {8, 4}, {4, 2}, {4, 8}}
	headers := make([]string, len(shapes))
	for i, sh := range shapes {
		headers[i] = fmt.Sprintf("%dx%d", sh[0], sh[1])
	}
	return knobSweep(ctx, r, "E15 (ext): stream-buffer geometry (streams x depth), speedup at 16KB L1-I",
		core.DefaultConfig(), engine.Vary("geom", shapes, func(c *core.Config, sh [2]int) {
			c.Prefetch.Kind = core.PrefetchStream
			c.Prefetch.Streams = sh[0]
			c.Prefetch.StreamDepth = sh[1]
		}).Labeled(headers...),
		headers, speedupCell)
}

// E16PerfectBound compares FDP+CPF against the perfect-L1-I upper bound: how
// much of the total front-end opportunity fetch-directed prefetching
// captures.
func E16PerfectBound(ctx context.Context, r *Runner) (*stats.Table, error) {
	perfectCfg := core.DefaultConfig()
	perfectCfg.PerfectL1I = true
	c, err := r.Collect(ctx, plan(r.opts.Workloads, core.DefaultConfig()).
		Axes(engine.Configs(
			engine.Named("base", baselineConfig(16*1024)),
			engine.Named("fdp+cpf", fdpCPF()),
			engine.Named("perfect", perfectCfg),
		)))
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E16 (ext): FDP+CPF vs perfect L1-I upper bound, 16KB L1-I",
		"bench", "fdp+cpf", "perfect", "captured")
	for i := range r.opts.Workloads {
		base := c.At(i, 0)
		fdp := c.At(i, 1).SpeedupPctOver(base)
		perfect := c.At(i, 2).SpeedupPctOver(base)
		captured := 0.0
		if perfect > 0.05 {
			captured = 100 * fdp / perfect
		}
		t.AddRow(c.RowLabel(i),
			fmt.Sprintf("%+.1f%%", fdp),
			fmt.Sprintf("%+.1f%%", perfect),
			fmt.Sprintf("%.0f%%", captured))
	}
	return t, nil
}

// Extensions returns the extension ablations (E12..E16) in order.
func Extensions() []Experiment {
	return []Experiment{
		{"E12", E12WrongPathPIQ},
		{"E13", E13TagPortSweep},
		{"E14", E14FetchWidthSweep},
		{"E15", E15StreamGeometry},
		{"E16", E16PerfectBound},
	}
}

// ExtendedSuite returns the reconstructed suite plus the extensions and the
// FDIP-revisited experiments.
func ExtendedSuite() []Experiment {
	return append(append(Suite(), Extensions()...), Revisited()...)
}

// AllWithExtensions runs the reconstructed suite plus the extensions in
// parallel.
func AllWithExtensions(ctx context.Context, r *Runner) ([]*stats.Table, error) {
	return RunExperiments(ctx, r, ExtendedSuite())
}
