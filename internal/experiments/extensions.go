package experiments

import (
	"context"
	"fmt"

	"fdip/internal/core"
	"fdip/internal/prefetch"
	"fdip/internal/stats"
)

// This file holds the extension experiments (E12..E16): ablations beyond the
// reconstructed 1999 evaluation that probe the design decisions DESIGN.md
// calls out. They reuse the same Runner/engine machinery.

// fdpCPF returns the standard FDP+conservative-CPF machine at 16KB.
func fdpCPF() core.Config {
	cfg := core.DefaultConfig()
	cfg.Prefetch.Kind = core.PrefetchFDP
	cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	return cfg
}

// E12WrongPathPIQ ablates the redirect policy: discard queued prefetch
// candidates on a squash (the paper's policy) vs keep them in flight.
func E12WrongPathPIQ(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E12 (ext): PIQ policy on redirect — discard vs keep wrong-path candidates",
		"bench", "policy", "speedup", "bus%", "useful%")
	policies := []string{"discard", "keep"}
	cfgs := []core.Config{baselineConfig(16 * 1024)}
	for _, keep := range []bool{false, true} {
		cfg := fdpCPF()
		cfg.Prefetch.FDP.KeepPIQOnSquash = keep
		cfgs = append(cfgs, cfg)
	}
	ws := r.suiteLarge()
	grid, err := r.grid(ctx, ws, cfgs)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		base := grid[i][0]
		for j, policy := range policies {
			res := grid[i][j+1]
			t.AddRow(w.Name, policy,
				fmt.Sprintf("%+.1f%%", res.SpeedupPctOver(base)),
				res.BusUtilPct, res.UsefulPct)
		}
	}
	return t, nil
}

// E13TagPortSweep varies the L1-I tag ports that cache-probe filtering
// steals idle cycles from. With one port the demand stream starves the
// filter; extra ports buy verification bandwidth.
func E13TagPortSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	ports := []int{1, 2, 3, 4}
	cfgs := make([]core.Config, len(ports))
	for i, p := range ports {
		cfg := fdpCPF()
		cfg.L1ITagPorts = p
		cfgs[i] = cfg
	}
	return sweepVsBaseline(ctx, r, "E13 (ext): FDP+CPF(conservative) vs L1-I tag ports, 16KB L1-I",
		intHeaders(ports), cfgs, func(res, base core.Result) string {
			return fmt.Sprintf("%+.1f%%/%.0f%%", res.SpeedupPctOver(base), res.BusUtilPct)
		})
}

// E14FetchWidthSweep varies the fetch width: wider fetch raises the demand
// rate the prefetcher must stay ahead of. Each width has its own baseline.
func E14FetchWidthSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	widths := []int{1, 2, 4, 8}
	pairs := make([][2]core.Config, len(widths))
	for i, fw := range widths {
		base := core.DefaultConfig()
		base.FetchWidth = fw
		fdp := fdpCPF()
		fdp.FetchWidth = fw
		pairs[i] = [2]core.Config{base, fdp}
	}
	return pairedKnobSweep(ctx, r, "E14 (ext): FDP+CPF speedup vs fetch width, 16KB L1-I",
		intHeaders(widths), pairs)
}

// E15StreamGeometry sweeps the stream-buffer baseline's geometry so the
// headline comparison cannot be accused of a weak baseline.
func E15StreamGeometry(ctx context.Context, r *Runner) (*stats.Table, error) {
	shapes := [][2]int{{1, 4}, {2, 4}, {4, 4}, {8, 4}, {4, 2}, {4, 8}}
	headers := make([]string, len(shapes))
	cfgs := make([]core.Config, len(shapes))
	for i, sh := range shapes {
		headers[i] = fmt.Sprintf("%dx%d", sh[0], sh[1])
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchStream
		cfg.Prefetch.Streams = sh[0]
		cfg.Prefetch.StreamDepth = sh[1]
		cfgs[i] = cfg
	}
	return sweepVsBaseline(ctx, r, "E15 (ext): stream-buffer geometry (streams x depth), speedup at 16KB L1-I",
		headers, cfgs, speedupCell)
}

// E16PerfectBound compares FDP+CPF against the perfect-L1-I upper bound: how
// much of the total front-end opportunity fetch-directed prefetching
// captures.
func E16PerfectBound(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E16 (ext): FDP+CPF vs perfect L1-I upper bound, 16KB L1-I",
		"bench", "fdp+cpf", "perfect", "captured")
	perfectCfg := core.DefaultConfig()
	perfectCfg.PerfectL1I = true
	cfgs := []core.Config{baselineConfig(16 * 1024), fdpCPF(), perfectCfg}
	grid, err := r.grid(ctx, r.opts.Workloads, cfgs)
	if err != nil {
		return nil, err
	}
	for i, w := range r.opts.Workloads {
		base := grid[i][0]
		fdp := grid[i][1].SpeedupPctOver(base)
		perfect := grid[i][2].SpeedupPctOver(base)
		captured := 0.0
		if perfect > 0.05 {
			captured = 100 * fdp / perfect
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%+.1f%%", fdp),
			fmt.Sprintf("%+.1f%%", perfect),
			fmt.Sprintf("%.0f%%", captured))
	}
	return t, nil
}

// Extensions returns the extension ablations (E12..E16) in order.
func Extensions() []Experiment {
	return []Experiment{
		{"E12", E12WrongPathPIQ},
		{"E13", E13TagPortSweep},
		{"E14", E14FetchWidthSweep},
		{"E15", E15StreamGeometry},
		{"E16", E16PerfectBound},
	}
}

// ExtendedSuite returns the reconstructed suite plus the extensions.
func ExtendedSuite() []Experiment {
	return append(Suite(), Extensions()...)
}

// AllWithExtensions runs the reconstructed suite plus the extensions in
// parallel.
func AllWithExtensions(ctx context.Context, r *Runner) ([]*stats.Table, error) {
	return RunExperiments(ctx, r, ExtendedSuite())
}
