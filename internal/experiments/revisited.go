package experiments

import (
	"context"
	"fmt"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/prefetch"
	"fdip/internal/stats"
)

// This file holds the FDIP-revisited experiments (E17..E19): the modern
// prefetch engines (MANA spatial regions, shadow-branch FTB prefill) against
// the 1999 schemes, re-run over the axes the revisited evaluation
// (arXiv:2006.13547) argues decide FDIP's fate on modern front ends — FTQ
// depth, prefetch-queue depth, and L1-I size. Same Plan + reducer machinery
// as the rest of the suite.

// revisitedKinds is the engine axis the revisited tables sweep: the paper's
// strongest 1999 scheme plus the two modern engines. FDP carries its
// conservative cache-probe filter, as everywhere else in the suite.
var revisitedKinds = []core.PrefetcherKind{core.PrefetchFDP, core.PrefetchMANA, core.PrefetchShadow}

var revisitedNames = []string{"fdp+cpf", "mana", "shadow"}

// engineConfig returns the default machine running the given prefetch engine
// at the given L1-I size.
func engineConfig(kind core.PrefetcherKind, l1iBytes int) core.Config {
	cfg := core.DefaultConfig()
	cfg.L1ISizeBytes = l1iBytes
	cfg.Prefetch.Kind = kind
	if kind == core.PrefetchFDP {
		cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	}
	return cfg
}

// setEngine is the Vary mutation form of engineConfig, for axes that perturb
// an already-swept machine.
func setEngine(c *core.Config, kind core.PrefetcherKind) {
	c.Prefetch.Kind = kind
	if kind == core.PrefetchFDP {
		c.Prefetch.FDP.CPF = prefetch.CPFConservative
	}
}

// E17ModernHeadline is the headline comparison extended to the modern
// engines: % speedup over no-prefetch at 16KB for the 1999 schemes next to
// MANA and the shadow-branch decoder, gmean footer over the benchmarks.
func E17ModernHeadline(ctx context.Context, r *Runner) (*stats.Table, error) {
	names := []string{"nextline", "streambuf", "fdp+cpf", "mana", "shadow"}
	points := make([]engine.NamedConfig, len(names))
	for i, kind := range []core.PrefetcherKind{
		core.PrefetchNextLine, core.PrefetchStream,
		core.PrefetchFDP, core.PrefetchMANA, core.PrefetchShadow,
	} {
		points[i] = engine.Named(names[i], engineConfig(kind, 16*1024))
	}
	c, err := r.Collect(ctx, plan(r.opts.Workloads, core.DefaultConfig()).
		Axes(engine.Configs(points...).WithBaseline("base", baselineConfig(16*1024))))
	if err != nil {
		return nil, err
	}
	t := c.TableVsBaseline("E17 (revisited): % speedup over no-prefetch, old vs modern engines, 16KB L1-I",
		"bench", names, 0, speedupCell)
	footer := []interface{}{"gmean"}
	for _, g := range c.ReduceCols(0, core.Result.SpeedupPctOver, stats.GmeanSpeedupPct) {
		footer = append(footer, fmt.Sprintf("%+.1f%%", g))
	}
	t.AddRow(footer...)
	return t, nil
}

// E18RevisitedCross crosses FTQ depth with L1-I size and runs every engine
// at each corner, each corner holding its own no-prefetch baseline — the
// revisited paper's central claim is that this cross, not any single point,
// decides whether fetch-directed prefetching still pays off. Long form: one
// row per (workload, corner, engine).
func E18RevisitedCross(ctx context.Context, r *Runner) (*stats.Table, error) {
	type corner struct {
		ftq int
		l1i int
	}
	corners := []corner{{4, 8 * 1024}, {4, 32 * 1024}, {32, 8 * 1024}, {32, 32 * 1024}}
	labels := make([]string, len(corners))
	for i, cr := range corners {
		labels[i] = fmt.Sprintf("ftq%d/%dKB", cr.ftq, cr.l1i/1024)
	}
	cornerAxis := engine.Vary("", corners, func(c *core.Config, cr corner) {
		c.FTQEntries = cr.ftq
		c.L1ISizeBytes = cr.l1i
	}).Labeled(labels...)
	engineAxis := engine.Vary("", append([]core.PrefetcherKind{core.PrefetchNone}, revisitedKinds...),
		setEngine).Labeled(append([]string{"none"}, revisitedNames...)...)

	// Columns enumerate corner-major with the engine axis fastest, so each
	// corner's four engine points are consecutive and its "none" point leads.
	c, err := r.Collect(ctx, plan(r.suiteLarge(), core.DefaultConfig()).
		Axes(cornerAxis, engineAxis))
	if err != nil {
		return nil, err
	}
	stride := 1 + len(revisitedKinds)
	t := stats.NewTable("E18 (revisited): FTQ depth x L1-I size cross, per-corner baselines",
		"bench", "corner", "engine", "speedup", "miss/KI", "bus%")
	for row := 0; row < c.NumRows(); row++ {
		for ci := range corners {
			base := c.At(row, ci*stride)
			for e := 1; e < stride; e++ {
				res := c.At(row, ci*stride+e)
				t.AddRow(c.RowLabel(row), labels[ci], revisitedNames[e-1],
					speedupCell(res, base), res.MissPKI, res.BusUtilPct)
			}
		}
	}
	return t, nil
}

// E19QueueDepthSweep sweeps the prefetch-queue depth — the PIQ for FDP, the
// replay queue for MANA, the target queue for the shadow decoder — against
// the shared 16KB baseline. The revisited argument in one knob: deeper
// queues only pay while the engine can stay ahead of fetch.
func E19QueueDepthSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	depths := []int{1, 2, 4, 8, 16, 32}
	depthAxis := engine.Vary("depth", depths, func(c *core.Config, d int) {
		c.Prefetch.FDP.PIQSize = d
		c.Prefetch.MANA.QueueSize = d
		c.Prefetch.Shadow.TargetQueue = d
	})
	engineAxis := engine.Vary("", revisitedKinds, setEngine).Labeled(revisitedNames...)
	c, err := r.Collect(ctx, plan(r.suiteLarge(), core.DefaultConfig()).
		Axes(engineAxis, depthAxis))
	if err != nil {
		return nil, err
	}
	base, err := r.Collect(ctx, plan(r.suiteLarge(), baselineConfig(16*1024)))
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E19 (revisited): speedup vs prefetch-queue depth (PIQ / MANA replay / shadow targets), 16KB L1-I",
		append([]string{"bench", "engine"}, intHeaders(depths)...)...)
	for row := 0; row < c.NumRows(); row++ {
		for e := range revisitedKinds {
			out := []any{c.RowLabel(row), revisitedNames[e]}
			for d := range depths {
				out = append(out, speedupCell(c.At(row, e*len(depths)+d), base.At(row, 0)))
			}
			t.AddRow(out...)
		}
	}
	return t, nil
}

// Revisited returns the FDIP-revisited experiments (E17..E19) in order.
func Revisited() []Experiment {
	return []Experiment{
		{"E17", E17ModernHeadline},
		{"E18", E18RevisitedCross},
		{"E19", E19QueueDepthSweep},
	}
}
