package experiments

import (
	"context"
	"strings"
	"testing"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/workloads"
)

// quickOpts keeps experiment tests fast: two workloads, short runs.
func quickOpts() Options {
	gcc, _ := workloads.ByName("gcc")
	db, _ := workloads.ByName("deltablue")
	return Options{Instrs: 40_000, Workloads: []workloads.Workload{gcc, db}}
}

func TestRunnerMemoises(t *testing.T) {
	ctx := context.Background()
	r := NewRunner(quickOpts())
	w := r.Options().Workloads[0]
	cfg := core.DefaultConfig()
	a, err := r.Run(ctx, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := r.Simulations()
	b, err := r.Run(ctx, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Simulations() != n {
		t.Error("identical run re-simulated")
	}
	if a != b {
		t.Error("memoised result differs")
	}
	// A different config is a different run.
	cfg2 := cfg
	cfg2.FTQEntries = 8
	if _, err := r.Run(ctx, w, cfg2); err != nil {
		t.Fatal(err)
	}
	if r.Simulations() != n+1 {
		t.Error("distinct config not simulated")
	}
}

func TestRunnerImageCached(t *testing.T) {
	ctx := context.Background()
	r := NewRunner(quickOpts())
	w := r.Options().Workloads[0]
	a, err := r.Image(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Image(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("image regenerated per call")
	}
}

func TestRunPropagatesConfigError(t *testing.T) {
	r := NewRunner(quickOpts())
	w := r.Options().Workloads[0]
	cfg := core.DefaultConfig()
	cfg.Prefetch.Kind = "hexray"
	if _, err := r.Run(context.Background(), w, cfg); err == nil {
		t.Error("bad config did not surface as an error")
	}
}

func TestE1HasOneRowPerWorkload(t *testing.T) {
	r := NewRunner(quickOpts())
	tab, err := E1Characterization(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestE2IncludesGmeanRow(t *testing.T) {
	r := NewRunner(quickOpts())
	tab, err := E2SpeedupSmallCache(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "gmean") {
		t.Errorf("no gmean row:\n%s", out)
	}
	if tab.NumRows() != 3 { // 2 workloads + gmean
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestSweepsRespectLargeOnly(t *testing.T) {
	r := NewRunner(quickOpts()) // gcc is large, deltablue is not
	tab, err := E6FTQSweep(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "gcc") {
		t.Error("large workload missing from sweep")
	}
	if strings.Contains(out, "deltablue") {
		t.Error("client workload leaked into a large-only sweep")
	}
}

func TestFilterVariantsCoverPolicies(t *testing.T) {
	names, cfgs := filterVariants()
	if len(names) != len(cfgs) || len(names) != 6 {
		t.Fatalf("variants = %d/%d", len(names), len(cfgs))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"none", "enq-cons", "enq-opt", "remove", "cons+rem", "opt+rem"} {
		if !seen[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}

func TestAllProducesElevenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	opts := quickOpts()
	opts.Instrs = 20_000
	opts.Workers = 4
	var done int
	opts.Progress = func(ev engine.Event) {
		if ev.Kind == engine.EventJobDone {
			done++
		}
	}
	r := NewRunner(opts)
	tables, err := All(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 11 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, tab := range tables {
		if tab.NumRows() == 0 {
			t.Errorf("table %d (%s) empty", i, tab.Title)
		}
	}
	if done != r.Simulations() {
		t.Errorf("done events %d != simulations %d", done, r.Simulations())
	}
	if r.Simulations() == 0 {
		t.Error("no simulations ran")
	}
}

func TestSuiteParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E2 twice")
	}
	ctx := context.Background()
	opts := quickOpts()
	opts.Instrs = 20_000

	seqOpts := opts
	seqOpts.Workers = 1
	seq, err := E2SpeedupSmallCache(ctx, NewRunner(seqOpts))
	if err != nil {
		t.Fatal(err)
	}
	parOpts := opts
	parOpts.Workers = 8
	par, err := E2SpeedupSmallCache(ctx, NewRunner(parOpts))
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("E2 differs between workers=1 and workers=8:\n%s\nvs\n%s", seq, par)
	}
}

func TestRunExperimentsPropagatesErrors(t *testing.T) {
	r := NewRunner(quickOpts())
	// Cancelled context: every experiment must fail, not hang or panic.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := All(ctx, r); err == nil {
		t.Error("cancelled suite returned no error")
	}
}

func TestSpeedupTableOrderingHolds(t *testing.T) {
	// On an instruction-bound workload FDP must beat next-line even at
	// modest budgets — the headline ordering the harness exists to show.
	ctx := context.Background()
	gcc, _ := workloads.ByName("gcc")
	r := NewRunner(Options{Instrs: 150_000, Workloads: []workloads.Workload{gcc}})
	base, err := r.Baseline(ctx, gcc, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := schemeConfigs(16 * 1024)
	nlpRes, err := r.Run(ctx, gcc, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	fdpRes, err := r.Run(ctx, gcc, cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	nlp := nlpRes.SpeedupPctOver(base)
	fdp := fdpRes.SpeedupPctOver(base)
	if fdp <= nlp {
		t.Errorf("FDP %.1f%% <= next-line %.1f%%", fdp, nlp)
	}
}
