package experiments

import (
	"strings"
	"testing"

	"fdip/internal/core"
	"fdip/internal/stats"
	"fdip/internal/workloads"
)

// quickOpts keeps experiment tests fast: two workloads, short runs.
func quickOpts() Options {
	gcc, _ := workloads.ByName("gcc")
	db, _ := workloads.ByName("deltablue")
	return Options{Instrs: 40_000, Workloads: []workloads.Workload{gcc, db}}
}

func TestRunnerMemoises(t *testing.T) {
	r := NewRunner(quickOpts())
	w := r.Options().Workloads[0]
	cfg := core.DefaultConfig()
	a := r.Run(w, cfg)
	n := r.Simulations
	b := r.Run(w, cfg)
	if r.Simulations != n {
		t.Error("identical run re-simulated")
	}
	if a != b {
		t.Error("memoised result differs")
	}
	// A different config is a different run.
	cfg2 := cfg
	cfg2.FTQEntries = 8
	r.Run(w, cfg2)
	if r.Simulations != n+1 {
		t.Error("distinct config not simulated")
	}
}

func TestRunnerImageCached(t *testing.T) {
	r := NewRunner(quickOpts())
	w := r.Options().Workloads[0]
	if r.Image(w) != r.Image(w) {
		t.Error("image regenerated per call")
	}
}

func TestE1HasOneRowPerWorkload(t *testing.T) {
	r := NewRunner(quickOpts())
	tab := E1Characterization(r)
	if tab.NumRows() != 2 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestE2IncludesGmeanRow(t *testing.T) {
	r := NewRunner(quickOpts())
	tab := E2SpeedupSmallCache(r)
	out := tab.String()
	if !strings.Contains(out, "gmean") {
		t.Errorf("no gmean row:\n%s", out)
	}
	if tab.NumRows() != 3 { // 2 workloads + gmean
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestSweepsRespectLargeOnly(t *testing.T) {
	r := NewRunner(quickOpts()) // gcc is large, deltablue is not
	tab := E6FTQSweep(r)
	out := tab.String()
	if !strings.Contains(out, "gcc") {
		t.Error("large workload missing from sweep")
	}
	if strings.Contains(out, "deltablue") {
		t.Error("client workload leaked into a large-only sweep")
	}
}

func TestFilterVariantsCoverPolicies(t *testing.T) {
	names, cfgs := filterVariants()
	if len(names) != len(cfgs) || len(names) != 6 {
		t.Fatalf("variants = %d/%d", len(names), len(cfgs))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"none", "enq-cons", "enq-opt", "remove", "cons+rem", "opt+rem"} {
		if !seen[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}

func TestAllProducesElevenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	opts := quickOpts()
	opts.Instrs = 20_000
	var progress int
	opts.Progress = func(string) { progress++ }
	r := NewRunner(opts)
	tables := All(r)
	if len(tables) != 11 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, tab := range tables {
		if tab.NumRows() == 0 {
			t.Errorf("table %d (%s) empty", i, tab.Title)
		}
	}
	if progress != r.Simulations {
		t.Errorf("progress lines %d != simulations %d", progress, r.Simulations)
	}
	if r.Simulations == 0 {
		t.Error("no simulations ran")
	}
}

func TestSpeedupTableOrderingHolds(t *testing.T) {
	// On an instruction-bound workload FDP must beat next-line even at
	// modest budgets — the headline ordering the harness exists to show.
	gcc, _ := workloads.ByName("gcc")
	r := NewRunner(Options{Instrs: 150_000, Workloads: []workloads.Workload{gcc}})
	base := r.Baseline(gcc, 16*1024)
	cfgs := schemeConfigs(16 * 1024)
	nlp := r.Run(gcc, cfgs[0]).SpeedupPctOver(base)
	fdp := r.Run(gcc, cfgs[2]).SpeedupPctOver(base)
	if fdp <= nlp {
		t.Errorf("FDP %.1f%% <= next-line %.1f%%", fdp, nlp)
	}
	_ = stats.Pct // keep import if assertions change
}
