// Package experiments implements the paper's evaluation: one entry point per
// reconstructed table/figure (E1..E11, documented in ARCHITECTURE.md) plus
// the extension ablations (E12..E16), each returning a text table with the
// same rows/series the paper reports.
//
// Every experiment is a declaration: a Plan (the workload axis crossed with
// configuration axes over a base machine) streamed through the shared
// simulation engine into a stats.Collector, then reduced to its table shape
// (vs-baseline sweep, paired-baseline sweep, long-form metrics, gmean
// footers). Results arrive in completion order with bounded in-flight work;
// the collector re-orders them, so tables are bit-identical whatever the
// worker count, and configurations shared between experiments (e.g. the
// no-prefetch baseline) simulate once. Entry points take a context and
// return errors; nothing in this package panics.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/stats"
	"fdip/internal/workloads"
)

// Streamer abstracts how a plan's points execute: the in-process engine
// (engine.Engine satisfies this) or a distributed coordinator
// (dist.Coordinator) sharding the plan across worker processes. Whatever the
// implementation, the contract is engine.Stream's: every point delivered
// exactly once, index-tagged, bit-identical to a single-process run.
type Streamer interface {
	Stream(ctx context.Context, p *engine.Plan) iter.Seq2[engine.RunOutcome, error]
}

// Options scales the experiment suite.
type Options struct {
	// Instrs is the committed-instruction budget per simulation.
	Instrs uint64
	// Workloads restricts the suite (nil = all eight benchmarks).
	Workloads []workloads.Workload
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives the engine's typed progress
	// events (delivery is serialised by the engine).
	Progress func(engine.Event)
	// Streamer, when non-nil, executes plans instead of the runner's own
	// engine — the distributed-sweeps hook. The streamer must apply the
	// same per-job instruction budget as Instrs (e.g. dist.Options.Instrs),
	// because plans do not bake the budget into their configs; Run and
	// Baseline (single points) still use the built-in engine either way.
	Streamer Streamer
}

// DefaultOptions runs the full suite at 1M instructions per point.
func DefaultOptions() Options {
	return Options{Instrs: 1_000_000}
}

func (o *Options) setDefaults() {
	if o.Instrs == 0 {
		o.Instrs = 1_000_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workloads.All()
	}
}

// Runner executes experiment plans on a shared memoising engine (or, when
// Options.Streamer is set, through an external streamer such as a
// distributed coordinator).
type Runner struct {
	opts     Options
	eng      *engine.Engine
	streamer Streamer
}

// NewRunner builds a runner (and its engine) for the given options.
func NewRunner(opts Options) *Runner {
	opts.setDefaults()
	r := &Runner{
		opts: opts,
		eng: engine.New(
			engine.WithWorkers(opts.Workers),
			engine.WithInstrBudget(opts.Instrs),
			engine.WithProgress(opts.Progress),
		),
	}
	r.streamer = opts.Streamer
	if r.streamer == nil {
		r.streamer = r.eng
	}
	return r
}

// Options returns the normalised options.
func (r *Runner) Options() Options { return r.opts }

// Engine exposes the underlying engine (for sharing caches or inspecting
// counters).
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Simulations counts actual (non-memoised) simulations so far.
func (r *Runner) Simulations() int { return r.eng.Stats().Simulations }

// Image returns (generating once) the program image for a workload.
func (r *Runner) Image(ctx context.Context, w workloads.Workload) (*program.Image, error) {
	return r.eng.Images().Get(ctx, w.Params)
}

// job names the simulation point for workload w under cfg. Jobs carry the
// workload's params directly so runners built over custom (off-registry)
// workload definitions behave identically to named ones.
func job(w workloads.Workload, cfg core.Config) engine.Job {
	params := w.Params
	return engine.Job{Name: w.Name, Config: cfg, Params: &params, Seed: w.Seed}
}

// Run simulates workload w under cfg (with the runner's instruction budget),
// memoised on (workload, config).
func (r *Runner) Run(ctx context.Context, w workloads.Workload, cfg core.Config) (core.Result, error) {
	return r.eng.Run(ctx, job(w, cfg))
}

// Collect streams every point of the plan through the engine and gathers the
// results into a workloads x configuration-points collector, failing on the
// first job error. This is the bridge every experiment reduces its table
// from: delivery is completion-order and memory in flight is bounded by the
// worker pool; the collector restores (row, col) order.
func (r *Runner) Collect(ctx context.Context, p *engine.Plan) (*stats.Collector[core.Result], error) {
	c := stats.NewCollector[core.Result](p.Rows(), p.Cols())
	for out, err := range r.streamer.Stream(ctx, p) {
		if err != nil {
			return nil, err
		}
		if out.Err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", out.Job.Name, out.Err)
		}
		row, col := p.RowCol(out.Index)
		if row < 0 {
			// Appended jobs live outside the grid; a collector cannot place
			// them, and silently dropping them would break Complete's
			// accounting the other way. (Nothing in this package panics.)
			return nil, fmt.Errorf("experiments: job %q is outside the plan's workload x config grid (Append'ed jobs cannot be collected)", out.Job.Name)
		}
		c.Put(row, col, out.Result)
	}
	if err := c.Complete(); err != nil {
		return nil, err
	}
	return c, nil
}

// plan starts an experiment plan: the given workloads over base.
func plan(ws []workloads.Workload, base core.Config) *engine.Plan {
	return engine.NewPlan(base).Over(ws...)
}

// baselineConfig is the no-prefetch machine at the given L1-I size.
func baselineConfig(l1iBytes int) core.Config {
	cfg := core.DefaultConfig()
	cfg.L1ISizeBytes = l1iBytes
	cfg.Prefetch.Kind = core.PrefetchNone
	return cfg
}

// Baseline runs the no-prefetch machine for w at the given L1-I size.
func (r *Runner) Baseline(ctx context.Context, w workloads.Workload, l1iBytes int) (core.Result, error) {
	return r.Run(ctx, w, baselineConfig(l1iBytes))
}

// schemeConfigs returns the four schemes the headline comparison runs.
func schemeConfigs(l1iBytes int) []core.Config {
	mk := func(kind core.PrefetcherKind, cpf prefetch.CPFMode) core.Config {
		cfg := core.DefaultConfig()
		cfg.L1ISizeBytes = l1iBytes
		cfg.Prefetch.Kind = kind
		cfg.Prefetch.FDP.CPF = cpf
		return cfg
	}
	return []core.Config{
		mk(core.PrefetchNextLine, prefetch.CPFOff),
		mk(core.PrefetchStream, prefetch.CPFOff),
		mk(core.PrefetchFDP, prefetch.CPFOff),
		mk(core.PrefetchFDP, prefetch.CPFConservative),
	}
}

var schemeNames = []string{"nextline", "streambuf", "fdp", "fdp+cpf"}

// schemesAxis is the headline comparison axis at one L1-I size, optionally
// led by the no-prefetch baseline point.
func schemesAxis(l1iBytes int, baseLabel string) engine.Axis {
	cfgs := schemeConfigs(l1iBytes)
	points := make([]engine.NamedConfig, len(cfgs))
	for i, cfg := range cfgs {
		points[i] = engine.Named(schemeNames[i], cfg)
	}
	a := engine.Configs(points...)
	if baseLabel != "" {
		a = a.WithBaseline(baseLabel, baselineConfig(l1iBytes))
	}
	return a
}

// E1Characterization reproduces the benchmark characterisation table:
// footprint, baseline performance, and branch behaviour per workload.
func E1Characterization(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E1: workload characterisation (no-prefetch baseline, 16KB L1-I)",
		"bench", "class", "code KB", "static br", "IPC", "miss/KI", "brMPKI", "cond acc%", "FTB hit%")
	c, err := r.Collect(ctx, plan(r.opts.Workloads, baselineConfig(16*1024)))
	if err != nil {
		return nil, err
	}
	for i, w := range r.opts.Workloads {
		im, err := r.Image(ctx, w)
		if err != nil {
			return nil, err
		}
		res := c.At(i, 0)
		class := "client"
		if w.LargeFootprint {
			class = "server"
		}
		t.AddRow(w.Name, class, im.Size()/1024, im.StaticBranchCount(),
			res.IPC, res.MissPKI, res.MispredictPKI, res.CondAccuracyPct, res.FTBHitRatePct)
	}
	return t, nil
}

// speedupTable builds the per-benchmark % speedup comparison at one cache
// size — the paper's headline figure shape: the scheme axis against the
// shared no-prefetch baseline, with a gmean footer reduced over the rows.
func speedupTable(ctx context.Context, r *Runner, title string, l1iBytes int) (*stats.Table, error) {
	c, err := r.Collect(ctx, plan(r.opts.Workloads, core.DefaultConfig()).
		Axes(schemesAxis(l1iBytes, "base")))
	if err != nil {
		return nil, err
	}
	t := c.TableVsBaseline(title, "bench", schemeNames, 0, speedupCell)
	footer := []interface{}{"gmean"}
	for _, g := range c.ReduceCols(0, core.Result.SpeedupPctOver, stats.GmeanSpeedupPct) {
		footer = append(footer, fmt.Sprintf("%+.1f%%", g))
	}
	t.AddRow(footer...)
	return t, nil
}

// E2SpeedupSmallCache is the headline comparison at a 16KB L1-I.
func E2SpeedupSmallCache(ctx context.Context, r *Runner) (*stats.Table, error) {
	return speedupTable(ctx, r, "E2: % speedup over no-prefetch, 16KB L1-I", 16*1024)
}

// E3SpeedupLargeCache repeats E2 at 32KB, where gains shrink.
func E3SpeedupLargeCache(ctx context.Context, r *Runner) (*stats.Table, error) {
	return speedupTable(ctx, r, "E3: % speedup over no-prefetch, 32KB L1-I", 32*1024)
}

// E4BusUtilization compares bandwidth cost per scheme.
func E4BusUtilization(ctx context.Context, r *Runner) (*stats.Table, error) {
	c, err := r.Collect(ctx, plan(r.opts.Workloads, core.DefaultConfig()).
		Axes(schemesAxis(16*1024, "none")))
	if err != nil {
		return nil, err
	}
	return c.Table("E4: L1↔L2 bus utilisation (%), 16KB L1-I", "bench",
		append([]string{"none"}, schemeNames...),
		func(_, _ int, res core.Result) any { return res.BusUtilPct }), nil
}

// filterVariants are the cache-probe-filtering configurations of E5.
func filterVariants() (names []string, cfgs []core.Config) {
	mk := func(cpf prefetch.CPFMode, remove bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = cpf
		cfg.Prefetch.FDP.RemoveCPF = remove
		return cfg
	}
	names = []string{"none", "enq-cons", "enq-opt", "remove", "cons+rem", "opt+rem"}
	cfgs = []core.Config{
		mk(prefetch.CPFOff, false),
		mk(prefetch.CPFConservative, false),
		mk(prefetch.CPFOptimistic, false),
		mk(prefetch.CPFOff, true),
		mk(prefetch.CPFConservative, true),
		mk(prefetch.CPFOptimistic, true),
	}
	return names, cfgs
}

// E5CacheProbeFiltering evaluates the paper's filtering mechanisms: speedup
// retained vs bus traffic removed, in long form (one row per workload x
// filter policy).
func E5CacheProbeFiltering(ctx context.Context, r *Runner) (*stats.Table, error) {
	names, cfgs := filterVariants()
	points := make([]engine.NamedConfig, len(cfgs))
	for i, cfg := range cfgs {
		points[i] = engine.Named(names[i], cfg)
	}
	c, err := r.Collect(ctx, plan(r.suiteLarge(), core.DefaultConfig()).
		Axes(engine.Configs(points...).WithBaseline("base", baselineConfig(16*1024))))
	if err != nil {
		return nil, err
	}
	return c.TableLong("E5: FDP cache-probe filtering (large-footprint workloads, 16KB L1-I)",
		[]string{"bench", "filter", "speedup", "bus%", "useful%", "issued/KI"}, 0,
		func(res, base core.Result) []any {
			return []any{speedupCell(res, base), res.BusUtilPct, res.UsefulPct,
				stats.PerKilo(res.PrefetchIssued, res.Committed)}
		}), nil
}

func (r *Runner) suiteLarge() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range r.opts.Workloads {
		if w.LargeFootprint {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = r.opts.Workloads
	}
	return out
}

// knobSweep renders the common "speedup vs knob" figure shape: the knob axis
// over the prefetching base machine, led by the shared 16KB no-prefetch
// baseline, one row per large-footprint workload, each cell reduced from
// (point, baseline).
func knobSweep(ctx context.Context, r *Runner, title string, base core.Config,
	axis engine.Axis, headers []string, cell func(res, base core.Result) any) (*stats.Table, error) {
	c, err := r.Collect(ctx, plan(r.suiteLarge(), base).
		Axes(axis.WithBaseline("base", baselineConfig(16*1024))))
	if err != nil {
		return nil, err
	}
	return c.TableVsBaseline(title, "bench", headers, 0, cell), nil
}

// speedupCell is the baseline-relative speedup reducer most sweeps render.
func speedupCell(res, base core.Result) any {
	return fmt.Sprintf("%+.1f%%", res.SpeedupPctOver(base))
}

// E6FTQSweep shows speedup vs FTQ depth: decoupling depth is what creates
// prefetch opportunity; depth 1 degenerates to a coupled front end.
func E6FTQSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	return knobSweep(ctx, r, "E6: FDP+CPF speedup vs FTQ depth (entries), 16KB L1-I",
		fdpCPF(), engine.Vary("ftq", sizes, func(c *core.Config, n int) { c.FTQEntries = n }),
		intHeaders(sizes), speedupCell)
}

// E7PrefetchBufferSweep sizes the prefetch buffer.
func E7PrefetchBufferSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	sizes := []int{8, 16, 32, 64, 128}
	return knobSweep(ctx, r, "E7: FDP+CPF speedup vs prefetch buffer entries, 16KB L1-I",
		fdpCPF(), engine.Vary("pfb", sizes, func(c *core.Config, n int) { c.PrefetchBufferEntries = n }),
		intHeaders(sizes), speedupCell)
}

// schemeOnOffAxis is the paired-baseline inner axis: each outer knob value
// runs its own no-prefetch baseline and its FDP+CPF machine.
func schemeOnOffAxis() engine.Axis {
	return engine.Vary("scheme", []bool{false, true}, func(c *core.Config, fdp bool) {
		if fdp {
			c.Prefetch.Kind = core.PrefetchFDP
			c.Prefetch.FDP.CPF = prefetch.CPFConservative
		}
	}).Labeled("none", "fdp+cpf")
}

// pairedKnobSweep renders the "speedup vs knob" figure shape for knobs that
// change the baseline machine too: the knob axis crossed with the on/off
// scheme axis, so each knob value holds its own (baseline, prefetching)
// pair, and each cell is the pair's speedup.
func pairedKnobSweep(ctx context.Context, r *Runner, title string,
	knob engine.Axis, headers []string) (*stats.Table, error) {
	c, err := r.Collect(ctx, plan(r.suiteLarge(), core.DefaultConfig()).
		Axes(knob, schemeOnOffAxis()))
	if err != nil {
		return nil, err
	}
	return c.TablePaired(title, "bench", headers,
		func(res, base core.Result) any { return speedupCell(res, base) }), nil
}

// E8LatencySensitivity grows the memory latency; prefetching hides more of a
// longer latency, so FDP's advantage must grow. Each latency point has its
// own baseline (the knob changes the baseline machine too).
func E8LatencySensitivity(ctx context.Context, r *Runner) (*stats.Table, error) {
	lats := []int{30, 70, 140, 280}
	return pairedKnobSweep(ctx, r, "E8: FDP+CPF speedup vs memory latency (cycles), 16KB L1-I",
		engine.Vary("lat", lats, func(c *core.Config, lat int) { c.Mem.MemLatency = lat }),
		intHeaders(lats))
}

// E9CoverageAccuracy tabulates prefetch quality per scheme, in long form.
func E9CoverageAccuracy(ctx context.Context, r *Runner) (*stats.Table, error) {
	c, err := r.Collect(ctx, plan(r.opts.Workloads, core.DefaultConfig()).
		Axes(schemesAxis(16*1024, "")))
	if err != nil {
		return nil, err
	}
	return c.TableLong("E9: prefetch coverage and accuracy, 16KB L1-I",
		[]string{"bench", "scheme", "coverage%", "cov+partial%", "useful%", "issued/KI"}, -1,
		func(res, _ core.Result) []any {
			return []any{res.CoveragePct, res.PartialPct, res.UsefulPct,
				stats.PerKilo(res.PrefetchIssued, res.Committed)}
		}), nil
}

// E10FTBSweep is the BTB-reach ablation: FDP effectiveness tracks how much
// of the branch working set the FTB holds.
func E10FTBSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	sets := []int{64, 128, 256, 512, 1024, 2048}
	return knobSweep(ctx, r, "E10: FDP+CPF speedup and FTB hit rate vs FTB sets (4-way), 16KB L1-I",
		fdpCPF(), engine.Vary("ftb", sets, func(c *core.Config, n int) { c.FTB.Sets = n }),
		intHeaders(sets), func(res, base core.Result) any {
			return fmt.Sprintf("%+.1f%%/%.0f%%", res.SpeedupPctOver(base), res.FTBHitRatePct)
		})
}

// E11Ablation checks robustness: direction predictor quality and
// block-oriented vs conventional BTB organisation.
func E11Ablation(ctx context.Context, r *Runner) (*stats.Table, error) {
	mk := func(pred string, blockOriented bool) core.Config {
		cfg := fdpCPF()
		cfg.PredictorName = pred
		cfg.FTB.BlockOriented = blockOriented
		return cfg
	}
	headers := []string{"hybrid", "gshare", "local", "bimodal", "conventional-BTB"}
	c, err := r.Collect(ctx, plan(r.suiteLarge(), core.DefaultConfig()).
		Axes(engine.Configs(
			engine.Named("hybrid", mk("hybrid", true)),
			engine.Named("gshare", mk("gshare", true)),
			engine.Named("local", mk("local", true)),
			engine.Named("bimodal", mk("bimodal", true)),
			engine.Named("conventional-BTB", mk("hybrid", false)),
		)))
	if err != nil {
		return nil, err
	}
	return c.Table("E11: ablations (FDP+CPF, 16KB L1-I): IPC by predictor and BTB organisation",
		"bench", headers, func(_, _ int, res core.Result) any { return res.IPC }), nil
}

// Experiment names one runnable experiment of the suite.
type Experiment struct {
	// ID is the short identifier ("E1".."E16").
	ID string
	// Run produces the experiment's table.
	Run func(context.Context, *Runner) (*stats.Table, error)
}

// Suite returns the reconstructed 1999 evaluation (E1..E11) in order.
func Suite() []Experiment {
	return []Experiment{
		{"E1", E1Characterization},
		{"E2", E2SpeedupSmallCache},
		{"E3", E3SpeedupLargeCache},
		{"E4", E4BusUtilization},
		{"E5", E5CacheProbeFiltering},
		{"E6", E6FTQSweep},
		{"E7", E7PrefetchBufferSweep},
		{"E8", E8LatencySensitivity},
		{"E9", E9CoverageAccuracy},
		{"E10", E10FTBSweep},
		{"E11", E11Ablation},
	}
}

// RunExperiments executes the given experiments concurrently over one shared
// runner (the engine's worker pool bounds total simulation concurrency) and
// returns their tables in the given order. Per-experiment failures are
// joined into the returned error; tables are nil on failure.
func RunExperiments(ctx context.Context, r *Runner, exps []Experiment) ([]*stats.Table, error) {
	tables, _, err := RunExperimentsTimed(ctx, r, exps)
	return tables, err
}

// RunExperimentsTimed is RunExperiments with per-experiment wall times: the
// i-th duration is experiment i's own start-to-finish span (experiments run
// concurrently, so spans overlap and do not sum to the suite's wall time).
// The durations feed the -benchjson perf snapshot.
func RunExperimentsTimed(ctx context.Context, r *Runner, exps []Experiment) ([]*stats.Table, []time.Duration, error) {
	tables := make([]*stats.Table, len(exps))
	durs := make([]time.Duration, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, ex := range exps {
		wg.Add(1)
		go func(i int, ex Experiment) {
			defer wg.Done()
			start := time.Now()
			t, err := ex.Run(ctx, r)
			durs[i] = time.Since(start)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", ex.ID, err)
				return
			}
			tables[i] = t
		}(i, ex)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	return tables, durs, nil
}

// All runs the reconstructed evaluation (E1..E11) in parallel.
func All(ctx context.Context, r *Runner) ([]*stats.Table, error) {
	return RunExperiments(ctx, r, Suite())
}

func intHeaders(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprint(v)
	}
	return out
}
