// Package experiments implements the paper's evaluation: one entry point per
// reconstructed table/figure (E1..E11 in DESIGN.md) plus the extension
// ablations (E12..E16), each returning a text table with the same
// rows/series the paper reports.
//
// The suite runs on the concurrent simulation engine: every experiment
// expands to a job grid (workloads x configurations) that is swept in
// parallel up to the runner's worker bound, with results memoised so
// configurations shared between experiments (e.g. the no-prefetch baseline)
// simulate once. Entry points take a context and return errors; nothing in
// this package panics.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/stats"
	"fdip/internal/workloads"
)

// Options scales the experiment suite.
type Options struct {
	// Instrs is the committed-instruction budget per simulation.
	Instrs uint64
	// Workloads restricts the suite (nil = all eight benchmarks).
	Workloads []workloads.Workload
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives the engine's typed progress
	// events (delivery is serialised by the engine).
	Progress func(engine.Event)
}

// DefaultOptions runs the full suite at 1M instructions per point.
func DefaultOptions() Options {
	return Options{Instrs: 1_000_000}
}

func (o *Options) setDefaults() {
	if o.Instrs == 0 {
		o.Instrs = 1_000_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workloads.All()
	}
}

// Runner executes experiment job grids on a shared memoising engine.
type Runner struct {
	opts Options
	eng  *engine.Engine
}

// NewRunner builds a runner (and its engine) for the given options.
func NewRunner(opts Options) *Runner {
	opts.setDefaults()
	return &Runner{
		opts: opts,
		eng: engine.New(
			engine.WithWorkers(opts.Workers),
			engine.WithInstrBudget(opts.Instrs),
			engine.WithProgress(opts.Progress),
		),
	}
}

// Options returns the normalised options.
func (r *Runner) Options() Options { return r.opts }

// Engine exposes the underlying engine (for sharing caches or inspecting
// counters).
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Simulations counts actual (non-memoised) simulations so far.
func (r *Runner) Simulations() int { return r.eng.Stats().Simulations }

// Image returns (generating once) the program image for a workload.
func (r *Runner) Image(ctx context.Context, w workloads.Workload) (*program.Image, error) {
	return r.eng.Images().Get(ctx, w.Params)
}

// job names the simulation point for workload w under cfg. Jobs carry the
// workload's params directly so runners built over custom (off-registry)
// workload definitions behave identically to named ones.
func job(w workloads.Workload, cfg core.Config) engine.Job {
	params := w.Params
	return engine.Job{Name: w.Name, Config: cfg, Params: &params, Seed: w.Seed}
}

// Run simulates workload w under cfg (with the runner's instruction budget),
// memoised on (workload, config).
func (r *Runner) Run(ctx context.Context, w workloads.Workload, cfg core.Config) (core.Result, error) {
	return r.eng.Run(ctx, job(w, cfg))
}

// grid sweeps the full workload x config cross product in parallel and
// returns results indexed [workload][config].
func (r *Runner) grid(ctx context.Context, ws []workloads.Workload, cfgs []core.Config) ([][]core.Result, error) {
	jobs := make([]engine.Job, 0, len(ws)*len(cfgs))
	for _, w := range ws {
		for _, cfg := range cfgs {
			jobs = append(jobs, job(w, cfg))
		}
	}
	outs, err := r.eng.Sweep(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := make([][]core.Result, len(ws))
	for i := range ws {
		res[i] = make([]core.Result, len(cfgs))
		for j := range cfgs {
			out := outs[i*len(cfgs)+j]
			if out.Err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", out.Job.Name, out.Err)
			}
			res[i][j] = out.Result
		}
	}
	return res, nil
}

// baselineConfig is the no-prefetch machine at the given L1-I size.
func baselineConfig(l1iBytes int) core.Config {
	cfg := core.DefaultConfig()
	cfg.L1ISizeBytes = l1iBytes
	cfg.Prefetch.Kind = core.PrefetchNone
	return cfg
}

// Baseline runs the no-prefetch machine for w at the given L1-I size.
func (r *Runner) Baseline(ctx context.Context, w workloads.Workload, l1iBytes int) (core.Result, error) {
	return r.Run(ctx, w, baselineConfig(l1iBytes))
}

// schemeConfigs returns the four schemes the headline comparison runs.
func schemeConfigs(l1iBytes int) []core.Config {
	mk := func(kind core.PrefetcherKind, cpf prefetch.CPFMode) core.Config {
		cfg := core.DefaultConfig()
		cfg.L1ISizeBytes = l1iBytes
		cfg.Prefetch.Kind = kind
		cfg.Prefetch.FDP.CPF = cpf
		return cfg
	}
	return []core.Config{
		mk(core.PrefetchNextLine, prefetch.CPFOff),
		mk(core.PrefetchStream, prefetch.CPFOff),
		mk(core.PrefetchFDP, prefetch.CPFOff),
		mk(core.PrefetchFDP, prefetch.CPFConservative),
	}
}

var schemeNames = []string{"nextline", "streambuf", "fdp", "fdp+cpf"}

// E1Characterization reproduces the benchmark characterisation table:
// footprint, baseline performance, and branch behaviour per workload.
func E1Characterization(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E1: workload characterisation (no-prefetch baseline, 16KB L1-I)",
		"bench", "class", "code KB", "static br", "IPC", "miss/KI", "brMPKI", "cond acc%", "FTB hit%")
	grid, err := r.grid(ctx, r.opts.Workloads, []core.Config{baselineConfig(16 * 1024)})
	if err != nil {
		return nil, err
	}
	for i, w := range r.opts.Workloads {
		im, err := r.Image(ctx, w)
		if err != nil {
			return nil, err
		}
		res := grid[i][0]
		class := "client"
		if w.LargeFootprint {
			class = "server"
		}
		t.AddRow(w.Name, class, im.Size()/1024, im.StaticBranchCount(),
			res.IPC, res.MissPKI, res.MispredictPKI, res.CondAccuracyPct, res.FTBHitRatePct)
	}
	return t, nil
}

// speedupTable builds the per-benchmark % speedup comparison at one cache
// size — the paper's headline figure shape.
func speedupTable(ctx context.Context, r *Runner, title string, l1iBytes int) (*stats.Table, error) {
	t := stats.NewTable(title, append([]string{"bench"}, schemeNames...)...)
	cfgs := append([]core.Config{baselineConfig(l1iBytes)}, schemeConfigs(l1iBytes)...)
	grid, err := r.grid(ctx, r.opts.Workloads, cfgs)
	if err != nil {
		return nil, err
	}
	gains := make([][]float64, len(schemeNames))
	for i, w := range r.opts.Workloads {
		base := grid[i][0]
		row := []interface{}{w.Name}
		for j := range schemeNames {
			g := grid[i][j+1].SpeedupPctOver(base)
			gains[j] = append(gains[j], g)
			row = append(row, fmt.Sprintf("%+.1f%%", g))
		}
		t.AddRow(row...)
	}
	grow := []interface{}{"gmean"}
	for i := range schemeNames {
		grow = append(grow, fmt.Sprintf("%+.1f%%", stats.GmeanSpeedupPct(gains[i])))
	}
	t.AddRow(grow...)
	return t, nil
}

// E2SpeedupSmallCache is the headline comparison at a 16KB L1-I.
func E2SpeedupSmallCache(ctx context.Context, r *Runner) (*stats.Table, error) {
	return speedupTable(ctx, r, "E2: % speedup over no-prefetch, 16KB L1-I", 16*1024)
}

// E3SpeedupLargeCache repeats E2 at 32KB, where gains shrink.
func E3SpeedupLargeCache(ctx context.Context, r *Runner) (*stats.Table, error) {
	return speedupTable(ctx, r, "E3: % speedup over no-prefetch, 32KB L1-I", 32*1024)
}

// E4BusUtilization compares bandwidth cost per scheme.
func E4BusUtilization(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E4: L1↔L2 bus utilisation (%), 16KB L1-I",
		append([]string{"bench", "none"}, schemeNames...)...)
	cfgs := append([]core.Config{baselineConfig(16 * 1024)}, schemeConfigs(16*1024)...)
	grid, err := r.grid(ctx, r.opts.Workloads, cfgs)
	if err != nil {
		return nil, err
	}
	for i, w := range r.opts.Workloads {
		row := []interface{}{w.Name}
		for j := range cfgs {
			row = append(row, grid[i][j].BusUtilPct)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// filterVariants are the cache-probe-filtering configurations of E5.
func filterVariants() (names []string, cfgs []core.Config) {
	mk := func(cpf prefetch.CPFMode, remove bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = cpf
		cfg.Prefetch.FDP.RemoveCPF = remove
		return cfg
	}
	names = []string{"none", "enq-cons", "enq-opt", "remove", "cons+rem", "opt+rem"}
	cfgs = []core.Config{
		mk(prefetch.CPFOff, false),
		mk(prefetch.CPFConservative, false),
		mk(prefetch.CPFOptimistic, false),
		mk(prefetch.CPFOff, true),
		mk(prefetch.CPFConservative, true),
		mk(prefetch.CPFOptimistic, true),
	}
	return names, cfgs
}

// E5CacheProbeFiltering evaluates the paper's filtering mechanisms: speedup
// retained vs bus traffic removed.
func E5CacheProbeFiltering(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E5: FDP cache-probe filtering (large-footprint workloads, 16KB L1-I)",
		"bench", "filter", "speedup", "bus%", "useful%", "issued/KI")
	names, variants := filterVariants()
	ws := r.suiteLarge()
	cfgs := append([]core.Config{baselineConfig(16 * 1024)}, variants...)
	grid, err := r.grid(ctx, ws, cfgs)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		base := grid[i][0]
		for j, name := range names {
			res := grid[i][j+1]
			t.AddRow(w.Name, name,
				fmt.Sprintf("%+.1f%%", res.SpeedupPctOver(base)),
				res.BusUtilPct, res.UsefulPct,
				stats.PerKilo(res.PrefetchIssued, res.Committed))
		}
	}
	return t, nil
}

func (r *Runner) suiteLarge() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range r.opts.Workloads {
		if w.LargeFootprint {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = r.opts.Workloads
	}
	return out
}

// sweepVsBaseline renders the common "speedup vs knob" figure shape: one row
// per large-footprint workload, one column per configuration, each cell the
// speedup over the shared 16KB no-prefetch baseline, formatted by cell.
func sweepVsBaseline(ctx context.Context, r *Runner, title string, headers []string,
	cfgs []core.Config, cell func(res, base core.Result) string) (*stats.Table, error) {
	t := stats.NewTable(title, append([]string{"bench"}, headers...)...)
	ws := r.suiteLarge()
	all := append([]core.Config{baselineConfig(16 * 1024)}, cfgs...)
	grid, err := r.grid(ctx, ws, all)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		base := grid[i][0]
		row := []interface{}{w.Name}
		for j := range cfgs {
			row = append(row, cell(grid[i][j+1], base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func speedupCell(res, base core.Result) string {
	return fmt.Sprintf("%+.1f%%", res.SpeedupPctOver(base))
}

// E6FTQSweep shows speedup vs FTQ depth: decoupling depth is what creates
// prefetch opportunity; depth 1 degenerates to a coupled front end.
func E6FTQSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	cfgs := make([]core.Config, len(sizes))
	for i, n := range sizes {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
		cfg.FTQEntries = n
		cfgs[i] = cfg
	}
	return sweepVsBaseline(ctx, r, "E6: FDP+CPF speedup vs FTQ depth (entries), 16KB L1-I",
		intHeaders(sizes), cfgs, speedupCell)
}

// E7PrefetchBufferSweep sizes the prefetch buffer.
func E7PrefetchBufferSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	sizes := []int{8, 16, 32, 64, 128}
	cfgs := make([]core.Config, len(sizes))
	for i, n := range sizes {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
		cfg.PrefetchBufferEntries = n
		cfgs[i] = cfg
	}
	return sweepVsBaseline(ctx, r, "E7: FDP+CPF speedup vs prefetch buffer entries, 16KB L1-I",
		intHeaders(sizes), cfgs, speedupCell)
}

// pairedKnobSweep renders the "speedup vs knob" figure shape for knobs that
// change the baseline machine too: each pair holds that knob value's own
// no-prefetch baseline and its prefetching machine, and each cell is the
// speedup of the pair's second config over its first.
func pairedKnobSweep(ctx context.Context, r *Runner, title string, headers []string,
	pairs [][2]core.Config) (*stats.Table, error) {
	t := stats.NewTable(title, append([]string{"bench"}, headers...)...)
	cfgs := make([]core.Config, 0, 2*len(pairs))
	for _, p := range pairs {
		cfgs = append(cfgs, p[0], p[1])
	}
	ws := r.suiteLarge()
	grid, err := r.grid(ctx, ws, cfgs)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		row := []interface{}{w.Name}
		for j := range pairs {
			row = append(row, speedupCell(grid[i][2*j+1], grid[i][2*j]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// E8LatencySensitivity grows the memory latency; prefetching hides more of a
// longer latency, so FDP's advantage must grow. Each latency point has its
// own baseline (the knob changes the baseline machine too).
func E8LatencySensitivity(ctx context.Context, r *Runner) (*stats.Table, error) {
	lats := []int{30, 70, 140, 280}
	pairs := make([][2]core.Config, len(lats))
	for i, lat := range lats {
		base := core.DefaultConfig()
		base.Mem.MemLatency = lat
		fdp := base
		fdp.Prefetch.Kind = core.PrefetchFDP
		fdp.Prefetch.FDP.CPF = prefetch.CPFConservative
		pairs[i] = [2]core.Config{base, fdp}
	}
	return pairedKnobSweep(ctx, r, "E8: FDP+CPF speedup vs memory latency (cycles), 16KB L1-I",
		intHeaders(lats), pairs)
}

// E9CoverageAccuracy tabulates prefetch quality per scheme.
func E9CoverageAccuracy(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E9: prefetch coverage and accuracy, 16KB L1-I",
		"bench", "scheme", "coverage%", "cov+partial%", "useful%", "issued/KI")
	grid, err := r.grid(ctx, r.opts.Workloads, schemeConfigs(16*1024))
	if err != nil {
		return nil, err
	}
	for i, w := range r.opts.Workloads {
		for j, name := range schemeNames {
			res := grid[i][j]
			t.AddRow(w.Name, name, res.CoveragePct, res.PartialPct,
				res.UsefulPct, stats.PerKilo(res.PrefetchIssued, res.Committed))
		}
	}
	return t, nil
}

// E10FTBSweep is the BTB-reach ablation: FDP effectiveness tracks how much
// of the branch working set the FTB holds.
func E10FTBSweep(ctx context.Context, r *Runner) (*stats.Table, error) {
	sets := []int{64, 128, 256, 512, 1024, 2048}
	cfgs := make([]core.Config, len(sets))
	for i, n := range sets {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
		cfg.FTB.Sets = n
		cfgs[i] = cfg
	}
	return sweepVsBaseline(ctx, r, "E10: FDP+CPF speedup and FTB hit rate vs FTB sets (4-way), 16KB L1-I",
		intHeaders(sets), cfgs, func(res, base core.Result) string {
			return fmt.Sprintf("%+.1f%%/%.0f%%", res.SpeedupPctOver(base), res.FTBHitRatePct)
		})
}

// E11Ablation checks robustness: direction predictor quality and
// block-oriented vs conventional BTB organisation.
func E11Ablation(ctx context.Context, r *Runner) (*stats.Table, error) {
	t := stats.NewTable("E11: ablations (FDP+CPF, 16KB L1-I): IPC by predictor and BTB organisation",
		"bench", "hybrid", "gshare", "local", "bimodal", "conventional-BTB")
	mk := func(pred string, blockOriented bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
		cfg.PredictorName = pred
		cfg.FTB.BlockOriented = blockOriented
		return cfg
	}
	cfgs := []core.Config{
		mk("hybrid", true), mk("gshare", true), mk("local", true),
		mk("bimodal", true), mk("hybrid", false),
	}
	ws := r.suiteLarge()
	grid, err := r.grid(ctx, ws, cfgs)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		row := []interface{}{w.Name}
		for j := range cfgs {
			row = append(row, grid[i][j].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Experiment names one runnable experiment of the suite.
type Experiment struct {
	// ID is the short identifier ("E1".."E16").
	ID string
	// Run produces the experiment's table.
	Run func(context.Context, *Runner) (*stats.Table, error)
}

// Suite returns the reconstructed 1999 evaluation (E1..E11) in order.
func Suite() []Experiment {
	return []Experiment{
		{"E1", E1Characterization},
		{"E2", E2SpeedupSmallCache},
		{"E3", E3SpeedupLargeCache},
		{"E4", E4BusUtilization},
		{"E5", E5CacheProbeFiltering},
		{"E6", E6FTQSweep},
		{"E7", E7PrefetchBufferSweep},
		{"E8", E8LatencySensitivity},
		{"E9", E9CoverageAccuracy},
		{"E10", E10FTBSweep},
		{"E11", E11Ablation},
	}
}

// RunExperiments executes the given experiments concurrently over one shared
// runner (the engine's worker pool bounds total simulation concurrency) and
// returns their tables in the given order. Per-experiment failures are
// joined into the returned error; tables are nil on failure.
func RunExperiments(ctx context.Context, r *Runner, exps []Experiment) ([]*stats.Table, error) {
	tables, _, err := RunExperimentsTimed(ctx, r, exps)
	return tables, err
}

// RunExperimentsTimed is RunExperiments with per-experiment wall times: the
// i-th duration is experiment i's own start-to-finish span (experiments run
// concurrently, so spans overlap and do not sum to the suite's wall time).
// The durations feed the -benchjson perf snapshot.
func RunExperimentsTimed(ctx context.Context, r *Runner, exps []Experiment) ([]*stats.Table, []time.Duration, error) {
	tables := make([]*stats.Table, len(exps))
	durs := make([]time.Duration, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, ex := range exps {
		wg.Add(1)
		go func(i int, ex Experiment) {
			defer wg.Done()
			start := time.Now()
			t, err := ex.Run(ctx, r)
			durs[i] = time.Since(start)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", ex.ID, err)
				return
			}
			tables[i] = t
		}(i, ex)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	return tables, durs, nil
}

// All runs the reconstructed evaluation (E1..E11) in parallel.
func All(ctx context.Context, r *Runner) ([]*stats.Table, error) {
	return RunExperiments(ctx, r, Suite())
}

func intHeaders(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprint(v)
	}
	return out
}
