// Package experiments implements the paper's evaluation: one entry point per
// reconstructed table/figure (E1..E11 in DESIGN.md) plus the extension
// ablations (E12..E16), each returning a text table with the same
// rows/series the paper reports.
//
// A memoising Runner backs all experiments so that configurations shared
// between experiments (e.g. the no-prefetch baseline) simulate once.
package experiments

import (
	"fmt"

	"fdip/internal/core"
	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/stats"
	"fdip/internal/workloads"
)

// Options scales the experiment suite.
type Options struct {
	// Instrs is the committed-instruction budget per simulation.
	Instrs uint64
	// Workloads restricts the suite (nil = all eight benchmarks).
	Workloads []workloads.Workload
	// Progress, when non-nil, receives one line per completed simulation.
	Progress func(line string)
}

// DefaultOptions runs the full suite at 1M instructions per point.
func DefaultOptions() Options {
	return Options{Instrs: 1_000_000}
}

func (o *Options) setDefaults() {
	if o.Instrs == 0 {
		o.Instrs = 1_000_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workloads.All()
	}
}

type runKey struct {
	workload string
	cfg      core.Config
}

// Runner executes simulations with memoisation.
type Runner struct {
	opts   Options
	images map[string]*program.Image
	cache  map[runKey]core.Result

	// Simulations counts actual (non-memoised) runs.
	Simulations int
}

// NewRunner builds a runner for the given options.
func NewRunner(opts Options) *Runner {
	opts.setDefaults()
	return &Runner{
		opts:   opts,
		images: make(map[string]*program.Image),
		cache:  make(map[runKey]core.Result),
	}
}

// Options returns the normalised options.
func (r *Runner) Options() Options { return r.opts }

// Image returns (generating once) the program image for a workload.
func (r *Runner) Image(w workloads.Workload) *program.Image {
	if im, ok := r.images[w.Name]; ok {
		return im
	}
	im, err := program.Generate(w.Params)
	if err != nil {
		panic(fmt.Sprintf("experiments: workload %s: %v", w.Name, err))
	}
	r.images[w.Name] = im
	return im
}

// Run simulates workload w under cfg (with the runner's instruction budget),
// memoised on (workload, config).
func (r *Runner) Run(w workloads.Workload, cfg core.Config) core.Result {
	cfg.MaxInstrs = r.opts.Instrs
	cfg.MaxCycles = 0 // re-derive from MaxInstrs
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	key := runKey{workload: w.Name, cfg: cfg}
	if res, ok := r.cache[key]; ok {
		return res
	}
	im := r.Image(w)
	p, err := core.New(cfg, im, oracle.NewWalker(im, w.Seed))
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	res := p.Run()
	r.cache[key] = res
	r.Simulations++
	if r.opts.Progress != nil {
		r.opts.Progress(fmt.Sprintf("%-10s %-28s IPC %.3f", w.Name, res.Prefetcher, res.IPC))
	}
	return res
}

// Baseline runs the no-prefetch machine for w at the given L1-I size.
func (r *Runner) Baseline(w workloads.Workload, l1iBytes int) core.Result {
	cfg := core.DefaultConfig()
	cfg.L1ISizeBytes = l1iBytes
	cfg.Prefetch.Kind = core.PrefetchNone
	return r.Run(w, cfg)
}

// schemeConfigs returns the four schemes the headline comparison runs.
func schemeConfigs(l1iBytes int) []core.Config {
	mk := func(kind core.PrefetcherKind, cpf prefetch.CPFMode) core.Config {
		cfg := core.DefaultConfig()
		cfg.L1ISizeBytes = l1iBytes
		cfg.Prefetch.Kind = kind
		cfg.Prefetch.FDP.CPF = cpf
		return cfg
	}
	return []core.Config{
		mk(core.PrefetchNextLine, prefetch.CPFOff),
		mk(core.PrefetchStream, prefetch.CPFOff),
		mk(core.PrefetchFDP, prefetch.CPFOff),
		mk(core.PrefetchFDP, prefetch.CPFConservative),
	}
}

var schemeNames = []string{"nextline", "streambuf", "fdp", "fdp+cpf"}

// E1Characterization reproduces the benchmark characterisation table:
// footprint, baseline performance, and branch behaviour per workload.
func E1Characterization(r *Runner) *stats.Table {
	t := stats.NewTable("E1: workload characterisation (no-prefetch baseline, 16KB L1-I)",
		"bench", "class", "code KB", "static br", "IPC", "miss/KI", "brMPKI", "cond acc%", "FTB hit%")
	for _, w := range r.opts.Workloads {
		im := r.Image(w)
		res := r.Baseline(w, 16*1024)
		class := "client"
		if w.LargeFootprint {
			class = "server"
		}
		t.AddRow(w.Name, class, im.Size()/1024, im.StaticBranchCount(),
			res.IPC, res.MissPKI, res.MispredictPKI, res.CondAccuracyPct, res.FTBHitRatePct)
	}
	return t
}

// speedupTable builds the per-benchmark % speedup comparison at one cache
// size — the paper's headline figure shape.
func speedupTable(r *Runner, title string, l1iBytes int) *stats.Table {
	t := stats.NewTable(title, append([]string{"bench"}, schemeNames...)...)
	gains := make([][]float64, len(schemeNames))
	for _, w := range r.opts.Workloads {
		base := r.Baseline(w, l1iBytes)
		row := []interface{}{w.Name}
		for i, cfg := range schemeConfigs(l1iBytes) {
			g := r.Run(w, cfg).SpeedupPctOver(base)
			gains[i] = append(gains[i], g)
			row = append(row, fmt.Sprintf("%+.1f%%", g))
		}
		t.AddRow(row...)
	}
	grow := []interface{}{"gmean"}
	for i := range schemeNames {
		grow = append(grow, fmt.Sprintf("%+.1f%%", stats.GmeanSpeedupPct(gains[i])))
	}
	t.AddRow(grow...)
	return t
}

// E2SpeedupSmallCache is the headline comparison at a 16KB L1-I.
func E2SpeedupSmallCache(r *Runner) *stats.Table {
	return speedupTable(r, "E2: % speedup over no-prefetch, 16KB L1-I", 16*1024)
}

// E3SpeedupLargeCache repeats E2 at 32KB, where gains shrink.
func E3SpeedupLargeCache(r *Runner) *stats.Table {
	return speedupTable(r, "E3: % speedup over no-prefetch, 32KB L1-I", 32*1024)
}

// E4BusUtilization compares bandwidth cost per scheme.
func E4BusUtilization(r *Runner) *stats.Table {
	t := stats.NewTable("E4: L1↔L2 bus utilisation (%), 16KB L1-I",
		append([]string{"bench", "none"}, schemeNames...)...)
	for _, w := range r.opts.Workloads {
		base := r.Baseline(w, 16*1024)
		row := []interface{}{w.Name, base.BusUtilPct}
		for _, cfg := range schemeConfigs(16 * 1024) {
			row = append(row, r.Run(w, cfg).BusUtilPct)
		}
		t.AddRow(row...)
	}
	return t
}

// filterVariants are the cache-probe-filtering configurations of E5.
func filterVariants() (names []string, cfgs []core.Config) {
	mk := func(cpf prefetch.CPFMode, remove bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Prefetch.Kind = core.PrefetchFDP
		cfg.Prefetch.FDP.CPF = cpf
		cfg.Prefetch.FDP.RemoveCPF = remove
		return cfg
	}
	names = []string{"none", "enq-cons", "enq-opt", "remove", "cons+rem", "opt+rem"}
	cfgs = []core.Config{
		mk(prefetch.CPFOff, false),
		mk(prefetch.CPFConservative, false),
		mk(prefetch.CPFOptimistic, false),
		mk(prefetch.CPFOff, true),
		mk(prefetch.CPFConservative, true),
		mk(prefetch.CPFOptimistic, true),
	}
	return names, cfgs
}

// E5CacheProbeFiltering evaluates the paper's filtering mechanisms: speedup
// retained vs bus traffic removed.
func E5CacheProbeFiltering(r *Runner) *stats.Table {
	t := stats.NewTable("E5: FDP cache-probe filtering (large-footprint workloads, 16KB L1-I)",
		"bench", "filter", "speedup", "bus%", "useful%", "issued/KI")
	names, cfgs := filterVariants()
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		for i, cfg := range cfgs {
			res := r.Run(w, cfg)
			t.AddRow(w.Name, names[i],
				fmt.Sprintf("%+.1f%%", res.SpeedupPctOver(base)),
				res.BusUtilPct, res.UsefulPct,
				stats.PerKilo(res.PrefetchIssued, res.Committed))
		}
	}
	return t
}

func (r *Runner) suiteLarge() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range r.opts.Workloads {
		if w.LargeFootprint {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = r.opts.Workloads
	}
	return out
}

// E6FTQSweep shows speedup vs FTQ depth: decoupling depth is what creates
// prefetch opportunity; depth 1 degenerates to a coupled front end.
func E6FTQSweep(r *Runner) *stats.Table {
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	t := stats.NewTable("E6: FDP+CPF speedup vs FTQ depth (entries), 16KB L1-I",
		append([]string{"bench"}, intHeaders(sizes)...)...)
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		row := []interface{}{w.Name}
		for _, n := range sizes {
			cfg := core.DefaultConfig()
			cfg.Prefetch.Kind = core.PrefetchFDP
			cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
			cfg.FTQEntries = n
			row = append(row, fmt.Sprintf("%+.1f%%", r.Run(w, cfg).SpeedupPctOver(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// E7PrefetchBufferSweep sizes the prefetch buffer.
func E7PrefetchBufferSweep(r *Runner) *stats.Table {
	sizes := []int{8, 16, 32, 64, 128}
	t := stats.NewTable("E7: FDP+CPF speedup vs prefetch buffer entries, 16KB L1-I",
		append([]string{"bench"}, intHeaders(sizes)...)...)
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		row := []interface{}{w.Name}
		for _, n := range sizes {
			cfg := core.DefaultConfig()
			cfg.Prefetch.Kind = core.PrefetchFDP
			cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
			cfg.PrefetchBufferEntries = n
			row = append(row, fmt.Sprintf("%+.1f%%", r.Run(w, cfg).SpeedupPctOver(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// E8LatencySensitivity grows the memory latency; prefetching hides more of a
// longer latency, so FDP's advantage must grow.
func E8LatencySensitivity(r *Runner) *stats.Table {
	lats := []int{30, 70, 140, 280}
	t := stats.NewTable("E8: FDP+CPF speedup vs memory latency (cycles), 16KB L1-I",
		append([]string{"bench"}, intHeaders(lats)...)...)
	for _, w := range r.suiteLarge() {
		row := []interface{}{w.Name}
		for _, lat := range lats {
			base := core.DefaultConfig()
			base.Mem.MemLatency = lat
			fdp := base
			fdp.Prefetch.Kind = core.PrefetchFDP
			fdp.Prefetch.FDP.CPF = prefetch.CPFConservative
			g := r.Run(w, fdp).SpeedupPctOver(r.Run(w, base))
			row = append(row, fmt.Sprintf("%+.1f%%", g))
		}
		t.AddRow(row...)
	}
	return t
}

// E9CoverageAccuracy tabulates prefetch quality per scheme.
func E9CoverageAccuracy(r *Runner) *stats.Table {
	t := stats.NewTable("E9: prefetch coverage and accuracy, 16KB L1-I",
		"bench", "scheme", "coverage%", "cov+partial%", "useful%", "issued/KI")
	for _, w := range r.opts.Workloads {
		for i, cfg := range schemeConfigs(16 * 1024) {
			res := r.Run(w, cfg)
			t.AddRow(w.Name, schemeNames[i], res.CoveragePct, res.PartialPct,
				res.UsefulPct, stats.PerKilo(res.PrefetchIssued, res.Committed))
		}
	}
	return t
}

// E10FTBSweep is the BTB-reach ablation: FDP effectiveness tracks how much
// of the branch working set the FTB holds.
func E10FTBSweep(r *Runner) *stats.Table {
	sets := []int{64, 128, 256, 512, 1024, 2048}
	t := stats.NewTable("E10: FDP+CPF speedup and FTB hit rate vs FTB sets (4-way), 16KB L1-I",
		append([]string{"bench"}, intHeaders(sets)...)...)
	for _, w := range r.suiteLarge() {
		base := r.Baseline(w, 16*1024)
		row := []interface{}{w.Name}
		for _, n := range sets {
			cfg := core.DefaultConfig()
			cfg.Prefetch.Kind = core.PrefetchFDP
			cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
			cfg.FTB.Sets = n
			res := r.Run(w, cfg)
			row = append(row, fmt.Sprintf("%+.1f%%/%.0f%%", res.SpeedupPctOver(base), res.FTBHitRatePct))
		}
		t.AddRow(row...)
	}
	return t
}

// E11Ablation checks robustness: direction predictor quality and
// block-oriented vs conventional BTB organisation.
func E11Ablation(r *Runner) *stats.Table {
	t := stats.NewTable("E11: ablations (FDP+CPF, 16KB L1-I): IPC by predictor and BTB organisation",
		"bench", "hybrid", "gshare", "local", "bimodal", "conventional-BTB")
	for _, w := range r.suiteLarge() {
		mk := func(pred string, blockOriented bool) core.Result {
			cfg := core.DefaultConfig()
			cfg.Prefetch.Kind = core.PrefetchFDP
			cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
			cfg.PredictorName = pred
			cfg.FTB.BlockOriented = blockOriented
			return r.Run(w, cfg)
		}
		t.AddRow(w.Name,
			mk("hybrid", true).IPC,
			mk("gshare", true).IPC,
			mk("local", true).IPC,
			mk("bimodal", true).IPC,
			mk("hybrid", false).IPC,
		)
	}
	return t
}

// All runs every experiment in order.
func All(r *Runner) []*stats.Table {
	return []*stats.Table{
		E1Characterization(r),
		E2SpeedupSmallCache(r),
		E3SpeedupLargeCache(r),
		E4BusUtilization(r),
		E5CacheProbeFiltering(r),
		E6FTQSweep(r),
		E7PrefetchBufferSweep(r),
		E8LatencySensitivity(r),
		E9CoverageAccuracy(r),
		E10FTBSweep(r),
		E11Ablation(r),
	}
}

func intHeaders(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprint(v)
	}
	return out
}
