package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdip/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the pinned experiment tables in testdata")

// goldenOpts is the fixed scale the pinned tables were produced at: one
// large-footprint and one client workload at a short budget, so the full
// 16-experiment suite stays test-fast while every table shape (per-workload
// rows, large-only sweeps, paired baselines, gmean footers) is exercised.
func goldenOpts() Options {
	gcc, _ := workloads.ByName("gcc")
	db, _ := workloads.ByName("deltablue")
	return Options{Instrs: 30_000, Workloads: []workloads.Workload{gcc, db}, Workers: 4}
}

const goldenTablesPath = "testdata/tables_golden.txt"

// renderSuite renders every experiment table (E1..E16) into one string.
func renderSuite(t *testing.T) string {
	t.Helper()
	r := NewRunner(goldenOpts())
	tables, err := RunExperiments(context.Background(), r, ExtendedSuite())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tables {
		sb.WriteString(tab.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestExperimentTablesGolden is the differential gate for experiment
// refactors: the rendered E1..E16 tables must stay byte-identical to the
// output pinned when the suite ran on the hand-rolled grid helpers
// (pre-Plan/reducer). Any drift means the Plan + reducer rebuild changed the
// science or the formatting; regenerate with -update only for an intentional,
// called-out table change.
func TestExperimentTablesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	got := renderSuite(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTablesPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTablesPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenTablesPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenTablesPath)
	if err != nil {
		t.Fatalf("missing pinned tables (run with -update to record): %v", err)
	}
	if got != string(want) {
		t.Errorf("experiment tables drifted from the pinned grid-helper output.\nFirst divergence around byte %d.\n--- got ---\n%s\n--- want ---\n%s",
			firstDiff(got, string(want)), clip(got), clip(string(want)))
	}
}

func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n... (clipped)"
	}
	return s
}
