package prefetch

import (
	"fmt"
	"math"

	"fdip/internal/ftq"
)

// CPFMode selects the cache-probe-filtering policy applied when a candidate
// line is enqueued into the prefetch instruction queue (PIQ).
//
// Cache-probe filtering uses *idle* L1-I tag ports to check whether a
// candidate is already cached. The policies differ in what happens when no
// idle port is available:
type CPFMode uint8

const (
	// CPFOff enqueues every candidate without consulting the cache — the
	// unfiltered fetch-directed prefetcher.
	CPFOff CPFMode = iota
	// CPFConservative enqueues only candidates verified to miss; with no
	// idle port the scan stalls and retries next cycle.
	CPFConservative
	// CPFOptimistic enqueues candidates unless verified to hit; with no
	// idle port the candidate is enqueued unverified.
	CPFOptimistic
)

// String names the mode.
func (m CPFMode) String() string {
	switch m {
	case CPFOff:
		return "off"
	case CPFConservative:
		return "enqueue-conservative"
	case CPFOptimistic:
		return "enqueue-optimistic"
	}
	return fmt.Sprintf("cpf(%d)", uint8(m))
}

// FDPConfig tunes the fetch-directed prefetcher.
type FDPConfig struct {
	// PIQSize is the prefetch instruction queue capacity in lines.
	PIQSize int
	// SkipHead is the number of FTQ entries at the front excluded from
	// prefetching (1 = the fetch point, as in the paper).
	SkipHead int
	// CPF selects the enqueue-side cache-probe-filtering policy.
	CPF CPFMode
	// RemoveCPF enables remove-side filtering: leftover idle tag ports
	// re-probe queued PIQ entries and drop those that now hit.
	RemoveCPF bool
	// KeepPIQOnSquash retains queued candidates across front-end
	// redirects instead of discarding them. The queued lines belong to a
	// squashed (wrong) path; keeping them trades pollution for the chance
	// that the wrong path reconverges — an ablation of the paper's
	// discard policy.
	KeepPIQOnSquash bool
}

// DefaultFDPConfig returns the paper-style configuration with filtering off.
func DefaultFDPConfig() FDPConfig {
	return FDPConfig{PIQSize: 16, SkipHead: 1}
}

func (c *FDPConfig) setDefaults() {
	if c.PIQSize <= 0 {
		c.PIQSize = 16
	}
	if c.SkipHead < 0 {
		c.SkipHead = 0
	}
}

// FDP is the fetch-directed prefetcher: it scans the fetch target queue
// beyond the fetch point, decomposes predicted fetch blocks into cache-line
// candidates, filters them, and issues them into idle bus slots.
type FDP struct {
	port port
	cfg  FDPConfig

	piq []uint64

	// Scan cursor: the next (block sequence, line index) to consider.
	nextSeq  uint64
	nextLine int

	// Enqueued counts PIQ insertions; FilteredProbe candidates dropped by
	// an enqueue-side probe hit; Unverified optimistic enqueues without a
	// port; ConservativeStalls scan stalls waiting for a port; DupInPIQ
	// candidates already queued; RemovedProbe PIQ entries dropped by
	// remove-side probing; SquashDrops PIQ entries discarded on redirect.
	Enqueued, FilteredProbe, Unverified uint64
	ConservativeStalls, DupInPIQ        uint64
	RemovedProbe, SquashDrops           uint64
}

// NewFDP creates a fetch-directed prefetcher. env.FTQ must be non-nil.
func NewFDP(env Env, cfg FDPConfig) *FDP {
	cfg.setDefaults()
	if env.FTQ == nil {
		panic("prefetch: FDP requires an FTQ")
	}
	return &FDP{port: port{env: env}, cfg: cfg, piq: make([]uint64, 0, cfg.PIQSize)}
}

// Name implements Prefetcher.
func (f *FDP) Name() string {
	n := "fdp"
	if f.cfg.CPF != CPFOff {
		n += "+" + f.cfg.CPF.String()
	}
	if f.cfg.RemoveCPF {
		n += "+remove"
	}
	if f.cfg.KeepPIQOnSquash {
		n += "+keep-wrongpath"
	}
	return n
}

// Config returns the active configuration.
func (f *FDP) Config() FDPConfig { return f.cfg }

// PIQOccupancy returns the current PIQ depth.
func (f *FDP) PIQOccupancy() int { return len(f.piq) }

// Tick implements Prefetcher: scan, filter, then issue.
func (f *FDP) Tick(now int64) {
	f.scan(now)
	f.issue(now)
	if f.cfg.RemoveCPF {
		f.removeProbe(now)
	}
}

// scan walks unscanned FTQ lines into the PIQ, applying enqueue-side CPF.
func (f *FDP) scan(now int64) {
	q := f.port.env.FTQ
	n := q.Len()
	if n <= f.cfg.SkipHead || q.NewestSeq() < f.nextSeq {
		return // everything queued has been scanned; skip the walk
	}
	// Queue entries carry consecutive sequence numbers (the BPU pushes them
	// in order), so the cursor's position resolves to an index directly —
	// the walk starts at the first unscanned block instead of re-skipping
	// every scanned one.
	start := f.cfg.SkipHead
	if head := q.At(0); f.nextSeq > head.Seq {
		if d := int(f.nextSeq - head.Seq); d > start {
			start = d
		}
	}
	for i := start; i < n; i++ {
		b := q.At(i)
		if b.Seq < f.nextSeq {
			continue // already scanned
		}
		if b.Seq > f.nextSeq {
			// Cursor block was fetched or squashed away; jump forward.
			f.nextSeq = b.Seq
			f.nextLine = 0
		}
		for f.nextLine < len(b.Lines) {
			if len(f.piq) >= f.cfg.PIQSize {
				return
			}
			ln := &b.Lines[f.nextLine]
			if ln.State != ftq.LineCandidate {
				f.nextLine++
				continue
			}
			if f.inPIQ(ln.Addr) {
				ln.State = ftq.LineEnqueued
				f.DupInPIQ++
				f.nextLine++
				continue
			}
			switch f.cfg.CPF {
			case CPFOff:
				f.enqueue(ln)
			case CPFConservative, CPFOptimistic:
				if f.port.env.L1I.TryUsePort(now) {
					if f.port.env.L1I.Probe(ln.Addr) {
						ln.State = ftq.LineFiltered
						f.FilteredProbe++
					} else {
						f.enqueue(ln)
					}
				} else if f.cfg.CPF == CPFOptimistic {
					f.Unverified++
					f.enqueue(ln)
				} else {
					// Conservative: no port, no verification — hold the
					// cursor and retry next cycle.
					f.ConservativeStalls++
					return
				}
			}
			f.nextLine++
		}
		f.nextSeq = b.Seq + 1
		f.nextLine = 0
	}
}

func (f *FDP) enqueue(ln *ftq.Line) {
	ln.State = ftq.LineEnqueued
	f.piq = append(f.piq, ln.Addr)
	f.Enqueued++
}

func (f *FDP) inPIQ(line uint64) bool {
	for _, e := range f.piq {
		if e == line {
			return true
		}
	}
	return false
}

// issue starts at most one prefetch from the PIQ head per idle bus slot.
func (f *FDP) issue(now int64) {
	for len(f.piq) > 0 {
		switch f.port.tryIssue(f.piq[0], now) {
		case issued, dropPresent, dropInflight:
			n := copy(f.piq, f.piq[1:])
			f.piq = f.piq[:n]
		case busBusy:
			return
		}
		// A successful issue occupies the bus, so stop scanning once it
		// is no longer idle; dropped entries cost nothing and the loop
		// continues to the next candidate.
		if !f.port.env.Hier.BusIdle(now) {
			return
		}
	}
}

// removeProbe spends leftover idle tag ports re-checking queued entries,
// dropping any that have become cache hits since enqueue.
func (f *FDP) removeProbe(now int64) {
	i := 0
	for i < len(f.piq) {
		if f.port.env.L1I.IdlePorts(now) == 0 || !f.port.env.L1I.TryUsePort(now) {
			return
		}
		if f.port.env.L1I.Probe(f.piq[i]) {
			f.piq = append(f.piq[:i], f.piq[i+1:]...)
			f.RemovedProbe++
			continue
		}
		i++
	}
}

// scanBlocked reports whether a full PIQ blocks the scan cursor. A blocked
// scan is a proven no-op whatever the FTQ holds: the inner scan loop checks
// PIQ capacity before it reads a line state, probes a tag port, or counts a
// conservative stall, so no counter moves and the cursor stays put until
// issue (or remove-side probing) frees a slot. This is also what makes the
// engine push-inert — new blocks appended behind the cursor cannot wake a
// scan that has no PIQ room.
func (f *FDP) scanBlocked() bool { return len(f.piq) >= f.cfg.PIQSize }

// NextEvent implements Prefetcher. The FDP is active while the scan cursor
// trails the newest FTQ block (detected exactly by comparing against its
// monotonic sequence number) *and* has PIQ room to enqueue into — a full
// PIQ provably blocks the scan (see scanBlocked), so unscanned blocks alone
// no longer pin the scheduler to per-cycle stepping. It is also active
// while remove-side probing has queued entries to re-check, and whenever
// the PIQ head would issue or be dropped this cycle. A PIQ head deferred on
// a busy bus is the one waiting state the scheduler may jump: nothing
// changes until the bus frees except the deferral counter, which OnSkip
// batches.
func (f *FDP) NextEvent(now int64) int64 {
	q := f.port.env.FTQ
	if n := q.Len(); n > f.cfg.SkipHead && q.NewestSeq() >= f.nextSeq && !f.scanBlocked() {
		return now // unscanned blocks and PIQ room: the scan advances this cycle
	}
	if len(f.piq) == 0 {
		return math.MaxInt64
	}
	if f.cfg.RemoveCPF {
		return now // remove-side probing runs every cycle the PIQ is populated
	}
	if !f.port.headDefers(f.piq[0], now) {
		return now // the head issues or is dropped this cycle
	}
	return f.port.env.Hier.BusFreeAt()
}

// OnSkip implements Prefetcher: a skip with a populated PIQ can only have
// crossed bus-busy deferral cycles (NextEvent pins every other state to
// "active", and a scan blocked by a full PIQ touches nothing), so account
// one deferral per skipped cycle.
func (f *FDP) OnSkip(cycles uint64) {
	if len(f.piq) > 0 {
		f.port.stats.DeferredBusBusy += cycles
	}
}

// PushInert implements Prefetcher: the FDP scans the FTQ, so pushes wake it
// whenever the scan has PIQ room; only a full PIQ makes it push-inert.
func (f *FDP) PushInert() bool { return f.scanBlocked() }

// OnDemandAccess implements Prefetcher; FDP is driven by the FTQ, not the
// demand stream.
func (f *FDP) OnDemandAccess(uint64, bool, bool, int64) {}

// OnSquash implements Prefetcher: queued candidates belong to the squashed
// path and are discarded (unless KeepPIQOnSquash ablates that). The scan
// cursor stays monotonic because block sequence numbers keep increasing
// across redirects.
func (f *FDP) OnSquash() {
	if f.cfg.KeepPIQOnSquash {
		return
	}
	f.SquashDrops += uint64(len(f.piq))
	f.piq = f.piq[:0]
}

// Reset implements Prefetcher: the PIQ emptied, the scan cursor rewound to
// the first block the (reset) BPU will push, and counters zeroed. The PIQ's
// backing array is retained.
func (f *FDP) Reset() {
	f.piq = f.piq[:0]
	f.nextSeq = 0
	f.nextLine = 0
	f.Enqueued, f.FilteredProbe, f.Unverified = 0, 0, 0
	f.ConservativeStalls, f.DupInPIQ = 0, 0
	f.RemovedProbe, f.SquashDrops = 0, 0
	f.port.stats = PortStats{}
}

// IssueStats implements Prefetcher.
func (f *FDP) IssueStats() PortStats { return f.port.stats }
