package prefetch

import (
	"math/rand"
	"testing"

	"fdip/internal/ftq"
	"fdip/internal/memsys"
)

// pfTrace drives a prefetcher and its environment with a deterministic mix
// of demand accesses, FTQ traffic, squashes, and ticks — the stimulus the
// core delivers — recording every observable outcome plus the issue-port
// counters.
func pfTrace(env Env, p Prefetcher, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	var seq uint64
	now := int64(0)
	for i := 0; i < 1500; i++ {
		now++
		env.Hier.DrainCompleted(now, func(tr *memsys.Transfer) {
			if tr.Prefetch && !tr.DemandMerged {
				env.PFB.Insert(tr.Line)
			} else {
				env.L1I.Fill(tr.Line, tr.Prefetch)
			}
			out = append(out, tr.Line)
		})
		switch rng.Intn(5) {
		case 0, 1: // demand access, resolved like the fetch engine does
			line := uint64(rng.Intn(1<<9)) * 32
			l1Hit := env.L1I.Access(line)
			pfbHit := false
			if !l1Hit {
				if env.PFB.Take(line) {
					pfbHit = true
					env.L1I.Fill(line, true)
				} else {
					env.Hier.Request(line, false, now)
				}
			}
			p.OnDemandAccess(line, l1Hit, pfbHit, now)
		case 2: // a BPU prediction lands in the FTQ
			if !env.FTQ.Full() {
				env.FTQ.Push(ftq.Block{Seq: seq, Start: uint64(rng.Intn(1<<9)) * 32, NumInstrs: 1 + rng.Intn(8)})
				seq++
			}
		case 3: // occasional redirect
			if rng.Intn(8) == 0 {
				env.FTQ.Squash()
				p.OnSquash()
			}
		case 4: // fetch consumes the head
			if env.FTQ.Len() > 0 && rng.Intn(3) == 0 {
				env.FTQ.PopHead()
			}
		}
		p.Tick(now)
		if e := p.NextEvent(now); e < int64(1)<<62 {
			out = append(out, uint64(e))
		}
	}
	st := p.IssueStats()
	out = append(out, st.Issued, st.DroppedPresent, st.DroppedInflight, st.DeferredBusBusy)
	if env.FTB != nil {
		// The shadow decoder's observable side effect is FTB state.
		out = append(out, env.FTB.Lookups, env.FTB.Hits, env.FTB.Inserts,
			env.FTB.Updates, env.FTB.Evictions)
	}
	return out
}

// resetAll resets the prefetcher and its whole environment, as the owning
// processor's Reset does.
func resetAll(env Env, p Prefetcher) {
	env.L1I.Reset()
	env.PFB.Reset()
	env.Hier.Reset()
	env.FTQ.Reset()
	if env.FTB != nil {
		env.FTB.Reset()
	}
	p.Reset()
}

// TestPrefetcherResetEqualsFresh dirties each prefetch engine (and its
// environment), resets everything, and requires the exact observable
// behaviour of a freshly constructed engine over a fresh environment.
func TestPrefetcherResetEqualsFresh(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (Env, Prefetcher)
	}{
		{"none", func() (Env, Prefetcher) { env := testEnv(); return env, NewNone() }},
		{"nextline", func() (Env, Prefetcher) { env := testEnv(); return env, NewNextLine(env, 4) }},
		{"streambuf", func() (Env, Prefetcher) { env := testEnv(); return env, NewStreamBuffers(env, 4, 4) }},
		{"fdp", func() (Env, Prefetcher) {
			env := testEnv()
			return env, NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1})
		}},
		{"fdp+cpf-conservative", func() (Env, Prefetcher) {
			env := testEnv()
			return env, NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, CPF: CPFConservative})
		}},
		{"fdp+cpf-optimistic+remove", func() (Env, Prefetcher) {
			env := testEnv()
			return env, NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, CPF: CPFOptimistic, RemoveCPF: true})
		}},
		{"mana", func() (Env, Prefetcher) {
			env := testEnv()
			return env, NewMANA(env, MANAConfig{BudgetBytes: 512, RegionLines: 8, QueueSize: 4})
		}},
		{"shadow", func() (Env, Prefetcher) {
			env := testModernEnv()
			return env, NewShadow(env, ShadowConfig{DecodeQueue: 2, TargetQueue: 4, PrefetchTargets: true})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, dirty := tc.mk()
			pfTrace(env, dirty, 1)
			resetAll(env, dirty)
			got := pfTrace(env, dirty, 2)
			fenv, fresh := tc.mk()
			want := pfTrace(fenv, fresh, 2)
			if len(got) != len(want) {
				t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("reset %s diverged from fresh at trace step %d: %d != %d", tc.name, i, got[i], want[i])
				}
			}
		})
	}
}
