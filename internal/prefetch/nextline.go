package prefetch

import "math"

// NextLine is Smith-style tagged next-line prefetching: a demand miss on
// line L, or the first use of a prefetched line L, triggers a prefetch of
// L+1. Triggers that find the bus busy wait in a small pending queue.
type NextLine struct {
	port    port
	pending []uint64
	cap     int

	// Triggers counts miss/first-use events; PendingDrops counts triggers
	// discarded because the pending queue was full.
	Triggers, PendingDrops uint64
}

// NewNextLine creates a tagged next-line prefetcher with a pending queue of
// pendCap triggers.
func NewNextLine(env Env, pendCap int) *NextLine {
	if pendCap < 1 {
		pendCap = 4
	}
	return &NextLine{port: port{env: env}, cap: pendCap}
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "nextline" }

// OnDemandAccess implements Prefetcher: misses and prefetch-buffer hits
// (first use of a prefetched line) trigger the next line.
func (n *NextLine) OnDemandAccess(lineAddr uint64, l1Hit, pfbHit bool, now int64) {
	if l1Hit && !pfbHit {
		return
	}
	n.Triggers++
	next := lineAddr + uint64(n.port.env.LineBytes)
	n.enqueue(next)
}

func (n *NextLine) enqueue(line uint64) {
	for _, p := range n.pending {
		if p == line {
			return
		}
	}
	if len(n.pending) >= n.cap {
		n.PendingDrops++
		return
	}
	n.pending = append(n.pending, line)
}

// Tick implements Prefetcher: issue the oldest pending trigger into an idle
// bus slot.
func (n *NextLine) Tick(now int64) {
	for len(n.pending) > 0 {
		line := n.pending[0]
		switch n.port.tryIssue(line, now) {
		case issued:
			n.pending = n.pending[1:]
			return // one bus slot per cycle
		case busBusy:
			return // keep waiting
		default: // present or inflight: discard and try the next
			n.pending = n.pending[1:]
		}
	}
}

// NextEvent implements Prefetcher: an empty pending queue waits on demand
// traffic; a head that would issue or be discarded makes the engine active;
// a head deferred on a busy bus only counts deferrals until the bus frees,
// which OnSkip batches.
func (n *NextLine) NextEvent(now int64) int64 {
	if len(n.pending) == 0 {
		return math.MaxInt64
	}
	if !n.port.headDefers(n.pending[0], now) {
		return now
	}
	return n.port.env.Hier.BusFreeAt()
}

// OnSkip implements Prefetcher (see FDP.OnSkip: skipped cycles with pending
// triggers are exactly bus-busy deferrals).
func (n *NextLine) OnSkip(cycles uint64) {
	if len(n.pending) > 0 {
		n.port.stats.DeferredBusBusy += cycles
	}
}

// PushInert implements Prefetcher: next-line triggers come from the demand
// stream, so FTQ pushes never wake the engine.
func (n *NextLine) PushInert() bool { return true }

// OnSquash implements Prefetcher. Next-line triggers come from the demand
// stream, not predictions, so redirects do not invalidate them.
func (n *NextLine) OnSquash() {}

// Reset implements Prefetcher: pending queue emptied, counters zeroed.
func (n *NextLine) Reset() {
	n.pending = n.pending[:0]
	n.Triggers, n.PendingDrops = 0, 0
	n.port.stats = PortStats{}
}

// IssueStats implements Prefetcher.
func (n *NextLine) IssueStats() PortStats { return n.port.stats }
