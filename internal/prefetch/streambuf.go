package prefetch

import "math"

// StreamBuffers is a multi-way Jouppi stream-buffer prefetcher. A demand
// miss that no active stream covers allocates a stream starting at the next
// line; each stream runs ahead of the demand stream by up to depth lines.
// Streamed lines land in the shared prefetch buffer; a prefetch-buffer hit
// that falls inside a stream's window advances the stream and replenishes
// its credit, so a useful stream keeps running while a useless one starves
// and is eventually reallocated (the "reset" behaviour the paper discusses).
type StreamBuffers struct {
	port    port
	streams []stream
	depth   int

	// Allocations counts stream (re)allocations — the reset rate;
	// Advances counts useful-hit continuations.
	Allocations, Advances uint64
}

type stream struct {
	valid   bool
	next    uint64 // next line to request
	credit  int    // remaining lines this stream may fetch ahead
	lastUse int64  // LRU for reallocation
	base    uint64 // first line covered (for window membership)
}

// NewStreamBuffers creates numStreams stream buffers of the given depth.
func NewStreamBuffers(env Env, numStreams, depth int) *StreamBuffers {
	if numStreams < 1 {
		numStreams = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &StreamBuffers{
		port:    port{env: env},
		streams: make([]stream, numStreams),
		depth:   depth,
	}
}

// Name implements Prefetcher.
func (s *StreamBuffers) Name() string { return "streambuf" }

// covers reports whether line falls in stream st's active window
// [base, next).
func (st *stream) covers(line uint64) bool {
	return st.valid && line >= st.base && line < st.next
}

// OnDemandAccess implements Prefetcher.
func (s *StreamBuffers) OnDemandAccess(lineAddr uint64, l1Hit, pfbHit bool, now int64) {
	if pfbHit {
		// First use of a streamed line: advance the owning stream.
		for i := range s.streams {
			st := &s.streams[i]
			if st.covers(lineAddr) {
				st.base = lineAddr + uint64(s.port.env.LineBytes)
				if st.credit < s.depth {
					st.credit++
				}
				st.lastUse = now
				s.Advances++
				return
			}
		}
		return
	}
	if l1Hit {
		return
	}
	// Full miss: if a stream already covers the next line, leave it be;
	// otherwise (re)allocate the LRU stream.
	next := lineAddr + uint64(s.port.env.LineBytes)
	for i := range s.streams {
		st := &s.streams[i]
		if st.covers(next) || (st.valid && st.next == next) {
			st.lastUse = now
			return
		}
	}
	victim := 0
	for i := range s.streams {
		if !s.streams[i].valid {
			victim = i
			break
		}
		if s.streams[i].lastUse < s.streams[victim].lastUse {
			victim = i
		}
	}
	s.streams[victim] = stream{valid: true, next: next, base: next, credit: s.depth, lastUse: now}
	s.Allocations++
}

// Tick implements Prefetcher: round-robin over streams with credit, one
// issue per idle bus slot.
func (s *StreamBuffers) Tick(now int64) {
	for i := range s.streams {
		st := &s.streams[i]
		if !st.valid || st.credit <= 0 {
			continue
		}
		switch s.port.tryIssue(st.next, now) {
		case issued:
			st.next += uint64(s.port.env.LineBytes)
			st.credit--
			return
		case busBusy:
			return
		default:
			// Already present/in flight: the stream still advances past
			// it so it can keep running ahead.
			st.next += uint64(s.port.env.LineBytes)
			st.credit--
		}
	}
}

// NextEvent implements Prefetcher. Tick walks streams in order and acts on
// the first one holding credit, so only that stream decides the schedule:
// if its next line would issue or be skipped past, the engine is active;
// if it defers on a busy bus, nothing changes until the bus frees except
// the deferral counter, which OnSkip batches. Credit-starved streams wait
// on demand traffic.
func (s *StreamBuffers) NextEvent(now int64) int64 {
	for i := range s.streams {
		st := &s.streams[i]
		if !st.valid || st.credit <= 0 {
			continue
		}
		if !s.port.headDefers(st.next, now) {
			return now
		}
		return s.port.env.Hier.BusFreeAt()
	}
	return math.MaxInt64
}

// OnSkip implements Prefetcher (see FDP.OnSkip: with a credited stream,
// skipped cycles are exactly bus-busy deferrals of its next line).
func (s *StreamBuffers) OnSkip(cycles uint64) {
	for i := range s.streams {
		if s.streams[i].valid && s.streams[i].credit > 0 {
			s.port.stats.DeferredBusBusy += cycles
			return
		}
	}
}

// PushInert implements Prefetcher: streams follow the demand stream, so FTQ
// pushes never wake the engine.
func (s *StreamBuffers) PushInert() bool { return true }

// OnSquash implements Prefetcher. Streams follow the demand stream, not
// predictions; a redirect simply changes future misses.
func (s *StreamBuffers) OnSquash() {}

// Reset implements Prefetcher: every stream deallocated, counters zeroed.
func (s *StreamBuffers) Reset() {
	clear(s.streams)
	s.Allocations, s.Advances = 0, 0
	s.port.stats = PortStats{}
}

// IssueStats implements Prefetcher.
func (s *StreamBuffers) IssueStats() PortStats { return s.port.stats }

// ActiveStreams reports how many streams are live (for tests/reports).
func (s *StreamBuffers) ActiveStreams() int {
	n := 0
	for i := range s.streams {
		if s.streams[i].valid {
			n++
		}
	}
	return n
}
