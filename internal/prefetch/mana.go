package prefetch

import (
	"math"
	"math/bits"
)

// MANA is a spatial-region instruction prefetcher in the style of MANA
// (Ansari et al., arXiv:2102.01764): the demand miss stream is segmented
// into spatial regions anchored at a trigger line, each region's footprint
// of subsequently-touched lines is recorded in a set-associative table, and
// a later miss on a recorded trigger replays the footprint as prefetches.
//
// The defining MANA constraint is the metadata budget: the table is sized
// from BudgetBytes using a per-record bit cost (tag + footprint bitmap), so
// widening regions buys reach at the price of fewer records — the same
// trade the paper sweeps. Replayed lines issue through the shared port
// discipline (idle bus slots only, one per cycle, hygiene-checked against
// the PFB and in-flight transfers).
type MANA struct {
	port port
	cfg  MANAConfig

	// Record table: sets x ways, true-LRU, flat backing (see btb.New).
	sets     [][]manaRecord
	setShift uint
	clock    uint64

	// Training state: the open region's trigger line number and footprint,
	// and the last demand line seen (for run-length dedup of the per-cycle
	// demand notifications).
	trigger  uint64
	foot     uint64
	open     bool
	lastLine uint64
	seenAny  bool

	// pending is the replay queue feeding the issue port.
	pending []uint64

	// Triggers counts distinct-line demand events; RecordHits footprint
	// replays; RegionsCommitted non-empty footprints written back;
	// PendingDrops replayed lines discarded on a full queue.
	Triggers, RecordHits, RegionsCommitted, PendingDrops uint64
}

// manaRecord maps a trigger line to the footprint of its spatial region:
// bit i set means line trigger+i+1 was demanded while the region was open.
type manaRecord struct {
	valid bool
	tag   uint64
	foot  uint64
	stamp uint64
}

// MANAConfig tunes the spatial-region prefetcher.
type MANAConfig struct {
	// BudgetBytes is the metadata budget; the record count is derived from
	// it at RecordBits bits per record.
	BudgetBytes int
	// RegionLines is the spatial region span in cache lines, including the
	// trigger (2..64). It sets the footprint width to RegionLines-1 bits.
	RegionLines int
	// QueueSize caps the replay queue feeding the issue port.
	QueueSize int
}

// DefaultMANAConfig returns a 2KB-budget, 8-line-region configuration.
func DefaultMANAConfig() MANAConfig {
	return MANAConfig{BudgetBytes: 2048, RegionLines: 8, QueueSize: 16}
}

func (c *MANAConfig) setDefaults() {
	d := DefaultMANAConfig()
	if c.BudgetBytes <= 0 {
		c.BudgetBytes = d.BudgetBytes
	}
	if c.RegionLines <= 0 {
		c.RegionLines = d.RegionLines
	}
	if c.RegionLines < 2 {
		c.RegionLines = 2
	}
	if c.RegionLines > 64 {
		c.RegionLines = 64
	}
	if c.QueueSize <= 0 {
		c.QueueSize = d.QueueSize
	}
}

// manaTagBits approximates the stored trigger tag width for budget
// accounting (a 48-bit line address less the set index, rounded the way the
// paper's storage tables do).
const manaTagBits = 32

// RecordBits returns the storage cost of one record under the budget
// accounting: a trigger tag plus the RegionLines-1 footprint bits.
func (c MANAConfig) RecordBits() int { return manaTagBits + c.RegionLines - 1 }

// NewMANA creates a spatial-region prefetcher sized to cfg's budget.
func NewMANA(env Env, cfg MANAConfig) *MANA {
	cfg.setDefaults()
	entries := cfg.BudgetBytes * 8 / cfg.RecordBits()
	ways := 4
	if entries < ways {
		ways = 1
	}
	numSets := ceilPow2((entries + ways - 1) / ways)
	backing := make([]manaRecord, numSets*ways)
	sets := make([][]manaRecord, numSets)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return &MANA{
		port:     port{env: env},
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(numSets))),
		pending:  make([]uint64, 0, cfg.QueueSize),
	}
}

// Name implements Prefetcher.
func (m *MANA) Name() string { return "mana" }

// Config returns the active (normalised) configuration.
func (m *MANA) Config() MANAConfig { return m.cfg }

// Records returns the table's record capacity under the budget.
func (m *MANA) Records() int { return len(m.sets) * len(m.sets[0]) }

func (m *MANA) setAndTag(ln uint64) (int, uint64) {
	return int(ln & uint64(len(m.sets)-1)), ln >> m.setShift
}

// OnDemandAccess implements Prefetcher. Every distinct-line demand access
// trains the open region's footprint; accesses that miss the L1-I (full
// misses and prefetch-buffer first uses) additionally look the line up as a
// trigger and replay a recorded footprint.
func (m *MANA) OnDemandAccess(lineAddr uint64, l1Hit, pfbHit bool, now int64) {
	ln := lineAddr / uint64(m.port.env.LineBytes)
	if m.seenAny && ln == m.lastLine {
		return // the fetch engine re-reads the same line for cycles at a time
	}
	m.seenAny = true
	m.lastLine = ln
	m.Triggers++

	if !l1Hit {
		// Miss-stream trigger: replay the recorded region before training
		// touches the table.
		if foot, ok := m.lookup(ln); ok {
			m.RecordHits++
			for foot != 0 {
				i := bits.TrailingZeros64(foot)
				foot &^= 1 << i
				m.enqueue((ln + uint64(i) + 1) * uint64(m.port.env.LineBytes))
			}
		}
	}

	// Train: extend the open region while the access lands inside it,
	// otherwise commit the footprint and re-anchor at this line.
	if m.open {
		if d := ln - m.trigger; d >= 1 && d < uint64(m.cfg.RegionLines) {
			m.foot |= 1 << (d - 1)
			return
		}
		if m.foot != 0 {
			m.commit(m.trigger, m.foot)
			m.RegionsCommitted++
		}
	}
	m.open = true
	m.trigger = ln
	m.foot = 0
}

// lookup probes the record table for trigger line ln, refreshing LRU on hit.
func (m *MANA) lookup(ln uint64) (uint64, bool) {
	si, tag := m.setAndTag(ln)
	set := m.sets[si]
	for i := range set {
		r := &set[i]
		if r.valid && r.tag == tag {
			m.clock++
			r.stamp = m.clock
			return r.foot, true
		}
	}
	return 0, false
}

// commit writes a region footprint back, OR-merging into an existing record
// (regions re-learn incrementally across visits) or evicting true-LRU.
func (m *MANA) commit(ln, foot uint64) {
	si, tag := m.setAndTag(ln)
	set := m.sets[si]
	m.clock++
	for i := range set {
		r := &set[i]
		if r.valid && r.tag == tag {
			r.foot |= foot
			r.stamp = m.clock
			return
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = manaRecord{valid: true, tag: tag, foot: foot, stamp: m.clock}
}

func (m *MANA) enqueue(line uint64) {
	for _, p := range m.pending {
		if p == line {
			return
		}
	}
	if len(m.pending) >= m.cfg.QueueSize {
		m.PendingDrops++
		return
	}
	m.pending = append(m.pending, line)
}

// Tick implements Prefetcher: issue the oldest replayed line into an idle
// bus slot (same loop shape as NextLine — one slot per cycle, dropped
// candidates cost nothing).
func (m *MANA) Tick(now int64) {
	for len(m.pending) > 0 {
		r := m.port.tryIssue(m.pending[0], now)
		if r == busBusy {
			return
		}
		n := copy(m.pending, m.pending[1:])
		m.pending = m.pending[:n]
		if r == issued {
			return
		}
	}
}

// NextEvent implements Prefetcher: an empty replay queue waits on demand
// traffic; a head that would issue or be discarded is active now; a head
// deferred on a busy bus waits for the bus, with OnSkip batching the
// deferral counts.
func (m *MANA) NextEvent(now int64) int64 {
	if len(m.pending) == 0 {
		return math.MaxInt64
	}
	if !m.port.headDefers(m.pending[0], now) {
		return now
	}
	return m.port.env.Hier.BusFreeAt()
}

// OnSkip implements Prefetcher: skipped cycles with a populated replay queue
// are exactly bus-busy deferrals (see NextLine.OnSkip).
func (m *MANA) OnSkip(cycles uint64) {
	if len(m.pending) > 0 {
		m.port.stats.DeferredBusBusy += cycles
	}
}

// PushInert implements Prefetcher: MANA observes the demand stream, never
// the FTQ, so predicted-block pushes cannot wake it.
func (m *MANA) PushInert() bool { return true }

// OnSquash implements Prefetcher. Regions are trained on the architectural
// demand stream and replays are spatial, not path predictions, so redirects
// invalidate nothing.
func (m *MANA) OnSquash() {}

// Reset implements Prefetcher: the record table invalidated, the LRU clock
// rewound, training state and replay queue cleared, counters zeroed — all
// backing arrays retained.
func (m *MANA) Reset() {
	for _, set := range m.sets {
		clear(set)
	}
	m.clock = 0
	m.trigger, m.foot, m.open = 0, 0, false
	m.lastLine, m.seenAny = 0, false
	m.pending = m.pending[:0]
	m.Triggers, m.RecordHits, m.RegionsCommitted, m.PendingDrops = 0, 0, 0, 0
	m.port.stats = PortStats{}
}

// IssueStats implements Prefetcher.
func (m *MANA) IssueStats() PortStats { return m.port.stats }

func ceilPow2(v int) int {
	if v < 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}
