package prefetch

import (
	"testing"

	"fdip/internal/cache"
	"fdip/internal/ftq"
	"fdip/internal/memsys"
)

// testEnv builds a small but realistic environment: 1KB 2-way L1-I with 2
// tag ports, 8-entry prefetch buffer, fast L2.
func testEnv() Env {
	l1 := cache.New(cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, Repl: cache.LRU, TagPorts: 2})
	pfb := cache.NewPrefetchBuffer(8, 32)
	h := memsys.New(memsys.Config{
		LineBytes: 32, L2SizeBytes: 1 << 16, L2Ways: 4,
		L2HitLatency: 8, MemLatency: 40, BusCyclesPerLine: 4,
	})
	q := ftq.New(8, 32)
	return Env{L1I: l1, PFB: pfb, Hier: h, FTQ: q, LineBytes: 32}
}

// drain completes all outstanding transfers, filling the PFB with prefetches.
func drain(env Env, now int64) {
	for _, tr := range env.Hier.CompletedBy(now + 1000) {
		if tr.Prefetch && !tr.DemandMerged {
			env.PFB.Insert(tr.Line)
		}
	}
}

func TestNonePrefetcherIsInert(t *testing.T) {
	env := testEnv()
	n := NewNone()
	n.OnDemandAccess(0x1000, false, false, 0)
	n.Tick(0)
	n.OnSquash()
	if env.Hier.PrefetchRequests != 0 {
		t.Error("none prefetcher issued")
	}
	if n.IssueStats() != (PortStats{}) {
		t.Error("none prefetcher has stats")
	}
	if n.Name() != "none" {
		t.Error("bad name")
	}
}

func TestNextLineTriggersOnMiss(t *testing.T) {
	env := testEnv()
	n := NewNextLine(env, 4)
	n.OnDemandAccess(0x1000, false, false, 0)
	n.Tick(0)
	if got := n.IssueStats().Issued; got != 1 {
		t.Fatalf("Issued = %d", got)
	}
	if !env.Hier.Inflight(0x1020) {
		t.Error("next line 0x1020 not requested")
	}
}

func TestNextLineTriggersOnPFBFirstUse(t *testing.T) {
	env := testEnv()
	n := NewNextLine(env, 4)
	n.OnDemandAccess(0x1020, false, true, 0) // prefetch-buffer hit
	n.Tick(0)
	if !env.Hier.Inflight(0x1040) {
		t.Error("tagged trigger did not fire")
	}
	// Plain cache hit must NOT trigger.
	n.OnDemandAccess(0x2000, true, false, 5)
	if n.Triggers != 1 {
		t.Errorf("Triggers = %d", n.Triggers)
	}
}

func TestNextLineWaitsForIdleBus(t *testing.T) {
	env := testEnv()
	n := NewNextLine(env, 4)
	env.Hier.Request(0x9000, false, 0) // bus busy until cycle 4
	n.OnDemandAccess(0x1000, false, false, 0)
	n.Tick(1)
	if n.IssueStats().Issued != 0 {
		t.Error("issued into busy bus")
	}
	n.Tick(4)
	if n.IssueStats().Issued != 1 {
		t.Error("did not issue when bus freed")
	}
}

func TestNextLinePendingOverflow(t *testing.T) {
	env := testEnv()
	n := NewNextLine(env, 2)
	env.Hier.Request(0x9000, false, 0) // keep bus busy
	for i := 0; i < 5; i++ {
		n.OnDemandAccess(uint64(0x1000+i*0x100), false, false, 0)
	}
	if n.PendingDrops != 3 {
		t.Errorf("PendingDrops = %d", n.PendingDrops)
	}
}

func TestStreamBufferAllocatesAndRuns(t *testing.T) {
	env := testEnv()
	s := NewStreamBuffers(env, 2, 4)
	s.OnDemandAccess(0x1000, false, false, 0)
	if s.Allocations != 1 || s.ActiveStreams() != 1 {
		t.Fatalf("alloc=%d active=%d", s.Allocations, s.ActiveStreams())
	}
	// Run several cycles; each idle-bus cycle issues the next stream line.
	now := int64(0)
	for i := 0; i < 40; i++ {
		s.Tick(now)
		now += 4 // bus slot
	}
	st := s.IssueStats()
	if st.Issued != 4 { // depth-limited
		t.Errorf("Issued = %d, want 4 (depth)", st.Issued)
	}
	if !env.Hier.Inflight(0x1020) && !env.PFB.Contains(0x1020) {
		drain(env, now)
		if !env.PFB.Contains(0x1020) {
			t.Error("first streamed line missing")
		}
	}
}

func TestStreamBufferAdvanceRefreshesCredit(t *testing.T) {
	env := testEnv()
	s := NewStreamBuffers(env, 1, 2)
	s.OnDemandAccess(0x1000, false, false, 0)
	now := int64(0)
	for i := 0; i < 10; i++ {
		s.Tick(now)
		now += 4
	}
	if s.IssueStats().Issued != 2 {
		t.Fatalf("Issued = %d", s.IssueStats().Issued)
	}
	// First use of streamed line 0x1020 advances the stream.
	s.OnDemandAccess(0x1020, false, true, now)
	if s.Advances != 1 {
		t.Fatalf("Advances = %d", s.Advances)
	}
	for i := 0; i < 10; i++ {
		s.Tick(now)
		now += 4
	}
	if s.IssueStats().Issued != 3 {
		t.Errorf("Issued after advance = %d, want 3", s.IssueStats().Issued)
	}
}

func TestStreamBufferReallocatesLRU(t *testing.T) {
	env := testEnv()
	s := NewStreamBuffers(env, 2, 2)
	s.OnDemandAccess(0x1000, false, false, 0)
	s.OnDemandAccess(0x5000, false, false, 1)
	s.OnDemandAccess(0x9000, false, false, 2) // must evict stream for 0x1000
	if s.Allocations != 3 {
		t.Errorf("Allocations = %d", s.Allocations)
	}
	if s.ActiveStreams() != 2 {
		t.Errorf("ActiveStreams = %d", s.ActiveStreams())
	}
	// A miss covered by an existing stream's next line does not reallocate.
	s.OnDemandAccess(0x9000, false, false, 3)
	if s.Allocations != 3 {
		t.Errorf("covered miss reallocated: %d", s.Allocations)
	}
}

func pushBlock(q *ftq.Queue, seq uint64, start uint64, n int) {
	q.Push(ftq.Block{Seq: seq, Start: start, NumInstrs: n})
}

func TestFDPScansBeyondHead(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1})
	pushBlock(env.FTQ, 0, 0x1000, 8) // head: not prefetched
	pushBlock(env.FTQ, 1, 0x2000, 8) // candidate
	f.Tick(0)
	if env.Hier.Inflight(0x1000) {
		t.Error("head block prefetched")
	}
	if !env.Hier.Inflight(0x2000) {
		t.Error("non-head block not prefetched")
	}
	if f.Enqueued != 1 {
		t.Errorf("Enqueued = %d", f.Enqueued)
	}
}

func TestFDPMultiLineBlock(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2010, 8) // spans 0x2000 and 0x2020
	now := int64(0)
	for i := 0; i < 5; i++ {
		f.Tick(now)
		now += 4
	}
	if f.Enqueued != 2 {
		t.Fatalf("Enqueued = %d, want 2", f.Enqueued)
	}
	if f.IssueStats().Issued != 2 {
		t.Errorf("Issued = %d", f.IssueStats().Issued)
	}
}

func TestFDPDoesNotRescan(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	f.Tick(0)
	e1 := f.Enqueued
	f.Tick(4)
	f.Tick(8)
	if f.Enqueued != e1 {
		t.Errorf("rescan enqueued again: %d -> %d", e1, f.Enqueued)
	}
}

func TestFDPConservativeCPFFiltersCachedLines(t *testing.T) {
	env := testEnv()
	env.L1I.Fill(0x2000, false) // already cached
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, CPF: CPFConservative})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4) // one line, cached
	pushBlock(env.FTQ, 2, 0x3000, 4) // one line, not cached
	f.Tick(0)
	if f.FilteredProbe != 1 {
		t.Errorf("FilteredProbe = %d", f.FilteredProbe)
	}
	if f.Enqueued != 1 {
		t.Errorf("Enqueued = %d", f.Enqueued)
	}
	if env.Hier.Inflight(0x2000) {
		t.Error("cached line prefetched despite CPF")
	}
}

func TestFDPConservativeStallsWithoutPort(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, CPF: CPFConservative})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	// Exhaust both tag ports this cycle (demand fetch + something else).
	env.L1I.TryUsePort(0)
	env.L1I.TryUsePort(0)
	f.Tick(0)
	if f.Enqueued != 0 || f.ConservativeStalls != 1 {
		t.Errorf("enqueued=%d stalls=%d", f.Enqueued, f.ConservativeStalls)
	}
	// Next cycle ports are free again: the candidate goes through.
	f.Tick(1)
	if f.Enqueued != 1 {
		t.Errorf("post-stall Enqueued = %d", f.Enqueued)
	}
}

func TestFDPOptimisticEnqueuesUnverified(t *testing.T) {
	env := testEnv()
	env.L1I.Fill(0x2000, false)
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, CPF: CPFOptimistic})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	env.L1I.TryUsePort(0)
	env.L1I.TryUsePort(0)
	f.Tick(0)
	if f.Enqueued != 1 || f.Unverified != 1 {
		t.Errorf("enqueued=%d unverified=%d", f.Enqueued, f.Unverified)
	}
}

func TestFDPRemoveCPFDropsLateHits(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, RemoveCPF: true})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	// Keep the bus busy so the candidate stays queued.
	env.Hier.Request(0x9000, false, 0)
	f.Tick(0)
	if f.PIQOccupancy() != 1 {
		t.Fatalf("PIQ = %d", f.PIQOccupancy())
	}
	// The line lands in the cache (e.g. demand fetch took it).
	env.L1I.Fill(0x2000, false)
	env.Hier.Request(0x9100, false, 4) // keep bus busy again
	f.Tick(5)
	if f.RemovedProbe != 1 {
		t.Errorf("RemovedProbe = %d", f.RemovedProbe)
	}
	if f.PIQOccupancy() != 0 {
		t.Errorf("PIQ after remove = %d", f.PIQOccupancy())
	}
}

func TestFDPSquashClearsPIQ(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	pushBlock(env.FTQ, 2, 0x3000, 4)
	env.Hier.Request(0x9000, false, 0) // bus busy: nothing issues
	f.Tick(0)
	if f.PIQOccupancy() != 2 {
		t.Fatalf("PIQ = %d", f.PIQOccupancy())
	}
	env.FTQ.Squash()
	f.OnSquash()
	if f.PIQOccupancy() != 0 || f.SquashDrops != 2 {
		t.Errorf("piq=%d drops=%d", f.PIQOccupancy(), f.SquashDrops)
	}
	// New blocks after redirect are scanned normally.
	pushBlock(env.FTQ, 3, 0x4000, 4)
	pushBlock(env.FTQ, 4, 0x5000, 4)
	f.Tick(10)
	if f.Enqueued != 3 {
		t.Errorf("post-squash Enqueued = %d", f.Enqueued)
	}
}

func TestFDPPIQCapacity(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 2, SkipHead: 1})
	env.Hier.Request(0x9000, false, 0) // bus busy
	pushBlock(env.FTQ, 0, 0x1000, 1)
	for i := 1; i <= 5; i++ {
		pushBlock(env.FTQ, uint64(i), uint64(0x2000+i*0x100), 4)
	}
	f.Tick(0)
	if f.PIQOccupancy() != 2 {
		t.Errorf("PIQ exceeded capacity: %d", f.PIQOccupancy())
	}
}

func TestFDPDropsPresentAndDuplicate(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1})
	env.PFB.Insert(0x2000)
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4) // in PFB: enqueued, dropped at issue
	pushBlock(env.FTQ, 2, 0x3000, 4)
	pushBlock(env.FTQ, 3, 0x3000, 4) // duplicate of the previous block
	f.Tick(0)
	if f.IssueStats().DroppedPresent != 1 {
		t.Errorf("DroppedPresent = %d", f.IssueStats().DroppedPresent)
	}
	if f.DupInPIQ != 1 {
		t.Errorf("DupInPIQ = %d", f.DupInPIQ)
	}
	if !env.Hier.Inflight(0x3000) {
		t.Error("unique candidate not issued")
	}
}

func TestFDPNameVariants(t *testing.T) {
	env := testEnv()
	if got := NewFDP(env, FDPConfig{}).Name(); got != "fdp" {
		t.Errorf("Name = %q", got)
	}
	if got := NewFDP(env, FDPConfig{CPF: CPFConservative}).Name(); got != "fdp+enqueue-conservative" {
		t.Errorf("Name = %q", got)
	}
	if got := NewFDP(env, FDPConfig{CPF: CPFOptimistic, RemoveCPF: true}).Name(); got != "fdp+enqueue-optimistic+remove" {
		t.Errorf("Name = %q", got)
	}
}

func TestFDPRequiresFTQ(t *testing.T) {
	env := testEnv()
	env.FTQ = nil
	defer func() {
		if recover() == nil {
			t.Error("FDP without FTQ did not panic")
		}
	}()
	NewFDP(env, FDPConfig{})
}

func TestPortHygiene(t *testing.T) {
	env := testEnv()
	p := port{env: env}
	env.PFB.Insert(0x1000)
	if r := p.tryIssue(0x1000, 0); r != dropPresent {
		t.Errorf("present: %v", r)
	}
	env.Hier.Request(0x2000, false, 0)
	if r := p.tryIssue(0x2000, 1); r != dropInflight {
		t.Errorf("inflight: %v", r)
	}
	if r := p.tryIssue(0x3000, 1); r != busBusy {
		t.Errorf("busy: %v", r)
	}
	if r := p.tryIssue(0x3000, 10); r != issued {
		t.Errorf("idle: %v", r)
	}
	want := PortStats{Issued: 1, DroppedPresent: 1, DroppedInflight: 1, DeferredBusBusy: 1}
	if p.stats != want {
		t.Errorf("stats = %+v", p.stats)
	}
}

func TestFDPKeepPIQOnSquash(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 8, SkipHead: 1, KeepPIQOnSquash: true})
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	env.Hier.Request(0x9000, false, 0) // bus busy: candidate stays queued
	f.Tick(0)
	if f.PIQOccupancy() != 1 {
		t.Fatalf("PIQ = %d", f.PIQOccupancy())
	}
	env.FTQ.Squash()
	f.OnSquash()
	if f.PIQOccupancy() != 1 || f.SquashDrops != 0 {
		t.Errorf("keep-on-squash dropped entries: piq=%d drops=%d", f.PIQOccupancy(), f.SquashDrops)
	}
	if f.Name() != "fdp+keep-wrongpath" {
		t.Errorf("Name = %q", f.Name())
	}
}

// TestPushInert pins the burst-scheduler contract: engines that never scan
// the FTQ are always push-inert; the FDP only while a full PIQ blocks its
// scan cursor.
func TestPushInert(t *testing.T) {
	env := testEnv()
	if !NewNone().PushInert() {
		t.Error("none not push-inert")
	}
	if !NewNextLine(env, 4).PushInert() {
		t.Error("nextline not push-inert")
	}
	if !NewStreamBuffers(env, 2, 4).PushInert() {
		t.Error("streambuf not push-inert")
	}
	if !NewMANA(env, MANAConfig{}).PushInert() {
		t.Error("mana not push-inert")
	}
	if !NewShadow(testModernEnv(), ShadowConfig{}).PushInert() {
		t.Error("shadow not push-inert")
	}
	// Shadow stays push-inert even mid-decode: its work comes from arriving
	// lines, and NextEvent pins decode cycles to "now" anyway.
	sh := NewShadow(testModernEnv(), ShadowConfig{})
	sh.OnDemandAccess(0, false, false, 0)
	if !sh.PushInert() {
		t.Error("shadow with queued decode work not push-inert")
	}

	f := NewFDP(env, FDPConfig{PIQSize: 2, SkipHead: 1})
	if f.PushInert() {
		t.Error("FDP with PIQ room claims push-inert")
	}
	env.Hier.Request(0x9000, false, 0) // bus busy: candidates stay queued
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	pushBlock(env.FTQ, 2, 0x3000, 4)
	f.Tick(0)
	if f.PIQOccupancy() != 2 {
		t.Fatalf("PIQ = %d, want full (2)", f.PIQOccupancy())
	}
	if !f.PushInert() {
		t.Error("FDP with full PIQ not push-inert")
	}
}

// TestFDPNextEventPIQFull is the precise scan-cursor modelling: unscanned
// FTQ blocks behind a full PIQ no longer pin the engine to "active this
// cycle" — the next event is the bus freeing, and the blocked scan is a
// proven no-op in between.
func TestFDPNextEventPIQFull(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 2, SkipHead: 1})
	env.Hier.Request(0x9000, false, 0) // bus busy until cycle 4
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	pushBlock(env.FTQ, 2, 0x3000, 4)
	pushBlock(env.FTQ, 3, 0x4000, 4) // stays unscanned: PIQ fills first
	f.Tick(0)
	if f.PIQOccupancy() != 2 {
		t.Fatalf("PIQ = %d, want 2", f.PIQOccupancy())
	}

	if got, want := f.NextEvent(1), env.Hier.BusFreeAt(); got != want {
		t.Errorf("NextEvent with blocked scan = %d, want bus-free cycle %d", got, want)
	}

	// The blocked scan must not move any counter or the cursor.
	type snap struct {
		enq, filt, dup, cons uint64
		stats                PortStats
		piq                  int
	}
	take := func() snap {
		return snap{f.Enqueued, f.FilteredProbe, f.DupInPIQ, f.ConservativeStalls, f.port.stats, f.PIQOccupancy()}
	}
	before := take()
	f.Tick(1)
	f.Tick(2)
	after := take()
	// Ticks against a busy bus count one deferral each; nothing else moves.
	before.stats.DeferredBusBusy += 2
	if before != after {
		t.Errorf("blocked scan mutated state:\nbefore+defer: %+v\nafter:        %+v", before, after)
	}

	// OnSkip batches exactly those deferrals.
	g := NewFDP(env, FDPConfig{PIQSize: 2, SkipHead: 1})
	g.piq = append(g.piq, 0xdead000)
	g.OnSkip(3)
	if g.IssueStats().DeferredBusBusy != 3 {
		t.Errorf("OnSkip deferrals = %d", g.IssueStats().DeferredBusBusy)
	}

	// When the bus frees, the head issues and the scan resumes.
	f.Tick(4)
	if f.IssueStats().Issued != 1 {
		t.Errorf("Issued after bus freed = %d", f.IssueStats().Issued)
	}
	if f.NextEvent(4) != 4 {
		t.Errorf("NextEvent with PIQ room and unscanned blocks should be now")
	}
}

// TestFDPNextEventRemoveCPFStaysActive guards the one PIQ-populated state
// the scheduler must never jump: remove-side probing re-checks queued
// entries every cycle.
func TestFDPNextEventRemoveCPFStaysActive(t *testing.T) {
	env := testEnv()
	f := NewFDP(env, FDPConfig{PIQSize: 2, SkipHead: 1, RemoveCPF: true})
	env.Hier.Request(0x9000, false, 0)
	pushBlock(env.FTQ, 0, 0x1000, 1)
	pushBlock(env.FTQ, 1, 0x2000, 4)
	pushBlock(env.FTQ, 2, 0x3000, 4)
	f.Tick(0)
	if f.PIQOccupancy() != 2 {
		t.Fatalf("PIQ = %d", f.PIQOccupancy())
	}
	if got := f.NextEvent(1); got != 1 {
		t.Errorf("RemoveCPF NextEvent = %d, want now (1)", got)
	}
}
