// Package prefetch implements the instruction prefetch engines the paper
// evaluates: fetch-directed prefetching (the contribution), tagged next-line
// prefetching and multi-way stream buffers (the baselines), and a null
// prefetcher.
//
// All engines share the same issue discipline for a fair bandwidth
// comparison: prefetches are issued only into idle L1↔L2 bus slots, at most
// one per cycle, and land in the shared fully-associative prefetch buffer
// probed alongside the L1-I. Lines already cached, buffered, or in flight
// are never re-requested.
package prefetch

import (
	"fdip/internal/cache"
	"fdip/internal/ftq"
	"fdip/internal/memsys"
)

// Env wires a prefetcher to the structures it observes and drives.
type Env struct {
	// L1I is the instruction cache (probed by cache-probe filtering).
	L1I *cache.Cache
	// PFB is the shared prefetch buffer prefetched lines land in.
	PFB *cache.PrefetchBuffer
	// Hier is the bus + L2 + memory below the L1-I.
	Hier *memsys.Hierarchy
	// FTQ is the fetch target queue (used by fetch-directed prefetching).
	FTQ *ftq.Queue
	// LineBytes is the cache line size.
	LineBytes int
}

// Prefetcher is the interface the processor core drives each cycle.
type Prefetcher interface {
	// Name identifies the scheme in reports.
	Name() string
	// Tick runs once per cycle, after the fetch engine.
	Tick(now int64)
	// OnDemandAccess notifies the engine of a demand L1-I access to
	// lineAddr and its outcome: l1Hit for a cache hit, pfbHit for a
	// prefetch-buffer hit (mutually exclusive; both false on a full miss).
	OnDemandAccess(lineAddr uint64, l1Hit, pfbHit bool, now int64)
	// OnSquash notifies the engine of a front-end redirect: the FTQ was
	// squashed and queued predictions are dead.
	OnSquash()
	// IssueStats returns the shared issue-port counters.
	IssueStats() PortStats
}

// PortStats counts the issue port's decisions.
type PortStats struct {
	// Issued counts prefetch transfers started on the bus.
	Issued uint64
	// DroppedPresent counts candidates already in the L1-I-side storage
	// (prefetch buffer); DroppedInflight candidates already on the bus;
	// DeferredBusBusy candidates that found no idle bus slot this cycle.
	DroppedPresent, DroppedInflight, DeferredBusBusy uint64
}

// port is the shared issue path: hygiene checks, then an idle-bus request.
type port struct {
	env   Env
	stats PortStats
}

// issueResult tells the caller why an issue did not happen.
type issueResult uint8

const (
	issued issueResult = iota
	dropPresent
	dropInflight
	busBusy
)

// tryIssue attempts to start a prefetch of line at cycle now.
func (p *port) tryIssue(line uint64, now int64) issueResult {
	if p.env.PFB.Contains(line) {
		p.stats.DroppedPresent++
		return dropPresent
	}
	if p.env.Hier.Inflight(line) {
		p.stats.DroppedInflight++
		return dropInflight
	}
	if !p.env.Hier.BusIdle(now) {
		p.stats.DeferredBusBusy++
		return busBusy
	}
	p.env.Hier.Request(line, true, now)
	p.stats.Issued++
	return issued
}

// None is the no-prefetch baseline.
type None struct{}

// NewNone returns the null prefetcher.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (*None) Name() string { return "none" }

// Tick implements Prefetcher.
func (*None) Tick(int64) {}

// OnDemandAccess implements Prefetcher.
func (*None) OnDemandAccess(uint64, bool, bool, int64) {}

// OnSquash implements Prefetcher.
func (*None) OnSquash() {}

// IssueStats implements Prefetcher.
func (*None) IssueStats() PortStats { return PortStats{} }
