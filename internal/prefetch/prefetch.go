// Package prefetch implements the instruction prefetch engines the paper
// evaluates: fetch-directed prefetching (the contribution), tagged next-line
// prefetching and multi-way stream buffers (the baselines), and a null
// prefetcher.
//
// All engines share the same issue discipline for a fair bandwidth
// comparison: prefetches are issued only into idle L1↔L2 bus slots, at most
// one per cycle, and land in the shared fully-associative prefetch buffer
// probed alongside the L1-I. Lines already cached, buffered, or in flight
// are never re-requested.
package prefetch

import (
	"math"

	"fdip/internal/btb"
	"fdip/internal/cache"
	"fdip/internal/ftq"
	"fdip/internal/memsys"
	"fdip/internal/program"
)

// Env wires a prefetcher to the structures it observes and drives.
type Env struct {
	// L1I is the instruction cache (probed by cache-probe filtering).
	L1I *cache.Cache
	// PFB is the shared prefetch buffer prefetched lines land in.
	PFB *cache.PrefetchBuffer
	// Hier is the bus + L2 + memory below the L1-I.
	Hier *memsys.Hierarchy
	// FTQ is the fetch target queue (used by fetch-directed prefetching).
	FTQ *ftq.Queue
	// FTB is the front end's target buffer, prefilled by the shadow-branch
	// engine. Nil for engines that never touch predictor state.
	FTB *btb.TargetBuffer
	// Image returns the current program image — the ground-truth decode
	// source for engines that decode fetched line bytes. A closure rather
	// than a pointer because Processor.Reset swaps images under a pooled
	// machine.
	Image func() *program.Image
	// LineBytes is the cache line size.
	LineBytes int
}

// Prefetcher is the interface the processor core drives each cycle.
type Prefetcher interface {
	// Name identifies the scheme in reports.
	Name() string
	// Tick runs once per cycle, after the fetch engine.
	Tick(now int64)
	// NextEvent returns the earliest cycle, at or after now, at which Tick
	// could change state, assuming no intervening demand accesses,
	// squashes, or FTQ changes (each of those is an event the core already
	// accounts for). Returning now means "active this cycle" and is always
	// a safe conservative answer; math.MaxInt64 means idle until
	// externally stimulated. The core's cycle-skip scheduler relies on
	// Tick being a no-op strictly before the returned cycle, except for
	// the per-cycle counters OnSkip accounts.
	NextEvent(now int64) int64
	// OnSkip informs the engine that the core fast-forwarded over cycles
	// whose Ticks NextEvent declared no-ops; the engine adds the per-cycle
	// counters those Ticks would have bumped (e.g. bus-busy deferrals).
	OnSkip(cycles uint64)
	// PushInert reports whether FTQ pushes cannot wake the engine: with
	// predicted blocks appended to the queue, Tick stays a no-op (apart
	// from the per-cycle counters OnSkip batches) until some other event
	// NextEvent already tracks. Engines that never scan the FTQ are
	// always push-inert; the FDP is push-inert only while a full PIQ
	// blocks its scan cursor. The core's burst scheduler consults this
	// before letting the BPU run ahead inside a skipped stretch. The
	// answer only needs to hold for windows in which NextEvent(now) is in
	// the future and no demand access, squash, or completion intervenes.
	PushInert() bool
	// OnDemandAccess notifies the engine of a demand L1-I access to
	// lineAddr and its outcome: l1Hit for a cache hit, pfbHit for a
	// prefetch-buffer hit (mutually exclusive; both false on a full miss).
	OnDemandAccess(lineAddr uint64, l1Hit, pfbHit bool, now int64)
	// OnSquash notifies the engine of a front-end redirect: the FTQ was
	// squashed and queued predictions are dead.
	OnSquash()
	// Reset restores the pristine just-constructed state — queues empty,
	// cursors rewound, counters zeroed — retaining allocated storage (the
	// layer-wide Reset contract; see ARCHITECTURE.md). The environment's
	// structures (L1-I, PFB, hierarchy, FTQ) are reset by their owners.
	Reset()
	// IssueStats returns the shared issue-port counters.
	IssueStats() PortStats
}

// PortStats counts the issue port's decisions.
type PortStats struct {
	// Issued counts prefetch transfers started on the bus.
	Issued uint64
	// DroppedPresent counts candidates already in the L1-I-side storage
	// (prefetch buffer); DroppedInflight candidates already on the bus;
	// DeferredBusBusy candidates that found no idle bus slot this cycle.
	DroppedPresent, DroppedInflight, DeferredBusBusy uint64
}

// port is the shared issue path: hygiene checks, then an idle-bus request.
type port struct {
	env   Env
	stats PortStats
}

// issueResult tells the caller why an issue did not happen.
type issueResult uint8

const (
	issued issueResult = iota
	dropPresent
	dropInflight
	busBusy
)

// tryIssue attempts to start a prefetch of line at cycle now.
func (p *port) tryIssue(line uint64, now int64) issueResult {
	if p.env.PFB.Contains(line) {
		p.stats.DroppedPresent++
		return dropPresent
	}
	if p.env.Hier.Inflight(line) {
		p.stats.DroppedInflight++
		return dropInflight
	}
	if !p.env.Hier.BusIdle(now) {
		p.stats.DeferredBusBusy++
		return busBusy
	}
	p.env.Hier.Request(line, true, now)
	p.stats.Issued++
	return issued
}

// None is the no-prefetch baseline.
type None struct{}

// NewNone returns the null prefetcher.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (*None) Name() string { return "none" }

// Tick implements Prefetcher.
func (*None) Tick(int64) {}

// NextEvent implements Prefetcher: the null prefetcher never acts.
func (*None) NextEvent(int64) int64 { return math.MaxInt64 }

// OnSkip implements Prefetcher.
func (*None) OnSkip(uint64) {}

// PushInert implements Prefetcher: the null prefetcher ignores the FTQ.
func (*None) PushInert() bool { return true }

// headDefers reports whether issuing line at cycle now would defer on a
// busy bus — the one tryIssue outcome whose only per-cycle effect is the
// DeferredBusBusy counter, which OnSkip can batch. Any other outcome
// (present, in flight, idle bus) mutates queues or the bus and makes the
// engine active.
func (p *port) headDefers(line uint64, now int64) bool {
	return !p.env.PFB.Contains(line) && !p.env.Hier.Inflight(line) && !p.env.Hier.BusIdle(now)
}

// OnDemandAccess implements Prefetcher.
func (*None) OnDemandAccess(uint64, bool, bool, int64) {}

// OnSquash implements Prefetcher.
func (*None) OnSquash() {}

// Reset implements Prefetcher; the null prefetcher has no state.
func (*None) Reset() {}

// IssueStats implements Prefetcher.
func (*None) IssueStats() PortStats { return PortStats{} }
