package prefetch

import (
	"math"
	"testing"

	"fdip/internal/btb"
	"fdip/internal/isa"
	"fdip/internal/program"
)

// testDecodeImage builds a synthetic image covering [0, 16KB) — the address
// range pfTrace and the unit tests touch — with a repeating instruction
// pattern that gives the shadow decoder direct CTIs, an indirect, and plain
// ALU filler on every line.
func testDecodeImage() *program.Image {
	const n = 1 << 12 // 4096 instructions = 16KB at 4B each
	code := make([]isa.Instr, n)
	behav := make([]program.Behavior, n)
	for i := range code {
		switch i % 7 {
		case 2:
			code[i] = isa.Instr{Kind: isa.CondBranch, Target: uint64((i*37)%n) * isa.InstrBytes}
			behav[i] = program.Behavior{Model: program.ModelBiased, TakenProb: 0.5}
		case 5:
			code[i] = isa.Instr{Kind: isa.Jump, Target: uint64((i*53+9)%n) * isa.InstrBytes}
		case 6:
			if i%3 == 0 {
				code[i] = isa.Instr{Kind: isa.Ret}
			} else {
				code[i] = isa.Instr{Kind: isa.ALU}
			}
		default:
			code[i] = isa.Instr{Kind: isa.ALU}
		}
	}
	return &program.Image{Base: 0, Code: code, Behav: behav, Entry: 0}
}

// testModernEnv is testEnv plus the structures the shadow decoder needs: an
// FTB and a ground-truth image provider.
func testModernEnv() Env {
	env := testEnv()
	env.FTB = btb.New(btb.Config{Sets: 64, Ways: 2, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48})
	im := testDecodeImage()
	env.Image = func() *program.Image { return im }
	return env
}

func TestMANATrainsAndReplays(t *testing.T) {
	env := testEnv()
	m := NewMANA(env, MANAConfig{BudgetBytes: 512, RegionLines: 8, QueueSize: 8})

	// A spatial region: trigger 0x1000, then +1 and +2 lines, all misses.
	m.OnDemandAccess(0x1000, false, false, 0)
	m.OnDemandAccess(0x1020, false, false, 1)
	m.OnDemandAccess(0x1040, false, false, 2)
	// A far access closes and commits the region.
	m.OnDemandAccess(0x9000, false, false, 3)
	if m.RegionsCommitted != 1 {
		t.Fatalf("RegionsCommitted = %d, want 1", m.RegionsCommitted)
	}

	// Re-triggering the recorded trigger replays the footprint.
	m.OnDemandAccess(0x1000, false, false, 10)
	if m.RecordHits != 1 {
		t.Fatalf("RecordHits = %d, want 1", m.RecordHits)
	}
	m.Tick(10)
	if !env.Hier.Inflight(0x1020) {
		t.Error("footprint line 0x1020 not prefetched")
	}
	m.Tick(14) // next idle bus slot
	if !env.Hier.Inflight(0x1040) {
		t.Error("footprint line 0x1040 not prefetched")
	}
	if got := m.IssueStats().Issued; got != 2 {
		t.Errorf("Issued = %d, want 2", got)
	}
}

func TestMANAHitsDoNotTrigger(t *testing.T) {
	env := testEnv()
	m := NewMANA(env, MANAConfig{BudgetBytes: 512, RegionLines: 8, QueueSize: 8})
	m.OnDemandAccess(0x1000, false, false, 0)
	m.OnDemandAccess(0x1020, false, false, 1)
	m.OnDemandAccess(0x9000, false, false, 2) // commit {0x1000: +1}
	// An L1 hit on the trigger still trains but must not replay.
	m.OnDemandAccess(0x1000, true, false, 3)
	if m.RecordHits != 0 {
		t.Errorf("L1 hit replayed a region: RecordHits = %d", m.RecordHits)
	}
	// A prefetch-buffer first use is part of the miss stream and replays.
	m.OnDemandAccess(0x9000, false, false, 4) // re-anchor away
	m.OnDemandAccess(0x1000, false, true, 5)
	if m.RecordHits != 1 {
		t.Errorf("PFB first use did not replay: RecordHits = %d", m.RecordHits)
	}
}

func TestMANASameLineRunsDedup(t *testing.T) {
	env := testEnv()
	m := NewMANA(env, MANAConfig{BudgetBytes: 512, RegionLines: 8, QueueSize: 8})
	for i := 0; i < 5; i++ {
		m.OnDemandAccess(0x1000, false, false, int64(i))
	}
	if m.Triggers != 1 {
		t.Errorf("Triggers = %d, want 1 (per-cycle re-reads of one line)", m.Triggers)
	}
}

func TestMANABudgetSizesTable(t *testing.T) {
	env := testEnv()
	small := NewMANA(env, MANAConfig{BudgetBytes: 16, RegionLines: 8, QueueSize: 4})
	big := NewMANA(env, MANAConfig{BudgetBytes: 4096, RegionLines: 8, QueueSize: 4})
	if small.Records() >= big.Records() {
		t.Fatalf("budget knob inert: %d records at 16B vs %d at 4KB", small.Records(), big.Records())
	}
	// Widening regions under a fixed budget costs records.
	wide := NewMANA(env, MANAConfig{BudgetBytes: 4096, RegionLines: 64, QueueSize: 4})
	if wide.Records() > big.Records() {
		t.Errorf("wider regions yielded more records: %d vs %d", wide.Records(), big.Records())
	}
	if got, want := (MANAConfig{BudgetBytes: 1, RegionLines: 8, QueueSize: 1}).RecordBits(), manaTagBits+7; got != want {
		t.Errorf("RecordBits = %d, want %d", got, want)
	}
}

func TestMANAQueueOverflow(t *testing.T) {
	env := testEnv()
	m := NewMANA(env, MANAConfig{BudgetBytes: 512, RegionLines: 16, QueueSize: 2})
	// Record a footprint with 4 lines, then replay into a 2-entry queue.
	m.OnDemandAccess(0x1000, false, false, 0)
	for i := 1; i <= 4; i++ {
		m.OnDemandAccess(0x1000+uint64(i)*0x20, false, false, int64(i))
	}
	m.OnDemandAccess(0x9000, false, false, 5) // commit
	env.Hier.Request(0xa000, false, 6)        // keep the bus busy
	m.OnDemandAccess(0x1000, false, false, 6)
	if m.PendingDrops != 2 {
		t.Errorf("PendingDrops = %d, want 2", m.PendingDrops)
	}
}

func TestShadowDecodesAndPrefills(t *testing.T) {
	env := testModernEnv()
	s := NewShadow(env, ShadowConfig{DecodeQueue: 4, TargetQueue: 8, PrefetchTargets: true})

	// Line 0 holds: CondBranch at 0x8 (block [0x0..0x8]), Jump at 0x14
	// (block [0xC..0x14]), Ret at 0x18 (indirect, skipped).
	s.OnDemandAccess(0, false, false, 0)
	s.Tick(0)
	if s.LinesDecoded != 1 || s.Prefills != 2 || s.IndirectSkipped != 1 {
		t.Fatalf("decoded=%d prefills=%d indirect=%d, want 1/2/1",
			s.LinesDecoded, s.Prefills, s.IndirectSkipped)
	}
	if !env.FTB.Peek(0x0) || !env.FTB.Peek(0xC) {
		t.Error("FTB not prefilled with the discovered blocks")
	}
	// Discovered targets are prefetched through the port: the CondBranch
	// target line first, the Jump's on the next idle bus slot.
	if !env.Hier.Inflight(0x120) {
		t.Error("first target line not prefetched")
	}
	s.Tick(4)
	if !env.Hier.Inflight(0x440) {
		t.Error("second target line not prefetched")
	}
}

func TestShadowSkipsKnownBlocks(t *testing.T) {
	env := testModernEnv()
	s := NewShadow(env, ShadowConfig{DecodeQueue: 4, TargetQueue: 8})
	env.FTB.TrainBlock(0x0, 3, isa.CondBranch, 0x128) // BPU already knows it
	inserts := env.FTB.Inserts
	s.OnDemandAccess(0, false, false, 0)
	s.Tick(0)
	if s.AlreadyKnown != 1 {
		t.Errorf("AlreadyKnown = %d, want 1", s.AlreadyKnown)
	}
	if s.Prefills != 1 { // only the Jump block is new
		t.Errorf("Prefills = %d, want 1", s.Prefills)
	}
	if env.FTB.Inserts != inserts+1 {
		t.Errorf("FTB Inserts moved by %d, want 1", env.FTB.Inserts-inserts)
	}
}

func TestShadowHitsDoNotEnqueue(t *testing.T) {
	env := testModernEnv()
	s := NewShadow(env, ShadowConfig{DecodeQueue: 4, TargetQueue: 8})
	s.OnDemandAccess(0x1000, true, false, 0) // resident line: decoded long ago
	s.Tick(0)
	if s.LinesDecoded != 0 {
		t.Errorf("decoded a resident line")
	}
	// A prefetched line's first use does arrive and is decoded.
	s.OnDemandAccess(0x1000, false, true, 1)
	s.Tick(1)
	if s.LinesDecoded != 1 {
		t.Errorf("PFB first use not decoded")
	}
}

func TestShadowDecodeQueueBounds(t *testing.T) {
	env := testModernEnv()
	s := NewShadow(env, ShadowConfig{DecodeQueue: 2, TargetQueue: 4})
	for i := 0; i < 4; i++ {
		s.OnDemandAccess(uint64(i)*0x20, false, false, 0)
	}
	if s.DecodeDrops != 2 {
		t.Errorf("DecodeDrops = %d, want 2", s.DecodeDrops)
	}
	s.OnDemandAccess(0x0, false, false, 0) // duplicate of a queued line
	if s.DecodeDrops != 2 {
		t.Errorf("duplicate counted as drop")
	}
}

// TestModernNextEvent pins the scheduler contract of both new engines: idle
// queues report MaxInt64, a deferring head reports the bus-free cycle, and a
// populated decode queue pins the shadow engine to per-cycle stepping.
func TestModernNextEvent(t *testing.T) {
	env := testEnv()
	m := NewMANA(env, MANAConfig{BudgetBytes: 512, RegionLines: 8, QueueSize: 4})
	if m.NextEvent(0) != math.MaxInt64 {
		t.Errorf("idle MANA NextEvent = %d, want MaxInt64", m.NextEvent(0))
	}
	// Record and replay a region with the bus busy: the head defers.
	m.OnDemandAccess(0x1000, false, false, 0)
	m.OnDemandAccess(0x1020, false, false, 1)
	m.OnDemandAccess(0x9000, false, false, 2)
	env.Hier.Request(0xa000, false, 3) // bus busy until 3+4
	m.OnDemandAccess(0x1000, false, false, 3)
	if got, want := m.NextEvent(3), env.Hier.BusFreeAt(); got != want {
		t.Errorf("deferring MANA NextEvent = %d, want bus-free %d", got, want)
	}

	senv := testModernEnv()
	s := NewShadow(senv, ShadowConfig{DecodeQueue: 4, TargetQueue: 4, PrefetchTargets: true})
	s.OnDemandAccess(0, false, false, 0)
	if got := s.NextEvent(0); got != 0 {
		t.Errorf("decoding Shadow NextEvent = %d, want now", got)
	}
	senv.Hier.Request(0xa000, false, 0) // bus busy
	s.Tick(0)                           // decode drains; targets remain
	if got, want := s.NextEvent(1), senv.Hier.BusFreeAt(); got != want {
		t.Errorf("deferring Shadow NextEvent = %d, want bus-free %d", got, want)
	}
	// OnSkip batches exactly the deferral counters.
	defBefore := s.IssueStats().DeferredBusBusy
	s.OnSkip(5)
	if got := s.IssueStats().DeferredBusBusy - defBefore; got != 5 {
		t.Errorf("Shadow OnSkip deferrals = %d, want 5", got)
	}
	mDef := m.IssueStats().DeferredBusBusy
	m.OnSkip(7)
	if got := m.IssueStats().DeferredBusBusy - mDef; got != 7 {
		t.Errorf("MANA OnSkip deferrals = %d, want 7", got)
	}
}

func TestShadowRequiresFTBAndImage(t *testing.T) {
	env := testModernEnv()
	env.FTB = nil
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Shadow without FTB did not panic")
			}
		}()
		NewShadow(env, ShadowConfig{})
	}()
	env = testModernEnv()
	env.Image = nil
	defer func() {
		if recover() == nil {
			t.Error("Shadow without image provider did not panic")
		}
	}()
	NewShadow(env, ShadowConfig{})
}
