package prefetch

import (
	"math"

	"fdip/internal/isa"
)

// Shadow is a shadow-branch decoder in the style of arXiv:2408.12592: every
// line the fetch engine brings toward the L1-I carries instruction bytes the
// front end has not decoded yet, and among them sit branches the BPU has
// never predicted. The engine queues newly-arriving lines, decodes them off
// the critical path (one line per cycle), and prefills the FTB with the
// direct CTIs it finds — so the BPU's first encounter with that code already
// predicts block boundaries and targets instead of falling through cold.
//
// Decode ground truth comes from the program image (the simulator's stand-in
// for reading raw line bytes). Indirect CTIs and returns carry no static
// target and are skipped, exactly as a hardware shadow decoder must.
// Discovered targets can optionally be prefetched through the shared port.
type Shadow struct {
	port port
	cfg  ShadowConfig

	// decode holds line addresses awaiting shadow decode; targets holds
	// discovered target lines awaiting an idle bus slot.
	decode  []uint64
	targets []uint64

	// LinesDecoded counts lines fully scanned; DecodeDrops lines discarded
	// on a full decode queue; Prefills FTB insertions; AlreadyKnown CTIs the
	// FTB already held; IndirectSkipped CTIs with no static target;
	// TargetDrops target-line candidates discarded on a full queue.
	LinesDecoded, DecodeDrops    uint64
	Prefills, AlreadyKnown       uint64
	IndirectSkipped, TargetDrops uint64
}

// ShadowConfig tunes the shadow-branch decoder.
type ShadowConfig struct {
	// DecodeQueue caps lines awaiting shadow decode.
	DecodeQueue int
	// TargetQueue caps discovered-target lines awaiting prefetch issue.
	TargetQueue int
	// PrefetchTargets also prefetches the line holding each newly
	// discovered branch target, on top of prefilling the FTB.
	PrefetchTargets bool
}

// DefaultShadowConfig returns the default decoder with target prefetching on.
func DefaultShadowConfig() ShadowConfig {
	return ShadowConfig{DecodeQueue: 4, TargetQueue: 8, PrefetchTargets: true}
}

func (c *ShadowConfig) setDefaults() {
	d := DefaultShadowConfig()
	if c.DecodeQueue <= 0 {
		c.DecodeQueue = d.DecodeQueue
	}
	if c.TargetQueue <= 0 {
		c.TargetQueue = d.TargetQueue
	}
}

// NewShadow creates a shadow-branch decoder. env.FTB and env.Image must be
// non-nil.
func NewShadow(env Env, cfg ShadowConfig) *Shadow {
	cfg.setDefaults()
	if env.FTB == nil {
		panic("prefetch: Shadow requires an FTB")
	}
	if env.Image == nil {
		panic("prefetch: Shadow requires an image provider")
	}
	return &Shadow{
		port:    port{env: env},
		cfg:     cfg,
		decode:  make([]uint64, 0, cfg.DecodeQueue),
		targets: make([]uint64, 0, cfg.TargetQueue),
	}
}

// Name implements Prefetcher.
func (s *Shadow) Name() string { return "shadow" }

// Config returns the active (normalised) configuration.
func (s *Shadow) Config() ShadowConfig { return s.cfg }

// OnDemandAccess implements Prefetcher: a line arriving at the L1-I side (a
// full miss being fetched, or a prefetched line's first use) has shadow
// bytes worth decoding; resident-line hits were decoded when they arrived.
func (s *Shadow) OnDemandAccess(lineAddr uint64, l1Hit, pfbHit bool, now int64) {
	if l1Hit {
		return
	}
	for _, d := range s.decode {
		if d == lineAddr {
			return
		}
	}
	if len(s.decode) >= s.cfg.DecodeQueue {
		s.DecodeDrops++
		return
	}
	s.decode = append(s.decode, lineAddr)
}

// Tick implements Prefetcher: decode one queued line, then issue at most one
// discovered-target prefetch into an idle bus slot.
func (s *Shadow) Tick(now int64) {
	if len(s.decode) > 0 {
		line := s.decode[0]
		n := copy(s.decode, s.decode[1:])
		s.decode = s.decode[:n]
		s.decodeLine(line)
		s.LinesDecoded++
	}
	for len(s.targets) > 0 {
		r := s.port.tryIssue(s.targets[0], now)
		if r == busBusy {
			return
		}
		n := copy(s.targets, s.targets[1:])
		s.targets = s.targets[:n]
		if r == issued {
			return
		}
	}
}

// decodeLine scans one line's instructions for direct CTIs and prefills the
// FTB with any block the buffer does not already know. Fetch blocks are
// reconstructed line-locally: the first block is assumed to start at the
// line boundary (a hardware shadow decoder cannot see the preceding line
// either), and each CTI starts the next.
func (s *Shadow) decodeLine(line uint64) {
	im := s.port.env.Image()
	ftb := s.port.env.FTB
	blockOriented := ftb.Config().BlockOriented
	blkStart := line
	for pc := line; pc < line+uint64(s.port.env.LineBytes); pc += isa.InstrBytes {
		ins, ok := im.InstrAt(pc)
		if !ok {
			return // ran off the image; nothing decodable remains in the line
		}
		if !ins.IsCTI() {
			continue
		}
		start := blkStart
		blkStart = pc + isa.InstrBytes
		if ins.Kind.IsIndirect() {
			s.IndirectSkipped++ // no static target to prefill
			continue
		}
		// The FTB keys block-oriented entries by block start and
		// conventional entries by the branch address itself.
		key := start
		if !blockOriented {
			key = pc
		}
		if ftb.Peek(key) {
			s.AlreadyKnown++
			continue
		}
		ftb.TrainBlock(start, int(pc-start)/isa.InstrBytes+1, ins.Kind, ins.Target)
		s.Prefills++
		if s.cfg.PrefetchTargets {
			s.enqueueTarget(ins.Target &^ uint64(s.port.env.LineBytes-1))
		}
	}
}

func (s *Shadow) enqueueTarget(line uint64) {
	for _, t := range s.targets {
		if t == line {
			return
		}
	}
	if len(s.targets) >= s.cfg.TargetQueue {
		s.TargetDrops++
		return
	}
	s.targets = append(s.targets, line)
}

// NextEvent implements Prefetcher: a populated decode queue makes the engine
// active every cycle (each Tick decodes a line and mutates the FTB); with
// decode drained, the target queue follows the shared head-defers logic — an
// empty queue waits on demand traffic, a deferred head on the bus.
func (s *Shadow) NextEvent(now int64) int64 {
	if len(s.decode) > 0 {
		return now
	}
	if len(s.targets) == 0 {
		return math.MaxInt64
	}
	if !s.port.headDefers(s.targets[0], now) {
		return now
	}
	return s.port.env.Hier.BusFreeAt()
}

// OnSkip implements Prefetcher: inside a skipped stretch the decode queue is
// provably empty (NextEvent pins decode work to "now"), so the only per-cycle
// effect the skipped Ticks could have had is deferring the target head on a
// busy bus.
func (s *Shadow) OnSkip(cycles uint64) {
	if len(s.targets) > 0 {
		s.port.stats.DeferredBusBusy += cycles
	}
}

// PushInert implements Prefetcher: the decoder is driven by arriving lines,
// never by the FTQ, so predicted-block pushes cannot wake it. (It writes the
// FTB the BPU reads, but only in active Ticks — during a skippable window
// the decode queue is empty.)
func (s *Shadow) PushInert() bool { return true }

// OnSquash implements Prefetcher. Queued lines were genuinely fetched —
// wrong-path or not, their bytes arrived and their branches are real code —
// so redirects invalidate nothing.
func (s *Shadow) OnSquash() {}

// Reset implements Prefetcher: queues emptied, counters zeroed, backing
// arrays retained. The FTB itself is reset by its owner.
func (s *Shadow) Reset() {
	s.decode = s.decode[:0]
	s.targets = s.targets[:0]
	s.LinesDecoded, s.DecodeDrops = 0, 0
	s.Prefills, s.AlreadyKnown = 0, 0
	s.IndirectSkipped, s.TargetDrops = 0, 0
	s.port.stats = PortStats{}
}

// IssueStats implements Prefetcher.
func (s *Shadow) IssueStats() PortStats { return s.port.stats }
