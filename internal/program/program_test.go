package program

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fdip/internal/isa"
)

func TestGenerateDefaultValidates(t *testing.T) {
	im, err := Generate(DefaultParams())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := im.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if im.Entry != im.Funcs[0].Entry {
		t.Errorf("entry %#x != first function entry %#x", im.Entry, im.Funcs[0].Entry)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Seed = 42
	a := MustGenerate(p)
	b := MustGenerate(p)
	if !reflect.DeepEqual(a.Code, b.Code) {
		t.Fatal("same seed produced different code")
	}
	p.Seed = 43
	c := MustGenerate(p)
	if reflect.DeepEqual(a.Code, c.Code) {
		t.Fatal("different seeds produced identical code")
	}
}

func TestGenerateFootprintScalesWithFuncs(t *testing.T) {
	small := DefaultParams()
	small.NumFuncs = 50
	big := DefaultParams()
	big.NumFuncs = 500
	s, b := MustGenerate(small), MustGenerate(big)
	if b.Size() < 5*s.Size() {
		t.Errorf("10x functions gave %.1fx code (small=%d big=%d)",
			float64(b.Size())/float64(s.Size()), s.Size(), b.Size())
	}
}

func TestInstrAtBounds(t *testing.T) {
	im := MustGenerate(DefaultParams())
	if _, ok := im.InstrAt(im.Base - 4); ok {
		t.Error("InstrAt below base succeeded")
	}
	if _, ok := im.InstrAt(im.End()); ok {
		t.Error("InstrAt at End succeeded")
	}
	if _, ok := im.InstrAt(im.Base + 1); ok {
		t.Error("InstrAt unaligned succeeded")
	}
	if _, ok := im.InstrAt(im.Base); !ok {
		t.Error("InstrAt base failed")
	}
	if _, ok := im.InstrAt(im.End() - 4); !ok {
		t.Error("InstrAt last instruction failed")
	}
}

func TestFuncOf(t *testing.T) {
	im := MustGenerate(DefaultParams())
	for i := range im.Funcs {
		f := &im.Funcs[i]
		if got := im.FuncOf(f.Entry); got != f {
			t.Fatalf("FuncOf(%#x) = %v, want %s", f.Entry, got, f.Name)
		}
		last := f.Entry + uint64(f.NumInstrs-1)*isa.InstrBytes
		if got := im.FuncOf(last); got != f {
			t.Fatalf("FuncOf(last of %s) = %v", f.Name, got)
		}
	}
	if im.FuncOf(im.Base-4) != nil {
		t.Error("FuncOf below image should be nil")
	}
	if im.FuncOf(im.End()) != nil {
		t.Error("FuncOf past image should be nil")
	}
}

func TestCTIsHaveBehaviour(t *testing.T) {
	im := MustGenerate(DefaultParams())
	conds, loops, indirects := 0, 0, 0
	for i, ins := range im.Code {
		b := im.Behav[i]
		switch ins.Kind {
		case isa.CondBranch:
			conds++
			if b.Model == ModelLoop {
				loops++
			}
		case isa.IndirectCall, isa.IndirectJump:
			indirects++
			if b.Model != ModelIndirect || len(b.Targets) == 0 {
				t.Fatalf("indirect at word %d lacks targets", i)
			}
		}
	}
	if conds == 0 {
		t.Error("no conditional branches generated")
	}
	if loops == 0 {
		t.Error("no loop branches generated")
	}
	if indirects == 0 {
		t.Error("no indirect CTIs generated")
	}
}

func TestBackwardBranchesAreLoops(t *testing.T) {
	im := MustGenerate(DefaultParams())
	for i, ins := range im.Code {
		if ins.Kind != isa.CondBranch {
			continue
		}
		pc := im.Base + uint64(i)*isa.InstrBytes
		if ins.Target <= pc && im.Behav[i].Model != ModelLoop {
			t.Fatalf("backward conditional at %#x is not a loop model", pc)
		}
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	fresh := func() *Image {
		p := DefaultParams()
		p.NumFuncs = 20
		return MustGenerate(p)
	}

	im := fresh()
	// Out-of-image CTI target.
	for i, ins := range im.Code {
		if ins.Kind == isa.Jump {
			im.Code[i].Target = im.End() + 64
			break
		}
	}
	if err := im.Validate(); err == nil {
		t.Error("corrupt jump target not rejected")
	}

	im = fresh()
	// Behaviour on a non-CTI.
	for i, ins := range im.Code {
		if ins.Kind == isa.ALU {
			im.Behav[i] = Behavior{Model: ModelBiased, TakenProb: 0.5}
			break
		}
	}
	if err := im.Validate(); err == nil {
		t.Error("behaviour on non-CTI not rejected")
	}

	im = fresh()
	// Indirect CTI with no targets.
	for i, ins := range im.Code {
		if ins.Kind == isa.IndirectCall {
			im.Behav[i].Targets = nil
			break
		}
	}
	if err := im.Validate(); err == nil {
		t.Error("empty indirect target set not rejected")
	}

	if err := (&Image{}).Validate(); err == nil {
		t.Error("empty image not rejected")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.CodeBase = 0x1001 // unaligned
	if _, err := Generate(p); err == nil {
		t.Error("unaligned CodeBase accepted")
	}
}

// Property: any generated image validates and every direct CTI target lands
// on a function-interior instruction.
func TestQuickGeneratedImagesValid(t *testing.T) {
	f := func(seed int64, nf uint8, mb, ml uint8) bool {
		p := DefaultParams()
		p.Seed = seed
		p.NumFuncs = 2 + int(nf)%64
		p.MeanBlocksPerFunc = 2 + int(mb)%16
		p.MeanBlockLen = 1 + int(ml)%10
		im, err := Generate(p)
		if err != nil {
			return false
		}
		return im.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKindCountsAndBranchCount(t *testing.T) {
	im := MustGenerate(DefaultParams())
	counts := im.KindCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(im.Code) {
		t.Errorf("kind counts sum %d != code len %d", total, len(im.Code))
	}
	br := im.StaticBranchCount()
	want := counts[isa.CondBranch] + counts[isa.Jump] + counts[isa.Call] +
		counts[isa.Ret] + counts[isa.IndirectJump] + counts[isa.IndirectCall]
	if br != want {
		t.Errorf("StaticBranchCount = %d, want %d", br, want)
	}
	if br == 0 {
		t.Error("no branches in image")
	}
}

func TestBehaviorAtOutside(t *testing.T) {
	im := MustGenerate(DefaultParams())
	if b := im.BehaviorAt(im.End() + 8); b.Model != ModelNone {
		t.Error("BehaviorAt outside image should be zero")
	}
}

func TestBranchModelString(t *testing.T) {
	for _, m := range []BranchModel{ModelNone, ModelBiased, ModelLoop, ModelIndirect} {
		if m.String() == "" {
			t.Errorf("model %d: empty name", m)
		}
	}
	if BranchModel(99).String() == "" {
		t.Error("unknown model should format")
	}
}
