package program

import (
	"fmt"
	"math"
	"math/rand"

	"fdip/internal/isa"
)

// Params controls synthetic program generation. The defaults produce a
// mid-sized program; the named workloads in internal/workloads override the
// knobs per benchmark.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumFuncs is the number of functions to generate. The first function
	// is the entry ("dispatcher") function.
	NumFuncs int
	// MeanBlocksPerFunc is the mean basic-block count per function.
	MeanBlocksPerFunc int
	// MeanBlockLen is the mean non-terminator instruction count per block.
	MeanBlockLen int
	// CodeBase is the address of the first instruction. Defaults to
	// 0x40_0000 (a typical text-segment base) when zero.
	CodeBase uint64
	// MaxLoopsPerFunc bounds loop back-edges per function (termination
	// and realism both want a small number).
	MaxLoopsPerFunc int
	// MeanLoopTrip is the mean trip count of loop back-edges.
	MeanLoopTrip int
	// CallFrac is the probability that an interior block ends in a call.
	CallFrac float64
	// CondFrac is the probability that an interior block ends in a
	// forward conditional branch.
	CondFrac float64
	// JumpFrac is the probability that an interior block ends in an
	// unconditional forward jump.
	JumpFrac float64
	// IndirectFrac is the fraction of calls/jumps made indirect (virtual
	// dispatch / switch statements).
	IndirectFrac float64
	// CallSkew shapes callee selection: the callee index is drawn as
	// caller+1 + floor(U^CallSkew * span). Larger values concentrate
	// calls on nearby (hot) functions; 1.0 is uniform.
	CallSkew float64
	// DispatchFanout is the minimum number of call sites in the entry
	// function, which models a server-style dispatch loop.
	DispatchFanout int
	// DispatchTargets is the number of candidate handlers per dispatcher
	// call site. Dispatcher call sites are indirect calls over
	// Zipf-weighted target sets, which is what spreads the dynamic
	// instruction footprint across the program the way request dispatch
	// does in servers. 1 makes dispatcher calls direct (client-style
	// fixed control flow).
	DispatchTargets int
	// DispatchZipf shapes handler popularity at dispatcher call sites:
	// target i gets weight (i+1)^-DispatchZipf. 0 is uniform (maximum
	// footprint churn); larger values concentrate on hot handlers.
	// Negative means "use the default" (0.7).
	DispatchZipf float64
	// IndirectStickiness is the probability an indirect CTI repeats its
	// previous target (temporal burstiness of dispatch). Zero means "use
	// the default" (0.5); set negative for fully independent draws.
	IndirectStickiness float64
	// PatternFrac is the fraction of conditional branches that follow a
	// repeating outcome pattern (history-correlated) rather than biased
	// coin flips. Zero means "use the default" (0.25); negative disables.
	PatternFrac float64
}

// DefaultParams returns a moderate program: roughly 200 functions and a
// ~250KB code footprint.
func DefaultParams() Params {
	return Params{
		Seed:               1,
		NumFuncs:           200,
		MeanBlocksPerFunc:  10,
		MeanBlockLen:       5,
		CodeBase:           0x40_0000,
		MaxLoopsPerFunc:    2,
		MeanLoopTrip:       8,
		CallFrac:           0.18,
		CondFrac:           0.38,
		JumpFrac:           0.08,
		IndirectFrac:       0.08,
		CallSkew:           2.5,
		DispatchFanout:     24,
		DispatchTargets:    16,
		DispatchZipf:       0.7,
		IndirectStickiness: 0.5,
		PatternFrac:        0.25,
	}
}

func (p *Params) setDefaults() {
	d := DefaultParams()
	if p.NumFuncs <= 0 {
		p.NumFuncs = d.NumFuncs
	}
	if p.MeanBlocksPerFunc <= 0 {
		p.MeanBlocksPerFunc = d.MeanBlocksPerFunc
	}
	if p.MeanBlockLen <= 0 {
		p.MeanBlockLen = d.MeanBlockLen
	}
	if p.CodeBase == 0 {
		p.CodeBase = d.CodeBase
	}
	if p.MaxLoopsPerFunc < 0 {
		p.MaxLoopsPerFunc = 0
	}
	if p.MeanLoopTrip <= 0 {
		p.MeanLoopTrip = d.MeanLoopTrip
	}
	if p.CallSkew <= 0 {
		p.CallSkew = d.CallSkew
	}
	if p.DispatchFanout <= 0 {
		p.DispatchFanout = d.DispatchFanout
	}
	if p.DispatchTargets <= 0 {
		p.DispatchTargets = d.DispatchTargets
	}
	if p.DispatchZipf < 0 {
		p.DispatchZipf = d.DispatchZipf
	}
	if p.IndirectStickiness == 0 {
		p.IndirectStickiness = d.IndirectStickiness
	} else if p.IndirectStickiness < 0 {
		p.IndirectStickiness = 0
	} else if p.IndirectStickiness > 1 {
		p.IndirectStickiness = 1
	}
	if p.PatternFrac == 0 {
		p.PatternFrac = d.PatternFrac
	} else if p.PatternFrac < 0 {
		p.PatternFrac = 0
	} else if p.PatternFrac > 1 {
		p.PatternFrac = 1
	}
}

// terminator kinds used during planning; isa.Nop stands for "pure
// fall-through, no terminator instruction".
type blockPlan struct {
	bodyLen   int
	term      isa.Kind
	targetBlk int   // cond/jump primary target (block index)
	extraBlks []int // indirect jump extra targets
	calleeFn  int   // direct call target (function index)
	calleeFns []int // indirect call target set
	behav     Behavior

	addr uint64 // filled during layout
}

type funcPlan struct {
	blocks []blockPlan
	pad    int
}

// Generate builds a synthetic program image from p. The result always passes
// (*Image).Validate; generation fails only on nonsensical parameters.
func Generate(p Params) (*Image, error) {
	p.setDefaults()
	if p.NumFuncs < 1 {
		return nil, fmt.Errorf("program: NumFuncs must be >= 1")
	}
	if p.CodeBase%isa.InstrBytes != 0 {
		return nil, fmt.Errorf("program: CodeBase %#x not aligned", p.CodeBase)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	plans := make([]funcPlan, p.NumFuncs)
	for fi := range plans {
		plans[fi] = planFunc(rng, p, fi)
	}

	// Layout pass: assign addresses.
	addr := p.CodeBase
	entries := make([]uint64, p.NumFuncs)
	for fi := range plans {
		entries[fi] = addr
		for bi := range plans[fi].blocks {
			b := &plans[fi].blocks[bi]
			b.addr = addr
			n := b.bodyLen
			if b.term != isa.Nop {
				n++
			}
			addr += uint64(n) * isa.InstrBytes
		}
		addr += uint64(plans[fi].pad) * isa.InstrBytes
	}
	totalInstrs := int((addr - p.CodeBase) / isa.InstrBytes)

	im := &Image{
		Base:  p.CodeBase,
		Code:  make([]isa.Instr, totalInstrs),
		Behav: make([]Behavior, totalInstrs),
		Funcs: make([]Func, p.NumFuncs),
		Entry: entries[0],
	}

	// Emission pass: resolve targets and write instructions.
	regs := newRegAllocator(rng)
	for fi := range plans {
		fp := &plans[fi]
		blockAddr := func(bi int) uint64 { return fp.blocks[bi].addr }
		for bi := range fp.blocks {
			b := &fp.blocks[bi]
			w := im.index(b.addr)
			for k := 0; k < b.bodyLen; k++ {
				im.Code[w] = regs.bodyInstr(rng)
				w++
			}
			if b.term == isa.Nop {
				continue
			}
			ins := isa.Instr{Kind: b.term}
			bh := b.behav
			switch b.term {
			case isa.CondBranch, isa.Jump:
				ins.Target = blockAddr(b.targetBlk)
			case isa.Call:
				ins.Target = entries[b.calleeFn]
			case isa.IndirectCall:
				bh.Targets = make([]uint64, len(b.calleeFns))
				for j, cf := range b.calleeFns {
					bh.Targets[j] = entries[cf]
				}
			case isa.IndirectJump:
				bh.Targets = make([]uint64, 0, len(b.extraBlks)+1)
				bh.Targets = append(bh.Targets, blockAddr(b.targetBlk))
				for _, eb := range b.extraBlks {
					bh.Targets = append(bh.Targets, blockAddr(eb))
				}
			case isa.Ret:
				// no static target
			}
			im.Code[w] = ins
			im.Behav[w] = bh
		}
		// Function padding: nops.
		fnEnd := blockAddr(len(fp.blocks)-1) +
			uint64(fp.blocks[len(fp.blocks)-1].bodyLen)*isa.InstrBytes
		if fp.blocks[len(fp.blocks)-1].term != isa.Nop {
			fnEnd += isa.InstrBytes
		}
		for k := 0; k < fp.pad; k++ {
			im.Code[im.index(fnEnd)+k] = isa.Instr{Kind: isa.Nop}
		}
		var end uint64
		if fi+1 < p.NumFuncs {
			end = entries[fi+1]
		} else {
			end = im.End()
		}
		im.Funcs[fi] = Func{
			Name:      fmt.Sprintf("f%04d", fi),
			Entry:     entries[fi],
			NumInstrs: int((end - entries[fi]) / isa.InstrBytes),
		}
	}

	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("program: generator produced invalid image: %w", err)
	}
	return im, nil
}

// MustGenerate is Generate for tests and examples with known-good params.
func MustGenerate(p Params) *Image {
	im, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return im
}

// planFunc decides the control-flow skeleton of one function.
func planFunc(rng *rand.Rand, p Params, fi int) funcPlan {
	isEntry := fi == 0
	nBlocks := geometric(rng, p.MeanBlocksPerFunc)
	if nBlocks < 2 {
		nBlocks = 2
	}
	if isEntry {
		// The dispatcher needs room for its fan-out call sites.
		min := p.DispatchFanout + 2
		if nBlocks < min {
			nBlocks = min
		}
	}
	blocks := make([]blockPlan, nBlocks)
	for bi := range blocks {
		blocks[bi].bodyLen = geometric(rng, p.MeanBlockLen)
		if blocks[bi].bodyLen < 1 {
			blocks[bi].bodyLen = 1
		}
		blocks[bi].term = isa.Nop
	}

	// Loop back-edges: tail block conditionally branches back to an
	// earlier head. Avoid block 0 as tail and keep edges disjoint. The
	// dispatcher gets none: a loop there would trap the walker in a
	// slice of the dispatch sites and collapse the dynamic footprint.
	nLoops := 0
	if !isEntry && p.MaxLoopsPerFunc > 0 && nBlocks >= 3 {
		nLoops = rng.Intn(p.MaxLoopsPerFunc + 1)
	}
	usedTail := map[int]bool{}
	for l := 0; l < nLoops; l++ {
		tail := 1 + rng.Intn(nBlocks-2) // never the last block
		if usedTail[tail] {
			continue
		}
		usedTail[tail] = true
		span := 1 + rng.Intn(3) // short loops dominate real code
		head := tail - span
		if head < 0 {
			head = 0
		}
		b := &blocks[tail]
		b.term = isa.CondBranch
		b.targetBlk = head
		b.behav = Behavior{Model: ModelLoop, MeanTrip: 1 + geometric(rng, p.MeanLoopTrip)}
	}

	// Interior terminators.
	callSites := 0
	for bi := 0; bi < nBlocks-1; bi++ {
		b := &blocks[bi]
		if b.term != isa.Nop {
			continue // already a loop tail
		}
		r := rng.Float64()
		callFrac := p.CallFrac
		if isEntry {
			callFrac = 0.55 // dispatcher is call-dense
		}
		switch {
		case r < callFrac && fi < p.NumFuncs-1:
			planCall(rng, p, fi, b)
			callSites++
		case r < callFrac+p.CondFrac:
			planCond(rng, p, nBlocks, bi, b)
		case r < callFrac+p.CondFrac+p.JumpFrac:
			planJump(rng, p, nBlocks, bi, b)
		default:
			// pure fall-through block
		}
	}
	// Guarantee the dispatcher's fan-out even if the dice were unlucky.
	if isEntry && fi < p.NumFuncs-1 {
		for bi := 0; bi < nBlocks-1 && callSites < p.DispatchFanout; bi++ {
			b := &blocks[bi]
			if b.term != isa.Nop {
				continue
			}
			planCall(rng, p, fi, b)
			callSites++
		}
	}
	blocks[nBlocks-1].term = isa.Ret
	return funcPlan{blocks: blocks, pad: rng.Intn(4)}
}

func planCall(rng *rand.Rand, p Params, fi int, b *blockPlan) {
	if fi == 0 && p.DispatchTargets > 1 {
		// Dispatcher call sites are indirect calls over many handlers,
		// spread uniformly across the program with Zipf weights: a hot
		// head plus a long cold tail, the request-dispatch pattern that
		// gives server workloads their huge instruction footprints.
		n := p.DispatchTargets
		if max := p.NumFuncs - 1; n > max {
			n = max
		}
		set := make([]int, 0, n)
		weights := make([]float64, 0, n)
		for len(set) < n {
			set = append(set, pickCallee(rng, p, fi, 1.0))
			weights = append(weights, math.Pow(float64(len(set)), -p.DispatchZipf))
		}
		b.term = isa.IndirectCall
		b.calleeFns = set
		b.behav = Behavior{Model: ModelIndirect, Weights: weights, Sticky: p.IndirectStickiness}
		return
	}
	// Interior functions call with locality skew; the dispatcher (in
	// DispatchTargets == 1 client mode) calls uniformly but directly.
	skew := p.CallSkew
	if fi == 0 {
		skew = 1.0
	}
	if rng.Float64() < p.IndirectFrac {
		n := 2 + rng.Intn(3)
		set := make([]int, 0, n)
		for len(set) < n {
			set = append(set, pickCallee(rng, p, fi, skew))
		}
		b.term = isa.IndirectCall
		b.calleeFns = set
		b.behav = Behavior{Model: ModelIndirect, Sticky: p.IndirectStickiness}
		return
	}
	b.term = isa.Call
	b.calleeFn = pickCallee(rng, p, fi, skew)
}

func planCond(rng *rand.Rand, p Params, nBlocks, bi int, b *blockPlan) {
	b.term = isa.CondBranch
	b.targetBlk = forwardTarget(rng, nBlocks, bi, 8)
	if rng.Float64() < p.PatternFrac {
		// History-correlated branch: a short repeating outcome string.
		n := 2 + rng.Intn(6) // 2..7
		pat := uint32(rng.Intn(1 << n))
		b.behav = Behavior{Model: ModelPattern, Pattern: pat, PatternLen: uint8(n)}
		return
	}
	b.behav = Behavior{Model: ModelBiased, TakenProb: sampleBias(rng)}
}

func planJump(rng *rand.Rand, p Params, nBlocks, bi int, b *blockPlan) {
	if rng.Float64() < p.IndirectFrac && bi+3 < nBlocks {
		// switch-style indirect jump over 2-5 forward targets
		n := 2 + rng.Intn(4)
		b.term = isa.IndirectJump
		b.targetBlk = forwardTarget(rng, nBlocks, bi, 6)
		for k := 1; k < n; k++ {
			b.extraBlks = append(b.extraBlks, forwardTarget(rng, nBlocks, bi, 6))
		}
		b.behav = Behavior{Model: ModelIndirect, Sticky: p.IndirectStickiness}
		return
	}
	b.term = isa.Jump
	b.targetBlk = forwardTarget(rng, nBlocks, bi, 4)
}

// forwardTarget picks a block strictly after bi, within a window.
func forwardTarget(rng *rand.Rand, nBlocks, bi, window int) int {
	span := nBlocks - 1 - bi
	if span > window {
		span = window
	}
	return bi + 1 + rng.Intn(span)
}

// pickCallee selects a callee with index > fi; small offsets are hot under
// skew > 1, uniform at skew == 1.
func pickCallee(rng *rand.Rand, p Params, fi int, skew float64) int {
	span := p.NumFuncs - 1 - fi
	if span <= 0 {
		return fi
	}
	u := rng.Float64()
	off := int(math.Pow(u, skew) * float64(span))
	if off >= span {
		off = span - 1
	}
	return fi + 1 + off
}

// sampleBias draws a per-branch taken probability from a bimodal mixture:
// most branches are strongly biased one way, a small minority is mixed.
// Because the walker draws outcomes independently per instance, a branch's
// entropy here is a *floor* on its mispredict rate, so the biased modes are
// kept tight to match the predictability of real integer codes.
func sampleBias(rng *rand.Rand) float64 {
	r := rng.Float64()
	switch {
	case r < 0.47: // mostly not taken
		return 0.01 + 0.09*rng.Float64()
	case r < 0.90: // mostly taken
		return 0.90 + 0.09*rng.Float64()
	default: // mixed, hard to predict
		return 0.30 + 0.40*rng.Float64()
	}
}

// geometric draws a geometric-ish value with the given mean, capped to keep
// pathological tails out of generated code.
func geometric(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	n := 1
	for rng.Float64() > p && n < mean*8 {
		n++
	}
	return n
}

// regAllocator produces block-body instructions with realistic register
// dependence chains: sources preferentially read recently written registers.
type regAllocator struct {
	recent [8]uint8
	pos    int
}

func newRegAllocator(rng *rand.Rand) *regAllocator {
	ra := &regAllocator{}
	for i := range ra.recent {
		ra.recent[i] = uint8(1 + rng.Intn(isa.NumRegs-1))
	}
	return ra
}

func (ra *regAllocator) src(rng *rand.Rand) uint8 {
	if rng.Float64() < 0.6 {
		return ra.recent[rng.Intn(len(ra.recent))]
	}
	return uint8(1 + rng.Intn(isa.NumRegs-1))
}

func (ra *regAllocator) dst(rng *rand.Rand) uint8 {
	d := uint8(1 + rng.Intn(isa.NumRegs-1))
	ra.recent[ra.pos] = d
	ra.pos = (ra.pos + 1) % len(ra.recent)
	return d
}

func (ra *regAllocator) bodyInstr(rng *rand.Rand) isa.Instr {
	r := rng.Float64()
	var k isa.Kind
	switch {
	case r < 0.50:
		k = isa.ALU
	case r < 0.72:
		k = isa.Load
	case r < 0.84:
		k = isa.Store
	case r < 0.90:
		k = isa.Mul
	case r < 0.95:
		k = isa.FPU
	default:
		k = isa.Nop
	}
	ins := isa.Instr{Kind: k, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	switch k {
	case isa.ALU, isa.Mul, isa.FPU:
		ins.Dst = ra.dst(rng)
		ins.Src1 = ra.src(rng)
		if rng.Float64() < 0.7 {
			ins.Src2 = ra.src(rng)
		}
	case isa.Load:
		ins.Dst = ra.dst(rng)
		ins.Src1 = ra.src(rng)
	case isa.Store:
		ins.Src1 = ra.src(rng)
		ins.Src2 = ra.src(rng)
	}
	return ins
}
