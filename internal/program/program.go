// Package program models static program images: synthetic code laid out in a
// flat address space, with enough structure (functions, basic blocks, loops,
// call graphs, branch biases) that executing them stresses an instruction
// cache and branch predictor the way real compiled programs do.
//
// The original paper evaluated SPEC95 and C++ programs compiled for a RISC
// machine. Those binaries and traces are unavailable here, so this package is
// the substitution: a generator whose knobs control exactly the properties
// instruction prefetching is sensitive to — code footprint, basic-block size
// distribution, branch mix and bias, loop trip counts, and call-graph
// temporal locality. See ARCHITECTURE.md for how the layers fit together.
package program

import (
	"fmt"

	"fdip/internal/isa"
)

// BranchModel tells the oracle walker how a static branch behaves
// dynamically.
type BranchModel uint8

const (
	// ModelNone marks non-branch instructions.
	ModelNone BranchModel = iota
	// ModelBiased branches are taken with probability TakenProb,
	// independently per dynamic instance.
	ModelBiased
	// ModelLoop branches are loop back-edges: taken Trip times in a row,
	// then not taken once, with Trip redrawn per loop entry.
	ModelLoop
	// ModelIndirect instructions pick a dynamic target from Targets with
	// the paired Weights.
	ModelIndirect
	// ModelPattern branches repeat a fixed taken/not-taken bit pattern —
	// perfectly history-correlated behaviour (loop-like guards, parity
	// tests) that global-history predictors learn and PC-only predictors
	// cannot.
	ModelPattern
)

// String returns a short name for the model.
func (m BranchModel) String() string {
	switch m {
	case ModelNone:
		return "none"
	case ModelBiased:
		return "biased"
	case ModelLoop:
		return "loop"
	case ModelIndirect:
		return "indirect"
	case ModelPattern:
		return "pattern"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// Behavior describes the dynamic behaviour of one static control-transfer
// instruction. It is consulted only by the oracle walker; the simulated
// hardware never sees it.
type Behavior struct {
	Model BranchModel
	// TakenProb is the per-instance taken probability for ModelBiased.
	TakenProb float64
	// MeanTrip is the mean loop trip count for ModelLoop.
	MeanTrip int
	// Targets is the dynamic target set for ModelIndirect.
	Targets []uint64
	// Weights are relative selection weights parallel to Targets. A nil
	// Weights means uniform.
	Weights []float64
	// Sticky is the probability that an indirect instance repeats its
	// previous dynamic target — the burstiness of real dispatch streams.
	Sticky float64
	// Pattern and PatternLen define the repeating outcome bit string for
	// ModelPattern (bit i = taken on the i-th instance mod PatternLen).
	Pattern    uint32
	PatternLen uint8
}

// Func records one generated function.
type Func struct {
	// Name is a stable synthetic identifier ("f0017").
	Name string
	// Entry is the address of the first instruction.
	Entry uint64
	// NumInstrs is the function length in instructions, including padding.
	NumInstrs int
}

// Image is a complete static program: a flat instruction array starting at
// Base, plus per-instruction behaviour metadata and a function directory.
type Image struct {
	// Base is the byte address of Code[0]. Always instruction aligned.
	Base uint64
	// Code holds the instructions in address order.
	Code []isa.Instr
	// Behav is parallel to Code. Entries for non-CTI instructions have
	// Model == ModelNone.
	Behav []Behavior
	// Funcs lists generated functions in address order.
	Funcs []Func
	// Entry is the program entry point (first function's entry).
	Entry uint64
}

// Size returns the code footprint in bytes.
func (im *Image) Size() uint64 { return uint64(len(im.Code)) * isa.InstrBytes }

// End returns the first byte address past the image.
func (im *Image) End() uint64 { return im.Base + im.Size() }

// Contains reports whether addr falls inside the image.
func (im *Image) Contains(addr uint64) bool {
	return addr >= im.Base && addr < im.End()
}

// InstrAt returns the instruction at the given byte address. ok is false if
// the address is unaligned or outside the image — wrong-path fetch can run
// off the end of the code, and callers must handle that.
func (im *Image) InstrAt(addr uint64) (ins isa.Instr, ok bool) {
	if addr%isa.InstrBytes != 0 || !im.Contains(addr) {
		return isa.Instr{}, false
	}
	return im.Code[isa.WordIndex(addr, im.Base)], true
}

// BehaviorAt returns the behaviour record for the instruction at addr.
// It returns a zero Behavior for addresses outside the image.
func (im *Image) BehaviorAt(addr uint64) Behavior {
	if addr%isa.InstrBytes != 0 || !im.Contains(addr) {
		return Behavior{}
	}
	return im.Behav[isa.WordIndex(addr, im.Base)]
}

// index returns the word index for addr; callers must ensure it is valid.
func (im *Image) index(addr uint64) int { return isa.WordIndex(addr, im.Base) }

// Validate checks structural invariants of the image. It is used by tests
// and by the generator's own self-check:
//
//   - Code and Behav have equal length and the image is non-empty.
//   - Entry and all function entries are in bounds and aligned.
//   - Every direct CTI target is in bounds and aligned.
//   - Every CTI has a behaviour model; no non-CTI does.
//   - ModelIndirect target sets are non-empty, in bounds, and weight
//     vectors (when present) match in length with non-negative entries.
//   - ModelLoop back-edges have positive mean trip counts.
func (im *Image) Validate() error {
	if len(im.Code) == 0 {
		return fmt.Errorf("program: empty image")
	}
	if len(im.Code) != len(im.Behav) {
		return fmt.Errorf("program: code/behaviour length mismatch: %d vs %d", len(im.Code), len(im.Behav))
	}
	if im.Base%isa.InstrBytes != 0 {
		return fmt.Errorf("program: unaligned base %#x", im.Base)
	}
	if _, ok := im.InstrAt(im.Entry); !ok {
		return fmt.Errorf("program: entry %#x outside image", im.Entry)
	}
	for _, f := range im.Funcs {
		if _, ok := im.InstrAt(f.Entry); !ok {
			return fmt.Errorf("program: function %s entry %#x outside image", f.Name, f.Entry)
		}
	}
	for i, ins := range im.Code {
		pc := im.Base + uint64(i)*isa.InstrBytes
		b := im.Behav[i]
		if !ins.IsCTI() {
			if b.Model != ModelNone {
				return fmt.Errorf("program: non-CTI at %#x has behaviour %v", pc, b.Model)
			}
			continue
		}
		if ins.Kind.IsIndirect() {
			if ins.Kind == isa.Ret {
				continue // returns take their target from the call stack
			}
			if b.Model != ModelIndirect || len(b.Targets) == 0 {
				return fmt.Errorf("program: indirect CTI at %#x lacks target set", pc)
			}
			if b.Weights != nil && len(b.Weights) != len(b.Targets) {
				return fmt.Errorf("program: indirect CTI at %#x weight/target mismatch", pc)
			}
			for j, t := range b.Targets {
				if _, ok := im.InstrAt(t); !ok {
					return fmt.Errorf("program: indirect CTI at %#x target %#x outside image", pc, t)
				}
				if b.Weights != nil && b.Weights[j] < 0 {
					return fmt.Errorf("program: indirect CTI at %#x negative weight", pc)
				}
			}
			continue
		}
		if _, ok := im.InstrAt(ins.Target); !ok {
			return fmt.Errorf("program: CTI at %#x target %#x outside image", pc, ins.Target)
		}
		switch ins.Kind {
		case isa.CondBranch:
			switch b.Model {
			case ModelBiased:
				if b.TakenProb < 0 || b.TakenProb > 1 {
					return fmt.Errorf("program: branch at %#x bad taken prob %v", pc, b.TakenProb)
				}
			case ModelLoop:
				if b.MeanTrip <= 0 {
					return fmt.Errorf("program: loop branch at %#x bad mean trip %d", pc, b.MeanTrip)
				}
			case ModelPattern:
				if b.PatternLen < 2 || b.PatternLen > 32 {
					return fmt.Errorf("program: pattern branch at %#x bad length %d", pc, b.PatternLen)
				}
			default:
				return fmt.Errorf("program: conditional at %#x has model %v", pc, b.Model)
			}
		}
	}
	return nil
}

// KindCounts tallies static instructions by kind.
func (im *Image) KindCounts() [isa.NumKinds]int {
	var c [isa.NumKinds]int
	for _, ins := range im.Code {
		c[ins.Kind]++
	}
	return c
}

// StaticBranchCount returns the number of static CTIs in the image.
func (im *Image) StaticBranchCount() int {
	n := 0
	for _, ins := range im.Code {
		if ins.IsCTI() {
			n++
		}
	}
	return n
}

// FuncOf returns the function containing addr, or nil.
func (im *Image) FuncOf(addr uint64) *Func {
	lo, hi := 0, len(im.Funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		f := &im.Funcs[mid]
		end := f.Entry + uint64(f.NumInstrs)*isa.InstrBytes
		switch {
		case addr < f.Entry:
			hi = mid
		case addr >= end:
			lo = mid + 1
		default:
			return f
		}
	}
	return nil
}
