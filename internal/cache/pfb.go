package cache

// PrefetchBuffer is the small fully-associative FIFO buffer prefetched lines
// land in. It is probed in parallel with the L1-I on every fetch; a hit
// transfers the line into the L1-I (the caller performs the Fill) and frees
// the buffer slot. Keeping prefetches out of the cache until first use is
// what protects the L1-I from wrong-path pollution.
type PrefetchBuffer struct {
	lineMask uint64
	entries  []uint64
	valid    []bool
	next     int // FIFO allocation cursor

	// Inserts/Hits/Evictions/Replaced count buffer traffic; a Replaced
	// entry is one evicted before any use (a wasted prefetch).
	Inserts, Hits, Evictions uint64
}

// NewPrefetchBuffer creates a buffer with the given number of entries for
// lineBytes-sized lines. A zero-entry buffer is legal and behaves as "no
// buffer" (inserts drop, probes miss), which gives experiments a clean way
// to disable prefetching storage.
func NewPrefetchBuffer(numEntries, lineBytes int) *PrefetchBuffer {
	if numEntries < 0 {
		numEntries = 0
	}
	return &PrefetchBuffer{
		lineMask: ^uint64(lineBytes - 1),
		entries:  make([]uint64, numEntries),
		valid:    make([]bool, numEntries),
	}
}

// Capacity returns the entry count.
func (p *PrefetchBuffer) Capacity() int { return len(p.entries) }

// Contains reports whether the line holding addr is buffered, without side
// effects.
func (p *PrefetchBuffer) Contains(addr uint64) bool {
	l := addr & p.lineMask
	for i, v := range p.valid {
		if v && p.entries[i] == l {
			return true
		}
	}
	return false
}

// Take removes and returns the buffered line on a fetch hit. ok is false on
// a miss.
func (p *PrefetchBuffer) Take(addr uint64) bool {
	l := addr & p.lineMask
	for i, v := range p.valid {
		if v && p.entries[i] == l {
			p.valid[i] = false
			p.Hits++
			return true
		}
	}
	return false
}

// Insert installs a prefetched line, evicting FIFO-oldest when full.
// Duplicate inserts refresh nothing and are dropped.
func (p *PrefetchBuffer) Insert(addr uint64) {
	if len(p.entries) == 0 {
		return
	}
	l := addr & p.lineMask
	if p.Contains(l) {
		return
	}
	// Prefer a free slot.
	for i, v := range p.valid {
		if !v {
			p.entries[i] = l
			p.valid[i] = true
			p.Inserts++
			return
		}
	}
	// FIFO eviction.
	p.entries[p.next] = l
	p.valid[p.next] = true
	p.next = (p.next + 1) % len(p.entries)
	p.Inserts++
	p.Evictions++
}

// InvalidateAll empties the buffer.
func (p *PrefetchBuffer) InvalidateAll() {
	for i := range p.valid {
		p.valid[i] = false
	}
}

// Reset restores the pristine just-constructed state: every entry invalid,
// the FIFO cursor rewound, and counters zeroed, retaining the backing
// arrays.
func (p *PrefetchBuffer) Reset() {
	clear(p.valid)
	clear(p.entries)
	p.next = 0
	p.Inserts, p.Hits, p.Evictions = 0, 0, 0
}

// Occupancy returns the number of live entries.
func (p *PrefetchBuffer) Occupancy() int {
	n := 0
	for _, v := range p.valid {
		if v {
			n++
		}
	}
	return n
}

// StorageBits accounts buffer storage: each entry holds a 48-bit line
// address tag plus the line data itself.
func (p *PrefetchBuffer) StorageBits(lineBytes int) int {
	return len(p.entries) * (48 + 8*lineBytes)
}
