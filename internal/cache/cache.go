// Package cache models the SRAM structures on the fetch path: a generic
// set-associative cache with tag-port accounting (the resource cache-probe
// filtering steals idle cycles from) and the small fully-associative
// prefetch buffer that sits beside the L1-I.
package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Policy selects the replacement policy.
type Policy uint8

const (
	// LRU replaces the least recently used way.
	LRU Policy = iota
	// FIFO replaces ways in allocation order.
	FIFO
	// Random replaces a pseudo-randomly chosen way.
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity; must be a multiple of
	// Ways*LineBytes. Rounded to the nearest valid power-of-two set count.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size; must be a power of two.
	LineBytes int
	// Repl selects the replacement policy.
	Repl Policy
	// TagPorts is the number of tag-array ports available per cycle.
	// Demand accesses and cache-probe filtering share them.
	TagPorts int
	// Seed drives the Random replacement policy.
	Seed int64
}

// lazySetThreshold is the total line count above which a cache defers
// per-set tag storage to first touch (see New).
const lazySetThreshold = 8192

type line struct {
	valid      bool
	tag        uint64
	stamp      uint64
	prefetched bool
}

// Cache is a set-associative cache holding tags only — the simulator tracks
// presence and timing, never data.
type Cache struct {
	cfg       Config
	sets      [][]line
	lineShift uint
	setMask   uint64
	clock     uint64
	rng       *rand.Rand

	portCycle int64
	portsUsed int

	// arena carves storage for lazily allocated sets in chunks, keeping
	// the allocation count low and touched sets adjacent in memory.
	arena []line

	// Accesses/Hits/Misses count demand accesses; Probes/ProbeHits count
	// non-allocating tag checks; Fills/Evictions count line movement;
	// PrefetchedHits counts demand hits on lines installed by a prefetch
	// (useful-prefetch accounting for prefetch-into-cache schemes).
	Accesses, Hits, Misses     uint64
	Probes, ProbeHits          uint64
	Fills, Evictions           uint64
	PrefetchedHits             uint64
	PortGrants, PortRejections uint64
}

// New builds a cache. Invalid geometry panics: the configuration comes from
// code, not user input, and a silent fix-up would skew experiments.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineBytes))
	}
	if cfg.Ways <= 0 {
		panic("cache: ways must be positive")
	}
	numSets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: %dB/%dw/%dB gives %d sets (need power of two)",
			cfg.SizeBytes, cfg.Ways, cfg.LineBytes, numSets))
	}
	if cfg.TagPorts <= 0 {
		cfg.TagPorts = 1
	}
	sets := make([][]line, numSets)
	if numSets*cfg.Ways <= lazySetThreshold {
		// Small cache: one flat backing array sliced per set — two
		// allocations total and contiguous memory for the tag walks.
		backing := make([]line, numSets*cfg.Ways)
		for i := range sets {
			sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		}
	}
	// Large caches (the megabyte-class L2) leave sets nil until first fill:
	// a simulation touches a small fraction of the tag array, so skipping
	// the up-front allocation avoids zeroing megabytes per machine and the
	// cold-page scatter on every fill. A nil set reads as all-invalid,
	// which is exactly a cold set's behaviour, so results are unchanged.
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(numSets - 1),
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		portCycle: -1,
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the set count.
func (c *Cache) NumSets() int { return len(c.sets) }

// LineAddr aligns addr down to its cache line.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineBytes-1) }

func (c *Cache) setAndTag(addr uint64) (int, uint64) {
	l := addr >> c.lineShift
	return int(l & c.setMask), l >> uint(bits.TrailingZeros(uint(len(c.sets))))
}

// TryUsePort consumes one tag port for the given cycle. It returns false
// when all ports are busy this cycle. Demand accesses should acquire their
// port before filters do.
func (c *Cache) TryUsePort(now int64) bool {
	if now != c.portCycle {
		c.portCycle = now
		c.portsUsed = 0
	}
	if c.portsUsed >= c.cfg.TagPorts {
		c.PortRejections++
		return false
	}
	c.portsUsed++
	c.PortGrants++
	return true
}

// IdlePorts reports how many tag ports remain unused this cycle.
func (c *Cache) IdlePorts(now int64) int {
	if now != c.portCycle {
		return c.cfg.TagPorts
	}
	return c.cfg.TagPorts - c.portsUsed
}

// Access performs a demand lookup, updating replacement state on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	si, tag := c.setAndTag(addr)
	set := c.sets[si]
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			c.Hits++
			if ln.prefetched {
				c.PrefetchedHits++
				ln.prefetched = false
			}
			if c.cfg.Repl == LRU {
				c.clock++
				ln.stamp = c.clock
			}
			return true
		}
	}
	c.Misses++
	return false
}

// Probe performs a tag check without touching replacement state or demand
// counters — the cache-probe-filtering primitive.
func (c *Cache) Probe(addr uint64) bool {
	c.Probes++
	si, tag := c.setAndTag(addr)
	for i := range c.sets[si] {
		if c.sets[si][i].valid && c.sets[si][i].tag == tag {
			c.ProbeHits++
			return true
		}
	}
	return false
}

// Contains reports presence without any statistics side effects.
func (c *Cache) Contains(addr uint64) bool {
	si, tag := c.setAndTag(addr)
	for i := range c.sets[si] {
		if c.sets[si][i].valid && c.sets[si][i].tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr, returning the evicted line
// address when a valid victim was displaced. prefetched marks lines
// installed by a prefetcher for useful-prefetch accounting.
func (c *Cache) Fill(addr uint64, prefetched bool) (evicted uint64, didEvict bool) {
	si, tag := c.setAndTag(addr)
	set := c.sets[si]
	if set == nil {
		if len(c.arena) < c.cfg.Ways {
			c.arena = make([]line, c.cfg.Ways*256)
		}
		set = c.arena[:c.cfg.Ways:c.cfg.Ways]
		c.arena = c.arena[c.cfg.Ways:]
		c.sets[si] = set
	}
	c.clock++
	// Already present: refresh only.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if c.cfg.Repl == LRU {
				set[i].stamp = c.clock
			}
			return 0, false
		}
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Repl {
		case Random:
			victim = c.rng.Intn(len(set))
		default: // LRU and FIFO both evict the minimum stamp
			victim = 0
			for i := 1; i < len(set); i++ {
				if set[i].stamp < set[victim].stamp {
					victim = i
				}
			}
		}
		didEvict = true
		evicted = c.reconstructAddr(si, set[victim].tag)
		c.Evictions++
	}
	set[victim] = line{valid: true, tag: tag, stamp: c.clock, prefetched: prefetched}
	c.Fills++
	return evicted, didEvict
}

// Invalidate removes the line containing addr, reporting whether it was
// present.
func (c *Cache) Invalidate(addr uint64) bool {
	si, tag := c.setAndTag(addr)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = line{}
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Reset restores the pristine just-constructed state: every line invalid,
// replacement clock and port state rewound, counters zeroed, and the Random
// policy's RNG reseeded to its initial stream. Flat-backed caches keep their
// backing array and zero it; lazily backed caches (the megabyte-class L2)
// instead drop their set slices and arena chunks, exactly reproducing a
// fresh machine's cold, unallocated tag array — resetting by dropping, not
// zeroing, so a reset costs O(touched sets), never O(capacity).
func (c *Cache) Reset() {
	if len(c.sets)*c.cfg.Ways <= lazySetThreshold {
		for _, set := range c.sets {
			clear(set)
		}
	} else {
		clear(c.sets)
		c.arena = nil
	}
	c.clock = 0
	c.rng.Seed(c.cfg.Seed + 1)
	c.portCycle = -1
	c.portsUsed = 0
	c.Accesses, c.Hits, c.Misses = 0, 0, 0
	c.Probes, c.ProbeHits = 0, 0
	c.Fills, c.Evictions = 0, 0
	c.PrefetchedHits = 0
	c.PortGrants, c.PortRejections = 0, 0
}

// reconstructAddr rebuilds a line address from set index and tag.
func (c *Cache) reconstructAddr(si int, tag uint64) uint64 {
	setBits := uint(bits.TrailingZeros(uint(len(c.sets))))
	return ((tag << setBits) | uint64(si)) << c.lineShift
}

// MissRate returns demand misses per demand access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// String describes the geometry.
func (c *Cache) String() string {
	return fmt.Sprintf("%dKB %d-way %dB-line %s",
		c.cfg.SizeBytes/1024, c.cfg.Ways, c.cfg.LineBytes, c.cfg.Repl)
}
