package cache

import "testing"

func TestPFBInsertTake(t *testing.T) {
	p := NewPrefetchBuffer(4, 32)
	p.Insert(0x1000)
	if !p.Contains(0x1010) {
		t.Error("Contains missed same-line address")
	}
	if !p.Take(0x1000) {
		t.Error("Take missed")
	}
	if p.Contains(0x1000) {
		t.Error("entry survived Take")
	}
	if p.Take(0x1000) {
		t.Error("double Take succeeded")
	}
	if p.Hits != 1 || p.Inserts != 1 {
		t.Errorf("hits=%d inserts=%d", p.Hits, p.Inserts)
	}
}

func TestPFBFIFOEviction(t *testing.T) {
	p := NewPrefetchBuffer(2, 32)
	p.Insert(0x1000)
	p.Insert(0x2000)
	p.Insert(0x3000) // evicts 0x1000
	if p.Contains(0x1000) {
		t.Error("oldest entry survived")
	}
	if !p.Contains(0x2000) || !p.Contains(0x3000) {
		t.Error("younger entries lost")
	}
	if p.Evictions != 1 {
		t.Errorf("Evictions = %d", p.Evictions)
	}
}

func TestPFBDuplicateInsertDropped(t *testing.T) {
	p := NewPrefetchBuffer(4, 32)
	p.Insert(0x1000)
	p.Insert(0x1008) // same line
	if p.Inserts != 1 {
		t.Errorf("Inserts = %d", p.Inserts)
	}
	if p.Occupancy() != 1 {
		t.Errorf("Occupancy = %d", p.Occupancy())
	}
}

func TestPFBFreeSlotReuse(t *testing.T) {
	p := NewPrefetchBuffer(2, 32)
	p.Insert(0x1000)
	p.Insert(0x2000)
	p.Take(0x1000)
	p.Insert(0x3000) // must reuse the freed slot, not evict 0x2000
	if !p.Contains(0x2000) || !p.Contains(0x3000) {
		t.Error("free slot not reused")
	}
	if p.Evictions != 0 {
		t.Errorf("Evictions = %d", p.Evictions)
	}
}

func TestPFBZeroCapacity(t *testing.T) {
	p := NewPrefetchBuffer(0, 32)
	p.Insert(0x1000)
	if p.Contains(0x1000) || p.Take(0x1000) {
		t.Error("zero-capacity buffer stored a line")
	}
	if p.Capacity() != 0 {
		t.Errorf("Capacity = %d", p.Capacity())
	}
	p2 := NewPrefetchBuffer(-3, 32)
	if p2.Capacity() != 0 {
		t.Error("negative capacity not clamped")
	}
}

func TestPFBInvalidateAllAndStorage(t *testing.T) {
	p := NewPrefetchBuffer(4, 32)
	p.Insert(0x1000)
	p.Insert(0x2000)
	p.InvalidateAll()
	if p.Occupancy() != 0 {
		t.Errorf("Occupancy = %d", p.Occupancy())
	}
	if got := p.StorageBits(32); got != 4*(48+256) {
		t.Errorf("StorageBits = %d", got)
	}
}
