package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, Repl: LRU, TagPorts: 2})
}

func TestGeometry(t *testing.T) {
	c := small()
	if c.NumSets() != 16 {
		t.Errorf("sets = %d, want 16", c.NumSets())
	}
	if c.LineAddr(0x1234) != 0x1220 {
		t.Errorf("LineAddr = %#x", c.LineAddr(0x1234))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: 1024, Ways: 2, LineBytes: 33},
		{SizeBytes: 1024, Ways: 0, LineBytes: 32},
		{SizeBytes: 1000, Ways: 2, LineBytes: 32},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissFillHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Error("hit in empty cache")
	}
	c.Fill(0x1000, false)
	if !c.Access(0x1000) {
		t.Error("miss after fill")
	}
	if !c.Access(0x101c) {
		t.Error("miss on other word of same line")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small() // 16 sets x 2 ways, 32B lines: set stride is 512B
	a0 := uint64(0x10000)
	a1 := a0 + 512  // same set
	a2 := a0 + 1024 // same set
	c.Fill(a0, false)
	c.Fill(a1, false)
	c.Access(a0) // a1 becomes LRU
	ev, did := c.Fill(a2, false)
	if !did || ev != a1 {
		t.Errorf("evicted %#x,%v; want %#x", ev, did, a1)
	}
	if !c.Contains(a0) || c.Contains(a1) || !c.Contains(a2) {
		t.Error("wrong set contents after eviction")
	}
}

func TestFIFOReplacementIgnoresAccess(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, Repl: FIFO, TagPorts: 1})
	a0 := uint64(0x10000)
	a1 := a0 + 512
	a2 := a0 + 1024
	c.Fill(a0, false)
	c.Fill(a1, false)
	c.Access(a0) // must NOT protect a0 under FIFO
	ev, did := c.Fill(a2, false)
	if !did || ev != a0 {
		t.Errorf("FIFO evicted %#x, want %#x", ev, a0)
	}
}

func TestRandomReplacementStaysInSet(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, Repl: Random, TagPorts: 1, Seed: 5})
	a0 := uint64(0x10000)
	a1 := a0 + 512
	a2 := a0 + 1024
	c.Fill(a0, false)
	c.Fill(a1, false)
	ev, did := c.Fill(a2, false)
	if !did || (ev != a0 && ev != a1) {
		t.Errorf("random evicted %#x", ev)
	}
}

func TestFillDuplicateNoEvict(t *testing.T) {
	c := small()
	c.Fill(0x1000, false)
	if _, did := c.Fill(0x1000, false); did {
		t.Error("duplicate fill evicted")
	}
	if c.Fills != 1 {
		t.Errorf("Fills = %d", c.Fills)
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	c := small()
	a0 := uint64(0x10000)
	a1 := a0 + 512
	a2 := a0 + 1024
	c.Fill(a0, false)
	c.Fill(a1, false)
	// Probing a0 must NOT refresh its LRU position.
	if !c.Probe(a0) {
		t.Error("probe missed present line")
	}
	ev, _ := c.Fill(a2, false)
	if ev != a0 {
		t.Errorf("probe refreshed LRU: evicted %#x, want %#x", ev, a0)
	}
	if c.Accesses != 0 {
		t.Error("probe counted as access")
	}
	if c.Probes != 1 || c.ProbeHits != 1 {
		t.Errorf("probes=%d hits=%d", c.Probes, c.ProbeHits)
	}
}

func TestEvictedAddressReconstruction(t *testing.T) {
	c := small()
	addrs := []uint64{0x4_0000, 0x4_0000 + 512, 0x4_0000 + 1024}
	c.Fill(addrs[0], false)
	c.Fill(addrs[1], false)
	ev, did := c.Fill(addrs[2], false)
	if !did {
		t.Fatal("no eviction")
	}
	if ev != addrs[0] {
		t.Errorf("reconstructed %#x, want %#x", ev, addrs[0])
	}
}

func TestPortAccounting(t *testing.T) {
	c := small() // 2 ports
	if !c.TryUsePort(10) || !c.TryUsePort(10) {
		t.Fatal("ports denied")
	}
	if c.TryUsePort(10) {
		t.Error("third port granted")
	}
	if c.IdlePorts(10) != 0 {
		t.Errorf("IdlePorts = %d", c.IdlePorts(10))
	}
	// New cycle resets.
	if c.IdlePorts(11) != 2 {
		t.Errorf("IdlePorts new cycle = %d", c.IdlePorts(11))
	}
	if !c.TryUsePort(11) {
		t.Error("port denied on fresh cycle")
	}
	if c.PortGrants != 3 || c.PortRejections != 1 {
		t.Errorf("grants=%d rejections=%d", c.PortGrants, c.PortRejections)
	}
}

func TestPrefetchedHitAccounting(t *testing.T) {
	c := small()
	c.Fill(0x1000, true)
	c.Access(0x1000)
	if c.PrefetchedHits != 1 {
		t.Errorf("PrefetchedHits = %d", c.PrefetchedHits)
	}
	// Second access: no longer counted as first-use.
	c.Access(0x1000)
	if c.PrefetchedHits != 1 {
		t.Errorf("PrefetchedHits double-counted: %d", c.PrefetchedHits)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x1000, false)
	if !c.Invalidate(0x1000) {
		t.Error("invalidate missed")
	}
	if c.Contains(0x1000) {
		t.Error("line survived invalidate")
	}
	if c.Invalidate(0x1000) {
		t.Error("double invalidate succeeded")
	}
	c.Fill(0x2000, false)
	c.InvalidateAll()
	if c.Contains(0x2000) {
		t.Error("line survived InvalidateAll")
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	if c.MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	c.Access(0x1000)
	c.Fill(0x1000, false)
	c.Access(0x1000)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v", got)
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

// Property: the cache never holds more distinct lines than its capacity, and
// Contains(x) after Fill(x) is always true.
func TestQuickCapacityInvariant(t *testing.T) {
	c := New(Config{SizeBytes: 512, Ways: 2, LineBytes: 32, Repl: LRU, TagPorts: 1})
	live := map[uint64]bool{}
	f := func(raw uint32) bool {
		addr := uint64(raw) &^ 31
		ev, did := c.Fill(addr, false)
		live[c.LineAddr(addr)] = true
		if did {
			delete(live, ev)
		}
		if !c.Contains(addr) {
			return false
		}
		if len(live) > 16 { // 512B / 32B = 16 lines
			return false
		}
		// The model and the cache must agree exactly.
		for l := range live {
			if !c.Contains(l) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
