package cache

import (
	"math/rand"
	"testing"
)

// cacheTrace drives a deterministic pseudo-random op mix over the cache and
// records every observable outcome plus the final counters.
func cacheTrace(c *Cache, seed int64, ops int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	record := func(b bool) {
		if b {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	for i := 0; i < ops; i++ {
		addr := uint64(rng.Intn(1<<14)) * 32
		now := int64(i / 3)
		switch rng.Intn(6) {
		case 0:
			record(c.Access(addr))
		case 1:
			record(c.Probe(addr))
		case 2:
			record(c.Contains(addr))
		case 3:
			ev, did := c.Fill(addr, rng.Intn(2) == 0)
			record(did)
			out = append(out, ev)
		case 4:
			record(c.Invalidate(addr))
		case 5:
			record(c.TryUsePort(now))
			out = append(out, uint64(c.IdlePorts(now)))
		}
	}
	out = append(out, c.Accesses, c.Hits, c.Misses, c.Probes, c.ProbeHits,
		c.Fills, c.Evictions, c.PrefetchedHits, c.PortGrants, c.PortRejections)
	return out
}

// TestCacheResetEqualsFresh dirties a cache, resets it, and requires the
// exact observable behaviour of a freshly constructed cache — per geometry
// (flat-backed and lazily chunked) and per replacement policy (Random also
// proves the RNG reseed).
func TestCacheResetEqualsFresh(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"small-lru", Config{SizeBytes: 2048, Ways: 2, LineBytes: 32, Repl: LRU, TagPorts: 2}},
		{"small-fifo", Config{SizeBytes: 2048, Ways: 2, LineBytes: 32, Repl: FIFO, TagPorts: 2}},
		{"small-random", Config{SizeBytes: 2048, Ways: 2, LineBytes: 32, Repl: Random, TagPorts: 2, Seed: 11}},
		{"large-lazy-arena", Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 32, Repl: LRU, TagPorts: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.SizeBytes == 1<<20 {
				// Confirm this geometry actually exercises the lazy path.
				if n := tc.cfg.SizeBytes / tc.cfg.LineBytes; n <= lazySetThreshold {
					t.Fatalf("geometry has %d lines; want > %d (lazy)", n, lazySetThreshold)
				}
			}
			dirty := New(tc.cfg)
			cacheTrace(dirty, 1, 4000) // dirty with one trace...
			dirty.Reset()
			got := cacheTrace(dirty, 2, 4000) // ...then observe another
			want := cacheTrace(New(tc.cfg), 2, 4000)
			if len(got) != len(want) {
				t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("reset cache diverged from fresh at trace step %d: %d != %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestPrefetchBufferResetEqualsFresh does the same for the prefetch buffer.
func TestPrefetchBufferResetEqualsFresh(t *testing.T) {
	pfbTrace := func(p *PrefetchBuffer, seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		var out []uint64
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(64)) * 32
			switch rng.Intn(3) {
			case 0:
				p.Insert(addr)
			case 1:
				if p.Take(addr) {
					out = append(out, addr|1)
				}
			case 2:
				if p.Contains(addr) {
					out = append(out, addr)
				}
			}
			out = append(out, uint64(p.Occupancy()))
		}
		return append(out, p.Inserts, p.Hits, p.Evictions)
	}
	for _, entries := range []int{0, 8, 32} {
		dirty := NewPrefetchBuffer(entries, 32)
		pfbTrace(dirty, 1)
		dirty.Reset()
		got := pfbTrace(dirty, 2)
		want := pfbTrace(NewPrefetchBuffer(entries, 32), 2)
		if len(got) != len(want) {
			t.Fatalf("entries=%d: trace lengths differ", entries)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("entries=%d: reset PFB diverged at step %d", entries, i)
			}
		}
	}
}
