// Package trace serialises dynamic instruction streams to a compact binary
// format and replays them as an oracle.Stream.
//
// A trace stores only what a deterministic replay cannot reconstruct: the
// generator parameters of the program image (as a JSON header) plus, per
// control-transfer instruction, the conditional outcome or indirect target.
// Sequential instructions, direct targets, and return addresses are all
// recomputed during replay, which keeps traces small — a few bits per
// executed branch rather than bytes per instruction.
//
// Format (all integers unsigned varints):
//
//	magic    [8]byte  "FDIPTR01"
//	plen     uvarint  length of params JSON
//	params   []byte   program.Params as JSON
//	seed     uvarint  walker seed (zig-zag encoded)
//	events   ...      one control byte per recorded CTI event:
//	                  bit0 = taken, bit1 = target follows
//	                  if bit1: uvarint (target - image base)
//	until EOF.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"fdip/internal/isa"
	"fdip/internal/oracle"
	"fdip/internal/program"
)

var magic = [8]byte{'F', 'D', 'I', 'P', 'T', 'R', '0', '1'}

const (
	flagTaken  = 1 << 0
	flagTarget = 1 << 1
)

// Writer records the CTI events of a dynamic stream.
type Writer struct {
	w     *bufio.Writer
	im    *program.Image
	buf   [binary.MaxVarintLen64 + 1]byte
	count uint64
	err   error
}

// NewWriter writes the header for a trace of a program generated from params
// and walked with the given seed.
func NewWriter(w io.Writer, params program.Params, seed int64, im *program.Image) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	pj, err := json.Marshal(params)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding params: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(pj)))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	if _, err := bw.Write(pj); err != nil {
		return nil, fmt.Errorf("trace: writing params: %w", err)
	}
	n = binary.PutUvarint(tmp[:], zigzag(seed))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing seed: %w", err)
	}
	return &Writer{w: bw, im: im}, nil
}

// Append records one executed instruction. Non-CTI instructions and CTIs
// whose outcome is deterministic (direct jumps, calls, returns) are free.
func (tw *Writer) Append(rec oracle.Record) {
	if tw.err != nil {
		return
	}
	var ctrl byte
	needTarget := false
	switch rec.Instr.Kind {
	case isa.CondBranch:
		if rec.Taken {
			ctrl = flagTaken
		}
	case isa.IndirectJump, isa.IndirectCall:
		ctrl = flagTaken | flagTarget
		needTarget = true
	default:
		return // deterministic under replay
	}
	if err := tw.w.WriteByte(ctrl); err != nil {
		tw.err = err
		return
	}
	if needTarget {
		n := binary.PutUvarint(tw.buf[:], rec.NextPC-tw.im.Base)
		if _, err := tw.w.Write(tw.buf[:n]); err != nil {
			tw.err = err
			return
		}
	}
	tw.count++
}

// Events returns the number of CTI events recorded so far.
func (tw *Writer) Events() uint64 { return tw.count }

// Flush drains buffered output and reports any deferred write error.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return fmt.Errorf("trace: deferred write error: %w", tw.err)
	}
	return tw.w.Flush()
}

// Reader replays a trace as an oracle.Stream. The program image is
// regenerated from the stored parameters, so replay needs no external state.
type Reader struct {
	r      *bufio.Reader
	im     *program.Image
	params program.Params
	seed   int64

	pc    uint64
	stack []uint64
	done  bool
}

// NewReader parses the header and prepares the replay.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if plen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible params length %d", plen)
	}
	pj := make([]byte, plen)
	if _, err := io.ReadFull(br, pj); err != nil {
		return nil, fmt.Errorf("trace: reading params: %w", err)
	}
	var params program.Params
	if err := json.Unmarshal(pj, &params); err != nil {
		return nil, fmt.Errorf("trace: decoding params: %w", err)
	}
	zseed, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading seed: %w", err)
	}
	im, err := program.Generate(params)
	if err != nil {
		return nil, fmt.Errorf("trace: regenerating image: %w", err)
	}
	return &Reader{r: br, im: im, params: params, seed: unzigzag(zseed), pc: im.Entry}, nil
}

// Image returns the regenerated program image backing the replay.
func (tr *Reader) Image() *program.Image { return tr.im }

// Params returns the program parameters stored in the trace header.
func (tr *Reader) Params() program.Params { return tr.params }

// Seed returns the walker seed stored in the trace header.
func (tr *Reader) Seed() int64 { return tr.seed }

// Next replays one instruction. ok is false once the recorded CTI events are
// exhausted and the replay reaches the next CTI needing one.
func (tr *Reader) Next() (oracle.Record, bool) {
	if tr.done {
		return oracle.Record{}, false
	}
	ins, okIns := tr.im.InstrAt(tr.pc)
	if !okIns {
		tr.done = true
		return oracle.Record{}, false
	}
	rec := oracle.Record{PC: tr.pc, Instr: ins, NextPC: isa.NextPC(tr.pc)}
	switch ins.Kind {
	case isa.CondBranch:
		ctrl, err := tr.r.ReadByte()
		if err != nil {
			tr.done = true
			return oracle.Record{}, false
		}
		rec.Taken = ctrl&flagTaken != 0
		if rec.Taken {
			rec.NextPC = ins.Target
		}
	case isa.Jump:
		rec.Taken = true
		rec.NextPC = ins.Target
	case isa.Call:
		rec.Taken = true
		rec.NextPC = ins.Target
		tr.stack = append(tr.stack, isa.NextPC(tr.pc))
	case isa.IndirectCall, isa.IndirectJump:
		ctrl, err := tr.r.ReadByte()
		if err != nil {
			tr.done = true
			return oracle.Record{}, false
		}
		if ctrl&flagTarget == 0 {
			tr.done = true
			return oracle.Record{}, false
		}
		off, err := binary.ReadUvarint(tr.r)
		if err != nil {
			tr.done = true
			return oracle.Record{}, false
		}
		rec.Taken = true
		rec.NextPC = tr.im.Base + off
		if ins.Kind == isa.IndirectCall {
			tr.stack = append(tr.stack, isa.NextPC(tr.pc))
		}
	case isa.Ret:
		rec.Taken = true
		if len(tr.stack) == 0 {
			rec.NextPC = tr.im.Entry
		} else {
			rec.NextPC = tr.stack[len(tr.stack)-1]
			tr.stack = tr.stack[:len(tr.stack)-1]
		}
	}
	tr.pc = rec.NextPC
	return rec, true
}

// ErrTruncated reports a trace ending mid-record.
var ErrTruncated = errors.New("trace: truncated")

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
