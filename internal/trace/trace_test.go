package trace

import (
	"bytes"
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/program"
)

func genParams(seed int64) program.Params {
	p := program.DefaultParams()
	p.Seed = seed
	p.NumFuncs = 40
	return p
}

func TestRoundTrip(t *testing.T) {
	params := genParams(11)
	im := program.MustGenerate(params)
	w := oracle.NewWalker(im, 5)

	const n = 100_000
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, params, 5, im)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	recs := make([]oracle.Record, 0, n)
	for i := 0; i < n; i++ {
		rec, _ := w.Next()
		tw.Append(rec)
		recs = append(recs, rec)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if tr.Seed() != 5 {
		t.Errorf("Seed = %d, want 5", tr.Seed())
	}
	if tr.Params().Seed != params.Seed || tr.Params().NumFuncs != params.NumFuncs {
		t.Errorf("Params round-trip mismatch: %+v", tr.Params())
	}
	for i, want := range recs {
		got, ok := tr.Next()
		if !ok {
			t.Fatalf("replay exhausted at %d/%d", i, n)
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestReplayEndsAtEvents(t *testing.T) {
	params := genParams(12)
	im := program.MustGenerate(params)
	w := oracle.NewWalker(im, 3)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, params, 3, im)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		rec, _ := w.Next()
		tw.Append(rec)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
		if n > 20_000 {
			t.Fatal("replay did not terminate")
		}
	}
	// Replay may run slightly past the recorded instruction count (free
	// deterministic instructions after the last stored CTI event) but must
	// cover at least the recorded span minus one trailing CTI.
	if n < 4999 {
		t.Errorf("replayed only %d of 5000 instructions", n)
	}
	// Exhausted stream keeps returning !ok.
	if _, ok := tr.Next(); ok {
		t.Error("exhausted reader returned a record")
	}
}

func TestCompactness(t *testing.T) {
	params := genParams(13)
	im := program.MustGenerate(params)
	w := oracle.NewWalker(im, 1)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, params, 1, im)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	for i := 0; i < n; i++ {
		rec, _ := w.Next()
		tw.Append(rec)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / n
	if perInstr > 0.6 {
		t.Errorf("trace too fat: %.2f bytes/instr", perInstr)
	}
	if tw.Events() == 0 {
		t.Error("no events recorded")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE_______"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(magic[:4])); err == nil {
		t.Error("truncated magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(magic[:])); err == nil {
		t.Error("missing header accepted")
	}
}

func TestTruncatedBodyStopsCleanly(t *testing.T) {
	params := genParams(14)
	im := program.MustGenerate(params)
	w := oracle.NewWalker(im, 2)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, params, 2, im)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		rec, _ := w.Next()
		tw.Append(rec)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the tail mid-body.
	data := buf.Bytes()[:buf.Len()-3]
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader on truncated body: %v", err)
	}
	n := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
		if n > 100_000 {
			t.Fatal("truncated replay did not terminate")
		}
	}
	if n == 0 {
		t.Error("truncated replay produced nothing")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), -9e18} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}
