package engine

import (
	"context"
	"testing"

	"fdip/internal/core"
)

// keyFor resolves and returns just the key, failing the test on error.
func keyFor(t *testing.T, job Job, instrs uint64) JobKey {
	t.Helper()
	_, key, err := ResolveJob(job, instrs)
	if err != nil {
		t.Fatalf("ResolveJob(%q): %v", job.Name, err)
	}
	return key
}

// TestJobKeyIgnoresDisplayNames: the same simulation point under different
// labels must share one cache entry.
func TestJobKeyIgnoresDisplayNames(t *testing.T) {
	cfg := core.DefaultConfig()
	a := keyFor(t, Job{Name: "sweepA/gcc/ftq=32", Workload: "gcc", Config: cfg}, 0)
	b := keyFor(t, Job{Name: "sweepB/base", Workload: "gcc", Config: cfg}, 0)
	if a != b {
		t.Fatalf("identical resolved points with different display names got different keys")
	}
}

// TestJobKeyCoversConfigKnobs is the cache-key soundness case: two plans with
// different knobs but colliding-looking labels must not share cache entries.
func TestJobKeyCoversConfigKnobs(t *testing.T) {
	small := core.DefaultConfig()
	small.FTQEntries = 2
	big := core.DefaultConfig()
	big.FTQEntries = 32
	a := keyFor(t, Job{Name: "gcc/ftq-sweep", Workload: "gcc", Config: small}, 0)
	b := keyFor(t, Job{Name: "gcc/ftq-sweep", Workload: "gcc", Config: big}, 0)
	if a == b {
		t.Fatalf("colliding labels with different FTQEntries share a key — cache poisoning")
	}
}

// TestJobKeyCoversWorkloadIdentity: the key follows the generated program,
// not the label that happens to describe it.
func TestJobKeyCoversWorkloadIdentity(t *testing.T) {
	cfg := core.DefaultConfig()
	a := keyFor(t, Job{Name: "point", Workload: "gcc", Config: cfg}, 0)
	b := keyFor(t, Job{Name: "point", Workload: "deltablue", Config: cfg}, 0)
	if a == b {
		t.Fatalf("different workloads under one label share a key")
	}
}

// TestJobKeyCoversSeed: branch-outcome seeds are part of the simulation
// identity.
func TestJobKeyCoversSeed(t *testing.T) {
	cfg := core.DefaultConfig()
	a := keyFor(t, Job{Workload: "gcc", Config: cfg, Seed: 7}, 0)
	b := keyFor(t, Job{Workload: "gcc", Config: cfg, Seed: 8}, 0)
	if a == b {
		t.Fatalf("different oracle seeds share a key")
	}
}

// TestJobKeyInstrsNormalisation: an engine-wide budget override and a config
// that sets the same budget directly resolve to the same identity (the
// normalised-config path the executor itself takes).
func TestJobKeyInstrsNormalisation(t *testing.T) {
	base := core.DefaultConfig()
	overridden := keyFor(t, Job{Workload: "gcc", Config: base}, 20_000)

	direct := base
	direct.MaxInstrs = 20_000
	direct.MaxCycles = 0
	explicit := keyFor(t, Job{Workload: "gcc", Config: direct}, 0)
	if overridden != explicit {
		t.Fatalf("instruction-budget override and explicit budget disagree on the key")
	}
	if plain := keyFor(t, Job{Workload: "gcc", Config: base}, 0); plain == overridden {
		t.Fatalf("budget override did not change the key")
	}
}

// TestJobKeyMatchesEngineMemo ties the exported key to the executor: two jobs
// with equal keys coalesce into one simulation, two with different keys both
// simulate.
func TestJobKeyMatchesEngineMemo(t *testing.T) {
	cfg := core.DefaultConfig()
	other := cfg
	other.FTQEntries = 4

	eng := New(WithWorkers(1), WithInstrBudget(2_000))
	ctx := context.Background()
	jobs := []Job{
		{Name: "first", Workload: "gcc", Config: cfg},
		{Name: "relabelled", Workload: "gcc", Config: cfg},
		{Name: "first", Workload: "gcc", Config: other}, // colliding label, new knob
	}
	keys := make([]JobKey, len(jobs))
	for i, job := range jobs {
		keys[i] = keyFor(t, job, 2_000)
		if _, err := eng.Run(ctx, job); err != nil {
			t.Fatalf("run %q: %v", job.Name, err)
		}
	}
	if keys[0] != keys[1] || keys[0] == keys[2] {
		t.Fatalf("key relations wrong: %v vs %v vs %v", keys[0], keys[1], keys[2])
	}
	st := eng.Stats()
	if st.Simulations != 2 || st.CacheHits != 1 {
		t.Fatalf("engine memo disagrees with JobKey: %d simulations, %d hits (want 2, 1)", st.Simulations, st.CacheHits)
	}
}
