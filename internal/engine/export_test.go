package engine

// RaceEnabled re-exports raceEnabled to the external test package
// (engine_test), which exists so tests may import simtest — simtest's fuzz
// harness imports this package, and an internal test doing the same would be
// an import cycle.
const RaceEnabled = raceEnabled
