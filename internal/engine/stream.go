package engine

import (
	"context"
	"fmt"
	"iter"
	"runtime/debug"
	"sync"
)

// Stream executes every point of the plan and yields outcomes as each job
// completes (completion order, not enumeration order — each outcome carries
// its enumeration Index for callers that group or re-order). It is the v3
// primitive Sweep is built on, and the one that scales: the plan is expanded
// lazily with at most the worker-pool size of jobs in flight, so a
// million-point space streams through O(workers) memory.
//
// Lifecycle guarantees:
//   - Breaking out of the range loop cancels every outstanding job promptly
//     and reclaims all worker goroutines before the iterator returns.
//   - Per-job failures arrive as outcomes with Err set (the stream keeps
//     going, exactly like Sweep's per-outcome errors).
//   - A stream-level failure — ctx cancelled or expired, a malformed plan,
//     or a panicking job — is yielded once as a terminal (zero RunOutcome,
//     error) pair after which the iterator stops. Jobs not yet spawned at
//     cancellation are never started. A panic in a worker goroutine is
//     recovered and surfaced as that terminal error (with the panic value
//     and stack), never as a silent stop.
//
// Results are bit-identical whatever the worker count or consumption order:
// every job is deterministic in its memo key and duplicates coalesce.
func (e *Engine) Stream(ctx context.Context, p *Plan) iter.Seq2[RunOutcome, error] {
	return func(yield func(RunOutcome, error) bool) {
		if err := p.Err(); err != nil {
			yield(RunOutcome{}, err)
			return
		}
		parent := ctx
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		results := make(chan RunOutcome)
		// A panicking job must end the stream with a terminal error, not a
		// silent stop: the recovering goroutine records the first panic and
		// cancels the stream. The write is published to the consumer by the
		// results-channel close (wg.Done runs after the recover defer).
		var panicMu sync.Mutex
		var panicErr error
		// slots bounds in-flight jobs (spawned but not yet delivered) to the
		// worker-pool size: enumeration stays just ahead of execution instead
		// of materializing the plan.
		slots := make(chan struct{}, e.workers)
		go func() {
			var wg sync.WaitGroup
			for i, job := range p.Jobs() {
				// Checking Err first keeps the stop deterministic: once the
				// context dies, freed slots must not re-enter the select
				// coin-flip and expand more of the plan.
				stop := ctx.Err() != nil
				if !stop {
					select {
					case slots <- struct{}{}:
					case <-ctx.Done():
						stop = true
					}
				}
				if stop {
					break
				}
				wg.Add(1)
				go func(i int, job Job) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicErr == nil {
								panicErr = fmt.Errorf("engine: job %q panicked: %v\n%s", job.Name, r, debug.Stack())
							}
							panicMu.Unlock()
							cancel()
						}
					}()
					out := e.runJob(ctx, job)
					out.Index = i
					select {
					case results <- out:
					case <-ctx.Done():
						// Consumer broke out of the loop; the drain below
						// reaps us.
					}
					<-slots
				}(i, job)
			}
			wg.Wait()
			close(results)
		}()

		for out := range results {
			if !yield(out, nil) {
				// Early break: cancel outstanding jobs and drain until the
				// spawner closes the channel, so no goroutine leaks.
				cancel()
				for range results {
				}
				return
			}
		}
		panicMu.Lock()
		perr := panicErr
		panicMu.Unlock()
		if perr != nil {
			yield(RunOutcome{}, perr)
			return
		}
		if err := parent.Err(); err != nil {
			yield(RunOutcome{}, err)
		}
	}
}

// StreamJobs streams an explicit job slice: Stream(ctx, FromJobs(jobs...)).
func (e *Engine) StreamJobs(ctx context.Context, jobs []Job) iter.Seq2[RunOutcome, error] {
	return e.Stream(ctx, FromJobs(jobs...))
}
