package engine

// JobKey is the exported form of the engine's memo identity: an opaque,
// comparable value that is equal for two jobs exactly when the engine would
// memoise them together. The key covers the generated program's parameters
// (the workload identity, not its display name), the fully validated machine
// configuration, and the oracle seed — and nothing else. Display names,
// plan labels, and enumeration indices never participate, so two sweeps
// whose labels collide cannot share entries unless their resolved simulation
// points are genuinely identical, and two sweeps that label the same point
// differently always do.
//
// JobKey is what cross-sweep result caches key on (dist.Cache, the svc
// service's shared cache): a layer above the engine can prove "this exact
// simulation already ran" without re-running it.
type JobKey struct {
	key resultKey
}

// ResolveJob resolves a job exactly as the engine's executor does — display
// name and seed defaulted from the workload registry, configuration
// normalised under the given engine-wide instruction budget (0 leaves the
// job's own budget in place) and validated — and returns the resolved job
// alongside its memo identity. The returned job carries the resolved Name
// and Seed with the job's original Config; the key holds the validated
// configuration the simulation would actually run.
func ResolveJob(job Job, instrs uint64) (Job, JobKey, error) {
	job, params, err := resolve(job)
	if err != nil {
		return job, JobKey{}, err
	}
	cfg := job.Config
	if instrs != 0 {
		cfg.MaxInstrs = instrs
		cfg.MaxCycles = 0 // re-derive from MaxInstrs, as Engine.normalise does
	}
	if err := cfg.Validate(); err != nil {
		return job, JobKey{}, err
	}
	return job, JobKey{key: resultKey{params: params, cfg: cfg, seed: job.Seed}}, nil
}
