//go:build !race

package engine

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
