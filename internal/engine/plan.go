package engine

import (
	"fmt"
	"iter"

	"fdip/internal/core"
	"fdip/internal/workloads"
)

// NamedConfig pairs a display label with a full machine configuration — an
// explicit, named point of a parameter space.
type NamedConfig struct {
	Name   string
	Config core.Config
}

// Named builds a NamedConfig.
func Named(name string, cfg core.Config) NamedConfig {
	return NamedConfig{Name: name, Config: cfg}
}

// Axis is one dimension of a Plan's configuration space: an ordered list of
// points, each a label plus a Config mutation. Axes are built once (O(values)
// storage) and cross-multiplied lazily at enumeration time, so a Plan never
// materializes its point set.
type Axis struct {
	// name identifies the swept knob; labels hold each point's full
	// job-name segment ("ftq=8" for knob points, the bare point name for
	// Configs and baseline points).
	name   string
	labels []string
	apply  []func(*core.Config)
}

// Vary builds an axis that sweeps one configuration knob over vals: each
// point applies apply(cfg, v) and is labelled "name=value". The canonical
// use is a paper-style knob sweep:
//
//	engine.Vary("ftq", []int{1, 2, 4, 8}, func(c *core.Config, n int) { c.FTQEntries = n })
func Vary[T any](name string, vals []T, apply func(*core.Config, T)) Axis {
	a := Axis{name: name}
	for _, v := range vals {
		a.labels = append(a.labels, knobLabel(name, fmt.Sprint(v)))
		a.apply = append(a.apply, func(c *core.Config) { apply(c, v) })
	}
	return a
}

func knobLabel(name, val string) string {
	if name == "" {
		return val
	}
	return name + "=" + val
}

// Configs builds an axis of explicit full machines: each point replaces the
// plan's base configuration wholesale with the named Config. Because a
// Configs point overwrites everything, list it before any Vary axis that
// should perturb it.
func Configs(points ...NamedConfig) Axis {
	a := Axis{name: "config"}
	for _, p := range points {
		cfg := p.Config
		a.labels = append(a.labels, p.Name)
		a.apply = append(a.apply, func(c *core.Config) { *c = cfg })
	}
	return a
}

// Labeled returns a copy of the axis with the given point values relabelled
// (len must match), for sweeps whose values don't fmt.Sprint legibly (e.g.
// "4x8" stream-buffer geometries). Knob axes keep their "name=" prefix.
// Call it on the freshly built axis, before WithBaseline.
func (a Axis) Labeled(labels ...string) Axis {
	if len(labels) != len(a.labels) {
		panic(fmt.Sprintf("engine: Labeled(%d labels) on a %d-point axis", len(labels), len(a.labels)))
	}
	relabelled := make([]string, len(labels))
	for i, l := range labels {
		relabelled[i] = knobLabel(a.name, l)
	}
	a.labels = relabelled
	return a
}

// WithBaseline returns a copy of the axis with a full-config point prepended
// — the comparison baseline of a vs-baseline sweep. The baseline point
// replaces the base configuration wholesale (like a Configs point) and is
// labelled bare (no knob prefix).
func (a Axis) WithBaseline(label string, cfg core.Config) Axis {
	out := Axis{name: a.name}
	out.labels = append(append(out.labels, label), a.labels...)
	out.apply = append(append(out.apply, func(c *core.Config) { *c = cfg }), a.apply...)
	return out
}

// Len returns the number of points on the axis.
func (a Axis) Len() int { return len(a.labels) }

// Plan is a declarative, lazily expanded parameter space: a workload axis
// (Over) crossed with zero or more configuration axes (Axes: Vary knobs,
// Configs point lists) over a base machine, plus optional explicit jobs
// (Append). A Plan stores only its axes — O(workloads + axis values) — and
// enumerates Jobs on demand, so a million-point sweep never holds a
// million-entry slice: stream it with Engine.Stream, or collect it with
// Engine.Sweep when the result set is small enough to hold.
//
// Enumeration order is fixed and worker-count independent: workloads
// outermost (in Over order), then axes in declaration order with the last
// axis varying fastest, then appended jobs. Engine.Stream tags each outcome
// with its enumeration index, and RowCol recovers the (workload, config
// point) coordinates reporting layers group by.
type Plan struct {
	base  core.Config
	ws    []workloads.Workload
	axes  []Axis
	extra []Job
	err   error
}

// NewPlan starts a plan over the given base machine configuration.
func NewPlan(base core.Config) *Plan { return &Plan{base: base} }

// FromJobs wraps an explicit job slice as a Plan (its points are all
// "appended jobs"; Rows/Cols describe an empty cross product). It is the
// bridge from the v2 slice-of-jobs world: Sweep is exactly
// Stream(FromJobs(jobs...)) collected in job order.
func FromJobs(jobs ...Job) *Plan {
	return &Plan{extra: jobs}
}

// Over appends workloads to the workload axis. Off-registry workloads
// (hand-built Workload values with custom Params) behave identically to
// named ones: jobs carry the workload's params directly.
func (p *Plan) Over(ws ...workloads.Workload) *Plan {
	p.ws = append(p.ws, ws...)
	return p
}

// OverNames appends registry workloads by name; an unknown name poisons the
// plan (Err reports it, and Stream yields it as the terminal error).
func (p *Plan) OverNames(names ...string) *Plan {
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok && p.err == nil {
			p.err = fmt.Errorf("engine: plan: unknown workload %q", name)
		}
		p.ws = append(p.ws, w)
	}
	return p
}

// Set applies a fixed override to the base configuration (shared by every
// enumerated point that doesn't overwrite it with a Configs point).
func (p *Plan) Set(mutate func(*core.Config)) *Plan {
	mutate(&p.base)
	return p
}

// Axes appends configuration axes; the cross product of all axes (last
// varying fastest) forms the plan's configuration columns.
func (p *Plan) Axes(axes ...Axis) *Plan {
	p.axes = append(p.axes, axes...)
	return p
}

// Append adds explicit jobs after the cross product — named one-off points
// that don't fit an axis.
func (p *Plan) Append(jobs ...Job) *Plan {
	p.extra = append(p.extra, jobs...)
	return p
}

// Err reports a construction error (e.g. an unknown OverNames workload).
func (p *Plan) Err() error { return p.err }

// NumCols returns the size of the configuration cross product (1 when the
// plan has no axes: each workload runs the base machine once).
func (p *Plan) NumCols() int {
	n := 1
	for _, a := range p.axes {
		n *= a.Len()
	}
	return n
}

// NumRows returns the workload-axis length.
func (p *Plan) NumRows() int { return len(p.ws) }

// Points returns the total number of jobs the plan enumerates.
func (p *Plan) Points() int {
	n := 0
	if len(p.ws) > 0 {
		n = len(p.ws) * p.NumCols()
	}
	return n + len(p.extra)
}

// Rows returns the workload-axis labels (the reporting layer's group-by
// rows).
func (p *Plan) Rows() []string {
	rows := make([]string, len(p.ws))
	for i, w := range p.ws {
		rows[i] = w.Name
	}
	return rows
}

// Cols returns one label per configuration point: the axis point labels
// joined with "/" in enumeration order.
func (p *Plan) Cols() []string {
	cols := make([]string, 0, p.NumCols())
	var rec func(prefix string, ai int)
	rec = func(prefix string, ai int) {
		if ai == len(p.axes) {
			if prefix == "" {
				prefix = "base"
			}
			cols = append(cols, prefix)
			return
		}
		a := p.axes[ai]
		for i := 0; i < a.Len(); i++ {
			seg := a.labels[i]
			if prefix != "" {
				seg = prefix + "/" + seg
			}
			rec(seg, ai+1)
		}
	}
	rec("", 0)
	return cols
}

// RowCol recovers the (workload row, configuration column) coordinates of an
// enumeration index inside the cross product. Appended jobs are outside the
// grid: they report row == -1 and their offset in the extra list as col.
func (p *Plan) RowCol(index int) (row, col int) {
	grid := len(p.ws) * p.NumCols()
	if index >= grid {
		return -1, index - grid
	}
	return index / p.NumCols(), index % p.NumCols()
}

// Jobs enumerates the plan's points in order, yielding each job with its
// enumeration index. Expansion is lazy and O(1) per yielded job (the
// odometer and name scratch buffer are reused across points; only the job's
// name string is freshly allocated), so breaking early or streaming a huge
// plan never materializes the point set.
func (p *Plan) Jobs() iter.Seq2[int, Job] {
	return func(yield func(int, Job) bool) {
		idx := 0
		odo := make([]int, len(p.axes))
		buf := make([]byte, 0, 64)
		if p.NumCols() == 0 {
			// An empty axis empties the whole cross product.
			for i := range p.extra {
				if !yield(idx, p.extra[i]) {
					return
				}
				idx++
			}
			return
		}
		for wi := range p.ws {
			w := &p.ws[wi]
			clear(odo)
			for {
				cfg := p.base
				buf = append(buf[:0], w.Name...)
				for ai := range p.axes {
					a := &p.axes[ai]
					i := odo[ai]
					a.apply[i](&cfg)
					buf = append(buf, '/')
					buf = append(buf, a.labels[i]...)
				}
				job := Job{Name: string(buf), Config: cfg, Params: &w.Params, Seed: w.Seed}
				if !yield(idx, job) {
					return
				}
				idx++
				// Advance the odometer: last axis fastest.
				ai := len(p.axes) - 1
				for ; ai >= 0; ai-- {
					odo[ai]++
					if odo[ai] < p.axes[ai].Len() {
						break
					}
					odo[ai] = 0
				}
				if ai < 0 {
					break
				}
			}
		}
		for i := range p.extra {
			if !yield(idx, p.extra[i]) {
				return
			}
			idx++
		}
	}
}
