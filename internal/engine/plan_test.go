package engine

import (
	"slices"
	"testing"

	"fdip/internal/core"
	"fdip/internal/workloads"
)

// testPlan builds a 3-axis plan over the full workload suite whose point
// count exceeds 100k — the scale the laziness gate runs at.
func hugePlan() *Plan {
	ftqs := make([]int, 50)
	for i := range ftqs {
		ftqs[i] = i + 1
	}
	l1is := make([]int, 16)
	for i := range l1is {
		l1is[i] = (i + 1) * 4096
	}
	lats := make([]int, 16)
	for i := range lats {
		lats[i] = 10 * (i + 1)
	}
	return NewPlan(core.DefaultConfig()).
		Over(workloads.All()...).
		Axes(
			Vary("ftq", ftqs, func(c *core.Config, n int) { c.FTQEntries = n }),
			Vary("l1i", l1is, func(c *core.Config, n int) { c.L1ISizeBytes = n }),
			Vary("lat", lats, func(c *core.Config, n int) { c.Mem.MemLatency = n }),
		)
}

func TestPlanEnumerationOrderAndShape(t *testing.T) {
	gcc, _ := workloads.ByName("gcc")
	db, _ := workloads.ByName("deltablue")
	p := NewPlan(core.DefaultConfig()).
		Over(gcc, db).
		Axes(
			Vary("ftq", []int{4, 8}, func(c *core.Config, n int) { c.FTQEntries = n }),
			Configs(Named("none", core.DefaultConfig()), Named("fdp", func() core.Config {
				c := core.DefaultConfig()
				c.Prefetch.Kind = core.PrefetchFDP
				return c
			}())),
		)
	if got, want := p.Points(), 2*2*2; got != want {
		t.Fatalf("Points = %d, want %d", got, want)
	}
	if got, want := p.Rows(), []string{"gcc", "deltablue"}; !slices.Equal(got, want) {
		t.Errorf("Rows = %v", got)
	}
	if got, want := p.Cols(), []string{"ftq=4/none", "ftq=4/fdp", "ftq=8/none", "ftq=8/fdp"}; !slices.Equal(got, want) {
		t.Errorf("Cols = %v", got)
	}

	var names []string
	var idxs []int
	for i, job := range p.Jobs() {
		idxs = append(idxs, i)
		names = append(names, job.Name)
		// The Configs point overwrites the base wholesale, so the ftq knob
		// applied before it must be erased — and with it the FDP kind set.
		if job.Config.FTQEntries != core.DefaultConfig().FTQEntries {
			t.Errorf("job %q: Configs point did not overwrite FTQEntries", job.Name)
		}
		if job.Seed == 0 || job.Params == nil {
			t.Errorf("job %q: workload seed/params not carried", job.Name)
		}
	}
	wantNames := []string{
		"gcc/ftq=4/none", "gcc/ftq=4/fdp", "gcc/ftq=8/none", "gcc/ftq=8/fdp",
		"deltablue/ftq=4/none", "deltablue/ftq=4/fdp", "deltablue/ftq=8/none", "deltablue/ftq=8/fdp",
	}
	if !slices.Equal(names, wantNames) {
		t.Errorf("enumeration names = %v, want %v", names, wantNames)
	}
	for i, idx := range idxs {
		if i != idx {
			t.Fatalf("index %d yielded as %d", i, idx)
		}
		r, col := p.RowCol(idx)
		if r != i/4 || col != i%4 {
			t.Errorf("RowCol(%d) = (%d,%d), want (%d,%d)", idx, r, col, i/4, i%4)
		}
	}
}

func TestPlanKnobAxesCompose(t *testing.T) {
	gcc, _ := workloads.ByName("gcc")
	p := NewPlan(core.DefaultConfig()).
		Over(gcc).
		Axes(
			Vary("ftq", []int{2, 16}, func(c *core.Config, n int) { c.FTQEntries = n }),
			Vary("lat", []int{30, 70}, func(c *core.Config, n int) { c.Mem.MemLatency = n }),
		)
	var got [][2]int
	for _, job := range p.Jobs() {
		got = append(got, [2]int{job.Config.FTQEntries, job.Config.Mem.MemLatency})
	}
	want := [][2]int{{2, 30}, {2, 70}, {16, 30}, {16, 70}} // last axis fastest
	if !slices.Equal(got, want) {
		t.Errorf("knob cross product = %v, want %v", got, want)
	}
}

func TestPlanWithBaselineAndExtras(t *testing.T) {
	gcc, _ := workloads.ByName("gcc")
	base := core.DefaultConfig()
	base.Prefetch.Kind = core.PrefetchNone
	fdp := core.DefaultConfig()
	fdp.Prefetch.Kind = core.PrefetchFDP
	p := NewPlan(fdp).
		Over(gcc).
		Axes(Vary("ftq", []int{4, 8}, func(c *core.Config, n int) { c.FTQEntries = n }).
			WithBaseline("base", base)).
		Append(Job{Name: "extra", Workload: "perl", Config: core.DefaultConfig()})
	if got := p.Points(); got != 4 {
		t.Fatalf("Points = %d", got)
	}
	var kinds []core.PrefetcherKind
	var names []string
	for _, job := range p.Jobs() {
		kinds = append(kinds, job.Config.Prefetch.Kind)
		names = append(names, job.Name)
	}
	if want := []core.PrefetcherKind{core.PrefetchNone, core.PrefetchFDP, core.PrefetchFDP, ""}; !slices.Equal(kinds[:3], want[:3]) {
		t.Errorf("kinds = %v (baseline point must replace the base machine)", kinds)
	}
	if want := []string{"gcc/base", "gcc/ftq=4", "gcc/ftq=8", "extra"}; !slices.Equal(names, want) {
		t.Errorf("names = %v, want %v", names, want)
	}
	// Extras are outside the grid.
	if r, c := p.RowCol(3); r != -1 || c != 0 {
		t.Errorf("RowCol(extra) = (%d,%d), want (-1,0)", r, c)
	}
}

func TestPlanOverNamesUnknownPoisons(t *testing.T) {
	p := NewPlan(core.DefaultConfig()).OverNames("gcc", "hexray")
	if p.Err() == nil {
		t.Fatal("unknown workload name not reported")
	}
	var streamed int
	for _, err := range New(WithWorkers(1)).Stream(t.Context(), p) {
		streamed++
		if err == nil {
			t.Error("poisoned plan streamed a non-error")
		}
	}
	if streamed != 1 {
		t.Errorf("poisoned plan yielded %d pairs, want 1 terminal error", streamed)
	}
}

// TestPlanEnumerationLazyAllocs is the allocation gate for the laziness
// contract: enumerating a >100k-point space must allocate O(1) per yielded
// job (the name string) and O(axes) up front — never a materialized
// O(points) slice. A prefix walk of a huge plan must therefore cost the same
// as a prefix walk of a small one.
func TestPlanEnumerationLazyAllocs(t *testing.T) {
	p := hugePlan()
	if got := p.Points(); got < 100_000 {
		t.Fatalf("plan has %d points; the gate needs >= 100k", got)
	}

	// Walking only the first 100 points of the 100k-point space: if Jobs()
	// materialized the space, this would show ~2 allocs per *point*.
	const prefix = 100
	prefixAllocs := testing.AllocsPerRun(10, func() {
		n := 0
		for _, job := range p.Jobs() {
			_ = job
			n++
			if n == prefix {
				break
			}
		}
	})
	if prefixAllocs > 3*prefix {
		t.Errorf("prefix walk of %d jobs allocated %.0f times — enumeration is not lazy", prefix, prefixAllocs)
	}

	// Full enumeration: O(1) allocations per yielded job.
	points := p.Points()
	fullAllocs := testing.AllocsPerRun(2, func() {
		for _, job := range p.Jobs() {
			_ = job
		}
	})
	if perJob := fullAllocs / float64(points); perJob > 3 {
		t.Errorf("full enumeration allocated %.2f allocs/job over %d jobs, want O(1) (<= 3)", perJob, points)
	}
}
