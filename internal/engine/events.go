package engine

import (
	"fmt"
	"time"

	"fdip/internal/core"
)

// EventKind classifies a progress event.
type EventKind uint8

const (
	// EventJobStarted fires when a job's simulation actually begins
	// (after any queueing for a worker slot; memoised jobs never start).
	EventJobStarted EventKind = iota + 1
	// EventJobDone fires when a simulation completes successfully.
	EventJobDone
	// EventJobCached fires when a job is served from the memo cache or
	// merged into an identical in-flight simulation.
	EventJobCached
	// EventJobFailed fires when a job returns an error (including
	// cancellation).
	EventJobFailed
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventJobStarted:
		return "started"
	case EventJobDone:
		return "done"
	case EventJobCached:
		return "cached"
	case EventJobFailed:
		return "failed"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one typed progress notification. The engine serialises delivery,
// so sinks need no locking; Result points at the outcome's copy and must not
// be retained past the callback if the sink mutates it.
type Event struct {
	Kind EventKind
	// Job is the resolved job the event concerns.
	Job Job
	// Result is set on EventJobDone and EventJobCached.
	Result *core.Result
	// Err is set on EventJobFailed.
	Err error
	// Elapsed is wall time since the job was submitted (zero on
	// EventJobStarted).
	Elapsed time.Duration
}

// String renders a one-line summary suitable for log-style progress output.
func (ev Event) String() string {
	switch ev.Kind {
	case EventJobStarted:
		return fmt.Sprintf("%-10s %s", ev.Job.Name, ev.Kind)
	case EventJobFailed:
		return fmt.Sprintf("%-10s failed: %v", ev.Job.Name, ev.Err)
	default:
		return fmt.Sprintf("%-10s %-28s IPC %.3f (%s, %s)",
			ev.Job.Name, ev.Result.Prefetcher, ev.Result.IPC, ev.Kind, ev.Elapsed.Round(time.Millisecond))
	}
}
