package engine

import (
	"encoding/json"
	"io"
)

// BenchSnapshot is the machine-readable performance record cmd/fdipbench
// emits with -benchjson: one committed snapshot per PR (BENCH_PR<n>.json)
// forms the perf trajectory that keeps kernel-speed work honest across
// sessions. All rates are derived from engine Stats so the snapshot is
// consistent with the stderr summary.
type BenchSnapshot struct {
	// Timestamp is the RFC3339 completion time of the run.
	Timestamp string `json:"timestamp"`
	// GoVersion records the toolchain (runtime.Version()).
	GoVersion string `json:"go_version"`
	// Workers is the engine's worker-pool size; Instrs the committed-
	// instruction budget per simulation point.
	Workers int    `json:"workers"`
	Instrs  uint64 `json:"instrs_per_point"`
	// WallSeconds is the whole-suite wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// Engine snapshots the raw counters (simulations, cache hits, machine
	// pool traffic, simulated cycles and in-simulation seconds).
	Engine Stats `json:"engine"`
	// CyclesPerSec is the aggregate kernel speed: simulated cycles per
	// second of in-simulation wall time over every fresh simulation.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// PoolRecyclingRate is MachinesReused / (MachinesBuilt+MachinesReused):
	// the fraction of simulation points served by a reset recycled machine.
	PoolRecyclingRate float64 `json:"pool_recycling_rate"`
	// AllocsPerRun and AllocBytesPerRun are heap allocations (and bytes)
	// per fresh simulation across the whole process, measured via
	// runtime.MemStats deltas — the number the allocation gates bound.
	AllocsPerRun     float64 `json:"allocs_per_run"`
	AllocBytesPerRun float64 `json:"alloc_bytes_per_run"`
	// Experiments lists per-experiment wall times (experiments run
	// concurrently, so these overlap; each is the experiment's own
	// start-to-finish span).
	Experiments []ExperimentTime `json:"experiments"`
}

// ExperimentTime is one experiment's wall time inside a suite run.
type ExperimentTime struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Derive fills the snapshot's rate fields from its raw counters: the
// aggregate cycles/s, the pool recycling rate, and the per-run allocation
// figures given process-wide allocation deltas.
func (b *BenchSnapshot) Derive(mallocs, bytes uint64) {
	b.CyclesPerSec = b.Engine.CyclesPerSec()
	if total := b.Engine.MachinesBuilt + b.Engine.MachinesReused; total > 0 {
		b.PoolRecyclingRate = float64(b.Engine.MachinesReused) / float64(total)
	}
	if b.Engine.Simulations > 0 {
		b.AllocsPerRun = float64(mallocs) / float64(b.Engine.Simulations)
		b.AllocBytesPerRun = float64(bytes) / float64(b.Engine.Simulations)
	}
}

// WriteBenchJSON writes the snapshot as indented JSON.
func WriteBenchJSON(w io.Writer, b *BenchSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBenchJSON reads one snapshot, the inverse of WriteBenchJSON — the
// consumption side of the committed perf trajectory (fdipbench -trend).
func ReadBenchJSON(r io.Reader) (*BenchSnapshot, error) {
	var b BenchSnapshot
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}
