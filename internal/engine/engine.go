// Package engine is the concurrent simulation engine behind the public fdip
// API: a worker-pooled, memoising, context-aware executor for batches of
// simulation jobs.
//
// An Engine owns a bounded worker pool (a semaphore over actual
// simulations), a singleflight image cache (each distinct program.Params
// generates once, even under concurrent demand), and a singleflight result
// cache keyed on (program params, validated config, oracle seed). Identical
// jobs therefore simulate exactly once regardless of how many goroutines —
// or how many entries of one Sweep — request them, and every simulation is
// deterministic in its key, so results are bit-identical whether the pool
// runs one worker or many.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fdip/internal/core"
	"fdip/internal/oracle"
	"fdip/internal/program"
	"fdip/internal/workloads"
)

// Job names one simulation point: a machine configuration over a program
// (a named workload or explicit generation params) with an oracle seed.
// Exactly one of Workload and Params must be set.
type Job struct {
	// Name labels the job in outcomes and progress events. Defaulted to
	// the workload name (or a params digest) when empty.
	Name string `json:"name,omitempty"`
	// Config describes the simulated machine. It is validated (and its
	// zero fields defaulted) by the engine before running.
	Config core.Config `json:"config"`
	// Workload names a calibrated benchmark from the workloads package.
	Workload string `json:"workload,omitempty"`
	// Params generates a custom program instead of a named workload.
	Params *program.Params `json:"params,omitempty"`
	// Seed drives the oracle walker (branch outcomes). Zero means the
	// workload's calibrated seed, or 1 for Params jobs.
	Seed int64 `json:"seed,omitempty"`
}

// RunOutcome pairs a job with its result (or error) inside a sweep.
type RunOutcome struct {
	// Job is the job as resolved by the engine (name and seed filled in).
	Job Job `json:"job"`
	// Index is the job's position in the originating plan's enumeration
	// order (equivalently, its index in a Sweep's job slice). Stream
	// delivers outcomes in completion order; Index is what collectors and
	// reducers re-order or group by.
	Index int `json:"index"`
	// Result holds the measurements; zero-valued when Err is non-nil.
	Result core.Result `json:"result"`
	// Err is the job's failure, nil on success. (JSON encodes its
	// message; see export.go.)
	Err error `json:"-"`
	// Cached reports that the result was served from the memo cache (or
	// joined an in-flight identical simulation) rather than simulated anew.
	Cached bool `json:"cached"`
	// Elapsed is wall time spent obtaining the result.
	Elapsed time.Duration `json:"elapsed_ns"`
	// CyclesPerSec is the simulation throughput (simulated cycles per
	// second of simulation wall time, measured after a worker slot and
	// the program image were acquired) of a freshly simulated job — the
	// kernel-speed metric performance work tracks. Zero for cached or
	// failed outcomes.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Simulations counts actual (non-memoised) completed simulations.
	Simulations int `json:"simulations"`
	// CacheHits counts runs served from the result cache or merged into
	// an in-flight identical simulation.
	CacheHits int `json:"cache_hits"`
	// Failures counts runs that returned an error.
	Failures int `json:"failures"`
	// MachinesBuilt counts processor constructions; MachinesReused counts
	// checkouts served by the machine pool (a reset recycled machine). In a
	// steady-state sweep MachinesBuilt stays at the distinct-configuration
	// count while MachinesReused grows with the job count.
	MachinesBuilt  int `json:"machines_built"`
	MachinesReused int `json:"machines_reused"`
	// SimulatedCycles and SimSeconds aggregate, over all fresh simulations,
	// the simulated cycle counts and the wall time spent inside the
	// simulation proper — the fleet-wide numerator and denominator of
	// CyclesPerSec.
	SimulatedCycles int64   `json:"simulated_cycles"`
	SimSeconds      float64 `json:"sim_seconds"`
}

// CyclesPerSec returns the aggregate simulation throughput (simulated
// cycles per wall-clock second across every fresh simulation), or 0 before
// any simulation completes.
func (s Stats) CyclesPerSec() float64 {
	if s.SimSeconds <= 0 {
		return 0
	}
	return float64(s.SimulatedCycles) / s.SimSeconds
}

// Engine executes simulation jobs on a bounded worker pool with memoisation.
// All methods are safe for concurrent use.
type Engine struct {
	workers  int
	instrs   uint64
	progress func(Event)
	images   *ImageCache

	sem chan struct{}

	mu      sync.Mutex
	results map[resultKey]*resultCall
	stats   Stats

	// pools recycles processors per validated configuration (the machine
	// pool; see pool.go). The comparable Config value is the configuration
	// fingerprint, so lookup is a single O(1) map access, hoisted to once
	// per job.
	poolMu sync.Mutex
	pools  map[core.Config]*machinePool

	emitMu sync.Mutex
}

// resultKey identifies a memoisable simulation: the generated program, the
// validated machine configuration, and the oracle seed fully determine the
// Result.
type resultKey struct {
	params program.Params
	cfg    core.Config
	seed   int64
}

// resultCall is a singleflight slot: the leader simulates and closes done;
// followers wait on done (or their own context).
type resultCall struct {
	done chan struct{}
	res  core.Result
	// simDur is wall time spent inside the simulation proper (after the
	// worker slot and image were acquired) — the denominator of
	// RunOutcome.CyclesPerSec.
	simDur time.Duration
	err    error
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds concurrent simulations. n <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithInstrBudget overrides every job's committed-instruction budget
// (Config.MaxInstrs), re-deriving the cycle cap. Zero leaves job configs
// untouched.
func WithInstrBudget(n uint64) Option {
	return func(e *Engine) { e.instrs = n }
}

// WithProgress streams typed progress events to fn. The engine serialises
// calls, so fn needs no locking of its own. A nil fn disables progress.
func WithProgress(fn func(Event)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithImageCache shares a (possibly pre-warmed) image cache between engines.
// A nil cache leaves the engine's private cache in place.
func WithImageCache(c *ImageCache) Option {
	return func(e *Engine) {
		if c != nil {
			e.images = c
		}
	}
}

// New builds an engine. Defaults: GOMAXPROCS workers, per-job instruction
// budgets, no progress sink, a private image cache.
func New(opts ...Option) *Engine {
	e := &Engine{
		images:  NewImageCache(),
		results: make(map[resultKey]*resultCall),
		pools:   make(map[core.Config]*machinePool),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.sem = make(chan struct{}, e.workers)
	return e
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Images returns the engine's image cache (for sharing or pre-warming).
func (e *Engine) Images() *ImageCache { return e.images }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run executes one job, honouring ctx, and returns its measurements.
// Identical jobs (same program, config, and seed) are memoised.
func (e *Engine) Run(ctx context.Context, job Job) (core.Result, error) {
	out := e.runJob(ctx, job)
	return out.Result, out.Err
}

// Sweep executes every job, in parallel up to the worker bound, and returns
// one outcome per job in job order. Per-job failures land in the outcome's
// Err; Sweep itself only returns an error on a stream-level failure — ctx
// cancelled or expired, or a panicking job — in which case unfinished jobs
// carry that error. Results are independent of the worker count: each job is
// deterministic in its key and duplicates are coalesced by the memo cache.
//
// Sweep is the ordered collector over Stream: it materializes one outcome
// per job, so for spaces too large to hold, range over Stream with a Plan
// instead.
func (e *Engine) Sweep(ctx context.Context, jobs []Job) ([]RunOutcome, error) {
	outs := make([]RunOutcome, len(jobs))
	seen := make([]bool, len(jobs))
	var terminal error
	for out, err := range e.StreamJobs(ctx, jobs) {
		if err != nil {
			terminal = err // ctx death or a panicking job; unfinished jobs are filled below
			break
		}
		outs[out.Index] = out
		seen[out.Index] = true
	}
	if terminal == nil {
		terminal = ctx.Err()
	}
	if terminal != nil {
		for i, ok := range seen {
			if !ok {
				outs[i] = RunOutcome{Job: jobs[i], Index: i, Err: terminal}
			}
		}
		return outs, terminal
	}
	return outs, nil
}

// RunImage simulates cfg over an already-generated image. It takes a worker
// slot and honours ctx but is not memoised (an arbitrary image has no cache
// key). Machines still come from the per-configuration pool.
func (e *Engine) RunImage(ctx context.Context, cfg core.Config, im *program.Image, seed int64) (core.Result, error) {
	cfg = e.normalise(cfg)
	if err := cfg.Validate(); err != nil {
		return core.Result{}, err
	}
	mp := e.machinePoolFor(cfg)
	if err := e.acquire(ctx); err != nil {
		return core.Result{}, err
	}
	defer e.release()
	p, fresh, err := mp.get(im, oracle.NewWalker(im, seed))
	if err != nil {
		return core.Result{}, err
	}
	e.noteMachine(fresh)
	res, err := p.RunContext(ctx)
	mp.put(p)
	return res, err
}

// normalise applies the engine-wide instruction budget.
func (e *Engine) normalise(cfg core.Config) core.Config {
	if e.instrs != 0 {
		cfg.MaxInstrs = e.instrs
		cfg.MaxCycles = 0 // re-derive from MaxInstrs
	}
	return cfg
}

// resolve fills in a job's program params, seed, and display name.
func resolve(job Job) (Job, program.Params, error) {
	var params program.Params
	switch {
	case job.Workload != "" && job.Params != nil:
		return job, params, fmt.Errorf("engine: job %q sets both Workload and Params", job.Name)
	case job.Workload != "":
		w, ok := workloads.ByName(job.Workload)
		if !ok {
			return job, params, fmt.Errorf("engine: unknown workload %q", job.Workload)
		}
		params = w.Params
		if job.Seed == 0 {
			job.Seed = w.Seed
		}
		if job.Name == "" {
			job.Name = w.Name
		}
	case job.Params != nil:
		params = *job.Params
		if job.Seed == 0 {
			job.Seed = 1
		}
		if job.Name == "" {
			job.Name = fmt.Sprintf("params(funcs=%d,seed=%d)", params.NumFuncs, params.Seed)
		}
	default:
		return job, params, fmt.Errorf("engine: job %q names no program (set Workload or Params)", job.Name)
	}
	return job, params, nil
}

// runJob resolves, memoises, and executes one job.
func (e *Engine) runJob(ctx context.Context, job Job) RunOutcome {
	start := time.Now()
	fail := func(err error) RunOutcome {
		e.mu.Lock()
		e.stats.Failures++
		e.mu.Unlock()
		out := RunOutcome{Job: job, Err: err, Elapsed: time.Since(start)}
		e.emit(Event{Kind: EventJobFailed, Job: job, Err: err, Elapsed: out.Elapsed})
		return out
	}

	job, params, err := resolve(job)
	if err != nil {
		return fail(err)
	}
	cfg := e.normalise(job.Config)
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}
	key := resultKey{params: params, cfg: cfg, seed: job.Seed}
	// Resolve the machine pool once per job, next to the memo key: cfg is
	// the configuration fingerprint, and hoisting the lookup here keeps the
	// checkout inside simulate a single sync.Pool Get — O(1) per job with no
	// re-fingerprinting.
	mp := e.machinePoolFor(cfg)

	for {
		e.mu.Lock()
		call, follower := e.results[key]
		if !follower {
			call = &resultCall{done: make(chan struct{})}
			e.results[key] = call
		}
		e.mu.Unlock()

		if follower {
			select {
			case <-call.done:
			case <-ctx.Done():
				return fail(ctx.Err())
			}
			if call.err == nil {
				e.mu.Lock()
				e.stats.CacheHits++
				e.mu.Unlock()
				out := RunOutcome{Job: job, Result: call.res, Cached: true, Elapsed: time.Since(start)}
				e.emit(Event{Kind: EventJobCached, Job: job, Result: &out.Result, Elapsed: out.Elapsed})
				return out
			}
			// The leader failed on its own cancelled/expired context;
			// this caller's context is still live, so retry (the
			// failed entry has been removed, making us the new
			// leader unless someone else got there first).
			if isCtxErr(call.err) && ctx.Err() == nil {
				continue
			}
			return fail(call.err)
		}

		call.res, call.simDur, call.err = e.simulate(ctx, job, params, mp)
		e.mu.Lock()
		if call.err != nil {
			// Do not cache failures (a cancellation must not poison
			// the key for future runs with a live context).
			delete(e.results, key)
		} else {
			e.stats.Simulations++
			e.stats.SimulatedCycles += call.res.Cycles
			e.stats.SimSeconds += call.simDur.Seconds()
		}
		e.mu.Unlock()
		close(call.done)

		if call.err != nil {
			return fail(call.err)
		}
		out := RunOutcome{Job: job, Result: call.res, Elapsed: time.Since(start)}
		if s := call.simDur.Seconds(); s > 0 {
			out.CyclesPerSec = float64(out.Result.Cycles) / s
		}
		e.emit(Event{Kind: EventJobDone, Job: job, Result: &out.Result, Elapsed: out.Elapsed})
		return out
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// simulate checks a machine out of the job's pool (resetting a recycled one,
// constructing only on first use) and runs it under a worker slot. The
// machine is returned to the pool whatever the outcome — Reset restores
// pristine state even from a cancellation-abandoned run. The returned
// duration covers only the simulation proper (machine checkout and run),
// excluding the wait for a worker slot and image generation, so
// CyclesPerSec reflects kernel speed even when a sweep queues jobs.
func (e *Engine) simulate(ctx context.Context, job Job, params program.Params, mp *machinePool) (core.Result, time.Duration, error) {
	if err := e.acquire(ctx); err != nil {
		return core.Result{}, 0, err
	}
	defer e.release()
	im, err := e.images.Get(ctx, params)
	if err != nil {
		return core.Result{}, 0, err
	}
	e.emit(Event{Kind: EventJobStarted, Job: job})
	start := time.Now()
	p, fresh, err := mp.get(im, oracle.NewWalker(im, job.Seed))
	if err != nil {
		return core.Result{}, 0, err
	}
	e.noteMachine(fresh)
	res, err := p.RunContext(ctx)
	mp.put(p)
	return res, time.Since(start), err
}

// acquire takes a worker slot, abandoning the wait on cancellation.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// emit serialises progress-event delivery.
func (e *Engine) emit(ev Event) {
	if e.progress == nil {
		return
	}
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	e.progress(ev)
}

// ImageCache memoises program generation: each distinct params vector
// generates exactly once, even under concurrent demand (followers of an
// in-flight generation wait rather than duplicating the work). Safe for
// concurrent use and shareable between engines via WithImageCache.
type ImageCache struct {
	mu      sync.Mutex
	entries map[program.Params]*imageCall
}

type imageCall struct {
	done chan struct{}
	im   *program.Image
	err  error
}

// NewImageCache builds an empty cache.
func NewImageCache() *ImageCache {
	return &ImageCache{entries: make(map[program.Params]*imageCall)}
}

// Get returns the image for params, generating it on first use.
func (c *ImageCache) Get(ctx context.Context, params program.Params) (*program.Image, error) {
	c.mu.Lock()
	if call, ok := c.entries[params]; ok {
		c.mu.Unlock()
		select {
		case <-call.done:
			return call.im, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &imageCall{done: make(chan struct{})}
	c.entries[params] = call
	c.mu.Unlock()

	call.im, call.err = program.Generate(params)
	if call.err != nil {
		c.mu.Lock()
		delete(c.entries, params)
		c.mu.Unlock()
	}
	close(call.done)
	return call.im, call.err
}

// Len reports how many images the cache holds or is generating.
func (c *ImageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
