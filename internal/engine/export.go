package engine

import (
	"encoding/json"
	"io"
	"time"

	"fdip/internal/core"
)

// outcomeJSON is the wire form of RunOutcome: errors flatten to strings so
// downstream tooling gets machine-readable failures.
type outcomeJSON struct {
	Job          Job         `json:"job"`
	Index        int         `json:"index"`
	Result       core.Result `json:"result"`
	Error        string      `json:"error,omitempty"`
	Cached       bool        `json:"cached"`
	Elapsed      int64       `json:"elapsed_ns"`
	CyclesPerSec float64     `json:"cycles_per_sec,omitempty"`
}

// MarshalJSON encodes the outcome with its error (if any) as a string.
func (o RunOutcome) MarshalJSON() ([]byte, error) {
	j := outcomeJSON{Job: o.Job, Index: o.Index, Result: o.Result, Cached: o.Cached,
		Elapsed: int64(o.Elapsed), CyclesPerSec: o.CyclesPerSec}
	if o.Err != nil {
		j.Error = o.Err.Error()
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the wire form; a non-empty error string becomes a
// jsonError so Err survives a round trip.
func (o *RunOutcome) UnmarshalJSON(data []byte) error {
	var j outcomeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*o = RunOutcome{Job: j.Job, Index: j.Index, Result: j.Result, Cached: j.Cached,
		Elapsed: time.Duration(j.Elapsed), CyclesPerSec: j.CyclesPerSec}
	if j.Error != "" {
		o.Err = jsonError(j.Error)
	}
	return nil
}

type jsonError string

func (e jsonError) Error() string { return string(e) }

// WriteResultJSON writes one Result as indented JSON.
func WriteResultJSON(w io.Writer, res core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteOutcomesJSON writes sweep outcomes as an indented JSON array —
// the machine-readable form of a whole sweep for downstream tooling.
func WriteOutcomesJSON(w io.Writer, outs []RunOutcome) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(outs)
}
