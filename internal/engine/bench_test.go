package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestBenchSnapshotDeriveAndRoundTrip pins the perf-trajectory record: the
// derived rates follow from the raw counters, and the JSON form round-trips
// so trajectory tooling can diff BENCH_PR<n>.json files across PRs.
func TestBenchSnapshotDeriveAndRoundTrip(t *testing.T) {
	snap := BenchSnapshot{
		Timestamp:   "2026-07-28T00:00:00Z",
		GoVersion:   "go1.24",
		Workers:     8,
		Instrs:      1_000_000,
		WallSeconds: 12.5,
		Engine: Stats{
			Simulations:     40,
			CacheHits:       10,
			MachinesBuilt:   4,
			MachinesReused:  36,
			SimulatedCycles: 80_000_000,
			SimSeconds:      8,
		},
		Experiments: []ExperimentTime{{ID: "E2", WallSeconds: 3.25}},
	}
	snap.Derive(4_000_000, 400_000_000)

	if got, want := snap.CyclesPerSec, 1e7; got != want {
		t.Errorf("CyclesPerSec = %g, want %g", got, want)
	}
	if got, want := snap.PoolRecyclingRate, 0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("PoolRecyclingRate = %g, want %g", got, want)
	}
	if got, want := snap.AllocsPerRun, 100_000.0; got != want {
		t.Errorf("AllocsPerRun = %g, want %g", got, want)
	}
	if got, want := snap.AllocBytesPerRun, 1e7; got != want {
		t.Errorf("AllocBytesPerRun = %g, want %g", got, want)
	}

	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, &snap); err != nil {
		t.Fatalf("WriteBenchJSON: %v", err)
	}
	var back BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip diverged:\nin:  %+v\nout: %+v", snap, back)
	}

	// A snapshot with no simulations derives zero rates, not NaNs.
	var empty BenchSnapshot
	empty.Derive(123, 456)
	if empty.CyclesPerSec != 0 || empty.PoolRecyclingRate != 0 || empty.AllocsPerRun != 0 {
		t.Errorf("empty snapshot derived non-zero rates: %+v", empty)
	}
}
