package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fdip/internal/core"
	"fdip/internal/program"
	"fdip/internal/workloads"
)

// quickJobs builds a small cross-product sweep: two workloads x three
// prefetch schemes at a short budget.
func quickJobs() []Job {
	var jobs []Job
	for _, wl := range []string{"gcc", "deltablue"} {
		for _, kind := range []core.PrefetcherKind{core.PrefetchNone, core.PrefetchNextLine, core.PrefetchFDP} {
			cfg := core.DefaultConfig()
			cfg.Prefetch.Kind = kind
			jobs = append(jobs, Job{Workload: wl, Config: cfg})
		}
	}
	return jobs
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := quickJobs()
	run := func(workers int) []RunOutcome {
		e := New(WithWorkers(workers), WithInstrBudget(30_000))
		outs, err := e.Sweep(context.Background(), jobs)
		if err != nil {
			t.Fatalf("Sweep(workers=%d): %v", workers, err)
		}
		return outs
	}
	seq := run(1)
	par := run(8)
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("outcome counts: %d/%d, want %d", len(seq), len(par), len(jobs))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d errored: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Result != par[i].Result {
			t.Errorf("job %d (%s): results differ between workers=1 and workers=8",
				i, seq[i].Job.Name)
		}
	}
}

func TestRunMemoises(t *testing.T) {
	e := New(WithWorkers(2), WithInstrBudget(25_000))
	job := Job{Workload: "gcc", Config: core.DefaultConfig()}
	a, err := e.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoised result differs")
	}
	st := e.Stats()
	if st.Simulations != 1 {
		t.Errorf("Simulations = %d, want 1", st.Simulations)
	}
	if st.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", st.CacheHits)
	}
	// A different seed is a different run.
	job.Seed = 99
	if _, err := e.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Simulations; got != 2 {
		t.Errorf("Simulations after new seed = %d, want 2", got)
	}
}

func TestSweepCoalescesDuplicateJobs(t *testing.T) {
	job := Job{Workload: "deltablue", Config: core.DefaultConfig()}
	jobs := []Job{job, job, job, job}
	e := New(WithWorkers(4), WithInstrBudget(25_000))
	outs, err := e.Sweep(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("outcome error: %v", o.Err)
		}
		if o.Cached {
			cached++
		}
	}
	if got := e.Stats().Simulations; got != 1 {
		t.Errorf("Simulations = %d, want 1 (duplicates must coalesce)", got)
	}
	if cached != 3 {
		t.Errorf("cached outcomes = %d, want 3", cached)
	}
}

func TestContextCancellationPrompt(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 1 << 40 // effectively unbounded
	ctx, cancel := context.WithCancel(context.Background())
	e := New(WithWorkers(1))
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, Job{Workload: "gcc", Config: cfg})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}
}

func TestSweepCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(WithWorkers(2))
	outs, err := e.Sweep(ctx, quickJobs())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep err = %v, want context.Canceled", err)
	}
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("outcome %d err = %v, want context.Canceled", i, o.Err)
		}
	}
	// A cancelled run must not poison the cache for a live context.
	outs, err = e.Sweep(context.Background(), quickJobs()[:1])
	if err != nil || outs[0].Err != nil {
		t.Fatalf("post-cancel sweep failed: %v / %v", err, outs[0].Err)
	}
}

func TestFollowerSurvivesLeaderCancellation(t *testing.T) {
	// A follower with a live context must not inherit the leader's
	// context error: when the leader's deadline expires mid-simulation,
	// the follower retries as the new leader.
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 1_000_000
	job := Job{Workload: "deltablue", Config: cfg}
	e := New(WithWorkers(1))

	leaderCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Run(leaderCtx, job)
		leaderErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the leader claim the key

	res, err := e.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("follower with live context failed: %v", err)
	}
	if res.Committed < cfg.MaxInstrs {
		t.Errorf("follower committed %d", res.Committed)
	}
	if lerr := <-leaderErr; lerr != nil && !errors.Is(lerr, context.DeadlineExceeded) {
		t.Errorf("leader err = %v", lerr)
	}
}

func TestJobValidation(t *testing.T) {
	e := New(WithWorkers(1), WithInstrBudget(10_000))
	ctx := context.Background()
	p := program.DefaultParams()
	cases := []struct {
		name string
		job  Job
	}{
		{"no program", Job{Config: core.DefaultConfig()}},
		{"both programs", Job{Workload: "gcc", Params: &p, Config: core.DefaultConfig()}},
		{"unknown workload", Job{Workload: "hexray", Config: core.DefaultConfig()}},
		{"bad config", Job{Workload: "gcc", Config: func() core.Config {
			c := core.DefaultConfig()
			c.Prefetch.Kind = "hexray"
			return c
		}()}},
	}
	for _, tc := range cases {
		if _, err := e.Run(ctx, tc.job); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if got := e.Stats().Failures; got != len(cases) {
		t.Errorf("Failures = %d, want %d", got, len(cases))
	}
}

func TestRunImageMatchesParamsJob(t *testing.T) {
	params := program.DefaultParams()
	params.NumFuncs = 80
	params.Seed = 21
	im, err := program.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 25_000
	e := New(WithWorkers(2))
	direct, err := e.RunImage(context.Background(), cfg, im, 7)
	if err != nil {
		t.Fatal(err)
	}
	viaJob, err := e.Run(context.Background(), Job{Params: &params, Seed: 7, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaJob {
		t.Error("RunImage and params-job results diverge for the same machine and seed")
	}
}

func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventKind]int{}
	e := New(WithWorkers(4), WithInstrBudget(20_000), WithProgress(func(ev Event) {
		mu.Lock()
		counts[ev.Kind]++
		mu.Unlock()
		if ev.Kind == EventJobDone && ev.Result == nil {
			t.Error("EventJobDone without a result")
		}
		_ = ev.String() // must not panic for any kind
	}))
	job := Job{Workload: "go", Config: core.DefaultConfig()}
	if _, err := e.Sweep(context.Background(), []Job{job, job}); err != nil {
		t.Fatal(err)
	}
	if counts[EventJobStarted] != 1 || counts[EventJobDone] != 1 || counts[EventJobCached] != 1 {
		t.Errorf("event counts = %v, want one started, one done, one cached", counts)
	}
}

func TestImageCacheSingleflight(t *testing.T) {
	c := NewImageCache()
	params := workloads.All()[0].Params
	const callers = 8
	images := make([]*program.Image, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			im, err := c.Get(context.Background(), params)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			images[i] = im
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if images[i] != images[0] {
			t.Fatal("concurrent Get returned distinct images for one params vector")
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
}

func TestOutcomesJSONRoundTrip(t *testing.T) {
	e := New(WithWorkers(2), WithInstrBudget(20_000))
	jobs := []Job{
		{Workload: "gcc", Config: core.DefaultConfig()},
		{Workload: "hexray", Config: core.DefaultConfig()}, // fails
	}
	outs, err := e.Sweep(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOutcomesJSON(&buf, outs); err != nil {
		t.Fatalf("WriteOutcomesJSON: %v", err)
	}
	var back []RunOutcome
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip decode: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d outcomes", len(back))
	}
	if back[0].Result != outs[0].Result {
		t.Error("result did not survive the JSON round trip")
	}
	if back[1].Err == nil || !strings.Contains(back[1].Err.Error(), "hexray") {
		t.Errorf("error did not survive the JSON round trip: %v", back[1].Err)
	}

	var rbuf bytes.Buffer
	if err := WriteResultJSON(&rbuf, outs[0].Result); err != nil {
		t.Fatalf("WriteResultJSON: %v", err)
	}
	if !strings.Contains(rbuf.String(), "\"IPC\"") {
		t.Error("result JSON missing IPC field")
	}
}
