package engine

import (
	"sync"

	"fdip/internal/core"
	"fdip/internal/oracle"
	"fdip/internal/program"
)

// machinePool recycles core.Processors for one exact validated
// configuration. Construction is the expensive part of a simulation point
// (caches, predictor tables, the FTQ and ROB — megabytes of backing arrays
// per machine), and the layer-wide Reset contract makes a recycled machine
// observationally identical to a fresh one, so sweeps check machines out,
// reset them onto the next job's image and oracle stream, and return them
// instead of constructing per job.
//
// The pool is two-tier. The resident slot holds exactly one idle machine by
// ordinary pointer, immune to sync.Pool's per-GC eviction: streamed plans
// deal same-config points round-robin, spacing reuses far enough apart that
// a GC between them used to evict the pooled machine and force a rebuild
// (machines_built 66 -> 103 in BENCH_PR5). One GC-proof slot per
// configuration bounds that loss to the overflow tier, which stays
// sync.Pool-backed so surplus idle machines of concurrent sweeps are still
// dropped under memory pressure rather than pinned forever.
type machinePool struct {
	// cfg is the validated configuration every pooled machine was built
	// with. It is the pool's identity: machines of different shapes must
	// never mix, so the engine keys its pools by the full comparable Config
	// value — the configuration fingerprint.
	cfg core.Config

	// resident is the bounded eviction-resistant slot (nil when empty).
	mu       sync.Mutex
	resident *core.Processor

	// pool is the overflow tier for concurrent checkouts beyond the slot.
	pool sync.Pool
}

// get checks out a machine for (im, stream), resetting a recycled one or
// constructing on first use. fresh reports which path was taken (for the
// engine's machine counters and the steady-state zero-allocation gate).
func (mp *machinePool) get(im *program.Image, stream oracle.Stream) (p *core.Processor, fresh bool, err error) {
	mp.mu.Lock()
	p, mp.resident = mp.resident, nil
	mp.mu.Unlock()
	if p == nil {
		if v := mp.pool.Get(); v != nil {
			p = v.(*core.Processor)
		}
	}
	if p != nil {
		p.Reset(im, stream)
		return p, false, nil
	}
	p, err = core.New(mp.cfg, im, stream)
	return p, true, err
}

// put returns a machine to the pool, preferring the eviction-resistant slot.
// The machine may be in any state — including a run abandoned mid-flight by
// cancellation — because get resets it before the next checkout.
func (mp *machinePool) put(p *core.Processor) {
	mp.mu.Lock()
	if mp.resident == nil {
		mp.resident = p
		mp.mu.Unlock()
		return
	}
	mp.mu.Unlock()
	mp.pool.Put(p)
}

// machinePoolFor returns the machine pool for the validated configuration,
// creating it on first use. Callers hoist this lookup to once per job (it is
// the config-fingerprint resolution step) and hold the returned handle, so
// the per-checkout path is a single sync.Pool Get with no map access.
func (e *Engine) machinePoolFor(cfg core.Config) *machinePool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	mp, ok := e.pools[cfg]
	if !ok {
		mp = &machinePool{cfg: cfg}
		e.pools[cfg] = mp
	}
	return mp
}

// noteMachine records a checkout in the engine counters.
func (e *Engine) noteMachine(fresh bool) {
	e.mu.Lock()
	if fresh {
		e.stats.MachinesBuilt++
	} else {
		e.stats.MachinesReused++
	}
	e.mu.Unlock()
}
