//go:build race

package engine

// raceEnabled reports that this test binary was built with -race, under
// which sync.Pool deliberately drops a fraction of Puts to shake out
// lifetime bugs — making strict pool-reuse counters unmeasurable.
const raceEnabled = true
