package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fdip/internal/core"
	"fdip/internal/workloads"
)

// streamTestPlan is a small mixed plan (2 workloads x 3 schemes).
func streamTestPlan() *Plan {
	gcc, _ := workloads.ByName("gcc")
	db, _ := workloads.ByName("deltablue")
	return NewPlan(core.DefaultConfig()).
		Over(gcc, db).
		Axes(Configs(
			Named("none", core.DefaultConfig()),
			Named("nextline", func() core.Config {
				c := core.DefaultConfig()
				c.Prefetch.Kind = core.PrefetchNextLine
				return c
			}()),
			Named("fdp", func() core.Config {
				c := core.DefaultConfig()
				c.Prefetch.Kind = core.PrefetchFDP
				return c
			}()),
		))
}

// TestStreamMatchesSweep pins the collector equivalence: collecting Stream
// by outcome Index reproduces Sweep's job-ordered outcomes bit-identically,
// whatever the worker count.
func TestStreamMatchesSweep(t *testing.T) {
	jobs := quickJobs()
	ref, err := New(WithWorkers(1), WithInstrBudget(30_000)).Sweep(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		e := New(WithWorkers(workers), WithInstrBudget(30_000))
		outs := make([]RunOutcome, len(jobs))
		seen := 0
		for out, err := range e.StreamJobs(context.Background(), jobs) {
			if err != nil {
				t.Fatalf("workers=%d: stream error: %v", workers, err)
			}
			if out.Err != nil {
				t.Fatalf("workers=%d: job %s: %v", workers, out.Job.Name, out.Err)
			}
			outs[out.Index] = out
			seen++
		}
		if seen != len(jobs) {
			t.Fatalf("workers=%d: streamed %d outcomes, want %d", workers, seen, len(jobs))
		}
		for i := range jobs {
			if outs[i].Result != ref[i].Result {
				t.Errorf("workers=%d job %d (%s): stream result differs from 1-worker Sweep",
					workers, i, outs[i].Job.Name)
			}
		}
	}
}

// TestStreamEarlyBreakStopsWorkers verifies that breaking out of the range
// loop cancels outstanding jobs promptly: once the iterator returns, the
// engine has stopped simulating and the spawner never expands the rest of
// the plan — a 10k-point plan of real simulations unwinds after one
// delivery in test time, not sweep time.
func TestStreamEarlyBreakStopsWorkers(t *testing.T) {
	gcc, _ := workloads.ByName("gcc")
	ftqs := make([]int, 10_000)
	for i := range ftqs {
		ftqs[i] = 4 + i // all distinct: no memo coalescing
	}
	p := NewPlan(core.DefaultConfig()).Over(gcc).
		Axes(Vary("ftq", ftqs, func(c *core.Config, n int) { c.FTQEntries = n }))
	e := New(WithWorkers(2), WithInstrBudget(20_000))

	delivered := 0
	for out, err := range e.Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("first delivery failed: %v / %v", err, out.Err)
		}
		delivered++
		break
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	// The iterator returned, which per the contract means every outstanding
	// goroutine was reaped: only the bounded in-flight window may have
	// simulated, and nothing keeps running afterwards.
	st := e.Stats()
	if limit := 2*e.Workers() + 2; st.Simulations > limit {
		t.Errorf("%d simulations ran before the break unwound (in-flight bound %d)", st.Simulations, limit)
	}
	time.Sleep(150 * time.Millisecond)
	if st2 := e.Stats(); st2.Simulations != st.Simulations {
		t.Errorf("engine kept simulating after break: %d -> %d", st.Simulations, st2.Simulations)
	}
}

// TestStreamCancelTerminatesUnboundedJob pins prompt cancellation while the
// consumer is blocked waiting for a delivery that will never come: the only
// job is effectively unbounded, so the stream must unwind via the in-flight
// job's RunContext cancellation, not by waiting out the 2^40-instruction
// budget.
func TestStreamCancelTerminatesUnboundedJob(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 1 << 40
	e := New(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for out, err := range e.StreamJobs(ctx, []Job{{Workload: "gcc", Config: cfg}}) {
			if err == nil && out.Err == nil {
				t.Error("unbounded job reported success")
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the job start simulating
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not unwind after mid-simulation cancellation")
	}
}

// TestStreamMidCancellation cancels the context while the stream is being
// consumed: in-flight jobs stop promptly, the stream yields a terminal
// context error, and jobs never spawned are never started.
func TestStreamMidCancellation(t *testing.T) {
	gcc, _ := workloads.ByName("gcc")
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 1 << 40
	seeds := make([]int, 64)
	for i := range seeds {
		seeds[i] = i
	}
	p := NewPlan(cfg).Over(gcc).
		Axes(Vary("ftq", seeds, func(c *core.Config, n int) { c.FTQEntries = 8 + n }))
	e := New(WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	var terminal error
	perJobCtxErrs := 0
	for out, err := range e.Stream(ctx, p) {
		if err != nil {
			terminal = err
			continue
		}
		if errors.Is(out.Err, context.Canceled) {
			perJobCtxErrs++
		}
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Errorf("terminal stream error = %v, want context.Canceled", terminal)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %s to unwind the stream", elapsed)
	}
	// Only the in-flight window (bounded by the worker count) may have been
	// spawned and cancelled; the rest of the 64-point plan stays unexpanded.
	if perJobCtxErrs > 2*e.Workers()+2 {
		t.Errorf("%d cancelled job outcomes streamed; in-flight work was not bounded (workers=%d)",
			perJobCtxErrs, e.Workers())
	}
	if st := e.Stats(); st.Simulations != 0 {
		t.Errorf("unbounded jobs completed %d simulations", st.Simulations)
	}
}

// TestStreamPerJobFailuresKeepStreaming: a failing job is one outcome among
// many, not a stream abort.
func TestStreamPerJobFailuresKeepStreaming(t *testing.T) {
	jobs := []Job{
		{Workload: "gcc", Config: core.DefaultConfig()},
		{Workload: "hexray", Config: core.DefaultConfig()}, // unknown: fails
		{Workload: "deltablue", Config: core.DefaultConfig()},
	}
	e := New(WithWorkers(2), WithInstrBudget(20_000))
	got := make([]RunOutcome, len(jobs))
	n := 0
	for out, err := range e.StreamJobs(context.Background(), jobs) {
		if err != nil {
			t.Fatalf("stream-level error for a per-job failure: %v", err)
		}
		got[out.Index] = out
		n++
	}
	if n != len(jobs) {
		t.Fatalf("streamed %d outcomes, want %d", n, len(jobs))
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Error("unknown workload did not fail")
	}
}

// TestStreamPanicSurfacesAsTerminalError pins the panic contract: a panic in
// a worker goroutine (here injected through the progress sink, which runJob
// invokes on the worker's stack) must surface as the stream's terminal error
// — with the panic value in the message — instead of a hang or a silent
// stop, and Sweep must propagate the same error.
func TestStreamPanicSurfacesAsTerminalError(t *testing.T) {
	jobs := []Job{
		{Workload: "gcc", Config: core.DefaultConfig()},
		{Workload: "deltablue", Config: core.DefaultConfig()},
	}
	newEngine := func() *Engine {
		return New(WithWorkers(2), WithInstrBudget(5_000), WithProgress(func(ev Event) {
			if ev.Kind == EventJobStarted && ev.Job.Name == "gcc" {
				panic("injected progress-sink panic")
			}
		}))
	}

	done := make(chan struct{})
	var terminal error
	go func() {
		defer close(done)
		for _, err := range newEngine().StreamJobs(context.Background(), jobs) {
			if err != nil {
				terminal = err
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream hung instead of surfacing the worker panic")
	}
	if terminal == nil {
		t.Fatal("panicking job streamed to completion with no terminal error (silent stop)")
	}
	if !strings.Contains(terminal.Error(), "injected progress-sink panic") {
		t.Errorf("terminal error %q does not carry the panic value", terminal)
	}

	if _, err := newEngine().Sweep(context.Background(), jobs); err == nil ||
		!strings.Contains(err.Error(), "injected progress-sink panic") {
		t.Errorf("Sweep error = %v, want the propagated panic", err)
	}
}

// TestStreamPlanGrid streams a full plan and checks the RowCol bookkeeping
// lines up with per-job configs.
func TestStreamPlanGrid(t *testing.T) {
	p := streamTestPlan()
	e := New(WithWorkers(4), WithInstrBudget(20_000))
	kinds := [][]core.PrefetcherKind{
		make([]core.PrefetcherKind, 3), make([]core.PrefetcherKind, 3),
	}
	for out, err := range e.Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("stream: %v / %v", err, out.Err)
		}
		r, c := p.RowCol(out.Index)
		kinds[r][c] = out.Job.Config.Prefetch.Kind
	}
	for r := range kinds {
		want := []core.PrefetcherKind{core.PrefetchNone, core.PrefetchNextLine, core.PrefetchFDP}
		for c := range kinds[r] {
			if kinds[r][c] != want[c] {
				t.Errorf("grid cell (%d,%d) ran %q, want %q", r, c, kinds[r][c], want[c])
			}
		}
	}
}
