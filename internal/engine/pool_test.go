package engine_test

import (
	"context"
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/simtest"
)

// poolGrid builds a job mix that forces heavy machine reuse: few distinct
// configurations, many (workload, seed) points each.
func poolGrid(instrs uint64) []engine.Job {
	base := core.DefaultConfig()
	base.MaxInstrs = instrs
	fdp := base
	fdp.Prefetch.Kind = core.PrefetchFDP
	nl := base
	nl.Prefetch.Kind = core.PrefetchNextLine
	var jobs []engine.Job
	for _, cfg := range []core.Config{base, fdp, nl} {
		for _, wl := range []string{"gcc", "perl"} {
			for seed := int64(1); seed <= 3; seed++ {
				jobs = append(jobs, engine.Job{Config: cfg, Workload: wl, Seed: seed})
			}
		}
	}
	return jobs
}

// TestEnginePooledResetMatchesFresh is the engine end of the differential
// harness: results served through the engine's machine pool must be
// DeepEqual to a machine constructed from scratch for the same triple.
func TestEnginePooledResetMatchesFresh(t *testing.T) {
	e := engine.New(engine.WithWorkers(2))
	ctx := context.Background()
	for _, tr := range simtest.Grid() {
		// Dirty the pool first with a different point of the same config.
		dirty := simtest.DirtyVariant(tr)
		if _, err := e.Run(ctx, engine.Job{Config: dirty.Config, Workload: dirty.Workload, Seed: dirty.Seed}); err != nil {
			t.Fatalf("%s dirty: %v", tr.Name, err)
		}
		got, err := e.Run(ctx, engine.Job{Config: tr.Config, Workload: tr.Workload, Seed: tr.Seed})
		if err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		if want := simtest.FreshResult(t, tr); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: engine (pooled) result differs from fresh machine\npooled: %+v\nfresh:  %+v", tr.Name, got, want)
		}
	}
	// Under -race, sync.Pool drops Puts at random by design, so reuse is
	// not guaranteed there (the non-race CI steps enforce it).
	if st := e.Stats(); st.MachinesReused == 0 && !engine.RaceEnabled {
		t.Errorf("pool never reused a machine (built %d, reused %d); the differential ran against fresh machines only", st.MachinesBuilt, st.MachinesReused)
	}
}

// TestSweepPooledBitIdenticalAcrossWorkers runs the reuse-heavy grid at
// workers=1 and workers=8 and requires bit-identical outcomes. Machines are
// checked out, reset, and returned in racy interleavings at 8 workers, so
// (with the engine package's -race CI pass) this is the pool's concurrency
// proof.
func TestSweepPooledBitIdenticalAcrossWorkers(t *testing.T) {
	jobs := poolGrid(20_000)
	ctx := context.Background()
	ref, err := engine.New(engine.WithWorkers(1)).Sweep(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	e8 := engine.New(engine.WithWorkers(8))
	outs, err := e8.Sweep(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].Err != nil {
			t.Fatalf("workers=8 job %d (%s): %v", i, outs[i].Job.Name, outs[i].Err)
		}
		if !reflect.DeepEqual(ref[i].Result, outs[i].Result) {
			t.Errorf("job %d (%s seed %d): workers=8 result differs from workers=1", i, outs[i].Job.Name, outs[i].Job.Seed)
		}
	}
	st := e8.Stats()
	// A total pooling regression means every simulation builds its own
	// machine. Concurrency makes a few extra builds legitimate (workers can
	// miss the pool simultaneously), and -race drops Puts at random, so the
	// guard is reuse-happened rather than an exact build count.
	if st.MachinesReused == 0 && !engine.RaceEnabled {
		t.Errorf("built %d machines for %d simulations with zero reuse; pool is not recycling", st.MachinesBuilt, st.Simulations)
	}
	if st.MachinesBuilt+st.MachinesReused != st.Simulations {
		t.Errorf("checkout accounting: built %d + reused %d != %d simulations", st.MachinesBuilt, st.MachinesReused, st.Simulations)
	}
}

// TestStreamRecyclingSurvivesGC pins the fix for the PR 5 recycling
// regression: streamed round-robin plans space same-config points apart, and
// sync.Pool's per-GC eviction meant each arrival could rebuild the machine
// (machines_built 66 -> 103 in BENCH_PR5). The bounded eviction-resistant
// slot must keep exactly one idle machine per configuration alive through
// arbitrary GC pressure, so a reuse-heavy round-robin stream builds exactly
// one machine per distinct configuration even with forced GCs between every
// delivery. The resident slot is an ordinary pointer, so unlike the
// sync.Pool tier this guarantee holds under -race too.
func TestStreamRecyclingSurvivesGC(t *testing.T) {
	base := core.DefaultConfig()
	fdp := base
	fdp.Prefetch.Kind = core.PrefetchFDP
	nl := base
	nl.Prefetch.Kind = core.PrefetchNextLine
	cfgs := []core.Config{base, fdp, nl}
	// Round-robin order — config varies fastest — exactly the streamed
	// interleaving that defeated the bare sync.Pool.
	var jobs []engine.Job
	for seed := int64(1); seed <= 6; seed++ {
		for _, cfg := range cfgs {
			jobs = append(jobs, engine.Job{Config: cfg, Workload: "gcc", Seed: seed})
		}
	}
	e := engine.New(engine.WithWorkers(1), engine.WithInstrBudget(5_000))
	for out, err := range e.StreamJobs(context.Background(), jobs) {
		if err != nil || out.Err != nil {
			t.Fatalf("stream: %v / %v", err, out.Err)
		}
		// Two cycles: sync.Pool's victim cache survives one collection, so a
		// single GC would not have reproduced the regression reliably.
		runtime.GC()
		runtime.GC()
	}
	if st := e.Stats(); st.MachinesBuilt != len(cfgs) {
		t.Errorf("machines_built = %d over a %d-config round-robin stream under GC pressure; want exactly %d (the eviction-resistant slot is not holding)",
			st.MachinesBuilt, len(cfgs), len(cfgs))
	}
}

// TestSweepSteadyStateZeroAlloc gates the pooling payoff: once the pool is
// warm, repeatedly sweeping new points of a known configuration performs no
// machine construction — the engine's per-job allocations drop to job
// bookkeeping (an oracle walker, memo entries, outcome records), orders of
// magnitude below the ~9MB machine build. CI runs this test in the
// allocation-regression gate.
func TestSweepSteadyStateZeroAlloc(t *testing.T) {
	if engine.RaceEnabled {
		t.Skip("sync.Pool drops Puts at random under -race; the allocation gate runs in the non-race CI step")
	}
	e := engine.New(engine.WithWorkers(1))
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 2_000
	cfg.Prefetch.Kind = core.PrefetchFDP
	ctx := context.Background()

	// Warm-up: build the one machine and generate the image.
	if _, err := e.Run(ctx, engine.Job{Config: cfg, Workload: "gcc", Seed: 1}); err != nil {
		t.Fatal(err)
	}

	// sync.Pool empties under GC; disable collection so the measurement
	// observes the pool's steady state rather than GC timing.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	seed := int64(100)
	var runErr error
	avg := testing.AllocsPerRun(10, func() {
		seed++ // a fresh memo key every run: each run truly simulates
		if _, err := e.Run(ctx, engine.Job{Config: cfg, Workload: "gcc", Seed: seed}); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	st := e.Stats()
	if st.MachinesBuilt != 1 {
		t.Errorf("steady-state sweep built %d machines; want exactly 1 (construction must be pooled away)", st.MachinesBuilt)
	}
	if st.MachinesReused < 11 {
		t.Errorf("machines reused = %d; want >= 11 (one per measured run)", st.MachinesReused)
	}
	t.Logf("steady-state Run: %.1f allocs/run (machines built %d, reused %d)", avg, st.MachinesBuilt, st.MachinesReused)
	// Per-run bookkeeping (walker maps, memo entry, outcome) is ~tens of
	// allocations; machine construction alone is far beyond this bound.
	if avg > 150 {
		t.Errorf("steady-state Run allocates %.0f objects; want <= 150 (machine construction is leaking back in)", avg)
	}
}
