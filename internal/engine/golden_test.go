package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"fdip/internal/core"
	"fdip/internal/prefetch"
)

// goldenChecksum is the FNV-64a digest of the full %+v rendering of the
// Result for the fixed (config, workload, seed) triple below, recorded when
// the event-scheduled cycle kernel landed. Simulation is pure deterministic
// arithmetic, so this value must never drift — across runs, worker counts,
// or future kernel optimisations. If an intentional model change shifts it,
// re-record the constant in the same commit and say so loudly in the commit
// message; an unintentional shift is a determinism regression.
const goldenChecksum = 0x47bbeda2da5f243e

func goldenJob() Job {
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 150_000
	cfg.Prefetch.Kind = core.PrefetchFDP
	cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	return Job{Workload: "gcc", Config: cfg} // seed resolves to gcc's calibrated seed
}

func resultChecksum(res core.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", res)
	return h.Sum64()
}

// TestGoldenResultChecksum pins bit-exact reproducibility of the kernel on a
// fixed simulation point, across engine worker counts.
func TestGoldenResultChecksum(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		res, err := New(WithWorkers(workers)).Run(ctx, goldenJob())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := resultChecksum(res); got != goldenChecksum {
			t.Errorf("workers=%d: result checksum %#x, want %#x — the kernel no longer reproduces the golden result bit-identically (cycles=%d ipc=%.4f)",
				workers, got, goldenChecksum, res.Cycles, res.IPC)
		}
	}
}

// TestGoldenResultChecksumPooledReuse pins the golden checksum on the
// pooled-and-reset path specifically: one engine first runs a same-config
// job with a different seed (building and dirtying the pooled machine), so
// the golden job that follows is served by a recycled, Reset machine. The
// checksum must still match — Reset is bit-invisible.
func TestGoldenResultChecksumPooledReuse(t *testing.T) {
	ctx := context.Background()
	e := New(WithWorkers(1))
	dirty := goldenJob()
	dirty.Seed = 987654321
	if _, err := e.Run(ctx, dirty); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(ctx, goldenJob())
	if err != nil {
		t.Fatal(err)
	}
	if got := resultChecksum(res); got != goldenChecksum {
		t.Errorf("pooled reuse: result checksum %#x, want %#x — Reset is not bit-invisible (cycles=%d ipc=%.4f)",
			got, goldenChecksum, res.Cycles, res.IPC)
	}
	if st := e.Stats(); st.MachinesReused == 0 && !raceEnabled {
		t.Errorf("golden job did not reuse the pooled machine (built %d); test no longer covers the reset path", st.MachinesBuilt)
	}
}

// TestGoldenStreamChecksum pins the golden checksum on the Stream path: the
// golden point delivered through a Plan stream must reproduce the pinned
// result bit-identically at every worker count, regardless of delivery
// order.
func TestGoldenStreamChecksum(t *testing.T) {
	job := goldenJob()
	dirty := job
	dirty.Seed = 24680 // a second point so delivery order is nontrivial
	for _, workers := range []int{1, 8} {
		e := New(WithWorkers(workers))
		found := false
		for out, err := range e.StreamJobs(context.Background(), []Job{dirty, job}) {
			if err != nil || out.Err != nil {
				t.Fatalf("workers=%d: %v / %v", workers, err, out.Err)
			}
			if out.Index != 1 {
				continue
			}
			found = true
			if got := resultChecksum(out.Result); got != goldenChecksum {
				t.Errorf("workers=%d: streamed golden checksum %#x, want %#x", workers, got, goldenChecksum)
			}
		}
		if !found {
			t.Fatalf("workers=%d: golden job never streamed", workers)
		}
	}
}

// TestGoldenSweepIdenticalAcrossWorkerCounts runs a small mixed sweep at
// several worker counts and requires byte-identical results, including the
// golden point.
func TestGoldenSweepIdenticalAcrossWorkerCounts(t *testing.T) {
	base := core.DefaultConfig()
	base.MaxInstrs = 40_000
	fdp := base
	fdp.Prefetch.Kind = core.PrefetchFDP
	jobs := []Job{
		{Workload: "gcc", Config: base},
		{Workload: "gcc", Config: fdp},
		{Workload: "perl", Config: fdp},
		{Workload: "vortex", Config: base},
	}
	ctx := context.Background()
	ref, err := New(WithWorkers(1)).Sweep(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		outs, err := New(WithWorkers(workers)).Sweep(ctx, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			if outs[i].Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, outs[i].Err)
			}
			if a, b := resultChecksum(ref[i].Result), resultChecksum(outs[i].Result); a != b {
				t.Errorf("workers=%d job %q: checksum %#x != 1-worker %#x", workers, outs[i].Job.Name, b, a)
			}
		}
	}
}
