package core

import (
	"fmt"
	"strings"

	"fdip/internal/pipe"
	"fdip/internal/prefetch"
	"fdip/internal/stats"
)

// Result is the measurement snapshot of one simulation run.
type Result struct {
	// Prefetcher names the scheme that ran.
	Prefetcher string
	// Cycles and Committed define performance; IPC = Committed/Cycles.
	Cycles    int64
	Committed uint64
	IPC       float64

	// L1-I demand behaviour. DemandAccesses = L1Hits + PFBHits +
	// FullMisses. PFBHits were covered by the prefetch buffer; LateMerges
	// (subset of FullMisses) caught an in-flight prefetch and waited only
	// the remaining latency.
	DemandAccesses, L1Hits, PFBHits, FullMisses, LateMerges uint64
	// MissPKI is (PFBHits+FullMisses) per kilo-instruction — what the
	// miss rate would be with no prefetching of these lines; FullMissPKI
	// counts only misses that actually stalled for the full latency.
	MissPKI, FullMissPKI float64
	// CoveragePct = fraction of would-be misses fully covered by the
	// prefetch buffer; PartialPct adds late in-flight merges.
	CoveragePct, PartialPct float64

	// Prefetch traffic. Issued counts prefetch bus transfers; UsefulPct =
	// (PFBHits + LateMerges) / Issued.
	PrefetchIssued uint64
	UsefulPct      float64
	PortStats      prefetch.PortStats

	// Bus. BusUtilPct is busy-cycle share; DemandBusWait total demand
	// queueing cycles.
	BusUtilPct    float64
	DemandBusWait uint64

	// Branch prediction.
	CondBranches, CTIs       uint64
	MispredictsByKind        [5]uint64
	TotalMispredicts         uint64
	MispredictPKI            float64
	CondAccuracyPct          float64
	FTBHitRatePct            float64
	FTBLookups               uint64
	RASUnderflows            uint64
	BPUBlocks, FTBMissBlocks uint64

	// Front-end cycle breakdown.
	FetchStallCycles, FetchIdleCycles, BackendFullCycles uint64
	BPUFTQFullStalls                                     uint64
	WrongPathFetched, OutOfImageFetched, Squashed        uint64

	// Occupancies.
	FTQOccMean, ROBOccMean float64
	FTQOccP90              int64

	// Storage accounting (bits) for budget tables.
	FTBStorageBytes int
	PFBEntries      int
}

// Finalize snapshots all counters into a Result.
func (p *Processor) Finalize() Result {
	r := Result{
		Prefetcher: p.pf.Name(),
		Cycles:     p.now,
		Committed:  p.be.Committed,
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Committed) / float64(r.Cycles)
	}

	r.DemandAccesses = p.fe.DemandAccesses
	r.L1Hits = p.fe.L1Hits
	r.PFBHits = p.fe.PFBHits
	r.FullMisses = p.fe.FullMisses
	r.LateMerges = p.fe.LateMerges
	wouldMiss := r.PFBHits + r.FullMisses
	r.MissPKI = stats.PerKilo(wouldMiss, r.Committed)
	r.FullMissPKI = stats.PerKilo(r.FullMisses-r.LateMerges, r.Committed)
	r.CoveragePct = stats.Pct(r.PFBHits, wouldMiss)
	r.PartialPct = stats.Pct(r.PFBHits+r.LateMerges, wouldMiss)

	ps := p.pf.IssueStats()
	r.PortStats = ps
	r.PrefetchIssued = ps.Issued
	r.UsefulPct = stats.Pct(r.PFBHits+r.LateMerges, ps.Issued)

	r.BusUtilPct = 100 * p.hier.BusUtilization(p.now)
	r.DemandBusWait = p.hier.DemandBusWait

	r.CondBranches = p.condBranches
	r.CTIs = p.ctisCommitted
	r.MispredictsByKind = p.be.MispredictsResolved
	for _, m := range r.MispredictsByKind {
		r.TotalMispredicts += m
	}
	r.MispredictPKI = stats.PerKilo(r.TotalMispredicts, r.Committed)
	dirMiss := r.MispredictsByKind[pipe.MissDirection]
	if r.CondBranches > 0 {
		r.CondAccuracyPct = 100 * (1 - float64(dirMiss)/float64(r.CondBranches))
	}
	r.FTBHitRatePct = 100 * p.ftb.HitRate()
	r.FTBLookups = p.ftb.Lookups
	r.RASUnderflows = p.bpu.RASUnderflows
	r.BPUBlocks = p.bpu.Blocks
	r.FTBMissBlocks = p.bpu.FTBMisses

	r.FetchStallCycles = p.fe.StallCycles
	r.FetchIdleCycles = p.fe.IdleNoFTQ
	r.BackendFullCycles = p.fe.BackendFull
	r.BPUFTQFullStalls = p.bpu.FullStalls
	r.WrongPathFetched = p.fe.WrongPath
	r.OutOfImageFetched = p.fe.OutOfImage
	r.Squashed = p.be.Squashed

	r.FTQOccMean = p.ftqOcc.Mean()
	r.FTQOccP90 = p.ftqOcc.Quantile(0.9)
	r.ROBOccMean = p.robOcc.Mean()

	r.FTBStorageBytes = p.ftb.StorageBytes()
	r.PFBEntries = p.pfb.Capacity()
	return r
}

// SpeedupPctOver returns the percentage IPC gain of r over base.
func (r Result) SpeedupPctOver(base Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return (r.IPC/base.IPC - 1) * 100
}

// String renders a human-readable report.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefetcher         %s\n", r.Prefetcher)
	fmt.Fprintf(&b, "cycles             %d\n", r.Cycles)
	fmt.Fprintf(&b, "committed          %d\n", r.Committed)
	fmt.Fprintf(&b, "IPC                %.3f\n", r.IPC)
	fmt.Fprintf(&b, "L1-I would-miss    %.2f /kinstr (full-stall %.2f)\n", r.MissPKI, r.FullMissPKI)
	fmt.Fprintf(&b, "coverage           %.1f%% full, %.1f%% incl. partial\n", r.CoveragePct, r.PartialPct)
	fmt.Fprintf(&b, "prefetches issued  %d (useful %.1f%%)\n", r.PrefetchIssued, r.UsefulPct)
	fmt.Fprintf(&b, "bus utilisation    %.1f%%\n", r.BusUtilPct)
	fmt.Fprintf(&b, "mispredicts        %.2f /kinstr (dir %d, tgt %d, unseen %d, ret %d)\n",
		r.MispredictPKI, r.MispredictsByKind[pipe.MissDirection], r.MispredictsByKind[pipe.MissTarget],
		r.MispredictsByKind[pipe.MissUnseenCTI], r.MispredictsByKind[pipe.MissReturn])
	fmt.Fprintf(&b, "cond accuracy      %.2f%%\n", r.CondAccuracyPct)
	fmt.Fprintf(&b, "FTB hit rate       %.1f%%\n", r.FTBHitRatePct)
	fmt.Fprintf(&b, "FTQ occupancy      mean %.1f, p90 %d\n", r.FTQOccMean, r.FTQOccP90)
	return b.String()
}
