package core

import (
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/program"
)

// Failure-injection and pathological-configuration tests: the machine must
// stay correct (commit the oracle stream, terminate) under configurations
// chosen to break it.

func pathologicalImage(t testing.TB, seed int64) *program.Image {
	t.Helper()
	p := program.DefaultParams()
	p.Seed = seed
	p.NumFuncs = 120
	im, err := program.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func runCfg(t testing.TB, cfg Config, im *program.Image, seed int64) Result {
	t.Helper()
	pr, err := New(cfg, im, oracle.NewWalker(im, seed))
	if err != nil {
		t.Fatal(err)
	}
	return pr.Run()
}

func TestSaturatedBusStillCompletes(t *testing.T) {
	// A 64-cycle-per-line bus is pathologically slow; prefetches should
	// almost never find an idle slot and demand misses serialize brutally.
	im := pathologicalImage(t, 31)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 60_000
	cfg.Mem.BusCyclesPerLine = 64
	cfg.Prefetch.Kind = PrefetchFDP
	r := runCfg(t, cfg, im, 1)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.BusUtilPct > 100 {
		t.Errorf("bus util %.1f%%", r.BusUtilPct)
	}
}

func TestSingleEntryStructures(t *testing.T) {
	im := pathologicalImage(t, 32)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	cfg.FTQEntries = 1
	cfg.PrefetchBufferEntries = 1
	cfg.RASEntries = 1
	cfg.L1ITagPorts = 1
	cfg.FetchWidth = 1
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.CPF = 1 // conservative with one port: max stall pressure
	cfg.Prefetch.FDP.PIQSize = 1
	r := runCfg(t, cfg, im, 2)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
}

func TestStaticPredictorsStillTerminate(t *testing.T) {
	im := pathologicalImage(t, 33)
	for _, name := range []string{"static-taken", "static-nottaken"} {
		cfg := DefaultConfig()
		cfg.MaxInstrs = 30_000
		cfg.PredictorName = name
		r := runCfg(t, cfg, im, 3)
		if r.Committed < cfg.MaxInstrs {
			t.Fatalf("%s: committed %d", name, r.Committed)
		}
		// Static prediction must hurt, not help.
		if r.CondAccuracyPct > 99 {
			t.Errorf("%s: implausible accuracy %.1f%%", name, r.CondAccuracyPct)
		}
	}
}

func TestTinyFTBThrashes(t *testing.T) {
	im := pathologicalImage(t, 34)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	cfg.FTB.Sets = 2
	cfg.FTB.Ways = 1
	r := runCfg(t, cfg, im, 4)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.FTBHitRatePct > 60 {
		t.Errorf("2-entry FTB hit rate %.1f%% implausibly high", r.FTBHitRatePct)
	}
}

func TestPerfectL1INeverMisses(t *testing.T) {
	im := pathologicalImage(t, 35)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	cfg.PerfectL1I = true
	r := runCfg(t, cfg, im, 5)
	if r.MissPKI != 0 || r.FullMisses != 0 {
		t.Errorf("perfect L1-I missed: MissPKI=%.2f FullMisses=%d", r.MissPKI, r.FullMisses)
	}
	// And it is an upper bound on the real machine.
	real := cfg
	real.PerfectL1I = false
	rr := runCfg(t, real, im, 5)
	if r.IPC < rr.IPC {
		t.Errorf("perfect IPC %.3f < real IPC %.3f", r.IPC, rr.IPC)
	}
}

func TestPerfectBoundDominatesPrefetchers(t *testing.T) {
	im := pathologicalImage(t, 36)
	base := DefaultConfig()
	base.MaxInstrs = 80_000

	perfect := base
	perfect.PerfectL1I = true
	rPerfect := runCfg(t, perfect, im, 6)

	for _, kind := range []PrefetcherKind{PrefetchNextLine, PrefetchStream, PrefetchFDP} {
		cfg := base
		cfg.Prefetch.Kind = kind
		r := runCfg(t, cfg, im, 6)
		if r.IPC > rPerfect.IPC*1.001 {
			t.Errorf("%s IPC %.3f exceeds perfect bound %.3f", kind, r.IPC, rPerfect.IPC)
		}
	}
}

func TestSlowMemoryConvergence(t *testing.T) {
	// 1000-cycle memory: the progress checker must not fire, and the run
	// must still complete.
	im := pathologicalImage(t, 37)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 20_000
	cfg.Mem.MemLatency = 1000
	r := runCfg(t, cfg, im, 7)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.IPC > 1 {
		t.Errorf("IPC %.3f implausible with 1000-cycle memory", r.IPC)
	}
}

func TestTraceExhaustionDrainsCleanly(t *testing.T) {
	// A stream that ends mid-flight: the processor must drain the backend
	// and stop without panicking, committing exactly the stream length.
	im := pathologicalImage(t, 38)
	const n = 10_000
	stream := &truncatedStream{inner: oracle.NewWalker(im, 8), limit: n}
	cfg := DefaultConfig()
	cfg.MaxInstrs = 1 << 30
	pr, err := New(cfg, im, stream)
	if err != nil {
		t.Fatal(err)
	}
	r := pr.Run()
	if r.Committed != n {
		t.Errorf("committed %d, want exactly %d", r.Committed, n)
	}
}

type truncatedStream struct {
	inner *oracle.Walker
	limit uint64
	count uint64
}

func (s *truncatedStream) Next() (oracle.Record, bool) {
	if s.count >= s.limit {
		return oracle.Record{}, false
	}
	s.count++
	return s.inner.Next()
}

func TestKeepPIQOnSquashRuns(t *testing.T) {
	im := pathologicalImage(t, 39)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.KeepPIQOnSquash = true
	r := runCfg(t, cfg, im, 9)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
}

func TestLocalPredictorEndToEnd(t *testing.T) {
	im := pathologicalImage(t, 40)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 60_000
	cfg.PredictorName = "local"
	r := runCfg(t, cfg, im, 10)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.CondAccuracyPct < 70 {
		t.Errorf("local predictor accuracy %.1f%% too low", r.CondAccuracyPct)
	}
}
