package core

import (
	"reflect"
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/pipe"
)

// TestArenaSteadyStateZeroAlloc extends the allocation gate to the arena
// data path: steady-state scheduled execution — Step plus skipIdle, with
// mispredict squashes and misfetch recovery recycling arena slots
// throughout — must allocate nothing once warm. CI runs this alongside
// TestStepZeroAlloc and TestBurstKernelZeroAlloc.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1ISizeBytes = 8 * 1024
	cfg.FTQEntries = 64
	cfg.Mem.MemLatency = 300
	cfg.MaxInstrs = 1 << 62
	im := testImage(t, 9, 60)
	p := MustNew(cfg, im, oracle.NewWalker(im, 17))
	for i := 0; i < 200_000; i++ {
		p.Step()
		p.skipIdle()
	}
	before := p.be.MispredictsResolved
	if avg := testing.AllocsPerRun(5000, func() {
		p.Step()
		p.skipIdle()
	}); avg != 0 {
		t.Fatalf("arena kernel allocates %.3f times per iteration in steady state; want 0", avg)
	}
	// The gate only means something if squash/recycle paths actually ran
	// inside the measured window.
	resolved := uint64(0)
	for i, m := range p.be.MispredictsResolved {
		resolved += m - before[i]
	}
	if resolved == 0 {
		t.Fatal("no mispredicts resolved during the measured window; the squash path was not exercised")
	}
}

// TestOnCommitPointerNotRetained pins the OnCommit no-retention contract the
// arena depends on: the *pipe.Uop handed to the callback aliases arena
// storage that is recycled after the callback returns, so no caller may rely
// on the pointed-to contents afterwards. The test retains each committed
// uop's pointer and scribbles over it at the start of the next commit's
// callback — the earliest moment the contract says the storage is dead —
// then requires results bit-identical to an undisturbed run. Any component
// that read a retained uop after its callback returned would see the
// scribbles and diverge. (The current uop is left alone: Tick's redirect
// return may alias a branch committing in the same cycle, and that pointer
// is contractually live until the caller's step finishes.)
func TestOnCommitPointerNotRetained(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.MaxInstrs = 150_000
	im := testImage(t, 21, 80)

	clean := MustNew(cfg, im, oracle.NewWalker(im, 5))
	want := clean.Run()

	scribbled := MustNew(cfg, im, oracle.NewWalker(im, 5))
	orig := scribbled.be.OnCommitRange
	ar := scribbled.be.Arena()
	var retained *pipe.Uop
	scribbled.be.OnCommitRange = func(first uint32, n int) {
		ai := first
		for i := 0; i < n; i++ {
			if retained != nil {
				*retained = pipe.Uop{Seq: ^uint64(0), PC: 0xdead_dead_dead, Mispredicted: true}
			}
			orig(ai, 1)
			retained = ar.At(ai)
			ai = ar.Next(ai)
		}
	}
	got := scribbled.Run()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scribbling committed uops after the observer ran changed results:\ngot  %+v\nwant %+v", got, want)
	}
}
