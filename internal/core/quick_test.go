package core

import (
	"math/rand"
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
)

// TestQuickRandomConfigsHoldInvariants fuzzes machine geometry: under any
// legal configuration the processor must (1) terminate, (2) commit exactly
// the oracle stream, (3) keep derived statistics internally consistent, and
// (4) never let a prefetcher exceed the committed-work invariants.
func TestQuickRandomConfigsHoldInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep")
	}
	rng := rand.New(rand.NewSource(77))

	p := program.DefaultParams()
	p.Seed = 99
	p.NumFuncs = 150
	im, err := program.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	pow2 := func(choices ...int) int { return choices[rng.Intn(len(choices))] }
	kinds := []PrefetcherKind{PrefetchNone, PrefetchNextLine, PrefetchStream, PrefetchFDP}

	const trials = 24
	for trial := 0; trial < trials; trial++ {
		cfg := DefaultConfig()
		cfg.MaxInstrs = 15_000
		cfg.L1ISizeBytes = pow2(2048, 4096, 16384, 65536)
		cfg.L1IWays = pow2(1, 2, 4)
		cfg.LineBytes = pow2(16, 32, 64)
		cfg.L1ITagPorts = 1 + rng.Intn(3)
		cfg.PrefetchBufferEntries = rng.Intn(40)
		cfg.FTQEntries = 1 + rng.Intn(48)
		cfg.FTB.Sets = pow2(16, 64, 256, 1024)
		cfg.FTB.Ways = pow2(1, 2, 4)
		cfg.FTB.BlockOriented = rng.Intn(2) == 0
		cfg.PredictorName = []string{"hybrid", "gshare", "bimodal", "local", "static-taken"}[rng.Intn(5)]
		cfg.RASEntries = 1 + rng.Intn(32)
		cfg.FetchWidth = 1 + rng.Intn(8)
		cfg.Mem.MemLatency = 10 + rng.Intn(200)
		cfg.Mem.BusCyclesPerLine = 1 + rng.Intn(8)
		cfg.Prefetch.Kind = kinds[rng.Intn(len(kinds))]
		cfg.Prefetch.FDP.CPF = prefetch.CPFMode(rng.Intn(3))
		cfg.Prefetch.FDP.RemoveCPF = rng.Intn(2) == 0
		cfg.Prefetch.FDP.PIQSize = 1 + rng.Intn(32)
		cfg.Prefetch.FDP.SkipHead = rng.Intn(3)
		cfg.Backend.ROBSize = pow2(16, 32, 64, 128)
		cfg.Backend.IssueWidth = 1 + rng.Intn(8)
		cfg.Backend.CommitWidth = 1 + rng.Intn(8)

		seed := int64(trial)
		pr, err := New(cfg, im, oracle.NewWalker(im, seed))
		if err != nil {
			t.Fatalf("trial %d: New: %v (cfg %+v)", trial, err, cfg)
		}

		// Record the committed PC stream and compare against a raw walker.
		ref := oracle.NewWalker(im, seed)
		mismatch := false
		inner := pr.be.OnCommitRange
		ar := pr.be.Arena()
		pr.be.OnCommitRange = func(first uint32, cnt int) {
			ai := first
			for i := 0; i < cnt; i++ {
				rec, _ := ref.Next()
				if ar.At(ai).PC != rec.PC {
					mismatch = true
				}
				ai = ar.Next(ai)
			}
			inner(first, cnt)
		}
		res := pr.Run()

		if mismatch {
			t.Fatalf("trial %d: commit stream diverged from oracle (cfg %+v)", trial, cfg)
		}
		if res.Committed < cfg.MaxInstrs {
			t.Fatalf("trial %d: committed %d < %d (cfg %+v)", trial, res.Committed, cfg.MaxInstrs, cfg)
		}
		if res.IPC <= 0 || res.IPC > float64(cfg.FetchWidth) {
			t.Fatalf("trial %d: IPC %.3f out of range (cfg %+v)", trial, res.IPC, cfg)
		}
		if res.BusUtilPct < 0 || res.BusUtilPct > 100 {
			t.Fatalf("trial %d: bus %.1f%%", trial, res.BusUtilPct)
		}
		if res.CoveragePct < 0 || res.CoveragePct > 100 || res.PartialPct < res.CoveragePct {
			t.Fatalf("trial %d: coverage %.1f/%.1f", trial, res.CoveragePct, res.PartialPct)
		}
		if res.DemandAccesses != res.L1Hits+res.PFBHits+res.FullMisses {
			t.Fatalf("trial %d: access accounting broken: %d != %d+%d+%d",
				trial, res.DemandAccesses, res.L1Hits, res.PFBHits, res.FullMisses)
		}
		if res.LateMerges > res.FullMisses {
			t.Fatalf("trial %d: LateMerges %d > FullMisses %d", trial, res.LateMerges, res.FullMisses)
		}
		if cfg.Prefetch.Kind == PrefetchNone && res.PrefetchIssued != 0 {
			t.Fatalf("trial %d: phantom prefetches", trial)
		}
		if cfg.PrefetchBufferEntries == 0 && res.PFBHits != 0 {
			t.Fatalf("trial %d: PFB hits with zero-entry buffer", trial)
		}
	}
}
