package core

import (
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
)

// testImage builds a moderate program for end-to-end runs.
func testImage(tb testing.TB, seed int64, funcs int) *program.Image {
	tb.Helper()
	p := program.DefaultParams()
	p.Seed = seed
	p.NumFuncs = funcs
	im, err := program.Generate(p)
	if err != nil {
		tb.Fatalf("Generate: %v", err)
	}
	return im
}

func runWith(tb testing.TB, cfg Config, seed int64, funcs int) Result {
	tb.Helper()
	im := testImage(tb, seed, funcs)
	pr, err := New(cfg, im, oracle.NewWalker(im, seed+100))
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return pr.Run()
}

func TestRunCompletesAndCommits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 200_000
	r := runWith(t, cfg, 1, 100)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d < %d (cycles %d)", r.Committed, cfg.MaxInstrs, r.Cycles)
	}
	if r.IPC <= 0.1 || r.IPC > float64(cfg.FetchWidth) {
		t.Errorf("implausible IPC %.3f", r.IPC)
	}
	if r.CondBranches == 0 || r.CTIs == 0 {
		t.Error("no branches committed")
	}
	if r.CondAccuracyPct < 55 {
		t.Errorf("conditional accuracy %.1f%% too low — predictor not learning", r.CondAccuracyPct)
	}
	if r.FTBHitRatePct < 30 {
		t.Errorf("FTB hit rate %.1f%% too low — FTB not learning", r.FTBHitRatePct)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 100_000
	a := runWith(t, cfg, 3, 80)
	b := runWith(t, cfg, 3, 80)
	if a != b {
		t.Fatalf("same config+seed diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestFDPBeatsNoPrefetchOnBigFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end performance comparison")
	}
	// Server-style program: large footprint, flat profile, wide dispatch.
	p := program.DefaultParams()
	p.Seed = 5
	p.NumFuncs = 600
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 4
	p.DispatchTargets = 32
	p.DispatchZipf = 0.2
	im, err := program.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) Result {
		pr, err := New(cfg, im, oracle.NewWalker(im, 55))
		if err != nil {
			t.Fatal(err)
		}
		return pr.Run()
	}

	base := DefaultConfig()
	base.MaxInstrs = 400_000
	fdp := base
	fdp.Prefetch.Kind = PrefetchFDP

	rBase := run(base)
	rFDP := run(fdp)

	if rBase.MissPKI < 5 {
		t.Fatalf("baseline MissPKI %.2f too low — workload not I-bound", rBase.MissPKI)
	}
	gain := rFDP.SpeedupPctOver(rBase)
	if gain < 3 {
		t.Errorf("FDP gain %.2f%% over baseline; want noticeably positive (base IPC %.3f, fdp IPC %.3f, coverage %.1f%%)",
			gain, rBase.IPC, rFDP.IPC, rFDP.CoveragePct)
	}
	if rFDP.CoveragePct < 15 {
		t.Errorf("FDP coverage %.1f%% too low", rFDP.CoveragePct)
	}
}

func TestPrefetchersRunAndStaySane(t *testing.T) {
	for _, kind := range []PrefetcherKind{PrefetchNone, PrefetchNextLine, PrefetchStream, PrefetchFDP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MaxInstrs = 100_000
			cfg.Prefetch.Kind = kind
			r := runWith(t, cfg, 7, 200)
			if r.Committed < cfg.MaxInstrs {
				t.Fatalf("committed %d", r.Committed)
			}
			if kind == PrefetchNone && r.PrefetchIssued != 0 {
				t.Errorf("none issued %d prefetches", r.PrefetchIssued)
			}
			if kind != PrefetchNone && r.PrefetchIssued == 0 {
				t.Errorf("%s issued no prefetches", kind)
			}
			if r.BusUtilPct < 0 || r.BusUtilPct > 100 {
				t.Errorf("bus utilisation %.1f%%", r.BusUtilPct)
			}
		})
	}
}

func TestPerfectCacheUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long end-to-end run")
	}
	// A huge L1-I behaves as a perfect cache once compulsory misses
	// amortise: run long enough that capacity misses dominate the 16KB
	// machine, then check the 16MB machine loses most of them and is at
	// least as fast. The workload must have a flat (capacity-thrashing)
	// profile, hence the server-style parameters.
	p := program.DefaultParams()
	p.Seed = 9
	p.NumFuncs = 500
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 4
	p.DispatchTargets = 32
	p.DispatchZipf = 0.2
	im, err := program.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	run := func(cfg Config) Result {
		pr, err := New(cfg, im, oracle.NewWalker(im, 99))
		if err != nil {
			t.Fatal(err)
		}
		return pr.Run()
	}
	small := DefaultConfig()
	small.MaxInstrs = 2_000_000
	big := small
	big.L1ISizeBytes = 1 << 24 // 16MB

	rs := run(small)
	rb := run(big)
	if rb.MissPKI > rs.MissPKI/2.5 {
		t.Errorf("16MB cache MissPKI %.2f not ≪ 16KB MissPKI %.2f", rb.MissPKI, rs.MissPKI)
	}
	if rb.IPC < rs.IPC {
		t.Errorf("bigger cache slower: %.3f < %.3f", rb.IPC, rs.IPC)
	}
}

func TestCommittedMatchesOracleStream(t *testing.T) {
	// The committed instruction stream must be exactly the oracle stream:
	// run two walkers in lockstep, one through the machine, one raw.
	im := testImage(t, 11, 60)
	const n = 50_000
	raw := oracle.NewWalker(im, 42)
	var want []uint64
	for i := 0; i < n; i++ {
		rec, _ := raw.Next()
		want = append(want, rec.PC)
	}

	cfg := DefaultConfig()
	cfg.MaxInstrs = n
	pr := MustNew(cfg, im, oracle.NewWalker(im, 42))
	var got []uint64
	inner := pr.be.OnCommitRange
	ar := pr.be.Arena()
	pr.be.OnCommitRange = func(first uint32, cnt int) {
		ai := first
		for i := 0; i < cnt; i++ {
			if len(got) < n {
				got = append(got, ar.At(ai).PC)
			}
			ai = ar.Next(ai)
		}
		inner(first, cnt)
	}
	pr.Run()
	if len(got) < n {
		t.Fatalf("committed only %d of %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("commit %d: pc %#x, oracle %#x", i, got[i], want[i])
		}
	}
}

func TestZeroPrefetchBufferDisablesCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 100_000
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.PrefetchBufferEntries = 0
	r := runWith(t, cfg, 13, 200)
	if r.PFBHits != 0 {
		t.Errorf("PFB hits %d with zero-entry buffer", r.PFBHits)
	}
	if r.Committed < cfg.MaxInstrs {
		t.Errorf("run did not complete: %d", r.Committed)
	}
}

func TestFTQSizeOneStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 80_000
	cfg.FTQEntries = 1
	cfg.Prefetch.Kind = PrefetchFDP
	r := runWith(t, cfg, 15, 150)
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("committed %d", r.Committed)
	}
	// With a single-entry FTQ there are no non-head entries to prefetch.
	if r.PrefetchIssued != 0 {
		t.Errorf("FTQ=1 issued %d prefetches", r.PrefetchIssued)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = "warlock"
	im := testImage(t, 1, 20)
	if _, err := New(cfg, im, oracle.NewWalker(im, 1)); err == nil {
		t.Error("unknown prefetcher accepted")
	}
	cfg = DefaultConfig()
	cfg.LineBytes = 48
	if _, err := New(cfg, im, oracle.NewWalker(im, 1)); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	cfg = Config{}
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if cfg.MaxCycles == 0 || cfg.Prefetch.Kind != PrefetchNone {
		t.Error("defaults not filled")
	}
}

func TestResultStringAndSpeedup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 30_000
	r := runWith(t, cfg, 17, 60)
	if r.String() == "" {
		t.Error("empty String")
	}
	if got := r.SpeedupPctOver(r); got != 0 {
		t.Errorf("self speedup = %v", got)
	}
	if got := r.SpeedupPctOver(Result{}); got != 0 {
		t.Errorf("speedup over zero base = %v", got)
	}
	_ = prefetch.PortStats{}
}
