package core

import (
	"context"
	"fmt"

	"fdip/internal/backend"
	"fdip/internal/bpred"
	"fdip/internal/btb"
	"fdip/internal/cache"
	"fdip/internal/frontend"
	"fdip/internal/ftq"
	"fdip/internal/isa"
	"fdip/internal/memsys"
	"fdip/internal/oracle"
	"fdip/internal/pipe"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/stats"
)

// Processor is the assembled machine.
type Processor struct {
	cfg Config
	im  *program.Image

	l1i  *cache.Cache
	pfb  *cache.PrefetchBuffer
	hier *memsys.Hierarchy
	ftb  *btb.TargetBuffer
	dir  bpred.Predictor
	ras  *bpred.RAS
	q    *ftq.Queue
	bpu  *frontend.BPU
	fe   *frontend.FetchEngine
	be   *backend.Backend
	pf   prefetch.Prefetcher

	now int64

	ftqOcc *stats.Histogram
	robOcc *stats.Histogram

	// commit-side counters gathered via the backend's OnCommit hook
	condBranches, ctisCommitted uint64
	committedByKind             [isa.NumKinds]uint64

	lastProgressCycle int64
	lastProgressCount uint64
}

// New assembles a processor over the program image and oracle stream.
func New(cfg Config, im *program.Image, stream oracle.Stream) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := bpred.New(cfg.PredictorName, cfg.PredictorSize, cfg.PredictorHistBits)
	if err != nil {
		return nil, err
	}
	p := &Processor{cfg: cfg, im: im, dir: dir}
	p.l1i = cache.New(cache.Config{
		SizeBytes: cfg.L1ISizeBytes,
		Ways:      cfg.L1IWays,
		LineBytes: cfg.LineBytes,
		Repl:      cache.LRU,
		TagPorts:  cfg.L1ITagPorts,
	})
	p.pfb = cache.NewPrefetchBuffer(cfg.PrefetchBufferEntries, cfg.LineBytes)
	p.hier = memsys.New(cfg.Mem)
	p.ftb = btb.New(cfg.FTB)
	p.ras = bpred.NewRAS(cfg.RASEntries)
	p.q = ftq.New(cfg.FTQEntries, cfg.LineBytes)
	p.bpu = frontend.NewBPU(p.ftb, p.dir, p.ras, p.q, im.Entry, p.ftb.Config().MaxBlockInstrs)
	p.be = backend.New(cfg.Backend)
	p.be.OnCommit = p.onCommit

	env := prefetch.Env{L1I: p.l1i, PFB: p.pfb, Hier: p.hier, FTQ: p.q, LineBytes: cfg.LineBytes}
	switch cfg.Prefetch.Kind {
	case PrefetchNone:
		p.pf = prefetch.NewNone()
	case PrefetchNextLine:
		p.pf = prefetch.NewNextLine(env, cfg.Prefetch.NextLinePending)
	case PrefetchStream:
		p.pf = prefetch.NewStreamBuffers(env, cfg.Prefetch.Streams, cfg.Prefetch.StreamDepth)
	case PrefetchFDP:
		p.pf = prefetch.NewFDP(env, cfg.Prefetch.FDP)
	}

	if cfg.PerfectL1I {
		p.fe = frontend.NewPerfectFetchEngine(im, stream, p.q, p.l1i, p.pfb, p.hier,
			cfg.FetchWidth, p.pf.OnDemandAccess)
	} else {
		p.fe = frontend.NewFetchEngine(im, stream, p.q, p.l1i, p.pfb, p.hier,
			cfg.FetchWidth, p.pf.OnDemandAccess)
	}

	p.ftqOcc = stats.NewHistogram(cfg.FTQEntries+1, 1)
	p.robOcc = stats.NewHistogram(cfg.Backend.ROBSize+1, 1)
	return p, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, im *program.Image, stream oracle.Stream) *Processor {
	p, err := New(cfg, im, stream)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the validated configuration.
func (p *Processor) Config() Config { return p.cfg }

// Now returns the current cycle.
func (p *Processor) Now() int64 { return p.now }

// Committed returns retired instruction count.
func (p *Processor) Committed() uint64 { return p.be.Committed }

// onCommit trains predictor and FTB with architecturally retired CTIs.
func (p *Processor) onCommit(u *pipe.Uop) {
	p.committedByKind[u.Instr.Kind]++
	if !u.Instr.IsCTI() {
		return
	}
	p.ctisCommitted++
	if u.Instr.Kind == isa.CondBranch {
		p.condBranches++
		p.dir.Commit(u.PC, u.HistCP, u.ActualTaken)
	}
	p.ftb.TrainBlock(u.BlockStart, u.BlockLen, u.Instr.Kind, p.trainTarget(u))
}

// trainTarget picks the taken-target stored in the FTB for a resolved CTI.
func (p *Processor) trainTarget(u *pipe.Uop) uint64 {
	if u.Instr.Kind.IsIndirect() {
		return u.ActualNextPC // last observed dynamic target
	}
	return u.Instr.Target
}

// Step advances the machine one cycle.
func (p *Processor) Step() {
	now := p.now

	// 1. Memory completions: demand fills go to the L1-I, pure prefetches
	// to the prefetch buffer.
	for _, tr := range p.hier.CompletedBy(now) {
		if tr.Prefetch && !tr.DemandMerged {
			p.pfb.Insert(tr.Line)
		} else {
			p.l1i.Fill(tr.Line, tr.Prefetch)
		}
	}

	// 2. Backend: execute, resolve, commit.
	if u, redirect := p.be.Tick(now); redirect {
		p.q.Squash()
		p.pf.OnSquash()
		p.bpu.RepairAfterMispredict(u.Instr.Kind, u.HistCP, u.RASCP, u.PC, u.ActualTaken)
		// Resolve-time training closes the FTB learning loop quickly
		// (commit training alone would lag by the ROB depth).
		if u.Instr.IsCTI() {
			p.ftb.TrainBlock(u.BlockStart, u.BlockLen, u.Instr.Kind, p.trainTarget(&u))
		}
		p.bpu.Redirect(u.ActualNextPC, now+int64(p.cfg.RedirectLatency))
		p.fe.Redirect()
	}

	// 3. Fetch: demand access + uop delivery.
	if uops := p.fe.Tick(now, p.be.Accept()); len(uops) > 0 {
		p.be.Deliver(uops, now)
	}

	// 4. BPU: one fetch-block prediction.
	p.bpu.Tick(now)

	// 5. Prefetch engine.
	p.pf.Tick(now)

	p.ftqOcc.Add(p.q.Len())
	if now&63 == 0 {
		p.robOcc.Add(p.be.ROBOccupancy())
	}
	p.now++
}

// Run executes until MaxInstrs commit, MaxCycles elapse, or a trace stream
// drains. It returns the final measurements. A simulator deadlock panics;
// callers that want an error (and cancellation) should use RunContext.
func (p *Processor) Run() Result {
	res, err := p.RunContext(context.Background())
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunContext is Run with cooperative cancellation: the loop polls ctx every
// 1024 cycles and returns ctx.Err() on cancellation or deadline expiry. A
// simulator deadlock (no commit progress) is returned as an error instead of
// panicking.
func (p *Processor) RunContext(ctx context.Context) (Result, error) {
	done := ctx.Done()
	for p.be.Committed < p.cfg.MaxInstrs && p.now < p.cfg.MaxCycles {
		if p.fe.Exhausted() && p.be.Drained() {
			break
		}
		p.Step()
		if err := p.progressErr(); err != nil {
			return Result{}, err
		}
		if done != nil && p.now&1023 == 0 {
			select {
			case <-done:
				return Result{}, ctx.Err()
			default:
			}
		}
	}
	return p.Finalize(), nil
}

// progressErr reports a simulator deadlock — the machine burning cycles
// without committing — as an error.
func (p *Processor) progressErr() error {
	const window = 2_000_000
	if p.now-p.lastProgressCycle < window {
		return nil
	}
	if p.be.Committed == p.lastProgressCount {
		return fmt.Errorf("core: no commit progress between cycles %d and %d (committed=%d, ftq=%d, rob=%d)",
			p.lastProgressCycle, p.now, p.be.Committed, p.q.Len(), p.be.ROBOccupancy())
	}
	p.lastProgressCycle = p.now
	p.lastProgressCount = p.be.Committed
	return nil
}
