package core

import (
	"context"
	"fmt"
	"math"

	"fdip/internal/backend"
	"fdip/internal/bpred"
	"fdip/internal/btb"
	"fdip/internal/cache"
	"fdip/internal/frontend"
	"fdip/internal/ftq"
	"fdip/internal/isa"
	"fdip/internal/memsys"
	"fdip/internal/oracle"
	"fdip/internal/pipe"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/stats"
)

// Processor is the assembled machine.
type Processor struct {
	cfg Config
	im  *program.Image

	l1i  *cache.Cache
	pfb  *cache.PrefetchBuffer
	hier *memsys.Hierarchy
	ftb  *btb.TargetBuffer
	dir  bpred.Predictor
	ras  *bpred.RAS
	q    *ftq.Queue
	bpu  *frontend.BPU
	fe   *frontend.FetchEngine
	be   *backend.Backend
	pf   prefetch.Prefetcher

	now int64

	// fillFn is the pre-bound completion callback, so Step makes zero heap
	// allocations in steady state.
	fillFn func(*memsys.Transfer)

	ftqOcc *stats.Histogram
	robOcc *stats.Histogram

	// commit-side counters gathered via the backend's OnCommit hook
	condBranches, ctisCommitted uint64
	committedByKind             [isa.NumKinds]uint64

	lastProgressCycle int64
	lastProgressCount uint64
}

// occSampleShift sets the occupancy-sampling cadence: both the FTQ and ROB
// occupancy histograms sample once every 2^occSampleShift = 64 cycles, on
// cycles divisible by 64. A shared cadence keeps the two histograms
// comparable, and a sparse one keeps them exact under cycle-skipping (the
// scheduler bulk-adds the samples an idle stretch would have produced).
const occSampleShift = 6

// progressWindow is the deadlock-detection horizon: a run burning this many
// cycles without committing is reported as an error. The cycle-skip
// scheduler never jumps past the end of the current window, so detection
// fires on exactly the same cycle as under per-cycle stepping.
const progressWindow = 2_000_000

// New assembles a processor over the program image and oracle stream.
func New(cfg Config, im *program.Image, stream oracle.Stream) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := bpred.New(cfg.PredictorName, cfg.PredictorSize, cfg.PredictorHistBits)
	if err != nil {
		return nil, err
	}
	p := &Processor{cfg: cfg, im: im, dir: dir}
	p.l1i = cache.New(cache.Config{
		SizeBytes: cfg.L1ISizeBytes,
		Ways:      cfg.L1IWays,
		LineBytes: cfg.LineBytes,
		Repl:      cache.LRU,
		TagPorts:  cfg.L1ITagPorts,
	})
	p.pfb = cache.NewPrefetchBuffer(cfg.PrefetchBufferEntries, cfg.LineBytes)
	p.hier = memsys.New(cfg.Mem)
	p.ftb = btb.New(cfg.FTB)
	p.ras = bpred.NewRAS(cfg.RASEntries)
	p.q = ftq.New(cfg.FTQEntries, cfg.LineBytes)
	p.bpu = frontend.NewBPU(p.ftb, p.dir, p.ras, p.q, im.Entry, p.ftb.Config().MaxBlockInstrs)
	p.be = backend.New(cfg.Backend)
	p.be.OnCommitRange = p.onCommitRange

	env := prefetch.Env{
		L1I: p.l1i, PFB: p.pfb, Hier: p.hier, FTQ: p.q, FTB: p.ftb,
		// An indirection, not p.im itself: Reset swaps the image under a
		// pooled machine and the engine must follow.
		Image:     func() *program.Image { return p.im },
		LineBytes: cfg.LineBytes,
	}
	switch cfg.Prefetch.Kind {
	case PrefetchNone:
		p.pf = prefetch.NewNone()
	case PrefetchNextLine:
		p.pf = prefetch.NewNextLine(env, cfg.Prefetch.NextLinePending)
	case PrefetchStream:
		p.pf = prefetch.NewStreamBuffers(env, cfg.Prefetch.Streams, cfg.Prefetch.StreamDepth)
	case PrefetchFDP:
		p.pf = prefetch.NewFDP(env, cfg.Prefetch.FDP)
	case PrefetchMANA:
		p.pf = prefetch.NewMANA(env, cfg.Prefetch.MANA)
	case PrefetchShadow:
		p.pf = prefetch.NewShadow(env, cfg.Prefetch.Shadow)
	}

	// The fetch engine writes each uop once, directly into the backend's
	// arena; the backend sizes the arena to max in-flight and its own
	// backpressure (Accept) bounds allocation.
	if cfg.PerfectL1I {
		p.fe = frontend.NewPerfectFetchEngine(im, stream, p.q, p.be.Arena(), p.l1i, p.pfb, p.hier,
			cfg.FetchWidth, p.pf.OnDemandAccess)
	} else {
		p.fe = frontend.NewFetchEngine(im, stream, p.q, p.be.Arena(), p.l1i, p.pfb, p.hier,
			cfg.FetchWidth, p.pf.OnDemandAccess)
	}

	p.ftqOcc = stats.NewHistogram(cfg.FTQEntries+1, 1)
	p.robOcc = stats.NewHistogram(cfg.Backend.ROBSize+1, 1)
	p.fillFn = p.fill
	return p, nil
}

// Reset restores the assembled machine to its just-constructed state over a
// (possibly different) program image and oracle stream, retaining every
// allocated backing array. The configuration is fixed at construction, so a
// reset machine is only valid for jobs with the identical validated Config.
//
// The contract is pristine-machine semantics: after Reset the processor is
// observationally indistinguishable from New(cfg, im, stream) — every table
// cold, every queue empty, every counter zero, the clock at cycle 0 — and it
// must hold from *any* prior state, including a run abandoned mid-flight by
// context cancellation. The differential harness in internal/simtest
// enforces the equivalence end to end; per-component tests enforce it layer
// by layer.
func (p *Processor) Reset(im *program.Image, stream oracle.Stream) {
	p.im = im
	p.l1i.Reset()
	p.pfb.Reset()
	p.hier.Reset()
	p.ftb.Reset()
	p.dir.Reset()
	p.ras.Reset()
	p.q.Reset()
	p.bpu.Reset(im.Entry)
	p.be.Reset()
	p.pf.Reset()
	p.fe.Reset(im, stream)
	p.now = 0
	p.ftqOcc.Reset()
	p.robOcc.Reset()
	p.condBranches, p.ctisCommitted = 0, 0
	p.committedByKind = [isa.NumKinds]uint64{}
	p.lastProgressCycle, p.lastProgressCount = 0, 0
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, im *program.Image, stream oracle.Stream) *Processor {
	p, err := New(cfg, im, stream)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the validated configuration.
func (p *Processor) Config() Config { return p.cfg }

// Now returns the current cycle.
func (p *Processor) Now() int64 { return p.now }

// Committed returns retired instruction count.
func (p *Processor) Committed() uint64 { return p.be.Committed }

// onCommit trains predictor and FTB with architecturally retired CTIs.
// onCommitRange walks the arena range the backend committed this cycle —
// one indirect call per cycle instead of one per instruction.
func (p *Processor) onCommitRange(first uint32, n int) {
	ar := p.be.Arena()
	ai := first
	for i := 0; i < n; i++ {
		p.onCommit(ar.At(ai))
		ai = ar.Next(ai)
	}
}

func (p *Processor) onCommit(u *pipe.Uop) {
	p.committedByKind[u.Instr.Kind]++
	if !u.Instr.IsCTI() {
		return
	}
	p.ctisCommitted++
	if u.Instr.Kind == isa.CondBranch {
		p.condBranches++
		p.dir.Commit(u.PC, u.HistCP, u.ActualTaken)
	}
	p.ftb.TrainBlock(u.BlockStart, u.BlockLen, u.Instr.Kind, p.trainTarget(u))
}

// trainTarget picks the taken-target stored in the FTB for a resolved CTI.
func (p *Processor) trainTarget(u *pipe.Uop) uint64 {
	if u.Instr.Kind.IsIndirect() {
		return u.ActualNextPC // last observed dynamic target
	}
	return u.Instr.Target
}

// fill routes one completed transfer: demand fills (and late-merged
// prefetches) go to the L1-I, pure prefetches to the prefetch buffer.
func (p *Processor) fill(tr *memsys.Transfer) {
	if tr.Prefetch && !tr.DemandMerged {
		p.pfb.Insert(tr.Line)
	} else {
		p.l1i.Fill(tr.Line, tr.Prefetch)
	}
}

// Step advances the machine one cycle. It allocates nothing in steady state:
// memory completions drain through the pooled callback path, and fetched
// uops land in the processor-owned reusable buffer.
func (p *Processor) Step() {
	now := p.now

	// 1. Memory completions: demand fills go to the L1-I, pure prefetches
	// to the prefetch buffer.
	p.hier.DrainCompleted(now, p.fillFn)

	// 2. Backend: execute, resolve, commit.
	if u := p.be.Tick(now); u != nil {
		p.q.Squash()
		p.pf.OnSquash()
		p.bpu.RepairAfterMispredict(u.Instr.Kind, u.HistCP, u.RASCP, u.PC, u.ActualTaken)
		// Resolve-time training closes the FTB learning loop quickly
		// (commit training alone would lag by the ROB depth).
		if u.Instr.IsCTI() {
			p.ftb.TrainBlock(u.BlockStart, u.BlockLen, u.Instr.Kind, p.trainTarget(u))
		}
		p.bpu.Redirect(u.ActualNextPC, now+int64(p.cfg.RedirectLatency))
		p.fe.Redirect()
	}

	// 3. Fetch: demand access + uop delivery. Fetch writes each uop once
	// into the shared arena; only the (first, n) index range is handed to
	// the decode pipe — no uop is ever copied.
	if first, n := p.fe.Tick(now, p.be.Accept()); n > 0 {
		p.be.Deliver(first, n, now)
	}

	// 4. BPU: one fetch-block prediction.
	p.bpu.Tick(now)

	// 5. Prefetch engine.
	p.pf.Tick(now)

	if now&(1<<occSampleShift-1) == 0 {
		p.ftqOcc.Add(p.q.Len())
		p.robOcc.Add(p.be.ROBOccupancy())
	}
	p.now++
}

// skipIdle fast-forwards the clock over cycles that are provably uneventful:
// every component either reports the next cycle it could act (a memory
// completion, a fetch stall lifting, a backend operand turning ready, the
// BPU's redirect resume) or is blocked on one of those events. The clock
// jumps straight to the earliest such cycle, and the per-cycle counters the
// skipped ticks would have bumped — stall/idle cycles, BPU full-queue
// stalls, occupancy samples — are added in bulk, so results are
// bit-identical to per-cycle stepping. When any component could act this
// cycle the method returns without effect.
//
// The one component allowed to act *inside* a jump is the BPU: its
// predictions are clock-independent, so when fetch provably cannot consume
// them (stalled on a miss, or the stream exhausted) and the prefetcher is
// push-inert, the burst path retires the whole stretch of one-push-per-cycle
// Ticks in a single BPU.RunAhead call and reconstructs the exact
// FTQ-occupancy sample trajectory the stepped cycles would have produced.
func (p *Processor) skipIdle() {
	now := p.now
	target := int64(math.MaxInt64)

	// Fetch engine: acts this cycle unless the stream ended, a demand miss
	// is outstanding, decode is backpressured, or the FTQ is empty.
	// burstOK marks the states in which fetch cannot act for the whole
	// window *whatever the FTQ holds*, so BPU pushes inside the window
	// cannot wake it.
	stallUntil, stalled := p.fe.StallEvent()
	backendFull := false
	burstOK := false
	switch {
	case p.fe.Exhausted():
		// Never fetches again; the run ends once the backend drains.
		burstOK = true
	case stalled:
		if stallUntil <= now {
			return
		}
		target = stallUntil
		burstOK = true
	case p.be.Accept() <= 0:
		// Unblocked only by a decode-pipe drain — a backend event below.
		backendFull = true
	case p.q.Head() != nil:
		return // fetch performs a demand access this cycle
	default:
		// Empty FTQ: refilled only by the BPU (which would feed fetch the
		// very next cycle) or by a redirect (a backend event).
	}

	// BPU: NextWork reports its schedule — the redirect resume while
	// quiesced, "now" with queue room, never while the queue is full (the
	// queue only drains through fetch progress or a redirect, both tracked
	// above). A BPU predicting this cycle makes the machine "busy but
	// predictable": skipping is only legal through the burst path, which
	// replays the pushes, so it additionally needs fetch pinned down and a
	// prefetcher that provably ignores the new blocks.
	bpuWork := p.bpu.NextWork(now)
	burst := false
	switch {
	case bpuWork == now:
		if !burstOK || !p.pf.PushInert() {
			return
		}
		burst = true
	case bpuWork != math.MaxInt64:
		target = min(target, bpuWork)
	}

	if e := p.be.NextEvent(now); e <= now {
		return
	} else {
		target = min(target, e)
	}
	if e := p.pf.NextEvent(now); e <= now {
		return
	} else {
		target = min(target, e)
	}
	target = min(target, p.hier.NextCompletion())

	// Never jump past the run's cycle cap or the deadlock-detection
	// window, so both keep firing on exactly the cycle they would under
	// per-cycle stepping.
	target = min(target, p.cfg.MaxCycles, p.lastProgressCycle+progressWindow)
	if target <= now {
		return
	}
	n := uint64(target - now)

	// Bulk-account the per-cycle counters the skipped ticks would have
	// bumped, replicating each tick's own priority order.
	switch {
	case p.fe.Exhausted():
	case stalled:
		p.fe.StallCycles += n
	case backendFull:
		p.fe.BackendFull += n
	default:
		p.fe.IdleNoFTQ += n
	}
	if burst {
		p.runAheadAndSample(now, target, n)
	} else {
		if bpuWork == math.MaxInt64 {
			// Ready against a full queue: every skipped Tick would have
			// counted a full-queue stall.
			p.bpu.FullStalls += n
		}
		if k := occSamplesIn(now, target); k > 0 {
			p.ftqOcc.AddN(p.q.Len(), k)
			p.robOcc.AddN(p.be.ROBOccupancy(), k)
		}
	}
	p.pf.OnSkip(n)
	p.now = target
}

// runAheadAndSample retires the BPU's predictions for the skipped window
// [now, target) in one burst and reconstructs the occupancy sample
// trajectory the stepped cycles would have produced. The stepped machine
// pushes one block per cycle from the front of the window until the FTQ
// fills, then counts full-queue stalls (RunAhead books those), so FTQ
// occupancy is piecewise linear: a ramp of one per cycle over the first
// `pushed` cycles, then a plateau. Samples land on cycles divisible by
// 2^occSampleShift, *after* that cycle's push — at most a handful fall in
// the ramp (it is bounded by the FTQ capacity), so those are added
// individually and the plateau in bulk. ROB occupancy is constant across
// the window (the backend reported no event before target).
func (p *Processor) runAheadAndSample(now, target int64, n uint64) {
	occ := p.q.Len()
	pushed := p.bpu.RunAhead(n)
	rob := p.be.ROBOccupancy()
	rampEnd := now + int64(pushed)
	const mask = int64(1)<<occSampleShift - 1
	for c := (now + mask) &^ mask; c < rampEnd; c += 1 << occSampleShift {
		p.ftqOcc.Add(occ + int(c-now) + 1)
		p.robOcc.Add(rob)
	}
	if k := occSamplesIn(rampEnd, target); k > 0 {
		p.ftqOcc.AddN(p.q.Len(), k)
		p.robOcc.AddN(rob, k)
	}
}

// occSamplesIn counts the occupancy sample points (cycles divisible by
// 2^occSampleShift) in the half-open cycle range [from, to).
func occSamplesIn(from, to int64) uint64 {
	const mask = int64(1)<<occSampleShift - 1
	first := (from + mask) &^ mask
	if first >= to {
		return 0
	}
	return uint64((to-1-first)>>occSampleShift) + 1
}

// Run executes until MaxInstrs commit, MaxCycles elapse, or a trace stream
// drains. It returns the final measurements. A simulator deadlock panics;
// callers that want an error (and cancellation) should use RunContext.
func (p *Processor) Run() Result {
	res, err := p.RunContext(context.Background())
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunNaive executes the run with strict per-cycle stepping — no idle
// skipping, no BPU bursts. It is the reference semantics of the
// event-scheduled kernel: RunContext must produce a bit-identical Result
// from the same initial state. Exposed for the differential and fuzzing
// harnesses; sweeps should use Run or RunContext, which are much faster.
func (p *Processor) RunNaive() Result {
	for p.be.Committed < p.cfg.MaxInstrs && p.now < p.cfg.MaxCycles {
		if p.fe.Exhausted() && p.be.Drained() {
			break
		}
		p.Step()
	}
	return p.Finalize()
}

// ctxPollCycles is the simulated-cycle cadence of cooperative-cancellation
// polls in RunContext: the context is checked whenever at least this many
// cycles have elapsed since the last check (with an iteration-count
// backstop for step-heavy stretches where cycles accrue slowly). Polling on
// cycle progress keeps timeouts prompt in both kernel regimes — an
// iteration can retire one cycle or a multi-thousand-cycle jump.
const ctxPollCycles = 1 << 16

// RunContext is Run with cooperative cancellation: the loop polls ctx on
// simulated-cycle progress (every >=2^16 cycles, or every 1024 iterations,
// whichever comes first) and returns ctx.Err() on cancellation or deadline
// expiry. A simulator deadlock (no commit progress) is returned as an error
// instead of panicking.
//
// The loop is event-scheduled: after each stepped cycle it asks every
// component for its next interesting cycle and fast-forwards idle stretches
// (fetch stalled on a miss, FTQ full, backend waiting on operands, next
// memory completion cycles away) in one jump — with the BPU's run-ahead
// retired in bursts inside those jumps. Results are bit-identical to
// stepping every cycle; only wall-clock time changes.
func (p *Processor) RunContext(ctx context.Context) (Result, error) {
	done := ctx.Done()
	pollAt := p.now + ctxPollCycles
	var iter uint64
	for p.be.Committed < p.cfg.MaxInstrs && p.now < p.cfg.MaxCycles {
		if p.fe.Exhausted() && p.be.Drained() {
			break
		}
		p.Step()
		if p.be.Committed < p.cfg.MaxInstrs && !(p.fe.Exhausted() && p.be.Drained()) {
			p.skipIdle()
		}
		if err := p.progressErr(); err != nil {
			return Result{}, err
		}
		iter++
		if done != nil && (iter&1023 == 0 || p.now >= pollAt) {
			pollAt = p.now + ctxPollCycles
			select {
			case <-done:
				return Result{}, ctx.Err()
			default:
			}
		}
	}
	return p.Finalize(), nil
}

// progressErr reports a simulator deadlock — the machine burning cycles
// without committing — as an error.
func (p *Processor) progressErr() error {
	const window = progressWindow
	if p.now-p.lastProgressCycle < window {
		return nil
	}
	if p.be.Committed == p.lastProgressCount {
		return fmt.Errorf("core: no commit progress between cycles %d and %d (committed=%d, ftq=%d, rob=%d)",
			p.lastProgressCycle, p.now, p.be.Committed, p.q.Len(), p.be.ROBOccupancy())
	}
	p.lastProgressCycle = p.now
	p.lastProgressCount = p.be.Committed
	return nil
}
