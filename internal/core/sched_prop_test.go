package core

import (
	"math/rand"
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/prefetch"
)

// randSchedConfig draws a machine over the dimensions that shape the
// scheduler: prefetcher kind and filtering, PIQ/FTQ geometry, cache size,
// memory latency, and bus occupancy.
func randSchedConfig(rng *rand.Rand) Config {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 8_000
	switch rng.Intn(6) {
	case 0: // none
	case 1:
		cfg.Prefetch.Kind = PrefetchNextLine
		cfg.Prefetch.NextLinePending = 1 + rng.Intn(8)
	case 2:
		cfg.Prefetch.Kind = PrefetchStream
		cfg.Prefetch.Streams = 1 + rng.Intn(4)
		cfg.Prefetch.StreamDepth = 1 + rng.Intn(6)
	case 3:
		cfg.Prefetch.Kind = PrefetchFDP
		cfg.Prefetch.FDP.PIQSize = 2 + rng.Intn(15)
		cfg.Prefetch.FDP.CPF = prefetch.CPFMode(rng.Intn(3))
		cfg.Prefetch.FDP.RemoveCPF = rng.Intn(4) == 0
	case 4:
		cfg.Prefetch.Kind = PrefetchMANA
		cfg.Prefetch.MANA.BudgetBytes = []int{128, 1024, 4096}[rng.Intn(3)]
		cfg.Prefetch.MANA.RegionLines = 2 + rng.Intn(31)
		cfg.Prefetch.MANA.QueueSize = 1 + rng.Intn(16)
	case 5:
		cfg.Prefetch.Kind = PrefetchShadow
		cfg.Prefetch.Shadow.DecodeQueue = 1 + rng.Intn(8)
		cfg.Prefetch.Shadow.TargetQueue = 1 + rng.Intn(8)
		cfg.Prefetch.Shadow.PrefetchTargets = rng.Intn(4) != 0
	}
	if rng.Intn(8) == 0 {
		cfg.PerfectL1I = true
	}
	cfg.L1ISizeBytes = []int{4 * 1024, 8 * 1024, 16 * 1024}[rng.Intn(3)]
	cfg.FTQEntries = []int{4, 16, 32, 64}[rng.Intn(4)]
	cfg.Mem.MemLatency = []int{20, 70, 300}[rng.Intn(3)]
	cfg.Mem.BusCyclesPerLine = 1 + rng.Intn(6)
	return cfg
}

// TestSkipIdleNeverOvershoots is the scheduler's property test: across
// randomized machines, skipIdle must never jump the clock past any
// component's reported next event, never move it at all while some
// component could act this cycle, and — when the burst path runs — push
// exactly the blocks the stepped cycles would have (one per cycle until the
// FTQ fills). It exists to catch future NextEvent/NextWork rot: a component
// whose report drifts optimistic shows up here as an overshoot long before
// it corrupts a Result.
func TestSkipIdleNeverOvershoots(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfd1b))
	for trial := 0; trial < 32; trial++ {
		cfg := randSchedConfig(rng)
		im := testImage(t, rng.Int63n(1<<30), 15+rng.Intn(60))
		p := MustNew(cfg, im, oracle.NewWalker(im, rng.Int63n(1<<30)))
		fatal := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("trial %d (%s, ftq=%d, piq=%d, lat=%d): "+format,
				append([]any{trial, cfg.Prefetch.Kind, cfg.FTQEntries,
					cfg.Prefetch.FDP.PIQSize, cfg.Mem.MemLatency}, args...)...)
		}
		for iter := 0; iter < 200_000; iter++ {
			if p.be.Committed >= cfg.MaxInstrs || p.now >= cfg.MaxCycles ||
				(p.fe.Exhausted() && p.be.Drained()) {
				break
			}
			p.Step()
			if p.be.Committed >= cfg.MaxInstrs || (p.fe.Exhausted() && p.be.Drained()) {
				break
			}

			now := p.now
			stallUntil, stalled := p.fe.StallEvent()
			fetchCanAct := !p.fe.Exhausted() && (!stalled || stallUntil <= now) &&
				p.be.Accept() > 0 && p.q.Head() != nil
			beEv := p.be.NextEvent(now)
			pfEv := p.pf.NextEvent(now)
			memEv := p.hier.NextCompletion()
			bpuWork := p.bpu.NextWork(now)
			blocks := p.bpu.Blocks
			occ := p.q.Len()

			p.skipIdle()
			if p.now == now {
				continue
			}
			moved := uint64(p.now - now)
			switch {
			case fetchCanAct:
				fatal("clock moved %d while fetch could act at cycle %d", moved, now)
			case beEv <= now:
				fatal("clock moved %d while the backend could act at cycle %d", moved, now)
			case pfEv <= now:
				fatal("clock moved %d while the prefetcher could act at cycle %d", moved, now)
			case memEv <= now:
				fatal("clock moved %d across a due completion at cycle %d", moved, now)
			case p.now > beEv:
				fatal("jumped to %d past backend event %d", p.now, beEv)
			case p.now > pfEv:
				fatal("jumped to %d past prefetcher event %d", p.now, pfEv)
			case p.now > memEv:
				fatal("jumped to %d past completion %d", p.now, memEv)
			case stalled && stallUntil > now && p.now > stallUntil:
				fatal("jumped to %d past stall end %d", p.now, stallUntil)
			case bpuWork > now && p.now > bpuWork:
				fatal("jumped to %d past BPU resume %d", p.now, bpuWork)
			case p.now > p.cfg.MaxCycles:
				fatal("jumped to %d past MaxCycles %d", p.now, p.cfg.MaxCycles)
			}
			if bpuWork == now {
				// The burst must reconstruct exactly one push per skipped
				// cycle until the queue fills.
				want := min(moved, uint64(p.q.Cap()-occ))
				if got := p.bpu.Blocks - blocks; got != want {
					fatal("burst over [%d,%d) pushed %d blocks, stepped cycles would push %d",
						now, p.now, got, want)
				}
			} else if p.bpu.Blocks != blocks {
				fatal("BPU pushed during a skip although not ready at cycle %d", now)
			}
		}
	}
}
