package core

import (
	"context"
	"reflect"
	"testing"

	"fdip/internal/oracle"
	"fdip/internal/prefetch"
)

// runNaive drives a processor with the pre-scheduler per-cycle loop: Step
// every cycle, no idle skipping. It is the reference semantics the
// event-scheduled kernel must reproduce bit-identically.
func runNaive(p *Processor) Result { return p.RunNaive() }

// schedConfigs covers every prefetcher (each has its own NextEvent logic)
// plus the perfect-L1I fetch path and a saturating stream machine.
func schedConfigs() map[string]Config {
	mk := func(mut func(*Config)) Config {
		cfg := DefaultConfig()
		cfg.MaxInstrs = 60_000
		mut(&cfg)
		return cfg
	}
	return map[string]Config{
		"none": mk(func(*Config) {}),
		"fdp": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchFDP
		}),
		"fdp+cpf+remove": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchFDP
			c.Prefetch.FDP.CPF = prefetch.CPFConservative
			c.Prefetch.FDP.RemoveCPF = true
		}),
		"nextline": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchNextLine
		}),
		"stream": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchStream
		}),
		"perfect": mk(func(c *Config) {
			c.PerfectL1I = true
		}),
		"slow-mem": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchFDP
			c.Mem.MemLatency = 300
			c.MaxInstrs = 30_000
		}),
		// The burst scheduler's home regimes: long stalls with only the
		// BPU's run-ahead active (none/slow-mem), and an FDP whose tiny
		// PIQ is full most cycles, so bursts run under a push-inert
		// prefetcher (small-piq).
		"none-slow-mem": mk(func(c *Config) {
			c.Mem.MemLatency = 300
			c.MaxInstrs = 30_000
		}),
		"fdp-small-piq": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchFDP
			c.Prefetch.FDP.PIQSize = 4
		}),
		"fdp-cpf-slow-mem": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchFDP
			c.Prefetch.FDP.CPF = prefetch.CPFConservative
			c.Mem.MemLatency = 300
			c.MaxInstrs = 30_000
		}),
		// The modern engines, each with a default machine and the two
		// corners that stress their NextEvent/OnSkip accounting: a tiny
		// replay/target queue (heads defer and drop constantly) and slow
		// memory (long skippable stretches with work pending).
		"mana": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchMANA
		}),
		"mana-tiny-queue": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchMANA
			c.Prefetch.MANA.QueueSize = 2
			c.Prefetch.MANA.BudgetBytes = 256
		}),
		"mana-slow-mem": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchMANA
			c.Prefetch.MANA.RegionLines = 16
			c.Mem.MemLatency = 300
			c.MaxInstrs = 30_000
		}),
		"shadow": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchShadow
		}),
		"shadow-tiny-queue": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchShadow
			c.Prefetch.Shadow.DecodeQueue = 1
			c.Prefetch.Shadow.TargetQueue = 2
		}),
		"shadow-slow-mem": mk(func(c *Config) {
			c.Prefetch.Kind = PrefetchShadow
			c.Mem.MemLatency = 300
			c.MaxInstrs = 30_000
		}),
	}
}

// TestScheduledKernelMatchesNaive is the bit-identity contract of the
// event-scheduled kernel: fast-forwarding idle stretches must produce
// exactly the Result that stepping every cycle does — same cycle count,
// same every counter, same histogram-derived occupancies.
func TestScheduledKernelMatchesNaive(t *testing.T) {
	for name, cfg := range schedConfigs() {
		t.Run(name, func(t *testing.T) {
			im := testImage(t, 7, 120)
			naive := MustNew(cfg, im, oracle.NewWalker(im, 42))
			want := runNaive(naive)

			sched := MustNew(cfg, im, oracle.NewWalker(im, 42))
			got, err := sched.RunContext(context.Background())
			if err != nil {
				t.Fatalf("scheduled run: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("scheduled result diverged from naive stepping:\nnaive: %+v\nsched: %+v", want, got)
			}
			if want.Cycles == 0 || want.Committed < cfg.MaxInstrs {
				t.Fatalf("reference run did not complete: %+v", want)
			}
		})
	}
}

// TestSkipIdleActuallySkips guards the performance property: on a machine
// dominated by memory stalls, the scheduled run must take far fewer loop
// iterations (observable as Step invocations) than cycles. We approximate by
// checking that a full run completes with the same result while the fetch
// stall/idle counters — which only bulk-accounting can reach in so few
// iterations — stay identical to the naive run above. Here we just assert
// the skip path engages at all on a cold machine.
func TestSkipIdleActuallySkips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 5_000
	im := testImage(t, 3, 60)
	p := MustNew(cfg, im, oracle.NewWalker(im, 5))

	// Prime until the machine is genuinely idle: fetch stalled on a cold
	// miss AND the BPU has run ahead into a full FTQ. From there skipIdle
	// must jump toward the stall's end.
	for p.now < 1000 {
		_, stalled := p.fe.StallEvent()
		if stalled && p.q.Full() {
			break
		}
		p.Step()
	}
	before := p.now
	p.skipIdle()
	if p.now == before {
		t.Fatalf("skipIdle did not advance past a cold-miss stall at cycle %d", before)
	}
	if until, stalled := p.fe.StallEvent(); !stalled || p.now > until {
		t.Fatalf("skip overshot the stall: now=%d stallUntil=%d stalled=%v", p.now, until, stalled)
	}
}

// TestStepAllocFreeSteadyState pins the zero-allocation contract of the
// cycle kernel at the core level (the public-API twin lives in the root
// package): after warm-up, Step must not allocate.
func TestStepAllocFreeSteadyState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	cfg.MaxInstrs = 1 << 62
	im := testImage(t, 9, 60)
	p := MustNew(cfg, im, oracle.NewWalker(im, 17))
	for i := 0; i < 300_000; i++ {
		p.Step()
	}
	if avg := testing.AllocsPerRun(2000, func() { p.Step() }); avg != 0 {
		t.Fatalf("Processor.Step allocates %.2f times per cycle in steady state; want 0", avg)
	}
}

// TestBurstKernelZeroAlloc extends the zero-allocation gate to the burst
// path: steady-state scheduled execution — Step plus skipIdle, with the
// BPU's RunAhead bursts and the occupancy-trajectory reconstruction firing
// throughout — must not allocate. CI runs this alongside TestStepZeroAlloc.
func TestBurstKernelZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1ISizeBytes = 8 * 1024
	cfg.FTQEntries = 64
	cfg.Mem.MemLatency = 300
	cfg.MaxInstrs = 1 << 62
	im := testImage(t, 9, 60)
	p := MustNew(cfg, im, oracle.NewWalker(im, 17))
	for i := 0; i < 200_000; i++ {
		p.Step()
		p.skipIdle()
	}
	if avg := testing.AllocsPerRun(5000, func() {
		p.Step()
		p.skipIdle()
	}); avg != 0 {
		t.Fatalf("scheduled kernel allocates %.3f times per iteration in steady state; want 0", avg)
	}
}

// TestCancellationLatencyBounded pins RunContext's worst-case cancellation
// latency in simulated cycles: polling happens on cycle progress (every
// ctxPollCycles), so even a skip-heavy run — where 1024 loop iterations
// once spanned hundreds of thousands of cycles — notices a dead context
// within one poll window plus a single scheduler jump.
func TestCancellationLatencyBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1ISizeBytes = 4 * 1024
	cfg.FTQEntries = 64
	cfg.Mem.MemLatency = 8000 // enormous stalls: jumps dwarf iteration counts
	cfg.MaxInstrs = 1 << 62
	cfg.MaxCycles = 1 << 62
	im := testImage(t, 11, 40)
	p := MustNew(cfg, im, oracle.NewWalker(im, 3))

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the run starts: the poll alone ends it
	if _, err := p.RunContext(ctx); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// One poll window plus one jump (bounded here by the memory stall).
	const bound = ctxPollCycles + 2*8192
	if p.Now() > bound {
		t.Fatalf("cancellation noticed at cycle %d, want <= %d", p.Now(), bound)
	}
}
