package core_test

// Differential Reset tests for the assembled machine, built on the shared
// harness in internal/simtest (an external test package: simtest imports
// core, so these tests cannot live inside package core).

import (
	"context"
	"reflect"
	"testing"

	"fdip/internal/core"
	"fdip/internal/oracle"
	"fdip/internal/simtest"
	"fdip/internal/workloads"
)

// TestResetEqualsFreshAcrossPrefetchers proves pristine-machine semantics
// for every prefetcher kind: a machine dirtied by a full run on a different
// (workload, seed) and then Reset produces a Result DeepEqual to a freshly
// constructed machine's.
func TestResetEqualsFreshAcrossPrefetchers(t *testing.T) {
	for _, tr := range simtest.Grid() {
		t.Run(tr.Name, func(t *testing.T) {
			t.Parallel()
			simtest.RequireResetEquivalence(t, tr, simtest.DirtyVariant(tr), 0)
		})
	}
}

// TestResetFromMidFlightRun proves Reset recovers from an abandoned run —
// the state a cancelled job leaves in the machine pool: stalls outstanding,
// transfers in flight, the ROB half full.
func TestResetFromMidFlightRun(t *testing.T) {
	for _, steps := range []int{1, 137, 5000} {
		for _, tr := range simtest.Grid() {
			tr := tr
			simtest.RequireResetEquivalence(t, tr, simtest.DirtyVariant(tr), steps)
		}
	}
}

// TestResetIsRepeatable chains several reset generations on one machine and
// requires every generation to reproduce the fresh result — the pool reuses
// machines indefinitely, so equivalence must not decay.
func TestResetIsRepeatable(t *testing.T) {
	tr := simtest.Grid()[3] // fdp: the most stateful machine
	fresh := simtest.FreshResult(t, tr)

	cfg := tr.Config
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	im := simtest.Image(t, tr.Workload)
	dirty := simtest.DirtyVariant(tr)
	dim := simtest.Image(t, dirty.Workload)
	p, err := core.New(cfg, im, oracle.NewWalker(im, seedOf(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 3; gen++ {
		p.Reset(dim, oracle.NewWalker(dim, dirty.Seed))
		if _, err := p.RunContext(context.Background()); err != nil {
			t.Fatalf("gen %d dirty run: %v", gen, err)
		}
		p.Reset(im, oracle.NewWalker(im, seedOf(t, tr)))
		res, err := p.RunContext(context.Background())
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if !reflect.DeepEqual(fresh, res) {
			t.Fatalf("gen %d: reset result diverged from fresh\nfresh: %+v\nreset: %+v", gen, fresh, res)
		}
	}
}

// seedOf resolves a triple's effective oracle seed like the harness does.
func seedOf(t *testing.T, tr simtest.Triple) int64 {
	t.Helper()
	if tr.Seed != 0 {
		return tr.Seed
	}
	w, ok := workloads.ByName(tr.Workload)
	if !ok {
		t.Fatalf("unknown workload %q", tr.Workload)
	}
	return w.Seed
}
