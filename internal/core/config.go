// Package core assembles the full processor model: decoupled front end,
// memory hierarchy, prefetch engine, and backend, driven by a single cycle
// loop. It is the home of the paper's contribution — fetch-directed
// instruction prefetching as a system — with every design knob the
// evaluation sweeps exposed in Config.
package core

import (
	"fmt"

	"fdip/internal/backend"
	"fdip/internal/btb"
	"fdip/internal/memsys"
	"fdip/internal/prefetch"
)

// PrefetcherKind names a prefetch scheme.
type PrefetcherKind string

// The prefetch schemes the paper evaluates.
const (
	// PrefetchNone is the no-prefetch baseline.
	PrefetchNone PrefetcherKind = "none"
	// PrefetchNextLine is Smith-style tagged next-line prefetching.
	PrefetchNextLine PrefetcherKind = "nextline"
	// PrefetchStream is multi-way Jouppi stream buffers.
	PrefetchStream PrefetcherKind = "streambuf"
	// PrefetchFDP is fetch-directed prefetching from the FTQ.
	PrefetchFDP PrefetcherKind = "fdp"
)

// The modern engines from the paper's successors (ROADMAP item 3).
const (
	// PrefetchMANA is MANA-style spatial-region prefetching with a
	// metadata-budget knob (arXiv:2102.01764).
	PrefetchMANA PrefetcherKind = "mana"
	// PrefetchShadow is shadow-branch decoding of fetched lines that
	// prefills the FTB ahead of the BPU (arXiv:2408.12592).
	PrefetchShadow PrefetcherKind = "shadow"
)

// PrefetchConfig selects and tunes the prefetch engine.
type PrefetchConfig struct {
	// Kind picks the scheme.
	Kind PrefetcherKind
	// FDP configures fetch-directed prefetching (Kind == PrefetchFDP).
	FDP prefetch.FDPConfig
	// NextLinePending sizes the next-line trigger queue.
	NextLinePending int
	// Streams and StreamDepth size the stream-buffer prefetcher.
	Streams, StreamDepth int
	// MANA configures spatial-region prefetching (Kind == PrefetchMANA).
	MANA prefetch.MANAConfig
	// Shadow configures the shadow-branch decoder (Kind == PrefetchShadow).
	Shadow prefetch.ShadowConfig
}

// Config is the full machine description.
type Config struct {
	// L1ISizeBytes, L1IWays, LineBytes, L1ITagPorts size the instruction
	// cache. LineBytes is shared with the bus/L2 transfer unit.
	L1ISizeBytes, L1IWays, LineBytes, L1ITagPorts int
	// PerfectL1I makes every instruction fetch hit — the upper bound on
	// what any instruction prefetcher can deliver. Mispredictions and
	// backend limits still apply.
	PerfectL1I bool
	// PrefetchBufferEntries sizes the fully-associative prefetch buffer.
	PrefetchBufferEntries int
	// Mem configures the L2, bus, and memory. Its LineBytes is forced to
	// LineBytes.
	Mem memsys.Config
	// FTQEntries is the fetch target queue depth in fetch blocks.
	FTQEntries int
	// FTB configures the fetch target buffer.
	FTB btb.Config
	// PredictorName selects the direction predictor ("hybrid", "gshare",
	// "bimodal", "static-taken", "static-nottaken"); PredictorSize is the
	// per-table counter count and PredictorHistBits the history length.
	PredictorName     string
	PredictorSize     int
	PredictorHistBits uint
	// RASEntries sizes the return address stack.
	RASEntries int
	// FetchWidth bounds instructions fetched per cycle (from one line).
	FetchWidth int
	// RedirectLatency is the resolve-to-repredict delay in cycles.
	RedirectLatency int
	// Backend configures the execution core.
	Backend backend.Config
	// Prefetch selects the prefetch engine.
	Prefetch PrefetchConfig
	// MaxInstrs stops the run after this many committed instructions.
	MaxInstrs uint64
	// MaxCycles is a safety cap (0 = 100x MaxInstrs).
	MaxCycles int64
}

// DefaultConfig is the paper-inspired baseline machine: 16KB 2-way 32B-line
// dual-ported L1-I, 32-entry prefetch buffer, 32-entry FTQ, 512x4 FTB,
// 4K-entry hybrid predictor, 4-wide fetch, 8-wide 128-entry backend, and the
// DefaultConfig memory system. Prefetching defaults to none.
func DefaultConfig() Config {
	return Config{
		L1ISizeBytes:          16 * 1024,
		L1IWays:               2,
		LineBytes:             32,
		L1ITagPorts:           2,
		PrefetchBufferEntries: 32,
		Mem:                   memsys.DefaultConfig(),
		FTQEntries:            32,
		FTB:                   btb.DefaultConfig(),
		PredictorName:         "hybrid",
		PredictorSize:         4096,
		PredictorHistBits:     12,
		RASEntries:            32,
		FetchWidth:            4,
		RedirectLatency:       2,
		Backend:               backend.DefaultConfig(),
		Prefetch: PrefetchConfig{
			Kind:            PrefetchNone,
			FDP:             prefetch.DefaultFDPConfig(),
			NextLinePending: 4,
			Streams:         4,
			StreamDepth:     4,
			MANA:            prefetch.DefaultMANAConfig(),
			Shadow:          prefetch.DefaultShadowConfig(),
		},
		MaxInstrs: 1_000_000,
	}
}

// Validate normalises and checks the configuration.
func (c *Config) Validate() error {
	d := DefaultConfig()
	if c.L1ISizeBytes <= 0 {
		c.L1ISizeBytes = d.L1ISizeBytes
	}
	if c.L1IWays <= 0 {
		c.L1IWays = d.L1IWays
	}
	if c.LineBytes <= 0 {
		c.LineBytes = d.LineBytes
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("core: LineBytes %d not a power of two", c.LineBytes)
	}
	if c.L1ITagPorts <= 0 {
		c.L1ITagPorts = d.L1ITagPorts
	}
	if c.PrefetchBufferEntries < 0 {
		c.PrefetchBufferEntries = 0
	}
	c.Mem.LineBytes = c.LineBytes
	if c.FTQEntries <= 0 {
		c.FTQEntries = d.FTQEntries
	}
	if c.PredictorName == "" {
		c.PredictorName = d.PredictorName
	}
	if c.PredictorSize <= 0 {
		c.PredictorSize = d.PredictorSize
	}
	if c.PredictorHistBits == 0 {
		c.PredictorHistBits = d.PredictorHistBits
	}
	if c.RASEntries <= 0 {
		c.RASEntries = d.RASEntries
	}
	if c.FetchWidth <= 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.RedirectLatency < 0 {
		c.RedirectLatency = d.RedirectLatency
	}
	switch c.Prefetch.Kind {
	case "", PrefetchNone:
		c.Prefetch.Kind = PrefetchNone
	case PrefetchNextLine, PrefetchStream, PrefetchFDP, PrefetchMANA, PrefetchShadow:
	default:
		return fmt.Errorf("core: unknown prefetcher %q", c.Prefetch.Kind)
	}
	if c.Prefetch.NextLinePending <= 0 {
		c.Prefetch.NextLinePending = d.Prefetch.NextLinePending
	}
	if c.Prefetch.Streams <= 0 {
		c.Prefetch.Streams = d.Prefetch.Streams
	}
	if c.Prefetch.StreamDepth <= 0 {
		c.Prefetch.StreamDepth = d.Prefetch.StreamDepth
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = d.MaxInstrs
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = int64(c.MaxInstrs) * 100
	}
	return nil
}
