package btb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdip/internal/isa"
)

func TestLookupMissThenHit(t *testing.T) {
	tb := New(Config{Sets: 64, Ways: 2, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48})
	if _, ok := tb.PredictBlock(0x1000); ok {
		t.Error("hit in empty FTB")
	}
	tb.TrainBlock(0x1000, 5, isa.CondBranch, 0x2000)
	p, ok := tb.PredictBlock(0x1000)
	if !ok {
		t.Fatal("miss after train")
	}
	if p.NumInstrs != 5 || p.CTI != isa.CondBranch || p.Target != 0x2000 {
		t.Errorf("pred = %+v", p)
	}
}

func TestTrainUpdatesInPlace(t *testing.T) {
	tb := New(DefaultConfig())
	tb.TrainBlock(0x1000, 5, isa.CondBranch, 0x2000)
	tb.TrainBlock(0x1000, 3, isa.Jump, 0x3000)
	p, ok := tb.PredictBlock(0x1000)
	if !ok || p.NumInstrs != 3 || p.CTI != isa.Jump || p.Target != 0x3000 {
		t.Errorf("pred after retrain = %+v ok=%v", p, ok)
	}
	if tb.Updates != 1 || tb.Inserts != 1 {
		t.Errorf("Updates=%d Inserts=%d", tb.Updates, tb.Inserts)
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New(Config{Sets: 1, Ways: 2, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48})
	// Three blocks mapping to the same (only) set.
	tb.TrainBlock(0x1000, 4, isa.Jump, 0xa000)
	tb.TrainBlock(0x2000, 4, isa.Jump, 0xb000)
	// Touch 0x1000 so 0x2000 becomes LRU.
	if _, ok := tb.PredictBlock(0x1000); !ok {
		t.Fatal("0x1000 missing")
	}
	tb.TrainBlock(0x3000, 4, isa.Jump, 0xc000)
	if _, ok := tb.PredictBlock(0x2000); ok {
		t.Error("LRU entry 0x2000 survived")
	}
	if _, ok := tb.PredictBlock(0x1000); !ok {
		t.Error("MRU entry 0x1000 evicted")
	}
	if tb.Evictions != 1 {
		t.Errorf("Evictions = %d", tb.Evictions)
	}
}

func TestConventionalModeScans(t *testing.T) {
	tb := New(Config{Sets: 64, Ways: 4, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48})
	// Branch at 0x100c terminates the block starting at 0x1000 (4 instrs).
	tb.TrainBlock(0x1000, 4, isa.CondBranch, 0x9000)
	before := tb.Lookups
	p, ok := tb.PredictBlock(0x1000)
	if !ok {
		t.Fatal("conventional scan missed")
	}
	if p.NumInstrs != 4 || p.Target != 0x9000 {
		t.Errorf("pred = %+v", p)
	}
	// Scanning from 0x1000 to the branch at 0x100c takes 4 probes.
	if got := tb.Lookups - before; got != 4 {
		t.Errorf("probes = %d, want 4", got)
	}
	// A miss burns MaxBlockInstrs probes.
	before = tb.Lookups
	if _, ok := tb.PredictBlock(0x5000); ok {
		t.Error("unexpected hit")
	}
	if got := tb.Lookups - before; got != 8 {
		t.Errorf("miss probes = %d, want 8", got)
	}
}

func TestConventionalBlockFromMidpoint(t *testing.T) {
	// A conventional BTB finds the same branch when the block starts
	// mid-way (e.g. after a taken branch into the middle of a block).
	tb := New(Config{Sets: 64, Ways: 4, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48})
	tb.TrainBlock(0x1000, 4, isa.CondBranch, 0x9000) // branch at 0x100c
	p, ok := tb.PredictBlock(0x1008)
	if !ok || p.NumInstrs != 2 {
		t.Errorf("mid-block pred = %+v ok=%v", p, ok)
	}
}

func TestStorageAccounting(t *testing.T) {
	// Paper-style: 128-set 8-way block-oriented = 1K entries, 92-bit
	// entries, 11.5KB total.
	tb := New(Config{Sets: 128, Ways: 8, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48})
	if tb.EntryBits() != 92 {
		t.Errorf("EntryBits = %d, want 92", tb.EntryBits())
	}
	if got := tb.StorageBytes(); got != 1024*92/8 {
		t.Errorf("StorageBytes = %d", got)
	}
	// Doubling sets shaves one tag bit.
	tb2 := New(Config{Sets: 256, Ways: 8, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48})
	if tb2.EntryBits() != 91 {
		t.Errorf("256-set EntryBits = %d, want 91", tb2.EntryBits())
	}
	// Conventional saves the 5-bit length field.
	tb3 := New(Config{Sets: 128, Ways: 8, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48})
	if tb3.EntryBits() != 87 {
		t.Errorf("conventional EntryBits = %d, want 87", tb3.EntryBits())
	}
}

func TestInvalidateAll(t *testing.T) {
	tb := New(DefaultConfig())
	tb.TrainBlock(0x1000, 4, isa.Jump, 0x2000)
	tb.InvalidateAll()
	if _, ok := tb.PredictBlock(0x1000); ok {
		t.Error("entry survived InvalidateAll")
	}
}

func TestLengthClamping(t *testing.T) {
	tb := New(Config{Sets: 16, Ways: 1, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48})
	tb.TrainBlock(0x1000, 100, isa.CondBranch, 0x2000)
	p, _ := tb.PredictBlock(0x1000)
	if p.NumInstrs != 8 {
		t.Errorf("unclamped length %d", p.NumInstrs)
	}
	tb.TrainBlock(0x2000, 0, isa.CondBranch, 0x2000)
	p, _ = tb.PredictBlock(0x2000)
	if p.NumInstrs != 1 {
		t.Errorf("zero length not clamped: %d", p.NumInstrs)
	}
}

func TestHitRateAndString(t *testing.T) {
	tb := New(DefaultConfig())
	if tb.HitRate() != 0 {
		t.Error("empty hit rate non-zero")
	}
	tb.TrainBlock(0x1000, 4, isa.Jump, 0x2000)
	tb.PredictBlock(0x1000)
	tb.PredictBlock(0x4000)
	if hr := tb.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v", hr)
	}
	if tb.String() == "" {
		t.Error("empty String()")
	}
}

// Property: distinct tags never alias — training N distinct blocks in an
// oversized buffer preserves each prediction exactly.
func TestQuickNoAliasing(t *testing.T) {
	tb := New(Config{Sets: 4096, Ways: 8, BlockOriented: true, MaxBlockInstrs: 16, AddrBits: 48})
	seen := map[uint64]uint64{} // start -> target
	rng := rand.New(rand.NewSource(4))
	f := func(raw uint64, tgtRaw uint32) bool {
		start := (raw % (1 << 30)) &^ 3
		tgt := uint64(tgtRaw) &^ 3
		tb.TrainBlock(start, 4, isa.Jump, tgt)
		seen[start] = tgt
		// Verify a random previously trained block still predicts right
		// (capacity is far beyond MaxCount, so no evictions).
		for s, want := range seen {
			p, ok := tb.PredictBlock(s)
			if !ok || p.Target != want {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
