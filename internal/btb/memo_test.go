package btb

import (
	"math/rand"
	"testing"

	"fdip/internal/isa"
)

// memoFreeWalk is the pre-memo conventional scan, preserved as the reference
// model: probe each sequential address through the counter-charging lookup
// until an entry hits.
func memoFreeWalk(t *TargetBuffer, pc uint64) (Pred, bool) {
	for i := 0; i < t.cfg.MaxBlockInstrs; i++ {
		if p, ok := t.lookup(pc + uint64(i)*isa.InstrBytes); ok {
			return Pred{NumInstrs: i + 1, CTI: p.CTI, Target: p.Target}, true
		}
	}
	return Pred{}, false
}

// TestProbeMemoMatchesFreshWalk is the memo's bit-identity contract: over a
// long randomized interleaving, the memoised PredictBlock must produce the
// same predictions, the same Lookups/Hits/Misses accounting, and the same
// LRU clock trajectory as the unmemoised sequential walk.
func TestProbeMemoMatchesFreshWalk(t *testing.T) {
	cfg := Config{Sets: 8, Ways: 2, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48}
	for seed := int64(1); seed <= 5; seed++ {
		memod := New(cfg)
		ref := New(cfg) // driven only through memoFreeWalk, never the memo

		rng := rand.New(rand.NewSource(seed))
		kinds := []isa.Kind{isa.CondBranch, isa.Jump, isa.Call, isa.Ret}
		pcs := make([]uint64, 24)
		for i := range pcs {
			pcs[i] = 0x1000 + uint64(rng.Intn(256))*isa.InstrBytes
		}
		for i := 0; i < 4000; i++ {
			switch r := rng.Intn(100); {
			case r < 70:
				pc := pcs[rng.Intn(len(pcs))]
				gp, gok := memod.PredictBlock(pc)
				wp, wok := memoFreeWalk(ref, pc)
				if gp != wp || gok != wok {
					t.Fatalf("seed %d step %d: PredictBlock(%#x) = %+v,%v; fresh walk %+v,%v",
						seed, i, pc, gp, gok, wp, wok)
				}
			case r < 95:
				start := pcs[rng.Intn(len(pcs))]
				n, k := 1+rng.Intn(8), kinds[rng.Intn(len(kinds))]
				memod.TrainBlock(start, n, k, start^0xbeef0)
				ref.TrainBlock(start, n, k, start^0xbeef0)
			case r < 98:
				memod.InvalidateAll()
				ref.InvalidateAll()
			default:
				memod.Reset()
				ref.Reset()
			}
			if memod.Lookups != ref.Lookups || memod.Hits != ref.Hits || memod.Misses != ref.Misses ||
				memod.Inserts != ref.Inserts || memod.Updates != ref.Updates || memod.Evictions != ref.Evictions {
				t.Fatalf("seed %d step %d: counters diverged: memo {L%d H%d M%d I%d U%d E%d} vs fresh {L%d H%d M%d I%d U%d E%d}",
					seed, i,
					memod.Lookups, memod.Hits, memod.Misses, memod.Inserts, memod.Updates, memod.Evictions,
					ref.Lookups, ref.Hits, ref.Misses, ref.Inserts, ref.Updates, ref.Evictions)
			}
			if memod.clock != ref.clock {
				t.Fatalf("seed %d step %d: LRU clock diverged: %d vs %d", seed, i, memod.clock, ref.clock)
			}
		}
	}
}

// TestProbeMemoReplaysRetrainedTarget pins the Updates-don't-invalidate rule:
// an in-place retrain changes the entry's target without advancing the memo
// generation, and the replay must still return the fresh target because it
// re-reads the entry rather than the memo.
func TestProbeMemoReplaysRetrainedTarget(t *testing.T) {
	tb := New(Config{Sets: 8, Ways: 2, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48})
	tb.TrainBlock(0x1000, 3, isa.Jump, 0x2000)
	if p, ok := tb.PredictBlock(0x1000); !ok || p.Target != 0x2000 || p.NumInstrs != 3 {
		t.Fatalf("first walk: %+v, %v", p, ok)
	}
	gen := tb.gen
	tb.TrainBlock(0x1000, 3, isa.Jump, 0x3000) // same branch pc: in-place update
	if tb.gen != gen {
		t.Fatalf("in-place retrain advanced the memo generation (%d -> %d)", gen, tb.gen)
	}
	if p, ok := tb.PredictBlock(0x1000); !ok || p.Target != 0x3000 {
		t.Fatalf("memoised replay returned stale target: %+v, %v", p, ok)
	}
}

// TestProbeMemoInvalidatedByAllocation pins the other side: an allocation
// that creates an earlier terminating CTI within a previously memoised walk
// must be honoured on the very next prediction.
func TestProbeMemoInvalidatedByAllocation(t *testing.T) {
	tb := New(Config{Sets: 8, Ways: 2, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48})
	tb.TrainBlock(0x1000, 5, isa.Jump, 0x2000) // branch at 0x1010
	if p, _ := tb.PredictBlock(0x1000); p.NumInstrs != 5 {
		t.Fatalf("walk before allocation: %+v", p)
	}
	tb.TrainBlock(0x1000, 2, isa.CondBranch, 0x4000) // new branch at 0x1004
	if p, _ := tb.PredictBlock(0x1000); p.NumInstrs != 2 || p.Target != 0x4000 {
		t.Fatalf("memo served a stale walk across an allocation: %+v", p)
	}
}
