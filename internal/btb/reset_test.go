package btb

import (
	"math/rand"
	"testing"

	"fdip/internal/isa"
)

// btbTrace drives a deterministic train/predict mix and records every
// observable outcome plus the final counters.
func btbTrace(tb *TargetBuffer, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	kinds := []isa.Kind{isa.CondBranch, isa.Jump, isa.Call, isa.Ret}
	var out []uint64
	for i := 0; i < 3000; i++ {
		pc := uint64(rng.Intn(1<<12)) * 4
		if rng.Intn(2) == 0 {
			tb.TrainBlock(pc, 1+rng.Intn(8), kinds[rng.Intn(len(kinds))], uint64(rng.Intn(1<<12))*4)
			continue
		}
		p, ok := tb.PredictBlock(pc)
		if ok {
			out = append(out, 1, uint64(p.NumInstrs), uint64(p.CTI), p.Target)
		} else {
			out = append(out, 0)
		}
	}
	return append(out, tb.Lookups, tb.Hits, tb.Misses, tb.Inserts, tb.Updates, tb.Evictions)
}

// TestTargetBufferResetEqualsFresh dirties a buffer, resets it, and requires
// the exact observable behaviour of a fresh one — in both the
// block-oriented (FTB) and conventional (BTB) organisations.
func TestTargetBufferResetEqualsFresh(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ftb", Config{Sets: 64, Ways: 2, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48}},
		{"btb", Config{Sets: 64, Ways: 2, BlockOriented: false, MaxBlockInstrs: 8, AddrBits: 48}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dirty := New(tc.cfg)
			btbTrace(dirty, 1)
			dirty.Reset()
			got := btbTrace(dirty, 2)
			want := btbTrace(New(tc.cfg), 2)
			if len(got) != len(want) {
				t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("reset %s diverged from fresh at trace step %d: %d != %d", tc.name, i, got[i], want[i])
				}
			}
		})
	}
}
