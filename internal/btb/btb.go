// Package btb implements the branch target storage used by the
// branch-prediction unit: the fetch-block-oriented fetch target buffer (FTB)
// from the original paper, and a conventional per-branch BTB used as an
// ablation.
//
// A fetch block is straight-line code that ends at the first control
// transfer; the FTB maps a block's start address to the block length, the
// terminating CTI's kind, and its most recent taken target. A conventional
// BTB instead maps each branch address to its kind and target, which costs
// extra lookup bandwidth (one probe per sequential instruction) but no
// block-length storage.
package btb

import (
	"fmt"
	"math/bits"

	"fdip/internal/isa"
)

// Config sizes a target buffer.
type Config struct {
	// Sets is the number of sets; rounded up to a power of two.
	Sets int
	// Ways is the set associativity.
	Ways int
	// BlockOriented selects the FTB organisation (true) or the
	// conventional per-branch BTB (false).
	BlockOriented bool
	// MaxBlockInstrs caps predicted fetch-block length; it also bounds the
	// probe loop in conventional mode. Must fit the entry's length field.
	MaxBlockInstrs int
	// AddrBits is the virtual address width used for storage accounting.
	AddrBits int
}

// DefaultConfig returns the baseline 512-set 4-way FTB with 8-instruction
// fetch blocks in a 48-bit address space.
func DefaultConfig() Config {
	return Config{Sets: 512, Ways: 4, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.Sets <= 0 {
		c.Sets = d.Sets
	}
	c.Sets = ceilPow2(c.Sets)
	if c.Ways <= 0 {
		c.Ways = d.Ways
	}
	if c.MaxBlockInstrs <= 0 {
		c.MaxBlockInstrs = d.MaxBlockInstrs
	}
	if c.MaxBlockInstrs > 31 {
		c.MaxBlockInstrs = 31 // 5-bit length field, like the paper
	}
	if c.AddrBits <= 0 {
		c.AddrBits = d.AddrBits
	}
}

// Pred is a fetch-block prediction returned by PredictBlock.
type Pred struct {
	// NumInstrs is the block length in instructions, including the CTI.
	NumInstrs int
	// CTI is the terminating control transfer's kind.
	CTI isa.Kind
	// Target is the last observed taken target of the CTI.
	Target uint64
}

type entry struct {
	valid  bool
	tag    uint64
	stamp  uint64
	length uint8
	cti    isa.Kind
	target uint64
}

// probeMemoSize is the direct-mapped probe-memo table size (conventional
// mode only); a power of two.
const probeMemoSize = 2048

// probeMemo caches the outcome of one conventional-mode sequential probe
// walk from a given start pc: how many addresses missed before the
// terminating-CTI entry hit (and where that entry lives), or that the whole
// MaxBlockInstrs scan missed. An entry is valid only while its generation
// matches the table's: any insert allocation (new entry or replacement) can
// change which addresses hit, so it advances the generation and invalidates
// the whole memo at once. In-place retrains (Updates) leave the hit/miss
// pattern untouched — the tags don't move — and the replay re-reads CTI and
// target live from the hit entry, so they do not invalidate.
type probeMemo struct {
	pc     uint64
	gen    uint64
	si     int32
	way    int32
	misses uint8
	hit    bool
}

// TargetBuffer is a set-associative FTB/BTB with true-LRU replacement.
type TargetBuffer struct {
	cfg      Config
	sets     [][]entry
	setShift uint
	clock    uint64

	// memo caches conventional-mode probe walks (nil in block-oriented
	// mode); gen is the memo validity generation, advanced by insert
	// allocations. Replayed walks reproduce the counters and LRU side
	// effects of the probes they skip exactly, so statistics are identical
	// with and without the memo.
	memo []probeMemo
	gen  uint64

	// Lookups counts raw probes (conventional mode performs several per
	// predicted block). Hits/Misses count probe outcomes. Inserts counts
	// new-entry allocations, Updates in-place retrains, Evictions valid
	// victims replaced.
	Lookups, Hits, Misses, Inserts, Updates, Evictions uint64
}

// New creates a target buffer.
func New(cfg Config) *TargetBuffer {
	cfg.setDefaults()
	// One flat backing array sliced per set (see cache.New): constant
	// allocation count and contiguous tag storage.
	backing := make([]entry, cfg.Sets*cfg.Ways)
	sets := make([][]entry, cfg.Sets)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	t := &TargetBuffer{cfg: cfg, sets: sets, setShift: uint(bits.TrailingZeros(uint(cfg.Sets))), gen: 1}
	if !cfg.BlockOriented {
		t.memo = make([]probeMemo, probeMemoSize)
	}
	return t
}

// Config returns the (normalised) configuration.
func (t *TargetBuffer) Config() Config { return t.cfg }

// Entries returns the total entry capacity.
func (t *TargetBuffer) Entries() int { return t.cfg.Sets * t.cfg.Ways }

func (t *TargetBuffer) setAndTag(pc uint64) (int, uint64) {
	word := pc >> 2
	return int(word & uint64(t.cfg.Sets-1)), word >> t.setShift
}

// lookup probes one address.
func (t *TargetBuffer) lookup(pc uint64) (Pred, bool) {
	t.Lookups++
	si, tag := t.setAndTag(pc)
	set := t.sets[si]
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag {
			t.Hits++
			t.clock++
			e.stamp = t.clock
			return Pred{NumInstrs: int(e.length), CTI: e.cti, Target: e.target}, true
		}
	}
	t.Misses++
	return Pred{}, false
}

// insert allocates or retrains the entry for pc.
func (t *TargetBuffer) insert(pc uint64, length int, cti isa.Kind, target uint64) {
	if length < 1 {
		length = 1
	}
	if length > t.cfg.MaxBlockInstrs {
		length = t.cfg.MaxBlockInstrs
	}
	si, tag := t.setAndTag(pc)
	set := t.sets[si]
	t.clock++
	// Retrain an existing entry in place.
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag {
			e.length = uint8(length)
			e.cti = cti
			e.target = target
			e.stamp = t.clock
			t.Updates++
			return
		}
	}
	// Allocate: prefer an invalid way, else evict true-LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	t.Evictions++
fill:
	set[victim] = entry{valid: true, tag: tag, stamp: t.clock, length: uint8(length), cti: cti, target: target}
	t.Inserts++
	t.gen++ // a new resident address: every memoised walk may now be stale
}

// PredictBlock returns the predicted fetch block starting at pc. In
// block-oriented mode this is a single probe; in conventional mode the
// buffer is probed at each sequential instruction address until a branch
// entry hits or MaxBlockInstrs addresses have been scanned. ok reports
// whether any prediction was found; on a miss the caller should assume a
// maximal sequential block.
//
// The conventional-mode walk is memoised per start pc and table generation:
// a loop re-predicting the same block (the common case — blocks repeat far
// more often than the table changes) degenerates to one memo lookup. The
// replay charges the exact probe counters the skipped walk would have
// (Lookups still counts every raw probe) and applies the same LRU side
// effect — only the hit probe touches the clock and a stamp — so every
// statistic is identical with and without the memo.
func (t *TargetBuffer) PredictBlock(pc uint64) (Pred, bool) {
	if t.cfg.BlockOriented {
		p, ok := t.lookup(pc)
		if ok && p.NumInstrs == 0 {
			p.NumInstrs = 1
		}
		return p, ok
	}
	m := &t.memo[(pc>>2)&(probeMemoSize-1)]
	if m.pc == pc && m.gen == t.gen {
		if !m.hit {
			t.Lookups += uint64(t.cfg.MaxBlockInstrs)
			t.Misses += uint64(t.cfg.MaxBlockInstrs)
			return Pred{}, false
		}
		t.Lookups += uint64(m.misses) + 1
		t.Misses += uint64(m.misses)
		t.Hits++
		t.clock++
		e := &t.sets[m.si][m.way]
		e.stamp = t.clock
		return Pred{NumInstrs: int(m.misses) + 1, CTI: e.cti, Target: e.target}, true
	}
	for i := 0; i < t.cfg.MaxBlockInstrs; i++ {
		apc := pc + uint64(i)*isa.InstrBytes
		t.Lookups++
		si, tag := t.setAndTag(apc)
		set := t.sets[si]
		for w := range set {
			e := &set[w]
			if e.valid && e.tag == tag {
				t.Hits++
				t.clock++
				e.stamp = t.clock
				*m = probeMemo{pc: pc, gen: t.gen, si: int32(si), way: int32(w), misses: uint8(i), hit: true}
				return Pred{NumInstrs: i + 1, CTI: e.cti, Target: e.target}, true
			}
		}
		t.Misses++
	}
	*m = probeMemo{pc: pc, gen: t.gen}
	return Pred{}, false
}

// Peek reports whether an entry for pc is resident without perturbing
// predictor state: no probe counters, no LRU refresh, no memo traffic. The
// shadow-branch prefetcher uses it to skip prefilling blocks the buffer
// already knows, and statistics must stay bit-identical whether or not it
// runs.
func (t *TargetBuffer) Peek(pc uint64) bool {
	si, tag := t.setAndTag(pc)
	set := t.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// TrainBlock records a resolved fetch block: start address, length in
// instructions (the CTI is the last one), the CTI kind, and its taken
// target (the fall-through is never stored).
func (t *TargetBuffer) TrainBlock(start uint64, numInstrs int, cti isa.Kind, target uint64) {
	if t.cfg.BlockOriented {
		t.insert(start, numInstrs, cti, target)
		return
	}
	branchPC := start + uint64(numInstrs-1)*isa.InstrBytes
	t.insert(branchPC, 1, cti, target)
}

// InvalidateAll clears the buffer (used between experiment phases).
func (t *TargetBuffer) InvalidateAll() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
	t.gen++ // memoised hits now point at invalid entries
}

// Reset restores the pristine just-constructed state: every entry invalid,
// the LRU clock rewound, and counters zeroed, retaining the backing array.
func (t *TargetBuffer) Reset() {
	for _, set := range t.sets {
		clear(set)
	}
	t.clock = 0
	clear(t.memo) // gen rewinds to its fresh value, so stale entries must go
	t.gen = 1
	t.Lookups, t.Hits, t.Misses = 0, 0, 0
	t.Inserts, t.Updates, t.Evictions = 0, 0, 0
}

// EntryBits returns the storage cost of one entry following the paper's
// accounting: a tag of (AddrBits - log2(sets) - 2) bits, a 2-bit type, a
// 46-bit target, and — in block-oriented mode — a 5-bit block size.
func (t *TargetBuffer) EntryBits() int {
	tag := t.cfg.AddrBits - int(t.setShift) - 2
	if tag < 0 {
		tag = 0
	}
	bits := tag + 2 + 46
	if t.cfg.BlockOriented {
		bits += 5
	}
	return bits
}

// StorageBytes returns the total table storage in bytes.
func (t *TargetBuffer) StorageBytes() int {
	return t.Entries() * t.EntryBits() / 8
}

// HitRate returns the fraction of probes that hit.
func (t *TargetBuffer) HitRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Lookups)
}

// String summarises the buffer geometry.
func (t *TargetBuffer) String() string {
	kind := "BTB"
	if t.cfg.BlockOriented {
		kind = "FTB"
	}
	return fmt.Sprintf("%s %d sets x %d ways (%d entries, %d bytes)",
		kind, t.cfg.Sets, t.cfg.Ways, t.Entries(), t.StorageBytes())
}

func ceilPow2(v int) int {
	if v < 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}
