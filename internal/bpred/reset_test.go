package bpred

import (
	"math/rand"
	"testing"
)

// predTrace drives a deterministic predict/commit/repair mix — the protocol
// the front end uses — recording predictions and history words.
func predTrace(p Predictor, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	for i := 0; i < 2000; i++ {
		pc := uint64(rng.Intn(256)) * 4
		hist := p.History()
		taken := p.Predict(pc)
		actual := rng.Intn(3) > 0 // biased outcomes train the tables unevenly
		out = append(out, hist)
		if taken {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		switch rng.Intn(4) {
		case 0:
			p.Repair(hist, actual) // mispredicted conditional
		case 1:
			p.Restore(hist) // mispredicted non-conditional
		}
		p.Commit(pc, hist, actual)
	}
	return out
}

// TestPredictorResetEqualsFresh dirties each predictor, resets it, and
// requires the exact prediction/history behaviour of a fresh one.
func TestPredictorResetEqualsFresh(t *testing.T) {
	for _, name := range []string{"bimodal", "gshare", "local", "hybrid", "static-taken", "static-nottaken"} {
		t.Run(name, func(t *testing.T) {
			mk := func() Predictor {
				p, err := New(name, 512, 10)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			dirty := mk()
			predTrace(dirty, 1)
			dirty.Reset()
			got := predTrace(dirty, 2)
			want := predTrace(mk(), 2)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("reset %s diverged from fresh at trace step %d: %d != %d", name, i, got[i], want[i])
				}
			}
		})
	}
}

// rasTrace drives a deterministic push/pop/checkpoint/restore mix.
func rasTrace(r *RAS, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	var cps []RASCheckpoint
	for i := 0; i < 1000; i++ {
		switch rng.Intn(4) {
		case 0:
			r.Push(uint64(rng.Intn(1 << 16)))
		case 1:
			if a, ok := r.Pop(); ok {
				out = append(out, a)
			}
		case 2:
			cps = append(cps, r.Checkpoint())
		case 3:
			if len(cps) > 0 {
				r.Restore(cps[len(cps)-1])
				cps = cps[:len(cps)-1]
			}
		}
		if a, ok := r.Top(); ok {
			out = append(out, a)
		}
		out = append(out, uint64(r.Depth()))
	}
	return append(out, r.Pushes, r.Pops, r.Underflows)
}

// TestRASResetEqualsFresh dirties the return address stack, resets it, and
// requires the exact observable behaviour of a fresh one.
func TestRASResetEqualsFresh(t *testing.T) {
	dirty := NewRAS(16)
	rasTrace(dirty, 1)
	dirty.Reset()
	got := rasTrace(dirty, 2)
	want := rasTrace(NewRAS(16), 2)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reset RAS diverged from fresh at trace step %d: %d != %d", i, got[i], want[i])
		}
	}
}
