package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBumpSaturates(t *testing.T) {
	c := uint8(0)
	c = bump(c, false)
	if c != 0 {
		t.Errorf("bump below 0: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = bump(c, true)
	}
	if c != 3 {
		t.Errorf("bump above 3: %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(1024)
	pc := uint64(0x4000)
	for i := 0; i < 10; i++ {
		p.Commit(pc, 0, true)
	}
	if !p.Predict(pc) {
		t.Error("bimodal failed to learn taken bias")
	}
	for i := 0; i < 10; i++ {
		p.Commit(pc, 0, false)
	}
	if p.Predict(pc) {
		t.Error("bimodal failed to learn not-taken bias")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A strict alternating pattern is unpredictable to bimodal but easy
	// for gshare once history distinguishes the two contexts.
	g := NewGshare(4096, 12)
	pc := uint64(0x8000)
	correct := 0
	taken := false
	const n = 2000
	for i := 0; i < n; i++ {
		taken = !taken
		hist := g.History()
		pred := g.Predict(pc)
		if pred == taken {
			correct++
		} else {
			g.Repair(hist, taken)
		}
		g.Commit(pc, hist, taken)
	}
	acc := float64(correct) / n
	if acc < 0.95 {
		t.Errorf("gshare alternating accuracy %.3f, want > 0.95", acc)
	}

	b := NewBimodal(4096)
	correct = 0
	taken = false
	for i := 0; i < n; i++ {
		taken = !taken
		if b.Predict(pc) == taken {
			correct++
		}
		b.Commit(pc, 0, taken)
	}
	bacc := float64(correct) / n
	if bacc > 0.75 {
		t.Errorf("bimodal alternating accuracy %.3f unexpectedly high", bacc)
	}
}

func TestHybridBeatsComponentsOnMix(t *testing.T) {
	// Branch A is strongly biased (bimodal-friendly); branch B follows a
	// history pattern (gshare-friendly). The hybrid should do well on both.
	run := func(p Predictor) float64 {
		rng := rand.New(rand.NewSource(3))
		correct, total := 0, 0
		patTaken := false
		for i := 0; i < 6000; i++ {
			// Branch A
			hist := p.History()
			takenA := rng.Float64() < 0.95
			if p.Predict(0x1000) == takenA {
				correct++
			} else {
				p.Repair(hist, takenA)
			}
			p.Commit(0x1000, hist, takenA)
			// Branch B alternates
			patTaken = !patTaken
			hist = p.History()
			if p.Predict(0x2000) == patTaken {
				correct++
			} else {
				p.Repair(hist, patTaken)
			}
			p.Commit(0x2000, hist, patTaken)
			total += 2
		}
		return float64(correct) / float64(total)
	}
	h := run(NewHybrid(4096, 12))
	if h < 0.93 {
		t.Errorf("hybrid mixed accuracy %.3f, want > 0.93", h)
	}
}

func TestGshareRepairRestoresHistory(t *testing.T) {
	g := NewGshare(1024, 8)
	g.Predict(0x100)
	g.Predict(0x104)
	cp := g.History()
	g.Predict(0x108) // speculative wrong-path shift
	g.Predict(0x10c)
	g.Repair(cp, true)
	want := cp<<1 | 1
	if g.History() != want {
		t.Errorf("after repair history = %#x, want %#x", g.History(), want)
	}
}

func TestStaticPredictor(t *testing.T) {
	st := &Static{Taken: true}
	if !st.Predict(0x1000) {
		t.Error("static-taken predicted not-taken")
	}
	snt := &Static{}
	if snt.Predict(0x1000) {
		t.Error("static-nottaken predicted taken")
	}
	if st.StorageBits() != 0 {
		t.Error("static storage non-zero")
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"bimodal", "gshare", "hybrid", "static-taken", "static-nottaken", ""} {
		p, err := New(name, 1024, 10)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("New(%q) = nil", name)
		}
	}
	if _, err := New("tage", 1024, 10); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestStorageBits(t *testing.T) {
	if got := NewBimodal(1024).StorageBits(); got != 2048 {
		t.Errorf("bimodal bits = %d", got)
	}
	if got := NewGshare(1024, 10).StorageBits(); got != 2048 {
		t.Errorf("gshare bits = %d", got)
	}
	h := NewHybrid(1024, 10)
	if got := h.StorageBits(); got != 3*2048 {
		t.Errorf("hybrid bits = %d", got)
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 3: 4, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// Property: Predict never panics and indexes stay in range for arbitrary
// PCs, including unaligned and huge ones.
func TestQuickPredictAnyPC(t *testing.T) {
	preds := []Predictor{NewBimodal(512), NewGshare(512, 16), NewHybrid(512, 16)}
	f := func(pc uint64, taken bool) bool {
		for _, p := range preds {
			hist := p.History()
			p.Predict(pc)
			p.Commit(pc, hist, taken)
			p.Repair(hist, taken)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalLearnsPerBranchPattern(t *testing.T) {
	// Two interleaved branches with different short patterns; local
	// history separates them, global history sees a mess.
	l := NewLocal(4096, 10)
	// Distinct BHT entries: 0x4000 and 0x8000 would both hash to entry 0
	// in a 4096-entry table (their word addresses are multiples of 4096).
	pcA, pcB := uint64(0x4004), uint64(0x8028)
	patA := []bool{true, true, false}        // loop of trip 2
	patB := []bool{true, false, true, false} // alternator
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		a := patA[i%len(patA)]
		b := patB[i%len(patB)]
		if i > 500 { // after warmup
			if l.Predict(pcA) == a {
				correct++
			}
			if l.Predict(pcB) == b {
				correct++
			}
			total += 2
		}
		l.Commit(pcA, 0, a)
		l.Commit(pcB, 0, b)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.97 {
		t.Errorf("local pattern accuracy %.3f, want > 0.97", acc)
	}
}

func TestLocalStorageAndName(t *testing.T) {
	l := NewLocal(1024, 10)
	if l.StorageBits() != 1024*10+2*1024 {
		t.Errorf("StorageBits = %d", l.StorageBits())
	}
	if l.Name() == "" {
		t.Error("empty name")
	}
	if _, err := New("local", 512, 8); err != nil {
		t.Errorf("New(local): %v", err)
	}
}
