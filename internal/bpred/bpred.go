// Package bpred implements conditional branch direction predictors and the
// return address stack used by the branch-prediction unit.
//
// The decoupled front end predicts down a speculative path, so every
// predictor carries *speculative* global history that must be checkpointed
// per branch and repaired on mispredicts. The front end stores History()
// alongside each predicted branch and calls Repair on the stored value when
// that branch resolves wrong.
package bpred

import "fmt"

// Predictor is a conditional-branch direction predictor.
//
// Protocol: the front end calls History() (cheap) to checkpoint, then
// Predict(pc) which returns the direction and shifts it into speculative
// history. At commit of a conditional branch the front end calls
// Commit(pc, hist, taken) with the history that was current when the branch
// predicted. On a misprediction it calls Repair(hist, taken) to rewind
// speculative history and re-apply the actual outcome.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the predicted direction for the conditional branch
	// at pc and speculatively updates history.
	Predict(pc uint64) bool
	// History returns the current speculative history word.
	History() uint64
	// Repair rewinds speculative history to hist and shifts in the
	// branch's actual outcome.
	Repair(hist uint64, taken bool)
	// Restore rewinds speculative history to hist without shifting an
	// outcome (repair for non-conditional mispredicts, which never shifted
	// history when predicted).
	Restore(hist uint64)
	// Commit trains the tables with the branch's actual outcome; hist is
	// the history word captured at prediction time.
	Commit(pc uint64, hist uint64, taken bool)
	// Reset restores the pristine just-constructed state — tables at their
	// initial counter values, history cleared — retaining backing storage
	// (the layer-wide Reset contract; see ARCHITECTURE.md).
	Reset()
	// StorageBits reports the predictor's table storage in bits.
	StorageBits() int
}

// counter is a 2-bit saturating counter helper.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

func predictTaken(c uint8) bool { return c >= 2 }

// pcIndex hashes a word-aligned PC into a table of the given power-of-two
// size.
func pcIndex(pc uint64, size int) int {
	return int((pc >> 2) & uint64(size-1))
}

// Bimodal is a PC-indexed table of 2-bit counters — the classic baseline
// predictor. It keeps no history, so History/Repair are no-ops.
type Bimodal struct {
	table []uint8
}

// NewBimodal creates a bimodal predictor with size counters (rounded up to a
// power of two), initialised weakly taken.
func NewBimodal(size int) *Bimodal {
	size = ceilPow2(size)
	t := make([]uint8, size)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return predictTaken(b.table[pcIndex(pc, len(b.table))]) }

// History implements Predictor; bimodal has no history.
func (b *Bimodal) History() uint64 { return 0 }

// Repair implements Predictor; bimodal has no history.
func (b *Bimodal) Repair(uint64, bool) {}

// Restore implements Predictor; bimodal has no history.
func (b *Bimodal) Restore(uint64) {}

// Commit implements Predictor.
func (b *Bimodal) Commit(pc uint64, _ uint64, taken bool) {
	i := pcIndex(pc, len(b.table))
	b.table[i] = bump(b.table[i], taken)
}

// Reset implements Predictor: all counters back to weakly taken.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// StorageBits implements Predictor.
func (b *Bimodal) StorageBits() int { return 2 * len(b.table) }

// Gshare XORs global history with the PC to index a shared counter table.
type Gshare struct {
	table    []uint8
	histBits uint
	ghr      uint64
}

// NewGshare creates a gshare predictor with size counters and histBits of
// global history.
func NewGshare(size int, histBits uint) *Gshare {
	size = ceilPow2(size)
	t := make([]uint8, size)
	for i := range t {
		t[i] = 2
	}
	if histBits > 32 {
		histBits = 32
	}
	return &Gshare{table: t, histBits: histBits}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%d", len(g.table)) }

func (g *Gshare) index(pc, hist uint64) int {
	mask := uint64(1)<<g.histBits - 1
	return int(((pc >> 2) ^ (hist & mask)) & uint64(len(g.table)-1))
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool {
	taken := predictTaken(g.table[g.index(pc, g.ghr)])
	g.shift(taken)
	return taken
}

func (g *Gshare) shift(taken bool) {
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
}

// History implements Predictor.
func (g *Gshare) History() uint64 { return g.ghr }

// Repair implements Predictor.
func (g *Gshare) Repair(hist uint64, taken bool) {
	g.ghr = hist
	g.shift(taken)
}

// Restore implements Predictor.
func (g *Gshare) Restore(hist uint64) { g.ghr = hist }

// Commit implements Predictor.
func (g *Gshare) Commit(pc uint64, hist uint64, taken bool) {
	i := g.index(pc, hist)
	g.table[i] = bump(g.table[i], taken)
}

// Reset implements Predictor: counters weakly taken, history cleared.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.ghr = 0
}

// StorageBits implements Predictor.
func (g *Gshare) StorageBits() int { return 2 * len(g.table) }

// Hybrid is a McFarling-style combining predictor: bimodal + gshare with a
// PC-indexed meta chooser, the configuration the original paper's simulated
// front end used.
type Hybrid struct {
	bim  *Bimodal
	gsh  *Gshare
	meta []uint8
}

// NewHybrid creates a hybrid predictor; each component table gets size
// counters.
func NewHybrid(size int, histBits uint) *Hybrid {
	size = ceilPow2(size)
	m := make([]uint8, size)
	for i := range m {
		m[i] = 2 // weakly prefer gshare
	}
	return &Hybrid{bim: NewBimodal(size), gsh: NewGshare(size, histBits), meta: m}
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return fmt.Sprintf("hybrid-%d", len(h.meta)) }

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint64) bool {
	bp := h.bim.Predict(pc)
	gp := predictTaken(h.gsh.table[h.gsh.index(pc, h.gsh.ghr)])
	var taken bool
	if predictTaken(h.meta[pcIndex(pc, len(h.meta))]) {
		taken = gp
	} else {
		taken = bp
	}
	h.gsh.shift(taken)
	return taken
}

// History implements Predictor.
func (h *Hybrid) History() uint64 { return h.gsh.ghr }

// Repair implements Predictor.
func (h *Hybrid) Repair(hist uint64, taken bool) { h.gsh.Repair(hist, taken) }

// Restore implements Predictor.
func (h *Hybrid) Restore(hist uint64) { h.gsh.Restore(hist) }

// Commit implements Predictor.
func (h *Hybrid) Commit(pc uint64, hist uint64, taken bool) {
	bp := h.bim.Predict(pc)
	gp := predictTaken(h.gsh.table[h.gsh.index(pc, hist)])
	h.bim.Commit(pc, hist, taken)
	gi := h.gsh.index(pc, hist)
	h.gsh.table[gi] = bump(h.gsh.table[gi], taken)
	// Train the chooser toward whichever component was right.
	if bp != gp {
		mi := pcIndex(pc, len(h.meta))
		h.meta[mi] = bump(h.meta[mi], gp == taken)
	}
}

// Reset implements Predictor: both components plus the chooser (back to
// weakly preferring gshare).
func (h *Hybrid) Reset() {
	h.bim.Reset()
	h.gsh.Reset()
	for i := range h.meta {
		h.meta[i] = 2
	}
}

// StorageBits implements Predictor.
func (h *Hybrid) StorageBits() int {
	return h.bim.StorageBits() + h.gsh.StorageBits() + 2*len(h.meta)
}

// Static predicts a fixed direction; useful as an experimental floor.
type Static struct {
	// Taken is the direction predicted for every branch.
	Taken bool
}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-nottaken"
}

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.Taken }

// History implements Predictor.
func (s *Static) History() uint64 { return 0 }

// Repair implements Predictor.
func (s *Static) Repair(uint64, bool) {}

// Restore implements Predictor.
func (s *Static) Restore(uint64) {}

// Commit implements Predictor.
func (s *Static) Commit(uint64, uint64, bool) {}

// Reset implements Predictor; static predictors have no state.
func (s *Static) Reset() {}

// StorageBits implements Predictor.
func (s *Static) StorageBits() int { return 0 }

// New constructs a predictor by name: "bimodal", "gshare", "local",
// "hybrid", "static-taken", "static-nottaken".
func New(name string, size int, histBits uint) (Predictor, error) {
	switch name {
	case "bimodal":
		return NewBimodal(size), nil
	case "gshare":
		return NewGshare(size, histBits), nil
	case "local":
		return NewLocal(size, histBits), nil
	case "hybrid", "":
		return NewHybrid(size, histBits), nil
	case "static-taken":
		return &Static{Taken: true}, nil
	case "static-nottaken":
		return &Static{}, nil
	}
	return nil, fmt.Errorf("bpred: unknown predictor %q", name)
}

func ceilPow2(v int) int {
	if v < 2 {
		return 2
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}
