package bpred

import "fmt"

// Local is a two-level per-branch-history predictor (PAg): a branch history
// table indexed by PC feeds a shared pattern history table of 2-bit
// counters. Local history captures per-branch periodic behaviour (loop trip
// counts, short patterns) that global history misses when the surrounding
// path is noisy.
//
// History is updated non-speculatively at commit, so in-flight instances of
// the same branch predict with slightly stale history — a common hardware
// simplification that keeps recovery free (History/Repair are no-ops).
type Local struct {
	bht      []uint16
	pht      []uint8
	histBits uint
}

// NewLocal creates a local predictor with size entries in both levels and
// histBits of per-branch history (max 16).
func NewLocal(size int, histBits uint) *Local {
	size = ceilPow2(size)
	if histBits > 16 {
		histBits = 16
	}
	if histBits == 0 {
		histBits = 10
	}
	pht := make([]uint8, size)
	for i := range pht {
		pht[i] = 2
	}
	return &Local{
		bht:      make([]uint16, size),
		pht:      pht,
		histBits: histBits,
	}
}

// Name implements Predictor.
func (l *Local) Name() string { return fmt.Sprintf("local-%d", len(l.pht)) }

func (l *Local) phtIndex(hist uint16) int {
	mask := uint32(1)<<l.histBits - 1
	return int(uint32(hist) & mask & uint32(len(l.pht)-1))
}

// Predict implements Predictor.
func (l *Local) Predict(pc uint64) bool {
	h := l.bht[pcIndex(pc, len(l.bht))]
	return predictTaken(l.pht[l.phtIndex(h)])
}

// History implements Predictor; local history is commit-updated, so there is
// nothing to checkpoint.
func (l *Local) History() uint64 { return 0 }

// Repair implements Predictor.
func (l *Local) Repair(uint64, bool) {}

// Restore implements Predictor.
func (l *Local) Restore(uint64) {}

// Commit implements Predictor: train the pattern counter under the branch's
// pre-update history, then shift the outcome into its history.
func (l *Local) Commit(pc uint64, _ uint64, taken bool) {
	bi := pcIndex(pc, len(l.bht))
	h := l.bht[bi]
	pi := l.phtIndex(h)
	l.pht[pi] = bump(l.pht[pi], taken)
	h <<= 1
	if taken {
		h |= 1
	}
	l.bht[bi] = h
}

// Reset implements Predictor: histories cleared, counters weakly taken.
func (l *Local) Reset() {
	clear(l.bht)
	for i := range l.pht {
		l.pht[i] = 2
	}
}

// StorageBits implements Predictor: 16-bit histories plus 2-bit counters.
func (l *Local) StorageBits() int { return len(l.bht)*int(l.histBits) + 2*len(l.pht) }
