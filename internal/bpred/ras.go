package bpred

// RAS is a circular return address stack with single-entry checkpoint
// repair: a checkpoint captures the stack pointer and the top value, which
// recovers the common case of a few pushes/pops down the wrong path.
type RAS struct {
	buf []uint64
	sp  int // index of the top element; -1 when empty
	len int // number of live entries (saturates at cap)

	// Pushes, Pops, Underflows count stack traffic for reports.
	Pushes, Pops, Underflows uint64
}

// RASCheckpoint snapshots the repair state of a RAS.
type RASCheckpoint struct {
	sp  int
	len int
	top uint64
}

// NewRAS creates a return address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity < 1 {
		capacity = 1
	}
	return &RAS{buf: make([]uint64, capacity), sp: -1}
}

// Capacity returns the stack capacity in entries.
func (r *RAS) Capacity() int { return len(r.buf) }

// Depth returns the current number of live entries.
func (r *RAS) Depth() int { return r.len }

// Push records a return address (on a predicted call).
func (r *RAS) Push(addr uint64) {
	r.Pushes++
	r.sp = (r.sp + 1) % len(r.buf)
	r.buf[r.sp] = addr
	if r.len < len(r.buf) {
		r.len++
	}
}

// Pop predicts a return target. ok is false on underflow, in which case the
// caller should fall back to a sequential or BTB prediction.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.len == 0 {
		r.Underflows++
		return 0, false
	}
	r.Pops++
	addr = r.buf[r.sp]
	r.sp--
	if r.sp < 0 {
		r.sp = len(r.buf) - 1
	}
	r.len--
	return addr, true
}

// Top returns the current top without popping.
func (r *RAS) Top() (addr uint64, ok bool) {
	if r.len == 0 {
		return 0, false
	}
	return r.buf[r.sp], true
}

// Checkpoint captures repair state. Take it *before* the push/pop performed
// for the branch being checkpointed.
func (r *RAS) Checkpoint() RASCheckpoint {
	cp := RASCheckpoint{sp: r.sp, len: r.len}
	if r.len > 0 {
		cp.top = r.buf[r.sp]
	}
	return cp
}

// Restore rewinds to a checkpoint, repairing the top entry that wrong-path
// pushes may have clobbered.
func (r *RAS) Restore(cp RASCheckpoint) {
	r.sp = cp.sp
	r.len = cp.len
	if cp.len > 0 {
		r.buf[r.sp] = cp.top
	}
}

// Reset restores the pristine just-constructed state: an empty stack with
// counters zeroed, retaining the backing array.
func (r *RAS) Reset() {
	clear(r.buf)
	r.sp = -1
	r.len = 0
	r.Pushes, r.Pops, r.Underflows = 0, 0, 0
}

// StorageBits reports the stack storage cost assuming 48-bit addresses.
func (r *RAS) StorageBits() int { return 48 * len(r.buf) }
