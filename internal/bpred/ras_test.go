package bpred

import (
	"math/rand"
	"testing"
)

func TestRASPushPop(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	r.Push(0x200)
	if got, ok := r.Pop(); !ok || got != 0x200 {
		t.Errorf("Pop = %#x,%v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 0x100 {
		t.Errorf("Pop = %#x,%v", got, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
	if r.Underflows != 1 {
		t.Errorf("Underflows = %d", r.Underflows)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i * 0x10))
	}
	// Capacity 4: the two oldest entries were overwritten.
	want := []uint64{0x60, 0x50, 0x40, 0x30}
	for _, w := range want {
		got, ok := r.Pop()
		if !ok || got != w {
			t.Fatalf("Pop = %#x,%v want %#x", got, ok, w)
		}
	}
	// After wrap, the remaining "entries" are stale; depth must be 0.
	if r.Depth() != 0 {
		t.Errorf("Depth = %d after draining", r.Depth())
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	r.Push(0x200)
	cp := r.Checkpoint()
	// Wrong path: pop both, push garbage.
	r.Pop()
	r.Pop()
	r.Push(0xdead)
	r.Restore(cp)
	if got, ok := r.Top(); !ok || got != 0x200 {
		t.Errorf("after restore Top = %#x,%v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 0x200 {
		t.Errorf("after restore Pop = %#x,%v", got, ok)
	}
	// sp+top repair restores the stack shape and the top entry; deeper
	// entries clobbered by wrong-path pushes stay corrupted — that is the
	// documented (and hardware-realistic) fidelity of this mechanism, so
	// only the depth is asserted here.
	if _, ok := r.Pop(); !ok {
		t.Error("after restore stack depth wrong")
	}
	if r.Depth() != 0 {
		t.Errorf("after draining Depth = %d", r.Depth())
	}
}

func TestRASCheckpointRepairsClobberedTop(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	cp := r.Checkpoint()
	// Wrong path pops 0x100 then pushes over the same slot.
	r.Pop()
	r.Push(0xbad)
	r.Pop()
	r.Restore(cp)
	if got, ok := r.Top(); !ok || got != 0x100 {
		t.Errorf("clobbered top not repaired: %#x,%v", got, ok)
	}
}

func TestRASEmptyCheckpoint(t *testing.T) {
	r := NewRAS(4)
	cp := r.Checkpoint()
	r.Push(0x1)
	r.Push(0x2)
	r.Restore(cp)
	if r.Depth() != 0 {
		t.Errorf("Depth = %d, want 0", r.Depth())
	}
	if _, ok := r.Top(); ok {
		t.Error("Top on restored-empty stack succeeded")
	}
}

func TestRASRandomizedAgainstModel(t *testing.T) {
	// Against a reference unbounded stack, bounded only by capacity: as
	// long as depth never exceeds capacity, RAS == model.
	r := NewRAS(16)
	var model []uint64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10_000; i++ {
		if rng.Intn(2) == 0 && len(model) < 16 {
			v := rng.Uint64()
			r.Push(v)
			model = append(model, v)
		} else {
			got, ok := r.Pop()
			if len(model) == 0 {
				if ok {
					t.Fatalf("step %d: Pop on empty returned %#x", i, got)
				}
				continue
			}
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if !ok || got != want {
				t.Fatalf("step %d: Pop = %#x,%v want %#x", i, got, ok, want)
			}
		}
	}
}

func TestRASStorage(t *testing.T) {
	if got := NewRAS(32).StorageBits(); got != 32*48 {
		t.Errorf("StorageBits = %d", got)
	}
	if NewRAS(0).Capacity() != 1 {
		t.Error("zero capacity not clamped")
	}
}
