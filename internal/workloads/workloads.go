// Package workloads defines the named synthetic benchmarks the experiments
// run — stand-ins for the SPEC95/C++ programs the original paper evaluated
// (gcc, go, m88ksim, perl, vortex, groff, deltablue, tex).
//
// Each workload is a program.Params vector chosen so the *properties that
// drive front-end behaviour* land in the ranges characteristic of the named
// program class: instruction footprint relative to a 16KB L1-I, basic-block
// size, branch mix, loop structure, and dispatch style. The parameters were
// calibrated by measuring baseline (no-prefetch) L1-I miss rates and branch
// MPKI on the default machine; experiment E1 (internal/experiments) records
// the measured characterisation.
package workloads

import "fdip/internal/program"

// Workload names a calibrated synthetic benchmark.
type Workload struct {
	// Name is the benchmark identifier used throughout the harness.
	Name string
	// Description says what program class it stands in for.
	Description string
	// LargeFootprint marks instruction-bound workloads whose code far
	// exceeds the L1-I (the "server-class" half of the suite).
	LargeFootprint bool
	// Params generates the program image.
	Params program.Params
	// Seed drives the oracle walker (branch outcomes).
	Seed int64
}

// base returns the shared parameter skeleton.
func base(seed int64) program.Params {
	p := program.DefaultParams()
	p.Seed = seed
	return p
}

// All returns the benchmark suite in canonical order.
func All() []Workload {
	return []Workload{
		gcc(), goPlay(), groff(), m88ksim(), perl(), vortex(), deltablue(), tex(),
	}
}

// ByName finds a workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names lists the suite's workload names in canonical order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

func gcc() Workload {
	p := base(101)
	p.NumFuncs = 1200
	p.MeanBlocksPerFunc = 12
	p.MeanBlockLen = 5
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 5
	p.DispatchFanout = 32
	p.DispatchTargets = 28
	p.DispatchZipf = 0.45
	p.CallSkew = 1.8
	p.CondFrac = 0.40
	return Workload{
		Name:           "gcc",
		Description:    "optimizing compiler: very large code, pass-structured control flow",
		LargeFootprint: true,
		Params:         p,
		Seed:           1101,
	}
}

func goPlay() Workload {
	p := base(102)
	p.NumFuncs = 320
	p.MeanBlocksPerFunc = 9
	p.MeanBlockLen = 4
	p.CondFrac = 0.48
	p.DispatchTargets = 10
	p.DispatchZipf = 0.9
	p.MeanLoopTrip = 6
	return Workload{
		Name:        "go",
		Description: "game AI: branchy integer code, hard-to-predict decisions",
		Params:      p,
		Seed:        1102,
	}
}

func groff() Workload {
	p := base(103)
	p.NumFuncs = 520
	p.MeanBlocksPerFunc = 10
	p.MeanBlockLen = 5
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 4
	p.IndirectFrac = 0.16
	p.DispatchFanout = 28
	p.DispatchTargets = 18
	p.DispatchZipf = 0.4
	return Workload{
		Name:           "groff",
		Description:    "C++ text formatter: virtual dispatch, mid-size footprint",
		LargeFootprint: true,
		Params:         p,
		Seed:           1103,
	}
}

func m88ksim() Workload {
	p := base(104)
	p.NumFuncs = 180
	p.MeanBlocksPerFunc = 11
	p.MeanBlockLen = 6
	p.MaxLoopsPerFunc = 3
	p.MeanLoopTrip = 14
	p.DispatchTargets = 6
	p.DispatchZipf = 1.2
	return Workload{
		Name:        "m88ksim",
		Description: "CPU simulator: hot interpreter loop, strong locality",
		Params:      p,
		Seed:        1104,
	}
}

func perl() Workload {
	p := base(105)
	p.NumFuncs = 760
	p.MeanBlocksPerFunc = 11
	p.MeanBlockLen = 5
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 4
	p.DispatchFanout = 40
	p.DispatchTargets = 48
	p.DispatchZipf = 0.3
	p.IndirectFrac = 0.12
	return Workload{
		Name:           "perl",
		Description:    "interpreter: opcode dispatch over many handlers",
		LargeFootprint: true,
		Params:         p,
		Seed:           1105,
	}
}

func vortex() Workload {
	p := base(106)
	p.NumFuncs = 1500
	p.MeanBlocksPerFunc = 12
	p.MeanBlockLen = 5
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 3
	p.DispatchFanout = 36
	p.DispatchTargets = 32
	p.DispatchZipf = 0.25
	p.IndirectFrac = 0.12
	p.CallSkew = 1.5
	return Workload{
		Name:           "vortex",
		Description:    "object database: huge layered code, poor locality",
		LargeFootprint: true,
		Params:         p,
		Seed:           1106,
	}
}

func deltablue() Workload {
	p := base(107)
	p.NumFuncs = 140
	p.MeanBlocksPerFunc = 8
	p.MeanBlockLen = 4
	p.IndirectFrac = 0.20
	p.DispatchTargets = 8
	p.DispatchZipf = 1.0
	return Workload{
		Name:        "deltablue",
		Description: "C++ constraint solver: small hot footprint, virtual calls",
		Params:      p,
		Seed:        1107,
	}
}

func tex() Workload {
	p := base(108)
	p.NumFuncs = 640
	p.MeanBlocksPerFunc = 13
	p.MeanBlockLen = 6
	p.MaxLoopsPerFunc = 1
	p.MeanLoopTrip = 6
	p.DispatchFanout = 28
	p.DispatchTargets = 20
	p.DispatchZipf = 0.5
	return Workload{
		Name:           "tex",
		Description:    "typesetter: large code, mixed loops and dispatch",
		LargeFootprint: true,
		Params:         p,
		Seed:           1108,
	}
}
