package workloads

import (
	"testing"

	"fdip/internal/program"
)

func TestAllGenerateAndValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			im, err := program.Generate(w.Params)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if err := im.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if w.Description == "" {
				t.Error("empty description")
			}
			if w.Seed == 0 {
				t.Error("zero walker seed")
			}
		})
	}
}

func TestNamesUniqueAndResolvable(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("suite has %d workloads, want 8", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate workload %q", n)
		}
		seen[n] = true
		w, ok := ByName(n)
		if !ok || w.Name != n {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("doom"); ok {
		t.Error("unknown workload resolved")
	}
}

func TestSuiteHasBothClasses(t *testing.T) {
	large, small := 0, 0
	for _, w := range All() {
		if w.LargeFootprint {
			large++
		} else {
			small++
		}
	}
	if large < 3 || small < 3 {
		t.Errorf("unbalanced suite: %d large, %d small", large, small)
	}
}

func TestFootprintsMatchClass(t *testing.T) {
	for _, w := range All() {
		im, err := program.Generate(w.Params)
		if err != nil {
			t.Fatal(err)
		}
		kb := im.Size() / 1024
		if w.LargeFootprint && kb < 64 {
			t.Errorf("%s: %dKB too small for a large-footprint workload", w.Name, kb)
		}
		if !w.LargeFootprint && kb > 96 {
			t.Errorf("%s: %dKB too big for a cache-resident workload", w.Name, kb)
		}
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, w := range All() {
		if prev, ok := seen[w.Params.Seed]; ok {
			t.Errorf("%s and %s share generation seed %d", prev, w.Name, w.Params.Seed)
		}
		seen[w.Params.Seed] = w.Name
	}
}
