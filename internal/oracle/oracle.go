// Package oracle executes a program image architecturally, producing the
// correct-path dynamic instruction stream that the simulated processor must
// fetch, predict, and commit.
//
// The walker is the ground truth: the front end runs on *predictions* and is
// checked against the walker's records at branch resolution. The walker never
// models timing — only the sequence of executed instructions, branch
// outcomes, and targets.
package oracle

import (
	"fmt"
	"math/rand"

	"fdip/internal/isa"
	"fdip/internal/program"
)

// Record describes one dynamically executed instruction on the correct path.
type Record struct {
	// PC is the instruction's address.
	PC uint64
	// Instr is the static instruction at PC.
	Instr isa.Instr
	// Taken reports whether a CTI transferred control (always true for
	// unconditional CTIs, meaningless for non-CTIs).
	Taken bool
	// NextPC is the address of the next correct-path instruction.
	NextPC uint64
}

// Stream produces correct-path records. Implementations include the live
// Walker and the trace reader in internal/trace.
type Stream interface {
	// Next returns the next record. ok is false when the stream is
	// exhausted (live walkers never exhaust).
	Next() (Record, bool)
}

// maxStack bounds the walker's call stack; generation guarantees an acyclic
// call graph, so this is a defensive limit, not a semantic one.
const maxStack = 4096

// Walker executes a program image forever. When the entry function returns
// with an empty call stack, the walker restarts at the entry point — the
// workload's outermost request loop.
type Walker struct {
	im  *program.Image
	rng *rand.Rand
	pc  uint64

	stack []uint64
	// The per-branch dynamic state below is dense, indexed by word index —
	// one entry per static instruction. Maps keyed by word index measured
	// as a hash probe per executed branch on the walker's hot path; the
	// image is small enough that flat arrays are cheaper in time and not
	// meaningfully worse in space.
	//
	// loopLeft tracks remaining taken-iterations per ModelLoop branch;
	// -1 means the branch is outside its loop (no trip count drawn).
	loopLeft []int32
	// lastTarget remembers each indirect CTI's previous dynamic target for
	// sticky (bursty) dispatch; hasLast distinguishes "never executed"
	// (target addresses may legitimately be any value).
	lastTarget []uint64
	hasLast    []bool
	// patPos tracks each ModelPattern branch's position in its pattern.
	patPos []uint8

	// Executed counts records produced.
	Executed uint64
}

// NewWalker creates a walker over im, seeded deterministically.
func NewWalker(im *program.Image, seed int64) *Walker {
	w := &Walker{
		im:         im,
		rng:        rand.New(rand.NewSource(seed)),
		pc:         im.Entry,
		stack:      make([]uint64, 0, 64),
		loopLeft:   make([]int32, len(im.Code)),
		lastTarget: make([]uint64, len(im.Code)),
		hasLast:    make([]bool, len(im.Code)),
		patPos:     make([]uint8, len(im.Code)),
	}
	for i := range w.loopLeft {
		w.loopLeft[i] = -1
	}
	return w
}

// PC returns the address of the next instruction the walker will execute.
func (w *Walker) PC() uint64 { return w.pc }

// Next executes one instruction and returns its record. A live walker always
// returns ok == true.
func (w *Walker) Next() (Record, bool) {
	var rec Record
	w.NextInto(&rec)
	return rec, true
}

// NextInto executes one instruction, filling rec in place — the copy-free
// form of Next the fetch engine uses on its per-instruction hot path. It
// always returns true (live walkers never exhaust).
func (w *Walker) NextInto(rec *Record) bool {
	ins, ok := w.im.InstrAt(w.pc)
	if !ok {
		// The generator and Validate make this unreachable; crash loudly
		// rather than emit garbage.
		panic(fmt.Sprintf("oracle: correct path left the image at %#x", w.pc))
	}
	rec.PC = w.pc
	rec.Instr = ins
	rec.Taken = false
	rec.NextPC = isa.NextPC(w.pc)

	switch ins.Kind {
	case isa.CondBranch:
		rec.Taken = w.condOutcome(w.pc, ins)
		if rec.Taken {
			rec.NextPC = ins.Target
		}
	case isa.Jump:
		rec.Taken = true
		rec.NextPC = ins.Target
	case isa.Call:
		rec.Taken = true
		rec.NextPC = ins.Target
		w.push(isa.NextPC(w.pc))
	case isa.IndirectCall:
		rec.Taken = true
		rec.NextPC = w.indirectTarget(w.pc)
		w.push(isa.NextPC(w.pc))
	case isa.IndirectJump:
		rec.Taken = true
		rec.NextPC = w.indirectTarget(w.pc)
	case isa.Ret:
		rec.Taken = true
		if len(w.stack) == 0 {
			rec.NextPC = w.im.Entry // restart the outer request loop
		} else {
			rec.NextPC = w.stack[len(w.stack)-1]
			w.stack = w.stack[:len(w.stack)-1]
		}
	}

	w.pc = rec.NextPC
	w.Executed++
	return true
}

func (w *Walker) push(ret uint64) {
	if len(w.stack) >= maxStack {
		panic("oracle: call stack overflow; call graph is not acyclic")
	}
	w.stack = append(w.stack, ret)
}

// condOutcome resolves a conditional branch per its behaviour model. The
// branch is inside the image (NextInto already decoded it), so its behaviour
// record is read in place — Behavior carries two slice headers, and copying
// it out was a duffcopy per executed conditional.
func (w *Walker) condOutcome(pc uint64, ins isa.Instr) bool {
	idx := isa.WordIndex(pc, w.im.Base)
	b := &w.im.Behav[idx]
	switch b.Model {
	case program.ModelLoop:
		left := w.loopLeft[idx]
		if left < 0 {
			// Entering the loop: draw a fresh trip count. Zero trips
			// means the back-edge falls through immediately.
			left = int32(w.drawTrip(b.MeanTrip))
		}
		if left > 0 {
			w.loopLeft[idx] = left - 1
			return true
		}
		w.loopLeft[idx] = -1
		return false
	case program.ModelBiased:
		return w.rng.Float64() < b.TakenProb
	case program.ModelPattern:
		pos := w.patPos[idx]
		taken := b.Pattern>>pos&1 == 1
		pos++
		if pos >= b.PatternLen {
			pos = 0
		}
		w.patPos[idx] = pos
		return taken
	default:
		// Defensive: treat unknown conditionals as weakly not taken.
		return w.rng.Float64() < 0.35
	}
}

// drawTrip samples a loop trip count around mean, capped for termination.
func (w *Walker) drawTrip(mean int) int {
	if mean <= 0 {
		return 0
	}
	// Geometric around the mean, capped at 4x.
	p := 1.0 / float64(mean)
	n := 0
	for w.rng.Float64() > p && n < mean*4 {
		n++
	}
	return n
}

// indirectTarget picks a dynamic target from the instruction's target set,
// repeating the previous target with probability Sticky (bursty dispatch).
func (w *Walker) indirectTarget(pc uint64) uint64 {
	idx := isa.WordIndex(pc, w.im.Base)
	b := &w.im.Behav[idx]
	if len(b.Targets) == 0 {
		panic(fmt.Sprintf("oracle: indirect CTI at %#x has no targets", pc))
	}
	if w.hasLast[idx] && b.Sticky > 0 && w.rng.Float64() < b.Sticky {
		return w.lastTarget[idx]
	}
	t := w.drawTarget(b)
	w.lastTarget[idx] = t
	w.hasLast[idx] = true
	return t
}

// drawTarget samples from the (possibly weighted) target set.
func (w *Walker) drawTarget(b *program.Behavior) uint64 {
	if b.Weights == nil {
		return b.Targets[w.rng.Intn(len(b.Targets))]
	}
	total := 0.0
	for _, wt := range b.Weights {
		total += wt
	}
	r := w.rng.Float64() * total
	for i, wt := range b.Weights {
		r -= wt
		if r <= 0 {
			return b.Targets[i]
		}
	}
	return b.Targets[len(b.Targets)-1]
}

// Reset rewinds the walker to the entry point with fresh dynamic state but
// the same RNG stream position (use a new Walker for full determinism).
func (w *Walker) Reset() {
	w.pc = w.im.Entry
	w.stack = w.stack[:0]
	for i := range w.loopLeft {
		w.loopLeft[i] = -1
	}
	clear(w.lastTarget)
	clear(w.hasLast)
	clear(w.patPos)
	w.Executed = 0
}
