package oracle

import (
	"testing"

	"fdip/internal/isa"
	"fdip/internal/program"
)

func testImage(t testing.TB, seed int64, funcs int) *program.Image {
	t.Helper()
	p := program.DefaultParams()
	p.Seed = seed
	p.NumFuncs = funcs
	im, err := program.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return im
}

func TestWalkerFollowsRealEdges(t *testing.T) {
	im := testImage(t, 1, 60)
	w := NewWalker(im, 99)
	prev := Record{NextPC: im.Entry}
	for i := 0; i < 200_000; i++ {
		rec, ok := w.Next()
		if !ok {
			t.Fatal("live walker exhausted")
		}
		if rec.PC != prev.NextPC {
			t.Fatalf("step %d: pc %#x, want %#x", i, rec.PC, prev.NextPC)
		}
		ins, ok := im.InstrAt(rec.PC)
		if !ok {
			t.Fatalf("step %d: pc %#x outside image", i, rec.PC)
		}
		if ins != rec.Instr {
			t.Fatalf("step %d: record instr mismatch", i)
		}
		// NextPC must be either fall-through or the instruction's target.
		if !rec.Instr.IsCTI() {
			if rec.NextPC != rec.PC+isa.InstrBytes {
				t.Fatalf("step %d: non-CTI jumped", i)
			}
		} else if rec.Taken && !rec.Instr.Kind.IsIndirect() {
			if rec.NextPC != rec.Instr.Target {
				t.Fatalf("step %d: taken CTI to %#x, want %#x", i, rec.NextPC, rec.Instr.Target)
			}
		}
		prev = rec
	}
}

func TestWalkerDeterministic(t *testing.T) {
	im := testImage(t, 2, 40)
	a, b := NewWalker(im, 7), NewWalker(im, 7)
	for i := 0; i < 50_000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("step %d: %+v != %+v", i, ra, rb)
		}
	}
}

func TestWalkerSeedsDiffer(t *testing.T) {
	im := testImage(t, 2, 40)
	a, b := NewWalker(im, 7), NewWalker(im, 8)
	same := true
	for i := 0; i < 20_000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 20k-instruction streams")
	}
}

func TestCallsAndReturnsBalance(t *testing.T) {
	im := testImage(t, 3, 50)
	w := NewWalker(im, 1)
	depth := 0
	maxDepth := 0
	for i := 0; i < 500_000; i++ {
		rec, _ := w.Next()
		switch rec.Instr.Kind {
		case isa.Call, isa.IndirectCall:
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case isa.Ret:
			if depth > 0 {
				depth--
			} else if rec.NextPC != im.Entry {
				t.Fatalf("step %d: return with empty stack went to %#x, not entry", i, rec.NextPC)
			}
		}
	}
	if maxDepth == 0 {
		t.Error("no calls executed in 500k instructions")
	}
	if maxDepth >= maxStack {
		t.Errorf("call depth %d hit the defensive cap", maxDepth)
	}
}

func TestReturnsGoToCallSites(t *testing.T) {
	im := testImage(t, 4, 50)
	w := NewWalker(im, 1)
	var stack []uint64
	for i := 0; i < 300_000; i++ {
		rec, _ := w.Next()
		switch rec.Instr.Kind {
		case isa.Call, isa.IndirectCall:
			stack = append(stack, rec.PC+isa.InstrBytes)
		case isa.Ret:
			if len(stack) == 0 {
				if rec.NextPC != im.Entry {
					t.Fatalf("step %d: empty-stack return to %#x", i, rec.NextPC)
				}
				continue
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rec.NextPC != want {
				t.Fatalf("step %d: returned to %#x, want %#x", i, rec.NextPC, want)
			}
		}
	}
}

func TestLoopBranchesTerminate(t *testing.T) {
	// A tight synthetic image: one function, one loop branch.
	im := testImage(t, 5, 30)
	w := NewWalker(im, 2)
	// Count consecutive taken outcomes per loop branch; they must never
	// exceed 4x the mean trip (the walker's cap).
	consec := map[uint64]int{}
	for i := 0; i < 400_000; i++ {
		rec, _ := w.Next()
		if rec.Instr.Kind != isa.CondBranch {
			continue
		}
		b := im.BehaviorAt(rec.PC)
		if b.Model != program.ModelLoop {
			continue
		}
		if rec.Taken {
			consec[rec.PC]++
			if consec[rec.PC] > b.MeanTrip*4+1 {
				t.Fatalf("loop at %#x exceeded trip cap: %d consecutive taken (mean %d)",
					rec.PC, consec[rec.PC], b.MeanTrip)
			}
		} else {
			consec[rec.PC] = 0
		}
	}
}

func TestBiasedBranchFrequencies(t *testing.T) {
	im := testImage(t, 6, 40)
	w := NewWalker(im, 3)
	taken := map[uint64]int{}
	seen := map[uint64]int{}
	for i := 0; i < 1_000_000; i++ {
		rec, _ := w.Next()
		if rec.Instr.Kind != isa.CondBranch {
			continue
		}
		if im.BehaviorAt(rec.PC).Model != program.ModelBiased {
			continue
		}
		seen[rec.PC]++
		if rec.Taken {
			taken[rec.PC]++
		}
	}
	checked := 0
	for pc, n := range seen {
		if n < 2000 {
			continue
		}
		p := im.BehaviorAt(pc).TakenProb
		got := float64(taken[pc]) / float64(n)
		if got < p-0.1 || got > p+0.1 {
			t.Errorf("branch %#x: empirical taken rate %.3f, want ~%.3f (n=%d)", pc, got, p, n)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no biased branch executed often enough to test")
	}
}

func TestIndirectTargetsFromSet(t *testing.T) {
	im := testImage(t, 7, 50)
	w := NewWalker(im, 4)
	found := false
	for i := 0; i < 300_000; i++ {
		rec, _ := w.Next()
		if rec.Instr.Kind != isa.IndirectJump && rec.Instr.Kind != isa.IndirectCall {
			continue
		}
		found = true
		b := im.BehaviorAt(rec.PC)
		ok := false
		for _, tgt := range b.Targets {
			if rec.NextPC == tgt {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("indirect at %#x went to %#x, not in target set %v", rec.PC, rec.NextPC, b.Targets)
		}
	}
	if !found {
		t.Skip("no indirect CTI executed")
	}
}

func TestWalkerReset(t *testing.T) {
	im := testImage(t, 8, 30)
	w := NewWalker(im, 5)
	for i := 0; i < 1000; i++ {
		w.Next()
	}
	w.Reset()
	if w.PC() != im.Entry {
		t.Errorf("after Reset, PC = %#x, want entry %#x", w.PC(), im.Entry)
	}
	if w.Executed != 0 {
		t.Errorf("after Reset, Executed = %d", w.Executed)
	}
	if _, ok := w.Next(); !ok {
		t.Error("walker dead after Reset")
	}
}

func TestWalkerCoversFootprint(t *testing.T) {
	im := testImage(t, 9, 80)
	w := NewWalker(im, 6)
	touched := map[uint64]bool{}
	for i := 0; i < 2_000_000; i++ {
		rec, _ := w.Next()
		touched[rec.PC&^63] = true // 64B lines
	}
	lines := int(im.Size() / 64)
	cov := float64(len(touched)) / float64(lines)
	// The dispatcher + call-graph structure must reach a large share of
	// the image; a tiny coverage would mean the workload generator is not
	// exercising the footprint it claims.
	if cov < 0.3 {
		t.Errorf("walker touched only %.1f%% of code lines", cov*100)
	}
}
