package backend

import (
	"testing"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

func mkUop(seq uint64, kind isa.Kind) pipe.Uop {
	return pipe.Uop{
		Seq:           seq,
		PC:            0x1000 + seq*4,
		Instr:         isa.Instr{Kind: kind, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		OnCorrectPath: true,
	}
}

func smallBackend() *Backend {
	return New(Config{ROBSize: 16, IssueWidth: 2, CommitWidth: 2, IssueWindow: 8, DecodeLatency: 1, PipeCap: 8})
}

// deliver plays the fetch engine's role: write each uop once into the
// backend's arena, then hand the (first, n) range to the decode pipe.
func deliver(b *Backend, uops []pipe.Uop, now int64) {
	var first uint32
	for i, u := range uops {
		idx, slot := b.Arena().Alloc()
		*slot = u
		// The fetch engine packs the scheduler word whenever it writes
		// Instr; tests building uops by hand honour the same contract.
		slot.Sched = slot.Instr.SchedPack()
		if i == 0 {
			first = idx
		}
	}
	b.Deliver(first, len(uops), now)
}

// run drives the backend n cycles starting at cycle start.
func run(b *Backend, start, n int64) (redirects []pipe.Uop) {
	for now := start; now < start+n; now++ {
		if u := b.Tick(now); u != nil {
			redirects = append(redirects, *u)
		}
	}
	return redirects
}

func TestCommitInOrder(t *testing.T) {
	b := smallBackend()
	var committed []uint64
	b.OnCommit = func(u *pipe.Uop) { committed = append(committed, u.Seq) }
	deliver(b, []pipe.Uop{mkUop(0, isa.ALU), mkUop(1, isa.ALU), mkUop(2, isa.Mul), mkUop(3, isa.ALU)}, 0)
	run(b, 1, 20)
	if b.Committed != 4 {
		t.Fatalf("Committed = %d", b.Committed)
	}
	for i, s := range committed {
		if s != uint64(i) {
			t.Fatalf("commit order broken: %v", committed)
		}
	}
	if !b.Drained() {
		t.Error("not drained")
	}
}

func TestDecodeLatencyDelaysFill(t *testing.T) {
	b := New(Config{ROBSize: 8, IssueWidth: 2, CommitWidth: 2, IssueWindow: 8, DecodeLatency: 3, PipeCap: 8})
	deliver(b, []pipe.Uop{mkUop(0, isa.ALU)}, 10)
	b.Tick(11)
	b.Tick(12)
	if b.ROBOccupancy() != 0 {
		t.Fatal("uop entered ROB before decode latency elapsed")
	}
	b.Tick(13)
	if b.ROBOccupancy() != 1 {
		t.Fatal("uop missing after decode latency")
	}
}

func TestScoreboardSerializesRAW(t *testing.T) {
	b := smallBackend()
	// u0: mul r5 <- ...(4 cycles); u1: alu reads r5.
	u0 := mkUop(0, isa.Mul)
	u0.Instr.Dst = 5
	u1 := mkUop(1, isa.ALU)
	u1.Instr.Src1 = 5
	u1.Instr.Dst = 6
	deliver(b, []pipe.Uop{u0, u1}, 0)
	b.Tick(1) // fill+issue u0 (done 1+4=5); u1 not ready
	if b.Issued != 1 {
		t.Fatalf("Issued = %d, want 1 (RAW hazard)", b.Issued)
	}
	b.Tick(2)
	b.Tick(3)
	b.Tick(4)
	if b.Issued != 1 {
		t.Fatalf("u1 issued before r5 ready (Issued=%d)", b.Issued)
	}
	b.Tick(5)
	if b.Issued != 2 {
		t.Fatalf("u1 not issued once r5 ready (Issued=%d)", b.Issued)
	}
}

func TestOutOfOrderIssueWithinWindow(t *testing.T) {
	b := smallBackend()
	// u0 long-latency producer; u1 depends on it; u2 independent.
	u0 := mkUop(0, isa.Mul)
	u0.Instr.Dst = 5
	u1 := mkUop(1, isa.ALU)
	u1.Instr.Src1 = 5
	u2 := mkUop(2, isa.ALU)
	u2.Instr.Dst = 7
	deliver(b, []pipe.Uop{u0, u1, u2}, 0)
	b.Tick(1)
	// u0 and u2 issue around the stalled u1.
	if b.Issued != 2 {
		t.Fatalf("Issued = %d, want 2 (u0 and u2)", b.Issued)
	}
}

func TestMispredictResolveRedirectsAndSquashes(t *testing.T) {
	b := smallBackend()
	br := mkUop(1, isa.CondBranch)
	br.Mispredicted = true
	br.MissKind = pipe.MissDirection
	br.ActualNextPC = 0x9000
	wrong1 := mkUop(2, isa.ALU)
	wrong1.OnCorrectPath = false
	wrong2 := mkUop(3, isa.ALU)
	wrong2.OnCorrectPath = false
	deliver(b, []pipe.Uop{mkUop(0, isa.ALU), br, wrong1, wrong2}, 0)

	redirects := run(b, 1, 10)
	if len(redirects) != 1 {
		t.Fatalf("redirects = %d", len(redirects))
	}
	if redirects[0].Seq != 1 || redirects[0].ActualNextPC != 0x9000 {
		t.Fatalf("redirect = %+v", redirects[0])
	}
	if b.Squashed != 2 {
		t.Errorf("Squashed = %d", b.Squashed)
	}
	// The branch itself and the older ALU commit; wrong-path never does.
	if b.Committed != 2 {
		t.Errorf("Committed = %d", b.Committed)
	}
	if b.MispredictsResolved[pipe.MissDirection] != 1 {
		t.Errorf("resolved by kind = %v", b.MispredictsResolved)
	}
	if !b.Drained() {
		t.Error("not drained after squash+commit")
	}
}

func TestSquashClearsYoungerWorkEverywhere(t *testing.T) {
	b := smallBackend()
	br := mkUop(0, isa.Jump)
	br.Mispredicted = true
	br.ActualNextPC = 0x8000
	deliver(b, []pipe.Uop{br}, 0)
	b.Tick(1) // fill + issue (done cycle 2)
	// Younger wrong-path work arrives while the branch executes — some
	// will be in the decode pipe, some may reach the ROB; all must die at
	// resolve.
	w1 := mkUop(1, isa.ALU)
	w1.OnCorrectPath = false
	w2 := mkUop(2, isa.ALU)
	w2.OnCorrectPath = false
	deliver(b, []pipe.Uop{w1, w2}, 1)
	red := run(b, 2, 6)
	if len(red) != 1 {
		t.Fatalf("redirects = %d", len(red))
	}
	if b.Squashed != 2 {
		t.Errorf("Squashed = %d", b.Squashed)
	}
	if b.Accept() != b.Config().PipeCap {
		t.Errorf("decode pipe not cleared: Accept = %d", b.Accept())
	}
	if b.Committed != 1 {
		t.Errorf("Committed = %d", b.Committed)
	}
	if !b.Drained() {
		t.Error("not drained")
	}
}

func TestROBFullBackpressure(t *testing.T) {
	b := New(Config{ROBSize: 4, IssueWidth: 1, CommitWidth: 1, IssueWindow: 4, DecodeLatency: 0, PipeCap: 16})
	var uops []pipe.Uop
	for i := uint64(0); i < 8; i++ {
		u := mkUop(i, isa.Mul) // slow, so the ROB clogs
		u.Instr.Dst = uint8(1 + i)
		uops = append(uops, u)
	}
	deliver(b, uops, 0)
	b.Tick(0)
	if b.ROBOccupancy() != 4 {
		t.Fatalf("ROB occupancy = %d", b.ROBOccupancy())
	}
	if b.ROBFullCycles == 0 {
		t.Error("no ROB-full cycles counted")
	}
	// Everything drains eventually.
	run(b, 1, 60)
	if b.Committed != 8 {
		t.Errorf("Committed = %d", b.Committed)
	}
}

func TestAcceptTracksPipeOccupancy(t *testing.T) {
	b := smallBackend()
	if b.Accept() != 8 {
		t.Fatalf("Accept = %d", b.Accept())
	}
	deliver(b, []pipe.Uop{mkUop(0, isa.ALU), mkUop(1, isa.ALU)}, 0)
	if b.Accept() != 6 {
		t.Fatalf("Accept after deliver = %d", b.Accept())
	}
	b.Tick(1) // decode latency 1: both move to ROB
	if b.Accept() != 8 {
		t.Fatalf("Accept after fill = %d", b.Accept())
	}
}

func TestWrongPathAtCommitHeadPanics(t *testing.T) {
	b := smallBackend()
	w := mkUop(0, isa.ALU)
	w.OnCorrectPath = false
	deliver(b, []pipe.Uop{w}, 0)
	defer func() {
		if recover() == nil {
			t.Error("wrong-path commit did not panic")
		}
	}()
	run(b, 1, 10)
}

func TestRegisterZeroNeverBlocks(t *testing.T) {
	b := smallBackend()
	u0 := mkUop(0, isa.Mul)
	u0.Instr.Dst = 0 // r0: write must be ignored
	u1 := mkUop(1, isa.ALU)
	u1.Instr.Src1 = 0
	deliver(b, []pipe.Uop{u0, u1}, 0)
	b.Tick(1)
	if b.Issued != 2 {
		t.Fatalf("Issued = %d; r0 dependence should not stall", b.Issued)
	}
}

func TestDefaultsApplied(t *testing.T) {
	// DecodeLatency 0 is a legal explicit value, so "use the default" is
	// spelled -1 for that field and 0 for the others.
	b := New(Config{DecodeLatency: -1})
	if b.Config() != DefaultConfig() {
		t.Errorf("defaults not applied: %+v", b.Config())
	}
	b2 := New(Config{})
	if b2.Config().DecodeLatency != 0 {
		t.Errorf("explicit zero DecodeLatency overridden: %+v", b2.Config())
	}
}
