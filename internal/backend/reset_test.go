package backend

import (
	"math/rand"
	"testing"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

// beTrace drives the backend with a deterministic delivery/tick mix —
// including register dependences and an occasional resolving misprediction —
// and records every observable outcome plus the final counters.
func beTrace(b *Backend, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var committed []uint64
	b.OnCommit = func(u *pipe.Uop) { committed = append(committed, u.Seq) }
	kinds := []isa.Kind{isa.ALU, isa.Mul, isa.Load, isa.CondBranch}
	var out []uint64
	seq := uint64(0)
	missInFlight := false // the model allows one unresolved mispredict
	for now := int64(1); now <= 600; now++ {
		if n := b.Accept(); n > 0 && rng.Intn(3) > 0 {
			batch := make([]pipe.Uop, 0, n)
			for j := 0; j < n && j < 4; j++ {
				u := mkUop(seq, kinds[rng.Intn(len(kinds))])
				u.Instr.Dst = uint8(1 + rng.Intn(7))
				u.Instr.Src1 = uint8(1 + rng.Intn(7))
				if !missInFlight && rng.Intn(16) == 0 {
					u.Mispredicted = true
					u.ActualNextPC = u.PC + 8
					missInFlight = true
				}
				batch = append(batch, u)
				seq++
			}
			deliver(b, batch, now)
		}
		if u := b.Tick(now); u != nil {
			missInFlight = false
			out = append(out, u.Seq, u.ActualNextPC)
		}
		out = append(out, uint64(b.ROBOccupancy()), uint64(b.Accept()))
		if e := b.NextEvent(now); e < int64(1)<<62 {
			out = append(out, uint64(e))
		}
	}
	out = append(out, committed...)
	out = append(out, b.Committed, b.Issued, b.Squashed, b.ROBFullCycles)
	for _, m := range b.MispredictsResolved {
		out = append(out, m)
	}
	return out
}

// TestBackendResetEqualsFresh dirties the backend mid-flight (live ROB
// entries, a pending misprediction, a part-full decode pipe), resets it, and
// requires the exact observable behaviour of a freshly constructed backend.
func TestBackendResetEqualsFresh(t *testing.T) {
	cfg := Config{ROBSize: 16, IssueWidth: 2, CommitWidth: 2, IssueWindow: 8, DecodeLatency: 2, PipeCap: 8}
	dirty := New(cfg)
	beTrace(dirty, 1)
	dirty.Reset()
	if !dirty.Drained() {
		t.Fatal("Reset left work in the backend")
	}
	got := beTrace(dirty, 2)
	want := beTrace(New(cfg), 2)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reset backend diverged from fresh at trace step %d: %d != %d", i, got[i], want[i])
		}
	}
}
