package backend

import (
	"math/rand"
	"testing"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

// The wakeup scheduler's contract is bit-identity with the retained linear
// scan: same issue selections in the same order, same counters, same
// redirects, same architectural end state — the bitmap and the wake bound
// are allowed to change only *when* issue looks, never *what* it picks. The
// shadow-model test here drives two backends — one per scheduler — through
// identical randomized delivery/tick/squash/reset sequences over randomized
// configurations and compares every observable (and the issue-relevant
// internals, which this package can see) after every cycle.

// shadowGen produces the shared uop sequence. It models the front end's
// protocol obligations: sequence numbers rise monotonically, at most one
// correct-path mispredict is in flight, and once a mispredict is delivered
// everything younger is wrong-path until the backend resolves it.
type shadowGen struct {
	rng      *rand.Rand
	seq      uint64
	diverged bool
}

var shadowKinds = []isa.Kind{
	isa.Nop, isa.ALU, isa.ALU, isa.ALU, isa.Mul, isa.Load, isa.Store, isa.FPU,
}

// next builds one uop. Operands draw from a small register pool so RAW, WAW,
// and same-cycle producer→consumer chains are dense, and r0/NoReg corners
// appear regularly.
func (g *shadowGen) next() pipe.Uop {
	reg := func() uint8 {
		switch g.rng.Intn(8) {
		case 0:
			return isa.NoReg
		case 1:
			return 0 // hardwired zero: never blocks, writes ignored
		default:
			return uint8(1 + g.rng.Intn(6))
		}
	}
	u := pipe.Uop{
		Seq: g.seq,
		PC:  0x1000 + g.seq*4,
		Instr: isa.Instr{
			Kind: shadowKinds[g.rng.Intn(len(shadowKinds))],
			Dst:  reg(), Src1: reg(), Src2: reg(),
		},
		OnCorrectPath: !g.diverged,
	}
	if !g.diverged && g.rng.Intn(12) == 0 {
		// A mispredicted branch: everything after it is wrong-path until
		// the backend resolves it and the redirect "repairs" the stream.
		u.Instr.Kind = isa.CondBranch
		u.Mispredicted = true
		u.MissKind = pipe.MispredictKind(1 + g.rng.Intn(4))
		u.ActualNextPC = 0x9000 + g.seq*4
		g.diverged = true
	}
	g.seq++
	return u
}

// deliverBoth writes the same uop values into both backends' arenas and
// hands each the range, mirroring the fetch engine's single-write protocol.
func deliverBoth(w, s *Backend, uops []pipe.Uop, now int64) {
	for _, b := range []*Backend{w, s} {
		var first uint32
		for i, u := range uops {
			idx, slot := b.Arena().Alloc()
			*slot = u
			slot.Sched = slot.Instr.SchedPack()
			if i == 0 {
				first = idx
			}
		}
		b.Deliver(first, len(uops), now)
	}
}

// requireSameState compares everything the scan and wakeup backends must
// agree on: public counters and occupancy, plus the per-slot ROB state and
// the scoreboard (same package, so the internals are comparable directly).
func requireSameState(t *testing.T, w, s *Backend, trial int, now int64) {
	t.Helper()
	fail := func(what string) {
		t.Fatalf("trial %d cycle %d: backends disagree on %s", trial, now, what)
	}
	if w.Issued != s.Issued || w.Committed != s.Committed || w.Squashed != s.Squashed {
		fail("counters")
	}
	if w.ROBFullCycles != s.ROBFullCycles || w.MispredictsResolved != s.MispredictsResolved {
		fail("stall/mispredict counters")
	}
	if w.ROBOccupancy() != s.ROBOccupancy() || w.Accept() != s.Accept() || w.Drained() != s.Drained() {
		fail("occupancy")
	}
	// issuedPrefix is a scan-mode accelerator (the unissued bitmap subsumes
	// it), so only the head position is part of the identity contract.
	if w.head != s.head {
		fail("ROB geometry")
	}
	if w.regReady != s.regReady {
		fail("scoreboard")
	}
	for i := 0; i < w.count; i++ {
		slot := w.idx(w.head + i)
		if w.robEnt[slot] != s.robEnt[slot] || w.robIssued[slot] != s.robIssued[slot] {
			fail("ROB entry")
		}
		if w.robIssued[slot] && w.robDone[slot] != s.robDone[slot] {
			fail("completion time")
		}
	}
}

// TestShadowModelWakeupMatchesScan is the property test: randomized
// configurations, randomized fill/issue/squash/commit/Reset sequences, and
// after every cycle the wakeup backend must be indistinguishable from the
// linear-scan reference. NextEvent may differ — the wakeup bound is
// conservative — but only downward, and never when the scan says the backend
// is active this cycle.
func TestShadowModelWakeupMatchesScan(t *testing.T) {
	pick := func(rng *rand.Rand, vs ...int) int { return vs[rng.Intn(len(vs))] }
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cfg := Config{
			ROBSize:       pick(rng, 4, 8, 16, 32),
			IssueWidth:    pick(rng, 1, 2, 4),
			CommitWidth:   pick(rng, 1, 2, 4),
			IssueWindow:   pick(rng, 2, 4, 8, 16),
			DecodeLatency: rng.Intn(4),
			PipeCap:       pick(rng, 4, 8, 16),
		}
		w := New(cfg)
		s := New(cfg)
		s.useScan = true
		gen := &shadowGen{rng: rng}

		now := int64(0)
		for step := 0; step < 400; step++ {
			if rng.Intn(60) == 0 {
				w.Reset()
				s.Reset()
				gen.diverged = false
			}
			if accept := w.Accept(); accept > 0 && rng.Intn(4) != 0 {
				n := 1 + rng.Intn(min(accept, 4))
				uops := make([]pipe.Uop, n)
				for i := range uops {
					uops[i] = gen.next()
				}
				deliverBoth(w, s, uops, now)
			}
			rw := w.Tick(now)
			rs := s.Tick(now)
			if (rw == nil) != (rs == nil) {
				t.Fatalf("trial %d cycle %d: redirect disagreement (wakeup %v, scan %v)", trial, now, rw, rs)
			}
			if rw != nil {
				if rw.Seq != rs.Seq || rw.ActualNextPC != rs.ActualNextPC || rw.MissKind != rs.MissKind {
					t.Fatalf("trial %d cycle %d: redirects differ: wakeup %+v scan %+v", trial, now, *rw, *rs)
				}
				gen.diverged = false
			}
			requireSameState(t, w, s, trial, now)

			ew, es := w.NextEvent(now+1), s.NextEvent(now+1)
			if ew > es {
				t.Fatalf("trial %d cycle %d: wakeup NextEvent %d later than scan %d", trial, now, ew, es)
			}
			if es == now+1 && ew != es {
				t.Fatalf("trial %d cycle %d: scan is active next cycle but wakeup sleeps until %d", trial, now, ew)
			}
			// Occasionally skip idle stretches the way the core's scheduler
			// does, using the (earlier, conservative) wakeup bound — Tick
			// must be a no-op on the skipped cycles for both models, so the
			// lockstep comparison survives the jump.
			if d := ew - (now + 1); d > 0 && d < 1000 && rng.Intn(2) == 0 {
				now = ew - 1
			}
			now++
		}

		// Drain: no new deliveries, run both dry and compare the end state.
		for spin := 0; !w.Drained() || !s.Drained(); spin++ {
			if spin > 10000 {
				t.Fatalf("trial %d: backends failed to drain", trial)
			}
			rw, rs := w.Tick(now), s.Tick(now)
			if (rw == nil) != (rs == nil) {
				t.Fatalf("trial %d drain cycle %d: redirect disagreement", trial, now)
			}
			requireSameState(t, w, s, trial, now)
			now++
		}
	}
}

// TestSchedulerStateSurvivesReset is the scheduler-structure Reset
// differential: a backend abandoned with a populated wakeup window — blocked
// waiters in the unissued bitmap, a wake bound parked in the future — is
// Reset and then driven through a uop sequence in lockstep with a fresh
// backend. Any scheduler state leaking across Reset (a stale unissued bit, a
// stale bound suppressing the first scan) diverges the pair immediately.
func TestSchedulerStateSurvivesReset(t *testing.T) {
	cfg := Config{ROBSize: 16, IssueWidth: 2, CommitWidth: 2, IssueWindow: 8, DecodeLatency: 1, PipeCap: 8}
	dirty := New(cfg)

	// Dirty: a long-latency producer with a tail of dependent consumers,
	// abandoned mid-flight so the consumers are still operand-blocked.
	prod := mkUop(0, isa.Mul)
	prod.Instr.Dst = 5
	chain := []pipe.Uop{prod}
	for i := uint64(1); i < 6; i++ {
		c := mkUop(i, isa.ALU)
		c.Instr.Src1 = 5
		c.Instr.Dst = uint8(10 + i)
		chain = append(chain, c)
	}
	deliver(dirty, chain, 0)
	dirty.Tick(1) // fill + issue the producer; consumers block on r5
	if dirty.unCount == 0 {
		t.Fatal("dirtying failed: no blocked entries in the wakeup window")
	}
	if dirty.wakeBound <= 1 {
		t.Fatalf("dirtying failed: wakeBound %d not parked in the future", dirty.wakeBound)
	}
	dirty.Reset()

	// Replay an unrelated sequence on the reset machine and a fresh one.
	fresh := New(cfg)
	gen := &shadowGen{rng: rand.New(rand.NewSource(99))}
	now := int64(0)
	for step := 0; step < 200; step++ {
		if accept := fresh.Accept(); accept > 0 && gen.rng.Intn(3) != 0 {
			n := 1 + gen.rng.Intn(min(accept, 4))
			uops := make([]pipe.Uop, n)
			for i := range uops {
				uops[i] = gen.next()
			}
			deliverBoth(dirty, fresh, uops, now)
		}
		rd, rf := dirty.Tick(now), fresh.Tick(now)
		if (rd == nil) != (rf == nil) {
			t.Fatalf("cycle %d: redirect disagreement after Reset", now)
		}
		if rd != nil {
			gen.diverged = false
		}
		requireSameState(t, dirty, fresh, 0, now)
		if dirty.wakeBound != fresh.wakeBound || dirty.unCount != fresh.unCount {
			t.Fatalf("cycle %d: scheduler state differs after Reset (wakeBound %d vs %d, unCount %d vs %d)",
				now, dirty.wakeBound, fresh.wakeBound, dirty.unCount, fresh.unCount)
		}
		now++
	}
}
