// Package backend models the execution core behind the decoupled front end:
// a decode pipe, a reorder buffer with a register scoreboard (out-of-order
// issue within a window, in-order commit), and branch resolution.
//
// The study targets the front end, so the backend is deliberately simple but
// honest about what matters to it: instruction consumption rate, window
// occupancy, execution latency before a branch resolves, and in-order commit
// of correct-path work only.
package backend

import (
	"fmt"
	"math"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

// Config sizes the backend.
type Config struct {
	// ROBSize is the reorder buffer capacity.
	ROBSize int
	// IssueWidth and CommitWidth bound per-cycle issue and commit.
	IssueWidth, CommitWidth int
	// IssueWindow is how many unissued entries the scheduler examines per
	// cycle (a cheap stand-in for scheduler size).
	IssueWindow int
	// DecodeLatency is the fetch-to-rename depth in cycles.
	DecodeLatency int
	// PipeCap is the decode pipe capacity in instructions; it is the
	// backpressure the fetch engine sees.
	PipeCap int
}

// DefaultConfig returns the paper-inspired 8-wide, 128-entry core.
func DefaultConfig() Config {
	return Config{ROBSize: 128, IssueWidth: 8, CommitWidth: 8, IssueWindow: 32, DecodeLatency: 3, PipeCap: 32}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.ROBSize <= 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth <= 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.IssueWindow <= 0 {
		c.IssueWindow = d.IssueWindow
	}
	if c.DecodeLatency < 0 {
		c.DecodeLatency = d.DecodeLatency
	}
	if c.PipeCap <= 0 {
		c.PipeCap = d.PipeCap
	}
}

// Backend is the execution model.
type Backend struct {
	cfg Config

	// The ROB is stored as parallel arrays: the scheduler and commit scans
	// touch only the dense issued/done arrays, keeping the big uop records
	// out of their cache footprint.
	robU      []pipe.Uop
	robIssued []bool
	robDone   []int64
	head      int
	count     int
	// issuedPrefix is a conservative count of entries from head that are
	// all issued; the scheduler scan starts past them. Invariant: every
	// entry in [head, head+issuedPrefix) has issued set.
	issuedPrefix int

	regReady [isa.NumRegs]int64
	// The decode pipe is a pair of parallel arrays (uops and their
	// decode-ready cycles) consumed from dpHead; keeping the ready cycles
	// dense means the fill scan and NextEvent never drag uop records
	// through the cache.
	dpU     []pipe.Uop
	dpReady []int64
	dpHead  int

	missPresent bool
	missIssued  bool
	missDone    int64
	missUop     pipe.Uop
	redirect    pipe.Uop // stable home for the uop Tick returns on resolve

	// quietUntil memoises the scheduler scan's no-issue horizon: while
	// quietValid and now < quietUntil, no entry in the issue window can
	// have ready operands, so both issue and NextEvent skip the window
	// scan. Readiness depends only on regReady, the clock, and window
	// membership, so the memo is invalidated wherever those change: an
	// issue (regReady writes), a fill (new window entry), a squash
	// (membership), and Reset. Commit removes only issued entries and
	// leaves the memo valid.
	quietUntil int64
	quietValid bool

	// OnCommit, when set, observes every committed (correct-path) uop —
	// the core uses it for predictor/FTB training and statistics.
	OnCommit func(u *pipe.Uop)

	// Committed counts architecturally retired instructions; Issued all
	// issues including wrong-path; Squashed entries discarded by
	// redirects; ROBFullCycles cycles rename stalled on a full ROB.
	Committed, Issued, Squashed uint64
	ROBFullCycles               uint64
	// MispredictsResolved counts redirects returned, by kind.
	MispredictsResolved [5]uint64
}

// New builds a backend. The decode pipe's backing array is pre-sized to its
// compaction high-water mark (see fill), so steady-state delivery never
// allocates.
func New(cfg Config) *Backend {
	cfg.setDefaults()
	return &Backend{
		cfg:       cfg,
		robU:      make([]pipe.Uop, cfg.ROBSize),
		robIssued: make([]bool, cfg.ROBSize),
		robDone:   make([]int64, cfg.ROBSize),
		dpU:       make([]pipe.Uop, 0, 5*cfg.PipeCap+8),
		dpReady:   make([]int64, 0, 5*cfg.PipeCap+8),
	}
}

// Config returns the normalised configuration.
func (b *Backend) Config() Config { return b.cfg }

// Reset restores the pristine just-constructed state: an empty ROB and
// decode pipe, a clean scoreboard, no pending misprediction, and counters
// zeroed, retaining every backing array (stale ROB slots are unobservable —
// fill rewrites a slot completely before count makes it live). The OnCommit
// hook persists; owners that rebind it per run may do so after Reset.
func (b *Backend) Reset() {
	b.head = 0
	b.count = 0
	b.issuedPrefix = 0
	b.regReady = [isa.NumRegs]int64{}
	b.dpU = b.dpU[:0]
	b.dpReady = b.dpReady[:0]
	b.dpHead = 0
	b.missPresent = false
	b.missIssued = false
	b.missDone = 0
	b.missUop = pipe.Uop{}
	b.redirect = pipe.Uop{}
	b.quietUntil = 0
	b.quietValid = false
	b.Committed, b.Issued, b.Squashed = 0, 0, 0
	b.ROBFullCycles = 0
	b.MispredictsResolved = [5]uint64{}
}

// Accept returns how many instructions the decode pipe can take this cycle.
func (b *Backend) Accept() int { return b.cfg.PipeCap - (len(b.dpU) - b.dpHead) }

// Drained reports whether no work remains anywhere in the backend.
func (b *Backend) Drained() bool { return b.count == 0 && len(b.dpU) == b.dpHead }

// ROBOccupancy returns the live ROB entry count.
func (b *Backend) ROBOccupancy() int { return b.count }

// Deliver accepts fetched uops into the decode pipe at cycle now. (Building
// uops directly in pipe storage was tried and measured slower: the small
// caller-owned fetch buffer stays cache-hot, and one streaming copy here
// beats scattered stores into the pipe's larger ring.)
func (b *Backend) Deliver(uops []pipe.Uop, now int64) {
	ready := now + int64(b.cfg.DecodeLatency)
	for i := range uops {
		b.dpU = append(b.dpU, uops[i])
		b.dpReady = append(b.dpReady, ready)
	}
}

// Tick advances one cycle. It returns the resolved misprediction to redirect
// on, or nil; the backend has already squashed its own younger work, and the
// caller must repair the front end (FTQ, BPU, prefetcher). The returned
// pointer aliases backend-owned storage valid until the next Tick — a
// pointer rather than a value so the per-cycle hot path never copies a uop.
func (b *Backend) Tick(now int64) *pipe.Uop {
	b.fill(now)
	redirect := b.resolve(now)
	b.commit(now)
	b.issue(now)
	return redirect
}

// idx wraps a ROB position into [0, ROBSize). Positions exceed the size by
// at most one lap, so a conditional subtract replaces the modulo the hot
// loops would otherwise pay for.
func (b *Backend) idx(i int) int {
	if i >= b.cfg.ROBSize {
		i -= b.cfg.ROBSize
	}
	return i
}

// NextEvent returns the earliest cycle, at or after now, at which Tick could
// change backend state or counters: a decoded instruction reaching the ROB
// (or stalling on a full one), the pending misprediction resolving, the ROB
// head becoming committable, or any scheduler-window entry's operands turning
// ready. A return equal to now means the backend is active this cycle;
// math.MaxInt64 means it is fully drained. The core's cycle-skip scheduler
// relies on the guarantee that Tick is a pure no-op strictly before the
// returned cycle, provided no new uops are delivered in between.
func (b *Backend) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if b.dpHead < len(b.dpU) {
		r := b.dpReady[b.dpHead]
		if r <= now {
			return now // fill moves an entry or counts a ROB-full stall
		}
		next = r
	}
	if b.missPresent && b.missIssued {
		if b.missDone <= now {
			return now
		}
		if b.missDone < next {
			next = b.missDone
		}
	}
	if b.count > 0 {
		if b.robIssued[b.head] {
			if b.robDone[b.head] <= now {
				return now // head commits this cycle
			}
			if b.robDone[b.head] < next {
				next = b.robDone[b.head]
			}
		}
		if w := b.windowReadyAt(now); w <= now {
			return now // an entry could issue this cycle
		} else if w < next {
			next = w
		}
	}
	return next
}

// readyAt returns the cycle the instruction's operands turn ready, never
// earlier than now. Register 0 and NoReg are always ready. The quiet memo
// is only sound while the scheduler scan (windowReadyAt) and issue agree
// on this computation, so both call here.
func (b *Backend) readyAt(ins *isa.Instr, now int64) int64 {
	t := now
	if s := ins.Src1; s != isa.NoReg && s != 0 && b.regReady[s] > t {
		t = b.regReady[s]
	}
	if s := ins.Src2; s != isa.NoReg && s != 0 && b.regReady[s] > t {
		t = b.regReady[s]
	}
	return t
}

// windowReadyAt returns the earliest cycle any unissued entry in the
// scheduler window could have ready operands: now when one is ready this
// cycle, math.MaxInt64 when the window holds none. A scan that proves the
// window quiet records its horizon in the quiet memo, so repeat queries —
// NextEvent after every stepped cycle, and issue's own scan — cost nothing
// until the horizon arrives or the window changes.
func (b *Backend) windowReadyAt(now int64) int64 {
	if b.quietValid && now < b.quietUntil {
		return b.quietUntil
	}
	next := int64(math.MaxInt64)
	examined := 0
	pos := b.idx(b.head + b.issuedPrefix)
	for i := b.issuedPrefix; i < b.count && examined < b.cfg.IssueWindow; i++ {
		slot := pos
		pos = b.idx(pos + 1)
		if b.robIssued[slot] {
			continue
		}
		examined++
		t := b.readyAt(&b.robU[slot].Instr, now)
		if t <= now {
			return now // ready: do not memoise, issue mutates this cycle
		}
		if t < next {
			next = t
		}
	}
	// Nothing issues before next: all examined operand-ready times are
	// clock-independent values strictly past now, so the horizon stays
	// exact until regReady or the window membership changes — the
	// invalidation points documented on quietUntil.
	b.quietUntil = next
	b.quietValid = true
	return next
}

// fill moves decoded instructions into the ROB.
func (b *Backend) fill(now int64) {
	for b.dpHead < len(b.dpU) && b.dpReady[b.dpHead] <= now {
		if b.count == b.cfg.ROBSize {
			b.ROBFullCycles++
			return
		}
		slot := b.idx(b.head + b.count)
		b.robU[slot] = b.dpU[b.dpHead]
		b.robIssued[slot] = false
		b.robDone[slot] = 0
		b.count++
		b.quietValid = false // a new window entry may be ready sooner
		b.dpHead++
		if b.dpHead == len(b.dpU) {
			b.dpU = b.dpU[:0]
			b.dpReady = b.dpReady[:0]
			b.dpHead = 0
		} else if b.dpHead > 4*b.cfg.PipeCap {
			// Compact so the backing arrays stay bounded.
			n := copy(b.dpU, b.dpU[b.dpHead:])
			copy(b.dpReady, b.dpReady[b.dpHead:])
			b.dpU = b.dpU[:n]
			b.dpReady = b.dpReady[:n]
			b.dpHead = 0
		}
		if u := &b.robU[slot]; u.Mispredicted {
			if b.missPresent {
				panic(fmt.Sprintf("backend: second in-flight mispredict (seq %d after %d)", u.Seq, b.missUop.Seq))
			}
			b.missPresent = true
			b.missIssued = false
			b.missUop = *u
		}
	}
}

// resolve fires the pending misprediction once it has executed, squashing
// everything younger immediately so the same cycle's commit/issue never see
// dead work.
func (b *Backend) resolve(now int64) *pipe.Uop {
	if b.missPresent && b.missIssued && b.missDone <= now {
		b.missPresent = false
		b.MispredictsResolved[b.missUop.MissKind]++
		b.SquashAfter(b.missUop.Seq)
		b.redirect = b.missUop
		return &b.redirect
	}
	return nil
}

// commit retires completed instructions in order.
func (b *Backend) commit(now int64) {
	for n := 0; n < b.cfg.CommitWidth && b.count > 0; n++ {
		if !b.robIssued[b.head] || b.robDone[b.head] > now {
			return
		}
		u := &b.robU[b.head]
		if !u.OnCorrectPath {
			// Wrong-path work is removed by SquashAfter, never committed;
			// reaching here means the redirect protocol was violated.
			panic(fmt.Sprintf("backend: wrong-path uop seq %d at commit head", u.Seq))
		}
		if b.OnCommit != nil {
			b.OnCommit(u)
		}
		b.Committed++
		b.head = b.idx(b.head + 1)
		b.count--
		if b.issuedPrefix > 0 {
			b.issuedPrefix--
		}
	}
}

// issue selects ready instructions within the scheduler window. The scan
// starts past the issued prefix — entries the original head-to-tail walk
// would skip one by one — which keeps the per-cycle cost proportional to
// live scheduler work instead of ROB occupancy; a valid quiet memo proves
// the whole window operand-blocked and skips the scan outright.
func (b *Backend) issue(now int64) {
	for b.issuedPrefix < b.count && b.robIssued[b.idx(b.head+b.issuedPrefix)] {
		b.issuedPrefix++
	}
	if b.quietValid && now < b.quietUntil {
		return
	}
	issued := 0
	examined := 0
	quiet := int64(math.MaxInt64)
	pos := b.idx(b.head + b.issuedPrefix)
	for i := b.issuedPrefix; i < b.count && issued < b.cfg.IssueWidth && examined < b.cfg.IssueWindow; i++ {
		slot := pos
		pos = b.idx(pos + 1)
		if b.robIssued[slot] {
			continue
		}
		examined++
		u := &b.robU[slot]
		if t := b.readyAt(&u.Instr, now); t > now {
			if t < quiet {
				quiet = t
			}
			continue
		}
		b.robIssued[slot] = true
		done := now + int64(u.Instr.Kind.Latency())
		b.robDone[slot] = done
		if d := u.Instr.Dst; d != isa.NoReg && d != 0 {
			b.regReady[d] = done
		}
		if u.Mispredicted && b.missPresent && u.Seq == b.missUop.Seq {
			b.missIssued = true
			b.missDone = done
		}
		b.Issued++
		issued++
	}
	if issued == 0 {
		// The window is operand-blocked until quiet; remember it so the
		// coming cycles (and NextEvent) skip the scan.
		b.quietUntil = quiet
		b.quietValid = true
	} else {
		b.quietValid = false // regReady changed under the memo
	}
}

// SquashAfter removes every instruction younger than seq — ROB tail entries
// and the whole decode pipe (anything decoded after a resolving branch is
// younger by construction).
func (b *Backend) SquashAfter(seq uint64) {
	b.quietValid = false // window membership changes
	for b.count > 0 {
		tail := b.idx(b.head + b.count - 1)
		if b.robU[tail].Seq <= seq {
			break
		}
		b.count--
		b.Squashed++
	}
	if b.issuedPrefix > b.count {
		b.issuedPrefix = b.count
	}
	b.Squashed += uint64(len(b.dpU) - b.dpHead)
	b.dpU = b.dpU[:0]
	b.dpReady = b.dpReady[:0]
	b.dpHead = 0
	// A squashed younger mispredict cannot exist (only one correct-path
	// mispredict is ever in flight), so missPresent stays untouched unless
	// it was the resolving branch itself, which resolve() already cleared.
}
