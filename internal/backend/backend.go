// Package backend models the execution core behind the decoupled front end:
// a decode pipe, a reorder buffer with a register scoreboard (out-of-order
// issue within a window, in-order commit), and branch resolution.
//
// The study targets the front end, so the backend is deliberately simple but
// honest about what matters to it: instruction consumption rate, window
// occupancy, execution latency before a branch resolves, and in-order commit
// of correct-path work only.
package backend

import (
	"fmt"
	"math"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

// Config sizes the backend.
type Config struct {
	// ROBSize is the reorder buffer capacity.
	ROBSize int
	// IssueWidth and CommitWidth bound per-cycle issue and commit.
	IssueWidth, CommitWidth int
	// IssueWindow is how many unissued entries the scheduler examines per
	// cycle (a cheap stand-in for scheduler size).
	IssueWindow int
	// DecodeLatency is the fetch-to-rename depth in cycles.
	DecodeLatency int
	// PipeCap is the decode pipe capacity in instructions; it is the
	// backpressure the fetch engine sees.
	PipeCap int
}

// DefaultConfig returns the paper-inspired 8-wide, 128-entry core.
func DefaultConfig() Config {
	return Config{ROBSize: 128, IssueWidth: 8, CommitWidth: 8, IssueWindow: 32, DecodeLatency: 3, PipeCap: 32}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.ROBSize <= 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth <= 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.IssueWindow <= 0 {
		c.IssueWindow = d.IssueWindow
	}
	if c.DecodeLatency < 0 {
		c.DecodeLatency = d.DecodeLatency
	}
	if c.PipeCap <= 0 {
		c.PipeCap = d.PipeCap
	}
}

// Backend is the execution model.
type Backend struct {
	cfg Config

	// ar is the uop arena: the single home of every in-flight dynamic
	// instruction record. The backend owns it — max in-flight is the
	// decode pipe capacity plus the ROB size, both backend dimensions —
	// and the fetch engine allocates into it (see core's wiring). Every
	// structure below holds 32-bit arena indices, never Uop values.
	ar *pipe.Arena

	// The ROB is stored as parallel arrays: the scheduler and commit scans
	// touch only the dense issued/done arrays, and each entry is a 4-byte
	// arena index, so nothing here ever copies a uop record.
	robIdx    []uint32
	robIssued []bool
	robDone   []int64
	head      int
	count     int
	// issuedPrefix is a conservative count of entries from head that are
	// all issued; the scheduler scan starts past them. Invariant: every
	// entry in [head, head+issuedPrefix) has issued set.
	issuedPrefix int

	regReady [isa.NumRegs]int64
	// The decode pipe is a FIFO ring of delivery segments: each Deliver
	// call hands over one contiguous arena range whose uops all decode on
	// the same cycle, so the pipe stores (first, n, ready) triples instead
	// of per-uop entries — O(1) delivery, no per-instruction append
	// traffic. Every segment holds at least one instruction and the pipe
	// holds at most PipeCap instructions (Deliver is bounded by Accept),
	// so PipeCap segments always suffice.
	dpSegs   []dpSeg
	dpSegHd  int
	dpSegCnt int
	dpCount  int // instructions across all segments

	missPresent bool
	missIssued  bool
	missDone    int64
	missIdx     uint32 // arena index of the pending mispredict (valid while missPresent)

	// quietUntil memoises the scheduler scan's no-issue horizon: while
	// quietValid and now < quietUntil, no entry in the issue window can
	// have ready operands, so both issue and NextEvent skip the window
	// scan. Readiness depends only on regReady, the clock, and window
	// membership, so the memo is invalidated wherever those change: an
	// issue (regReady writes), a fill (new window entry), a squash
	// (membership), and Reset. Commit removes only issued entries and
	// leaves the memo valid.
	quietUntil int64
	quietValid bool

	// OnCommit, when set, observes every committed (correct-path) uop —
	// the core uses it for predictor/FTB training and statistics.
	//
	// No-retention contract: the pointer aliases arena storage whose slot
	// is recycled after the callback returns. Callbacks must read what
	// they need during the call and must not retain the pointer or rely
	// on the pointed-to contents afterwards (enforced by
	// core.TestOnCommitPointerNotRetained).
	OnCommit func(u *pipe.Uop)

	// Committed counts architecturally retired instructions; Issued all
	// issues including wrong-path; Squashed entries discarded by
	// redirects; ROBFullCycles cycles rename stalled on a full ROB.
	Committed, Issued, Squashed uint64
	ROBFullCycles               uint64
	// MispredictsResolved counts redirects returned, by kind.
	MispredictsResolved [5]uint64
}

// dpSeg is one decode-pipe delivery: a contiguous arena range of n uops that
// all become ROB-eligible at cycle ready.
type dpSeg struct {
	first uint32
	n     int32
	ready int64
}

// New builds a backend, allocating the uop arena it shares with the fetch
// engine (Arena). All backing arrays are fixed-size, so steady-state
// delivery never allocates.
func New(cfg Config) *Backend {
	cfg.setDefaults()
	return &Backend{
		cfg:       cfg,
		ar:        pipe.NewArena(cfg.PipeCap + cfg.ROBSize + 8),
		robIdx:    make([]uint32, cfg.ROBSize),
		robIssued: make([]bool, cfg.ROBSize),
		robDone:   make([]int64, cfg.ROBSize),
		dpSegs:    make([]dpSeg, cfg.PipeCap),
	}
}

// Config returns the normalised configuration.
func (b *Backend) Config() Config { return b.cfg }

// Arena returns the uop arena the fetch engine allocates into. It is sized
// to the maximum in-flight uop count (decode pipe capacity + ROB size +
// slack), which the backend's own backpressure (Accept) enforces.
func (b *Backend) Arena() *pipe.Arena { return b.ar }

// Reset restores the pristine just-constructed state: an empty ROB and
// decode pipe, an empty uop arena, a clean scoreboard, no pending
// misprediction, and counters zeroed, retaining every backing array (stale
// ROB and arena slots are unobservable — fill rewrites a ROB slot completely
// before count makes it live, and buildUop assigns every arena field). The
// OnCommit hook persists; owners that rebind it per run may do so after
// Reset.
func (b *Backend) Reset() {
	b.ar.Reset()
	b.head = 0
	b.count = 0
	b.issuedPrefix = 0
	b.regReady = [isa.NumRegs]int64{}
	b.dpSegHd = 0
	b.dpSegCnt = 0
	b.dpCount = 0
	b.missPresent = false
	b.missIssued = false
	b.missDone = 0
	b.missIdx = 0
	b.quietUntil = 0
	b.quietValid = false
	b.Committed, b.Issued, b.Squashed = 0, 0, 0
	b.ROBFullCycles = 0
	b.MispredictsResolved = [5]uint64{}
}

// Accept returns how many instructions the decode pipe can take this cycle.
func (b *Backend) Accept() int { return b.cfg.PipeCap - b.dpCount }

// Drained reports whether no work remains anywhere in the backend.
func (b *Backend) Drained() bool { return b.count == 0 && b.dpCount == 0 }

// ROBOccupancy returns the live ROB entry count.
func (b *Backend) ROBOccupancy() int { return b.count }

// Deliver accepts a contiguous arena range of n fetched uops starting at
// slot first into the decode pipe at cycle now. The uops were written once,
// in place, by the fetch engine; from here on only the range's (first, n)
// coordinates move — one segment push, O(1) whatever the batch size.
func (b *Backend) Deliver(first uint32, n int, now int64) {
	if n <= 0 {
		return
	}
	tail := b.dpSegHd + b.dpSegCnt
	if tail >= len(b.dpSegs) {
		tail -= len(b.dpSegs)
	}
	b.dpSegs[tail] = dpSeg{first: first, n: int32(n), ready: now + int64(b.cfg.DecodeLatency)}
	b.dpSegCnt++
	b.dpCount += n
}

// Tick advances one cycle. It returns the resolved misprediction to redirect
// on, or nil; the backend has already squashed its own younger work, and the
// caller must repair the front end (FTQ, BPU, prefetcher). The returned
// pointer aliases the resolved branch's arena slot — the branch survives its
// own squash and stays live at least until it commits, so the pointer is
// valid until the next Tick — a pointer rather than a value so the per-cycle
// hot path never copies a uop.
func (b *Backend) Tick(now int64) *pipe.Uop {
	b.fill(now)
	redirect := b.resolve(now)
	b.commit(now)
	b.issue(now)
	return redirect
}

// idx wraps a ROB position into [0, ROBSize). Positions exceed the size by
// at most one lap, so a conditional subtract replaces the modulo the hot
// loops would otherwise pay for.
func (b *Backend) idx(i int) int {
	if i >= b.cfg.ROBSize {
		i -= b.cfg.ROBSize
	}
	return i
}

// NextEvent returns the earliest cycle, at or after now, at which Tick could
// change backend state or counters: a decoded instruction reaching the ROB
// (or stalling on a full one), the pending misprediction resolving, the ROB
// head becoming committable, or any scheduler-window entry's operands turning
// ready. A return equal to now means the backend is active this cycle;
// math.MaxInt64 means it is fully drained. The core's cycle-skip scheduler
// relies on the guarantee that Tick is a pure no-op strictly before the
// returned cycle, provided no new uops are delivered in between.
func (b *Backend) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if b.dpSegCnt > 0 {
		r := b.dpSegs[b.dpSegHd].ready
		if r <= now {
			return now // fill moves an entry or counts a ROB-full stall
		}
		next = r
	}
	if b.missPresent && b.missIssued {
		if b.missDone <= now {
			return now
		}
		if b.missDone < next {
			next = b.missDone
		}
	}
	if b.count > 0 {
		if b.robIssued[b.head] {
			if b.robDone[b.head] <= now {
				return now // head commits this cycle
			}
			if b.robDone[b.head] < next {
				next = b.robDone[b.head]
			}
		}
		if w := b.windowReadyAt(now); w <= now {
			return now // an entry could issue this cycle
		} else if w < next {
			next = w
		}
	}
	return next
}

// readyAt returns the cycle the instruction's operands turn ready, never
// earlier than now. Register 0 and NoReg are always ready. The quiet memo
// is only sound while the scheduler scan (windowReadyAt) and issue agree
// on this computation, so both call here.
func (b *Backend) readyAt(ins *isa.Instr, now int64) int64 {
	t := now
	if s := ins.Src1; s != isa.NoReg && s != 0 && b.regReady[s] > t {
		t = b.regReady[s]
	}
	if s := ins.Src2; s != isa.NoReg && s != 0 && b.regReady[s] > t {
		t = b.regReady[s]
	}
	return t
}

// windowReadyAt returns the earliest cycle any unissued entry in the
// scheduler window could have ready operands: now when one is ready this
// cycle, math.MaxInt64 when the window holds none. A scan that proves the
// window quiet records its horizon in the quiet memo, so repeat queries —
// NextEvent after every stepped cycle, and issue's own scan — cost nothing
// until the horizon arrives or the window changes.
func (b *Backend) windowReadyAt(now int64) int64 {
	if b.quietValid && now < b.quietUntil {
		return b.quietUntil
	}
	next := int64(math.MaxInt64)
	examined := 0
	pos := b.idx(b.head + b.issuedPrefix)
	for i := b.issuedPrefix; i < b.count && examined < b.cfg.IssueWindow; i++ {
		slot := pos
		pos = b.idx(pos + 1)
		if b.robIssued[slot] {
			continue
		}
		examined++
		t := b.readyAt(&b.ar.At(b.robIdx[slot]).Instr, now)
		if t <= now {
			return now // ready: do not memoise, issue mutates this cycle
		}
		if t < next {
			next = t
		}
	}
	// Nothing issues before next: all examined operand-ready times are
	// clock-independent values strictly past now, so the horizon stays
	// exact until regReady or the window membership changes — the
	// invalidation points documented on quietUntil.
	b.quietUntil = next
	b.quietValid = true
	return next
}

// fill moves decoded instructions into the ROB, consuming whole delivery
// segments front to back (a segment's uops share one ready cycle, and
// segments are FIFO in both delivery and decode order).
func (b *Backend) fill(now int64) {
	for b.dpSegCnt > 0 {
		s := &b.dpSegs[b.dpSegHd]
		if s.ready > now {
			return
		}
		for s.n > 0 {
			if b.count == b.cfg.ROBSize {
				b.ROBFullCycles++
				return
			}
			slot := b.idx(b.head + b.count)
			ai := s.first
			b.robIdx[slot] = ai
			b.robIssued[slot] = false
			b.robDone[slot] = 0
			b.count++
			b.quietValid = false // a new window entry may be ready sooner
			s.first = b.ar.Next(ai)
			s.n--
			b.dpCount--
			if u := b.ar.At(ai); u.Mispredicted {
				if b.missPresent {
					panic(fmt.Sprintf("backend: second in-flight mispredict (seq %d after %d)", u.Seq, b.ar.At(b.missIdx).Seq))
				}
				b.missPresent = true
				b.missIssued = false
				b.missIdx = ai
			}
		}
		b.dpSegHd++
		if b.dpSegHd == len(b.dpSegs) {
			b.dpSegHd = 0
		}
		b.dpSegCnt--
	}
}

// resolve fires the pending misprediction once it has executed, squashing
// everything younger immediately so the same cycle's commit/issue never see
// dead work.
func (b *Backend) resolve(now int64) *pipe.Uop {
	if b.missPresent && b.missIssued && b.missDone <= now {
		b.missPresent = false
		u := b.ar.At(b.missIdx)
		b.MispredictsResolved[u.MissKind]++
		b.SquashAfter(u.Seq)
		return u
	}
	return nil
}

// commit retires completed instructions in order, releasing each one's
// arena slot — the oldest live slot, since the arena allocates in fetch
// order — once the OnCommit observer has returned.
func (b *Backend) commit(now int64) {
	for n := 0; n < b.cfg.CommitWidth && b.count > 0; n++ {
		if !b.robIssued[b.head] || b.robDone[b.head] > now {
			return
		}
		u := b.ar.At(b.robIdx[b.head])
		if !u.OnCorrectPath {
			// Wrong-path work is removed by SquashAfter, never committed;
			// reaching here means the redirect protocol was violated.
			panic(fmt.Sprintf("backend: wrong-path uop seq %d at commit head", u.Seq))
		}
		if b.OnCommit != nil {
			b.OnCommit(u)
		}
		b.ar.FreeOldest(1)
		b.Committed++
		b.head = b.idx(b.head + 1)
		b.count--
		if b.issuedPrefix > 0 {
			b.issuedPrefix--
		}
	}
}

// issue selects ready instructions within the scheduler window. The scan
// starts past the issued prefix — entries the original head-to-tail walk
// would skip one by one — which keeps the per-cycle cost proportional to
// live scheduler work instead of ROB occupancy; a valid quiet memo proves
// the whole window operand-blocked and skips the scan outright.
func (b *Backend) issue(now int64) {
	for b.issuedPrefix < b.count && b.robIssued[b.idx(b.head+b.issuedPrefix)] {
		b.issuedPrefix++
	}
	if b.quietValid && now < b.quietUntil {
		return
	}
	issued := 0
	examined := 0
	quiet := int64(math.MaxInt64)
	pos := b.idx(b.head + b.issuedPrefix)
	for i := b.issuedPrefix; i < b.count && issued < b.cfg.IssueWidth && examined < b.cfg.IssueWindow; i++ {
		slot := pos
		pos = b.idx(pos + 1)
		if b.robIssued[slot] {
			continue
		}
		examined++
		ai := b.robIdx[slot]
		u := b.ar.At(ai)
		if t := b.readyAt(&u.Instr, now); t > now {
			if t < quiet {
				quiet = t
			}
			continue
		}
		b.robIssued[slot] = true
		done := now + int64(u.Instr.Kind.Latency())
		b.robDone[slot] = done
		if d := u.Instr.Dst; d != isa.NoReg && d != 0 {
			b.regReady[d] = done
		}
		if u.Mispredicted && b.missPresent && ai == b.missIdx {
			b.missIssued = true
			b.missDone = done
		}
		b.Issued++
		issued++
	}
	if issued == 0 {
		// The window is operand-blocked until quiet; remember it so the
		// coming cycles (and NextEvent) skip the scan.
		b.quietUntil = quiet
		b.quietValid = true
	} else {
		b.quietValid = false // regReady changed under the memo
	}
}

// SquashAfter removes every instruction younger than seq — ROB tail entries
// and the whole decode pipe (anything decoded after a resolving branch is
// younger by construction) — and rolls their arena slots back. The squashed
// set is exactly the arena's youngest allocated suffix: every live uop
// younger than seq sits in the ROB tail or the decode pipe, both counted
// here.
func (b *Backend) SquashAfter(seq uint64) {
	b.quietValid = false // window membership changes
	squashed := 0
	for b.count > 0 {
		tail := b.idx(b.head + b.count - 1)
		if b.ar.At(b.robIdx[tail]).Seq <= seq {
			break
		}
		b.count--
		squashed++
	}
	if b.issuedPrefix > b.count {
		b.issuedPrefix = b.count
	}
	squashed += b.dpCount
	b.Squashed += uint64(squashed)
	b.dpSegHd = 0
	b.dpSegCnt = 0
	b.dpCount = 0
	b.ar.FreeNewest(squashed)
	// A squashed younger mispredict cannot exist (only one correct-path
	// mispredict is ever in flight), so missPresent stays untouched unless
	// it was the resolving branch itself, which resolve() already cleared.
}
