// Package backend models the execution core behind the decoupled front end:
// a decode pipe, a reorder buffer with a register scoreboard (out-of-order
// issue within a window, in-order commit), and branch resolution.
//
// The study targets the front end, so the backend is deliberately simple but
// honest about what matters to it: instruction consumption rate, window
// occupancy, execution latency before a branch resolves, and in-order commit
// of correct-path work only.
package backend

import (
	"fmt"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

// Config sizes the backend.
type Config struct {
	// ROBSize is the reorder buffer capacity.
	ROBSize int
	// IssueWidth and CommitWidth bound per-cycle issue and commit.
	IssueWidth, CommitWidth int
	// IssueWindow is how many unissued entries the scheduler examines per
	// cycle (a cheap stand-in for scheduler size).
	IssueWindow int
	// DecodeLatency is the fetch-to-rename depth in cycles.
	DecodeLatency int
	// PipeCap is the decode pipe capacity in instructions; it is the
	// backpressure the fetch engine sees.
	PipeCap int
}

// DefaultConfig returns the paper-inspired 8-wide, 128-entry core.
func DefaultConfig() Config {
	return Config{ROBSize: 128, IssueWidth: 8, CommitWidth: 8, IssueWindow: 32, DecodeLatency: 3, PipeCap: 32}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.ROBSize <= 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth <= 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.IssueWindow <= 0 {
		c.IssueWindow = d.IssueWindow
	}
	if c.DecodeLatency < 0 {
		c.DecodeLatency = d.DecodeLatency
	}
	if c.PipeCap <= 0 {
		c.PipeCap = d.PipeCap
	}
}

type robEntry struct {
	u      pipe.Uop
	issued bool
	done   int64
}

type pipeEntry struct {
	u     pipe.Uop
	ready int64
}

// Backend is the execution model.
type Backend struct {
	cfg Config

	rob   []robEntry
	head  int
	count int

	regReady [isa.NumRegs]int64
	dpipe    []pipeEntry
	dpHead   int

	missPresent bool
	missIssued  bool
	missDone    int64
	missUop     pipe.Uop

	// OnCommit, when set, observes every committed (correct-path) uop —
	// the core uses it for predictor/FTB training and statistics.
	OnCommit func(u *pipe.Uop)

	// Committed counts architecturally retired instructions; Issued all
	// issues including wrong-path; Squashed entries discarded by
	// redirects; ROBFullCycles cycles rename stalled on a full ROB.
	Committed, Issued, Squashed uint64
	ROBFullCycles               uint64
	// MispredictsResolved counts redirects returned, by kind.
	MispredictsResolved [5]uint64
}

// New builds a backend.
func New(cfg Config) *Backend {
	cfg.setDefaults()
	return &Backend{cfg: cfg, rob: make([]robEntry, cfg.ROBSize)}
}

// Config returns the normalised configuration.
func (b *Backend) Config() Config { return b.cfg }

// Accept returns how many instructions the decode pipe can take this cycle.
func (b *Backend) Accept() int { return b.cfg.PipeCap - (len(b.dpipe) - b.dpHead) }

// Drained reports whether no work remains anywhere in the backend.
func (b *Backend) Drained() bool { return b.count == 0 && len(b.dpipe) == b.dpHead }

// ROBOccupancy returns the live ROB entry count.
func (b *Backend) ROBOccupancy() int { return b.count }

// Deliver accepts fetched uops into the decode pipe at cycle now.
func (b *Backend) Deliver(uops []pipe.Uop, now int64) {
	for _, u := range uops {
		b.dpipe = append(b.dpipe, pipeEntry{u: u, ready: now + int64(b.cfg.DecodeLatency)})
	}
}

// Tick advances one cycle. It returns the resolved misprediction to redirect
// on, if any; the backend has already squashed its own younger work, and the
// caller must repair the front end (FTQ, BPU, prefetcher).
func (b *Backend) Tick(now int64) (pipe.Uop, bool) {
	b.fill(now)
	redirect, ok := b.resolve(now)
	b.commit(now)
	b.issue(now)
	return redirect, ok
}

// fill moves decoded instructions into the ROB.
func (b *Backend) fill(now int64) {
	for b.dpHead < len(b.dpipe) && b.dpipe[b.dpHead].ready <= now {
		if b.count == b.cfg.ROBSize {
			b.ROBFullCycles++
			return
		}
		u := b.dpipe[b.dpHead].u
		b.dpHead++
		if b.dpHead == len(b.dpipe) {
			b.dpipe = b.dpipe[:0]
			b.dpHead = 0
		} else if b.dpHead > 4*b.cfg.PipeCap {
			// Compact so the backing array stays bounded.
			n := copy(b.dpipe, b.dpipe[b.dpHead:])
			b.dpipe = b.dpipe[:n]
			b.dpHead = 0
		}
		idx := (b.head + b.count) % b.cfg.ROBSize
		b.rob[idx] = robEntry{u: u}
		b.count++
		if u.Mispredicted {
			if b.missPresent {
				panic(fmt.Sprintf("backend: second in-flight mispredict (seq %d after %d)", u.Seq, b.missUop.Seq))
			}
			b.missPresent = true
			b.missIssued = false
			b.missUop = u
		}
	}
}

// resolve fires the pending misprediction once it has executed, squashing
// everything younger immediately so the same cycle's commit/issue never see
// dead work.
func (b *Backend) resolve(now int64) (pipe.Uop, bool) {
	if b.missPresent && b.missIssued && b.missDone <= now {
		b.missPresent = false
		b.MispredictsResolved[b.missUop.MissKind]++
		b.SquashAfter(b.missUop.Seq)
		return b.missUop, true
	}
	return pipe.Uop{}, false
}

// commit retires completed instructions in order.
func (b *Backend) commit(now int64) {
	for n := 0; n < b.cfg.CommitWidth && b.count > 0; n++ {
		e := &b.rob[b.head]
		if !e.issued || e.done > now {
			return
		}
		if !e.u.OnCorrectPath {
			// Wrong-path work is removed by SquashAfter, never committed;
			// reaching here means the redirect protocol was violated.
			panic(fmt.Sprintf("backend: wrong-path uop seq %d at commit head", e.u.Seq))
		}
		if b.OnCommit != nil {
			b.OnCommit(&e.u)
		}
		b.Committed++
		b.head = (b.head + 1) % b.cfg.ROBSize
		b.count--
	}
}

// issue selects ready instructions within the scheduler window.
func (b *Backend) issue(now int64) {
	issued := 0
	examined := 0
	for i := 0; i < b.count && issued < b.cfg.IssueWidth && examined < b.cfg.IssueWindow; i++ {
		e := &b.rob[(b.head+i)%b.cfg.ROBSize]
		if e.issued {
			continue
		}
		examined++
		if !b.ready(e.u.Instr, now) {
			continue
		}
		e.issued = true
		lat := e.u.Instr.Kind.Latency()
		e.done = now + int64(lat)
		if d := e.u.Instr.Dst; d != isa.NoReg && d != 0 {
			b.regReady[d] = e.done
		}
		if e.u.Mispredicted && b.missPresent && e.u.Seq == b.missUop.Seq {
			b.missIssued = true
			b.missDone = e.done
		}
		b.Issued++
		issued++
	}
}

// ready checks the register scoreboard. Register 0 and NoReg are always
// ready.
func (b *Backend) ready(ins isa.Instr, now int64) bool {
	if s := ins.Src1; s != isa.NoReg && s != 0 && b.regReady[s] > now {
		return false
	}
	if s := ins.Src2; s != isa.NoReg && s != 0 && b.regReady[s] > now {
		return false
	}
	return true
}

// SquashAfter removes every instruction younger than seq — ROB tail entries
// and the whole decode pipe (anything decoded after a resolving branch is
// younger by construction).
func (b *Backend) SquashAfter(seq uint64) {
	for b.count > 0 {
		tail := (b.head + b.count - 1) % b.cfg.ROBSize
		if b.rob[tail].u.Seq <= seq {
			break
		}
		b.count--
		b.Squashed++
	}
	b.Squashed += uint64(len(b.dpipe) - b.dpHead)
	b.dpipe = b.dpipe[:0]
	b.dpHead = 0
	// A squashed younger mispredict cannot exist (only one correct-path
	// mispredict is ever in flight), so missPresent stays untouched unless
	// it was the resolving branch itself, which resolve() already cleared.
}
