// Package backend models the execution core behind the decoupled front end:
// a decode pipe, a reorder buffer with a register scoreboard (out-of-order
// issue within a window, in-order commit), and branch resolution.
//
// The study targets the front end, so the backend is deliberately simple but
// honest about what matters to it: instruction consumption rate, window
// occupancy, execution latency before a branch resolves, and in-order commit
// of correct-path work only.
package backend

import (
	"fmt"
	"math"
	"math/bits"

	"fdip/internal/isa"
	"fdip/internal/pipe"
)

// Config sizes the backend.
type Config struct {
	// ROBSize is the reorder buffer capacity.
	ROBSize int
	// IssueWidth and CommitWidth bound per-cycle issue and commit.
	IssueWidth, CommitWidth int
	// IssueWindow is how many unissued entries the scheduler examines per
	// cycle (a cheap stand-in for scheduler size).
	IssueWindow int
	// DecodeLatency is the fetch-to-rename depth in cycles.
	DecodeLatency int
	// PipeCap is the decode pipe capacity in instructions; it is the
	// backpressure the fetch engine sees.
	PipeCap int
}

// DefaultConfig returns the paper-inspired 8-wide, 128-entry core.
func DefaultConfig() Config {
	return Config{ROBSize: 128, IssueWidth: 8, CommitWidth: 8, IssueWindow: 32, DecodeLatency: 3, PipeCap: 32}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.ROBSize <= 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth <= 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.IssueWindow <= 0 {
		c.IssueWindow = d.IssueWindow
	}
	if c.DecodeLatency < 0 {
		c.DecodeLatency = d.DecodeLatency
	}
	if c.PipeCap <= 0 {
		c.PipeCap = d.PipeCap
	}
}

// Backend is the execution model.
type Backend struct {
	cfg Config

	// ar is the uop arena: the single home of every in-flight dynamic
	// instruction record. The backend owns it — max in-flight is the
	// decode pipe capacity plus the ROB size, both backend dimensions —
	// and the fetch engine allocates into it (see core's wiring). Every
	// structure below holds 32-bit arena indices, never Uop values.
	ar *pipe.Arena

	// The ROB is stored as parallel arrays: the scheduler and commit scans
	// touch only the dense arrays below, and nothing here ever copies a
	// uop record. robEnt packs each entry's arena index (low 32 bits) with
	// its scheduler meta word (high 32 bits, pipe.Uop.Sched: src1 |
	// src2<<8 | dst<<16 | latency<<24, NoReg/r0 mapped to 0) — fill writes
	// both with one store, and an issue visit reads the operands and the
	// arena index for the mispredict hand-off from one load.
	robEnt    []uint64
	robIssued []bool
	robDone   []int64
	head      int
	count     int
	// issuedPrefix is a conservative count of entries from head that are
	// all issued; the scheduler scan starts past them. Invariant: every
	// entry in [head, head+issuedPrefix) has issued set.
	issuedPrefix int

	regReady [isa.NumRegs]int64
	// The decode pipe is a FIFO ring of delivery segments: each Deliver
	// call hands over one contiguous arena range whose uops all decode on
	// the same cycle, so the pipe stores (first, n, ready) triples instead
	// of per-uop entries — O(1) delivery, no per-instruction append
	// traffic. Every segment holds at least one instruction and the pipe
	// holds at most PipeCap instructions (Deliver is bounded by Accept),
	// so PipeCap segments always suffice.
	dpSegs   []dpSeg
	dpSegHd  int
	dpSegCnt int
	dpCount  int // instructions across all segments

	missPresent bool
	missIssued  bool
	missDone    int64
	missIdx     uint32 // arena index of the pending mispredict (valid while missPresent)

	// Wakeup scheduler. The unissued ROB entries live in a bitmap (unbits,
	// one bit per slot), so selection iterates exactly the window's entries
	// in age order with trailing-zeros extraction — the issued holes the
	// ROB ring scan steps over one by one simply have no bits — and each
	// entry's operands live in the packed high half of its robEnt word, so
	// a readiness check is two regReady loads and a compare, no arena
	// access. wakeBound is a
	// conservative lower bound on the earliest cycle any window entry could
	// issue: exact after every scan that issues nothing (the scan computes
	// it for free, subsuming the scan path's quiet memo), reset to now by a
	// scan that issues (regReady changed under it — the same invalidation
	// discipline as the memo), and folded down by each fill that enters the
	// window. Both issue and NextEvent answer "can anything issue?" by one
	// compare. The bound can run slack-low — a squash may remove its
	// holder, raising the true minimum — which costs at most one extra
	// no-op scan, never a missed wakeup; see ARCHITECTURE.md "Backend:
	// dependency-driven issue wakeup" for the identity argument.
	//
	// An earlier revision of this scheduler maintained eager per-register
	// waiter lists with cached wake times, recomputed at each producer
	// issue. Measured on BenchmarkStep it lost ~15% to the linear scan:
	// consumers issue within a few cycles here, so two subscribe/unsubscribe
	// link operations per instruction port cost more than the rescans they
	// avoided. The lazy recompute below keeps the O(1) wakeup answer
	// without any per-producer bookkeeping.
	unbits  []uint64 // bit set ⇔ ROB slot holds an unissued entry
	unCount int      // unissued entries (popcount of unbits)
	// wakeBound is the earliest cycle any window entry could have ready
	// operands — conservative (never later than the truth), exact while the
	// window is operand-blocked.
	wakeBound int64

	// useScan routes scheduling through the retained linear-scan reference
	// implementation (issueScan/windowReadyAtScan) instead of the wakeup
	// structures. Test-only: the shadow-model property test drives a scan
	// backend and a wakeup backend through identical operation sequences
	// and requires identical observable state.
	useScan bool

	// quietUntil memoises the linear-scan reference's no-issue horizon:
	// while quietValid and now < quietUntil, no entry in the issue window
	// can have ready operands, so both issueScan and windowReadyAtScan
	// skip the window scan. Scan mode only; the wakeup scheduler's
	// wakeBound subsumes it.
	quietUntil int64
	quietValid bool

	// OnCommit, when set, observes every committed (correct-path) uop —
	// the core uses it for predictor/FTB training and statistics.
	//
	// No-retention contract: the pointer aliases arena storage whose slot
	// is recycled after the callback returns. Callbacks must read what
	// they need during the call and must not retain the pointer or rely
	// on the pointed-to contents afterwards (enforced by
	// core.TestOnCommitPointerNotRetained).
	OnCommit func(u *pipe.Uop)

	// OnCommitRange is the batched form of OnCommit: called at most once
	// per cycle with the arena range of the instructions committed that
	// cycle (first slot, count; walk with Arena().At/Next — commits
	// release the oldest live slots, so the range is contiguous in
	// allocation order). One indirect call per cycle replaces one per
	// instruction on the commit hot path. The same no-retention contract
	// applies to every slot in the range, and the callback runs before the
	// slots are released. When both hooks are set, OnCommit fires per
	// instruction first, then OnCommitRange once.
	OnCommitRange func(first uint32, n int)

	// Committed counts architecturally retired instructions; Issued all
	// issues including wrong-path; Squashed entries discarded by
	// redirects; ROBFullCycles cycles rename stalled on a full ROB.
	Committed, Issued, Squashed uint64
	ROBFullCycles               uint64
	// MispredictsResolved counts redirects returned, by kind.
	MispredictsResolved [5]uint64
}

// dpSeg is one decode-pipe delivery: a contiguous arena range of n uops that
// all become ROB-eligible at cycle ready.
type dpSeg struct {
	first uint32
	n     int32
	ready int64
}

// New builds a backend, allocating the uop arena it shares with the fetch
// engine (Arena). All backing arrays are fixed-size, so steady-state
// delivery never allocates.
func New(cfg Config) *Backend {
	cfg.setDefaults()
	b := &Backend{
		cfg:       cfg,
		ar:        pipe.NewArena(cfg.PipeCap + cfg.ROBSize + 8),
		robEnt:    make([]uint64, cfg.ROBSize),
		robIssued: make([]bool, cfg.ROBSize),
		robDone:   make([]int64, cfg.ROBSize),
		dpSegs:    make([]dpSeg, cfg.PipeCap),
		unbits:    make([]uint64, (cfg.ROBSize+63)/64),
	}
	b.schedReset()
	return b
}

// schedReset restores the wakeup scheduler's pristine empty state, retaining
// every backing array. Per-slot link and cache entries are rewritten by
// schedInsert before a slot becomes live, so only the list heads, the window,
// and the cached minimum need clearing.
func (b *Backend) schedReset() {
	for i := range b.unbits {
		b.unbits[i] = 0
	}
	b.unCount = 0
	b.wakeBound = math.MaxInt64
}

// Config returns the normalised configuration.
func (b *Backend) Config() Config { return b.cfg }

// Arena returns the uop arena the fetch engine allocates into. It is sized
// to the maximum in-flight uop count (decode pipe capacity + ROB size +
// slack), which the backend's own backpressure (Accept) enforces.
func (b *Backend) Arena() *pipe.Arena { return b.ar }

// Reset restores the pristine just-constructed state: an empty ROB and
// decode pipe, an empty uop arena, a clean scoreboard, no pending
// misprediction, and counters zeroed, retaining every backing array (stale
// ROB and arena slots are unobservable — fill rewrites a ROB slot completely
// before count makes it live, and the fetch delivery loop assigns every
// arena field). The
// OnCommit hook persists; owners that rebind it per run may do so after
// Reset.
func (b *Backend) Reset() {
	b.ar.Reset()
	b.head = 0
	b.count = 0
	b.issuedPrefix = 0
	b.regReady = [isa.NumRegs]int64{}
	b.dpSegHd = 0
	b.dpSegCnt = 0
	b.dpCount = 0
	b.missPresent = false
	b.missIssued = false
	b.missDone = 0
	b.missIdx = 0
	b.schedReset()
	b.quietUntil = 0
	b.quietValid = false
	b.Committed, b.Issued, b.Squashed = 0, 0, 0
	b.ROBFullCycles = 0
	b.MispredictsResolved = [5]uint64{}
}

// Accept returns how many instructions the decode pipe can take this cycle.
func (b *Backend) Accept() int { return b.cfg.PipeCap - b.dpCount }

// Drained reports whether no work remains anywhere in the backend.
func (b *Backend) Drained() bool { return b.count == 0 && b.dpCount == 0 }

// ROBOccupancy returns the live ROB entry count.
func (b *Backend) ROBOccupancy() int { return b.count }

// Deliver accepts a contiguous arena range of n fetched uops starting at
// slot first into the decode pipe at cycle now. The uops were written once,
// in place, by the fetch engine; from here on only the range's (first, n)
// coordinates move — one segment push, O(1) whatever the batch size.
func (b *Backend) Deliver(first uint32, n int, now int64) {
	if n <= 0 {
		return
	}
	tail := b.dpSegHd + b.dpSegCnt
	if tail >= len(b.dpSegs) {
		tail -= len(b.dpSegs)
	}
	b.dpSegs[tail] = dpSeg{first: first, n: int32(n), ready: now + int64(b.cfg.DecodeLatency)}
	b.dpSegCnt++
	b.dpCount += n
}

// Tick advances one cycle. It returns the resolved misprediction to redirect
// on, or nil; the backend has already squashed its own younger work, and the
// caller must repair the front end (FTQ, BPU, prefetcher). The returned
// pointer aliases the resolved branch's arena slot — the branch survives its
// own squash and stays live at least until it commits, so the pointer is
// valid until the next Tick — a pointer rather than a value so the per-cycle
// hot path never copies a uop.
func (b *Backend) Tick(now int64) *pipe.Uop {
	b.fill(now)
	redirect := b.resolve(now)
	b.commit(now)
	b.issue(now)
	return redirect
}

// idx wraps a ROB position into [0, ROBSize). Positions exceed the size by
// at most one lap, so a conditional subtract replaces the modulo the hot
// loops would otherwise pay for.
func (b *Backend) idx(i int) int {
	if i >= b.cfg.ROBSize {
		i -= b.cfg.ROBSize
	}
	return i
}

// NextEvent returns the earliest cycle, at or after now, at which Tick could
// change backend state or counters: a decoded instruction reaching the ROB
// (or stalling on a full one), the pending misprediction resolving, the ROB
// head becoming committable, or any scheduler-window entry's operands turning
// ready. A return equal to now means the backend is active this cycle;
// math.MaxInt64 means it is fully drained. The core's cycle-skip scheduler
// relies on the guarantee that Tick is a pure no-op strictly before the
// returned cycle, provided no new uops are delivered in between.
func (b *Backend) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if b.dpSegCnt > 0 {
		r := b.dpSegs[b.dpSegHd].ready
		if r <= now {
			return now // fill moves an entry or counts a ROB-full stall
		}
		next = r
	}
	if b.missPresent && b.missIssued {
		if b.missDone <= now {
			return now
		}
		if b.missDone < next {
			next = b.missDone
		}
	}
	if b.count > 0 {
		if b.robIssued[b.head] {
			if b.robDone[b.head] <= now {
				return now // head commits this cycle
			}
			if b.robDone[b.head] < next {
				next = b.robDone[b.head]
			}
		}
		if w := b.windowReadyAt(now); w <= now {
			return now // an entry could issue this cycle
		} else if w < next {
			next = w
		}
	}
	return next
}

// readyAt returns the cycle the instruction's operands turn ready, never
// earlier than now. Register 0 and NoReg are always ready. The quiet memo
// is only sound while the scheduler scan (windowReadyAt) and issue agree
// on this computation, so both call here.
func (b *Backend) readyAt(ins *isa.Instr, now int64) int64 {
	t := now
	if s := ins.Src1; s != isa.NoReg && s != 0 && b.regReady[s] > t {
		t = b.regReady[s]
	}
	if s := ins.Src2; s != isa.NoReg && s != 0 && b.regReady[s] > t {
		t = b.regReady[s]
	}
	return t
}

// windowReadyAt returns the earliest cycle any unissued entry in the
// scheduler window could have ready operands: now when one is ready this
// cycle, math.MaxInt64 when the window holds none. The wakeup scheduler
// answers from wakeBound — an O(1) read. The bound is conservative, so this
// may report an earlier cycle than the scan reference would (the extra cycle
// steps through a no-op Tick whose scan then tightens the bound); it never
// reports a later one, which is what NextEvent's contract requires.
func (b *Backend) windowReadyAt(now int64) int64 {
	if b.useScan {
		return b.windowReadyAtScan(now)
	}
	if b.wakeBound <= now {
		return now
	}
	return b.wakeBound
}

// windowReadyAtScan is the retained linear-scan reference for windowReadyAt:
// it rescans the window (through the quiet memo) re-deriving each entry's
// operand readiness from regReady. Scan mode only.
func (b *Backend) windowReadyAtScan(now int64) int64 {
	if b.quietValid && now < b.quietUntil {
		return b.quietUntil
	}
	next := int64(math.MaxInt64)
	examined := 0
	pos := b.idx(b.head + b.issuedPrefix)
	for i := b.issuedPrefix; i < b.count && examined < b.cfg.IssueWindow; i++ {
		slot := pos
		pos = b.idx(pos + 1)
		if b.robIssued[slot] {
			continue
		}
		examined++
		t := b.readyAt(&b.ar.At(uint32(b.robEnt[slot])).Instr, now)
		if t <= now {
			return now // ready: do not memoise, issue mutates this cycle
		}
		if t < next {
			next = t
		}
	}
	// Nothing issues before next: all examined operand-ready times are
	// clock-independent values strictly past now, so the horizon stays
	// exact until regReady or the window membership changes — the
	// invalidation points documented on quietUntil.
	b.quietUntil = next
	b.quietValid = true
	return next
}

// fill moves decoded instructions into the ROB, consuming whole delivery
// segments front to back (a segment's uops share one ready cycle, and
// segments are FIFO in both delivery and decode order).
func (b *Backend) fill(now int64) {
	for b.dpSegCnt > 0 {
		s := &b.dpSegs[b.dpSegHd]
		if s.ready > now {
			return
		}
		for s.n > 0 {
			if b.count == b.cfg.ROBSize {
				b.ROBFullCycles++
				return
			}
			slot := b.idx(b.head + b.count)
			ai := s.first
			u := b.ar.At(ai)
			b.robEnt[slot] = uint64(ai) | uint64(u.Sched)<<32
			b.robIssued[slot] = false
			// robDone is read only behind robIssued, so the stale value
			// needs no clearing; issue rewrites it.
			b.count++
			if b.useScan {
				b.quietValid = false // a new window entry may be ready sooner
			} else {
				b.schedInsert(int32(slot), u.Sched, now)
			}
			s.first = b.ar.Next(ai)
			s.n--
			b.dpCount--
			if u.Mispredicted {
				if b.missPresent {
					panic(fmt.Sprintf("backend: second in-flight mispredict (seq %d after %d)", u.Seq, b.ar.At(b.missIdx).Seq))
				}
				b.missPresent = true
				b.missIssued = false
				b.missIdx = ai
			}
		}
		b.dpSegHd++
		if b.dpSegHd == len(b.dpSegs) {
			b.dpSegHd = 0
		}
		b.dpSegCnt--
	}
}

// resolve fires the pending misprediction once it has executed, squashing
// everything younger immediately so the same cycle's commit/issue never see
// dead work.
func (b *Backend) resolve(now int64) *pipe.Uop {
	if b.missPresent && b.missIssued && b.missDone <= now {
		b.missPresent = false
		u := b.ar.At(b.missIdx)
		b.MispredictsResolved[u.MissKind]++
		b.SquashAfter(u.Seq)
		return u
	}
	return nil
}

// commit retires completed instructions in order, releasing each one's
// arena slot — the oldest live slot, since the arena allocates in fetch
// order — once the OnCommit observer has returned.
func (b *Backend) commit(now int64) {
	freed := 0
	var firstAI uint32
	for n := 0; n < b.cfg.CommitWidth && b.count > 0; n++ {
		if !b.robIssued[b.head] || b.robDone[b.head] > now {
			break
		}
		ai := uint32(b.robEnt[b.head])
		if freed == 0 {
			firstAI = ai
		}
		u := b.ar.At(ai)
		if !u.OnCorrectPath {
			// Wrong-path work is removed by SquashAfter, never committed;
			// reaching here means the redirect protocol was violated.
			panic(fmt.Sprintf("backend: wrong-path uop seq %d at commit head", u.Seq))
		}
		if b.OnCommit != nil {
			b.OnCommit(u)
		}
		// The slot is dead but its arena entry is released in one batched
		// FreeOldest below — commits free the oldest live slots in order,
		// so deferring the release changes nothing an observer can see
		// (OnCommit's no-retention contract already forbids reading the
		// slot after the callback returns).
		freed++
		b.Committed++
		b.head = b.idx(b.head + 1)
		b.count--
		if b.issuedPrefix > 0 {
			b.issuedPrefix--
		}
	}
	if freed > 0 {
		if b.OnCommitRange != nil {
			b.OnCommitRange(firstAI, freed)
		}
		b.ar.FreeOldest(freed)
	}
}

// issue selects ready instructions within the scheduler window: in age
// order, up to IssueWidth of them, never past the window's current boundary.
// The wakeup scheduler proves the common case — nothing ready — from
// wakeBound without touching a single entry, and on active cycles iterates
// only the set bits of the unissued bitmap in ring age order, re-deriving
// each entry's readiness from the packed meta word and the scoreboard.
// Computing readiness at the visit, against the live regReady, is what makes
// an issue earlier in the same walk visible to its dependents later in it —
// the same same-cycle visibility the scan reference has. The window boundary
// is the examined counter, which counts every visited entry including ones
// issued this walk — exactly the scan reference's examined semantics, so
// within-cycle issues do not admit replacement entries early.
func (b *Backend) issue(now int64) {
	if b.useScan {
		b.issueScan(now)
		return
	}
	if b.wakeBound > now {
		return // no window entry has ready operands this cycle
	}
	issued, examined := 0, 0
	quiet := int64(math.MaxInt64)
	complete, downgrade := true, false
	nw := len(b.unbits)
	hw := b.head >> 6
	hbit := uint(b.head) & 63
	// One full circle of words starting at the head's: the first visit
	// masks off bits below the head (they are the ring's youngest tail and
	// come last, as the wi == nw re-visit), so set bits stream in age order.
scan:
	for wi := 0; wi <= nw; wi++ {
		idx := hw + wi
		if idx >= nw {
			idx -= nw
		}
		w := b.unbits[idx]
		if wi == 0 {
			w &= ^uint64(0) << hbit
		} else if wi == nw {
			if hbit == 0 {
				break
			}
			w &= ^(^uint64(0) << hbit)
		}
		base := idx << 6
		for w != 0 {
			s := base + bits.TrailingZeros64(w)
			w &= w - 1
			ent := b.robEnt[s]
			m := uint32(ent >> 32)
			t := b.regReady[m&0xff]
			if r := b.regReady[(m>>8)&0xff]; r > t {
				t = r
			}
			if t <= now {
				b.unbits[idx] &^= 1 << (uint(s) & 63)
				b.unCount--
				b.robIssued[s] = true
				done := now + int64(m>>24)
				b.robDone[s] = done
				if d := (m >> 16) & 0xff; d != 0 {
					if done < b.regReady[d] {
						// WAW overwrite moved the register's ready
						// time earlier: a waiter visited before this
						// producer may now wake sooner than the
						// readiness folded into quiet.
						downgrade = true
					}
					b.regReady[d] = done
				}
				if b.missPresent && uint32(ent) == b.missIdx {
					b.missIssued = true
					b.missDone = done
				}
				b.Issued++
				if issued++; issued == b.cfg.IssueWidth {
					complete = false
					break scan
				}
			} else if t < quiet {
				quiet = t
			}
			if examined++; examined == b.cfg.IssueWindow {
				complete = false
				break scan
			}
		}
	}
	if issued == 0 || (complete && !downgrade) {
		// The walk visited every unissued entry (always true when nothing
		// issued: the width and window caps were never hit), so quiet is
		// the exact minimum ready time of the whole window — including the
		// effect of this cycle's issues, because program order puts every
		// producer before its consumers in the walk, and readiness is
		// re-derived from the live scoreboard at each visit. The one way an
		// issuing walk can invalidate an already-folded readiness is a WAW
		// downgrade — a younger short-latency producer pulling a register's
		// ready time earlier after a waiter on it was visited — which the
		// downgrade flag catches; every other scoreboard write only raises
		// ready times, leaving quiet conservative. Until a fill or squash
		// changes the window, no entry can issue before quiet, and busy
		// steady-state cycles skip the walk entirely. This is strictly
		// stronger than the scan reference's quiet memo, which an issuing
		// cycle always invalidates.
		b.wakeBound = quiet
		return
	}
	// The walk stopped at the width or window cap (or a WAW downgrade made
	// quiet untrustworthy), so a window entry may be ready as soon as next
	// cycle: fall back to "rescan next active cycle", the same invalidation
	// the scan reference's memo performs after issuing.
	b.wakeBound = now
}

// schedInsert registers the just-filled ROB slot s with the wakeup
// scheduler: the slot's unissued bit is set, and when the entry enters the
// issue window — fewer than IssueWindow older unissued entries exist — its
// current ready time, derived from the packed scheduler word m
// (pipe.Uop.Sched, already stored in robEnt by fill), folds into wakeBound.
// The fold is skipped when wakeBound has already fired (wakeBound <= now):
// fill runs before issue in Tick, so the pending scan this same cycle
// visits the new entry and recomputes the bound itself.
func (b *Backend) schedInsert(s int32, m uint32, now int64) {
	b.unbits[s>>6] |= 1 << (uint(s) & 63)
	if b.wakeBound > now && b.unCount < b.cfg.IssueWindow {
		t := b.regReady[m&0xff]
		if r := b.regReady[(m>>8)&0xff]; r > t {
			t = r
		}
		if t < b.wakeBound {
			b.wakeBound = t
		}
	}
	b.unCount++
}

// schedRemove takes the unissued entry at ROB slot s out of the scheduler (a
// squash of an unissued entry; issue clears bits inline). wakeBound needs no
// update — removals can only raise the window's true minimum, which leaves
// the bound conservative (at worst one spurious no-op scan tightens it).
func (b *Backend) schedRemove(s int32) {
	b.unbits[s>>6] &^= 1 << (uint(s) & 63)
	b.unCount--
}

// issueScan is the retained linear-scan reference for issue. The scan starts
// past the issued prefix — entries the original head-to-tail walk would skip
// one by one — and examines up to IssueWindow unissued entries, re-deriving
// each one's operand readiness from regReady; a valid quiet memo proves the
// whole window operand-blocked and skips the scan outright. Scan mode only:
// the wakeup scheduler must replay these exact selection semantics, enforced
// by the shadow-model property test.
func (b *Backend) issueScan(now int64) {
	for b.issuedPrefix < b.count && b.robIssued[b.idx(b.head+b.issuedPrefix)] {
		b.issuedPrefix++
	}
	if b.quietValid && now < b.quietUntil {
		return
	}
	issued := 0
	examined := 0
	quiet := int64(math.MaxInt64)
	pos := b.idx(b.head + b.issuedPrefix)
	for i := b.issuedPrefix; i < b.count && issued < b.cfg.IssueWidth && examined < b.cfg.IssueWindow; i++ {
		slot := pos
		pos = b.idx(pos + 1)
		if b.robIssued[slot] {
			continue
		}
		examined++
		ai := uint32(b.robEnt[slot])
		u := b.ar.At(ai)
		if t := b.readyAt(&u.Instr, now); t > now {
			if t < quiet {
				quiet = t
			}
			continue
		}
		b.robIssued[slot] = true
		done := now + int64(u.Instr.Kind.Latency())
		b.robDone[slot] = done
		if d := u.Instr.Dst; d != isa.NoReg && d != 0 {
			b.regReady[d] = done
		}
		if u.Mispredicted && b.missPresent && ai == b.missIdx {
			b.missIssued = true
			b.missDone = done
		}
		b.Issued++
		issued++
	}
	if issued == 0 {
		// The window is operand-blocked until quiet; remember it so the
		// coming cycles (and NextEvent) skip the scan.
		b.quietUntil = quiet
		b.quietValid = true
	} else {
		b.quietValid = false // regReady changed under the memo
	}
}

// SquashAfter removes every instruction younger than seq — ROB tail entries
// and the whole decode pipe (anything decoded after a resolving branch is
// younger by construction) — and rolls their arena slots back. The squashed
// set is exactly the arena's youngest allocated suffix: every live uop
// younger than seq sits in the ROB tail or the decode pipe, both counted
// here.
func (b *Backend) SquashAfter(seq uint64) {
	b.quietValid = false // window membership changes (scan mode)
	squashed := 0
	for b.count > 0 {
		tail := b.idx(b.head + b.count - 1)
		if b.ar.At(uint32(b.robEnt[tail])).Seq <= seq {
			break
		}
		if !b.useScan && !b.robIssued[tail] {
			// An unissued squashed entry leaves the unissued bitmap so
			// later scans never visit the dead slot.
			b.schedRemove(int32(tail))
		}
		b.count--
		squashed++
	}
	if b.issuedPrefix > b.count {
		b.issuedPrefix = b.count
	}
	squashed += b.dpCount
	b.Squashed += uint64(squashed)
	b.dpSegHd = 0
	b.dpSegCnt = 0
	b.dpCount = 0
	b.ar.FreeNewest(squashed)
	// A squashed younger mispredict cannot exist (only one correct-path
	// mispredict is ever in flight), so missPresent stays untouched unless
	// it was the resolving branch itself, which resolve() already cleared.
}
