package memsys

import (
	"math/rand"
	"testing"
)

// memTrace drives a deterministic request/drain mix over the hierarchy and
// records every observable outcome: transfer timing and provenance, bus
// state, and the final counters.
func memTrace(h *Hierarchy, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	now := int64(0)
	for i := 0; i < 1200; i++ {
		now += int64(rng.Intn(6))
		switch rng.Intn(4) {
		case 0, 1:
			line := uint64(rng.Intn(1<<10)) * 32
			tr := h.Request(line, rng.Intn(2) == 0, now)
			out = append(out, tr.Line, uint64(tr.Done))
			if tr.FromL2 {
				out = append(out, 1)
			}
			if tr.DemandMerged {
				out = append(out, 2)
			}
		case 2:
			h.DrainCompleted(now, func(tr *Transfer) {
				out = append(out, tr.Line, uint64(tr.Done))
				if tr.Prefetch {
					out = append(out, 3)
				}
			})
		case 3:
			if h.BusIdle(now) {
				out = append(out, 4)
			}
			out = append(out, uint64(h.BusFreeAt()), uint64(h.PendingCount()))
			if n := h.NextCompletion(); h.PendingCount() > 0 {
				out = append(out, uint64(n))
			}
		}
	}
	return append(out, h.BusBusyCycles, h.DemandRequests, h.PrefetchRequests,
		h.DemandMerges, h.PrefetchMerges, h.DemandBusWait,
		h.L2DemandHits, h.L2DemandMisses, h.L2PrefetchHits, h.L2PrefetchMisses,
		h.L2().Accesses, h.L2().Hits, h.L2().Misses, h.L2().Fills, h.L2().Evictions)
}

// TestHierarchyResetEqualsFresh dirties the hierarchy (in-flight transfers
// left pending, the L2 warm, the transfer pool populated), resets it, and
// requires the exact observable behaviour of a freshly constructed one —
// including the L2's lazy arena drop and the recycled completion heap.
func TestHierarchyResetEqualsFresh(t *testing.T) {
	cfg := Config{
		LineBytes: 32, L2SizeBytes: 1 << 20, L2Ways: 8,
		L2HitLatency: 10, MemLatency: 50, BusCyclesPerLine: 4,
	}
	dirty := New(cfg)
	memTrace(dirty, 1)
	if dirty.PendingCount() == 0 {
		t.Fatal("dirtying trace left nothing in flight; not a meaningful reset test")
	}
	dirty.Reset()
	if dirty.PendingCount() != 0 || dirty.Inflight(0) {
		t.Fatal("Reset left transfers in flight")
	}
	got := memTrace(dirty, 2)
	want := memTrace(New(cfg), 2)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reset hierarchy diverged from fresh at trace step %d: %d != %d", i, got[i], want[i])
		}
	}
}
