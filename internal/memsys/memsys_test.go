package memsys

import (
	"testing"
)

func hier() *Hierarchy {
	return New(Config{
		LineBytes:        32,
		L2SizeBytes:      1 << 16,
		L2Ways:           4,
		L2HitLatency:     10,
		MemLatency:       50,
		BusCyclesPerLine: 4,
	})
}

func TestColdMissLatency(t *testing.T) {
	h := hier()
	tr := h.Request(0x1000, false, 100)
	// start 100, bus 4, L2 hit lat 10 + mem 50 → done 100+10+50+4 = 164
	if tr.Done != 164 {
		t.Errorf("Done = %d, want 164", tr.Done)
	}
	if tr.FromL2 {
		t.Error("cold miss reported as L2 hit")
	}
	if h.L2DemandMisses != 1 {
		t.Errorf("L2DemandMisses = %d", h.L2DemandMisses)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := hier()
	t1 := h.Request(0x1000, false, 0)
	h.CompletedBy(t1.Done)
	tr := h.Request(0x1000, false, 1000)
	if tr.Done != 1000+10+4 {
		t.Errorf("L2-hit Done = %d, want 1014", tr.Done)
	}
	if !tr.FromL2 {
		t.Error("second access missed L2")
	}
}

func TestBusSerialization(t *testing.T) {
	h := hier()
	a := h.Request(0x1000, false, 0)
	b := h.Request(0x2000, false, 0)
	// b's bus slot starts when a's ends (cycle 4).
	if b.Done != a.Done+4 {
		t.Errorf("b.Done = %d, want %d", b.Done, a.Done+4)
	}
	if h.DemandBusWait != 4 {
		t.Errorf("DemandBusWait = %d", h.DemandBusWait)
	}
	if h.BusBusyCycles != 8 {
		t.Errorf("BusBusyCycles = %d", h.BusBusyCycles)
	}
}

func TestBusIdle(t *testing.T) {
	h := hier()
	if !h.BusIdle(0) {
		t.Error("fresh bus not idle")
	}
	h.Request(0x1000, false, 0)
	if h.BusIdle(3) {
		t.Error("bus idle during transfer")
	}
	if !h.BusIdle(4) {
		t.Error("bus not idle after transfer slot")
	}
}

func TestDemandMergesIntoPrefetch(t *testing.T) {
	h := hier()
	p := h.Request(0x1000, true, 0)
	d := h.Request(0x1000, false, 2)
	if d != p {
		t.Error("demand did not merge into in-flight prefetch")
	}
	if !p.DemandMerged {
		t.Error("DemandMerged not set")
	}
	if h.DemandMerges != 1 || h.DemandRequests != 0 {
		t.Errorf("merges=%d demandReqs=%d", h.DemandMerges, h.DemandRequests)
	}
	// Prefetch merging into anything counts separately.
	h.Request(0x1000, true, 3)
	if h.PrefetchMerges != 1 {
		t.Errorf("PrefetchMerges = %d", h.PrefetchMerges)
	}
}

func TestCompletedByOrderAndRemoval(t *testing.T) {
	h := hier()
	// Warm 0x2000 into L2 so it completes fast later.
	w := h.Request(0x2000, false, 0)
	h.CompletedBy(w.Done)

	slow := h.Request(0x1000, false, 200) // cold: done 264
	fast := h.Request(0x2000, false, 200) // L2 hit, bus queued: start 204 → done 218
	if fast.Done >= slow.Done {
		t.Fatalf("expected out-of-order completion: fast=%d slow=%d", fast.Done, slow.Done)
	}
	done := h.CompletedBy(fast.Done)
	if len(done) != 1 || done[0] != fast {
		t.Fatalf("CompletedBy returned %d transfers", len(done))
	}
	if h.Inflight(0x2000) {
		t.Error("completed transfer still inflight")
	}
	if !h.Inflight(0x1000) {
		t.Error("pending transfer dropped")
	}
	done = h.CompletedBy(slow.Done)
	if len(done) != 1 || done[0] != slow {
		t.Fatalf("second CompletedBy returned %d", len(done))
	}
	if h.PendingCount() != 0 {
		t.Errorf("PendingCount = %d", h.PendingCount())
	}
}

func TestLineAlignment(t *testing.T) {
	h := hier()
	a := h.Request(0x1004, false, 0)
	b := h.Request(0x101c, false, 0)
	if a != b {
		t.Error("same-line requests created two transfers")
	}
}

func TestPrefetchFillsL2(t *testing.T) {
	h := hier()
	p := h.Request(0x1000, true, 0)
	h.CompletedBy(p.Done)
	d := h.Request(0x1000, false, 500)
	if !d.FromL2 {
		t.Error("prefetch did not install line in L2")
	}
	if h.L2PrefetchMisses != 1 || h.L2DemandHits != 1 {
		t.Errorf("l2pm=%d l2dh=%d", h.L2PrefetchMisses, h.L2DemandHits)
	}
}

func TestBusUtilization(t *testing.T) {
	h := hier()
	h.Request(0x1000, false, 0)
	h.Request(0x2000, false, 0)
	if got := h.BusUtilization(16); got != 0.5 {
		t.Errorf("BusUtilization = %v", got)
	}
	if got := h.BusUtilization(0); got != 0 {
		t.Errorf("BusUtilization(0) = %v", got)
	}
	if got := h.BusUtilization(4); got != 1 {
		t.Errorf("BusUtilization clamp = %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	h := New(Config{})
	c := h.Config()
	d := DefaultConfig()
	if c != d {
		t.Errorf("defaults not applied: %+v", c)
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}
