// Package memsys models everything below the L1-I: the L1↔L2 bus, a unified
// L2, and main memory.
//
// The bus is the contended resource at the heart of the paper's filtering
// story. It is modelled as a single slotted channel: every line transfer
// occupies it for BusCyclesPerLine cycles. Demand misses reserve the bus
// unconditionally (queueing behind earlier transfers); prefetchers are
// expected to check BusIdle and issue only into idle slots, which is how the
// original design prioritised demand traffic.
package memsys

import (
	"fmt"
	"math"

	"fdip/internal/cache"
)

// Config sizes the hierarchy below the L1-I.
type Config struct {
	// LineBytes is the transfer unit (must match the L1-I line size).
	LineBytes int
	// L2SizeBytes and L2Ways size the unified L2.
	L2SizeBytes int
	L2Ways      int
	// L2HitLatency is the request-to-data latency for an L2 hit.
	L2HitLatency int
	// MemLatency is the additional latency of an L2 miss.
	MemLatency int
	// BusCyclesPerLine is the bus occupancy per line transfer
	// (line size / bus width).
	BusCyclesPerLine int
}

// DefaultConfig matches the paper-inspired baseline: 1MB 8-way L2 with a
// 12-cycle hit, 70 additional cycles to memory, and an 8-byte bus moving a
// 32-byte line in 4 cycles.
func DefaultConfig() Config {
	return Config{
		LineBytes:        32,
		L2SizeBytes:      1 << 20,
		L2Ways:           8,
		L2HitLatency:     12,
		MemLatency:       70,
		BusCyclesPerLine: 4,
	}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.LineBytes <= 0 {
		c.LineBytes = d.LineBytes
	}
	if c.L2SizeBytes <= 0 {
		c.L2SizeBytes = d.L2SizeBytes
	}
	if c.L2Ways <= 0 {
		c.L2Ways = d.L2Ways
	}
	if c.L2HitLatency <= 0 {
		c.L2HitLatency = d.L2HitLatency
	}
	if c.MemLatency <= 0 {
		c.MemLatency = d.MemLatency
	}
	if c.BusCyclesPerLine <= 0 {
		c.BusCyclesPerLine = d.BusCyclesPerLine
	}
}

// Transfer is one in-flight line movement from L2/memory toward the L1 side.
type Transfer struct {
	// Line is the line-aligned address.
	Line uint64
	// Done is the cycle the data arrives at the requester.
	Done int64
	// Prefetch records whether the original requester was a prefetcher.
	Prefetch bool
	// DemandMerged is set when a demand miss arrived while the transfer
	// was in flight (a late but partially useful prefetch).
	DemandMerged bool
	// FromL2 reports whether the line hit in the L2.
	FromL2 bool

	// seq orders completions with equal Done cycles (request order), making
	// the completion queue fully deterministic.
	seq uint64
}

// Hierarchy is the L2 + bus + memory model.
//
// In-flight transfers live in a min-heap keyed by (Done, request order), so
// draining completions is O(log n) per completed transfer and free when
// nothing has completed. Transfer records are pooled: DrainCompleted recycles
// each record after delivery, so the steady-state hot path performs no heap
// allocation.
type Hierarchy struct {
	cfg Config
	l2  *cache.Cache

	busFreeAt int64
	inflight  map[uint64]*Transfer
	queue     []*Transfer // min-heap on (Done, seq)
	free      []*Transfer // recycled Transfer records
	seq       uint64

	// BusBusyCycles accumulates bus occupancy for utilisation reports.
	BusBusyCycles uint64
	// DemandRequests/PrefetchRequests count new transfers by requester;
	// DemandMerges counts demand misses absorbed by an in-flight prefetch,
	// PrefetchMerges the reverse.
	DemandRequests, PrefetchRequests uint64
	DemandMerges, PrefetchMerges     uint64
	// DemandBusWait accumulates cycles demand transfers waited for the bus.
	DemandBusWait uint64
	// L2DemandHits/L2DemandMisses and the prefetch twins split L2 outcomes
	// by requester.
	L2DemandHits, L2DemandMisses     uint64
	L2PrefetchHits, L2PrefetchMisses uint64
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	cfg.setDefaults()
	return &Hierarchy{
		cfg: cfg,
		l2: cache.New(cache.Config{
			SizeBytes: cfg.L2SizeBytes,
			Ways:      cfg.L2Ways,
			LineBytes: cfg.LineBytes,
			Repl:      cache.LRU,
			TagPorts:  4,
		}),
		inflight: make(map[uint64]*Transfer),
	}
}

// Config returns the (normalised) configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L2 exposes the unified L2 for statistics.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// BusIdle reports whether a new transfer could start immediately at cycle
// now. Prefetchers must check this before issuing.
func (h *Hierarchy) BusIdle(now int64) bool { return h.busFreeAt <= now }

// Inflight reports whether the line is already being transferred.
func (h *Hierarchy) Inflight(line uint64) bool {
	_, ok := h.inflight[line]
	return ok
}

// Request starts (or merges into) a transfer of the given line at cycle now.
// Demand requests always queue; prefetch requests should only be made when
// BusIdle(now) is true, but the model tolerates queued prefetches for
// experiments that deliberately ignore the idle rule.
func (h *Hierarchy) Request(line uint64, prefetch bool, now int64) *Transfer {
	line = line &^ uint64(h.cfg.LineBytes-1)
	if t, ok := h.inflight[line]; ok {
		if !prefetch {
			if t.Prefetch && !t.DemandMerged {
				t.DemandMerged = true
				h.DemandMerges++
			}
		} else {
			h.PrefetchMerges++
		}
		return t
	}
	start := now
	if h.busFreeAt > start {
		if !prefetch {
			h.DemandBusWait += uint64(h.busFreeAt - start)
		}
		start = h.busFreeAt
	}
	h.busFreeAt = start + int64(h.cfg.BusCyclesPerLine)
	h.BusBusyCycles += uint64(h.cfg.BusCyclesPerLine)

	hit := h.l2.Access(line)
	lat := h.cfg.L2HitLatency + h.cfg.BusCyclesPerLine
	if !hit {
		lat += h.cfg.MemLatency
		h.l2.Fill(line, prefetch)
	}
	t := h.alloc()
	*t = Transfer{
		Line:     line,
		Done:     start + int64(lat),
		Prefetch: prefetch,
		FromL2:   hit,
		seq:      h.seq,
	}
	h.seq++
	h.inflight[line] = t
	h.push(t)
	if prefetch {
		h.PrefetchRequests++
		if hit {
			h.L2PrefetchHits++
		} else {
			h.L2PrefetchMisses++
		}
	} else {
		h.DemandRequests++
		if hit {
			h.L2DemandHits++
		} else {
			h.L2DemandMisses++
		}
	}
	return t
}

// alloc takes a Transfer record from the free pool, or makes one.
func (h *Hierarchy) alloc() *Transfer {
	if n := len(h.free); n > 0 {
		t := h.free[n-1]
		h.free = h.free[:n-1]
		return t
	}
	return new(Transfer)
}

// transferLess orders the completion heap: earliest Done first, request
// order breaking ties.
func transferLess(a, b *Transfer) bool {
	return a.Done < b.Done || (a.Done == b.Done && a.seq < b.seq)
}

// push inserts a transfer into the completion heap.
func (h *Hierarchy) push(t *Transfer) {
	h.queue = append(h.queue, t)
	i := len(h.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !transferLess(h.queue[i], h.queue[parent]) {
			break
		}
		h.queue[i], h.queue[parent] = h.queue[parent], h.queue[i]
		i = parent
	}
}

// popCompleted removes and returns the earliest transfer finished at or
// before now, or nil when none has.
func (h *Hierarchy) popCompleted(now int64) *Transfer {
	if len(h.queue) == 0 || h.queue[0].Done > now {
		return nil
	}
	t := h.queue[0]
	last := len(h.queue) - 1
	h.queue[0] = h.queue[last]
	h.queue[last] = nil
	h.queue = h.queue[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.queue) && transferLess(h.queue[l], h.queue[smallest]) {
			smallest = l
		}
		if r < len(h.queue) && transferLess(h.queue[r], h.queue[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.queue[i], h.queue[smallest] = h.queue[smallest], h.queue[i]
		i = smallest
	}
	delete(h.inflight, t.Line)
	return t
}

// DrainCompleted delivers every transfer finished at or before now, in
// completion order, then recycles its record. The *Transfer passed to deliver
// is valid only for the duration of the call — the zero-allocation delivery
// path for the cycle kernel.
func (h *Hierarchy) DrainCompleted(now int64, deliver func(*Transfer)) {
	for {
		t := h.popCompleted(now)
		if t == nil {
			return
		}
		deliver(t)
		h.free = append(h.free, t)
	}
}

// CompletedBy removes and returns all transfers finished at or before now,
// in completion order. Unlike DrainCompleted, the returned records are not
// recycled, so callers may keep them; prefer DrainCompleted on hot paths.
func (h *Hierarchy) CompletedBy(now int64) []*Transfer {
	var done []*Transfer
	for {
		t := h.popCompleted(now)
		if t == nil {
			return done
		}
		done = append(done, t)
	}
}

// Reset restores the pristine just-constructed state: the L2 cold, the bus
// free at cycle 0, no transfer in flight, and every counter zeroed. The
// completion heap's records are recycled into the transfer free list and the
// heap/map backing storage is retained, so a reset machine allocates nothing
// to reach steady state again.
func (h *Hierarchy) Reset() {
	h.l2.Reset()
	h.busFreeAt = 0
	clear(h.inflight)
	for i, t := range h.queue {
		h.free = append(h.free, t)
		h.queue[i] = nil
	}
	h.queue = h.queue[:0]
	h.seq = 0
	h.BusBusyCycles = 0
	h.DemandRequests, h.PrefetchRequests = 0, 0
	h.DemandMerges, h.PrefetchMerges = 0, 0
	h.DemandBusWait = 0
	h.L2DemandHits, h.L2DemandMisses = 0, 0
	h.L2PrefetchHits, h.L2PrefetchMisses = 0, 0
}

// NextCompletion returns the cycle the earliest in-flight transfer finishes,
// or math.MaxInt64 when nothing is in flight — the memory system's
// contribution to the core's next-interesting-cycle schedule.
func (h *Hierarchy) NextCompletion() int64 {
	if len(h.queue) == 0 {
		return math.MaxInt64
	}
	return h.queue[0].Done
}

// BusFreeAt returns the first cycle a new transfer could start.
func (h *Hierarchy) BusFreeAt() int64 { return h.busFreeAt }

// PendingCount returns the number of in-flight transfers.
func (h *Hierarchy) PendingCount() int { return len(h.queue) }

// BusUtilization returns the fraction of the first totalCycles the bus was
// busy.
func (h *Hierarchy) BusUtilization(totalCycles int64) float64 {
	if totalCycles <= 0 {
		return 0
	}
	u := float64(h.BusBusyCycles) / float64(totalCycles)
	if u > 1 {
		u = 1
	}
	return u
}

// String describes the hierarchy.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L2 %s, %d-cycle hit, +%d to memory, %d-cycle bus/line",
		h.l2, h.cfg.L2HitLatency, h.cfg.MemLatency, h.cfg.BusCyclesPerLine)
}
