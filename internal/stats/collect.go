package stats

import "fmt"

// Collector is the reporting layer's reducer: it accumulates streamed
// per-point values into a dense rows x cols grid (rows are the group-by axis
// — workloads in the experiment suite; cols the configuration points) and
// then reduces the grid into Tables. It is generic so this package stays
// free of simulator types (core imports stats for histograms); the simulator
// instantiates it with its Result type and supplies cell reducers as
// closures.
//
// A Collector is filled in any order — Stream delivers completion order —
// and the reducers read it row-major, so the rendered table is independent
// of arrival order. Complete reports unfilled cells, which turns a silently
// partial stream into a loud error.
type Collector[T any] struct {
	rows, cols []string
	cells      []T
	filled     []bool
	missing    int
}

// NewCollector builds an empty rows x cols collector. The label slices fix
// the grid's dimensions and name cells in error messages.
func NewCollector[T any](rows, cols []string) *Collector[T] {
	n := len(rows) * len(cols)
	return &Collector[T]{
		rows:    rows,
		cols:    cols,
		cells:   make([]T, n),
		filled:  make([]bool, n),
		missing: n,
	}
}

// NumRows and NumCols report the grid dimensions.
func (c *Collector[T]) NumRows() int { return len(c.rows) }
func (c *Collector[T]) NumCols() int { return len(c.cols) }

// RowLabel returns row r's label.
func (c *Collector[T]) RowLabel(r int) string { return c.rows[r] }

// ColLabel returns column col's label.
func (c *Collector[T]) ColLabel(col int) string { return c.cols[col] }

// Put records the value at (row, col). Refilling a cell overwrites it.
func (c *Collector[T]) Put(row, col int, v T) {
	if row < 0 || row >= len(c.rows) || col < 0 || col >= len(c.cols) {
		panic(fmt.Sprintf("stats: Collector.Put(%d, %d) outside %dx%d grid", row, col, len(c.rows), len(c.cols)))
	}
	i := row*len(c.cols) + col
	if !c.filled[i] {
		c.filled[i] = true
		c.missing--
	}
	c.cells[i] = v
}

// At returns the value at (row, col); the zero T when unfilled.
func (c *Collector[T]) At(row, col int) T { return c.cells[row*len(c.cols)+col] }

// Complete returns nil when every cell has been filled, else an error naming
// the first missing cell.
func (c *Collector[T]) Complete() error {
	if c.missing == 0 {
		return nil
	}
	for i, ok := range c.filled {
		if !ok {
			return fmt.Errorf("stats: collector missing %d of %d cells (first: %s x %s)",
				c.missing, len(c.cells), c.rows[i/len(c.cols)], c.cols[i%len(c.cols)])
		}
	}
	return nil
}

// Table reduces the grid one output row per collected row: the row label,
// then cell(row, col, value) for every column. The paper's "metric by
// configuration" shape (bus utilisation, IPC ablations).
func (c *Collector[T]) Table(title, corner string, headers []string, cell func(row, col int, v T) any) *Table {
	t := NewTable(title, append([]string{corner}, headers...)...)
	for r := range c.rows {
		out := make([]any, 0, len(c.cols)+1)
		out = append(out, c.rows[r])
		for col := range c.cols {
			out = append(out, cell(r, col, c.At(r, col)))
		}
		t.AddRow(out...)
	}
	return t
}

// TableVsBaseline reduces the grid against a per-row baseline column: column
// baseCol is consumed as each row's baseline and excluded from the output;
// every other column renders cell(value, baseline). The paper's "speedup
// over no-prefetch vs knob" figure shape.
func (c *Collector[T]) TableVsBaseline(title, corner string, headers []string, baseCol int, cell func(v, base T) any) *Table {
	t := NewTable(title, append([]string{corner}, headers...)...)
	for r := range c.rows {
		base := c.At(r, baseCol)
		out := make([]any, 0, len(c.cols))
		out = append(out, c.rows[r])
		for col := range c.cols {
			if col == baseCol {
				continue
			}
			out = append(out, cell(c.At(r, col), base))
		}
		t.AddRow(out...)
	}
	return t
}

// TablePaired reduces a grid whose columns are (baseline, variant) pairs —
// knob sweeps where the knob changes the baseline machine too. Column 2j is
// pair j's baseline, column 2j+1 its variant; each output cell is
// cell(variant, baseline).
func (c *Collector[T]) TablePaired(title, corner string, headers []string, cell func(v, base T) any) *Table {
	t := NewTable(title, append([]string{corner}, headers...)...)
	pairs := len(c.cols) / 2
	for r := range c.rows {
		out := make([]any, 0, pairs+1)
		out = append(out, c.rows[r])
		for j := 0; j < pairs; j++ {
			out = append(out, cell(c.At(r, 2*j+1), c.At(r, 2*j)))
		}
		t.AddRow(out...)
	}
	return t
}

// TableLong reduces the grid into long form — one output row per (row,
// column) pair, for tables that report several metrics per point. Column
// baseCol is each row's baseline (excluded from output; pass -1 for none,
// which hands cell the zero T as base); each remaining (row, col) emits a
// table row of [rowLabel, colLabel, cells(value, baseline)...].
func (c *Collector[T]) TableLong(title string, headers []string, baseCol int, cells func(v, base T) []any) *Table {
	t := NewTable(title, headers...)
	for r := range c.rows {
		var base T
		if baseCol >= 0 {
			base = c.At(r, baseCol)
		}
		for col := range c.cols {
			if col == baseCol {
				continue
			}
			out := make([]any, 0, 8)
			out = append(out, c.rows[r], c.cols[col])
			out = append(out, cells(c.At(r, col), base)...)
			t.AddRow(out...)
		}
	}
	return t
}

// ReduceCols folds every row's (value, baseline) pair per non-baseline
// column into a summary value — the gmean-speedup footer reducer. For each
// column except baseCol it collects f(value, baseline) over all rows and
// hands the slice to reduce; results come back in column order.
func (c *Collector[T]) ReduceCols(baseCol int, f func(v, base T) float64, reduce func([]float64) float64) []float64 {
	var out []float64
	vals := make([]float64, 0, c.NumRows())
	for col := range c.cols {
		if col == baseCol {
			continue
		}
		vals = vals[:0]
		for r := range c.rows {
			vals = append(vals, f(c.At(r, col), c.At(r, baseCol)))
		}
		out = append(out, reduce(vals))
	}
	return out
}
