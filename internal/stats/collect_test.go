package stats

import (
	"strings"
	"testing"
)

func filledCollector(t *testing.T) *Collector[float64] {
	t.Helper()
	c := NewCollector[float64]([]string{"gcc", "perl"}, []string{"base", "a", "b"})
	vals := [][]float64{{1, 2, 3}, {2, 3, 8}}
	// Fill out of order — streams deliver completion order.
	for r := 1; r >= 0; r-- {
		for col := range vals[r] {
			c.Put(r, col, vals[r][col])
		}
	}
	if err := c.Complete(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCollectorCompleteness(t *testing.T) {
	c := NewCollector[int]([]string{"r0", "r1"}, []string{"c0", "c1"})
	if err := c.Complete(); err == nil || !strings.Contains(err.Error(), "4 of 4") {
		t.Errorf("empty collector Complete = %v", err)
	}
	c.Put(0, 0, 7)
	c.Put(0, 0, 9) // refill overwrites, not double-counts
	if err := c.Complete(); err == nil || !strings.Contains(err.Error(), "3 of 4") {
		t.Errorf("partial collector Complete = %v", err)
	}
	if c.At(0, 0) != 9 {
		t.Errorf("At(0,0) = %d", c.At(0, 0))
	}
	c.Put(0, 1, 1)
	c.Put(1, 0, 2)
	c.Put(1, 1, 3)
	if err := c.Complete(); err != nil {
		t.Errorf("full collector Complete = %v", err)
	}
}

func TestCollectorTableShapes(t *testing.T) {
	c := filledCollector(t)

	plain := c.Table("t", "bench", []string{"base", "a", "b"},
		func(_, _ int, v float64) any { return v })
	if got := plain.String(); !strings.Contains(got, "gcc") || !strings.Contains(got, "8.00") {
		t.Errorf("Table:\n%s", got)
	}

	vs := c.TableVsBaseline("t", "bench", []string{"a", "b"}, 0,
		func(v, base float64) any { return v / base })
	s := vs.String()
	if !strings.Contains(s, "4.00") { // perl: 8/2
		t.Errorf("TableVsBaseline missing ratio:\n%s", s)
	}
	if strings.Contains(s, "1.00") { // baseline column must be excluded
		t.Errorf("TableVsBaseline leaked the baseline column:\n%s", s)
	}

	long := c.TableLong("t", []string{"bench", "cfg", "ratio"}, 0,
		func(v, base float64) []any { return []any{v / base} })
	if long.NumRows() != 4 { // 2 rows x 2 non-baseline cols
		t.Errorf("TableLong rows = %d", long.NumRows())
	}

	// Paired: (base, a) and then (b, ...) needs an even column count; build
	// a 4-col collector.
	p := NewCollector[float64]([]string{"w"}, []string{"b0", "v0", "b1", "v1"})
	for i, v := range []float64{1, 3, 2, 8} {
		p.Put(0, i, v)
	}
	paired := p.TablePaired("t", "bench", []string{"k0", "k1"},
		func(v, base float64) any { return v / base })
	ps := paired.String()
	if !strings.Contains(ps, "3.00") || !strings.Contains(ps, "4.00") {
		t.Errorf("TablePaired:\n%s", ps)
	}
}

func TestCollectorReduceCols(t *testing.T) {
	c := filledCollector(t)
	sums := c.ReduceCols(0, func(v, base float64) float64 { return v - base },
		func(vals []float64) float64 {
			s := 0.0
			for _, v := range vals {
				s += v
			}
			return s
		})
	if len(sums) != 2 || sums[0] != 2 || sums[1] != 8 {
		t.Errorf("ReduceCols = %v, want [2 8]", sums)
	}
}

func TestCollectorPutPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Put did not panic")
		}
	}()
	NewCollector[int]([]string{"r"}, []string{"c"}).Put(0, 1, 1)
}
