package stats

import "sort"

// P2Quantile estimates a single quantile of a scalar stream in O(1) memory
// using the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track
// the running minimum, the target quantile, the maximum, and the two
// midpoints, adjusted toward their ideal positions with piecewise-parabolic
// interpolation after every observation. It is the streaming companion to
// Moments and implements the same mergeable-reducer shape — Add folds one
// observation, Merge folds another accumulator — so dist summaries can carry
// quantiles across sweep shards with fixed-size state.
//
// Exactness: with five or fewer observations the estimate is exact (the
// samples are buffered until the markers initialise). Min and Max are exact
// always, including across Merge. Beyond five observations the estimate is
// the P² approximation, and Merge combines two approximations by
// count-weighted inverse-CDF interpolation — deterministic, but approximate:
// a sharded reduction is a close estimate of, not bit-identical to, the
// sequential one (the pinning tests bound the error on small grids).
//
// Use NewP2Quantile; the zero value is not ready (it has no target quantile).
type P2Quantile struct {
	// P is the target quantile in (0, 1), fixed at construction.
	P float64
	// n counts observations. For n <= 5 the first samples sit in q[:n]
	// unsorted; at n == 5 they are sorted in place and become the markers.
	n int64
	// q are the marker heights, pos their 1-based positions, want the
	// ideal (fractional) positions, dwant the per-observation increments.
	q     [5]float64
	pos   [5]int64
	want  [5]float64
	dwant [5]float64
}

// NewP2Quantile builds an estimator for quantile p in (0, 1) — e.g. 0.5 for
// the median, 0.9 for P90.
func NewP2Quantile(p float64) *P2Quantile {
	e := &P2Quantile{}
	e.init(p)
	return e
}

func (e *P2Quantile) init(p float64) {
	if p <= 0 {
		p = 0.5
	}
	if p >= 1 {
		p = 0.5
	}
	*e = P2Quantile{P: p}
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// Count returns the number of observations folded so far.
func (e *P2Quantile) Count() int64 { return e.n }

// Min returns the exact minimum observed (0 when empty).
func (e *P2Quantile) Min() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.n] {
			if v < m {
				m = v
			}
		}
		return m
	}
	return e.q[0]
}

// Max returns the exact maximum observed (0 when empty).
func (e *P2Quantile) Max() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.n] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return e.q[4]
}

// Add folds one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = int64(i + 1)
				e.want[i] = 1 + e.dwant[i]*4
			}
		}
		return
	}
	// Locate x's cell and clamp the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	e.n++
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}
	// Adjust the three interior markers toward their ideal positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := int64(1)
			if d < 0 {
				s = -1
			}
			if h := e.parabolic(i, s); e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by s (±1).
func (e *P2Quantile) parabolic(i int, s int64) float64 {
	d := float64(s)
	np, nc, nn := float64(e.pos[i-1]), float64(e.pos[i]), float64(e.pos[i+1])
	return e.q[i] + d/(nn-np)*((nc-np+d)*(e.q[i+1]-e.q[i])/(nn-nc)+(nn-nc-d)*(e.q[i]-e.q[i-1])/(nc-np))
}

// linear is the fallback height prediction when the parabola leaves the
// bracketing heights.
func (e *P2Quantile) linear(i int, s int64) float64 {
	j := i + int(s)
	return e.q[i] + float64(s)*(e.q[j]-e.q[i])/float64(e.pos[j]-e.pos[i])
}

// Quantile returns the current estimate of the target quantile: exact for
// five or fewer observations, the P² marker height beyond.
func (e *P2Quantile) Quantile() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		buf := make([]float64, e.n)
		copy(buf, e.q[:e.n])
		sort.Float64s(buf)
		// Nearest-rank on the exact sample set.
		r := int(e.P * float64(e.n))
		if r > len(buf)-1 {
			r = len(buf) - 1
		}
		return buf[r]
	}
	return e.q[2]
}

// invCDF evaluates the estimator's sketch as an inverse CDF at probability
// p, interpolating linearly between markers (positions map to probabilities
// (pos-1)/(n-1)). Requires n >= 5.
func (e *P2Quantile) invCDF(p float64) float64 {
	if e.n <= 1 {
		return e.q[0]
	}
	d := float64(e.n - 1)
	for i := 0; i < 4; i++ {
		lo, hi := (float64(e.pos[i])-1)/d, (float64(e.pos[i+1])-1)/d
		if p <= hi {
			if hi == lo {
				return e.q[i]
			}
			t := (p - lo) / (hi - lo)
			return e.q[i] + t*(e.q[i+1]-e.q[i])
		}
	}
	return e.q[4]
}

// Merge folds another accumulator's state into e, the P2Quantile leg of the
// mergeable-reducer contract. A small side (fewer than five observations)
// still holds raw samples, which are replayed exactly; two initialised
// sketches combine by count-weighted inverse-CDF interpolation at e's
// marker probabilities, with the min and max markers taken exactly. The
// result is deterministic for a fixed merge order and tracks the sequential
// estimate closely, but is not bit-identical to it.
func (e *P2Quantile) Merge(o *P2Quantile) {
	if o.n == 0 {
		return
	}
	if e.n == 0 {
		p := e.P
		if p == 0 {
			p = o.P
		}
		*e = *o
		e.P = p
		e.dwant = o.dwant
		return
	}
	if o.n < 5 {
		for _, x := range o.q[:o.n] {
			e.Add(x)
		}
		return
	}
	if e.n < 5 {
		buf, k := e.q, e.n
		*e = *o
		for _, x := range buf[:k] {
			e.Add(x)
		}
		return
	}
	n := e.n + o.n
	we, wo := float64(e.n)/float64(n), float64(o.n)/float64(n)
	var q [5]float64
	q[0] = min(e.q[0], o.q[0])
	q[4] = max(e.q[4], o.q[4])
	for i := 1; i <= 3; i++ {
		p := e.dwant[i]
		q[i] = we*e.invCDF(p) + wo*o.invCDF(p)
	}
	// Re-impose monotone marker heights (weighted mixing preserves order
	// of the interior markers but the exact extremes can cross them).
	for i := 1; i < 5; i++ {
		if q[i] < q[i-1] {
			q[i] = q[i-1]
		}
	}
	e.q = q
	e.n = n
	for i := range e.pos {
		ideal := 1 + e.dwant[i]*float64(n-1)
		e.pos[i] = int64(ideal + 0.5)
	}
	// Positions must stay strictly ordered for the parabolic update.
	e.pos[0] = 1
	e.pos[4] = n
	for i := 1; i < 5; i++ {
		if e.pos[i] <= e.pos[i-1] {
			e.pos[i] = e.pos[i-1] + 1
		}
	}
	for i := 3; i >= 0; i-- {
		if e.pos[i] >= e.pos[i+1] {
			e.pos[i] = e.pos[i+1] - 1
		}
	}
	for i := range e.want {
		e.want[i] = 1 + e.dwant[i]*float64(n-1)
	}
}
