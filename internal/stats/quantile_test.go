package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank reference on a full sample set.
func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	r := int(p * float64(len(s)))
	if r > len(s)-1 {
		r = len(s) - 1
	}
	return s[r]
}

func TestP2QuantileExactUnderFive(t *testing.T) {
	for _, p := range []float64{0.5, 0.9} {
		e := NewP2Quantile(p)
		if got := e.Quantile(); got != 0 {
			t.Fatalf("empty Quantile() = %v", got)
		}
		xs := []float64{7, 3, 11, 5}
		for i, x := range xs {
			e.Add(x)
			want := exactQuantile(xs[:i+1], p)
			if got := e.Quantile(); got != want {
				t.Errorf("p=%v n=%d: Quantile() = %v, want exact %v", p, i+1, got, want)
			}
		}
		if e.Min() != 3 || e.Max() != 11 {
			t.Errorf("p=%v: min/max = %v/%v", p, e.Min(), e.Max())
		}
	}
}

// TestP2QuantilePinnedSmallGrids pins the estimator against exact quantiles
// on small deterministic grids, where P² is provably close: for uniform
// permutations of 1..n the median estimate must land within a small absolute
// band of the true median.
func TestP2QuantilePinnedSmallGrids(t *testing.T) {
	for _, n := range []int{5, 9, 25, 101} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i + 1)
			}
			rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
			e := NewP2Quantile(0.5)
			for _, x := range xs {
				e.Add(x)
			}
			want := exactQuantile(xs, 0.5)
			if got := e.Quantile(); math.Abs(got-want) > 0.1*float64(n)+1 {
				t.Errorf("n=%d seed=%d: median %v, exact %v", n, seed, got, want)
			}
			if e.Min() != 1 || e.Max() != float64(n) {
				t.Errorf("n=%d: min/max %v/%v, want exact 1/%d", n, e.Min(), e.Max(), n)
			}
			if e.Count() != int64(n) {
				t.Errorf("n=%d: Count = %d", n, e.Count())
			}
		}
	}
}

// TestP2QuantileConvergesOnUniform checks asymptotic accuracy at both the
// median and a tail quantile on a large pseudo-uniform stream.
func TestP2QuantileConvergesOnUniform(t *testing.T) {
	for _, p := range []float64{0.5, 0.9} {
		e := NewP2Quantile(p)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200_000; i++ {
			e.Add(rng.Float64())
		}
		if got := e.Quantile(); math.Abs(got-p) > 0.01 {
			t.Errorf("p=%v: estimate %v after 200k uniform samples", p, got)
		}
	}
}

// TestP2QuantileMergeSmallSidesExact pins the exact-replay merge legs: while
// either side holds fewer than five raw samples, merging must equal folding
// the concatenated stream.
func TestP2QuantileMergeSmallSidesExact(t *testing.T) {
	xs := []float64{9, 2, 14, 4, 6, 1, 12}
	for cut := 0; cut <= 4; cut++ {
		a, b, seq := NewP2Quantile(0.5), NewP2Quantile(0.5), NewP2Quantile(0.5)
		for _, x := range xs[:cut] {
			b.Add(x) // b is the small side
		}
		for _, x := range xs[cut:] {
			a.Add(x)
		}
		for _, x := range append(append([]float64(nil), xs[cut:]...), xs[:cut]...) {
			seq.Add(x)
		}
		a.Merge(b)
		if a.Count() != seq.Count() {
			t.Fatalf("cut=%d: Count %d vs %d", cut, a.Count(), seq.Count())
		}
		if got, want := a.Quantile(), seq.Quantile(); got != want {
			t.Errorf("cut=%d: merged quantile %v, sequential %v", cut, got, want)
		}
	}
	// Merging INTO a small receiver replays the receiver's samples onto the
	// initialised side; result must match that exact fold too.
	small, big := NewP2Quantile(0.5), NewP2Quantile(0.5)
	for _, x := range xs[:3] {
		small.Add(x)
	}
	for _, x := range xs[3:] {
		big.Add(x)
	}
	ref := NewP2Quantile(0.5)
	for _, x := range xs[3:] {
		ref.Add(x)
	}
	for _, x := range xs[:3] {
		ref.Add(x)
	}
	small.Merge(big)
	if small.Quantile() != ref.Quantile() || small.Count() != ref.Count() {
		t.Errorf("small receiver merge: %v/%d, want %v/%d",
			small.Quantile(), small.Count(), ref.Quantile(), ref.Count())
	}
}

// TestP2QuantileMergeApproximatesSequential bounds the sketch-combination
// merge: sharded accumulation over a uniform stream must land near both the
// sequential estimate and the true quantile, with exact min/max and count.
func TestP2QuantileMergeApproximatesSequential(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(7))
		seq := NewP2Quantile(0.5)
		parts := make([]*P2Quantile, shards)
		for i := range parts {
			parts[i] = NewP2Quantile(0.5)
		}
		const total = 40_000
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < total; i++ {
			x := rng.Float64()
			lo, hi = math.Min(lo, x), math.Max(hi, x)
			seq.Add(x)
			parts[i%shards].Add(x)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			merged.Merge(p)
		}
		if merged.Count() != total {
			t.Fatalf("shards=%d: Count %d", shards, merged.Count())
		}
		if merged.Min() != lo || merged.Max() != hi {
			t.Errorf("shards=%d: min/max %v/%v, want exact %v/%v", shards, merged.Min(), merged.Max(), lo, hi)
		}
		if math.Abs(merged.Quantile()-0.5) > 0.02 {
			t.Errorf("shards=%d: merged median %v, want ~0.5", shards, merged.Quantile())
		}
		if math.Abs(merged.Quantile()-seq.Quantile()) > 0.02 {
			t.Errorf("shards=%d: merged %v vs sequential %v", shards, merged.Quantile(), seq.Quantile())
		}
	}
}

// TestP2QuantileMergeThenAdd verifies the merged state remains a live
// accumulator: positions stay strictly ordered so further Adds are safe and
// keep tracking the stream.
func TestP2QuantileMergeThenAdd(t *testing.T) {
	a, b := NewP2Quantile(0.9), NewP2Quantile(0.9)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a.Add(rng.Float64())
		b.Add(rng.Float64())
	}
	a.Merge(b)
	for i := 0; i < 10_000; i++ {
		a.Add(rng.Float64())
	}
	if got := a.Quantile(); math.Abs(got-0.9) > 0.03 {
		t.Errorf("post-merge accumulation drifted: P90 = %v", got)
	}
	if a.Count() != 12_000 {
		t.Errorf("Count = %d", a.Count())
	}
}
