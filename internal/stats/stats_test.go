package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPctRatioPerKilo(t *testing.T) {
	if got := Pct(1, 4); got != 25 {
		t.Errorf("Pct = %v", got)
	}
	if got := Pct(1, 0); got != 0 {
		t.Errorf("Pct div0 = %v", got)
	}
	if got := Ratio(3, 2); got != 1.5 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio div0 = %v", got)
	}
	if got := PerKilo(5, 1000); got != 5 {
		t.Errorf("PerKilo = %v", got)
	}
	if got := PerKilo(5, 0); got != 0 {
		t.Errorf("PerKilo div0 = %v", got)
	}
}

func TestGmean(t *testing.T) {
	got := Gmean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Gmean(1,4) = %v, want 2", got)
	}
	if Gmean(nil) != 0 {
		t.Error("Gmean(nil) != 0")
	}
	if Gmean([]float64{-1, 0}) != 0 {
		t.Error("Gmean of non-positives != 0")
	}
	// Non-positives ignored, not zeroing.
	got = Gmean([]float64{2, -5})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Gmean(2,-5) = %v, want 2", got)
	}
}

func TestGmeanSpeedupPct(t *testing.T) {
	// 10% and 10% gains → 10% gmean gain.
	got := GmeanSpeedupPct([]float64{10, 10})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GmeanSpeedupPct = %v, want 10", got)
	}
	// 0% and 21% → sqrt(1.21)-1 = 10%.
	got = GmeanSpeedupPct([]float64{0, 21})
	if math.Abs(got-10) > 1e-6 {
		t.Errorf("GmeanSpeedupPct = %v, want 10", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []int{0, 5, 9, 10, 25, 39, 40, 1000, -3} {
		h.Add(v)
	}
	if h.Count() != 9 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Bucket(0) != 4 { // 0,5,9,-3(clamped)
		t.Errorf("Bucket(0) = %d, want 4", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(3) != 1 {
		t.Errorf("buckets = %d %d %d", h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d", h.Overflow())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Error("out-of-range bucket access not zero")
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := NewHistogram(100, 1)
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("Mean = %v", h.Mean())
	}
	q50 := h.Quantile(0.5)
	if q50 < 50 || q50 > 52 {
		t.Errorf("Quantile(0.5) = %d", q50)
	}
	if h.Quantile(0) < 1 {
		t.Errorf("Quantile(0) = %d", h.Quantile(0))
	}
	if (&Histogram{BucketWidth: 1}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram(32, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Intn(200))
	}
	f := func(a, b float64) bool {
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Speedups", "bench", "fdp", "nlp")
	tb.AddRow("gcc", 12.5, 4.25)
	tb.AddRow("vortex", 20.125, 6.0)
	out := tb.String()
	if !strings.Contains(out, "== Speedups ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "12.50") || !strings.Contains(out, "4.25") {
		t.Errorf("missing float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4+0 { // title, header, rule, 2 rows = 5? title+header+rule+2
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(`needs,"quoting`, 1.0)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"needs,""quoting"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestIsNumericAlignment(t *testing.T) {
	for _, s := range []string{"12", "-3.5", "99%", "0x12", "16K"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"", "gcc", "a1", "1.2.3"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

func TestSorted(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := Sorted(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Sorted = %v", got)
	}
}
