package stats

import (
	"math"
	"sort"
)

// This file holds the mergeable reducers: summaries that can be accumulated
// independently on disjoint shards of a sweep and then combined into exactly
// the summary a single pass over the whole stream would have produced. They
// are the reduction side of distributed sweeps — each worker folds its index
// range locally and ships a fixed-size state, so a million-point sweep's
// summary costs O(shards) merge work instead of O(points) result shipping.

// Moments accumulates count, mean, and variance of a scalar stream in O(1)
// memory using Welford's online update, with an exact pairwise merge (Chan,
// Golub & LeVeque's parallel formula). Add and Merge commute up to floating
// point: merging shard moments is algebraically identical to folding the
// concatenated stream.
//
// The zero Moments is an empty accumulator ready for use.
type Moments struct {
	Count int64
	Mean  float64
	M2    float64 // sum of squared deviations from the running mean
}

// Add folds one observation.
func (m *Moments) Add(x float64) {
	m.Count++
	d := x - m.Mean
	m.Mean += d / float64(m.Count)
	m.M2 += d * (x - m.Mean)
}

// Merge folds another accumulator's state into m, as if every observation o
// saw had been Added to m.
func (m *Moments) Merge(o Moments) {
	if o.Count == 0 {
		return
	}
	if m.Count == 0 {
		*m = o
		return
	}
	n := m.Count + o.Count
	d := o.Mean - m.Mean
	m.M2 += o.M2 + d*d*float64(m.Count)*float64(o.Count)/float64(n)
	m.Mean += d * float64(o.Count) / float64(n)
	m.Count = n
}

// Variance returns the population variance (0 when fewer than 2 samples).
func (m *Moments) Variance() float64 {
	if m.Count < 2 {
		return 0
	}
	return m.M2 / float64(m.Count)
}

// SampleVariance returns the Bessel-corrected sample variance.
func (m *Moments) SampleVariance() float64 {
	if m.Count < 2 {
		return 0
	}
	return m.M2 / float64(m.Count-1)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// ScoredItem is one entry of a TopK: a score, the item's stable sequence
// number in the overall stream (its enumeration index in a sweep), and the
// carried value.
type ScoredItem[T any] struct {
	Score float64
	Seq   int64
	Value T
}

// TopK keeps the k best-scoring items of a stream in O(k) memory, mergeable
// across shards. Ties on score break toward the lower Seq, which makes the
// retained set a deterministic function of the observation multiset: a
// sharded run merged in any order keeps exactly the items a sequential pass
// would, so distributed top-k summaries are bit-identical to single-process
// ones.
//
// Direction is fixed at construction: NewTopK retains the highest scores,
// NewBottomK the lowest.
type TopK[T any] struct {
	k      int
	bottom bool
	// heap holds the retained items with the WORST retained item at the
	// root, so a new candidate is admitted by comparing against heap[0]
	// and sifting. Manual sift-up/down keeps this free of container/heap's
	// interface boxing.
	heap []ScoredItem[T]
}

// NewTopK retains the k highest-scoring items.
func NewTopK[T any](k int) *TopK[T] { return &TopK[T]{k: k} }

// NewBottomK retains the k lowest-scoring items.
func NewBottomK[T any](k int) *TopK[T] { return &TopK[T]{k: k, bottom: true} }

// K returns the retention bound.
func (t *TopK[T]) K() int { return t.k }

// Len returns the number of currently retained items (≤ k).
func (t *TopK[T]) Len() int { return len(t.heap) }

// better reports whether a outranks b for retention.
func (t *TopK[T]) better(a, b ScoredItem[T]) bool {
	if a.Score != b.Score {
		if t.bottom {
			return a.Score < b.Score
		}
		return a.Score > b.Score
	}
	return a.Seq < b.Seq
}

// Add offers one observation. seq must be the item's stable global sequence
// number (a sweep's enumeration index); it is the deterministic tie-break.
func (t *TopK[T]) Add(score float64, seq int64, v T) {
	if t.k <= 0 {
		return
	}
	it := ScoredItem[T]{Score: score, Seq: seq, Value: v}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, it)
		// Sift up: parent must be no better than child (worst at root).
		for i := len(t.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !t.better(t.heap[p], t.heap[i]) {
				break
			}
			t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
			i = p
		}
		return
	}
	if !t.better(it, t.heap[0]) {
		return // not better than the worst retained item
	}
	t.heap[0] = it
	// Sift down: push the replacement below any worse child.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(t.heap) && t.better(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r < len(t.heap) && t.better(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// Merge folds another TopK's retained items into t. The other accumulator
// must have the same direction and bound for shard/sequential equivalence.
func (t *TopK[T]) Merge(o *TopK[T]) {
	for _, it := range o.heap {
		t.Add(it.Score, it.Seq, it.Value)
	}
}

// Items returns the retained items best-first (score order, Seq tie-break).
// The heap is left intact; the returned slice is fresh.
func (t *TopK[T]) Items() []ScoredItem[T] {
	out := make([]ScoredItem[T], len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool { return t.better(out[i], out[j]) })
	return out
}
