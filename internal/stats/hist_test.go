package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// exactBuckets computes the sketch a sequential pass over xs must produce,
// by the bucket formula directly — the pin every shard-merge is held to.
func exactBuckets(lo, hi float64, n int, xs []float64) *HistogramSketch {
	h := NewHistogramSketch(lo, hi, n)
	for _, x := range xs {
		switch {
		case math.IsNaN(x):
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int(float64(n) * (x - lo) / (hi - lo))
			if i >= n {
				i = n - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// TestHistogramSketchShardMergeExact pins shard merging against exact
// collection on small grids: any sharding, merged in any order, must equal
// the sequential pass bit-for-bit.
func TestHistogramSketchShardMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		xs := make([]float64, n)
		for i := range xs {
			// Spread across the range, below it, and above it.
			xs[i] = -1 + 10*rng.Float64()
		}
		want := exactBuckets(0, 8, 16, xs)

		seq := NewHistogramSketch(0, 8, 16)
		for _, x := range xs {
			seq.Add(x)
		}
		if !reflect.DeepEqual(seq, want) {
			t.Fatalf("trial %d: sequential Add disagrees with the exact bucket formula:\n%v\nwant\n%v", trial, seq, want)
		}

		shards := 1 + rng.Intn(5)
		parts := make([]*HistogramSketch, shards)
		for i := range parts {
			parts[i] = NewHistogramSketch(0, 8, 16)
		}
		for i, x := range xs {
			parts[rng.Intn(shards)%shards].Add(x)
			_ = i
		}
		// Merge in a random order.
		merged := NewHistogramSketch(0, 8, 16)
		for _, i := range rng.Perm(shards) {
			merged.Merge(parts[i])
		}
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("trial %d (%d shards): merged sketch diverges from sequential pass:\n%v\nwant\n%v", trial, shards, merged, want)
		}
	}
}

// TestHistogramSketchBoundaries pins the edge semantics: Lo is inclusive, Hi
// exclusive, values just under Hi land in the last bucket, NaN is dropped.
func TestHistogramSketchBoundaries(t *testing.T) {
	h := NewHistogramSketch(0, 4, 4)
	h.Add(0)                    // first bucket, inclusive
	h.Add(math.Nextafter(4, 0)) // last bucket, despite float rounding
	h.Add(4)                    // Over, exclusive
	h.Add(-0.001)               // Under
	h.Add(math.NaN())           // dropped
	if got := h.Counts[0]; got != 1 {
		t.Errorf("Lo-inclusive value: bucket0=%d, want 1", got)
	}
	if got := h.Counts[3]; got != 1 {
		t.Errorf("just-under-Hi value: bucket3=%d, want 1", got)
	}
	if h.Over != 1 || h.Under != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("Count()=%d, want 4 (NaN dropped)", got)
	}
}

// TestHistogramSketchMergeGeometryMismatchPanics: silently mixing
// incompatible bucketings would corrupt the reduction, so it must refuse.
func TestHistogramSketchMergeGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("geometry-mismatched Merge did not panic")
		}
	}()
	NewHistogramSketch(0, 8, 16).Merge(NewHistogramSketch(0, 8, 8))
}

// TestHistogramSketchMergeAfterMerge: a merged sketch stays a live
// accumulator (add more, merge more) with the same exactness.
func TestHistogramSketchMergeAfterMerge(t *testing.T) {
	a := NewHistogramSketch(0, 1, 10)
	b := NewHistogramSketch(0, 1, 10)
	for i := 0; i < 10; i++ {
		a.Add(float64(i) / 10)
	}
	b.Merge(a)
	b.Add(0.55)
	c := NewHistogramSketch(0, 1, 10)
	c.Add(0.95)
	b.Merge(c)
	want := exactBuckets(0, 1, 10, []float64{0, .1, .2, .3, .4, .5, .6, .7, .8, .9, .55, .95})
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("merge-then-add-then-merge diverged:\n%v\nwant\n%v", b, want)
	}
}
