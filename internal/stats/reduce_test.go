package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactMoments computes mean/variance the naive two-pass way as the oracle.
func exactMoments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return
}

func TestMomentsMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 100 + rng.NormFloat64()*3 // offset mean: the catastrophic case for naive sum-of-squares
	}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	wantMean, wantVar := exactMoments(xs)
	if m.Count != 1000 {
		t.Fatalf("count = %d", m.Count)
	}
	if math.Abs(m.Mean-wantMean) > 1e-9 {
		t.Errorf("mean = %v, want %v", m.Mean, wantMean)
	}
	if math.Abs(m.Variance()-wantVar) > 1e-9 {
		t.Errorf("variance = %v, want %v", m.Variance(), wantVar)
	}
}

// TestMomentsMergeMatchesSequential pins the distributed contract: splitting
// a stream into shards, folding each independently, and merging in any order
// agrees with one sequential fold to floating-point tolerance.
func TestMomentsMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 997) // prime: shards of uneven length
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	var seq Moments
	for _, x := range xs {
		seq.Add(x)
	}
	for _, shards := range []int{1, 2, 8, 31} {
		parts := make([]Moments, shards)
		for i, x := range xs {
			parts[i%shards].Add(x)
		}
		// Merge in reverse order to show order independence.
		var merged Moments
		for i := shards - 1; i >= 0; i-- {
			merged.Merge(parts[i])
		}
		if merged.Count != seq.Count {
			t.Fatalf("shards=%d: count %d != %d", shards, merged.Count, seq.Count)
		}
		if math.Abs(merged.Mean-seq.Mean) > 1e-9*math.Abs(seq.Mean) {
			t.Errorf("shards=%d: mean %v != %v", shards, merged.Mean, seq.Mean)
		}
		if math.Abs(merged.Variance()-seq.Variance()) > 1e-9*seq.Variance() {
			t.Errorf("shards=%d: variance %v != %v", shards, merged.Variance(), seq.Variance())
		}
	}
	// Merging empties is a no-op in both directions.
	var empty Moments
	m := seq
	m.Merge(empty)
	if m != seq {
		t.Error("merging an empty accumulator changed the state")
	}
	empty.Merge(seq)
	if empty != seq {
		t.Error("merging into an empty accumulator did not adopt the state")
	}
}

// exactTopK is the oracle: sort the full stream by (score, seq) and take k.
func exactTopK(scores []float64, k int, bottom bool) []ScoredItem[int] {
	items := make([]ScoredItem[int], len(scores))
	for i, s := range scores {
		items[i] = ScoredItem[int]{Score: s, Seq: int64(i), Value: i}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			if bottom {
				return items[i].Score < items[j].Score
			}
			return items[i].Score > items[j].Score
		}
		return items[i].Seq < items[j].Seq
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func TestTopKMatchesExactCollection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = math.Floor(rng.Float64()*50) / 10 // coarse grid: plenty of exact ties
	}
	for _, bottom := range []bool{false, true} {
		for _, k := range []int{1, 7, 64, 600} {
			tk := NewTopK[int](k)
			if bottom {
				tk = NewBottomK[int](k)
			}
			for i, s := range scores {
				tk.Add(s, int64(i), i)
			}
			got := tk.Items()
			want := exactTopK(scores, k, bottom)
			if len(got) != len(want) {
				t.Fatalf("bottom=%v k=%d: retained %d, want %d", bottom, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("bottom=%v k=%d item %d: got %+v, want %+v", bottom, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopKShardMergeBitIdentical pins the distributed contract exactly (no
// tolerance: retention is discrete): sharding the stream, folding each shard
// into its own TopK, and merging yields the identical retained set — items,
// order, and all — as the sequential fold, for every shard count and merge
// order. The Seq tie-break is what makes this hold in the presence of equal
// scores.
func TestTopKShardMergeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scores := make([]float64, 300)
	for i := range scores {
		scores[i] = math.Floor(rng.Float64()*20) / 10 // ~15 distinct values over 300 items: ties dominate
	}
	const k = 25
	seq := NewTopK[int](k)
	for i, s := range scores {
		seq.Add(s, int64(i), i)
	}
	want := seq.Items()
	for _, shards := range []int{1, 2, 8} {
		parts := make([]*TopK[int], shards)
		for i := range parts {
			parts[i] = NewTopK[int](k)
		}
		for i, s := range scores {
			parts[i%shards].Add(s, int64(i), i)
		}
		merged := NewTopK[int](k)
		for i := shards - 1; i >= 0; i-- { // reverse order: merge must be order-independent
			merged.Merge(parts[i])
		}
		got := merged.Items()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d items, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("shards=%d item %d: got %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}
