// Package stats provides the measurement plumbing shared by the simulator:
// histograms, rate helpers, geometric means, and fixed-width text tables in
// the style of the paper's result presentation.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Pct returns 100*n/d, or 0 when d == 0.
func Pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Ratio returns n/d, or 0 when d == 0.
func Ratio(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// PerKilo returns 1000*n/d (e.g. misses per kilo-instruction), or 0 when
// d == 0.
func PerKilo(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 1000 * float64(n) / float64(d)
}

// Gmean returns the geometric mean of xs, ignoring non-positive entries
// (callers should pass speedup factors, never percentages that can be -100).
func Gmean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// GmeanSpeedupPct converts per-benchmark percentage gains into the geometric
// mean percentage gain: gmean(1+g_i/100) - 1, in percent.
func GmeanSpeedupPct(gainsPct []float64) float64 {
	factors := make([]float64, 0, len(gainsPct))
	for _, g := range gainsPct {
		factors = append(factors, 1+g/100)
	}
	g := Gmean(factors)
	if g == 0 {
		return 0
	}
	return (g - 1) * 100
}

// Histogram is a bounded linear histogram with an overflow bucket.
type Histogram struct {
	// BucketWidth is the value span of each bucket.
	BucketWidth int
	buckets     []uint64
	over        uint64
	count       uint64
	sum         int64
	max         int64
}

// NewHistogram creates a histogram with n buckets of the given width,
// covering [0, n*width); larger samples land in the overflow bucket.
func NewHistogram(n, width int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if width <= 0 {
		width = 1
	}
	return &Histogram{BucketWidth: width, buckets: make([]uint64, n)}
}

// Add records one sample. Negative samples clamp to zero.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records n identical samples in one update — the bulk form the cycle
// kernel uses when fast-forwarding over idle stretches whose sampled value
// is provably constant. Negative samples clamp to zero.
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count += n
	h.sum += int64(v) * int64(n)
	if int64(v) > h.max {
		h.max = int64(v)
	}
	b := v / h.BucketWidth
	if b >= len(h.buckets) {
		h.over += n
		return
	}
	h.buckets[b] += n
}

// Reset discards every recorded sample, restoring the just-constructed
// state while retaining the bucket array (part of the simulator-wide Reset
// contract; see ARCHITECTURE.md).
func (h *Histogram) Reset() {
	clear(h.buckets)
	h.over = 0
	h.count = 0
	h.sum = 0
	h.max = 0
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() int64 { return h.max }

// Bucket returns the count in bucket i (samples in [i*w, (i+1)*w)).
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Overflow returns the count of samples past the last bucket.
func (h *Histogram) Overflow() uint64 { return h.over }

// NumBuckets returns the configured bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Quantile returns an upper bound of the q-quantile (0 <= q <= 1) using
// bucket upper edges; overflow samples report the observed max.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64((i + 1) * h.BucketWidth)
		}
	}
	return h.max
}

// Table renders fixed-width text tables. Columns auto-size; numeric cells
// are right-aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with 2 decimal
// places.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				if isNumeric(c) {
					parts[i] = fmt.Sprintf("%*s", widths[i], c)
				} else {
					parts[i] = fmt.Sprintf("%-*s", widths[i], c)
				}
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// JSON writes the table as one JSON object {title, headers, rows} — the
// machine-readable form for downstream tooling.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.headers, t.rows})
}

// CSV writes the table as comma-separated values (no title line).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot, digit := false, false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digit = true
		case r == '-' && i == 0:
		case r == '.' && !dot:
			dot = true
		case r == '%' && i == len(s)-1:
		case r == 'x' || r == 'K' || r == 'M':
			// allow hex and unit suffixes to right-align
		default:
			return false
		}
	}
	return digit
}

// Sorted returns keys of a string-keyed map in sorted order; a small helper
// for deterministic output.
func Sorted[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
