package stats

import (
	"fmt"
	"math"
	"strings"
)

// HistogramSketch is the mergeable fixed-bucket histogram reducer: n equal
// buckets over [Lo, Hi), plus under- and overflow counters. Because the
// geometry is fixed at construction and the state is integer counts, Merge is
// exact — a sharded reduction's histogram is bit-identical to a single
// sequential pass over the concatenated stream, in any merge order. That is
// the same discipline as Moments/TopK, and what lets dist.Summary carry a
// value distribution per shard without anyone holding the sample set.
//
// All shards of one reduction must construct the sketch with identical
// (Lo, Hi, buckets); Merge panics on a geometry mismatch rather than
// silently mixing incompatible bucketings. NaN observations are ignored.
type HistogramSketch struct {
	// Lo (inclusive) and Hi (exclusive) bound the bucketed range.
	Lo, Hi float64
	// Counts[i] counts observations in [Lo + i*w, Lo + (i+1)*w), where
	// w = (Hi-Lo)/len(Counts).
	Counts []uint64
	// Under counts observations below Lo; Over counts those at or above Hi.
	Under, Over uint64
}

// NewHistogramSketch builds a sketch of n equal buckets over [lo, hi).
// It panics on a degenerate geometry (n <= 0 or hi <= lo).
func NewHistogramSketch(lo, hi float64, n int) *HistogramSketch {
	if n <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: HistogramSketch geometry [%g,%g)/%d is degenerate", lo, hi, n))
	}
	return &HistogramSketch{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add folds one observation. NaN is ignored.
func (h *HistogramSketch) Add(x float64) {
	switch {
	case math.IsNaN(x):
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		// Guard the float boundary: x just under Hi can round the scaled
		// index up to len(Counts).
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Count returns the total number of folded observations, including under-
// and overflow.
func (h *HistogramSketch) Count() uint64 {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BucketBounds returns bucket i's [lo, hi) range.
func (h *HistogramSketch) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Merge folds another shard's sketch into h, as if every observation o saw
// had been Added to h. The geometries must match exactly.
func (h *HistogramSketch) Merge(o *HistogramSketch) {
	if o == nil {
		return
	}
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Counts) != len(h.Counts) {
		panic(fmt.Sprintf("stats: merging HistogramSketch [%g,%g)/%d into [%g,%g)/%d",
			o.Lo, o.Hi, len(o.Counts), h.Lo, h.Hi, len(h.Counts)))
	}
	h.Under += o.Under
	h.Over += o.Over
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
}

// String renders the non-empty buckets compactly:
// "hist[0,8)/32: <1 [0.25,0.5):3 ... >=8:2".
func (h *HistogramSketch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist[%g,%g)/%d:", h.Lo, h.Hi, len(h.Counts))
	empty := true
	if h.Under > 0 {
		fmt.Fprintf(&b, " <%g:%d", h.Lo, h.Under)
		empty = false
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BucketBounds(i)
		fmt.Fprintf(&b, " [%.3g,%.3g):%d", lo, hi, c)
		empty = false
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, " >=%g:%d", h.Hi, h.Over)
		empty = false
	}
	if empty {
		b.WriteString(" empty")
	}
	return b.String()
}
