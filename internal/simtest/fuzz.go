// Differential fuzzing: one int64 seed expands into a random valid machine
// config paired with a random generated program, and the pair is run through
// every equivalence oracle the repo's determinism story rests on:
//
//  1. scheduled-vs-naive — the event-scheduled kernel (Run, with skipIdle)
//     must produce the bit-identical Result of per-cycle stepping (RunNaive);
//  2. pooled-Reset-vs-fresh — a machine dirtied by another run (completed or
//     abandoned mid-flight) and then Reset must reproduce a fresh machine;
//  3. workers-1-vs-8 — an engine Sweep's outcomes must be independent of the
//     worker count;
//  4. dist-vs-single — a loopback-sharded distributed sweep (wire-encoded
//     assignments, shards in {1, 4}) must merge back to the single-process
//     outcomes.
//
// The config space deliberately covers every prefetcher kind and the corners
// where the scheduler contract is easiest to get wrong: tiny queues (heads
// defer and drop constantly), slow memory (long skippable stretches), and
// single-ported caches. Go's native fuzzer mutates the seed; see
// fuzz_test.go for the target and testdata/fuzz for the committed corpus.
package simtest

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"fdip/internal/core"
	"fdip/internal/dist"
	"fdip/internal/engine"
	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
)

// fuzzKinds is every prefetch engine the differential oracles must hold for.
var fuzzKinds = []core.PrefetcherKind{
	core.PrefetchNone,
	core.PrefetchNextLine,
	core.PrefetchStream,
	core.PrefetchFDP,
	core.PrefetchMANA,
	core.PrefetchShadow,
}

// fuzzConfig derives a random valid machine description. Every draw is a
// value Validate accepts, so a failure is always a kernel bug, never an
// input-rejection artifact.
func fuzzConfig(rng *rand.Rand) core.Config {
	pick := func(vs ...int) int { return vs[rng.Intn(len(vs))] }

	cfg := core.DefaultConfig()
	cfg.MaxInstrs = uint64(3_000 + rng.Intn(5_000))
	cfg.L1ISizeBytes = pick(1024, 2048, 4096, 16*1024)
	cfg.L1IWays = pick(1, 2, 4)
	cfg.LineBytes = pick(16, 32, 64)
	cfg.L1ITagPorts = pick(1, 2)
	cfg.PrefetchBufferEntries = pick(2, 8, 32)
	cfg.FTQEntries = pick(2, 8, 32)
	cfg.FetchWidth = pick(1, 4, 8)
	cfg.RedirectLatency = rng.Intn(5)
	cfg.PerfectL1I = rng.Intn(8) == 0

	cfg.Mem.L2HitLatency = 4 + rng.Intn(9)
	cfg.Mem.MemLatency = pick(40, 120, 300)
	cfg.Mem.BusCyclesPerLine = 1 + rng.Intn(6)

	cfg.PredictorName = []string{"hybrid", "gshare", "bimodal", "static-taken", "static-nottaken"}[rng.Intn(5)]
	cfg.PredictorSize = pick(256, 1024, 4096)
	cfg.PredictorHistBits = uint(4 + rng.Intn(11))
	cfg.FTB.Sets = pick(64, 256, 512)
	cfg.FTB.Ways = pick(1, 2, 4)
	cfg.FTB.BlockOriented = rng.Intn(2) == 0

	cfg.Prefetch.Kind = fuzzKinds[rng.Intn(len(fuzzKinds))]
	cfg.Prefetch.NextLinePending = 1 + rng.Intn(8)
	cfg.Prefetch.Streams = 1 + rng.Intn(6)
	cfg.Prefetch.StreamDepth = 1 + rng.Intn(6)
	cfg.Prefetch.FDP = prefetch.FDPConfig{
		PIQSize:   1 + rng.Intn(32),
		SkipHead:  rng.Intn(3),
		CPF:       []prefetch.CPFMode{prefetch.CPFOff, prefetch.CPFConservative, prefetch.CPFOptimistic}[rng.Intn(3)],
		RemoveCPF: rng.Intn(2) == 0,
	}
	cfg.Prefetch.MANA = prefetch.MANAConfig{
		BudgetBytes: pick(128, 512, 2048, 8192),
		RegionLines: 2 + rng.Intn(31),
		QueueSize:   1 + rng.Intn(16),
	}
	cfg.Prefetch.Shadow = prefetch.ShadowConfig{
		DecodeQueue:     1 + rng.Intn(8),
		TargetQueue:     1 + rng.Intn(8),
		PrefetchTargets: rng.Intn(4) != 0,
	}
	return cfg
}

// seedKind reports the prefetcher kind a fuzz seed's config draw lands on —
// the coverage axis the committed seed corpus is chosen over.
func seedKind(seed int64) core.PrefetcherKind {
	rng := rand.New(rand.NewSource(seed))
	return fuzzConfig(rng).Prefetch.Kind
}

// fuzzParams derives a random small program: big enough to have interesting
// control flow, small enough that one fuzz iteration generates it in
// milliseconds.
func fuzzParams(rng *rand.Rand) program.Params {
	p := program.DefaultParams()
	p.Seed = rng.Int63()
	p.NumFuncs = 8 + rng.Intn(40)
	p.MeanBlocksPerFunc = 3 + rng.Intn(8)
	p.MeanBlockLen = 2 + rng.Intn(6)
	p.MaxLoopsPerFunc = rng.Intn(3)
	p.MeanLoopTrip = 2 + rng.Intn(10)
	p.CallFrac = 0.05 + 0.20*rng.Float64()
	p.CondFrac = 0.15 + 0.25*rng.Float64()
	p.JumpFrac = 0.15 * rng.Float64()
	p.IndirectFrac = 0.20 * rng.Float64()
	p.DispatchFanout = 4 + rng.Intn(16)
	p.DispatchTargets = 2 + rng.Intn(12)
	return p
}

// Fuzz expands seed into one (config, program) pair and fails tb if any
// differential oracle is violated. It is the body of the native fuzz target
// FuzzKernelDifferential and is equally callable from plain tests.
func Fuzz(tb testing.TB, seed int64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := fuzzConfig(rng)
	if err := cfg.Validate(); err != nil {
		tb.Fatalf("fuzz seed %d: derived config rejected: %v", seed, err)
	}
	params := fuzzParams(rng)
	im, err := program.Generate(params)
	if err != nil {
		tb.Fatalf("fuzz seed %d: derived program rejected: %v", seed, err)
	}
	wseed := rng.Int63()

	// Oracle 1: the event-scheduled kernel against naive per-cycle stepping.
	sched := core.MustNew(cfg, im, oracle.NewWalker(im, wseed))
	want := sched.Run()
	naive := core.MustNew(cfg, im, oracle.NewWalker(im, wseed)).RunNaive()
	if !reflect.DeepEqual(want, naive) {
		tb.Fatalf("fuzz seed %d (%s): scheduled kernel diverged from naive stepping\nscheduled: %+v\nnaive:     %+v",
			seed, cfg.Prefetch.Kind, want, naive)
	}

	// Oracle 2a: pooled checkout after a completed job — the machine that just
	// ran the scheduled pass is dirty; Reset must restore fresh semantics.
	sched.Reset(im, oracle.NewWalker(im, wseed))
	if got := sched.Run(); !reflect.DeepEqual(want, got) {
		tb.Fatalf("fuzz seed %d (%s): Reset after a completed run diverged from fresh\nfresh: %+v\nreset: %+v",
			seed, cfg.Prefetch.Kind, want, got)
	}

	// Oracle 2b: pooled checkout after an abandoned job — dirty the machine
	// mid-flight on a different walker seed, then Reset and rerun.
	dirty := core.MustNew(cfg, im, oracle.NewWalker(im, wseed+1))
	for steps := 200 + rng.Intn(800); steps > 0; steps-- {
		dirty.Step()
	}
	dirty.Reset(im, oracle.NewWalker(im, wseed))
	if got := dirty.Run(); !reflect.DeepEqual(want, got) {
		tb.Fatalf("fuzz seed %d (%s): Reset from a mid-flight state diverged from fresh\nfresh: %+v\nreset: %+v",
			seed, cfg.Prefetch.Kind, want, got)
	}

	// Oracle 3: engine sweeps are worker-count independent. The job list
	// includes a duplicate so memo coalescing is exercised too.
	jobs := []engine.Job{
		{Name: "a", Config: cfg, Params: &params, Seed: wseed},
		{Name: "b", Config: cfg, Params: &params, Seed: wseed + 1},
		{Name: "a-dup", Config: cfg, Params: &params, Seed: wseed},
	}
	cache := engine.NewImageCache()
	ctx := context.Background()
	one, err := engine.New(engine.WithWorkers(1), engine.WithImageCache(cache)).Sweep(ctx, jobs)
	if err != nil {
		tb.Fatalf("fuzz seed %d: workers=1 sweep: %v", seed, err)
	}
	eight, err := engine.New(engine.WithWorkers(8), engine.WithImageCache(cache)).Sweep(ctx, jobs)
	if err != nil {
		tb.Fatalf("fuzz seed %d: workers=8 sweep: %v", seed, err)
	}
	for i := range jobs {
		if one[i].Err != nil || eight[i].Err != nil {
			tb.Fatalf("fuzz seed %d: job %s failed: workers=1 err=%v workers=8 err=%v",
				seed, jobs[i].Name, one[i].Err, eight[i].Err)
		}
		if !reflect.DeepEqual(one[i].Result, eight[i].Result) {
			tb.Fatalf("fuzz seed %d: job %s result depends on worker count\nworkers=1: %+v\nworkers=8: %+v",
				seed, jobs[i].Name, one[i].Result, eight[i].Result)
		}
	}
	if !reflect.DeepEqual(one[0].Result, one[2].Result) {
		tb.Fatalf("fuzz seed %d: duplicate jobs produced different results", seed)
	}

	// Oracle 4: a distributed sweep merges back to the single-process
	// outcomes, shard count notwithstanding. Loopback dials give every
	// shard its own engine and memo cache (no cross-shard coalescing to
	// hide behind), Wire round-trips each assignment and outcome through
	// the JSON wire form, and ChunkPoints 1 splits the three-job plan into
	// three ranges so shards=4 genuinely interleaves completion order.
	plan := engine.FromJobs(jobs...)
	for _, shards := range []int{1, 4} {
		co := dist.New(dist.Options{
			Dialer:      dist.Loopback{Workers: 2, Wire: true},
			Shards:      shards,
			ChunkPoints: 1,
		})
		outs, err := co.Sweep(ctx, plan)
		if err != nil {
			tb.Fatalf("fuzz seed %d: dist shards=%d sweep: %v", seed, shards, err)
		}
		for i := range jobs {
			if outs[i].Err != nil {
				tb.Fatalf("fuzz seed %d: dist shards=%d job %s: %v", seed, shards, jobs[i].Name, outs[i].Err)
			}
			if !reflect.DeepEqual(outs[i].Result, one[i].Result) {
				tb.Fatalf("fuzz seed %d: dist shards=%d job %s diverged from single-process\nsingle: %+v\ndist:   %+v",
					seed, shards, jobs[i].Name, one[i].Result, outs[i].Result)
			}
		}
	}
}
