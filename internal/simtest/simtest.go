// Package simtest is the differential test harness behind the layer-wide
// Reset contract: a pooled-and-reset machine must be observationally
// identical to a freshly constructed one. "Reset equals fresh" is exactly
// the kind of invariant that rots silently — one counter a component forgets
// to zero skews a sweep without failing anything — so the harness makes the
// comparison brutal and cheap to reuse: run the same (config, workload,
// seed) triple on a fresh machine and on a machine that was deliberately
// dirtied by a different run and then Reset, and require reflect.DeepEqual
// on the full Result.
//
// Engine, core, and component tests all build on these helpers; the grid in
// Grid covers every prefetcher kind (each has its own Reset logic) plus the
// perfect-L1I and filtered-FDP variants.
package simtest

import (
	"reflect"
	"sync"
	"testing"

	"fdip/internal/core"
	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/workloads"
)

// Triple names one simulation point of the differential grid.
type Triple struct {
	// Name labels the point in test output.
	Name string
	// Config describes the machine; Reset equivalence is only meaningful
	// between runs sharing the identical validated Config.
	Config core.Config
	// Workload names a calibrated benchmark from the workloads package.
	Workload string
	// Seed drives the oracle walker. Zero means the workload's calibrated
	// seed.
	Seed int64
}

var (
	imageMu sync.Mutex
	images  = map[program.Params]*program.Image{}
)

// Image returns the generated image for a workload, memoised across the test
// binary so the grid does not regenerate programs per triple.
func Image(tb testing.TB, workload string) *program.Image {
	tb.Helper()
	w, ok := workloads.ByName(workload)
	if !ok {
		tb.Fatalf("simtest: unknown workload %q", workload)
	}
	imageMu.Lock()
	defer imageMu.Unlock()
	if im, ok := images[w.Params]; ok {
		return im
	}
	im, err := program.Generate(w.Params)
	if err != nil {
		tb.Fatalf("simtest: generate %q: %v", workload, err)
	}
	images[w.Params] = im
	return im
}

// resolve validates the triple's config and fills its seed.
func resolve(tb testing.TB, tr Triple) (core.Config, *program.Image, int64) {
	tb.Helper()
	cfg := tr.Config
	if err := cfg.Validate(); err != nil {
		tb.Fatalf("simtest: %s: %v", tr.Name, err)
	}
	seed := tr.Seed
	if seed == 0 {
		w, _ := workloads.ByName(tr.Workload)
		seed = w.Seed
	}
	return cfg, Image(tb, tr.Workload), seed
}

// FreshResult runs the triple on a newly constructed machine — the reference
// semantics Reset must reproduce.
func FreshResult(tb testing.TB, tr Triple) core.Result {
	tb.Helper()
	cfg, im, seed := resolve(tb, tr)
	p, err := core.New(cfg, im, oracle.NewWalker(im, seed))
	if err != nil {
		tb.Fatalf("simtest: %s: %v", tr.Name, err)
	}
	return p.Run()
}

// ResetResult runs the triple on a machine that first ran the dirty triple
// (same Config, typically a different workload or seed) and was then Reset —
// the pooled checkout path. dirtySteps > 0 instead abandons the dirtying run
// after that many cycles, exercising Reset from a mid-flight state (what a
// cancelled job leaves behind in the pool).
func ResetResult(tb testing.TB, tr, dirty Triple, dirtySteps int) core.Result {
	tb.Helper()
	cfg, im, seed := resolve(tb, tr)
	dcfg, dim, dseed := resolve(tb, dirty)
	if dcfg != cfg {
		tb.Fatalf("simtest: %s: dirty triple %s has a different validated config", tr.Name, dirty.Name)
	}
	p, err := core.New(dcfg, dim, oracle.NewWalker(dim, dseed))
	if err != nil {
		tb.Fatalf("simtest: %s: %v", dirty.Name, err)
	}
	if dirtySteps > 0 {
		for i := 0; i < dirtySteps; i++ {
			p.Step()
		}
	} else {
		p.Run()
	}
	p.Reset(im, oracle.NewWalker(im, seed))
	return p.Run()
}

// RequireResetEquivalence runs the triple fresh and pooled-and-reset (dirtied
// by dirty, completed or abandoned after dirtySteps) and fails the test
// unless the two Results are DeepEqual.
func RequireResetEquivalence(tb testing.TB, tr, dirty Triple, dirtySteps int) {
	tb.Helper()
	fresh := FreshResult(tb, tr)
	reset := ResetResult(tb, tr, dirty, dirtySteps)
	if !reflect.DeepEqual(fresh, reset) {
		tb.Errorf("%s: pooled-and-reset result differs from fresh machine\nfresh: %+v\nreset: %+v", tr.Name, fresh, reset)
	}
}

// Grid returns the differential grid: every prefetcher kind (each with its
// own Reset logic), the cache-probe-filtered FDP variants, and the
// perfect-L1I bound, at a budget small enough to run the whole grid in
// seconds.
func Grid() []Triple {
	const instrs = 25_000
	base := core.DefaultConfig()
	base.MaxInstrs = instrs

	mk := func(name string, mut func(*core.Config)) Triple {
		cfg := base
		if mut != nil {
			mut(&cfg)
		}
		return Triple{Name: name, Config: cfg, Workload: "gcc"}
	}
	return []Triple{
		mk("none", nil),
		mk("nextline", func(c *core.Config) { c.Prefetch.Kind = core.PrefetchNextLine }),
		mk("streambuf", func(c *core.Config) { c.Prefetch.Kind = core.PrefetchStream }),
		mk("fdp", func(c *core.Config) { c.Prefetch.Kind = core.PrefetchFDP }),
		mk("fdp+cpf", func(c *core.Config) {
			c.Prefetch.Kind = core.PrefetchFDP
			c.Prefetch.FDP.CPF = prefetch.CPFConservative
			c.Prefetch.FDP.RemoveCPF = true
		}),
		mk("perfect", func(c *core.Config) { c.PerfectL1I = true }),
		mk("mana", func(c *core.Config) { c.Prefetch.Kind = core.PrefetchMANA }),
		mk("shadow", func(c *core.Config) { c.Prefetch.Kind = core.PrefetchShadow }),
		// A chronically operand-blocked backend: a two-entry issue window
		// behind a single issue port keeps the wakeup scheduler's unissued
		// bitmap and wake bound populated at essentially every cycle, so
		// the mid-flight Reset tests abandon this machine with live
		// scheduler state — the differential that catches a scheduler
		// structure surviving Reset.
		mk("tiny-window", func(c *core.Config) {
			c.Backend.IssueWindow = 2
			c.Backend.IssueWidth = 1
			c.Prefetch.Kind = core.PrefetchFDP
		}),
	}
}

// DirtyVariant derives a run that shares tr's machine shape but walks a
// different dynamic path (another workload and seed) — the state a pooled
// machine realistically carries from its previous job.
func DirtyVariant(tr Triple) Triple {
	d := tr
	d.Name = tr.Name + "/dirty"
	d.Workload = "perl"
	d.Seed = tr.Seed + 7919
	if d.Seed == 0 {
		d.Seed = 7919
	}
	return d
}
