package simtest

import "testing"

// fuzzSeeds is the committed seed set: enough draws that every prefetcher
// kind appears at least once (the kind is the first thing fuzzConfig draws),
// plus a couple of large seeds that land on the slow-memory / tiny-queue
// corners. The same seeds back the checked-in corpus under
// testdata/fuzz/FuzzKernelDifferential.
var fuzzSeeds = []int64{2, 3, 13, 23, 28, 33, 42, 59}

// FuzzKernelDifferential is the native fuzz target: the fuzzer mutates one
// int64 seed, and Fuzz expands it into a random (config, program) pair run
// through the scheduled-vs-naive, pooled-Reset-vs-fresh, and
// workers-1-vs-8 oracles. CI runs this with a bounded -fuzztime as a smoke
// step; `go test` without -fuzz still replays the committed corpus.
func FuzzKernelDifferential(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		Fuzz(t, seed)
	})
}

// TestFuzzSeedsCoverEveryKind pins the seed set's engine coverage: if a
// refactor of fuzzConfig reshuffles the rng draws, this fails rather than
// silently shrinking what the corpus exercises.
func TestFuzzSeedsCoverEveryKind(t *testing.T) {
	covered := map[string]bool{}
	for _, s := range fuzzSeeds {
		covered[string(seedKind(s))] = true
	}
	for _, k := range fuzzKinds {
		if !covered[string(k)] {
			t.Errorf("no committed fuzz seed draws prefetcher kind %q", k)
		}
	}
}
