package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"fdip/internal/engine"
)

// Worker is the execution side of a shard: it runs assignments on pooled
// engines (one per instruction budget, sharing a single image cache) and is
// what cmd/fdipd wraps in a stdio or HTTP transport. A Worker is stateless
// across assignments in the contract's sense — all durable progress lives in
// the coordinator's journal — so killing one mid-range loses nothing but the
// range's partial work.
type Worker struct {
	workers int
	images  *engine.ImageCache

	mu      sync.Mutex
	engines map[uint64]*engine.Engine
}

// NewWorker builds a worker whose engines run at most workers concurrent
// simulations (0 = GOMAXPROCS).
func NewWorker(workers int) *Worker {
	return &Worker{
		workers: workers,
		images:  engine.NewImageCache(),
		engines: make(map[uint64]*engine.Engine),
	}
}

// engineFor returns the engine for an instruction budget, building it on
// first use. Budgets get separate engines because the budget participates in
// the memo key's config; the image cache is shared across all of them.
func (w *Worker) engineFor(instrs uint64) *engine.Engine {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.engines[instrs]
	if !ok {
		e = engine.New(
			engine.WithWorkers(w.workers),
			engine.WithInstrBudget(instrs),
			engine.WithImageCache(w.images),
		)
		w.engines[instrs] = e
	}
	return e
}

// Run executes one assignment, emitting each outcome (completion order,
// indices re-tagged from range-local to the plan's global enumeration space
// — dense offset or the sparse Indices table). Per-job failures are outcomes
// with Err set; the returned error is assignment-terminal (a malformed
// assignment, a stream-level engine failure, or an emit failure).
func (w *Worker) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	if a.Indices != nil && len(a.Indices) != len(a.Jobs) {
		return fmt.Errorf("dist: worker: sparse assignment with %d indices for %d jobs", len(a.Indices), len(a.Jobs))
	}
	eng := w.engineFor(a.Instrs)
	for out, err := range eng.StreamJobs(ctx, a.Jobs) {
		if err != nil {
			return err
		}
		out.Index = a.globalIndex(out.Index)
		if err := emit(out); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// ServeStdio runs the stdio transport: assign frames in on r, outcome frames
// out on wr, one conversation per assignment, until EOF (a clean shutdown —
// the coordinator closed our stdin) or a transport error. This is cmd/fdipd's
// default mode, designed to sit on the other end of an Exec dialer.
func (w *Worker) ServeStdio(ctx context.Context, r io.Reader, wr io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(wr)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("dist: worker: read assignment: %w", err)
		}
		if f.Type != "assign" || f.Assign == nil {
			return fmt.Errorf("dist: worker: expected an assign frame, got %q", f.Type)
		}
		runErr := w.Run(ctx, *f.Assign, func(out engine.RunOutcome) error {
			return enc.Encode(frame{Type: "outcome", Outcome: &out})
		})
		var term frame
		if runErr != nil {
			term = frame{Type: "error", Error: runErr.Error()}
		} else {
			term = frame{Type: "done"}
		}
		if err := enc.Encode(term); err != nil {
			return fmt.Errorf("dist: worker: write terminator: %w", err)
		}
	}
}

// Handler returns the HTTP transport: POST one assign frame, receive the
// range's NDJSON outcome frames (flushed per frame, so the coordinator
// streams instead of buffering the whole range) ending in a done or error
// terminator. Mount it at /v1/run — the path HTTP dialers post to.
func (w *Worker) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(rw, "dist: POST one assign frame", http.StatusMethodNotAllowed)
			return
		}
		var f frame
		if err := json.NewDecoder(req.Body).Decode(&f); err != nil || f.Type != "assign" || f.Assign == nil {
			http.Error(rw, "dist: body must be a single assign frame", http.StatusBadRequest)
			return
		}
		rw.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(rw)
		fl, _ := rw.(http.Flusher)
		send := func(f frame) error {
			if err := enc.Encode(f); err != nil {
				return err
			}
			if fl != nil {
				fl.Flush()
			}
			return nil
		}
		runErr := w.Run(req.Context(), *f.Assign, func(out engine.RunOutcome) error {
			return send(frame{Type: "outcome", Outcome: &out})
		})
		if runErr != nil {
			send(frame{Type: "error", Error: runErr.Error()})
			return
		}
		send(frame{Type: "done"})
	})
}
