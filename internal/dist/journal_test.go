package dist

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fdip/internal/core"
	"fdip/internal/engine"
)

// synthRange fabricates a committed range's outcomes (no simulation needed
// to test journal mechanics).
func synthRange(start, count int) []engine.RunOutcome {
	outs := make([]engine.RunOutcome, count)
	for i := range outs {
		outs[i] = engine.RunOutcome{
			Job:    engine.Job{Name: "synth", Workload: "gcc", Seed: int64(start + i)},
			Index:  start + i,
			Result: core.Result{Prefetcher: "none", Cycles: int64(1000 + start + i), IPC: 1.5},
		}
	}
	return outs
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, completed, err := OpenJournal(path, 42, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 0 {
		t.Fatalf("fresh journal reports %d completed ranges", len(completed))
	}
	r0, r4 := synthRange(0, 2), synthRange(4, 2)
	if err := j.Commit(0, r0); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(4, r4); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, completed, err = OpenJournal(path, 42, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 2 {
		t.Fatalf("reopened journal holds %d ranges, want 2", len(completed))
	}
	for start, want := range map[int][]engine.RunOutcome{0: r0, 4: r4} {
		got, ok := completed[start]
		if !ok {
			t.Fatalf("range %d missing after reopen", start)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("range %d outcomes drifted through the journal:\ngot  %+v\nwant %+v", start, got, want)
		}
	}
}

func TestJournalRejectsForeignSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, err := OpenJournal(path, 42, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(path, 43, 8, 2); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("journal with fingerprint 42 opened under 43: err = %v", err)
	}
	if _, _, err := OpenJournal(path, 42, 8, 4); err == nil {
		t.Error("journal chunked at 2 opened under chunk 4 (range boundaries would not line up)")
	}
}

// TestJournalTornTailTruncated: a crash mid-append leaves a partial final
// line; reopening must recover every complete record, drop the torn one, and
// leave the file appendable.
func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, err := OpenJournal(path, 7, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(0, synthRange(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(2, synthRange(2, 2)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"range","start":4,"count":2,"outco`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, completed, err := OpenJournal(path, 7, 8, 2)
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	if len(completed) != 2 {
		t.Fatalf("recovered %d ranges, want 2 (torn range 4 must be dropped, ranges 0 and 2 kept)", len(completed))
	}
	if _, ok := completed[4]; ok {
		t.Fatal("torn range 4 was trusted")
	}
	// The journal must still accept appends after truncation.
	if err := j2.Commit(4, synthRange(4, 2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, completed, err = OpenJournal(path, 7, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 3 {
		t.Fatalf("post-recovery journal holds %d ranges, want 3", len(completed))
	}
}

// TestJournalPreventsReexecution is the checkpoint/resume satellite's core
// assertion, at the coordinator level with an instrumented dialer: a killed
// run's committed ranges are never re-executed on resume, and its incomplete
// ranges are never lost.
func TestJournalPreventsReexecution(t *testing.T) {
	p := testPlan()
	journal := filepath.Join(t.TempDir(), "j")
	opts := func(d Dialer) Options {
		return Options{Dialer: d, Shards: 1, ChunkPoints: 2, Journal: journal}
	}

	// Run 1 consumes one range then dies.
	run1 := newChaosDialer(Loopback{Workers: 2}, 0)
	for out, err := range New(opts(run1)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("run 1: %v / %v", err, out.Err)
		}
		if out.Index >= 1 {
			break
		}
	}

	// Run 2 finishes. Range 0 must come from the journal, every other range
	// must execute, and no point may be lost or doubled.
	run2 := newChaosDialer(Loopback{Workers: 2}, 0)
	seen := make([]bool, p.Points())
	for out, err := range New(opts(run2)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("run 2: %v / %v", err, out.Err)
		}
		if seen[out.Index] {
			t.Fatalf("point %d delivered twice on resume", out.Index)
		}
		seen[out.Index] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("point %d lost across the restart", i)
		}
	}
	executed := run2.executedStarts()
	for _, start := range executed {
		if start == 0 {
			t.Errorf("journaled range 0 was re-executed on resume (executed: %v)", executed)
		}
	}
	if len(executed) != 2 {
		t.Errorf("resume executed ranges %v; want the two non-journaled ranges [2 4]", executed)
	}
}
