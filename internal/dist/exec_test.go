package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"fdip/internal/core"
	"fdip/internal/engine"
)

// fdipdBinary returns a worker binary to spawn: $FDIPD_BIN when set (CI
// builds it once), else a fresh `go build` into the test's temp dir.
func fdipdBinary(t *testing.T) string {
	t.Helper()
	if bin := os.Getenv("FDIPD_BIN"); bin != "" {
		return bin
	}
	if testing.Short() {
		t.Skip("builds the fdipd binary (set FDIPD_BIN to reuse one)")
	}
	bin := filepath.Join(t.TempDir(), "fdipd")
	cmd := exec.Command("go", "build", "-o", bin, "fdip/cmd/fdipd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build fdipd: %v\n%s", err, out)
	}
	return bin
}

// execPlan is a cheap 6-point plan for subprocess tests (no golden point:
// process startup, not simulation depth, is what this test exercises).
func execPlan() *engine.Plan {
	mk := func(kind core.PrefetcherKind) core.Config {
		c := core.DefaultConfig()
		c.MaxInstrs = 15_000
		c.Prefetch.Kind = kind
		return c
	}
	return engine.NewPlan(core.DefaultConfig()).
		OverNames("gcc", "deltablue").
		Axes(engine.Configs(
			engine.Named("base", mk(core.PrefetchNone)),
			engine.Named("nextline", mk(core.PrefetchNextLine)),
			engine.Named("fdp", mk(core.PrefetchFDP)),
		))
}

// TestExecShardedMatchesSingleProcess crosses the real process boundary:
// the plan sharded 2-way over spawned fdipd worker processes (stdio wire)
// must reproduce the in-process engine bit-identically.
func TestExecShardedMatchesSingleProcess(t *testing.T) {
	bin := fdipdBinary(t)
	p := execPlan()
	ref := make([]engine.RunOutcome, p.Points())
	for out, err := range engine.New(engine.WithWorkers(4)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("reference: %v / %v", err, out.Err)
		}
		ref[out.Index] = out
	}

	c := New(Options{
		Dialer:      Exec{Path: bin, Args: []string{"-workers", "2"}, Stderr: io.Discard},
		Shards:      2,
		ChunkPoints: 2,
	})
	outs, err := c.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("exec sweep: %v", err)
	}
	for i := range ref {
		if outs[i].Err != nil {
			t.Fatalf("point %d (%s): %v", i, outs[i].Job.Name, outs[i].Err)
		}
		if a, b := resultChecksum(outs[i].Result), resultChecksum(ref[i].Result); a != b {
			t.Errorf("point %d (%s): subprocess checksum %#x != in-process %#x", i, outs[i].Job.Name, a, b)
		}
		if outs[i].Job.Name != ref[i].Job.Name {
			t.Errorf("point %d named %q, want %q", i, outs[i].Job.Name, ref[i].Job.Name)
		}
	}
}

// TestExecWorkerKillMidRangeRecovers kills a live worker process mid-sweep;
// the coordinator must spawn a replacement and finish bit-identically.
func TestExecWorkerKillMidRangeRecovers(t *testing.T) {
	bin := fdipdBinary(t)
	p := execPlan()
	ref := make([]engine.RunOutcome, p.Points())
	for out, err := range engine.New(engine.WithWorkers(4)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("reference: %v / %v", err, out.Err)
		}
		ref[out.Index] = out
	}

	// killFirst wraps Exec and shoots the first session's process the moment
	// its first assignment starts.
	kf := &killFirstDialer{inner: Exec{Path: bin, Args: []string{"-workers", "2"}, Stderr: io.Discard}}
	c := New(Options{Dialer: kf, Shards: 1, ChunkPoints: 2})
	outs, err := c.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("sweep across a killed worker process: %v", err)
	}
	if !kf.killed {
		t.Fatal("kill injection never fired; test covered nothing")
	}
	for i := range ref {
		if outs[i].Err != nil {
			t.Fatalf("point %d: %v", i, outs[i].Err)
		}
		if a, b := resultChecksum(outs[i].Result), resultChecksum(ref[i].Result); a != b {
			t.Errorf("point %d (%s): checksum %#x != in-process %#x", i, outs[i].Job.Name, a, b)
		}
	}
}

type killFirstDialer struct {
	inner  Exec
	dials  int
	killed bool
}

func (d *killFirstDialer) Dial(ctx context.Context) (Session, error) {
	d.dials++
	s, err := d.inner.Dial(ctx)
	if err != nil {
		return nil, err
	}
	if d.dials == 1 {
		return &killFirstSession{d: d, s: s.(*execSession)}, nil
	}
	return s, nil
}

type killFirstSession struct {
	d *killFirstDialer
	s *execSession
}

func (ks *killFirstSession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	if !ks.d.killed {
		ks.d.killed = true
		// SIGKILL the worker process outright — the hardest death the
		// retry path has to absorb — then run the protocol into the corpse.
		ks.s.cmd.Process.Kill()
	}
	err := ks.s.Run(ctx, a, emit)
	if err == nil {
		return fmt.Errorf("killed worker completed an assignment")
	}
	return err
}

func (ks *killFirstSession) Close() error { return ks.s.Close() }
