// Package dist shards Plans across worker processes: a coordinator splits a
// plan's enumeration order into contiguous index ranges, hands each range to
// a worker session over a newline-delimited JSON wire protocol, and merges
// the completion-order shard streams back into the single-process stream
// contract (index-tagged RunOutcomes feeding stats.Collector). A checkpoint
// journal makes sweeps resumable: completed ranges are persisted as they
// finish and replayed instead of re-executed after a coordinator restart,
// and a dead worker's range is re-dialed and re-run on a fresh session.
//
// The invariant the whole package is built around is bit-identity: every job
// is deterministic in its (params, config, seed) key, enumeration order is
// fixed by the Plan, and outcomes carry their enumeration index, so an N-way
// sharded sweep — including one interrupted by worker kills and coordinator
// restarts — reassembles into exactly the outcomes a single process would
// have produced. Reducers that summarise instead of collecting (stats.Moments,
// stats.TopK via Summary) merge shard-locally with the same guarantee.
package dist

import (
	"context"
	"encoding/json"
	"sync"

	"fdip/internal/engine"
)

// Assignment is one unit of distributed work: a range of a plan's
// enumeration order, shipped as resolved jobs (a Plan itself — closures over
// axes — cannot cross a process boundary). In the common dense form Jobs[i]
// is enumeration index Start+i; a sparse assignment (Indices set) carries an
// explicit global index per job, which is how a coordinator with a result
// cache ships only a range's cache misses. Workers re-tag outcome indices
// into the global space either way.
type Assignment struct {
	// Start is the enumeration index of Jobs[0] (dense form), and the range
	// identity journals and retries key on in both forms.
	Start int `json:"start"`
	// Jobs are the range's resolved simulation points, in enumeration order.
	Jobs []engine.Job `json:"jobs"`
	// Indices, when set, gives Jobs[i] the global enumeration index
	// Indices[i] (sparse form; len must equal len(Jobs), ascending). Nil
	// means the dense contiguous interpretation.
	Indices []int `json:"indices,omitempty"`
	// Instrs, when non-zero, is the committed-instruction budget the worker
	// applies to every job (engine.WithInstrBudget); zero leaves each job's
	// own config untouched.
	Instrs uint64 `json:"instrs,omitempty"`
}

// End returns the exclusive end index of the range (one past the last
// carried job's global index).
func (a Assignment) End() int {
	if len(a.Indices) > 0 {
		return a.Indices[len(a.Indices)-1] + 1
	}
	return a.Start + len(a.Jobs)
}

// globalIndex returns Jobs[i]'s index in the plan's enumeration space.
func (a Assignment) globalIndex(i int) int {
	if a.Indices != nil {
		return a.Indices[i]
	}
	return a.Start + i
}

// Session is one live worker connection. Run executes one assignment,
// calling emit for every outcome of the range (in the worker's completion
// order, indices re-tagged into the plan's global enumeration space), and
// returns nil only when the whole range succeeded at the protocol level
// (per-job simulation failures travel inside outcomes as Err, exactly like
// engine.Stream). A non-nil error marks the session dead: the coordinator
// closes it and retries the range on a freshly dialed one.
type Session interface {
	Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error
	Close() error
}

// Dialer mints worker sessions. The coordinator dials lazily — one session
// per shard slot, redialed after failures — so a Dialer is also the retry
// policy's supply of replacement workers.
type Dialer interface {
	Dial(ctx context.Context) (Session, error)
}

// Loopback is the in-process Dialer: every Dial builds a fresh Worker with
// its own engine, memo cache, and machine pools, so shards are genuinely
// isolated (no cross-shard memoisation) and tests exercise the real merge
// semantics without spawning processes.
type Loopback struct {
	// Workers bounds each dialed worker's simulation concurrency
	// (0 = GOMAXPROCS).
	Workers int
	// Wire round-trips every assignment and outcome through its JSON wire
	// form, proving in-process runs exercise the same (lossless) encoding
	// as cross-process ones.
	Wire bool
}

// Dial builds a fresh in-process worker session.
func (l Loopback) Dial(ctx context.Context) (Session, error) {
	return &loopbackSession{wk: NewWorker(l.Workers), wire: l.Wire}, nil
}

type loopbackSession struct {
	wk   *Worker
	wire bool
}

func (s *loopbackSession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	if s.wire {
		b, err := json.Marshal(a)
		if err != nil {
			return err
		}
		a = Assignment{}
		if err := json.Unmarshal(b, &a); err != nil {
			return err
		}
		inner := emit
		emit = func(out engine.RunOutcome) error {
			b, err := json.Marshal(out)
			if err != nil {
				return err
			}
			var back engine.RunOutcome
			if err := json.Unmarshal(b, &back); err != nil {
				return err
			}
			return inner(back)
		}
	}
	return s.wk.Run(ctx, a, emit)
}

func (s *loopbackSession) Close() error { return nil }

// RoundRobin fans Dial calls across several dialers in rotation — the
// multi-machine composition (one HTTP dialer per worker host, one shard slot
// apiece or more).
func RoundRobin(dialers ...Dialer) Dialer {
	return &roundRobin{ds: dialers}
}

type roundRobin struct {
	mu sync.Mutex
	i  int
	ds []Dialer
}

func (r *roundRobin) Dial(ctx context.Context) (Session, error) {
	r.mu.Lock()
	d := r.ds[r.i%len(r.ds)]
	r.i++
	r.mu.Unlock()
	return d.Dial(ctx)
}
