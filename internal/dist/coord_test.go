package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fdip/internal/core"
	"fdip/internal/engine"
	"fdip/internal/prefetch"
	"fdip/internal/stats"
)

// goldenChecksum mirrors internal/engine's pinned constant: the FNV-64a
// digest of the golden point's Result. The distributed merge must reproduce
// it bit-identically at every shard count — the package's non-negotiable
// proof obligation.
const goldenChecksum = 0x47bbeda2da5f243e

func goldenCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxInstrs = 150_000
	cfg.Prefetch.Kind = core.PrefetchFDP
	cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	return cfg
}

// testPlan is 2 workloads x 3 configs = 6 points with per-config budgets
// baked in. Index 1 (gcc x golden) is exactly the engine's pinned golden
// triple.
func testPlan() *engine.Plan {
	mk := func(kind core.PrefetcherKind) core.Config {
		c := core.DefaultConfig()
		c.MaxInstrs = 30_000
		c.Prefetch.Kind = kind
		return c
	}
	return engine.NewPlan(core.DefaultConfig()).
		OverNames("gcc", "deltablue").
		Axes(engine.Configs(
			engine.Named("base", mk(core.PrefetchNone)),
			engine.Named("golden", goldenCfg()),
			engine.Named("nextline", mk(core.PrefetchNextLine)),
		))
}

func resultChecksum(res core.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", res)
	return h.Sum64()
}

// reference runs the plan through the in-process engine — the single-process
// truth every sharded run must reproduce.
func reference(t *testing.T, p *engine.Plan) []engine.RunOutcome {
	t.Helper()
	outs := make([]engine.RunOutcome, p.Points())
	for out, err := range engine.New(engine.WithWorkers(4)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("reference stream: %v / %v", err, out.Err)
		}
		outs[out.Index] = out
	}
	return outs
}

// requireIdentical asserts the sharded outcomes reproduce the reference
// bit-identically (names, results, and the pinned golden point).
func requireIdentical(t *testing.T, label string, ref, got []engine.RunOutcome) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d outcomes, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i].Err != nil {
			t.Fatalf("%s: point %d (%s): %v", label, i, got[i].Job.Name, got[i].Err)
		}
		if got[i].Job.Name != ref[i].Job.Name {
			t.Errorf("%s: point %d named %q, want %q", label, i, got[i].Job.Name, ref[i].Job.Name)
		}
		if a, b := resultChecksum(got[i].Result), resultChecksum(ref[i].Result); a != b {
			t.Errorf("%s: point %d (%s): checksum %#x != single-process %#x", label, i, got[i].Job.Name, a, b)
		}
	}
	if got := resultChecksum(got[1].Result); got != goldenChecksum {
		t.Errorf("%s: golden point checksum %#x, want pinned %#x", label, got, goldenChecksum)
	}
}

// TestShardedMergeMatchesSingleProcess is the tentpole proof: the plan
// sharded N ways over wire-round-tripped loopback workers reassembles
// bit-identically to the single-process stream, N in {1, 2, 8}, including
// the engine's pinned golden checksum.
func TestShardedMergeMatchesSingleProcess(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)
	for _, shards := range []int{1, 2, 8} {
		c := New(Options{
			Dialer:      Loopback{Workers: 2, Wire: true},
			Shards:      shards,
			ChunkPoints: 2,
		})
		outs, err := c.Sweep(context.Background(), p)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		requireIdentical(t, fmt.Sprintf("shards=%d", shards), ref, outs)
	}
}

var errKilled = errors.New("worker killed (injected)")

// chaosDialer wraps an inner dialer for fault-injection and bookkeeping: it
// counts dials, records every executed range start in order, and kills the
// first `kills` attempts of each range mid-stream (one outcome delivered,
// then a crash-like error — the partial-range case retry must handle without
// duplicating deliveries).
type chaosDialer struct {
	inner Dialer
	kills int

	mu       sync.Mutex
	dials    int
	executed []int
	attempts map[int]int
}

func newChaosDialer(inner Dialer, kills int) *chaosDialer {
	return &chaosDialer{inner: inner, kills: kills, attempts: make(map[int]int)}
}

func (d *chaosDialer) Dial(ctx context.Context) (Session, error) {
	d.mu.Lock()
	d.dials++
	d.mu.Unlock()
	s, err := d.inner.Dial(ctx)
	if err != nil {
		return nil, err
	}
	return &chaosSession{d: d, s: s}, nil
}

func (d *chaosDialer) executedStarts() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.executed...)
}

type chaosSession struct {
	d *chaosDialer
	s Session
}

func (cs *chaosSession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	cs.d.mu.Lock()
	cs.d.executed = append(cs.d.executed, a.Start)
	cs.d.attempts[a.Start]++
	kill := cs.d.attempts[a.Start] <= cs.d.kills
	cs.d.mu.Unlock()
	if !kill {
		return cs.s.Run(ctx, a, emit)
	}
	// Die mid-range: one outcome escapes, then the "process" crashes. (If
	// the range has a single point, the crash lands between the last
	// outcome and the done terminator — equally fatal on a real wire.)
	n := 0
	cs.s.Run(ctx, a, func(out engine.RunOutcome) error {
		if n == 0 {
			n++
			return emit(out)
		}
		return errKilled
	})
	return errKilled
}

func (cs *chaosSession) Close() error { return cs.s.Close() }

// TestShardedMergeSurvivesWorkerKills kills every range's first worker
// mid-stream; the coordinator must redial, reassign, and still reassemble
// the single-process stream bit-identically — no lost points, no duplicated
// deliveries from the partially-streamed first attempts.
func TestShardedMergeSurvivesWorkerKills(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)
	chaos := newChaosDialer(Loopback{Workers: 2, Wire: true}, 1)
	c := New(Options{Dialer: chaos, Shards: 2, ChunkPoints: 2})
	outs, err := c.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("sweep under kills: %v", err)
	}
	requireIdentical(t, "kills=1", ref, outs)
	ranges := (p.Points() + 1) / 2
	if got := len(chaos.executedStarts()); got < 2*ranges {
		t.Errorf("%d range executions for %d ranges; kill injection never forced retries", got, ranges)
	}
	chaos.mu.Lock()
	dials := chaos.dials
	chaos.mu.Unlock()
	if dials <= 2 {
		t.Errorf("%d dials for 2 shards under kills; dead workers were not replaced by fresh sessions", dials)
	}
}

// TestKillAndResumeReproducesGolden is the coordinator-restart proof: run 1
// is killed (consumer abandons the stream) partway through a journaled sweep
// whose workers are ALSO being killed; run 2 — a fresh coordinator on the
// same journal — must replay the completed ranges from disk, execute only
// the rest, and hand a collector the complete, bit-identical point set
// including the pinned golden checksum.
func TestKillAndResumeReproducesGolden(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	opts := func(d Dialer) Options {
		return Options{Dialer: d, Shards: 1, ChunkPoints: 2, Journal: journal}
	}

	// Run 1: worker kills on every range's first attempt, coordinator
	// "crashes" (breaks) after consuming 4 outcomes = 2 committed ranges.
	run1 := newChaosDialer(Loopback{Workers: 2, Wire: true}, 1)
	consumed := 0
	for out, err := range New(opts(run1)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("run 1: %v / %v", err, out.Err)
		}
		consumed++
		if consumed == 4 {
			break
		}
	}

	// Run 2: a fresh coordinator over the same journal completes the sweep.
	run2 := newChaosDialer(Loopback{Workers: 2, Wire: true}, 0)
	outs := make([]engine.RunOutcome, p.Points())
	seen := make([]bool, p.Points())
	for out, err := range New(opts(run2)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("run 2: %v / %v", err, out.Err)
		}
		if seen[out.Index] {
			t.Fatalf("run 2: point %d delivered twice (journal replay + re-execution)", out.Index)
		}
		seen[out.Index] = true
		outs[out.Index] = out
	}
	requireIdentical(t, "resumed", ref, outs)

	// With Shards=1 and the break on a range boundary, exactly ranges 0 and
	// 2 were committed before the crash; resume must execute only range 4.
	if got := run2.executedStarts(); len(got) != 1 || got[0] != 4 {
		t.Errorf("resume executed ranges %v; want exactly [4] (journaled ranges 0 and 2 must replay, not re-run)", got)
	}
}

// TestRangeOutOfRetriesIsTerminal pins the failure mode: a dialer that never
// produces a working session must end the stream with one terminal error
// (not a hang, not silence).
func TestRangeOutOfRetriesIsTerminal(t *testing.T) {
	c := New(Options{Dialer: deadDialer{}, Shards: 2, ChunkPoints: 2, MaxRetries: 1})
	var terminal error
	n := 0
	for _, err := range c.Stream(context.Background(), testPlan()) {
		if err != nil {
			terminal = err
		} else {
			n++
		}
	}
	if terminal == nil {
		t.Fatal("stream over a dead dialer ended without a terminal error")
	}
	if !errors.Is(terminal, errDead) && !strings.Contains(terminal.Error(), "attempts") {
		t.Errorf("terminal error %v does not report the exhausted retries", terminal)
	}
	if n != 0 {
		t.Errorf("%d outcomes delivered by a dialer that can never run one", n)
	}
}

var errDead = errors.New("no worker available (injected)")

type deadDialer struct{}

func (deadDialer) Dial(ctx context.Context) (Session, error) { return nil, errDead }

// TestStreamEarlyBreakUnwinds: abandoning the merged stream must cancel
// outstanding assignments and return promptly, like engine.Stream.
func TestStreamEarlyBreakUnwinds(t *testing.T) {
	c := New(Options{Dialer: Loopback{Workers: 2}, Shards: 2, ChunkPoints: 1})
	got := 0
	for out, err := range c.Stream(context.Background(), testPlan()) {
		if err != nil || out.Err != nil {
			t.Fatalf("first delivery: %v / %v", err, out.Err)
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("delivered %d before break", got)
	}
}

// TestSummaryShardMergeMatchesSequential pins the mergeable-reducer
// contract on real outcomes: per-shard summaries merged in any order agree
// with one sequential fold — exactly for the discrete parts (count,
// failures, top-k/bottom-k retained sets) and to float tolerance for the
// moments.
func TestSummaryShardMergeMatchesSequential(t *testing.T) {
	ref := reference(t, testPlan())
	seq := NewSummary("IPC", 3, IPC)
	for _, out := range ref {
		seq.Observe(out)
	}
	for _, shards := range []int{2, 3} {
		parts := make([]*Summary, shards)
		for i := range parts {
			parts[i] = NewSummary("IPC", 3, IPC)
		}
		for i, out := range ref {
			parts[i%shards].Observe(out)
		}
		merged := NewSummary("IPC", 3, IPC)
		for i := shards - 1; i >= 0; i-- {
			merged.Merge(parts[i])
		}
		if merged.Moments.Count != seq.Moments.Count || merged.Failures != seq.Failures {
			t.Fatalf("shards=%d: count/failures %d/%d, want %d/%d",
				shards, merged.Moments.Count, merged.Failures, seq.Moments.Count, seq.Failures)
		}
		if d := merged.Moments.Mean - seq.Moments.Mean; d > 1e-12 || d < -1e-12 {
			t.Errorf("shards=%d: merged mean drifts by %g", shards, d)
		}
		// Quantile legs: count and min/max stay exact under merge; the
		// estimates themselves are approximate, so bound them by the
		// metric's exact range rather than pinning bits.
		if merged.P50.Count() != seq.P50.Count() || merged.P90.Count() != seq.P90.Count() {
			t.Errorf("shards=%d: quantile counts %d/%d, want %d/%d",
				shards, merged.P50.Count(), merged.P90.Count(), seq.P50.Count(), seq.P90.Count())
		}
		if merged.P50.Min() != seq.P50.Min() || merged.P50.Max() != seq.P50.Max() {
			t.Errorf("shards=%d: merged min/max %v/%v, want exact %v/%v",
				shards, merged.P50.Min(), merged.P50.Max(), seq.P50.Min(), seq.P50.Max())
		}
		for name, q := range map[string]*stats.P2Quantile{"p50": merged.P50, "p90": merged.P90} {
			if v := q.Quantile(); v < q.Min() || v > q.Max() {
				t.Errorf("shards=%d: merged %s=%v outside observed range [%v, %v]",
					shards, name, v, q.Min(), q.Max())
			}
		}
		// Histogram leg: integer counts over fixed geometry merge exactly, so
		// the sharded sketch must be bit-identical to the sequential one.
		if !reflect.DeepEqual(merged.Hist, seq.Hist) {
			t.Errorf("shards=%d: merged histogram diverges from sequential pass:\n%v\nwant\n%v",
				shards, merged.Hist, seq.Hist)
		}
		for name, pair := range map[string][2][]stats.ScoredItem[engine.Job]{
			"top":    {merged.Top.Items(), seq.Top.Items()},
			"bottom": {merged.Bottom.Items(), seq.Bottom.Items()},
		} {
			got, want := pair[0], pair[1]
			if len(got) != len(want) {
				t.Fatalf("shards=%d %s: %d items, want %d", shards, name, len(got), len(want))
			}
			for i := range want {
				if got[i].Seq != want[i].Seq || got[i].Score != want[i].Score || got[i].Value.Name != want[i].Value.Name {
					t.Errorf("shards=%d %s[%d]: %v != sequential %v", shards, name, i, got[i], want[i])
				}
			}
		}
	}
}
