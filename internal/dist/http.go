package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"fdip/internal/engine"
)

// HTTP dials sessions against a long-running fdipd HTTP worker (fdipd
// -listen). Each Run is one POST of an assign frame; the response streams
// the range's NDJSON outcome frames. Sessions are connection-light (the
// http.Client pools connections), so a "dead session" here just means the
// last request failed and the coordinator should retry — against the same
// worker if it recovered, or a different dialer under RoundRobin.
type HTTP struct {
	// URL is the worker's base URL ("http://host:8080"); a URL with no path
	// (or "/") is normalised to the /v1/run endpoint, an explicit path is
	// used as-is.
	URL string
	// Client overrides the HTTP client (nil = http.DefaultClient). Streams
	// are long-lived: a client with a response timeout will kill healthy
	// ranges.
	Client *http.Client
}

// Dial validates and normalises the URL; no connection is made until Run.
func (h HTTP) Dial(ctx context.Context) (Session, error) {
	u, err := url.Parse(h.URL)
	if err != nil {
		return nil, fmt.Errorf("dist: worker url %q: %w", h.URL, err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/run"
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &httpSession{url: u.String(), client: client}, nil
}

type httpSession struct {
	url    string
	client *http.Client
}

func (s *httpSession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	body, err := json.Marshal(frame{Type: "assign", Assign: &a})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: post assignment: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: worker %s: %s: %s", s.url, resp.Status, bytes.TrimSpace(msg))
	}
	return readOutcomes(json.NewDecoder(resp.Body), emit)
}

func (s *httpSession) Close() error { return nil }
