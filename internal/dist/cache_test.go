package dist

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"fdip/internal/core"
	"fdip/internal/engine"
)

// mapCache is the reference Cache: a mutexed map with hit/put accounting.
type mapCache struct {
	mu   sync.Mutex
	m    map[engine.JobKey]engine.RunOutcome
	hits int
	puts int
}

func newMapCache() *mapCache {
	return &mapCache{m: make(map[engine.JobKey]engine.RunOutcome)}
}

func (c *mapCache) Get(key engine.JobKey) (engine.RunOutcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.m[key]
	if ok {
		c.hits++
	}
	return out, ok
}

func (c *mapCache) Put(key engine.JobKey, out engine.RunOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.puts++
	}
	c.m[key] = out
}

// countingDialer tallies how many jobs actually ship to workers — the
// simulation-count accounting that proves cache hits never re-execute.
type countingDialer struct {
	inner Dialer
	mu    sync.Mutex
	jobs  int
	runs  int
}

func (d *countingDialer) Dial(ctx context.Context) (Session, error) {
	s, err := d.inner.Dial(ctx)
	if err != nil {
		return nil, err
	}
	return &countingSession{d: d, s: s}, nil
}

func (d *countingDialer) shipped() (jobs, runs int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jobs, d.runs
}

type countingSession struct {
	d *countingDialer
	s Session
}

func (cs *countingSession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	cs.d.mu.Lock()
	cs.d.jobs += len(a.Jobs)
	cs.d.runs++
	cs.d.mu.Unlock()
	return cs.s.Run(ctx, a, emit)
}

func (cs *countingSession) Close() error { return cs.s.Close() }

// overlapPlan shares 4 of its 6 points with testPlan (base and golden
// configs) and introduces 2 new ones (an FDP variant testPlan doesn't run).
func overlapPlan() *engine.Plan {
	mkBase := func(kind core.PrefetcherKind) core.Config {
		c := core.DefaultConfig()
		c.MaxInstrs = 30_000
		c.Prefetch.Kind = kind
		return c
	}
	fresh := mkBase(core.PrefetchFDP)
	return engine.NewPlan(core.DefaultConfig()).
		OverNames("gcc", "deltablue").
		Axes(engine.Configs(
			engine.Named("base", mkBase(core.PrefetchNone)),
			engine.Named("golden", goldenCfg()),
			engine.Named("fdp30k", fresh),
		))
}

// TestCacheFullyServesRepeatSweep: after one cached sweep, re-running the
// identical plan must complete from cache alone — proven by handing the
// second run a dialer that cannot ever produce a session. Cached outcomes are
// re-tagged (Cached=true, timings zeroed) but bit-identical in Result.
func TestCacheFullyServesRepeatSweep(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)
	cache := newMapCache()

	first := &countingDialer{inner: Loopback{Workers: 2, Wire: true}}
	c1 := New(Options{Dialer: first, Shards: 2, ChunkPoints: 2, Cache: cache})
	outs, err := c1.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	requireIdentical(t, "first", ref, outs)
	if jobs, _ := first.shipped(); jobs != p.Points() {
		t.Fatalf("first sweep shipped %d jobs, want all %d", jobs, p.Points())
	}
	if cache.puts != p.Points() {
		t.Fatalf("first sweep cached %d results, want %d", cache.puts, p.Points())
	}

	// Second run: zero live workers. Every range is fully cached, so the
	// coordinator must never dial.
	c2 := New(Options{Dialer: deadDialer{}, Shards: 2, ChunkPoints: 2, Cache: cache})
	again, err := c2.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("repeat sweep over a dead dialer: %v", err)
	}
	requireIdentical(t, "repeat", ref, again)
	for i, out := range again {
		if !out.Cached {
			t.Errorf("repeat point %d not marked Cached", i)
		}
		if out.Elapsed != 0 || out.CyclesPerSec != 0 {
			t.Errorf("repeat point %d kept stale timings (%v, %v)", i, out.Elapsed, out.CyclesPerSec)
		}
	}
}

// TestCacheServesOverlapSparsely: a second plan overlapping the first on 4 of
// 6 points must ship exactly the 2 new points — as sparse assignments mixing
// hits and misses inside one range, over the JSON wire form (Wire proves the
// Indices table round-trips) — and still match its own single-process
// reference bit-identically.
func TestCacheServesOverlapSparsely(t *testing.T) {
	pA, pB := testPlan(), overlapPlan()
	refB := reference(t, pB)
	cache := newMapCache()

	warm := New(Options{Dialer: Loopback{Workers: 2, Wire: true}, Shards: 2, ChunkPoints: 2, Cache: cache})
	if _, err := warm.Sweep(context.Background(), pA); err != nil {
		t.Fatalf("warm sweep: %v", err)
	}

	second := &countingDialer{inner: Loopback{Workers: 2, Wire: true}}
	// ChunkPoints=3 makes each range straddle hits and misses: enumeration is
	// config-fastest, so range [0,3) = gcc{base,golden,fdp30k} and range
	// [3,6) = deltablue{base,golden,fdp30k} — 2 hits + 1 miss apiece.
	c := New(Options{Dialer: second, Shards: 2, ChunkPoints: 3, Cache: cache})
	outs, err := c.Sweep(context.Background(), pB)
	if err != nil {
		t.Fatalf("overlap sweep: %v", err)
	}
	requireIdentical(t, "overlap", refB, outs)

	jobs, runs := second.shipped()
	if jobs != 2 {
		t.Errorf("overlap sweep shipped %d jobs, want exactly the 2 uncached points", jobs)
	}
	if runs != 2 {
		t.Errorf("overlap sweep shipped %d assignments, want 2 sparse ones", runs)
	}
	for i, out := range outs {
		wantCached := out.Job.Name == "gcc/base" || out.Job.Name == "gcc/golden" ||
			out.Job.Name == "deltablue/base" || out.Job.Name == "deltablue/golden"
		if out.Cached != wantCached {
			t.Errorf("point %d (%s): Cached=%v, want %v", i, out.Job.Name, out.Cached, wantCached)
		}
	}
}

// TestJournalReplayPrimesCache: a journal from a finished sweep must re-warm
// a cold cache on open, so a restarted service serves overlapping submissions
// from disk history without re-execution.
func TestJournalReplayPrimesCache(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)
	journal := filepath.Join(t.TempDir(), "sweep.journal")

	// Run 1: journaled, no cache.
	c1 := New(Options{Dialer: Loopback{Workers: 2, Wire: true}, Shards: 1, ChunkPoints: 2, Journal: journal})
	if _, err := c1.Sweep(context.Background(), p); err != nil {
		t.Fatalf("journaled sweep: %v", err)
	}

	// Run 2: same journal, cold cache, dead dialer. Replay must both deliver
	// the outcomes and prime the cache.
	cache := newMapCache()
	c2 := New(Options{Dialer: deadDialer{}, Shards: 1, ChunkPoints: 2, Journal: journal, Cache: cache})
	outs, err := c2.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("replay sweep: %v", err)
	}
	requireIdentical(t, "replay", ref, outs)
	if cache.puts != p.Points() {
		t.Errorf("replay primed %d cache entries, want %d", cache.puts, p.Points())
	}

	// Run 3: the primed cache alone (no journal) serves the whole plan.
	c3 := New(Options{Dialer: deadDialer{}, Shards: 1, ChunkPoints: 2, Cache: cache})
	again, err := c3.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("cache-only sweep: %v", err)
	}
	requireIdentical(t, "cache-only", ref, again)
}

// TestQuiesceDrainsAndResumes is the graceful-shutdown proof: quiescing
// mid-sweep stops dispatch, completes + journals in-flight ranges, ends with
// ErrQuiesced — and a fresh coordinator over the same journal finishes the
// sweep executing only what was never dispatched.
func TestQuiesceDrainsAndResumes(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	quiesce := make(chan struct{})

	run1 := newChaosDialer(Loopback{Workers: 2, Wire: true}, 0)
	c1 := New(Options{Dialer: run1, Shards: 1, ChunkPoints: 2, Journal: journal, Quiesce: quiesce})
	var terminal error
	delivered := make(map[int]bool)
	for out, err := range c1.Stream(context.Background(), p) {
		if err != nil {
			terminal = err
			continue
		}
		if out.Err != nil {
			t.Fatalf("run 1 point %d: %v", out.Index, out.Err)
		}
		delivered[out.Index] = true
		if len(delivered) == 2 {
			close(quiesce) // after the first full range: drain now
		}
	}
	if !errors.Is(terminal, ErrQuiesced) {
		t.Fatalf("run 1 terminal = %v, want ErrQuiesced", terminal)
	}
	if len(delivered)%2 != 0 || len(delivered) == 0 || len(delivered) == p.Points() {
		t.Fatalf("run 1 delivered %d points; want whole ranges, some but not all", len(delivered))
	}

	// Resume: a fresh coordinator executes exactly the never-dispatched ranges.
	run2 := newChaosDialer(Loopback{Workers: 2, Wire: true}, 0)
	c2 := New(Options{Dialer: run2, Shards: 1, ChunkPoints: 2, Journal: journal})
	outs := make([]engine.RunOutcome, p.Points())
	seen := make([]bool, p.Points())
	for out, err := range c2.Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("resume: %v / %v", err, out.Err)
		}
		if seen[out.Index] {
			t.Fatalf("resume delivered point %d twice", out.Index)
		}
		seen[out.Index] = true
		outs[out.Index] = out
	}
	requireIdentical(t, "quiesce-resume", ref, outs)
	for _, start := range run2.executedStarts() {
		if delivered[start] {
			t.Errorf("resume re-executed range %d, which run 1 drained and journaled", start)
		}
	}
	wantExec := (p.Points()+1)/2 - len(delivered)/2
	if got := len(run2.executedStarts()); got != wantExec {
		t.Errorf("resume executed %d ranges, want %d", got, wantExec)
	}
}
