package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"

	"fdip/internal/engine"
)

// Exec dials worker sessions by spawning a stdio-mode worker process (a
// cmd/fdipd binary) per session: assignments go down the child's stdin,
// outcome frames come back up its stdout. Each Dial is a fresh process, which
// is what makes the coordinator's retry path a genuine reassignment — a
// wedged or killed worker is discarded wholesale and its range re-runs in a
// new one.
type Exec struct {
	// Path is the worker binary (typically the fdipd binary itself).
	Path string
	// Args are extra arguments (e.g. "-workers", "2"). The binary's default
	// mode must be the stdio worker.
	Args []string
	// Stderr receives the child's stderr (nil = this process's stderr).
	Stderr io.Writer
}

// Dial spawns one worker process. The process is bound to ctx: cancelling
// the stream kills every outstanding worker.
func (e Exec) Dial(ctx context.Context) (Session, error) {
	cmd := exec.CommandContext(ctx, e.Path, e.Args...)
	cmd.Stderr = e.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: exec %s: %w", e.Path, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: exec %s: %w", e.Path, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: exec %s: %w", e.Path, err)
	}
	return &execSession{cmd: cmd, in: stdin, enc: json.NewEncoder(stdin), dec: json.NewDecoder(stdout)}, nil
}

type execSession struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	enc *json.Encoder
	dec *json.Decoder
}

func (s *execSession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	if err := s.enc.Encode(frame{Type: "assign", Assign: &a}); err != nil {
		return fmt.Errorf("dist: write assignment to worker: %w", err)
	}
	return readOutcomes(s.dec, emit)
}

// Close tears the worker process down. Closing stdin is the clean-shutdown
// signal (ServeStdio exits on EOF), but Close is mostly called on suspect
// sessions, so the process is killed outright rather than waited out
// mid-assignment.
func (s *execSession) Close() error {
	s.in.Close()
	if s.cmd.Process != nil {
		s.cmd.Process.Kill()
	}
	return s.cmd.Wait()
}
