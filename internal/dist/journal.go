package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"fdip/internal/engine"
)

// The journal is the coordinator's checkpoint: an append-only NDJSON file
// whose first record is a header binding it to one (plan, chunking, budget)
// fingerprint, followed by one record per completed range carrying the
// range's outcomes. A range is journaled only after every one of its
// outcomes arrived and validated, so the journal never contains partial
// ranges — resume replays completed ranges verbatim and re-executes
// everything else, which is exactly the at-least-once-per-range /
// exactly-once-per-delivered-outcome semantics the merge contract needs.
//
// Crash tolerance: a coordinator killed mid-append leaves a torn final line;
// OpenJournal truncates the tail back to the last record that decodes and
// validates, sacrificing (at most) the final range's work, never correctness.
type journalRecord struct {
	Type string `json:"type"` // "header" | "range"

	// Header fields: the identity of the sweep this journal checkpoints.
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	Points      int    `json:"points,omitempty"`
	Chunk       int    `json:"chunk,omitempty"`

	// Range fields.
	Start    int                 `json:"start"`
	Count    int                 `json:"count"`
	Outcomes []engine.RunOutcome `json:"outcomes,omitempty"`
}

// Journal is an open checkpoint file positioned for appends.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// OpenJournal opens (creating if absent) the journal at path for a sweep
// with the given identity, returning the completed ranges it already holds,
// keyed by range start. A journal written by a different plan, chunking, or
// budget is rejected — replaying someone else's outcomes would silently
// corrupt the sweep. A torn tail (crash mid-append) is truncated away.
func OpenJournal(path string, fingerprint uint64, points, chunk int) (*Journal, map[int][]engine.RunOutcome, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: journal: %w", err)
	}
	j := &Journal{f: f, enc: json.NewEncoder(f)}
	completed := make(map[int][]engine.RunOutcome)

	dec := json.NewDecoder(f)
	var hdr journalRecord
	switch err := dec.Decode(&hdr); {
	case err == io.EOF:
		// Fresh journal: stamp the header and start appending.
		if err := j.append(journalRecord{Type: "header", Fingerprint: fingerprint, Points: points, Chunk: chunk}); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, completed, nil
	case err != nil:
		// The header itself is torn (crash before the first Sync ever
		// completed): nothing is recoverable, start over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: journal: reset torn header: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := j.append(journalRecord{Type: "header", Fingerprint: fingerprint, Points: points, Chunk: chunk}); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, completed, nil
	}
	if hdr.Type != "header" || hdr.Fingerprint != fingerprint || hdr.Points != points || hdr.Chunk != chunk {
		f.Close()
		return nil, nil, fmt.Errorf("dist: journal %s belongs to a different sweep (fingerprint %#x points %d chunk %d; want %#x/%d/%d) — remove it or pick another path",
			path, hdr.Fingerprint, hdr.Points, hdr.Chunk, fingerprint, points, chunk)
	}

	good := dec.InputOffset()
	torn := false
	for {
		var rec journalRecord
		err := dec.Decode(&rec)
		if err == io.EOF {
			break
		}
		// A record that fails to decode — or decodes but is internally
		// inconsistent — marks the tear point; everything after it is
		// suspect and gets re-executed rather than trusted.
		if err != nil || rec.Type != "range" || len(rec.Outcomes) != rec.Count || rec.Count <= 0 {
			torn = true
			break
		}
		completed[rec.Start] = rec.Outcomes
		good = dec.InputOffset()
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn {
		// Truncation may have cut the last good record's trailing newline;
		// keep the file one-record-per-line for human eyes (the decoder
		// doesn't care either way).
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, completed, nil
}

// Commit durably records one completed range. The fsync is what upgrades
// "yielded to the consumer" into "survives a kill -9": a range is only
// journaled (and only skipped on resume) once its bytes are on disk.
func (j *Journal) Commit(start int, outs []engine.RunOutcome) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(journalRecord{Type: "range", Start: start, Count: len(outs), Outcomes: outs}); err != nil {
		return fmt.Errorf("dist: journal: append range [%d,%d): %w", start, start+len(outs), err)
	}
	return j.f.Sync()
}

// append writes one record without syncing (header writes).
func (j *Journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(rec); err != nil {
		return fmt.Errorf("dist: journal: %w", err)
	}
	return j.f.Sync()
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
