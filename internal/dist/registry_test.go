package dist

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manual time source for registry expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRegistryRotationAndExpiry pins the pool mechanics: registration order
// is the rotation ring, a heartbeat refreshes expiry without losing the
// rotation slot, and a worker whose TTL lapses is pruned on the next access.
func TestRegistryRotationAndExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(time.Minute)
	r.now = clk.now

	r.Register("w1", "http://one", 0)
	r.Register("w2", "http://two", 0)
	var got []string
	for i := 0; i < 4; i++ {
		id, _, _, ok := r.pick()
		if !ok {
			t.Fatalf("pick %d: empty pool with two live workers", i)
		}
		got = append(got, id)
	}
	want := []string{"w1", "w2", "w1", "w2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}

	// Heartbeat w1 just before w2 expires; only w2 must be pruned.
	clk.advance(45 * time.Second)
	r.Register("w1", "http://one", 0)
	clk.advance(30 * time.Second)
	live := r.Live()
	if len(live) != 1 || live[0].ID != "w1" {
		t.Fatalf("after expiry: live=%v, want [w1]", live)
	}

	// Expire the rest: the pool must report empty, not rotate stale entries.
	clk.advance(2 * time.Minute)
	if _, _, _, ok := r.pick(); ok {
		t.Fatal("pick returned a worker after every TTL lapsed")
	}
	if live := r.Live(); len(live) != 0 {
		t.Fatalf("live=%v after every TTL lapsed", live)
	}
}

// TestRegistryDialBlocksUntilRegister: with an empty pool Dial must park, wake
// the moment a worker announces itself, and respect context cancellation.
func TestRegistryDialBlocksUntilRegister(t *testing.T) {
	r := NewRegistry(time.Minute)

	type dialRes struct {
		s   Session
		err error
	}
	done := make(chan dialRes, 1)
	go func() {
		s, err := r.Dial(context.Background())
		done <- dialRes{s, err}
	}()
	select {
	case res := <-done:
		t.Fatalf("Dial returned (%v, %v) with an empty pool", res.s, res.err)
	case <-time.After(20 * time.Millisecond):
	}
	r.Register("w1", "http://one", 0)
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("Dial after Register: %v", res.err)
		}
		res.s.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("Dial still blocked after a worker registered")
	}

	// And an empty pool + dead context is an error, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r.Deregister("w1")
	if _, err := r.Dial(ctx); err == nil {
		t.Fatal("Dial on an empty pool ignored context cancellation")
	}
}

// TestRegistrySweepWithSelfRegisteredWorkers is the dynamic-pool analogue of
// the static sharded-merge proof: two workers register themselves (instead of
// arriving via a -connect list) and the sweep must reassemble bit-identically.
func TestRegistrySweepWithSelfRegisteredWorkers(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)

	w1 := httptest.NewServer(NewWorker(2).Handler())
	defer w1.Close()
	w2 := httptest.NewServer(NewWorker(2).Handler())
	defer w2.Close()

	r := NewRegistry(time.Minute)
	r.Register("w1", w1.URL, 0)
	r.Register("w2", w2.URL, 0)

	c := New(Options{Dialer: r, Shards: 2, ChunkPoints: 2})
	outs, err := c.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("sweep over registry: %v", err)
	}
	requireIdentical(t, "registry", ref, outs)
}

// TestRegistryEvictsDeadWorker kills one of two registered workers before the
// sweep: its sessions fail, the registry must evict it (so retries land on
// the survivor), and the sweep still reassembles bit-identically — the
// service-level "dead workers drain back into the queue" path.
func TestRegistryEvictsDeadWorker(t *testing.T) {
	p := testPlan()
	ref := reference(t, p)

	alive := httptest.NewServer(NewWorker(2).Handler())
	defer alive.Close()
	dead := httptest.NewServer(NewWorker(2).Handler())
	dead.Close() // SIGKILL stand-in: registered but connection-refused

	r := NewRegistry(time.Minute)
	r.Register("alive", alive.URL, 0)
	r.Register("dead", dead.URL, 0)

	c := New(Options{Dialer: r, Shards: 2, ChunkPoints: 2, MaxRetries: 4})
	outs, err := c.Sweep(context.Background(), p)
	if err != nil {
		t.Fatalf("sweep with a dead registered worker: %v", err)
	}
	requireIdentical(t, "evict", ref, outs)
	live := r.Live()
	if len(live) != 1 || live[0].ID != "alive" {
		t.Errorf("live=%v after the sweep; the dead worker was never evicted", live)
	}
}
