package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fdip/internal/engine"
)

// Registry is the dynamic session pool: a Dialer over a self-registering,
// heartbeat-expiring set of HTTP workers. Where a static Dialer is handed a
// -connect list up front, a Registry discovers capacity at run time — workers
// announce themselves (and keep re-announcing within their TTL), Dial blocks
// until at least one live worker exists and then rotates across them, and a
// session failure drops its worker immediately so the coordinator's
// retry-with-reassignment path lands on a different one (a still-healthy
// worker re-registers itself on its next heartbeat and rejoins the rotation).
//
// Registries are safe for concurrent use by any number of coordinators; a
// sweep service shares one Registry across every sweep it runs.
type Registry struct {
	ttl time.Duration
	now func() time.Time // test hook; time.Now outside tests

	mu      sync.Mutex
	workers map[string]*regWorker
	order   []string      // registration order, the rotation ring
	next    int           // rotation cursor
	wake    chan struct{} // closed and replaced whenever a worker (re)arrives

	closeOnce sync.Once
	closed    chan struct{} // closed by Close; releases blocked Dials
}

// ErrRegistryClosed is returned by Dial after Close — the shutdown escape
// hatch that keeps a draining coordinator from blocking forever on a pool
// that will never refill.
var ErrRegistryClosed = errors.New("dist: registry closed")

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// ExpiresIn is the remaining heartbeat budget at snapshot time.
	ExpiresIn time.Duration `json:"expires_in_ns"`
}

type regWorker struct {
	url     string
	expires time.Time
}

// NewRegistry builds a registry whose registrations expire ttl after their
// last heartbeat (0 = default 15s).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return &Registry{
		ttl:     ttl,
		now:     time.Now,
		workers: make(map[string]*regWorker),
		wake:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

// Close permanently shuts the registry: every blocked Dial (and all future
// ones) returns ErrRegistryClosed. Registrations and Live remain readable.
func (r *Registry) Close() {
	r.closeOnce.Do(func() { close(r.closed) })
}

// Register announces (or heartbeats) a worker: id names it stably across
// heartbeats, url is its dist HTTP endpoint, ttl overrides the registry
// default for this worker (0 = default). Re-registering an id refreshes its
// expiry and updates its URL without losing its rotation slot.
func (r *Registry) Register(id, url string, ttl time.Duration) {
	if ttl <= 0 {
		ttl = r.ttl
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		w = &regWorker{}
		r.workers[id] = w
		r.order = append(r.order, id)
	}
	w.url = url
	w.expires = r.now().Add(ttl)
	// Wake any Dial blocked on an empty pool.
	close(r.wake)
	r.wake = make(chan struct{})
}

// Deregister removes a worker immediately (clean worker shutdown, or a
// session failure reported by a coordinator).
func (r *Registry) Deregister(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropLocked(id)
}

func (r *Registry) dropLocked(id string) {
	if _, ok := r.workers[id]; !ok {
		return
	}
	delete(r.workers, id)
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			if r.next > i {
				r.next--
			}
			break
		}
	}
}

// pruneLocked drops expired registrations.
func (r *Registry) pruneLocked() {
	now := r.now()
	for i := 0; i < len(r.order); {
		id := r.order[i]
		if r.workers[id].expires.Before(now) {
			r.dropLocked(id)
			continue
		}
		i++
	}
}

// Live snapshots the currently registered, unexpired workers (sorted by id).
func (r *Registry) Live() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	now := r.now()
	out := make([]WorkerInfo, 0, len(r.workers))
	for id, w := range r.workers {
		out = append(out, WorkerInfo{ID: id, URL: w.url, ExpiresIn: w.expires.Sub(now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pick returns the next live worker in rotation, or ok=false with a wake
// channel to wait on when the pool is empty.
func (r *Registry) pick() (id, url string, wake <-chan struct{}, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	if len(r.order) == 0 {
		return "", "", r.wake, false
	}
	r.next %= len(r.order)
	id = r.order[r.next]
	r.next++
	return id, r.workers[id].url, nil, true
}

// Dial returns a session against the next live worker in rotation, blocking
// while the pool is empty (until ctx ends). The session is pinned to its
// worker; a Run failure deregisters that worker before the error propagates,
// so the coordinator's redial lands elsewhere.
func (r *Registry) Dial(ctx context.Context) (Session, error) {
	for {
		select {
		case <-r.closed:
			return nil, ErrRegistryClosed
		default:
		}
		id, url, wake, ok := r.pick()
		if !ok {
			select {
			case <-wake:
				continue
			case <-r.closed:
				return nil, ErrRegistryClosed
			case <-ctx.Done():
				return nil, fmt.Errorf("dist: registry: no live workers: %w", ctx.Err())
			}
		}
		inner, err := (HTTP{URL: url}).Dial(ctx)
		if err != nil {
			// A malformed registration URL: drop it rather than looping on it.
			r.Deregister(id)
			continue
		}
		return &registrySession{Session: inner, reg: r, id: id}, nil
	}
}

// registrySession pins a session to its registry entry so failures evict the
// worker from the rotation.
type registrySession struct {
	Session
	reg *Registry
	id  string
}

func (s *registrySession) Run(ctx context.Context, a Assignment, emit func(engine.RunOutcome) error) error {
	err := s.Session.Run(ctx, a, emit)
	if err != nil && ctx.Err() == nil {
		s.reg.Deregister(s.id)
	}
	return err
}
