package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"iter"
	"sort"
	"sync"

	"fdip/internal/engine"
)

// Options configures a Coordinator.
type Options struct {
	// Dialer supplies worker sessions (required).
	Dialer Dialer
	// Shards is the number of concurrent worker sessions (default 1).
	Shards int
	// ChunkPoints is the assignment granularity — how many consecutive
	// enumeration points each worker range carries (default 32). Smaller
	// chunks checkpoint and rebalance finer; larger ones amortise wire and
	// dial overhead.
	ChunkPoints int
	// Instrs, when non-zero, is the committed-instruction budget workers
	// apply to every job — the distributed analogue of
	// engine.WithInstrBudget. It participates in the journal fingerprint.
	Instrs uint64
	// Journal is the checkpoint file path; "" disables checkpointing.
	Journal string
	// MaxRetries bounds how many times a range is re-dialed and re-run
	// after its session fails (0 = default 2; negative = never retry).
	MaxRetries int
	// Cache, when non-nil, is a cross-sweep result cache keyed on the
	// engine's exported memo identity (engine.JobKey). Before a range is
	// shipped, each of its jobs is looked up; hits are served without worker
	// execution (re-tagged to this sweep's index and name, Cached=true) and
	// only the misses travel, as a sparse assignment. Fresh successful
	// outcomes — and journal-replayed ones — are written back, so sweeps
	// sharing the cache share completed points. The cache must be safe for
	// concurrent use.
	Cache Cache
	// Quiesce, when non-nil, is the graceful-drain signal: once it is
	// closed, the coordinator stops dispatching new ranges, lets in-flight
	// ranges complete (journaled and yielded as usual), and then ends the
	// stream with a terminal error wrapping ErrQuiesced. Paired with a
	// journal this is a clean checkpointed shutdown: re-running the sweep
	// resumes exactly after the drained ranges.
	Quiesce <-chan struct{}
}

// Cache is the coordinator's result-cache hook: a fingerprint-keyed store
// shared across sweeps (and, behind a service, across clients). Get returns
// a previously Put outcome for the exact simulation identity; implementations
// must be safe for concurrent use. Only successful outcomes are ever Put.
type Cache interface {
	Get(key engine.JobKey) (engine.RunOutcome, bool)
	Put(key engine.JobKey, out engine.RunOutcome)
}

// ErrQuiesced is wrapped by the terminal stream error after a graceful drain
// (Options.Quiesce): every range dispatched before the drain was delivered
// and journaled; the wrapped error just reports the sweep is unfinished.
var ErrQuiesced = errors.New("dist: coordinator quiesced")

// Coordinator shards plans across worker sessions and merges the shard
// streams back into the engine.Stream contract. Its Stream method satisfies
// the same signature as (*engine.Engine).Stream, so anything built on the
// streaming contract — stats collectors, the experiments runner — runs
// distributed by swapping the streamer.
type Coordinator struct {
	opts Options
}

// New builds a coordinator. Zero-valued options take their defaults.
func New(opts Options) *Coordinator {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.ChunkPoints <= 0 {
		opts.ChunkPoints = 32
	}
	switch {
	case opts.MaxRetries == 0:
		opts.MaxRetries = 2
	case opts.MaxRetries < 0:
		opts.MaxRetries = 0
	}
	return &Coordinator{opts: opts}
}

// fingerprint binds a journal to one sweep identity: the plan's shape (point
// count, row/col labels) plus the chunking and budget that determine range
// boundaries and results. Two sweeps with the same fingerprint produce
// interchangeable journals; anything else must be rejected at open.
func (c *Coordinator) fingerprint(p *engine.Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "points=%d chunk=%d instrs=%d", p.Points(), c.opts.ChunkPoints, c.opts.Instrs)
	for _, r := range p.Rows() {
		fmt.Fprintf(h, "|r:%s", r)
	}
	for _, col := range p.Cols() {
		fmt.Fprintf(h, "|c:%s", col)
	}
	return h.Sum64()
}

// rangeResult is one range's merged fate, delivered shard -> coordinator.
type rangeResult struct {
	start int
	outs  []engine.RunOutcome
	err   error // terminal: the range exhausted its retries
}

// Stream executes every point of the plan across the coordinator's shards
// and yields outcomes as ranges complete. The contract is engine.Stream's,
// reassembled: completion order across ranges, enumeration order within one,
// every outcome index-tagged; per-job failures ride inside outcomes; a
// stream-level failure (context death, a range out of retries, a journal
// write error) yields once as a terminal (zero, error) pair. Breaking out of
// the loop cancels outstanding assignments (and kills Exec workers) before
// the iterator returns.
//
// With a journal configured, ranges completed by a previous run replay from
// disk first (no re-execution), then the remainder executes; a consumer that
// needs the full stream — a stats.Collector — sees every outcome exactly
// once either way.
func (c *Coordinator) Stream(ctx context.Context, p *engine.Plan) iter.Seq2[engine.RunOutcome, error] {
	return func(yield func(engine.RunOutcome, error) bool) {
		if err := p.Err(); err != nil {
			yield(engine.RunOutcome{}, err)
			return
		}
		if c.opts.Dialer == nil {
			yield(engine.RunOutcome{}, fmt.Errorf("dist: coordinator has no dialer"))
			return
		}
		points := p.Points()
		chunk := c.opts.ChunkPoints

		var jr *Journal
		completed := map[int][]engine.RunOutcome{}
		if c.opts.Journal != "" {
			var err error
			jr, completed, err = OpenJournal(c.opts.Journal, c.fingerprint(p), points, chunk)
			if err != nil {
				yield(engine.RunOutcome{}, err)
				return
			}
			defer jr.Close()
		}

		// A journal primes the shared result cache before anything replays:
		// ranges completed by a previous run are proven results for their
		// simulation identities, and a service restart re-warms its cache
		// from them.
		if c.opts.Cache != nil {
			for _, outs := range completed {
				for _, out := range outs {
					c.primeCache(out)
				}
			}
		}

		// Replay journaled ranges before executing anything: the resumed
		// stream is indistinguishable from a slow first run.
		starts := make([]int, 0, len(completed))
		for s := range completed {
			starts = append(starts, s)
		}
		sort.Ints(starts)
		for _, s := range starts {
			for _, out := range completed[s] {
				if !yield(out, nil) {
					return
				}
			}
		}

		remaining := 0
		for start := 0; start < points; start += chunk {
			if _, ok := completed[start]; !ok {
				remaining++
			}
		}
		if remaining == 0 {
			if err := ctx.Err(); err != nil {
				yield(engine.RunOutcome{}, err)
			}
			return
		}

		parent := ctx
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		// The dispatcher walks the plan's enumeration exactly once (O(points)
		// total, O(chunk) live), slicing it into assignments and skipping
		// journaled ranges.
		work := make(chan Assignment)
		go func() {
			defer close(work)
			next, stop := iter.Pull2(p.Jobs())
			defer stop()
			for start := 0; start < points; start += chunk {
				count := min(chunk, points-start)
				_, done := completed[start]
				var jobs []engine.Job
				if !done {
					jobs = make([]engine.Job, 0, count)
				}
				for j := 0; j < count; j++ {
					_, job, ok := next()
					if !ok {
						return // plan shorter than Points() promised; shard validation catches it
					}
					if !done {
						jobs = append(jobs, job)
					}
				}
				if done {
					continue
				}
				select {
				case work <- Assignment{Start: start, Jobs: jobs, Instrs: c.opts.Instrs}:
				case <-ctx.Done():
					return
				case <-c.opts.Quiesce:
					// Graceful drain: stop handing out ranges; closing work
					// lets the shard loops finish what they hold and exit.
					return
				}
			}
		}()

		deliveries := make(chan rangeResult)
		var wg sync.WaitGroup
		for i := 0; i < c.opts.Shards; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.shardLoop(ctx, work, deliveries)
			}()
		}
		go func() {
			wg.Wait()
			close(deliveries)
		}()
		// drain cancels outstanding work and reaps every shard goroutine (and
		// any Exec worker process) before the iterator returns — the same
		// no-leak guarantee engine.Stream gives on early break.
		drain := func() {
			cancel()
			for range deliveries {
			}
		}

		for remaining > 0 {
			d, ok := <-deliveries
			if !ok {
				// Every shard exited with ranges outstanding: the context
				// died, or a graceful drain stopped dispatch (shards report
				// their own terminal errors otherwise).
				switch {
				case parent.Err() != nil:
					yield(engine.RunOutcome{}, parent.Err())
				case quiesced(c.opts.Quiesce):
					yield(engine.RunOutcome{}, fmt.Errorf("%w: %d ranges not dispatched", ErrQuiesced, remaining))
				default:
					yield(engine.RunOutcome{}, fmt.Errorf("dist: shards exited with %d ranges outstanding", remaining))
				}
				return
			}
			if d.err != nil {
				drain()
				yield(engine.RunOutcome{}, d.err)
				return
			}
			// Journal before yielding: once the consumer has seen a range it
			// must never replay differently, so durability precedes delivery.
			if jr != nil {
				if err := jr.Commit(d.start, d.outs); err != nil {
					drain()
					yield(engine.RunOutcome{}, err)
					return
				}
			}
			for _, out := range d.outs {
				if !yield(out, nil) {
					drain()
					return
				}
			}
			remaining--
		}
		drain()
		if err := parent.Err(); err != nil {
			yield(engine.RunOutcome{}, err)
		}
	}
}

// Sweep is the ordered collector over Stream: one outcome per plan point, in
// enumeration order.
func (c *Coordinator) Sweep(ctx context.Context, p *engine.Plan) ([]engine.RunOutcome, error) {
	outs := make([]engine.RunOutcome, p.Points())
	for out, err := range c.Stream(ctx, p) {
		if err != nil {
			return outs, err
		}
		outs[out.Index] = out
	}
	return outs, nil
}

// shardLoop is one shard slot: it keeps (at most) one live session, pulls
// assignments, and delivers each range's buffered outcomes. Session failures
// are retried on fresh dials inside runRange; a range that exhausts its
// retries is delivered as a terminal error.
func (c *Coordinator) shardLoop(ctx context.Context, work <-chan Assignment, deliveries chan<- rangeResult) {
	var sess Session
	defer func() {
		if sess != nil {
			sess.Close()
		}
	}()
	for {
		var a Assignment
		var ok bool
		select {
		case a, ok = <-work:
			if !ok {
				return
			}
		case <-ctx.Done():
			return
		}
		outs, err := c.runRange(ctx, &sess, a)
		if err != nil && ctx.Err() != nil {
			return // the stream is unwinding; its own terminal error wins
		}
		select {
		case deliveries <- rangeResult{start: a.Start, outs: outs, err: err}:
		case <-ctx.Done():
			return
		}
		if err != nil {
			return
		}
	}
}

// quiesced reports whether a (possibly nil) quiesce channel has fired.
func quiesced(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// primeCache writes one journal-replayed outcome into the shared result
// cache (successes only; an unresolvable job is simply not cacheable).
func (c *Coordinator) primeCache(out engine.RunOutcome) {
	if out.Err != nil {
		return
	}
	if _, key, err := engine.ResolveJob(out.Job, c.opts.Instrs); err == nil {
		c.opts.Cache.Put(key, out)
	}
}

// runRange obtains one range's outcomes: served from the shared result
// cache where possible, executed on a worker otherwise. Without a cache it
// is exactly execRange.
func (c *Coordinator) runRange(ctx context.Context, sess *Session, a Assignment) ([]engine.RunOutcome, error) {
	if c.opts.Cache == nil {
		return c.execRange(ctx, sess, a)
	}
	// Split the range on the cache: hits fill their slots directly
	// (re-tagged to this sweep's index and display name), misses ship as a
	// sparse assignment carrying their global indices. A fully cached range
	// never dials a worker at all, which is what lets a second, overlapping
	// sweep complete even with zero live workers.
	outs := make([]engine.RunOutcome, len(a.Jobs))
	keys := make([]engine.JobKey, len(a.Jobs))
	keyed := make([]bool, len(a.Jobs))
	var missJobs []engine.Job
	var missIdx, missSlot []int
	for i, job := range a.Jobs {
		gi := a.globalIndex(i)
		rj, key, err := engine.ResolveJob(job, a.Instrs)
		if err == nil {
			keys[i], keyed[i] = key, true
			if hit, ok := c.opts.Cache.Get(key); ok {
				hit.Job = rj
				hit.Index = gi
				hit.Cached = true
				hit.Elapsed = 0
				hit.CyclesPerSec = 0
				outs[i] = hit
				continue
			}
		}
		// Unresolvable jobs travel too, so their failure outcomes are
		// produced by the same worker path a cacheless run takes.
		missJobs = append(missJobs, job)
		missIdx = append(missIdx, gi)
		missSlot = append(missSlot, i)
	}
	if len(missJobs) > 0 {
		sub := Assignment{Start: a.Start, Jobs: missJobs, Indices: missIdx, Instrs: a.Instrs}
		fresh, err := c.execRange(ctx, sess, sub)
		if err != nil {
			return nil, err
		}
		slotByGlobal := make(map[int]int, len(missIdx))
		for j, gi := range missIdx {
			slotByGlobal[gi] = missSlot[j]
		}
		for _, out := range fresh {
			slot := slotByGlobal[out.Index]
			outs[slot] = out
			if keyed[slot] && out.Err == nil {
				c.opts.Cache.Put(keys[slot], out)
			}
		}
	}
	return outs, nil
}

// execRange executes one assignment on a worker, re-dialing and re-running
// on a fresh session after failures (a dead worker's range is reassigned
// wholesale — a range is only ever delivered complete, so a retry can never
// double-deliver a partially-streamed range's outcomes). *sess is the
// shard's cached session: nil-on-entry means dial, and a failed session is
// closed and nilled so the next attempt (or assignment) starts clean.
func (c *Coordinator) execRange(ctx context.Context, sess *Session, a Assignment) ([]engine.RunOutcome, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if *sess == nil {
			s, err := c.opts.Dialer.Dial(ctx)
			if err != nil {
				lastErr = err
				continue
			}
			*sess = s
		}
		outs, err := runOnce(ctx, *sess, a)
		if err == nil {
			return outs, nil
		}
		lastErr = err
		(*sess).Close()
		*sess = nil
	}
	return nil, fmt.Errorf("dist: range [%d,%d) failed %d attempts: %w", a.Start, a.End(), c.opts.MaxRetries+1, lastErr)
}

// runOnce runs one assignment on one session, buffering and validating the
// range: every carried index (contiguous [Start, End) in the dense form, the
// Indices table in the sparse one), each exactly once, nothing outside.
// Buffering is what makes retry safe — a range either delivers whole or
// contributes nothing.
func runOnce(ctx context.Context, sess Session, a Assignment) ([]engine.RunOutcome, error) {
	outs := make([]engine.RunOutcome, 0, len(a.Jobs))
	seen := make([]bool, len(a.Jobs))
	slotOf := func(global int) int {
		if a.Indices == nil {
			if i := global - a.Start; i >= 0 && i < len(a.Jobs) {
				return i
			}
			return -1
		}
		if i := sort.SearchInts(a.Indices, global); i < len(a.Indices) && a.Indices[i] == global {
			return i
		}
		return -1
	}
	err := sess.Run(ctx, a, func(out engine.RunOutcome) error {
		i := slotOf(out.Index)
		if i < 0 {
			return fmt.Errorf("dist: worker emitted index %d outside range [%d,%d)", out.Index, a.Start, a.End())
		}
		if seen[i] {
			return fmt.Errorf("dist: worker emitted index %d twice", out.Index)
		}
		seen[i] = true
		outs = append(outs, out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(outs) != len(a.Jobs) {
		return nil, fmt.Errorf("dist: worker delivered %d of %d outcomes for range [%d,%d)", len(outs), len(a.Jobs), a.Start, a.End())
	}
	return outs, nil
}
