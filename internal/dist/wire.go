package dist

import (
	"encoding/json"
	"fmt"

	"fdip/internal/engine"
)

// The wire protocol is newline-delimited JSON frames, identical over stdio
// (Exec) and HTTP (one POST per assignment, NDJSON response). A conversation
// is:
//
//	coordinator -> worker:  {"type":"assign","assign":{...}}
//	worker -> coordinator:  {"type":"outcome","outcome":{...}}   (per job, completion order)
//	                        ... then exactly one of:
//	                        {"type":"done"}
//	                        {"type":"error","error":"..."}
//
// Outcomes reuse engine.RunOutcome's JSON form (errors flattened to strings),
// so the distributed wire is the same schema single-process tooling already
// consumes. Per-job failures are outcome frames with "error" set inside the
// outcome; a frame of type "error" is assignment-terminal and triggers the
// coordinator's retry-on-a-fresh-session path.
type frame struct {
	Type    string             `json:"type"`
	Assign  *Assignment        `json:"assign,omitempty"`
	Outcome *engine.RunOutcome `json:"outcome,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// readOutcomes consumes one assignment's response frames from dec, emitting
// each outcome, until a done (nil) or error (non-nil) terminator. A stream
// that ends or corrupts before its terminator is a dead worker.
func readOutcomes(dec *json.Decoder, emit func(engine.RunOutcome) error) error {
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return fmt.Errorf("dist: worker stream ended before its terminator: %w", err)
		}
		switch f.Type {
		case "outcome":
			if f.Outcome == nil {
				return fmt.Errorf("dist: outcome frame without an outcome")
			}
			if err := emit(*f.Outcome); err != nil {
				return err
			}
		case "done":
			return nil
		case "error":
			return fmt.Errorf("dist: worker: %s", f.Error)
		default:
			return fmt.Errorf("dist: unexpected frame type %q", f.Type)
		}
	}
}
