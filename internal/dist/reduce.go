package dist

import (
	"fmt"

	"fdip/internal/engine"
	"fdip/internal/stats"
)

// Metric projects one successful outcome to the scalar a Summary reduces.
type Metric func(engine.RunOutcome) float64

// IPC is the canonical metric: the point's instructions per cycle.
func IPC(out engine.RunOutcome) float64 { return out.Result.IPC }

// MissPKI reduces the would-be L1-I miss rate per kilo-instruction.
func MissPKI(out engine.RunOutcome) float64 { return out.Result.MissPKI }

// BusUtilPct reduces the L1<->L2 bus utilisation percentage.
func BusUtilPct(out engine.RunOutcome) float64 { return out.Result.BusUtilPct }

// Summary is the mergeable reduction of a sweep over one metric: online
// mean/variance (stats.Moments) plus the k best and k worst points
// (stats.TopK, tie-broken by enumeration index) and a failure count. Each
// shard can fold its own ranges into a private Summary and Merge them — the
// result is identical (TopK sets exactly, moments up to float associativity)
// to observing the whole stream in one process, in any order, which is what
// lets million-point sweeps report without anyone holding the result set.
type Summary struct {
	// MetricName labels the reduced metric in reports.
	MetricName string
	// Moments holds the metric's count/mean/variance over successful points.
	Moments stats.Moments
	// Top and Bottom retain the k highest- and lowest-metric points.
	Top, Bottom *stats.TopK[engine.Job]
	// P50 and P90 estimate the metric's median and 90th percentile in
	// fixed memory (stats.P2Quantile). Unlike the other legs they merge
	// approximately: a sharded reduction's quantiles track, but are not
	// bit-identical to, the sequential pass (min/max and count stay exact).
	P50, P90 *stats.P2Quantile
	// Hist is the metric's fixed-bucket value distribution
	// (stats.HistogramSketch). Integer counts over a geometry fixed at
	// construction merge exactly, so the sharded histogram is bit-identical
	// to the sequential pass. The default geometry (histBuckets buckets over
	// [0, histHi)) suits IPC-scaled metrics; out-of-range values land in the
	// under/overflow counters rather than being lost.
	Hist *stats.HistogramSketch
	// Failures counts outcomes that carried an error (excluded from the
	// metric's moments and extremes).
	Failures int

	metric Metric
}

// Default histogram geometry: every shard of one reduction must build the
// same sketch, so NewSummary fixes it rather than inferring it from data.
const (
	histHi      = 8.0
	histBuckets = 32
)

// NewSummary builds a summary over metric, retaining k extremes each way.
func NewSummary(name string, k int, metric Metric) *Summary {
	return &Summary{
		MetricName: name,
		Top:        stats.NewTopK[engine.Job](k),
		Bottom:     stats.NewBottomK[engine.Job](k),
		P50:        stats.NewP2Quantile(0.5),
		P90:        stats.NewP2Quantile(0.9),
		Hist:       stats.NewHistogramSketch(0, histHi, histBuckets),
		metric:     metric,
	}
}

// Observe folds one outcome.
func (s *Summary) Observe(out engine.RunOutcome) {
	if out.Err != nil {
		s.Failures++
		return
	}
	v := s.metric(out)
	s.Moments.Add(v)
	s.Top.Add(v, int64(out.Index), out.Job)
	s.Bottom.Add(v, int64(out.Index), out.Job)
	s.P50.Add(v)
	s.P90.Add(v)
	s.Hist.Add(v)
}

// Merge folds another shard's summary into s.
func (s *Summary) Merge(o *Summary) {
	s.Moments.Merge(o.Moments)
	s.Top.Merge(o.Top)
	s.Bottom.Merge(o.Bottom)
	s.P50.Merge(o.P50)
	s.P90.Merge(o.P90)
	s.Hist.Merge(o.Hist)
	s.Failures += o.Failures
}

// String renders the summary in report form.
func (s *Summary) String() string {
	out := fmt.Sprintf("%s: n=%d mean=%.4f stddev=%.4f p50=%.4f p90=%.4f failures=%d",
		s.MetricName, s.Moments.Count, s.Moments.Mean, s.Moments.StdDev(),
		s.P50.Quantile(), s.P90.Quantile(), s.Failures)
	for _, it := range s.Top.Items() {
		out += fmt.Sprintf("\n  top    %-40s %.4f", it.Value.Name, it.Score)
	}
	for _, it := range s.Bottom.Items() {
		out += fmt.Sprintf("\n  bottom %-40s %.4f", it.Value.Name, it.Score)
	}
	out += "\n  " + s.Hist.String()
	return out
}
