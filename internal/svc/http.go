package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// The service HTTP API, all JSON:
//
//	POST   /v1/workers/register    {id, url, ttl_seconds}  register/heartbeat
//	POST   /v1/workers/deregister  {id}                    clean worker exit
//	GET    /v1/workers                                     live pool snapshot
//	POST   /v1/jobs                SubmitRequest           -> 202 JobStatus
//	                                                          429 queue full
//	GET    /v1/jobs                                        all JobStatus
//	GET    /v1/jobs/{id}                                   one JobStatus
//	GET    /v1/jobs/{id}/stream?from=N                     NDJSON StreamFrames
//
// Workers themselves serve the dist run endpoint; the service only tracks
// their addresses. Streams flush per frame and honour from=N so a client that
// saw n frames reconnects with from=n and misses nothing.

// registerRequest is the worker announcement body.
type registerRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// TTLSeconds overrides the service's heartbeat budget for this worker
	// (0 = service default).
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// Handler mounts the service API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/workers/register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" || req.URL == "" {
			http.Error(w, "svc: register body must carry id and url", http.StatusBadRequest)
			return
		}
		s.reg.Register(req.ID, req.URL, time.Duration(req.TTLSeconds)*time.Second)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/workers/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
			http.Error(w, "svc: deregister body must carry id", http.StatusBadRequest)
			return
		}
		s.reg.Deregister(req.ID)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Live())
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "svc: body must be a SubmitRequest", http.StatusBadRequest)
			return
		}
		st, err := s.Submit(req)
		switch {
		case errors.Is(err, ErrQueueFull):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			http.Error(w, "svc: unknown job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.Job(id); !ok {
			http.Error(w, "svc: unknown job", http.StatusNotFound)
			return
		}
		from := 0
		if q := r.URL.Query().Get("from"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &from); err != nil || from < 0 {
				http.Error(w, "svc: from must be a non-negative frame index", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		fl, _ := w.(http.Flusher)
		err := s.Stream(r.Context(), id, from, func(f StreamFrame) error {
			if err := enc.Encode(f); err != nil {
				return err
			}
			if fl != nil {
				fl.Flush()
			}
			return nil
		})
		// The stream body already carried its terminal frame (or the client
		// went away); status is committed, nothing useful left to send.
		_ = err
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
