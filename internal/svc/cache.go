package svc

import (
	"sync"

	"fdip/internal/engine"
)

// resultCache is the service's shared result store: one map over the engine's
// exported simulation identity (engine.JobKey), written by every sweep and
// read by every later one. It implements dist.Cache.
//
// Entries are immutable once written — a key fully determines its result, so
// a second Put for a key is by definition the same result and is kept (the
// coordinator only ever Puts successes). The cache is unbounded: a result is
// a few hundred bytes of counters and the service's whole point is reuse.
type resultCache struct {
	mu sync.RWMutex
	m  map[engine.JobKey]engine.RunOutcome
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[engine.JobKey]engine.RunOutcome)}
}

func (c *resultCache) Get(key engine.JobKey) (engine.RunOutcome, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out, ok := c.m[key]
	return out, ok
}

func (c *resultCache) Put(key engine.JobKey, out engine.RunOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = out
}

// Len reports the number of distinct cached simulation identities.
func (c *resultCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
