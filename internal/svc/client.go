package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"fdip/internal/dist"
)

// ErrSweepFailed wraps a stream's terminal error frame — the sweep itself
// failed, as opposed to a transport error a client should reconnect through.
var ErrSweepFailed = errors.New("svc: sweep failed")

// Client talks to a sweep service over its HTTP API: submission, status,
// streaming, and worker self-registration (the loop cmd/fdipd -register runs).
type Client struct {
	// Base is the service root ("http://host:9090").
	Base string
	// HTTPClient overrides the transport (nil = http.DefaultClient). Streams
	// are long-lived; a client with a response timeout will kill them.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return c.Base + path
}

// do issues one JSON request, decoding a JSON response into out (nil = drain).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("%w: %s", ErrQueueFull, bytes.TrimSpace(msg))
		}
		return fmt.Errorf("svc: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues one sweep, returning its accepted status (and ErrQueueFull
// — wrapped — on backpressure).
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job fetches one sweep's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists every sweep the service knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var sts []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &sts)
	return sts, err
}

// Workers snapshots the live worker pool.
func (c *Client) Workers(ctx context.Context) ([]dist.WorkerInfo, error) {
	var ws []dist.WorkerInfo
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &ws)
	return ws, err
}

// Register announces (or heartbeats) a worker.
func (c *Client) Register(ctx context.Context, id, workerURL string, ttl time.Duration) error {
	return c.do(ctx, http.MethodPost, "/v1/workers/register",
		registerRequest{ID: id, URL: workerURL, TTLSeconds: int(ttl / time.Second)}, nil)
}

// Deregister removes a worker from the pool (clean shutdown).
func (c *Client) Deregister(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers/deregister", registerRequest{ID: id}, nil)
}

// Heartbeat keeps one worker registered until ctx ends, re-announcing every
// ttl/3 (so two beats can be lost before the registry expires it), then
// deregisters cleanly. The first registration is synchronous but tolerates a
// service that is still coming up: it retries with backoff for up to ~10s
// (workers and the service are routinely launched together), and only when
// that window is exhausted — or ctx dies — does Heartbeat return a non-nil
// error meaning the worker never joined.
func (c *Client) Heartbeat(ctx context.Context, id, workerURL string, ttl time.Duration) error {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	var err error
	backoff := 100 * time.Millisecond
	for deadline := time.Now().Add(10 * time.Second); ; backoff *= 2 {
		if err = c.Register(ctx, id, workerURL, ttl); err == nil {
			break
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(backoff):
		}
	}
	go func() {
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				// Best-effort clean exit off the dying context.
				dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = c.Deregister(dctx, id)
				cancel()
				return
			case <-tick.C:
				_ = c.Register(ctx, id, workerURL, ttl)
			}
		}
	}()
	return nil
}

// Stream follows one sweep's NDJSON result stream from frame index from,
// invoking fn per frame until the terminal done/error frame (returned nil /
// as an error), ctx death, or a transport failure. The caller owns reconnect
// policy: on a dropped connection, resume with from = frames seen so far.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(StreamFrame) error) error {
	path := "/v1/jobs/" + url.PathEscape(id) + "/stream?from=" + strconv.Itoa(from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("svc: stream %s: %s: %s", id, resp.Status, bytes.TrimSpace(msg))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var f StreamFrame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return fmt.Errorf("svc: stream %s ended without a terminal frame", id)
			}
			return err
		}
		switch f.Type {
		case "outcome":
			if err := fn(f); err != nil {
				return err
			}
		case "done":
			return nil
		case "error":
			return fmt.Errorf("%w: %s: %s", ErrSweepFailed, id, f.Error)
		default:
			return fmt.Errorf("svc: stream %s: unknown frame type %q", id, f.Type)
		}
	}
}
