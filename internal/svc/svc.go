// Package svc is the fdipd sweep service: a long-running coordinator process
// that accepts Plan submissions from many clients, runs them one sweep at a
// time across a self-registering worker pool (internal/dist.Registry), and
// streams results back over per-client NDJSON endpoints.
//
// The service is built from four guarantees the lower layers already prove:
//
//   - Persistence: submissions land in a queue journal (StateDir/queue.journal)
//     before they are acknowledged, and every sweep runs under its own dist
//     checkpoint journal — a service restart re-queues unfinished sweeps and
//     resumes them from their last committed range.
//   - Shared results: one fingerprint-keyed cache (engine.JobKey) spans all
//     sweeps, so a submission overlapping any earlier one — including ones
//     completed before a restart, re-warmed from their journals — ships only
//     its genuinely new points to workers.
//   - Bit-identity: streamed outcomes are exactly the single-process
//     engine.Stream outcomes, whatever mix of worker kills, cache hits,
//     journal replays, and client reconnects produced them.
//   - Graceful drain: quiescing the service stops dispatch, lets in-flight
//     ranges journal, and re-queues interrupted sweeps rather than failing
//     them — a SIGINT'd fdipd -serve restarts where it left off.
package svc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fdip/internal/core"
	"fdip/internal/dist"
	"fdip/internal/engine"
)

// Options configures a Server.
type Options struct {
	// StateDir holds the queue journal and per-sweep checkpoint journals
	// (required; created if absent).
	StateDir string
	// Shards is the per-sweep worker-session fan-out (default 4).
	Shards int
	// ChunkPoints is the default assignment granularity for submissions that
	// don't set their own (default 8).
	ChunkPoints int
	// MaxQueued bounds queued+running sweeps; further submissions fail with
	// ErrQueueFull (HTTP 429) until the backlog drains (default 16).
	MaxQueued int
	// MaxRetries is each range's re-dial budget (default 4 — a service pool
	// churns more than a static dialer list).
	MaxRetries int
	// WorkerTTL is the registry heartbeat budget (default 15s).
	WorkerTTL time.Duration
}

// ErrQueueFull rejects submissions when the backlog is at MaxQueued.
var ErrQueueFull = errors.New("svc: queue full")

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SubmitRequest describes one sweep: a cross product of workloads and named
// configurations — the wire form of engine.NewPlan(...).OverNames(...).Axes
// (Plans themselves are closures and cannot cross a process boundary).
type SubmitRequest struct {
	// Label names the sweep in listings (defaulted to its id).
	Label string `json:"label,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a level.
	Priority int `json:"priority,omitempty"`
	// Workloads are the plan's rows (named workloads).
	Workloads []string `json:"workloads"`
	// Configs are the plan's columns.
	Configs []ConfigPoint `json:"configs"`
	// Instrs is the committed-instruction budget applied to every point
	// (0 = each config's own limits).
	Instrs uint64 `json:"instrs,omitempty"`
	// ChunkPoints overrides the service's assignment granularity (0 = server
	// default). It participates in the sweep's journal fingerprint.
	ChunkPoints int `json:"chunk_points,omitempty"`
}

// ConfigPoint is one named machine configuration.
type ConfigPoint struct {
	Name   string      `json:"name"`
	Config core.Config `json:"config"`
}

// plan rebuilds the engine Plan a request describes.
func (r SubmitRequest) plan() (*engine.Plan, error) {
	if len(r.Workloads) == 0 || len(r.Configs) == 0 {
		return nil, fmt.Errorf("svc: a submission needs at least one workload and one config")
	}
	pts := make([]engine.NamedConfig, len(r.Configs))
	for i, c := range r.Configs {
		pts[i] = engine.Named(c.Name, c.Config)
	}
	p := engine.NewPlan(core.DefaultConfig()).
		OverNames(r.Workloads...).
		Axes(engine.Configs(pts...))
	return p, p.Err()
}

// JobStatus is a sweep's externally visible state.
type JobStatus struct {
	ID       string `json:"id"`
	Label    string `json:"label"`
	State    string `json:"state"`
	Priority int    `json:"priority"`
	// Points is the plan size; Completed counts streamed outcomes so far;
	// Cached counts how many of those were served from the shared result
	// cache rather than executed by a worker — the accounting that proves
	// overlap reuse.
	Points    int    `json:"points"`
	Completed int    `json:"completed"`
	Cached    int    `json:"cached"`
	Error     string `json:"error,omitempty"`
	// CompletedSeq is the service-wide finish ordinal (1 = first sweep to
	// finish since this server started; 0 = not finished) — how tests pin
	// priority scheduling without timing.
	CompletedSeq int `json:"completed_seq,omitempty"`
}

// sweep is one submission's full server-side state.
type sweep struct {
	id   string
	seq  int // submission order, the FIFO key within a priority level
	req  SubmitRequest
	plan *engine.Plan

	state        string
	errMsg       string
	buf          []engine.RunOutcome // completion-order outcomes, the stream source
	cached       int
	completedSeq int
}

func (sw *sweep) status() JobStatus {
	label := sw.req.Label
	if label == "" {
		label = sw.id
	}
	return JobStatus{
		ID:        sw.id,
		Label:     label,
		State:     sw.state,
		Priority:  sw.req.Priority,
		Points:    sw.plan.Points(),
		Completed: len(sw.buf),
		Cached:    sw.cached,
		Error:     sw.errMsg,

		CompletedSeq: sw.completedSeq,
	}
}

// Server is the sweep service: queue + scheduler + registry + shared cache.
// Create with New, mount Handler on an HTTP server, Shutdown to drain.
type Server struct {
	opts  Options
	reg   *dist.Registry
	cache *resultCache
	queue *queueJournal

	mu    sync.Mutex
	cond  *sync.Cond // guards/announces every sweep-state and buffer change
	jobs  map[string]*sweep
	order []*sweep // submission order
	seq   int      // last assigned submission ordinal
	fin   int      // last assigned completion ordinal

	quiesce   chan struct{}
	quiesceFn sync.Once
	schedDone chan struct{}
}

// New opens (or creates) the service state under opts.StateDir, restores the
// queue — re-warming the shared cache and stream buffers of finished sweeps
// from their journals, re-queuing unfinished ones — and starts the scheduler.
func New(opts Options) (*Server, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("svc: Options.StateDir is required")
	}
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.ChunkPoints <= 0 {
		opts.ChunkPoints = 8
	}
	if opts.MaxQueued <= 0 {
		opts.MaxQueued = 16
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 4
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("svc: state dir: %w", err)
	}
	s := &Server{
		opts:      opts,
		reg:       dist.NewRegistry(opts.WorkerTTL),
		cache:     newResultCache(),
		jobs:      make(map[string]*sweep),
		quiesce:   make(chan struct{}),
		schedDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	q, records, err := openQueueJournal(filepath.Join(opts.StateDir, "queue.journal"))
	if err != nil {
		return nil, err
	}
	s.queue = q
	if err := s.restore(records); err != nil {
		q.Close()
		return nil, err
	}
	go s.scheduler()
	return s, nil
}

// Registry exposes the worker pool (the HTTP layer's register endpoint, and
// tests).
func (s *Server) Registry() *dist.Registry { return s.reg }

// restore replays the queue journal into server state. Finished sweeps get
// their stream buffers and the shared cache re-warmed by replaying their dist
// journals (a pure disk read: every range is committed, so the replay
// coordinator never dials). Unfinished sweeps — queued or mid-run at the
// crash — go back to queued; their journals resume when the scheduler
// reaches them.
func (s *Server) restore(records []queueRecord) error {
	for _, rec := range records {
		switch rec.Op {
		case "submit":
			if rec.Req == nil {
				continue
			}
			p, err := rec.Req.plan()
			if err != nil {
				continue // a poisoned historic submission must not brick restart
			}
			s.seq++
			sw := &sweep{id: rec.ID, seq: s.seq, req: *rec.Req, plan: p, state: StateQueued}
			s.jobs[rec.ID] = sw
			s.order = append(s.order, sw)
		case "done":
			if sw, ok := s.jobs[rec.ID]; ok {
				sw.state = StateDone
			}
		case "failed":
			if sw, ok := s.jobs[rec.ID]; ok {
				sw.state = StateFailed
				sw.errMsg = rec.Error
			}
		}
	}
	for _, sw := range s.order {
		if sw.state != StateDone {
			continue
		}
		if err := s.replayFinished(sw); err != nil {
			// A finished sweep whose journal was lost stays done but loses
			// its replayable stream; new overlapping work simply re-executes.
			sw.buf = nil
		}
	}
	return nil
}

// replayFinished rebuilds one finished sweep's stream buffer from its dist
// journal, priming the shared cache as a side effect (the coordinator pushes
// every journal-replayed outcome through its cache hook).
func (s *Server) replayFinished(sw *sweep) error {
	journal := s.journalPath(sw.id)
	if _, err := os.Stat(journal); err != nil {
		return err
	}
	c := dist.New(dist.Options{
		Dialer:      noDialer{},
		Shards:      1,
		ChunkPoints: s.chunkFor(sw),
		Instrs:      sw.req.Instrs,
		Journal:     journal,
		MaxRetries:  -1,
		Cache:       s.cache,
	})
	var buf []engine.RunOutcome
	for out, err := range c.Stream(context.Background(), sw.plan) {
		if err != nil {
			return err
		}
		buf = append(buf, out)
	}
	sw.buf = buf
	sw.cached = 0 // replayed outcomes were executed originally, not cache-served
	return nil
}

// noDialer proves a replay never executes: any dial is a bug.
type noDialer struct{}

func (noDialer) Dial(ctx context.Context) (dist.Session, error) {
	return nil, fmt.Errorf("svc: replay tried to dial a worker")
}

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.opts.StateDir, id+".journal")
}

func (s *Server) chunkFor(sw *sweep) int {
	if sw.req.ChunkPoints > 0 {
		return sw.req.ChunkPoints
	}
	return s.opts.ChunkPoints
}

// Submit validates, journals, and enqueues one sweep. The returned status is
// the accepted job (state queued); ErrQueueFull reports backpressure.
func (s *Server) Submit(req SubmitRequest) (JobStatus, error) {
	p, err := req.plan()
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	backlog := 0
	for _, sw := range s.order {
		if sw.state == StateQueued || sw.state == StateRunning {
			backlog++
		}
	}
	if backlog >= s.opts.MaxQueued {
		return JobStatus{}, fmt.Errorf("%w: %d sweeps pending", ErrQueueFull, backlog)
	}
	s.seq++
	sw := &sweep{id: fmt.Sprintf("s%06d", s.seq), seq: s.seq, req: req, plan: p, state: StateQueued}
	// Durability precedes acknowledgement: the submission is journaled (and
	// fsynced) before the client learns its id.
	if err := s.queue.Append(queueRecord{Op: "submit", ID: sw.id, Req: &req}); err != nil {
		s.seq--
		return JobStatus{}, err
	}
	s.jobs[sw.id] = sw
	s.order = append(s.order, sw)
	s.cond.Broadcast()
	return sw.status(), nil
}

// Job returns one sweep's status.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return sw.status(), true
}

// Jobs lists every known sweep in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, sw := range s.order {
		out[i] = sw.status()
	}
	return out
}

// scheduler is the single sweep-execution loop: it drains the queue in
// (priority desc, submission asc) order, one sweep at a time — each sweep is
// itself sharded across the whole worker pool, so serial sweeps lose no
// parallelism and keep the completion stream per-sweep contiguous.
func (s *Server) scheduler() {
	defer close(s.schedDone)
	for {
		sw := s.nextRunnable()
		if sw == nil {
			return // quiesced
		}
		s.runSweep(sw)
		if quiesced(s.quiesce) {
			return
		}
	}
}

// nextRunnable blocks until a queued sweep exists (returning the best one,
// marked running) or the service quiesces (returning nil).
func (s *Server) nextRunnable() *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if quiesced(s.quiesce) {
			return nil
		}
		var best *sweep
		for _, sw := range s.order {
			if sw.state != StateQueued {
				continue
			}
			if best == nil || sw.req.Priority > best.req.Priority ||
				(sw.req.Priority == best.req.Priority && sw.seq < best.seq) {
				best = sw
			}
		}
		if best != nil {
			best.state = StateRunning
			s.cond.Broadcast()
			return best
		}
		s.cond.Wait()
	}
}

// runSweep executes one sweep under its checkpoint journal, streaming
// outcomes into its buffer (waking stream watchers per range) and recording
// the terminal state in the queue journal. A quiesce mid-sweep re-queues the
// sweep instead of failing it: the drained ranges are journaled, so the next
// run — after restart — resumes behind them.
func (s *Server) runSweep(sw *sweep) {
	c := dist.New(dist.Options{
		Dialer:      s.reg,
		Shards:      s.opts.Shards,
		ChunkPoints: s.chunkFor(sw),
		Instrs:      sw.req.Instrs,
		Journal:     s.journalPath(sw.id),
		MaxRetries:  s.opts.MaxRetries,
		Cache:       s.cache,
		Quiesce:     s.quiesce,
	})
	var terminal error
	for out, err := range c.Stream(context.Background(), sw.plan) {
		if err != nil {
			terminal = err
			break
		}
		s.mu.Lock()
		sw.buf = append(sw.buf, out)
		if out.Cached {
			sw.cached++
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.cond.Broadcast()
	switch {
	case terminal == nil:
		sw.state = StateDone
		s.fin++
		sw.completedSeq = s.fin
		// A failed journal append here must not fail the sweep: the dist
		// journal already proves completion; restart replays it to done.
		_ = s.queue.Append(queueRecord{Op: "done", ID: sw.id})
	case errors.Is(terminal, dist.ErrQuiesced) || quiesced(s.quiesce):
		// Graceful drain (or a dial aborted by shutdown): back to queued,
		// progress parked in the journal. No queue record — the journal's
		// last word on this sweep is still its submission.
		sw.state = StateQueued
		sw.buf = nil
		sw.cached = 0
	default:
		sw.state = StateFailed
		sw.errMsg = terminal.Error()
		_ = s.queue.Append(queueRecord{Op: "failed", ID: sw.id, Error: terminal.Error()})
	}
}

// quiesced reports whether ch has fired.
func quiesced(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Shutdown gracefully drains the service: dispatch stops, in-flight ranges
// finish and journal, the interrupted sweep (if any) re-queues, the scheduler
// exits, and the queue journal closes. Safe to call more than once.
func (s *Server) Shutdown() error {
	s.quiesceFn.Do(func() {
		close(s.quiesce)
		s.mu.Lock()
		s.cond.Broadcast() // release nextRunnable and stream watchers
		s.mu.Unlock()
		s.reg.Close() // release coordinator dials blocked on an empty pool
	})
	<-s.schedDone
	return s.queue.Close()
}

// Stream copies one sweep's completion-order outcomes to fn, starting at
// frame index from (the reconnect cursor: a client that saw n frames resumes
// with from=n and misses nothing). It blocks over live sweeps — following the
// buffer as ranges land — and returns once the sweep's terminal state has
// been delivered, ctx ends, or fn errs. Frames after a restart replay in the
// journal's deterministic range order, which may differ from the original
// completion order; cursors do not transfer across restarts.
func (s *Server) Stream(ctx context.Context, id string, from int, fn func(StreamFrame) error) error {
	s.mu.Lock()
	sw, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("svc: unknown job %q", id)
	}
	if from < 0 {
		from = 0
	}
	// A context death must wake the cond wait below, not strand it.
	wake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer wake()

	next := from
	for {
		s.mu.Lock()
		for ctx.Err() == nil && next >= len(sw.buf) && sw.state != StateDone && sw.state != StateFailed && !quiesced(s.quiesce) {
			s.cond.Wait()
		}
		var batch []engine.RunOutcome
		if next < len(sw.buf) {
			batch = sw.buf[next:len(sw.buf):len(sw.buf)]
		}
		state, errMsg := sw.state, sw.errMsg
		s.mu.Unlock()

		if err := ctx.Err(); err != nil {
			return err
		}
		for _, out := range batch {
			f := StreamFrame{Type: "outcome", Seq: next, Outcome: &out}
			if err := fn(f); err != nil {
				return err
			}
			next++
		}
		switch state {
		case StateDone:
			return fn(StreamFrame{Type: "done", Seq: next})
		case StateFailed:
			return fn(StreamFrame{Type: "error", Seq: next, Error: errMsg})
		}
		if quiesced(s.quiesce) {
			return fn(StreamFrame{Type: "error", Seq: next, Error: dist.ErrQuiesced.Error()})
		}
	}
}

// StreamFrame is one NDJSON stream record. Seq is the frame's index in the
// sweep's completion order — the cursor a reconnecting client passes back as
// from. The terminal done/error frame carries Seq = total outcome count.
type StreamFrame struct {
	Type    string             `json:"type"` // "outcome" | "done" | "error"
	Seq     int                `json:"seq"`
	Outcome *engine.RunOutcome `json:"outcome,omitempty"`
	Error   string             `json:"error,omitempty"`
}
