package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fdip/internal/core"
	"fdip/internal/dist"
	"fdip/internal/engine"
	"fdip/internal/prefetch"
)

// goldenChecksum mirrors internal/engine's pinned constant — the service
// stream must reproduce it through every failure mode.
const goldenChecksum = 0x47bbeda2da5f243e

func testCfg(kind core.PrefetcherKind) core.Config {
	c := core.DefaultConfig()
	c.MaxInstrs = 30_000
	c.Prefetch.Kind = kind
	return c
}

func goldenCfg() core.Config {
	c := core.DefaultConfig()
	c.MaxInstrs = 150_000
	c.Prefetch.Kind = core.PrefetchFDP
	c.Prefetch.FDP.CPF = prefetch.CPFConservative
	return c
}

// testReq is the service-side twin of the dist tests' 6-point plan; index 1
// (gcc x golden) is the engine's pinned golden triple.
func testReq(label string) SubmitRequest {
	return SubmitRequest{
		Label:     label,
		Workloads: []string{"gcc", "deltablue"},
		Configs: []ConfigPoint{
			{Name: "base", Config: testCfg(core.PrefetchNone)},
			{Name: "golden", Config: goldenCfg()},
			{Name: "nextline", Config: testCfg(core.PrefetchNextLine)},
		},
		ChunkPoints: 1, // finest granularity: every point is its own range
	}
}

func resultChecksum(res core.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", res)
	return h.Sum64()
}

// reference is the single-process truth for a request.
func reference(t *testing.T, req SubmitRequest) []engine.RunOutcome {
	t.Helper()
	p, err := req.plan()
	if err != nil {
		t.Fatalf("reference plan: %v", err)
	}
	outs := make([]engine.RunOutcome, p.Points())
	for out, err := range engine.New(engine.WithWorkers(4)).Stream(context.Background(), p) {
		if err != nil || out.Err != nil {
			t.Fatalf("reference stream: %v / %v", err, out.Err)
		}
		outs[out.Index] = out
	}
	return outs
}

// requireIdentical pins service outcomes (indexed) against the reference —
// names, result checksums, and the golden point.
func requireIdentical(t *testing.T, label string, ref, got []engine.RunOutcome) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d outcomes, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i].Err != nil {
			t.Fatalf("%s: point %d (%s): %v", label, i, got[i].Job.Name, got[i].Err)
		}
		if got[i].Job.Name != ref[i].Job.Name {
			t.Errorf("%s: point %d named %q, want %q", label, i, got[i].Job.Name, ref[i].Job.Name)
		}
		if a, b := resultChecksum(got[i].Result), resultChecksum(ref[i].Result); a != b {
			t.Errorf("%s: point %d (%s): checksum %#x != single-process %#x", label, i, got[i].Job.Name, a, b)
		}
	}
	if got := resultChecksum(got[1].Result); got != goldenChecksum {
		t.Errorf("%s: golden point checksum %#x, want pinned %#x", label, got, goldenChecksum)
	}
}

// workerCounter tallies jobs actually shipped to a worker process — the
// accounting that proves cache hits and journal replays never re-execute.
type workerCounter struct {
	mu   sync.Mutex
	jobs int
}

func (wc *workerCounter) shipped() int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.jobs
}

// countingWorker is a real dist worker behind a middleware that counts the
// jobs in each assign frame.
func countingWorker(wc *workerCounter) *httptest.Server {
	inner := dist.NewWorker(2).Handler()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var fr struct {
			Assign struct {
				Jobs []json.RawMessage `json:"jobs"`
			} `json:"assign"`
		}
		_ = json.Unmarshal(body, &fr)
		wc.mu.Lock()
		wc.jobs += len(fr.Assign.Jobs)
		wc.mu.Unlock()
		r.Body = io.NopCloser(bytes.NewReader(body))
		inner.ServeHTTP(w, r)
	}))
}

// service boots a server over dir and mounts it on an httptest listener.
func service(t *testing.T, dir string, opts Options) (*Server, *Client, func()) {
	t.Helper()
	opts.StateDir = dir
	s, err := New(opts)
	if err != nil {
		t.Fatalf("svc.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	cleanup := func() {
		hs.Close()
		if err := s.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	return s, &Client{Base: hs.URL}, cleanup
}

// collect streams a finished (or finishing) job fully and indexes outcomes.
func collect(t *testing.T, c *Client, id string, points int) []engine.RunOutcome {
	t.Helper()
	outs := make([]engine.RunOutcome, points)
	seen := make([]bool, points)
	err := c.Stream(context.Background(), id, 0, func(f StreamFrame) error {
		out := *f.Outcome
		if out.Index < 0 || out.Index >= points || seen[out.Index] {
			return fmt.Errorf("frame %d: bad or duplicate index %d", f.Seq, out.Index)
		}
		seen[out.Index] = true
		outs[out.Index] = out
		return nil
	})
	if err != nil {
		t.Fatalf("stream %s: %v", id, err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("stream %s never delivered point %d", id, i)
		}
	}
	return outs
}

// TestServiceStreamsGolden is the tentpole happy path: two self-registered
// workers, one HTTP submission, one streamed result set — bit-identical to
// the single-process engine, golden checksum included.
func TestServiceStreamsGolden(t *testing.T) {
	req := testReq("golden-run")
	ref := reference(t, req)

	_, c, done := service(t, t.TempDir(), Options{Shards: 2})
	defer done()
	w1, w2 := httptest.NewServer(dist.NewWorker(2).Handler()), httptest.NewServer(dist.NewWorker(2).Handler())
	defer w1.Close()
	defer w2.Close()
	ctx := context.Background()
	if err := c.Register(ctx, "w1", w1.URL, time.Minute); err != nil {
		t.Fatalf("register w1: %v", err)
	}
	if err := c.Register(ctx, "w2", w2.URL, time.Minute); err != nil {
		t.Fatalf("register w2: %v", err)
	}
	ws, err := c.Workers(ctx)
	if err != nil || len(ws) != 2 {
		t.Fatalf("workers = %v / %v, want 2 live", ws, err)
	}

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.State != StateQueued || st.Points != len(ref) {
		t.Fatalf("accepted status %+v", st)
	}
	outs := collect(t, c, st.ID, len(ref))
	requireIdentical(t, "service", ref, outs)

	final, err := c.Job(ctx, st.ID)
	if err != nil || final.State != StateDone || final.Completed != len(ref) {
		t.Fatalf("final status %+v / %v", final, err)
	}
}

// TestServiceSurvivesWorkerKill hard-closes one of two workers mid-sweep; the
// registry must evict it, retries must drain its ranges onto the survivor,
// and the stream must still be bit-identical.
func TestServiceSurvivesWorkerKill(t *testing.T) {
	req := testReq("kill-run")
	ref := reference(t, req)

	_, c, done := service(t, t.TempDir(), Options{Shards: 2})
	defer done()
	w1, w2 := httptest.NewServer(dist.NewWorker(2).Handler()), httptest.NewServer(dist.NewWorker(2).Handler())
	defer w1.Close()
	ctx := context.Background()
	c.Register(ctx, "w1", w1.URL, time.Minute)
	c.Register(ctx, "w2", w2.URL, time.Minute)

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	outs := make([]engine.RunOutcome, len(ref))
	seen := make([]bool, len(ref))
	killed := false
	err = c.Stream(ctx, st.ID, 0, func(f StreamFrame) error {
		if !killed {
			killed = true
			w2.CloseClientConnections()
			w2.Close() // SIGKILL stand-in after the first delivered range
		}
		out := *f.Outcome
		if seen[out.Index] {
			return fmt.Errorf("point %d delivered twice", out.Index)
		}
		seen[out.Index] = true
		outs[out.Index] = out
		return nil
	})
	if err != nil {
		t.Fatalf("stream under worker kill: %v", err)
	}
	requireIdentical(t, "worker-kill", ref, outs)
}

// TestServiceClientReconnect drops the stream after two frames and resumes
// with from=2: the client must see every frame exactly once across the two
// connections, and the reassembled set must be bit-identical.
func TestServiceClientReconnect(t *testing.T) {
	req := testReq("reconnect-run")
	ref := reference(t, req)

	_, c, done := service(t, t.TempDir(), Options{Shards: 2})
	defer done()
	w := httptest.NewServer(dist.NewWorker(2).Handler())
	defer w.Close()
	ctx := context.Background()
	c.Register(ctx, "w", w.URL, time.Minute)

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	outs := make([]engine.RunOutcome, len(ref))
	seen := make([]bool, len(ref))
	record := func(f StreamFrame) error {
		out := *f.Outcome
		if seen[out.Index] {
			return fmt.Errorf("point %d delivered twice across reconnect", out.Index)
		}
		seen[out.Index] = true
		outs[out.Index] = out
		return nil
	}

	// Connection 1: take two frames, then "drop".
	errDrop := errors.New("simulated disconnect")
	got := 0
	err = c.Stream(ctx, st.ID, 0, func(f StreamFrame) error {
		if f.Seq != got {
			return fmt.Errorf("frame seq %d, want %d", f.Seq, got)
		}
		if err := record(f); err != nil {
			return err
		}
		got++
		if got == 2 {
			return errDrop
		}
		return nil
	})
	if !errors.Is(err, errDrop) {
		t.Fatalf("connection 1 ended with %v, want the injected drop", err)
	}

	// Connection 2: resume exactly where the cursor left off.
	err = c.Stream(ctx, st.ID, got, func(f StreamFrame) error {
		if f.Seq != got {
			return fmt.Errorf("resumed frame seq %d, want %d", f.Seq, got)
		}
		got++
		return record(f)
	})
	if err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if got != len(ref) {
		t.Fatalf("saw %d frames across reconnect, want %d", got, len(ref))
	}
	requireIdentical(t, "reconnect", ref, outs)
}

// TestServiceCacheServesOverlap submits a second sweep overlapping the first
// on 4 of 6 points: the status accounting must show exactly 4 cache-served
// points, the workers must receive exactly the 2 new ones, and the stream
// must match the second sweep's own single-process reference bit-identically.
func TestServiceCacheServesOverlap(t *testing.T) {
	reqA := testReq("first")
	reqB := SubmitRequest{
		Label:     "overlap",
		Workloads: []string{"gcc", "deltablue"},
		Configs: []ConfigPoint{
			{Name: "base", Config: testCfg(core.PrefetchNone)},
			{Name: "golden", Config: goldenCfg()},
			{Name: "fdp30k", Config: testCfg(core.PrefetchFDP)}, // the only new column
		},
		ChunkPoints: 3, // ranges straddle hits and misses: sparse assignments
	}
	refB := reference(t, reqB)

	_, c, done := service(t, t.TempDir(), Options{Shards: 2})
	defer done()
	wc := &workerCounter{}
	w := countingWorker(wc)
	defer w.Close()
	ctx := context.Background()
	c.Register(ctx, "w", w.URL, time.Minute)

	stA, err := c.Submit(ctx, reqA)
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	collect(t, c, stA.ID, 6)
	if n := wc.shipped(); n != 6 {
		t.Fatalf("sweep A shipped %d jobs, want all 6", n)
	}

	stB, err := c.Submit(ctx, reqB)
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	outs := collect(t, c, stB.ID, len(refB))
	requireIdentical(t, "overlap", refB, outs)

	if n := wc.shipped() - 6; n != 2 {
		t.Errorf("sweep B shipped %d jobs to workers, want exactly the 2 uncached points", n)
	}
	final, err := c.Job(ctx, stB.ID)
	if err != nil {
		t.Fatalf("status B: %v", err)
	}
	if final.Cached != 4 {
		t.Errorf("sweep B Cached=%d, want 4 (the overlap)", final.Cached)
	}
	for _, out := range outs {
		wantCached := out.Job.Name != "gcc/fdp30k" && out.Job.Name != "deltablue/fdp30k"
		if out.Cached != wantCached {
			t.Errorf("point %d (%s): Cached=%v, want %v", out.Index, out.Job.Name, out.Cached, wantCached)
		}
	}
}

// TestServiceBackpressure pins the queue bound: with MaxQueued=1 and a sweep
// parked on an empty worker pool, the next submission must be rejected with
// 429 / ErrQueueFull — and shutdown must still drain cleanly (no workers ever
// arrive; the parked dial must abort, not deadlock).
func TestServiceBackpressure(t *testing.T) {
	s, c, done := service(t, t.TempDir(), Options{Shards: 1, MaxQueued: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, testReq("parked"))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Wait for the scheduler to claim it (running, blocked dialing).
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never started; status %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := c.Submit(ctx, testReq("rejected")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit returned %v, want ErrQueueFull (HTTP 429)", err)
	}

	done() // must not deadlock on the empty pool
	if got, ok := s.Job(st.ID); !ok || got.State != StateQueued {
		t.Errorf("after drain, parked sweep status %+v; want re-queued", got)
	}
}

// TestServicePriorityOrder pins the queue discipline with the completion
// ordinal: among sweeps queued behind a parked one, the high-priority
// latecomer finishes before the earlier low-priority submission, which still
// beats its same-priority successor (FIFO within a level).
func TestServicePriorityOrder(t *testing.T) {
	small := func(label string, prio int) SubmitRequest {
		return SubmitRequest{
			Label:     label,
			Priority:  prio,
			Workloads: []string{"gcc"},
			Configs:   []ConfigPoint{{Name: "base", Config: testCfg(core.PrefetchNone)}},
		}
	}
	_, c, done := service(t, t.TempDir(), Options{Shards: 1})
	defer done()
	ctx := context.Background()

	// No workers yet: first submission parks in "running", the rest queue.
	first, _ := c.Submit(ctx, small("first", 0))
	lowA, _ := c.Submit(ctx, small("low-a", 0))
	lowB, _ := c.Submit(ctx, small("low-b", 0))
	high, _ := c.Submit(ctx, small("high", 5))

	w := httptest.NewServer(dist.NewWorker(2).Handler())
	defer w.Close()
	c.Register(ctx, "w", w.URL, time.Minute)

	order := map[string]int{}
	for _, st := range []JobStatus{first, lowA, lowB, high} {
		if err := c.Stream(ctx, st.ID, 0, func(StreamFrame) error { return nil }); err != nil {
			t.Fatalf("stream %s: %v", st.Label, err)
		}
		got, err := c.Job(ctx, st.ID)
		if err != nil || got.CompletedSeq == 0 {
			t.Fatalf("status %s: %+v / %v", st.Label, got, err)
		}
		order[st.Label] = got.CompletedSeq
	}
	if !(order["high"] < order["low-a"] && order["low-a"] < order["low-b"]) {
		t.Errorf("completion order %v; want high before low-a before low-b", order)
	}
}

// TestServiceRestartResumes is the end-to-end persistence proof: quiesce a
// server mid-sweep, boot a second one over the same state dir, and the sweep
// must finish with no point executed twice (worker-side job accounting);
// an identical resubmission is then served wholly from the journal-primed
// cache — zero new worker jobs — and both streams are bit-identical.
func TestServiceRestartResumes(t *testing.T) {
	req := testReq("restart-run")
	ref := reference(t, req)
	dir := t.TempDir()
	wc := &workerCounter{}
	w := countingWorker(wc)
	defer w.Close()
	ctx := context.Background()

	// Incarnation 1: run to >= 2 completed points, then drain.
	s1, c1, _ := service(t, dir, Options{Shards: 1})
	c1.Register(ctx, "w", w.URL, time.Minute)
	st, err := c1.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := c1.Job(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if got.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never progressed; status %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.Shutdown(); err != nil {
		t.Fatalf("shutdown 1: %v", err)
	}

	// Incarnation 2: same state dir, same worker. The sweep must resume and
	// finish; across both incarnations every point ships at most once.
	_, c2, done2 := service(t, dir, Options{Shards: 1})
	defer done2()
	c2.Register(ctx, "w", w.URL, time.Minute)
	outs := collect(t, c2, st.ID, len(ref))
	requireIdentical(t, "restart", ref, outs)
	if n := wc.shipped(); n != len(ref) {
		t.Errorf("%d jobs shipped across both incarnations, want %d (resume must not re-execute journaled ranges)", n, len(ref))
	}

	// Identical resubmission: the journal-primed cache serves everything.
	st2, err := c2.Submit(ctx, req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	outs2 := collect(t, c2, st2.ID, len(ref))
	requireIdentical(t, "resubmit", ref, outs2)
	if n := wc.shipped(); n != len(ref) {
		t.Errorf("resubmission shipped %d new jobs, want 0 (cache must serve the whole plan)", n-len(ref))
	}
	final, _ := c2.Job(ctx, st2.ID)
	if final.Cached != len(ref) {
		t.Errorf("resubmission Cached=%d, want %d", final.Cached, len(ref))
	}
}

// TestQueueJournalTornTail pins the queue journal's crash discipline: a torn
// final line is truncated at open, every complete record before it survives.
func TestQueueJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/queue.journal"
	q, records, err := openQueueJournal(path)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh journal has %d records", len(records))
	}
	req := testReq("torn")
	if err := q.Append(queueRecord{Op: "submit", ID: "s000001", Req: &req}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := q.Append(queueRecord{Op: "done", ID: "s000001"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Crash mid-append: half a record, no newline.
	if _, err := q.f.Write([]byte(`{"op":"submit","id":"s0000`)); err != nil {
		t.Fatalf("tear: %v", err)
	}
	q.Close()

	q2, records, err := openQueueJournal(path)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer q2.Close()
	if len(records) != 2 || records[0].Op != "submit" || records[1].Op != "done" {
		t.Fatalf("torn reopen records = %+v, want the 2 complete ones", records)
	}
	if records[0].Req == nil || records[0].Req.Label != "torn" {
		t.Fatalf("submit record lost its request: %+v", records[0])
	}
	// And the journal must be appendable again at the truncated offset.
	if err := q2.Append(queueRecord{Op: "failed", ID: "s000002", Error: "x"}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
}
