package svc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// queueRecord is one NDJSON line of the queue journal: a submission (with its
// full request, so restart can rebuild the plan) or a terminal transition.
// Sweeps with a submit record and no terminal record are unfinished — they
// re-queue on restart, resuming from their own dist journals.
type queueRecord struct {
	Op    string         `json:"op"` // "submit" | "done" | "failed"
	ID    string         `json:"id"`
	Req   *SubmitRequest `json:"req,omitempty"`
	Error string         `json:"error,omitempty"`
}

// queueJournal is the service's durable submission log: append-only NDJSON,
// fsynced per record (a submission is acknowledged only after it is on disk),
// torn tails from a crash mid-append truncated away at open — the same
// discipline as the dist checkpoint journal.
type queueJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openQueueJournal opens (or creates) the journal at path, returning the
// records that survive validation, in order. A torn final line — a crash
// between write and sync — is truncated, never parsed.
func openQueueJournal(path string) (*queueJournal, []queueRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("svc: open queue journal: %w", err)
	}
	var records []queueRecord
	valid := int64(0)
	rd := bufio.NewReader(f)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// No trailing newline (or a read error): everything past the
			// last complete line is a torn tail.
			if err != io.EOF {
				f.Close()
				return nil, nil, fmt.Errorf("svc: read queue journal: %w", err)
			}
			break
		}
		var rec queueRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // corrupt line: truncate from here
		}
		records = append(records, rec)
		valid += int64(len(line))
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("svc: truncate queue journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &queueJournal{f: f}, records, nil
}

// Append durably writes one record: encode, write, fsync.
func (q *queueJournal) Append(rec queueRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, err := q.f.Write(b); err != nil {
		return fmt.Errorf("svc: append queue journal: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("svc: sync queue journal: %w", err)
	}
	return nil
}

func (q *queueJournal) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.f.Close()
}
