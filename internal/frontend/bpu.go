// Package frontend implements the decoupled front end: the branch-prediction
// unit (BPU) that runs ahead filling the fetch target queue, and the fetch
// engine that drains it through the L1-I, producing the uop stream the
// backend consumes.
//
// The front end genuinely walks the predicted path over the static program
// image — including down wrong paths after a misprediction — so wrong-path
// cache pollution and wrong-path prefetches behave as they would in
// hardware. Correctness is checked against the oracle stream at fetch time
// and enforced at branch resolution.
package frontend

import (
	"math"

	"fdip/internal/bpred"
	"fdip/internal/btb"
	"fdip/internal/ftq"
	"fdip/internal/isa"
)

// BPU is the branch-prediction unit: one fetch-block prediction per cycle
// into the FTQ.
type BPU struct {
	ftb  *btb.TargetBuffer
	dir  bpred.Predictor
	ras  *bpred.RAS
	q    *ftq.Queue
	pc   uint64
	seq  uint64
	next int64 // earliest cycle the BPU may predict (redirect latency)

	maxBlock int

	// Blocks counts predictions pushed; FTBMisses counts maximal
	// sequential blocks pushed on FTB misses; FullStalls counts cycles
	// lost to a full FTQ; RASUnderflows counts return predictions that
	// fell back to the FTB target.
	Blocks, FTBMisses, FullStalls, RASUnderflows uint64
}

// NewBPU wires the branch-prediction unit. maxBlock bounds sequential blocks
// predicted on FTB misses (the FTB's own length field bounds hits).
func NewBPU(ftb *btb.TargetBuffer, dir bpred.Predictor, ras *bpred.RAS, q *ftq.Queue, entryPC uint64, maxBlock int) *BPU {
	if maxBlock < 1 {
		maxBlock = 8
	}
	return &BPU{ftb: ftb, dir: dir, ras: ras, q: q, pc: entryPC, maxBlock: maxBlock}
}

// PC returns the BPU's next prediction address.
func (b *BPU) PC() uint64 { return b.pc }

// NextWork returns the earliest cycle, at or after now, at which Tick could
// change machine state: the redirect resume cycle while the BPU is quiesced
// (before it, Tick is a pure no-op), now while the FTQ has room, and
// math.MaxInt64 while the FTQ is full — a full queue only drains through
// fetch progress or a redirect, both external events the scheduler already
// tracks. (Ticks against a full queue still count full-queue stalls; the
// scheduler batches those, like every other pure per-cycle counter.)
func (b *BPU) NextWork(now int64) int64 {
	if now < b.next {
		return b.next
	}
	if b.q.Full() {
		return math.MaxInt64
	}
	return now
}

// Redirect points the BPU at pc; prediction resumes at cycle resume.
func (b *BPU) Redirect(pc uint64, resume int64) {
	b.pc = pc
	b.next = resume
}

// Reset restores the pristine just-constructed state over a (possibly new)
// program entry point: prediction restarts at entryPC on cycle 0 with the
// block sequence and counters rewound. The wired FTB, predictor, RAS, and
// FTQ are reset by their own owners.
func (b *BPU) Reset(entryPC uint64) {
	b.pc = entryPC
	b.seq = 0
	b.next = 0
	b.Blocks, b.FTBMisses, b.FullStalls, b.RASUnderflows = 0, 0, 0, 0
}

// Tick makes one fetch-block prediction into the FTQ. The block is built
// in place in the queue slot (PushSlot/CommitPush), so the per-cycle hot
// path never copies a Block.
func (b *BPU) Tick(now int64) {
	if now < b.next {
		return
	}
	if b.q.Full() {
		b.FullStalls++
		return
	}
	b.predict()
}

// RunAhead retires up to n cycles of predictions in one call — the burst
// mode behind the scheduler's idle jumps. A prediction consults only the
// FTB, direction predictor, RAS, and FTQ, none of which observe the clock,
// so n consecutive Ticks with room in the queue produce exactly the blocks
// one RunAhead(n) does, in the same order with the same table updates. The
// burst pushes until the FTQ fills (or n runs out) and books the remaining
// cycles as full-queue stalls, which is precisely what the n stepped Ticks
// would have done. It returns the number of blocks pushed; callers
// reconstruct the FTQ-occupancy trajectory from it (one push per cycle from
// the front of the window, then a plateau).
//
// RunAhead must only be called for a window in which the BPU is past its
// redirect resume point and nothing else touches the FTQ — the caller's
// scheduler proves fetch is stalled (or the stream exhausted) and no squash
// can occur.
func (b *BPU) RunAhead(n uint64) uint64 {
	var pushed uint64
	for pushed < n && !b.q.Full() {
		b.predict()
		pushed++
	}
	b.FullStalls += n - pushed
	return pushed
}

// predict makes one fetch-block prediction into the FTQ. The caller has
// already checked readiness and queue room.
func (b *BPU) predict() {
	histCP := b.dir.History()
	rasCP := b.ras.Checkpoint()

	pred, hit := b.ftb.PredictBlock(b.pc)
	blk := b.q.PushSlot() // non-nil: fullness checked above
	blk.Seq = b.seq
	blk.Start = b.pc
	blk.FTBHit = hit
	blk.HistCP = histCP
	blk.RASCP = rasCP
	b.seq++

	if !hit {
		// Unknown region: predict a maximal sequential block and keep
		// going; a hidden taken CTI will surface as a misprediction.
		blk.NumInstrs = b.maxBlock
		b.FTBMisses++
		b.q.CommitPush()
		b.Blocks++
		b.pc = blk.End()
		return
	}

	blk.NumInstrs = pred.NumInstrs
	blk.EndsInCTI = true
	blk.CTIKind = pred.CTI
	branchPC := blk.Start + uint64(pred.NumInstrs-1)*isa.InstrBytes

	switch {
	case pred.CTI == isa.CondBranch:
		blk.PredTaken = b.dir.Predict(branchPC)
		blk.PredTarget = pred.Target
	case pred.CTI.IsReturn():
		blk.PredTaken = true
		if t, ok := b.ras.Pop(); ok {
			blk.PredTarget = t
		} else {
			b.RASUnderflows++
			blk.PredTarget = pred.Target
		}
	default: // jumps and calls, direct or indirect
		blk.PredTaken = true
		blk.PredTarget = pred.Target
		if pred.CTI.IsCall() {
			b.ras.Push(branchPC + isa.InstrBytes)
		}
	}

	b.q.CommitPush()
	b.Blocks++
	if blk.PredTaken {
		b.pc = blk.PredTarget
	} else {
		b.pc = blk.End()
	}
}

// RepairAfterMispredict restores predictor history and the RAS to the state
// checkpointed with the mispredicted instruction, then re-applies the
// instruction's own architectural effect.
func (b *BPU) RepairAfterMispredict(kind isa.Kind, histCP uint64, rasCP bpred.RASCheckpoint, pc uint64, actualTaken bool) {
	if kind == isa.CondBranch {
		b.dir.Repair(histCP, actualTaken)
	} else {
		b.dir.Restore(histCP)
	}
	b.ras.Restore(rasCP)
	switch {
	case kind.IsCall():
		b.ras.Push(pc + isa.InstrBytes)
	case kind.IsReturn():
		b.ras.Pop()
	}
}
