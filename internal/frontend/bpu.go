// Package frontend implements the decoupled front end: the branch-prediction
// unit (BPU) that runs ahead filling the fetch target queue, and the fetch
// engine that drains it through the L1-I, producing the uop stream the
// backend consumes.
//
// The front end genuinely walks the predicted path over the static program
// image — including down wrong paths after a misprediction — so wrong-path
// cache pollution and wrong-path prefetches behave as they would in
// hardware. Correctness is checked against the oracle stream at fetch time
// and enforced at branch resolution.
package frontend

import (
	"fdip/internal/bpred"
	"fdip/internal/btb"
	"fdip/internal/ftq"
	"fdip/internal/isa"
)

// BPU is the branch-prediction unit: one fetch-block prediction per cycle
// into the FTQ.
type BPU struct {
	ftb  *btb.TargetBuffer
	dir  bpred.Predictor
	ras  *bpred.RAS
	q    *ftq.Queue
	pc   uint64
	seq  uint64
	next int64 // earliest cycle the BPU may predict (redirect latency)

	maxBlock int

	// Blocks counts predictions pushed; FTBMisses counts maximal
	// sequential blocks pushed on FTB misses; FullStalls counts cycles
	// lost to a full FTQ; RASUnderflows counts return predictions that
	// fell back to the FTB target.
	Blocks, FTBMisses, FullStalls, RASUnderflows uint64
}

// NewBPU wires the branch-prediction unit. maxBlock bounds sequential blocks
// predicted on FTB misses (the FTB's own length field bounds hits).
func NewBPU(ftb *btb.TargetBuffer, dir bpred.Predictor, ras *bpred.RAS, q *ftq.Queue, entryPC uint64, maxBlock int) *BPU {
	if maxBlock < 1 {
		maxBlock = 8
	}
	return &BPU{ftb: ftb, dir: dir, ras: ras, q: q, pc: entryPC, maxBlock: maxBlock}
}

// PC returns the BPU's next prediction address.
func (b *BPU) PC() uint64 { return b.pc }

// NextReady returns the earliest cycle the BPU may predict again (the
// redirect resume time). Before that cycle Tick is a pure no-op; from it on,
// the BPU predicts every cycle the FTQ has room.
func (b *BPU) NextReady() int64 { return b.next }

// Redirect points the BPU at pc; prediction resumes at cycle resume.
func (b *BPU) Redirect(pc uint64, resume int64) {
	b.pc = pc
	b.next = resume
}

// Reset restores the pristine just-constructed state over a (possibly new)
// program entry point: prediction restarts at entryPC on cycle 0 with the
// block sequence and counters rewound. The wired FTB, predictor, RAS, and
// FTQ are reset by their own owners.
func (b *BPU) Reset(entryPC uint64) {
	b.pc = entryPC
	b.seq = 0
	b.next = 0
	b.Blocks, b.FTBMisses, b.FullStalls, b.RASUnderflows = 0, 0, 0, 0
}

// Tick makes one fetch-block prediction into the FTQ. The block is built
// in place in the queue slot (PushSlot/CommitPush), so the per-cycle hot
// path never copies a Block.
func (b *BPU) Tick(now int64) {
	if now < b.next {
		return
	}
	if b.q.Full() {
		b.FullStalls++
		return
	}
	histCP := b.dir.History()
	rasCP := b.ras.Checkpoint()

	pred, hit := b.ftb.PredictBlock(b.pc)
	blk := b.q.PushSlot() // non-nil: fullness checked above
	blk.Seq = b.seq
	blk.Start = b.pc
	blk.FTBHit = hit
	blk.HistCP = histCP
	blk.RASCP = rasCP
	b.seq++

	if !hit {
		// Unknown region: predict a maximal sequential block and keep
		// going; a hidden taken CTI will surface as a misprediction.
		blk.NumInstrs = b.maxBlock
		b.FTBMisses++
		b.q.CommitPush()
		b.Blocks++
		b.pc = blk.End()
		return
	}

	blk.NumInstrs = pred.NumInstrs
	blk.EndsInCTI = true
	blk.CTIKind = pred.CTI
	branchPC := blk.Start + uint64(pred.NumInstrs-1)*isa.InstrBytes

	switch {
	case pred.CTI == isa.CondBranch:
		blk.PredTaken = b.dir.Predict(branchPC)
		blk.PredTarget = pred.Target
	case pred.CTI.IsReturn():
		blk.PredTaken = true
		if t, ok := b.ras.Pop(); ok {
			blk.PredTarget = t
		} else {
			b.RASUnderflows++
			blk.PredTarget = pred.Target
		}
	default: // jumps and calls, direct or indirect
		blk.PredTaken = true
		blk.PredTarget = pred.Target
		if pred.CTI.IsCall() {
			b.ras.Push(branchPC + isa.InstrBytes)
		}
	}

	b.q.CommitPush()
	b.Blocks++
	if blk.PredTaken {
		b.pc = blk.PredTarget
	} else {
		b.pc = blk.End()
	}
}

// RepairAfterMispredict restores predictor history and the RAS to the state
// checkpointed with the mispredicted instruction, then re-applies the
// instruction's own architectural effect.
func (b *BPU) RepairAfterMispredict(kind isa.Kind, histCP uint64, rasCP bpred.RASCheckpoint, pc uint64, actualTaken bool) {
	if kind == isa.CondBranch {
		b.dir.Repair(histCP, actualTaken)
	} else {
		b.dir.Restore(histCP)
	}
	b.ras.Restore(rasCP)
	switch {
	case kind.IsCall():
		b.ras.Push(pc + isa.InstrBytes)
	case kind.IsReturn():
		b.ras.Pop()
	}
}
