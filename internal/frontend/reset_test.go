package frontend

import (
	"testing"

	"fdip/internal/cache"
	"fdip/internal/memsys"
	"fdip/internal/oracle"
	"fdip/internal/pipe"
)

// feRig assembles a fetch engine over the BPU rig's shared structures.
type feRig struct {
	*bpuRig
	l1i  *cache.Cache
	pfb  *cache.PrefetchBuffer
	hier *memsys.Hierarchy
	ar   *pipe.Arena
	fe   *FetchEngine
}

func newFERig(t testing.TB, seed int64) *feRig {
	t.Helper()
	im := loopImage(t)
	r := &feRig{
		bpuRig: newBPURig(im.Entry, 8),
		l1i:    cache.New(cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, Repl: cache.LRU, TagPorts: 2}),
		pfb:    cache.NewPrefetchBuffer(8, 32),
		hier: memsys.New(memsys.Config{
			LineBytes: 32, L2SizeBytes: 1 << 16, L2Ways: 4,
			L2HitLatency: 8, MemLatency: 40, BusCyclesPerLine: 4,
		}),
		ar: pipe.NewArena(64),
	}
	r.fe = NewFetchEngine(im, oracle.NewWalker(im, seed), r.q, r.ar, r.l1i, r.pfb, r.hier, 4, nil)
	return r
}

// reset restores the whole rig, as the owning processor's Reset would, onto
// a new oracle stream over the same image.
func (r *feRig) reset(t testing.TB, seed int64) {
	t.Helper()
	im := loopImage(t)
	r.l1i.Reset()
	r.pfb.Reset()
	r.hier.Reset()
	r.ftb.Reset()
	r.dir.Reset()
	r.ras.Reset()
	r.q.Reset()
	r.bpu.Reset(im.Entry)
	r.ar.Reset()
	r.fe.Reset(im, oracle.NewWalker(im, seed))
}

// feTrace drives the decoupled front end for n cycles — BPU filling the FTQ,
// fetch draining it through the L1-I with misses going to the hierarchy —
// and records the delivered uop stream plus the front-end counters.
func (r *feRig) feTrace(n int64) []uint64 {
	var out []uint64
	fill := func(tr *memsys.Transfer) { r.l1i.Fill(tr.Line, tr.Prefetch) }
	for now := int64(0); now < n; now++ {
		r.hier.DrainCompleted(now, fill)
		first, cnt := r.fe.Tick(now, 8)
		for i, idx := 0, first; i < cnt; i, idx = i+1, r.ar.Next(idx) {
			u := r.ar.At(idx)
			out = append(out, u.Seq, u.PC, u.PredNextPC)
			if u.Mispredicted {
				out = append(out, uint64(u.MissKind)+1)
				// Resolve immediately: squash, train, and redirect, as
				// the core would after the backend resolves.
				r.q.Squash()
				if u.Instr.IsCTI() {
					r.ftb.TrainBlock(u.BlockStart, u.BlockLen, u.Instr.Kind, u.ActualNextPC)
				}
				r.bpu.RepairAfterMispredict(u.Instr.Kind, u.HistCP, u.RASCP, u.PC, u.ActualTaken)
				r.bpu.Redirect(u.ActualNextPC, now+2)
				r.fe.Redirect()
				break
			}
		}
		r.ar.FreeOldest(cnt) // no backend in this rig: release every slot
		r.bpu.Tick(now)
	}
	return append(out,
		r.fe.DemandAccesses, r.fe.L1Hits, r.fe.PFBHits, r.fe.FullMisses, r.fe.LateMerges,
		r.fe.Delivered, r.fe.WrongPath, r.fe.OutOfImage,
		r.fe.StallCycles, r.fe.IdleNoFTQ, r.fe.BackendFull,
		r.bpu.Blocks, r.bpu.FTBMisses, r.bpu.FullStalls, r.bpu.RASUnderflows)
}

// TestFrontendResetEqualsFresh dirties the decoupled front end (warm FTB,
// trained predictor, an in-flight demand miss), resets the whole rig, and
// requires the exact observable behaviour of a freshly constructed one.
func TestFrontendResetEqualsFresh(t *testing.T) {
	dirty := newFERig(t, 1)
	dirty.feTrace(400)
	dirty.reset(t, 2)
	got := dirty.feTrace(400)
	want := newFERig(t, 2).feTrace(400)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reset front end diverged from fresh at trace step %d: %d != %d", i, got[i], want[i])
		}
	}
}
