package frontend

import (
	"math"
	"reflect"
	"testing"

	"fdip/internal/bpred"
	"fdip/internal/btb"
	"fdip/internal/cache"
	"fdip/internal/ftq"
	"fdip/internal/isa"
	"fdip/internal/memsys"
	"fdip/internal/oracle"
	"fdip/internal/pipe"
	"fdip/internal/program"
)

// mkImage hand-builds a validated image at base 0x1000.
func mkImage(t testing.TB, code []isa.Instr, behav map[int]program.Behavior) *program.Image {
	t.Helper()
	im := &program.Image{
		Base:  0x1000,
		Code:  code,
		Behav: make([]program.Behavior, len(code)),
		Funcs: []program.Func{{Name: "f0000", Entry: 0x1000, NumInstrs: len(code)}},
		Entry: 0x1000,
	}
	for i, b := range behav {
		im.Behav[i] = b
	}
	if err := im.Validate(); err != nil {
		t.Fatalf("hand-built image invalid: %v", err)
	}
	return im
}

func alu() isa.Instr {
	return isa.Instr{Kind: isa.ALU, Dst: 1, Src1: 2, Src2: isa.NoReg}
}

// loopImage: 6 instrs; a backward loop branch at word 4 and a jump to self
// region at word 5 (so the walker never leaves the image).
//
//	0x1000 alu
//	0x1004 alu
//	0x1008 alu
//	0x100c alu
//	0x1010 bcond -> 0x1000 (loop, trip ~4)
//	0x1014 jump  -> 0x1000
func loopImage(t testing.TB) *program.Image {
	code := []isa.Instr{
		alu(), alu(), alu(), alu(),
		{Kind: isa.CondBranch, Target: 0x1000},
		{Kind: isa.Jump, Target: 0x1000},
	}
	return mkImage(t, code, map[int]program.Behavior{
		4: {Model: program.ModelLoop, MeanTrip: 4},
	})
}

type bpuRig struct {
	ftb *btb.TargetBuffer
	dir bpred.Predictor
	ras *bpred.RAS
	q   *ftq.Queue
	bpu *BPU
}

func newBPURig(entry uint64, ftqCap int) *bpuRig {
	r := &bpuRig{
		ftb: btb.New(btb.Config{Sets: 64, Ways: 4, BlockOriented: true, MaxBlockInstrs: 8, AddrBits: 48}),
		dir: bpred.NewHybrid(1024, 8),
		ras: bpred.NewRAS(8),
		q:   ftq.New(ftqCap, 32),
	}
	r.bpu = NewBPU(r.ftb, r.dir, r.ras, r.q, entry, 8)
	return r
}

func TestBPUSequentialOnFTBMiss(t *testing.T) {
	r := newBPURig(0x1000, 4)
	r.bpu.Tick(0)
	r.bpu.Tick(1)
	if r.q.Len() != 2 {
		t.Fatalf("FTQ len = %d", r.q.Len())
	}
	b0, b1 := r.q.At(0), r.q.At(1)
	if b0.Start != 0x1000 || b0.NumInstrs != 8 || b0.EndsInCTI {
		t.Errorf("block0 = %+v", b0)
	}
	if b1.Start != 0x1000+8*4 {
		t.Errorf("block1 start = %#x", b1.Start)
	}
	if r.bpu.FTBMisses != 2 {
		t.Errorf("FTBMisses = %d", r.bpu.FTBMisses)
	}
}

func TestBPUFollowsTakenPrediction(t *testing.T) {
	r := newBPURig(0x1000, 4)
	// Train: block at 0x1000, 3 instrs, ends in jump to 0x2000.
	r.ftb.TrainBlock(0x1000, 3, isa.Jump, 0x2000)
	r.bpu.Tick(0)
	b := r.q.At(0)
	if !b.EndsInCTI || b.CTIKind != isa.Jump || !b.PredTaken || b.PredTarget != 0x2000 {
		t.Fatalf("block = %+v", b)
	}
	if r.bpu.PC() != 0x2000 {
		t.Errorf("BPU PC = %#x, want 0x2000", r.bpu.PC())
	}
}

func TestBPUConditionalUsesDirectionPredictor(t *testing.T) {
	r := newBPURig(0x1000, 16)
	r.ftb.TrainBlock(0x1000, 2, isa.CondBranch, 0x3000)
	// Train the predictor strongly not-taken for the branch at 0x1004.
	for i := 0; i < 8; i++ {
		r.dir.Commit(0x1004, 0, false)
	}
	r.bpu.Tick(0)
	b := r.q.At(0)
	if b.PredTaken {
		t.Fatal("predicted taken against trained bias")
	}
	if r.bpu.PC() != 0x1008 {
		t.Errorf("fall-through PC = %#x", r.bpu.PC())
	}
}

func TestBPUCallPushesAndReturnPops(t *testing.T) {
	r := newBPURig(0x1000, 16)
	// Call block: 0x1000..0x1004 (2 instrs), call at 0x1004 -> 0x5000.
	r.ftb.TrainBlock(0x1000, 2, isa.Call, 0x5000)
	// Return block at 0x5000, 1 instr.
	r.ftb.TrainBlock(0x5000, 1, isa.Ret, 0)
	r.bpu.Tick(0)
	if r.ras.Depth() != 1 {
		t.Fatalf("RAS depth = %d after call", r.ras.Depth())
	}
	r.bpu.Tick(1)
	b := r.q.At(1)
	if b.CTIKind != isa.Ret || b.PredTarget != 0x1008 {
		t.Fatalf("return block = %+v (want target 0x1008)", b)
	}
	if r.ras.Depth() != 0 {
		t.Errorf("RAS depth = %d after return", r.ras.Depth())
	}
}

func TestBPUReturnUnderflowFallsBack(t *testing.T) {
	r := newBPURig(0x5000, 16)
	r.ftb.TrainBlock(0x5000, 1, isa.Ret, 0x7777<<2)
	r.bpu.Tick(0)
	if r.bpu.RASUnderflows != 1 {
		t.Errorf("RASUnderflows = %d", r.bpu.RASUnderflows)
	}
	if got := r.q.At(0).PredTarget; got != 0x7777<<2 {
		t.Errorf("fallback target = %#x", got)
	}
}

func TestBPUFTQFullStall(t *testing.T) {
	r := newBPURig(0x1000, 2)
	for i := int64(0); i < 5; i++ {
		r.bpu.Tick(i)
	}
	if r.q.Len() != 2 {
		t.Errorf("FTQ len = %d", r.q.Len())
	}
	if r.bpu.FullStalls != 3 {
		t.Errorf("FullStalls = %d", r.bpu.FullStalls)
	}
}

func TestBPURedirectWaitsForResume(t *testing.T) {
	r := newBPURig(0x1000, 8)
	r.bpu.Redirect(0x9000, 5)
	r.bpu.Tick(3) // before resume
	if r.q.Len() != 0 {
		t.Fatal("BPU predicted during redirect latency")
	}
	r.bpu.Tick(5)
	if r.q.Len() != 1 || r.q.At(0).Start != 0x9000 {
		t.Fatalf("after resume: len=%d", r.q.Len())
	}
}

func TestBPURepairAfterMispredict(t *testing.T) {
	r := newBPURig(0x1000, 8)
	histBefore := r.dir.History()
	rasBefore := r.ras.Checkpoint()
	// Simulate wrong-path damage.
	r.dir.Predict(0x1004)
	r.dir.Predict(0x1008)
	r.ras.Push(0xbad0)
	r.ras.Push(0xbad4)
	// Repair for a mispredicted call at 0x2000.
	r.bpu.RepairAfterMispredict(isa.Call, histBefore, rasBefore, 0x2000, true)
	if r.ras.Depth() != 1 {
		t.Fatalf("RAS depth = %d, want 1 (repaired + call push)", r.ras.Depth())
	}
	if top, _ := r.ras.Top(); top != 0x2004 {
		t.Errorf("RAS top = %#x, want 0x2004", top)
	}
	// Repair for a mispredicted conditional shifts actual outcome in.
	r.bpu.RepairAfterMispredict(isa.CondBranch, 0, bpred.RASCheckpoint{}, 0x3000, true)
	if got := r.dir.History(); got != 1 {
		t.Errorf("history after conditional repair = %#x, want 1", got)
	}
}

// fetchRig wires a full front end over an image.
type fetchRig struct {
	im   *program.Image
	l1i  *cache.Cache
	pfb  *cache.PrefetchBuffer
	hier *memsys.Hierarchy
	q    *ftq.Queue
	ar   *pipe.Arena
	bpu  *bpuRig
	fe   *FetchEngine
}

func newFetchRig(t testing.TB, im *program.Image, pred bpred.Predictor) *fetchRig {
	r := &fetchRig{im: im}
	r.l1i = cache.New(cache.Config{SizeBytes: 2048, Ways: 2, LineBytes: 32, Repl: cache.LRU, TagPorts: 2})
	r.pfb = cache.NewPrefetchBuffer(8, 32)
	r.hier = memsys.New(memsys.Config{LineBytes: 32, L2SizeBytes: 1 << 16, L2Ways: 4, L2HitLatency: 6, MemLatency: 20, BusCyclesPerLine: 2})
	r.ar = pipe.NewArena(64)
	r.bpu = newBPURig(im.Entry, 8)
	if pred != nil {
		r.bpu.dir = pred
		r.bpu.bpu = NewBPU(r.bpu.ftb, pred, r.bpu.ras, r.bpu.q, im.Entry, 8)
	}
	r.q = r.bpu.q
	r.fe = NewFetchEngine(im, oracle.NewWalker(im, 3), r.q, r.ar, r.l1i, r.pfb, r.hier, 4, nil)
	return r
}

// drain copies out the delivered range and releases its arena slots — this
// rig has no backend to commit (and thereby free) them.
func (r *fetchRig) drain(first uint32, n int) []uopLite {
	out := make([]uopLite, 0, n)
	idx := first
	for i := 0; i < n; i++ {
		u := r.ar.At(idx)
		out = append(out, uopLite{pc: u.PC, correct: u.OnCorrectPath, mis: u.Mispredicted})
		idx = r.ar.Next(idx)
	}
	r.ar.FreeOldest(n)
	return out
}

// tick runs one fetch cycle and returns the delivered count, releasing the
// slots.
func (r *fetchRig) tick(now int64, accept int) int {
	first, n := r.fe.Tick(now, accept)
	r.drain(first, n)
	return n
}

// step advances BPU + completions + fetch one cycle, collecting uops.
func (r *fetchRig) step(now int64) []uopLite {
	for _, tr := range r.hier.CompletedBy(now) {
		if tr.Prefetch && !tr.DemandMerged {
			r.pfb.Insert(tr.Line)
		} else {
			r.l1i.Fill(tr.Line, tr.Prefetch)
		}
	}
	first, n := r.fe.Tick(now, 16)
	r.bpu.bpu.Tick(now)
	return r.drain(first, n)
}

type uopLite struct {
	pc      uint64
	correct bool
	mis     bool
}

func TestFetchDeliversOracleOrder(t *testing.T) {
	im := loopImage(t)
	rig := newFetchRig(t, im, nil)
	ref := oracle.NewWalker(im, 3)

	var delivered []uopLite
	for now := int64(0); now < 3000 && len(delivered) < 500; now++ {
		delivered = append(delivered, rig.step(now)...)
		// This rig never redirects (no backend); stop at the first
		// mispredict since everything after is wrong-path.
		for i, u := range delivered {
			if u.mis {
				delivered = delivered[:i+1]
				now = 1 << 40
				break
			}
		}
	}
	if len(delivered) == 0 {
		t.Fatal("nothing delivered")
	}
	for i, u := range delivered {
		if !u.correct {
			t.Fatalf("uop %d wrong-path before first mispredict", i)
		}
		rec, _ := ref.Next()
		if u.pc != rec.PC {
			t.Fatalf("uop %d: pc %#x, oracle %#x", i, u.pc, rec.PC)
		}
	}
}

func TestFetchStallsOnMissThenResumes(t *testing.T) {
	im := loopImage(t)
	rig := newFetchRig(t, im, nil)
	rig.bpu.bpu.Tick(0) // prime FTQ

	if got := rig.tick(1, 16); got != 0 {
		t.Fatalf("delivered %d uops through a cold cache", got)
	}
	if rig.fe.FullMisses != 1 {
		t.Fatalf("FullMisses = %d", rig.fe.FullMisses)
	}
	// Latency: bus 2 + L2 6 + mem 20 = 28 cycles. Fill + fetch at 29.
	var uops []uopLite
	for now := int64(2); now < 40; now++ {
		uops = append(uops, rig.step(now)...)
	}
	if len(uops) == 0 {
		t.Fatal("never resumed after miss")
	}
	if rig.fe.StallCycles == 0 {
		t.Error("no stall cycles counted")
	}
}

func TestFetchPFBHitMovesLineToL1(t *testing.T) {
	im := loopImage(t)
	rig := newFetchRig(t, im, nil)
	rig.pfb.Insert(0x1000)
	rig.bpu.bpu.Tick(0)
	if got := rig.tick(1, 16); got == 0 {
		t.Fatal("PFB hit did not deliver")
	}
	if rig.fe.PFBHits != 1 {
		t.Errorf("PFBHits = %d", rig.fe.PFBHits)
	}
	if !rig.l1i.Contains(0x1000) {
		t.Error("line not moved into L1-I")
	}
	if rig.pfb.Contains(0x1000) {
		t.Error("line still in prefetch buffer")
	}
}

func TestFetchWrongPathAfterMispredict(t *testing.T) {
	im := loopImage(t)
	// Static not-taken predictor: the loop branch (taken ~4x) mispredicts
	// immediately once the FTB knows the block.
	rig := newFetchRig(t, im, &bpred.Static{})
	rig.bpu.ftb.TrainBlock(0x1000, 5, isa.CondBranch, 0x1000)

	var all []uopLite
	for now := int64(0); now < 200; now++ {
		all = append(all, rig.step(now)...)
	}
	misAt := -1
	for i, u := range all {
		if u.mis {
			misAt = i
			break
		}
	}
	if misAt < 0 {
		t.Fatal("no mispredict observed")
	}
	for i := misAt + 1; i < len(all); i++ {
		if all[i].correct {
			t.Fatalf("uop %d on correct path after unresolved mispredict", i)
		}
	}
	if rig.fe.WrongPath == 0 {
		t.Error("WrongPath counter zero")
	}
	// Redirect: correct-path tagging resumes.
	rig.fe.Redirect()
	if rig.fe.Exhausted() {
		t.Error("exhausted after redirect")
	}
}

func TestFetchBackendFullBackpressure(t *testing.T) {
	im := loopImage(t)
	rig := newFetchRig(t, im, nil)
	rig.l1i.Fill(0x1000, false)
	rig.bpu.bpu.Tick(0)
	if got := rig.tick(1, 0); got != 0 {
		t.Fatalf("delivered %d uops with zero accept", got)
	}
	if rig.fe.BackendFull != 1 {
		t.Errorf("BackendFull = %d", rig.fe.BackendFull)
	}
	// accept=2 limits the delivery burst.
	if got := rig.tick(2, 2); got > 2 {
		t.Errorf("delivered %d uops with accept=2", got)
	}
}

func TestFetchIdleWithoutFTQ(t *testing.T) {
	im := loopImage(t)
	rig := newFetchRig(t, im, nil)
	rig.tick(0, 16)
	if rig.fe.IdleNoFTQ != 1 {
		t.Errorf("IdleNoFTQ = %d", rig.fe.IdleNoFTQ)
	}
}

func TestClassifyMiss(t *testing.T) {
	cases := []struct {
		kind        isa.Kind
		predicted   bool
		predTaken   bool
		actualTaken bool
		want        pipe.MispredictKind
	}{
		{isa.CondBranch, true, false, true, pipe.MissDirection},
		{isa.CondBranch, true, true, false, pipe.MissDirection},
		{isa.CondBranch, false, false, true, pipe.MissUnseenCTI},
		{isa.Ret, true, true, true, pipe.MissReturn},
		{isa.IndirectJump, true, true, true, pipe.MissTarget},
		{isa.Jump, false, false, true, pipe.MissUnseenCTI},
		{isa.ALU, false, false, false, pipe.MissUnseenCTI},
	}
	for i, c := range cases {
		got := classifyMiss(c.kind, c.predicted, c.predTaken, c.actualTaken)
		if got != c.want {
			t.Errorf("case %d (%v): got %v, want %v", i, c.kind, got, c.want)
		}
	}
}

// trainRunAheadRig seeds a rig's FTB with a small call/branch/return flow so
// run-ahead exercises every prediction path: the conditional-branch
// direction predictor, a call (RAS push), a return (RAS pop), and FTB
// misses on the maximal-sequential fallback in between.
func trainRunAheadRig(r *bpuRig) {
	r.ftb.TrainBlock(0x1000, 4, isa.CondBranch, 0x2000)
	r.ftb.TrainBlock(0x2000, 2, isa.Call, 0x3000)
	r.ftb.TrainBlock(0x3000, 3, isa.Ret, 0x9000)
}

// TestBPURunAheadMatchesTicks is the burst mode's bit-identity contract:
// RunAhead(n) must leave the BPU, FTQ, predictor tables, and RAS in exactly
// the state n per-cycle Ticks with queue room produce — including the
// full-queue stalls counted once the queue fills mid-burst.
func TestBPURunAheadMatchesTicks(t *testing.T) {
	for _, n := range []uint64{1, 3, 7, 20} {
		stepped := newBPURig(0x1000, 8)
		trainRunAheadRig(stepped)
		burst := newBPURig(0x1000, 8)
		trainRunAheadRig(burst)

		for i := int64(0); i < int64(n); i++ {
			stepped.bpu.Tick(i)
		}
		if pushed := burst.bpu.RunAhead(n); pushed != min(n, 8) {
			t.Fatalf("n=%d: RunAhead pushed %d, want %d", n, pushed, min(n, 8))
		}

		if stepped.bpu.PC() != burst.bpu.PC() {
			t.Errorf("n=%d: pc %#x vs %#x", n, stepped.bpu.PC(), burst.bpu.PC())
		}
		if stepped.bpu.Blocks != burst.bpu.Blocks ||
			stepped.bpu.FTBMisses != burst.bpu.FTBMisses ||
			stepped.bpu.FullStalls != burst.bpu.FullStalls ||
			stepped.bpu.RASUnderflows != burst.bpu.RASUnderflows {
			t.Errorf("n=%d: counters diverged: stepped %+v burst %+v", n, *stepped.bpu, *burst.bpu)
		}
		if stepped.q.Len() != burst.q.Len() {
			t.Fatalf("n=%d: queue length %d vs %d", n, stepped.q.Len(), burst.q.Len())
		}
		for i := 0; i < stepped.q.Len(); i++ {
			a, b := stepped.q.At(i), burst.q.At(i)
			if !reflect.DeepEqual(*a, *b) {
				t.Errorf("n=%d: block %d diverged:\nstepped: %+v\nburst:   %+v", n, i, *a, *b)
			}
		}
		if stepped.ras.Checkpoint() != burst.ras.Checkpoint() {
			t.Errorf("n=%d: RAS checkpoints diverged", n)
		}
		if stepped.dir.History() != burst.dir.History() {
			t.Errorf("n=%d: predictor history diverged", n)
		}
	}
}

// TestBPUNextWork pins the scheduler-facing contract: resume cycle while
// quiesced, "now" with queue room, never while the queue is full.
func TestBPUNextWork(t *testing.T) {
	r := newBPURig(0x1000, 2)
	if got := r.bpu.NextWork(0); got != 0 {
		t.Errorf("ready with room: NextWork = %d, want 0", got)
	}
	r.bpu.Redirect(0x1000, 5)
	if got := r.bpu.NextWork(0); got != 5 {
		t.Errorf("quiesced: NextWork = %d, want resume cycle 5", got)
	}
	if got := r.bpu.NextWork(6); got != 6 {
		t.Errorf("past resume: NextWork = %d, want 6", got)
	}
	if pushed := r.bpu.RunAhead(5); pushed != 2 {
		t.Fatalf("RunAhead into 2-entry queue pushed %d", pushed)
	}
	if got := r.bpu.NextWork(6); got != math.MaxInt64 {
		t.Errorf("full queue: NextWork = %d, want MaxInt64", got)
	}
}
