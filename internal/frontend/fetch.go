package frontend

import (
	"fmt"

	"fdip/internal/cache"
	"fdip/internal/ftq"
	"fdip/internal/isa"
	"fdip/internal/memsys"
	"fdip/internal/oracle"
	"fdip/internal/pipe"
	"fdip/internal/program"
)

// NotifyFunc reports each demand L1-I access to the prefetcher: the line,
// whether it hit the cache, and whether it was served by the prefetch
// buffer.
type NotifyFunc func(line uint64, l1Hit, pfbHit bool, now int64)

// FetchEngine drains the FTQ head through the L1-I, producing tagged uops.
// Each delivered instruction is written exactly once, into a slot of the
// shared uop arena (owned by the backend, which sizes it to max in-flight);
// Tick hands the backend a contiguous (first, n) arena range instead of a
// buffer of uop values.
type FetchEngine struct {
	im     *program.Image
	stream oracle.Stream
	q      *ftq.Queue
	ar     *pipe.Arena
	l1i    *cache.Cache
	pfb    *cache.PrefetchBuffer
	hier   *memsys.Hierarchy
	width  int
	notify NotifyFunc

	stalled    bool
	stallUntil int64
	perfect    bool

	diverged  bool
	seq       uint64
	cur       oracle.Record
	exhausted bool
	// nextInto is the stream's copy-free advance, when it offers one.
	nextInto func(*oracle.Record) bool
	// sched caches each static instruction's packed scheduler word
	// (isa.Instr.SchedPack), indexed by word index. The pack is a pure
	// function of the static instruction, so deriving it per delivered uop
	// paid the operand remap and latency lookup once per dynamic instance;
	// the table turns that into one load. Rebuilt on Reset (the image may
	// change under a pooled machine).
	sched []uint32

	// DemandAccesses counts L1-I demand lookups; L1Hits and PFBHits their
	// outcomes; FullMisses lookups that went to the L2 (LateMerges of
	// those caught an in-flight prefetch). Delivered counts uops handed to
	// the backend (WrongPath of them down a mispredicted path, OutOfImage
	// of those past the code image). StallCycles counts cycles blocked on
	// a demand miss, IdleNoFTQ cycles with an empty FTQ, BackendFull
	// cycles with no decode capacity.
	DemandAccesses, L1Hits, PFBHits, FullMisses, LateMerges uint64
	Delivered, WrongPath, OutOfImage                        uint64
	StallCycles, IdleNoFTQ, BackendFull                     uint64
}

// NewFetchEngine builds a fetch engine delivering up to width instructions
// per cycle into arena ar (the backend's, see backend.Arena). notify may be
// nil.
func NewFetchEngine(im *program.Image, stream oracle.Stream, q *ftq.Queue, ar *pipe.Arena, l1i *cache.Cache,
	pfb *cache.PrefetchBuffer, hier *memsys.Hierarchy, width int, notify NotifyFunc) *FetchEngine {
	return newFetchEngine(im, stream, q, ar, l1i, pfb, hier, width, notify, false)
}

// NewPerfectFetchEngine builds a fetch engine whose every demand access hits
// — the no-front-end-stall upper bound used by the evaluation.
func NewPerfectFetchEngine(im *program.Image, stream oracle.Stream, q *ftq.Queue, ar *pipe.Arena, l1i *cache.Cache,
	pfb *cache.PrefetchBuffer, hier *memsys.Hierarchy, width int, notify NotifyFunc) *FetchEngine {
	return newFetchEngine(im, stream, q, ar, l1i, pfb, hier, width, notify, true)
}

func newFetchEngine(im *program.Image, stream oracle.Stream, q *ftq.Queue, ar *pipe.Arena, l1i *cache.Cache,
	pfb *cache.PrefetchBuffer, hier *memsys.Hierarchy, width int, notify NotifyFunc, perfect bool) *FetchEngine {
	if width < 1 {
		width = 4
	}
	f := &FetchEngine{
		im: im, stream: stream, q: q, ar: ar, l1i: l1i, pfb: pfb, hier: hier,
		width: width, notify: notify, perfect: perfect,
	}
	if is, ok := stream.(interface{ NextInto(*oracle.Record) bool }); ok {
		f.nextInto = is.NextInto
	}
	f.rebuildSched()
	f.advance()
	return f
}

// rebuildSched refreshes the packed-scheduler-word cache for the current
// image, reusing the backing array when capacity allows (Reset on a pooled
// machine must not allocate in steady state).
func (f *FetchEngine) rebuildSched() {
	code := f.im.Code
	if cap(f.sched) < len(code) {
		f.sched = make([]uint32, len(code))
	} else {
		f.sched = f.sched[:len(code)]
	}
	for i := range code {
		f.sched[i] = code[i].SchedPack()
	}
}

// advance pulls the next oracle record into f.cur, using the stream's
// copy-free path when it has one.
func (f *FetchEngine) advance() {
	if f.nextInto != nil {
		f.exhausted = !f.nextInto(&f.cur)
		return
	}
	rec, ok := f.stream.Next()
	f.cur, f.exhausted = rec, !ok
}

// Exhausted reports whether the oracle stream ended (trace replay only).
func (f *FetchEngine) Exhausted() bool { return f.exhausted }

// Reset restores the pristine just-constructed state over a (possibly
// different) program image and oracle stream: no stall, no divergence,
// sequence numbers and counters rewound, and the first oracle record pulled
// — exactly what newFetchEngine leaves behind. The wired FTQ, caches, and
// hierarchy are reset by their own owners; width, perfect mode, and the
// prefetch notify hook are configuration, so they persist.
func (f *FetchEngine) Reset(im *program.Image, stream oracle.Stream) {
	f.im = im
	f.stream = stream
	f.nextInto = nil
	if is, ok := stream.(interface{ NextInto(*oracle.Record) bool }); ok {
		f.nextInto = is.NextInto
	}
	f.stalled = false
	f.stallUntil = 0
	f.diverged = false
	f.seq = 0
	f.cur = oracle.Record{}
	f.exhausted = false
	f.DemandAccesses, f.L1Hits, f.PFBHits, f.FullMisses, f.LateMerges = 0, 0, 0, 0, 0
	f.Delivered, f.WrongPath, f.OutOfImage = 0, 0, 0
	f.StallCycles, f.IdleNoFTQ, f.BackendFull = 0, 0, 0
	f.rebuildSched()
	f.advance()
}

// StallEvent reports whether fetch is blocked on an outstanding demand miss,
// and the cycle the stall lifts. The core's cycle-skip scheduler uses it:
// while stalled, Tick only counts stall cycles until that cycle arrives.
func (f *FetchEngine) StallEvent() (until int64, stalled bool) {
	return f.stallUntil, f.stalled
}

// Seq returns the next uop sequence number.
func (f *FetchEngine) Seq() uint64 { return f.seq }

// Redirect clears misprediction state after a resolve: the wrong path ends,
// any demand-miss stall belongs to squashed work, and fetch resumes at the
// new FTQ content. (An in-flight wrong-path transfer still completes and
// fills the cache — realistic pollution.)
func (f *FetchEngine) Redirect() {
	f.diverged = false
	f.stalled = false
}

// Tick fetches from the FTQ head, writing each delivered instruction once
// into a freshly allocated arena slot, and returns the contiguous range
// (first, n) delivered this cycle — n is zero most cycles a miss is
// outstanding — never exceeding accept, the backend's remaining decode
// capacity. The arena's backpressure is exactly accept (pipe capacity) plus
// ROB occupancy, both bounded, so allocation never overflows and the hot
// path never copies a uop.
func (f *FetchEngine) Tick(now int64, accept int) (first uint32, n int) {
	if f.exhausted {
		return 0, 0
	}
	if f.stalled {
		if now < f.stallUntil {
			f.StallCycles++
			return 0, 0
		}
		f.stalled = false
	}
	if accept <= 0 {
		f.BackendFull++
		return 0, 0
	}
	b := f.q.Head()
	if b == nil {
		f.IdleNoFTQ++
		return 0, 0
	}
	pc := b.NextFetchPC()
	line := f.l1i.LineAddr(pc)

	// Demand access: one tag port, one line per cycle.
	f.l1i.TryUsePort(now)
	f.DemandAccesses++
	switch {
	case f.perfect:
		f.L1Hits++
		if f.notify != nil {
			f.notify(line, true, false, now)
		}
	case f.l1i.Access(pc):
		f.L1Hits++
		if f.notify != nil {
			f.notify(line, true, false, now)
		}
	case f.pfb.Take(line):
		// Prefetch buffer hit: move the line into the L1-I and fetch
		// through in the same cycle.
		f.PFBHits++
		f.l1i.Fill(line, true)
		if f.notify != nil {
			f.notify(line, false, true, now)
		}
	default:
		tr := f.hier.Request(line, false, now)
		f.FullMisses++
		if tr.Prefetch {
			f.LateMerges++
		}
		f.stalled = true
		f.stallUntil = tr.Done
		if f.notify != nil {
			f.notify(line, false, false, now)
		}
		return 0, 0
	}

	// Deliver instructions from this line, bounded by fetch width, block
	// end, line end, and backend capacity. Each slot is written once (every
	// field is assigned, so the recycled slot needs no zeroing) and never
	// copied again.
	//
	// Block prologue: every delivery this call comes from the head block,
	// so the values that steer the per-instruction control flow — the
	// cursor, the terminator distance, the predicted-taken terminator
	// test — are computed from the block once, here. The block-invariant
	// pass-through fields (start, FTB provenance, checkpoints) are copied
	// per slot straight from the block record instead of from hoisted
	// locals: b is one live register across the loop's calls where the
	// locals were five, and the spill/reload traffic around the oracle
	// advance measurably outweighed the re-loads they saved.
	blockLen := b.FetchedInstrs
	termLen := b.NumInstrs // the terminator is the block's last instruction
	takenTerm := b.EndsInCTI && b.PredTaken
	for n < f.width && n < accept && blockLen < termLen {
		if f.l1i.LineAddr(pc) != line {
			break
		}
		idx, u := f.ar.Alloc()
		if n == 0 {
			first = idx
		}
		u.Seq = f.seq
		u.PC = pc
		u.FetchCycle = now
		u.BlockStart = b.Start
		blockLen++
		u.BlockLen = blockLen
		u.FTBHit = b.FTBHit
		u.HistCP = b.HistCP
		u.RASCP = b.RASCP
		isTerminator := blockLen == termLen
		if isTerminator && takenTerm {
			u.PredNextPC = b.PredTarget
		} else {
			u.PredNextPC = pc + isa.InstrBytes
		}
		if rec := &f.cur; !f.diverged && !f.exhausted && rec.PC == pc {
			// Correct path: the oracle already decoded this instruction,
			// and its record is read in place (advance overwrites it only
			// after the last use). This arm handles nearly every fetched
			// instruction, so it stays inline in the delivery loop — the
			// cold cases (wrong path, image end, replay end) share one
			// out-of-line call below.
			u.Instr = rec.Instr
			// Correct-path PCs are always in-image, so the static sched
			// cache covers them.
			u.Sched = f.sched[isa.WordIndex(pc, f.im.Base)]
			u.OnCorrectPath = true
			u.ActualTaken = rec.Taken
			u.ActualNextPC = rec.NextPC
			u.Mispredicted = false
			u.MissKind = pipe.MissNone
			if u.PredNextPC != rec.NextPC {
				u.Mispredicted = true
				u.MissKind = classifyMiss(rec.Instr.Kind, isTerminator && b.EndsInCTI, b.PredTaken, rec.Taken)
				f.diverged = true
			}
			f.advance()
			f.seq++
		} else if f.tagSlow(pc, u) {
			// Oracle stream ended mid-slot: roll the unfinished
			// allocation back and stop (replay end — the head block
			// stays put and Delivered excludes this cycle by design;
			// FetchedInstrs keeps its pre-iteration value).
			f.ar.FreeNewest(1)
			return first, n
		}
		n++
		pc += isa.InstrBytes
	}
	b.FetchedInstrs = blockLen
	if b.Done() {
		f.q.PopHead()
	}
	f.Delivered += uint64(n)
	return first, n
}

// tagSlow fills the per-instruction remainder of u on the cold paths the
// delivery loop's inline correct-path arm excludes: wrong-path fetch,
// fetch past the code image, and oracle-stream exhaustion. Every remaining
// field is assigned, so the arena slot needs no prior zeroing. stop is true
// when the oracle stream is exhausted (trace replay end).
func (f *FetchEngine) tagSlow(pc uint64, u *pipe.Uop) (stop bool) {
	u.OnCorrectPath = false
	u.ActualTaken = false
	u.ActualNextPC = 0
	u.Mispredicted = false
	u.MissKind = pipe.MissNone
	var ins isa.Instr
	if decoded, ok := f.im.InstrAt(pc); ok {
		ins = decoded
	} else {
		// Wrong-path fetch ran past the code image; hardware would fetch
		// garbage, we deliver phantom nops until the redirect arrives.
		ins = isa.Instr{Kind: isa.Nop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
		f.OutOfImage++
	}
	u.Instr = ins
	u.Sched = ins.SchedPack()

	if f.diverged {
		f.WrongPath++
		f.seq++
		return false
	}

	if f.exhausted {
		return true
	}
	panic(fmt.Sprintf("frontend: correct-path fetch at %#x but oracle expects %#x", pc, f.cur.PC))
}

// classifyMiss names the misprediction cause.
func classifyMiss(kind isa.Kind, predicted, predTaken, actualTaken bool) pipe.MispredictKind {
	if !kind.IsCTI() {
		// A non-CTI can only diverge if the block prediction was broken;
		// treat it as an unseen-CTI-class front-end error.
		return pipe.MissUnseenCTI
	}
	if !predicted {
		return pipe.MissUnseenCTI
	}
	switch {
	case kind == isa.CondBranch && predTaken != actualTaken:
		return pipe.MissDirection
	case kind.IsReturn():
		return pipe.MissReturn
	default:
		return pipe.MissTarget
	}
}
