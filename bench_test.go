// Benchmark harness: one testing.B per reconstructed table/figure of the
// paper's evaluation (experiments E1..E11, see DESIGN.md §4). Each benchmark
// regenerates its table and reports headline metrics; the full tables print
// on the first iteration.
//
// The per-point instruction budget defaults to 200k so `go test -bench=.`
// finishes in minutes; set FDIP_BENCH_INSTRS to raise it for
// publication-quality numbers (cmd/fdipbench is the stand-alone runner).
package fdip

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"fdip/internal/experiments"
	"fdip/internal/oracle"
	"fdip/internal/program"
	"fdip/internal/stats"
)

func benchInstrs() uint64 {
	if s := os.Getenv("FDIP_BENCH_INSTRS"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 200_000
}

func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{Instrs: benchInstrs()})
}

// runExperiment executes fn once per iteration, printing the table on the
// first and reporting rows as a sanity metric.
func runExperiment(b *testing.B, fn func(r *experiments.Runner) *stats.Table) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		r := newRunner()
		t := fn(r)
		rows = t.NumRows()
		if i == 0 {
			fmt.Printf("\n%s\n", t)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkE1Characterization regenerates the workload characterisation
// table (footprints, baseline miss rates, branch behaviour).
func BenchmarkE1Characterization(b *testing.B) {
	runExperiment(b, experiments.E1Characterization)
}

// BenchmarkE2SpeedupSmallCache regenerates the headline speedup comparison
// (FDP vs next-line vs stream buffers) at a 16KB L1-I.
func BenchmarkE2SpeedupSmallCache(b *testing.B) {
	runExperiment(b, experiments.E2SpeedupSmallCache)
}

// BenchmarkE3SpeedupLargeCache regenerates the 32KB L1-I comparison.
func BenchmarkE3SpeedupLargeCache(b *testing.B) {
	runExperiment(b, experiments.E3SpeedupLargeCache)
}

// BenchmarkE4BusUtilization regenerates the bus-utilisation comparison.
func BenchmarkE4BusUtilization(b *testing.B) {
	runExperiment(b, experiments.E4BusUtilization)
}

// BenchmarkE5CacheProbeFiltering regenerates the filtering-policy study.
func BenchmarkE5CacheProbeFiltering(b *testing.B) {
	runExperiment(b, experiments.E5CacheProbeFiltering)
}

// BenchmarkE6FTQSweep regenerates the FTQ-depth sensitivity figure.
func BenchmarkE6FTQSweep(b *testing.B) {
	runExperiment(b, experiments.E6FTQSweep)
}

// BenchmarkE7PrefetchBufferSweep regenerates the prefetch-buffer sizing
// figure.
func BenchmarkE7PrefetchBufferSweep(b *testing.B) {
	runExperiment(b, experiments.E7PrefetchBufferSweep)
}

// BenchmarkE8LatencySensitivity regenerates the memory-latency sensitivity
// figure.
func BenchmarkE8LatencySensitivity(b *testing.B) {
	runExperiment(b, experiments.E8LatencySensitivity)
}

// BenchmarkE9CoverageAccuracy regenerates the coverage/accuracy table.
func BenchmarkE9CoverageAccuracy(b *testing.B) {
	runExperiment(b, experiments.E9CoverageAccuracy)
}

// BenchmarkE10FTBSweep regenerates the FTB-reach ablation.
func BenchmarkE10FTBSweep(b *testing.B) {
	runExperiment(b, experiments.E10FTBSweep)
}

// BenchmarkE11PredictorAblation regenerates the predictor/BTB-organisation
// ablation.
func BenchmarkE11PredictorAblation(b *testing.B) {
	runExperiment(b, experiments.E11Ablation)
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (cycles/second) of the default machine with FDP enabled — the cost of one
// experimental point.
func BenchmarkSimulatorThroughput(b *testing.B) {
	params := program.DefaultParams()
	params.NumFuncs = 300
	im := program.MustGenerate(params)
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.CPF = CPFConservative
	cfg.MaxInstrs = 1 << 62
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(cfg, im, 5)
		if err != nil {
			b.Fatal(err)
		}
		sim.StepN(100_000)
		cycles += sim.Cycle()
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkOracleWalker measures ground-truth execution speed.
func BenchmarkOracleWalker(b *testing.B) {
	params := program.DefaultParams()
	params.NumFuncs = 300
	im := program.MustGenerate(params)
	w := oracle.NewWalker(im, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// BenchmarkTraceRoundTrip measures trace encode+decode per instruction.
func BenchmarkTraceRoundTrip(b *testing.B) {
	params := program.DefaultParams()
	params.NumFuncs = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var n uint64 = 50_000
		var buf writeCounter
		if err := WriteTrace(&buf, params, 3, n); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkE12WrongPathPIQ regenerates the redirect-policy ablation
// (extension).
func BenchmarkE12WrongPathPIQ(b *testing.B) {
	runExperiment(b, experiments.E12WrongPathPIQ)
}

// BenchmarkE13TagPortSweep regenerates the tag-port ablation (extension).
func BenchmarkE13TagPortSweep(b *testing.B) {
	runExperiment(b, experiments.E13TagPortSweep)
}

// BenchmarkE14FetchWidthSweep regenerates the fetch-width sensitivity
// (extension).
func BenchmarkE14FetchWidthSweep(b *testing.B) {
	runExperiment(b, experiments.E14FetchWidthSweep)
}

// BenchmarkE15StreamGeometry regenerates the stream-buffer geometry sweep
// (extension).
func BenchmarkE15StreamGeometry(b *testing.B) {
	runExperiment(b, experiments.E15StreamGeometry)
}

// BenchmarkE16PerfectBound regenerates the perfect-L1-I upper-bound
// comparison (extension).
func BenchmarkE16PerfectBound(b *testing.B) {
	runExperiment(b, experiments.E16PerfectBound)
}
