// Benchmark harness: one testing.B per reconstructed table/figure of the
// paper's evaluation (experiments E1..E16, see ARCHITECTURE.md), plus engine
// benchmarks that measure batch-sweep throughput sequentially and in
// parallel. Each experiment benchmark regenerates its table and reports
// headline metrics; the full tables print on the first iteration.
//
// The per-point instruction budget defaults to 200k so `go test -bench=.`
// finishes in minutes; set FDIP_BENCH_INSTRS to raise it for
// publication-quality numbers (cmd/fdipbench is the stand-alone runner).
package fdip

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"fdip/internal/experiments"
	"fdip/internal/oracle"
	"fdip/internal/program"
	"fdip/internal/stats"
)

func benchInstrs() uint64 {
	if s := os.Getenv("FDIP_BENCH_INSTRS"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 200_000
}

func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{Instrs: benchInstrs()})
}

// runExperiment executes fn once per iteration, printing the table on the
// first and reporting rows as a sanity metric.
func runExperiment(b *testing.B, fn func(ctx context.Context, r *experiments.Runner) (*stats.Table, error)) {
	b.ReportAllocs()
	ctx := context.Background()
	var rows int
	for i := 0; i < b.N; i++ {
		r := newRunner()
		t, err := fn(ctx, r)
		if err != nil {
			b.Fatal(err)
		}
		rows = t.NumRows()
		if i == 0 {
			fmt.Printf("\n%s\n", t)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkE1Characterization regenerates the workload characterisation
// table (footprints, baseline miss rates, branch behaviour).
func BenchmarkE1Characterization(b *testing.B) {
	runExperiment(b, experiments.E1Characterization)
}

// BenchmarkE2SpeedupSmallCache regenerates the headline speedup comparison
// (FDP vs next-line vs stream buffers) at a 16KB L1-I.
func BenchmarkE2SpeedupSmallCache(b *testing.B) {
	runExperiment(b, experiments.E2SpeedupSmallCache)
}

// BenchmarkE3SpeedupLargeCache regenerates the 32KB L1-I comparison.
func BenchmarkE3SpeedupLargeCache(b *testing.B) {
	runExperiment(b, experiments.E3SpeedupLargeCache)
}

// BenchmarkE4BusUtilization regenerates the bus-utilisation comparison.
func BenchmarkE4BusUtilization(b *testing.B) {
	runExperiment(b, experiments.E4BusUtilization)
}

// BenchmarkE5CacheProbeFiltering regenerates the filtering-policy study.
func BenchmarkE5CacheProbeFiltering(b *testing.B) {
	runExperiment(b, experiments.E5CacheProbeFiltering)
}

// BenchmarkE6FTQSweep regenerates the FTQ-depth sensitivity figure.
func BenchmarkE6FTQSweep(b *testing.B) {
	runExperiment(b, experiments.E6FTQSweep)
}

// BenchmarkE7PrefetchBufferSweep regenerates the prefetch-buffer sizing
// figure.
func BenchmarkE7PrefetchBufferSweep(b *testing.B) {
	runExperiment(b, experiments.E7PrefetchBufferSweep)
}

// BenchmarkE8LatencySensitivity regenerates the memory-latency sensitivity
// figure.
func BenchmarkE8LatencySensitivity(b *testing.B) {
	runExperiment(b, experiments.E8LatencySensitivity)
}

// BenchmarkE9CoverageAccuracy regenerates the coverage/accuracy table.
func BenchmarkE9CoverageAccuracy(b *testing.B) {
	runExperiment(b, experiments.E9CoverageAccuracy)
}

// BenchmarkE10FTBSweep regenerates the FTB-reach ablation.
func BenchmarkE10FTBSweep(b *testing.B) {
	runExperiment(b, experiments.E10FTBSweep)
}

// BenchmarkE11PredictorAblation regenerates the predictor/BTB-organisation
// ablation.
func BenchmarkE11PredictorAblation(b *testing.B) {
	runExperiment(b, experiments.E11Ablation)
}

// sweepJobs builds the engine benchmark's job list: the full benchmark
// suite under the no-prefetch baseline and the headline FDP+CPF machine.
func sweepJobs() []Job {
	fdpCfg := DefaultConfig()
	fdpCfg.Prefetch.Kind = PrefetchFDP
	fdpCfg.Prefetch.FDP.CPF = CPFConservative
	var jobs []Job
	for _, w := range Workloads() {
		jobs = append(jobs,
			Job{Name: w.Name + "/none", Workload: w.Name, Config: DefaultConfig()},
			Job{Name: w.Name + "/fdp+cpf", Workload: w.Name, Config: fdpCfg})
	}
	return jobs
}

// benchmarkSweep measures end-to-end batch throughput of Engine.Sweep at a
// given worker count; images are pre-generated and shared so the measurement
// isolates simulation parallelism.
func benchmarkSweep(b *testing.B, workers int) {
	jobs := sweepJobs()
	cache := NewImageCache()
	// Warm the image cache once so every iteration measures simulation.
	warm := NewEngine(WithWorkers(workers), WithInstrBudget(1000), WithImageCache(cache))
	if _, err := warm.Sweep(context.Background(), jobs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithWorkers(workers), WithInstrBudget(benchInstrs()/4), WithImageCache(cache))
		outs, err := eng.Sweep(context.Background(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, out := range outs {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// BenchmarkSweepSequential is the 1-worker reference: the cost of the batch
// on the old synchronous path's execution model.
func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }

// BenchmarkSweepParallel runs the same batch across all cores; on a
// multi-core host the speedup over BenchmarkSweepSequential approaches the
// core count (results are bit-identical either way).
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSimulatorThroughput measures raw simulation speed
// (cycles/second) of the default machine with FDP enabled — the cost of one
// experimental point.
func BenchmarkSimulatorThroughput(b *testing.B) {
	params := program.DefaultParams()
	params.NumFuncs = 300
	im := program.MustGenerate(params)
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.CPF = CPFConservative
	cfg.MaxInstrs = 1 << 62
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(cfg, im, 5)
		if err != nil {
			b.Fatal(err)
		}
		sim.StepN(100_000)
		cycles += sim.Cycle()
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// stepSim builds the FDP reference machine for kernel microbenchmarks.
func stepSim(tb testing.TB) *Simulator {
	tb.Helper()
	params := program.DefaultParams()
	params.NumFuncs = 60
	im := program.MustGenerate(params)
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.CPF = CPFConservative
	cfg.MaxInstrs = 1 << 62
	sim, err := NewSimulator(cfg, im, 5)
	if err != nil {
		tb.Fatal(err)
	}
	return sim
}

// BenchmarkStep measures the raw per-cycle cost of the kernel (no cycle
// skipping — Step is the one-cycle primitive).
func BenchmarkStep(b *testing.B) {
	sim := stepSim(b)
	sim.StepN(10_000) // warm caches and buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(sim.Cycle())/b.Elapsed().Seconds(), "cycles/s")
}

// benchmarkRun measures complete runs of cfg through the event-scheduled
// RunContext path — construction, simulation with idle skipping, and
// finalisation — reporting simulated cycles per second.
func benchmarkRun(b *testing.B, cfg Config) {
	params := program.DefaultParams()
	params.NumFuncs = 60
	im := program.MustGenerate(params)
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(cfg, im, 5)
		if err != nil {
			b.Fatal(err)
		}
		res := sim.Run()
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkRunShort measures a complete short run on the headline FDP
// machine.
func BenchmarkRunShort(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.MaxInstrs = 50_000
	benchmarkRun(b, cfg)
}

// BenchmarkRunIdleHeavy measures the idle-heavy regime the burst scheduler
// targets: no prefetching, a small L1-I over slow memory, and a deep FTQ —
// most cycles are fetch stalls during which only the BPU's run-ahead acts,
// exactly the deep-run-ahead machine the FDIP evaluation sweeps.
func BenchmarkRunIdleHeavy(b *testing.B) {
	cfg := DefaultConfig()
	cfg.L1ISizeBytes = 8 * 1024
	cfg.FTQEntries = 64
	cfg.Mem.MemLatency = 300
	cfg.MaxInstrs = 50_000
	benchmarkRun(b, cfg)
}

// BenchmarkRunFilteredFDP measures the filtered fetch-directed prefetcher
// (enqueue-side cache-probe filtering) on the same small-cache slow-memory
// machine: the FDP scan cursor's precise next-work modelling and PIQ-full
// bursts are what keep this config off the per-cycle stepping path.
func BenchmarkRunFilteredFDP(b *testing.B) {
	cfg := DefaultConfig()
	cfg.L1ISizeBytes = 8 * 1024
	cfg.FTQEntries = 64
	cfg.Prefetch.Kind = PrefetchFDP
	cfg.Prefetch.FDP.CPF = CPFConservative
	cfg.Mem.MemLatency = 300
	cfg.MaxInstrs = 50_000
	benchmarkRun(b, cfg)
}

// TestStepZeroAlloc pins the zero-allocation contract of the cycle kernel at
// the public API: in steady state, advancing the machine allocates nothing.
// CI runs this test as the allocation-regression gate.
func TestStepZeroAlloc(t *testing.T) {
	sim := stepSim(t)
	sim.StepN(300_000) // steady state: all pools, buffers, and lazy sets touched
	if avg := testing.AllocsPerRun(2000, sim.Step); avg != 0 {
		t.Fatalf("Simulator.Step allocates %.2f times per cycle in steady state; want 0", avg)
	}
}

// BenchmarkOracleWalker measures ground-truth execution speed.
func BenchmarkOracleWalker(b *testing.B) {
	params := program.DefaultParams()
	params.NumFuncs = 300
	im := program.MustGenerate(params)
	w := oracle.NewWalker(im, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// BenchmarkTraceRoundTrip measures trace encode+decode per instruction.
func BenchmarkTraceRoundTrip(b *testing.B) {
	params := program.DefaultParams()
	params.NumFuncs = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var n uint64 = 50_000
		var buf writeCounter
		if err := WriteTrace(&buf, params, 3, n); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkE12WrongPathPIQ regenerates the redirect-policy ablation
// (extension).
func BenchmarkE12WrongPathPIQ(b *testing.B) {
	runExperiment(b, experiments.E12WrongPathPIQ)
}

// BenchmarkE13TagPortSweep regenerates the tag-port ablation (extension).
func BenchmarkE13TagPortSweep(b *testing.B) {
	runExperiment(b, experiments.E13TagPortSweep)
}

// BenchmarkE14FetchWidthSweep regenerates the fetch-width sensitivity
// (extension).
func BenchmarkE14FetchWidthSweep(b *testing.B) {
	runExperiment(b, experiments.E14FetchWidthSweep)
}

// BenchmarkE15StreamGeometry regenerates the stream-buffer geometry sweep
// (extension).
func BenchmarkE15StreamGeometry(b *testing.B) {
	runExperiment(b, experiments.E15StreamGeometry)
}

// BenchmarkE16PerfectBound regenerates the perfect-L1-I upper-bound
// comparison (extension).
func BenchmarkE16PerfectBound(b *testing.B) {
	runExperiment(b, experiments.E16PerfectBound)
}
