package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fdip/internal/engine"
	"fdip/internal/stats"
)

// trendSnapshot is one point of the committed perf trajectory: a
// BENCH_*.json snapshot plus the label it renders under.
type trendSnapshot struct {
	label string
	snap  *engine.BenchSnapshot
}

// loadTrend reads every committed BENCH_*.json trajectory file under dir,
// in PR-sequence order: numeric suffixes compare as numbers (BENCH_PR10
// after BENCH_PR9), ties lexicographically.
func loadTrend(dir string) ([]trendSnapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool {
		ni, nj := trailingNum(paths[i]), trailingNum(paths[j])
		if ni != nj {
			return ni < nj
		}
		return paths[i] < paths[j]
	})
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json trajectory files under %s", dir)
	}
	out := make([]trendSnapshot, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		snap, err := engine.ReadBenchJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		label := filepath.Base(path)
		label = label[:len(label)-len(filepath.Ext(label))]
		out = append(out, trendSnapshot{label: label, snap: snap})
	}
	return out, nil
}

// trailingNum extracts the number ending the path's base name (before the
// extension), e.g. 12 from BENCH_PR12.json; -1 when there is none.
func trailingNum(path string) int {
	base := filepath.Base(path)
	base = base[:len(base)-len(filepath.Ext(base))]
	end := len(base)
	start := end
	for start > 0 && base[start-1] >= '0' && base[start-1] <= '9' {
		start--
	}
	if start == end {
		return -1
	}
	n := 0
	for _, c := range base[start:end] {
		n = n*10 + int(c-'0')
	}
	return n
}

// renderTrend turns the trajectory into the perf dashboard: one summary
// table (whole-suite wall time, aggregate kernel speed, pool recycling,
// allocations per run, per snapshot) and one per-experiment wall-time
// comparison table (rows = experiments, one column per snapshot).
func renderTrend(snaps []trendSnapshot) []*stats.Table {
	sum := stats.NewTable("perf trajectory: suite aggregates per committed snapshot",
		"snapshot", "go", "workers", "instrs/pt", "wall s", "Mcyc/s", "recycle%", "allocs/run")
	for _, ts := range snaps {
		b := ts.snap
		sum.AddRow(ts.label, b.GoVersion, b.Workers, b.Instrs,
			b.WallSeconds, b.CyclesPerSec/1e6, 100*b.PoolRecyclingRate, b.AllocsPerRun)
	}

	// Experiment rows in first-appearance order across the trajectory, so a
	// newly added experiment lands after the stable prefix.
	var ids []string
	seen := map[string]bool{}
	for _, ts := range snaps {
		for _, ex := range ts.snap.Experiments {
			if !seen[ex.ID] {
				seen[ex.ID] = true
				ids = append(ids, ex.ID)
			}
		}
	}
	headers := make([]string, len(snaps))
	for j, ts := range snaps {
		headers[j] = ts.label
	}
	wall := stats.NewCollector[float64](ids, headers)
	for j, ts := range snaps {
		byID := map[string]float64{}
		for _, ex := range ts.snap.Experiments {
			byID[ex.ID] = ex.WallSeconds
		}
		for i, id := range ids {
			wall.Put(i, j, byID[id]) // 0 when the snapshot predates the experiment
		}
	}
	per := wall.Table("perf trajectory: per-experiment wall seconds", "experiment", headers,
		func(_, _ int, v float64) any {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		})
	return []*stats.Table{sum, per}
}
