// Command fdipbench runs the full reconstructed evaluation (experiments
// E1..E11, documented in ARCHITECTURE.md) plus the extension ablations
// (E12..E16) and prints the paper-style tables. Experiments are declarative
// sweep plans streamed concurrently through the shared simulation engine:
// points stream back as they complete (per-result progress lines with -v),
// with configurations shared between experiments (e.g. the no-prefetch
// baseline) simulated once. Ctrl-C cancels the suite promptly.
//
//	fdipbench                       # full suite, 1M instructions per point
//	fdipbench -instrs 250000        # quicker pass
//	fdipbench -only E2,E5           # selected experiments
//	fdipbench -workloads gcc,perl   # restricted benchmark set
//	fdipbench -workers 16           # widen the simulation pool
//	fdipbench -json                 # machine-readable tables
//	fdipbench -cpuprofile cpu.out   # profile the kernel hot path
//	fdipbench -trend .              # render the committed perf trajectory
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fdip/internal/engine"
	"fdip/internal/experiments"
	"fdip/internal/workloads"
)

func main() {
	os.Exit(run())
}

// run is main behind an exit code, so profile-flushing defers execute even
// on failure paths.
func run() int {
	var (
		instrs     = flag.Uint64("instrs", 1_000_000, "committed instructions per simulation point")
		only       = flag.String("only", "", "comma-separated experiment ids (e.g. E2,E5); empty = all")
		wls        = flag.String("workloads", "", "comma-separated workload names; empty = all")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "print per-simulation progress")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of aligned tables")
		timeout    = flag.Duration("timeout", 0, "abort the suite after this duration (0 = none)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchjson  = flag.String("benchjson", "", "write a machine-readable perf snapshot (cycles/s, per-experiment wall time, pool recycling, allocs/run) to this file")
		trend      = flag.String("trend", "", "render the committed BENCH_*.json perf trajectory under this directory and exit (no simulations)")
	)
	flag.Parse()

	if *trend != "" {
		snaps, err := loadTrend(*trend)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdipbench: -trend: %v\n", err)
			return 2
		}
		for _, t := range renderTrend(snaps) {
			switch {
			case *jsonOut:
				if err := t.JSON(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "fdipbench: %v\n", err)
					return 1
				}
			case *csv:
				fmt.Printf("# %s\n", t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			default:
				t.Render(os.Stdout)
				fmt.Println()
			}
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdipbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fdipbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdipbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fdipbench: -memprofile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := experiments.Options{Instrs: *instrs, Workers: *workers}
	if *wls != "" {
		for _, name := range strings.Split(*wls, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "fdipbench: unknown workload %q\n", name)
				return 2
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}
	if *verbose {
		opts.Progress = func(ev engine.Event) {
			if ev.Kind == engine.EventJobStarted {
				return // one line per completed point is enough
			}
			fmt.Fprintln(os.Stderr, "  "+ev.String())
		}
	}
	r := experiments.NewRunner(opts)

	suite := experiments.ExtendedSuite()
	if *only != "" {
		selected := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		var keep []experiments.Experiment
		for _, e := range suite {
			if selected[e.ID] {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			fmt.Fprintf(os.Stderr, "fdipbench: no experiments match -only %q\n", *only)
			return 2
		}
		suite = keep
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	tables, durs, err := experiments.RunExperimentsTimed(ctx, r, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdipbench: %v\n", err)
		return 1
	}
	for _, t := range tables {
		switch {
		case *jsonOut:
			if err := t.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "fdipbench: %v\n", err)
				return 1
			}
		case *csv:
			fmt.Printf("# %s\n", t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		default:
			t.Render(os.Stdout)
			fmt.Println()
		}
	}
	st := r.Engine().Stats()
	fmt.Fprintf(os.Stderr, "fdipbench: %d simulations (%d memo hits) on %d workers in %s\n",
		st.Simulations, st.CacheHits, r.Engine().Workers(), time.Since(start).Round(time.Millisecond))
	// Kernel-speed aggregate: simulated cycles per second of in-simulation
	// wall time, summed over every fresh simulation — the number performance
	// work tracks across runs — plus the machine pool's recycling rate.
	fmt.Fprintf(os.Stderr, "fdipbench: kernel %.2fM cycles/s aggregate (%d simulated cycles in %.2fs sim time; machines built %d, reused %d)\n",
		st.CyclesPerSec()/1e6, st.SimulatedCycles, st.SimSeconds, st.MachinesBuilt, st.MachinesReused)

	if *benchjson != "" {
		if err := writeBenchSnapshot(*benchjson, r, suite, durs, time.Since(start), *instrs, memBefore); err != nil {
			fmt.Fprintf(os.Stderr, "fdipbench: -benchjson: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeBenchSnapshot records the run as one point of the committed perf
// trajectory (BENCH_PR<n>.json): aggregate kernel speed, per-experiment wall
// times, the machine pool's recycling rate, and heap allocations per fresh
// simulation.
func writeBenchSnapshot(path string, r *experiments.Runner, suite []experiments.Experiment,
	durs []time.Duration, wall time.Duration, instrs uint64, memBefore runtime.MemStats) error {
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	snap := engine.BenchSnapshot{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Workers:     r.Engine().Workers(),
		Instrs:      instrs,
		WallSeconds: wall.Seconds(),
		Engine:      r.Engine().Stats(),
	}
	snap.Derive(memAfter.Mallocs-memBefore.Mallocs, memAfter.TotalAlloc-memBefore.TotalAlloc)
	for i, ex := range suite {
		snap.Experiments = append(snap.Experiments,
			engine.ExperimentTime{ID: ex.ID, WallSeconds: durs[i].Seconds()})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := engine.WriteBenchJSON(f, &snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
