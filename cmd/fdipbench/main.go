// Command fdipbench runs the full reconstructed evaluation (experiments
// E1..E11 from DESIGN.md) plus the extension ablations (E12..E16) and prints
// the paper-style tables.
//
//	fdipbench                      # full suite, 1M instructions per point
//	fdipbench -instrs 250000      # quicker pass
//	fdipbench -only E2,E5          # selected experiments
//	fdipbench -workloads gcc,perl  # restricted benchmark set
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fdip/internal/experiments"
	"fdip/internal/stats"
	"fdip/internal/workloads"
)

func main() {
	var (
		instrs  = flag.Uint64("instrs", 1_000_000, "committed instructions per simulation point")
		only    = flag.String("only", "", "comma-separated experiment ids (e.g. E2,E5); empty = all")
		wls     = flag.String("workloads", "", "comma-separated workload names; empty = all")
		verbose = flag.Bool("v", false, "print per-simulation progress")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	opts := experiments.Options{Instrs: *instrs}
	if *wls != "" {
		for _, name := range strings.Split(*wls, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "fdipbench: unknown workload %q\n", name)
				os.Exit(2)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	r := experiments.NewRunner(opts)

	type exp struct {
		id  string
		run func(*experiments.Runner) *stats.Table
	}
	suite := []exp{
		{"E1", experiments.E1Characterization},
		{"E2", experiments.E2SpeedupSmallCache},
		{"E3", experiments.E3SpeedupLargeCache},
		{"E4", experiments.E4BusUtilization},
		{"E5", experiments.E5CacheProbeFiltering},
		{"E6", experiments.E6FTQSweep},
		{"E7", experiments.E7PrefetchBufferSweep},
		{"E8", experiments.E8LatencySensitivity},
		{"E9", experiments.E9CoverageAccuracy},
		{"E10", experiments.E10FTBSweep},
		{"E11", experiments.E11Ablation},
		{"E12", experiments.E12WrongPathPIQ},
		{"E13", experiments.E13TagPortSweep},
		{"E14", experiments.E14FetchWidthSweep},
		{"E15", experiments.E15StreamGeometry},
		{"E16", experiments.E16PerfectBound},
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	for _, e := range suite {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		t := e.run(r)
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "fdipbench: %d simulations in %s\n", r.Simulations, time.Since(start).Round(time.Millisecond))
}
