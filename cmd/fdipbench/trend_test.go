package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fdip/internal/engine"
)

// repoRoot is where the committed BENCH_*.json trajectory lives.
const repoRoot = "../.."

// TestTrendTrajectoryLabels pins the committed snapshot sequence. PR 8 is a
// deliberate gap: it landed the MANA and shadow prefetch engines plus E17–E19
// without committing a snapshot, so the perf trajectory jumps from PR 7
// straight to PR 9 (whose snapshot is the first to include the three new
// experiments). A new snapshot extends the expected list here.
func TestTrendTrajectoryLabels(t *testing.T) {
	snaps, err := loadTrend(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BENCH_PR4", "BENCH_PR5", "BENCH_PR6", "BENCH_PR7", "BENCH_PR9"}
	var got []string
	for _, ts := range snaps {
		got = append(got, ts.label)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("committed trajectory = %v, want %v", got, want)
	}
}

// TestTrendOverCommittedSnapshots renders the trend dashboard over the
// repository's committed trajectory files and checks both tables carry the
// per-experiment and per-snapshot series.
func TestTrendOverCommittedSnapshots(t *testing.T) {
	snaps, err := loadTrend(repoRoot)
	if err != nil {
		t.Fatalf("loadTrend over committed snapshots: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("no committed snapshots found")
	}
	tables := renderTrend(snaps)
	if len(tables) != 2 {
		t.Fatalf("renderTrend returned %d tables", len(tables))
	}
	sum, per := tables[0].String(), tables[1].String()
	for _, ts := range snaps {
		if !strings.Contains(sum, ts.label) {
			t.Errorf("summary table missing snapshot %s:\n%s", ts.label, sum)
		}
		if !strings.Contains(per, ts.label) {
			t.Errorf("per-experiment table missing snapshot %s:\n%s", ts.label, per)
		}
	}
	for _, id := range []string{"E1", "E16"} {
		if !strings.Contains(per, id) {
			t.Errorf("per-experiment table missing %s:\n%s", id, per)
		}
	}
}

// TestBenchSnapshotRoundTripsCommitted round-trips every committed
// trajectory file through ReadBenchJSON -> WriteBenchJSON -> ReadBenchJSON:
// the trend dashboard must be reading exactly what -benchjson wrote.
func TestBenchSnapshotRoundTripsCommitted(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(repoRoot, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("committed snapshots: %v (%d files)", err, len(paths))
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := engine.ReadBenchJSON(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if snap.CyclesPerSec <= 0 || len(snap.Experiments) == 0 {
			t.Errorf("%s: implausible snapshot: %+v", path, snap)
		}
		var buf bytes.Buffer
		if err := engine.WriteBenchJSON(&buf, snap); err != nil {
			t.Fatalf("%s: re-encode: %v", path, err)
		}
		back, err := engine.ReadBenchJSON(&buf)
		if err != nil {
			t.Fatalf("%s: re-decode: %v", path, err)
		}
		if !reflect.DeepEqual(snap, back) {
			t.Errorf("%s: snapshot did not survive the round trip", path)
		}
	}
}
