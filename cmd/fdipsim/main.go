// Command fdipsim runs a single front-end simulation through the concurrent
// engine and prints the measurement report. Ctrl-C cancels a long run.
//
// Examples:
//
//	fdipsim -prefetcher fdp -cpf conservative -instrs 2000000
//	fdipsim -funcs 2000 -l1i 32768 -prefetcher streambuf
//	fdipsim -workload vortex -prefetcher fdp -compare
//	fdipsim -workload gcc -prefetcher fdp -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"fdip"
)

func main() {
	var (
		workload   = flag.String("workload", "", "named workload (see -list); overrides -funcs")
		list       = flag.Bool("list", false, "list named workloads and exit")
		funcs      = flag.Int("funcs", 400, "functions in the synthetic program (ignored with -workload)")
		seed       = flag.Int64("seed", 1, "generation/execution seed")
		instrs     = flag.Uint64("instrs", 1_000_000, "instructions to simulate")
		l1iBytes   = flag.Int("l1i", 16*1024, "L1-I size in bytes")
		ftqEntries = flag.Int("ftq", 32, "FTQ entries")
		pfKind     = flag.String("prefetcher", "none", "none|nextline|streambuf|fdp|mana|shadow")
		cpf        = flag.String("cpf", "off", "FDP cache-probe filtering: off|conservative|optimistic")
		removeCPF  = flag.Bool("remove-cpf", false, "FDP remove-side filtering")
		ftbSets    = flag.Int("ftb-sets", 512, "FTB sets")
		compare    = flag.Bool("compare", false, "also run the no-prefetch baseline and print the speedup")
		jsonOut    = flag.Bool("json", false, "emit the result (or comparison sweep) as JSON")
	)
	flag.Parse()

	if *list {
		for _, w := range fdip.Workloads() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := fdip.DefaultConfig()
	cfg.MaxInstrs = *instrs
	cfg.L1ISizeBytes = *l1iBytes
	cfg.FTQEntries = *ftqEntries
	cfg.FTB.Sets = *ftbSets
	cfg.Prefetch.Kind = fdip.PrefetcherKind(*pfKind)
	switch *cpf {
	case "off":
	case "conservative":
		cfg.Prefetch.FDP.CPF = fdip.CPFConservative
	case "optimistic":
		cfg.Prefetch.FDP.CPF = fdip.CPFOptimistic
	default:
		fmt.Fprintf(os.Stderr, "fdipsim: unknown cpf mode %q\n", *cpf)
		os.Exit(2)
	}
	cfg.Prefetch.FDP.RemoveCPF = *removeCPF

	job := fdip.Job{Config: cfg}
	if *workload != "" {
		if _, ok := fdip.WorkloadByName(*workload); !ok {
			fmt.Fprintf(os.Stderr, "fdipsim: unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
		job.Workload = *workload
		job.Name = *workload
	} else {
		params := fdip.DefaultProgramParams()
		params.Seed = *seed
		params.NumFuncs = *funcs
		job.Params = &params
		job.Name = fmt.Sprintf("custom(funcs=%d,seed=%d)", *funcs, *seed)
	}
	// The oracle (branch-outcome) seed tracks -seed for workload runs too,
	// so sweeping -seed varies the dynamic behaviour of a fixed program.
	job.Seed = *seed + 1000

	eng := fdip.NewEngine()
	jobs := []fdip.Job{job}
	if *compare {
		base := job
		base.Name = job.Name + "-baseline"
		baseCfg := cfg
		baseCfg.Prefetch.Kind = fdip.PrefetchNone
		base.Config = baseCfg
		jobs = append(jobs, base)
	}
	// The jobs run as a streamed plan of named points: outcomes arrive in
	// completion order and are re-ordered by Index, so the report below is
	// deterministic whichever machine finishes first.
	outs := make([]fdip.RunOutcome, len(jobs))
	for out, err := range eng.Stream(ctx, fdip.FromJobs(jobs...)) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdipsim: %v\n", err)
			os.Exit(1)
		}
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "fdipsim: %s: %v\n", out.Job.Name, out.Err)
			os.Exit(1)
		}
		outs[out.Index] = out
	}

	if *jsonOut {
		var err error
		if *compare {
			err = fdip.WriteOutcomesJSON(os.Stdout, outs)
		} else {
			err = fdip.WriteResultJSON(os.Stdout, outs[0].Result)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdipsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	res := outs[0].Result
	fmt.Println(res)
	if *compare {
		baseRes := outs[1].Result
		fmt.Printf("baseline IPC       %.3f\n", baseRes.IPC)
		fmt.Printf("speedup            %+.2f%%\n", res.SpeedupPctOver(baseRes))
	}
}
