// Command fdipsim runs a single front-end simulation and prints the
// measurement report.
//
// Examples:
//
//	fdipsim -prefetcher fdp -cpf conservative -instrs 2000000
//	fdipsim -funcs 2000 -l1i 32768 -prefetcher streambuf
//	fdipsim -workload vortex -prefetcher fdp -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"fdip/internal/core"
	"fdip/internal/oracle"
	"fdip/internal/prefetch"
	"fdip/internal/program"
	"fdip/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "", "named workload (see -list); overrides -funcs")
		list       = flag.Bool("list", false, "list named workloads and exit")
		funcs      = flag.Int("funcs", 400, "functions in the synthetic program (ignored with -workload)")
		seed       = flag.Int64("seed", 1, "generation/execution seed")
		instrs     = flag.Uint64("instrs", 1_000_000, "instructions to simulate")
		l1iBytes   = flag.Int("l1i", 16*1024, "L1-I size in bytes")
		ftqEntries = flag.Int("ftq", 32, "FTQ entries")
		pfKind     = flag.String("prefetcher", "none", "none|nextline|streambuf|fdp")
		cpf        = flag.String("cpf", "off", "FDP cache-probe filtering: off|conservative|optimistic")
		removeCPF  = flag.Bool("remove-cpf", false, "FDP remove-side filtering")
		ftbSets    = flag.Int("ftb-sets", 512, "FTB sets")
		compare    = flag.Bool("compare", false, "also run the no-prefetch baseline and print the speedup")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	var (
		im  *program.Image
		err error
	)
	if *workload != "" {
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "fdipsim: unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
		im, err = program.Generate(w.Params)
	} else {
		p := program.DefaultParams()
		p.Seed = *seed
		p.NumFuncs = *funcs
		im, err = program.Generate(p)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdipsim: %v\n", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.MaxInstrs = *instrs
	cfg.L1ISizeBytes = *l1iBytes
	cfg.FTQEntries = *ftqEntries
	cfg.FTB.Sets = *ftbSets
	cfg.Prefetch.Kind = core.PrefetcherKind(*pfKind)
	switch *cpf {
	case "off":
	case "conservative":
		cfg.Prefetch.FDP.CPF = prefetch.CPFConservative
	case "optimistic":
		cfg.Prefetch.FDP.CPF = prefetch.CPFOptimistic
	default:
		fmt.Fprintf(os.Stderr, "fdipsim: unknown cpf mode %q\n", *cpf)
		os.Exit(2)
	}
	cfg.Prefetch.FDP.RemoveCPF = *removeCPF

	run := func(c core.Config) core.Result {
		p, err := core.New(c, im, oracle.NewWalker(im, *seed+1000))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdipsim: %v\n", err)
			os.Exit(1)
		}
		return p.Run()
	}

	fmt.Printf("program: %d funcs, %d KB code, entry %#x\n",
		len(im.Funcs), im.Size()/1024, im.Entry)
	res := run(cfg)
	fmt.Println(res)

	if *compare {
		base := cfg
		base.Prefetch.Kind = core.PrefetchNone
		baseRes := run(base)
		fmt.Printf("baseline IPC       %.3f\n", baseRes.IPC)
		fmt.Printf("speedup            %+.2f%%\n", res.SpeedupPctOver(baseRes))
	}
}
