// Command tracegen writes compact binary instruction traces of the named
// workloads (or an ad-hoc synthetic program) for later replay with
// fdip.ReplayTrace or examples/tracereplay.
//
//	tracegen -workload vortex -n 2000000 -o vortex.fdiptrace
//	tracegen -funcs 500 -seed 7 -n 1000000 -o custom.fdiptrace
package main

import (
	"flag"
	"fmt"
	"os"

	"fdip/internal/oracle"
	"fdip/internal/program"
	"fdip/internal/trace"
	"fdip/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "named workload (overrides -funcs/-seed)")
		funcs    = flag.Int("funcs", 400, "functions in the synthetic program")
		seed     = flag.Int64("seed", 1, "generation and walker seed")
		n        = flag.Uint64("n", 1_000_000, "instructions to trace")
		out      = flag.String("o", "trace.fdiptrace", "output file")
	)
	flag.Parse()

	params := program.DefaultParams()
	walkSeed := *seed + 1000
	if *workload != "" {
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		params = w.Params
		walkSeed = w.Seed
	} else {
		params.Seed = *seed
		params.NumFuncs = *funcs
	}

	im, err := program.Generate(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	tw, err := trace.NewWriter(f, params, walkSeed, im)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	w := oracle.NewWalker(im, walkSeed)
	for i := uint64(0); i < *n; i++ {
		rec, _ := w.Next()
		tw.Append(rec)
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	st, err := f.Stat()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d instructions, %d CTI events, %d bytes (%.3f B/instr)\n",
		*out, *n, tw.Events(), st.Size(), float64(st.Size())/float64(*n))
}
