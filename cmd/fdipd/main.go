// fdipd is the distributed-sweep daemon. Modes:
//
//	fdipd [-workers N]                 stdio worker (default): reads assign
//	                                   frames on stdin, streams outcome frames
//	                                   on stdout. This is what a coordinator's
//	                                   Exec dialer spawns.
//	fdipd -listen :8080 [-workers N]   HTTP worker: serves the same protocol
//	                                   at POST /v1/run for remote coordinators.
//	                                   With -register URL it also announces
//	                                   itself to a sweep service and heartbeats
//	                                   until shutdown (self-registration — no
//	                                   -connect lists).
//	fdipd -serve :9090 -state DIR      sweep service: persistent job queue,
//	                                   shared result cache, streaming clients,
//	                                   self-registering workers. SIGINT/SIGTERM
//	                                   drains gracefully: in-flight ranges
//	                                   finish and checkpoint, interrupted
//	                                   sweeps re-queue, and a restart over the
//	                                   same -state resumes them.
//	fdipd -submit URL [flags]          client: submit the built-in demo plan to
//	                                   a service, stream its results (resuming
//	                                   through transport drops), and print the
//	                                   same sorted NDJSON rows as -coordinate —
//	                                   byte-identical to the -shards 0
//	                                   reference.
//	fdipd -watch URL -job ID [-from N] client: follow one sweep's raw stream
//	                                   frames from cursor N.
//	fdipd -coordinate [flags]          one-shot coordinator: shards the demo
//	                                   plan across workers and prints one
//	                                   NDJSON row per point (sorted by index,
//	                                   deterministic fields only) on stdout,
//	                                   with a mergeable-reducer summary on
//	                                   stderr.
//
// Coordinator flags: -shards N (0 = run single-process in this binary — the
// reference the sharded output must diff clean against), -chunk (points per
// assignment), -connect url[,url...] (use running HTTP workers instead of
// spawning local processes), -worker-bin (worker binary to spawn; default:
// this binary), -journal path (checkpoint/resume), -instrs (per-point
// budget, baked into the demo plan's configs), -topk (extremes retained in
// the summary).
//
// Service quickstart (one service, two self-registered workers, one client):
//
//	fdipd -serve :9090 -state /tmp/fdipd &
//	fdipd -listen :0 -register http://localhost:9090 &
//	fdipd -listen :0 -register http://localhost:9090 &
//	fdipd -submit http://localhost:9090 > service.ndjson
//	fdipd -coordinate -shards 0 > single.ndjson
//	diff service.ndjson single.ndjson        # must be empty: bit-identical
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"iter"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fdip/internal/core"
	"fdip/internal/dist"
	"fdip/internal/engine"
	"fdip/internal/svc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdipd: ")
	var (
		workers    = flag.Int("workers", 0, "concurrent simulations per worker engine (0 = GOMAXPROCS)")
		listen     = flag.String("listen", "", "serve the HTTP worker protocol on this address instead of stdio")
		register   = flag.String("register", "", "worker: sweep-service URL to self-register with (heartbeats until shutdown)")
		advertise  = flag.String("advertise", "", "worker: URL the service should dial back (default http://127.0.0.1:<listen port>)")
		workerID   = flag.String("worker-id", "", "worker: stable registration id (default host-pid)")
		serve      = flag.String("serve", "", "run the sweep service on this address")
		state      = flag.String("state", "", "service: state directory (queue + sweep journals; required with -serve)")
		maxQueued  = flag.Int("max-queued", 16, "service: max queued+running sweeps before submissions get 429")
		ttl        = flag.Duration("ttl", 15*time.Second, "service/worker: registration heartbeat budget")
		submit     = flag.String("submit", "", "submit the demo plan to this sweep-service URL and stream results")
		watch      = flag.String("watch", "", "follow a sweep's stream frames from this sweep-service URL")
		job        = flag.String("job", "", "watch: sweep id")
		from       = flag.Int("from", 0, "watch: resume cursor (frames already seen)")
		label      = flag.String("label", "", "submit: sweep label")
		priority   = flag.Int("priority", 0, "submit: queue priority (higher runs first)")
		coordinate = flag.Bool("coordinate", false, "run as one-shot coordinator over the built-in demo plan")
		shards     = flag.Int("shards", 2, "coordinator/service: concurrent worker sessions (0 = single-process reference, no workers)")
		chunk      = flag.Int("chunk", 2, "coordinator/service: plan points per assignment")
		connect    = flag.String("connect", "", "coordinator: comma-separated HTTP worker URLs (default: spawn local worker processes)")
		workerBin  = flag.String("worker-bin", "", "coordinator: worker binary to spawn (default: this binary)")
		journal    = flag.String("journal", "", "coordinator: checkpoint journal path (resume by re-running with the same flags)")
		instrs     = flag.Uint64("instrs", 50_000, "committed-instruction budget per demo-plan point")
		topk       = flag.Int("topk", 3, "coordinator: extremes retained per side in the IPC summary")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *serve != "":
		err = runService(ctx, *serve, *state, *shards, *chunk, *maxQueued, *ttl)
	case *submit != "":
		err = runSubmit(ctx, *submit, *label, *priority, *instrs, *chunk)
	case *watch != "":
		err = runWatch(ctx, *watch, *job, *from)
	case *coordinate:
		err = runCoordinator(ctx, *shards, *chunk, *connect, *workerBin, *journal, *instrs, *workers, *topk)
	case *listen != "":
		err = runWorker(ctx, *listen, *register, *advertise, *workerID, *ttl, *workers)
	default:
		wk := dist.NewWorker(*workers)
		err = wk.ServeStdio(ctx, os.Stdin, os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runService hosts the sweep service until a signal, then drains: the HTTP
// listener keeps serving while svc.Shutdown quiesces the scheduler (in-flight
// ranges checkpoint, live streams get their terminal frames), and only then
// does the listener close.
func runService(ctx context.Context, addr, state string, shards, chunk, maxQueued int, ttl time.Duration) error {
	if state == "" {
		return fmt.Errorf("-serve requires -state DIR")
	}
	s, err := svc.New(svc.Options{
		StateDir:    state,
		Shards:      shards,
		ChunkPoints: chunk,
		MaxQueued:   maxQueued,
		WorkerTTL:   ttl,
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("sweep service on %s (state %s)", addr, state)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		s.Shutdown()
		return err
	case <-ctx.Done():
	}
	log.Printf("draining: in-flight ranges will checkpoint")
	if err := s.Shutdown(); err != nil {
		srv.Close()
		return err
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
	}
	log.Printf("drained cleanly")
	return nil
}

// runWorker serves the HTTP worker protocol, optionally self-registering with
// a sweep service and heartbeating until shutdown.
func runWorker(ctx context.Context, listen, register, advertise, id string, ttl time.Duration, workers int) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	wk := dist.NewWorker(workers)
	mux := http.NewServeMux()
	mux.Handle("/v1/run", wk.Handler())
	srv := &http.Server{Handler: mux}

	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	if register != "" {
		if advertise == "" {
			_, port, err := net.SplitHostPort(ln.Addr().String())
			if err != nil {
				return fmt.Errorf("derive -advertise from %s: %w", ln.Addr(), err)
			}
			advertise = "http://127.0.0.1:" + port
		}
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		cl := &svc.Client{Base: register}
		if err := cl.Heartbeat(hbCtx, id, advertise, ttl); err != nil {
			return fmt.Errorf("register with %s: %w", register, err)
		}
		log.Printf("registered as %s (%s) with %s", id, advertise, register)
	}

	go func() {
		<-ctx.Done()
		hbStop() // deregister before the listener dies
		time.Sleep(50 * time.Millisecond)
		srv.Close()
	}()
	log.Printf("worker listening on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// demoRequest is demoPlan as a service submission: identical workloads,
// configs, and budgets, so service-streamed rows byte-diff clean against the
// -coordinate -shards 0 reference.
func demoRequest(label string, priority int, instrs uint64, chunk int) svc.SubmitRequest {
	mk := func(kind core.PrefetcherKind) core.Config {
		c := core.DefaultConfig()
		c.MaxInstrs = instrs
		c.Prefetch.Kind = kind
		return c
	}
	return svc.SubmitRequest{
		Label:     label,
		Priority:  priority,
		Workloads: []string{"gcc", "deltablue"},
		Configs: []svc.ConfigPoint{
			{Name: "base", Config: mk(core.PrefetchNone)},
			{Name: "nextline", Config: mk(core.PrefetchNextLine)},
			{Name: "fdp", Config: mk(core.PrefetchFDP)},
		},
		ChunkPoints: chunk,
	}
}

// runSubmit submits the demo plan and streams it to completion, reconnecting
// with the frame cursor through transport drops, then prints the sorted
// deterministic rows (stdout) and the job accounting (stderr).
func runSubmit(ctx context.Context, base, label string, priority int, instrs uint64, chunk int) error {
	cl := &svc.Client{Base: base}
	st, err := cl.Submit(ctx, demoRequest(label, priority, instrs, chunk))
	if err != nil {
		return err
	}
	log.Printf("submitted %s (%d points)", st.ID, st.Points)

	rows := make([]row, 0, st.Points)
	cursor := 0
	for attempt := 0; ; attempt++ {
		err := cl.Stream(ctx, st.ID, cursor, func(f svc.StreamFrame) error {
			out := f.Outcome
			cursor = f.Seq + 1
			r := row{Index: out.Index, Name: out.Job.Name, Result: out.Result}
			if out.Err != nil {
				r.Error = out.Err.Error()
			}
			rows = append(rows, r)
			return nil
		})
		if err == nil {
			break // terminal done frame
		}
		if errors.Is(err, svc.ErrSweepFailed) || ctx.Err() != nil || attempt >= 10 {
			return err
		}
		log.Printf("stream dropped at frame %d (%v); resuming", cursor, err)
		time.Sleep(200 * time.Millisecond)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	enc := json.NewEncoder(os.Stdout)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	final, err := cl.Job(ctx, st.ID)
	if err != nil {
		return err
	}
	log.Printf("%s done: %d points, %d served from cache", final.ID, final.Completed, final.Cached)
	return nil
}

// runWatch follows one sweep's stream frames from a cursor, printing them raw.
func runWatch(ctx context.Context, base, id string, from int) error {
	if id == "" {
		return fmt.Errorf("-watch requires -job ID")
	}
	cl := &svc.Client{Base: base}
	enc := json.NewEncoder(os.Stdout)
	return cl.Stream(ctx, id, from, func(f svc.StreamFrame) error {
		return enc.Encode(f)
	})
}

// demoPlan is the built-in smoke sweep: two workloads by three prefetch
// schemes. The budget is baked into every config (rather than applied by the
// coordinator) so the -shards 0 reference and any sharded run execute
// literally identical jobs.
func demoPlan(instrs uint64) *engine.Plan {
	mk := func(kind core.PrefetcherKind) core.Config {
		c := core.DefaultConfig()
		c.MaxInstrs = instrs
		c.Prefetch.Kind = kind
		return c
	}
	return engine.NewPlan(mk(core.PrefetchNone)).
		OverNames("gcc", "deltablue").
		Axes(engine.Configs(
			engine.Named("base", mk(core.PrefetchNone)),
			engine.Named("nextline", mk(core.PrefetchNextLine)),
			engine.Named("fdp", mk(core.PrefetchFDP)),
		))
}

// row is one output line: only fields that are deterministic functions of
// the plan point (no wall times, no cache flags), so two runs of the same
// plan — sharded or not, resumed or not, service-streamed or not — diff
// byte-identically.
type row struct {
	Index  int         `json:"index"`
	Name   string      `json:"name"`
	Result core.Result `json:"result"`
	Error  string      `json:"error,omitempty"`
}

func runCoordinator(ctx context.Context, shards, chunk int, connect, workerBin, journal string, instrs uint64, workers, topk int) error {
	p := demoPlan(instrs)

	var stream iter.Seq2[engine.RunOutcome, error]
	if shards == 0 {
		// Single-process reference: the same plan through the in-process
		// engine, no wire, no workers.
		stream = engine.New(engine.WithWorkers(workers)).Stream(ctx, p)
	} else {
		var dialer dist.Dialer
		if connect != "" {
			var ds []dist.Dialer
			for _, u := range strings.Split(connect, ",") {
				ds = append(ds, dist.HTTP{URL: strings.TrimSpace(u)})
			}
			dialer = dist.RoundRobin(ds...)
		} else {
			bin := workerBin
			if bin == "" {
				self, err := os.Executable()
				if err != nil {
					return fmt.Errorf("resolve own binary for -worker-bin: %w", err)
				}
				bin = self
			}
			dialer = dist.Exec{Path: bin, Args: []string{"-workers", strconv.Itoa(workers)}}
		}
		coord := dist.New(dist.Options{
			Dialer:      dialer,
			Shards:      shards,
			ChunkPoints: chunk,
			Journal:     journal,
		})
		stream = coord.Stream(ctx, p)
	}

	summary := dist.NewSummary("IPC", topk, dist.IPC)
	rows := make([]row, 0, p.Points())
	for out, err := range stream {
		if err != nil {
			return err
		}
		summary.Observe(out)
		r := row{Index: out.Index, Name: out.Job.Name, Result: out.Result}
		if out.Err != nil {
			r.Error = out.Err.Error()
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })

	enc := json.NewEncoder(os.Stdout)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, summary.String())
	return nil
}
