// fdipd is the distributed-sweep daemon. It has three modes:
//
//	fdipd [-workers N]                 stdio worker (default): reads assign
//	                                   frames on stdin, streams outcome frames
//	                                   on stdout. This is what a coordinator's
//	                                   Exec dialer spawns.
//	fdipd -listen :8080 [-workers N]   HTTP worker: serves the same protocol
//	                                   at POST /v1/run for remote coordinators.
//	fdipd -coordinate [flags]          coordinator: shards the built-in demo
//	                                   plan across workers and prints one
//	                                   NDJSON row per point (sorted by index,
//	                                   deterministic fields only) on stdout,
//	                                   with a mergeable-reducer summary on
//	                                   stderr.
//
// Coordinator flags: -shards N (0 = run single-process in this binary — the
// reference the sharded output must diff clean against), -chunk (points per
// assignment), -connect url[,url...] (use running HTTP workers instead of
// spawning local processes), -worker-bin (worker binary to spawn; default:
// this binary), -journal path (checkpoint/resume), -instrs (per-point
// budget, baked into the demo plan's configs), -topk (extremes retained in
// the summary).
//
// Quickstart (2-way local shard with checkpointing, then diff against
// single-process):
//
//	fdipd -coordinate -shards 2 -journal /tmp/sweep.journal > sharded.ndjson
//	fdipd -coordinate -shards 0 > single.ndjson
//	diff sharded.ndjson single.ndjson        # must be empty: bit-identical
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"iter"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"fdip/internal/core"
	"fdip/internal/dist"
	"fdip/internal/engine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdipd: ")
	var (
		workers    = flag.Int("workers", 0, "concurrent simulations per worker engine (0 = GOMAXPROCS)")
		listen     = flag.String("listen", "", "serve the HTTP worker protocol on this address instead of stdio")
		coordinate = flag.Bool("coordinate", false, "run as coordinator over the built-in demo plan")
		shards     = flag.Int("shards", 2, "coordinator: concurrent worker sessions (0 = single-process reference, no workers)")
		chunk      = flag.Int("chunk", 2, "coordinator: plan points per assignment")
		connect    = flag.String("connect", "", "coordinator: comma-separated HTTP worker URLs (default: spawn local worker processes)")
		workerBin  = flag.String("worker-bin", "", "coordinator: worker binary to spawn (default: this binary)")
		journal    = flag.String("journal", "", "coordinator: checkpoint journal path (resume by re-running with the same flags)")
		instrs     = flag.Uint64("instrs", 50_000, "committed-instruction budget per demo-plan point")
		topk       = flag.Int("topk", 3, "coordinator: extremes retained per side in the IPC summary")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *coordinate:
		if err := runCoordinator(ctx, *shards, *chunk, *connect, *workerBin, *journal, *instrs, *workers, *topk); err != nil {
			log.Fatal(err)
		}
	case *listen != "":
		wk := dist.NewWorker(*workers)
		mux := http.NewServeMux()
		mux.Handle("/v1/run", wk.Handler())
		srv := &http.Server{Addr: *listen, Handler: mux}
		go func() {
			<-ctx.Done()
			srv.Close()
		}()
		log.Printf("worker listening on %s", *listen)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	default:
		wk := dist.NewWorker(*workers)
		if err := wk.ServeStdio(ctx, os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// demoPlan is the built-in smoke sweep: two workloads by three prefetch
// schemes. The budget is baked into every config (rather than applied by the
// coordinator) so the -shards 0 reference and any sharded run execute
// literally identical jobs.
func demoPlan(instrs uint64) *engine.Plan {
	mk := func(kind core.PrefetcherKind) core.Config {
		c := core.DefaultConfig()
		c.MaxInstrs = instrs
		c.Prefetch.Kind = kind
		return c
	}
	return engine.NewPlan(mk(core.PrefetchNone)).
		OverNames("gcc", "deltablue").
		Axes(engine.Configs(
			engine.Named("base", mk(core.PrefetchNone)),
			engine.Named("nextline", mk(core.PrefetchNextLine)),
			engine.Named("fdp", mk(core.PrefetchFDP)),
		))
}

// row is one output line: only fields that are deterministic functions of
// the plan point (no wall times, no cache flags), so two runs of the same
// plan — sharded or not, resumed or not — diff byte-identically.
type row struct {
	Index  int         `json:"index"`
	Name   string      `json:"name"`
	Result core.Result `json:"result"`
	Error  string      `json:"error,omitempty"`
}

func runCoordinator(ctx context.Context, shards, chunk int, connect, workerBin, journal string, instrs uint64, workers, topk int) error {
	p := demoPlan(instrs)

	var stream iter.Seq2[engine.RunOutcome, error]
	if shards == 0 {
		// Single-process reference: the same plan through the in-process
		// engine, no wire, no workers.
		stream = engine.New(engine.WithWorkers(workers)).Stream(ctx, p)
	} else {
		var dialer dist.Dialer
		if connect != "" {
			var ds []dist.Dialer
			for _, u := range strings.Split(connect, ",") {
				ds = append(ds, dist.HTTP{URL: strings.TrimSpace(u)})
			}
			dialer = dist.RoundRobin(ds...)
		} else {
			bin := workerBin
			if bin == "" {
				self, err := os.Executable()
				if err != nil {
					return fmt.Errorf("resolve own binary for -worker-bin: %w", err)
				}
				bin = self
			}
			dialer = dist.Exec{Path: bin, Args: []string{"-workers", strconv.Itoa(workers)}}
		}
		coord := dist.New(dist.Options{
			Dialer:      dialer,
			Shards:      shards,
			ChunkPoints: chunk,
			Journal:     journal,
		})
		stream = coord.Stream(ctx, p)
	}

	summary := dist.NewSummary("IPC", topk, dist.IPC)
	rows := make([]row, 0, p.Points())
	for out, err := range stream {
		if err != nil {
			return err
		}
		summary.Observe(out)
		r := row{Index: out.Index, Name: out.Job.Name, Result: out.Result}
		if out.Err != nil {
			r.Error = out.Err.Error()
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })

	enc := json.NewEncoder(os.Stdout)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, summary.String())
	return nil
}
