package fdip

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func smallImage(t testing.TB) *Image {
	t.Helper()
	p := DefaultProgramParams()
	p.NumFuncs = 80
	p.Seed = 21
	im, err := GenerateProgram(p)
	if err != nil {
		t.Fatalf("GenerateProgram: %v", err)
	}
	return im
}

func TestRunFacade(t *testing.T) {
	im := smallImage(t)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	res, err := Run(cfg, im, 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed < cfg.MaxInstrs {
		t.Errorf("committed %d", res.Committed)
	}
	if res.Prefetcher != "none" {
		t.Errorf("prefetcher = %q", res.Prefetcher)
	}
}

func TestRunWorkloadFacade(t *testing.T) {
	w, ok := WorkloadByName("deltablue")
	if !ok {
		t.Fatal("deltablue missing")
	}
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	cfg.Prefetch.Kind = PrefetchFDP
	res, err := RunWorkload(cfg, w)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if !strings.HasPrefix(res.Prefetcher, "fdp") {
		t.Errorf("prefetcher = %q", res.Prefetcher)
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if _, ok := WorkloadByName("nope"); ok {
		t.Error("bogus workload resolved")
	}
}

func TestSimulatorStepping(t *testing.T) {
	im := smallImage(t)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 30_000
	sim, err := NewSimulator(cfg, im, 5)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	sim.StepN(1000)
	if sim.Cycle() != 1000 {
		t.Errorf("Cycle = %d", sim.Cycle())
	}
	mid := sim.Snapshot()
	if mid.Cycles != 1000 {
		t.Errorf("snapshot cycles = %d", mid.Cycles)
	}
	if sim.Committed() == 0 {
		t.Error("nothing committed in 1000 cycles")
	}
	final := sim.Run()
	if final.Committed < cfg.MaxInstrs {
		t.Errorf("final committed = %d", final.Committed)
	}
	if final.Cycles <= mid.Cycles {
		t.Error("Run did not continue past snapshot")
	}
}

func TestSimulatorMatchesRun(t *testing.T) {
	im := smallImage(t)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 40_000
	direct, err := Run(cfg, im, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(cfg, im, 9)
	if err != nil {
		t.Fatal(err)
	}
	stepped := sim.Run()
	if direct != stepped {
		t.Error("Run and Simulator.Run diverge for the same seed")
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	p := DefaultProgramParams()
	p.NumFuncs = 60
	p.Seed = 31
	const n = 40_000

	var buf bytes.Buffer
	if err := WriteTrace(&buf, p, 4, n); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	cfg := DefaultConfig()
	cfg.MaxInstrs = n
	replayed, err := ReplayTrace(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatalf("ReplayTrace: %v", err)
	}

	im, err := GenerateProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	live, err := Run(cfg, im, 4)
	if err != nil {
		t.Fatal(err)
	}
	if live.Cycles != replayed.Cycles || live.IPC != replayed.IPC {
		t.Errorf("replay not cycle-exact: live %d cycles, replay %d", live.Cycles, replayed.Cycles)
	}
}

func TestReplayTraceRejectsGarbage(t *testing.T) {
	if _, err := ReplayTrace(strings.NewReader("not a trace at all"), DefaultConfig()); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestConfigErrorsSurface(t *testing.T) {
	im := smallImage(t)
	cfg := DefaultConfig()
	cfg.Prefetch.Kind = "hexray"
	if _, err := Run(cfg, im, 1); err == nil {
		t.Error("bad prefetcher accepted")
	}
	if _, err := NewSimulator(cfg, im, 1); err == nil {
		t.Error("bad prefetcher accepted by NewSimulator")
	}
}

func TestEngineSweepFacade(t *testing.T) {
	fdpCfg := DefaultConfig()
	fdpCfg.Prefetch.Kind = PrefetchFDP
	jobs := []Job{
		{Workload: "gcc", Config: DefaultConfig()},
		{Workload: "gcc", Config: fdpCfg},
	}
	var events int
	eng := NewEngine(WithWorkers(2), WithInstrBudget(30_000), WithProgress(func(Event) { events++ }))
	outs, err := eng.Sweep(context.Background(), jobs)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("job %d: %v", i, out.Err)
		}
		if out.Result.Committed < 30_000 {
			t.Errorf("job %d committed %d", i, out.Result.Committed)
		}
	}
	if !strings.HasPrefix(outs[1].Result.Prefetcher, "fdp") {
		t.Errorf("job 1 prefetcher = %q", outs[1].Result.Prefetcher)
	}
	if events == 0 {
		t.Error("no progress events streamed")
	}
	if st := eng.Stats(); st.Simulations != 2 {
		t.Errorf("Simulations = %d, want 2", st.Simulations)
	}

	var buf bytes.Buffer
	if err := WriteOutcomesJSON(&buf, outs); err != nil {
		t.Fatalf("WriteOutcomesJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "\"IPC\"") {
		t.Error("outcome JSON missing IPC")
	}
}

func TestEngineHonorsCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 1 << 40
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewEngine(WithWorkers(1)).Run(ctx, Job{Workload: "gcc", Config: cfg})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}

func TestDeprecatedWrappersMatchEngine(t *testing.T) {
	im := smallImage(t)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 30_000
	old, err := Run(cfg, im, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultProgramParams()
	p.NumFuncs = 80
	p.Seed = 21 // same params as smallImage
	viaEngine, err := NewEngine().Run(context.Background(), Job{Params: &p, Seed: 3, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if old != viaEngine {
		t.Error("deprecated Run and Engine.Run diverge for the same machine and seed")
	}
}

func TestPlanStreamFacade(t *testing.T) {
	w, ok := WorkloadByName("deltablue")
	if !ok {
		t.Fatal("deltablue missing")
	}
	fdp := DefaultConfig()
	fdp.Prefetch.Kind = PrefetchFDP
	plan := NewPlan(fdp).
		Over(w).
		Axes(Vary("ftq", []int{4, 16}, func(c *Config, n int) { c.FTQEntries = n }).
			WithBaseline("base", DefaultConfig()))
	if plan.Points() != 3 {
		t.Fatalf("Points = %d", plan.Points())
	}

	eng := NewEngine(WithWorkers(2), WithInstrBudget(30_000))
	results := make([]Result, plan.Points())
	for out, err := range eng.Stream(context.Background(), plan) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if out.Err != nil {
			t.Fatalf("%s: %v", out.Job.Name, out.Err)
		}
		results[out.Index] = out.Result
	}
	// The streamed plan must agree with the equivalent explicit sweep.
	cfg4, cfg16 := fdp, fdp
	cfg4.FTQEntries = 4
	cfg16.FTQEntries = 16
	outs, err := NewEngine(WithWorkers(1), WithInstrBudget(30_000)).Sweep(context.Background(), []Job{
		{Workload: w.Name, Config: DefaultConfig()},
		{Workload: w.Name, Config: cfg4},
		{Workload: w.Name, Config: cfg16},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if results[i] != outs[i].Result {
			t.Errorf("plan point %d diverges from the explicit sweep", i)
		}
	}
	if results[1].IPC >= results[2].IPC {
		t.Logf("note: ftq=4 IPC %.3f >= ftq=16 IPC %.3f", results[1].IPC, results[2].IPC)
	}
}

func TestVersionIsV3(t *testing.T) {
	if Version == "" {
		t.Error("empty Version")
	}
	if !strings.HasPrefix(Version, "3.") {
		t.Errorf("Version = %q, want a 3.x release (Plan/Stream surface)", Version)
	}
}
